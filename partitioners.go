package bandjoin

import (
	"bandjoin/internal/core"
	"bandjoin/internal/csio"
	"bandjoin/internal/grid"
	"bandjoin/internal/iejoin"
	"bandjoin/internal/onebucket"
)

// RecPartOptions configures the RecPart partitioner.
type RecPartOptions struct {
	// Symmetric enables per-split selection of which relation to duplicate
	// (RecPart); disabled it is the paper's RecPart-S.
	Symmetric bool
	// Theoretical selects the theoretical termination condition (minimize the
	// max of the two lower-bound overheads) instead of the applied,
	// cost-model-based one.
	Theoretical bool
	// MaxIterations caps tree growth (0 = default).
	MaxIterations int
	// Seed drives the deterministic small-partition row/column assignment.
	Seed int64
	// SerialPlanner selects the serial reference grower — the correctness
	// oracle and benchmark baseline — instead of the fast planner (sort
	// inheritance, reusable arenas, parallel best-split). Both produce
	// bit-identical plans.
	SerialPlanner bool
	// PlannerParallelism bounds the fast planner's worker pool for best-split
	// evaluation; 0 selects GOMAXPROCS, 1 evaluates inline. Plans are
	// bit-identical regardless of the value.
	PlannerParallelism int
}

// RecPart returns the paper's partitioner with symmetric partitioning and the
// applied termination rule.
func RecPart() Partitioner { return core.NewDefault() }

// RecPartS returns RecPart-S: T is always the duplicated relation.
func RecPartS() Partitioner { return core.NewRecPartS() }

// RecPartWith returns RecPart configured explicitly.
func RecPartWith(opts RecPartOptions) Partitioner {
	o := core.DefaultOptions()
	o.Symmetric = opts.Symmetric
	if opts.Theoretical {
		o.Termination = core.TerminateTheoretical
	}
	o.MaxIterations = opts.MaxIterations
	o.Seed = opts.Seed
	o.Serial = opts.SerialPlanner
	o.Parallelism = opts.PlannerParallelism
	return core.New(o)
}

// defaultPartitioner returns the partitioner an unset Options.Partitioner
// resolves to: symmetric RecPart with the given planner parallelism.
func defaultPartitioner(plannerParallelism int) Partitioner {
	o := core.DefaultOptions()
	o.Parallelism = plannerParallelism
	return core.New(o)
}

// OneBucket returns the 1-Bucket baseline: random join-matrix cover, near
// perfect load balance, ~√w input duplication.
func OneBucket() Partitioner { return onebucket.New() }

// GridEps returns the Grid-ε baseline with the default grid size of one band
// width per dimension.
func GridEps() Partitioner { return grid.New() }

// GridEpsWithMultiplier returns Grid-ε with cell size multiplier·ε per
// dimension (Table 5's grid-size sweep).
func GridEpsWithMultiplier(m float64) Partitioner { return grid.NewWithMultiplier(m) }

// GridStar returns Grid*, which tunes the grid size with the cost model.
func GridStar() Partitioner { return grid.NewStar() }

// CSIO returns the CSIO baseline (quantile matrix + rectangle covering).
func CSIO() Partitioner { return csio.New() }

// CSIOWithGranularity returns CSIO with an explicit statistics granularity
// (number of quantile ranges per input).
func CSIOWithGranularity(g int) Partitioner { return csio.NewWithGranularity(g) }

// IEJoin returns the distributed IEJoin partitioning (range blocks on the
// first join attribute, joinable block pairs as work units).
func IEJoin() Partitioner { return iejoin.New() }

// IEJoinWithBlockSize returns distributed IEJoin with an explicit
// sizePerBlock, its key meta-parameter.
func IEJoinWithBlockSize(size int) Partitioner { return iejoin.NewWithBlockSize(size) }
