module bandjoin

go 1.24
