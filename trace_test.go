package bandjoin_test

import (
	"context"
	"encoding/json"
	"testing"

	"bandjoin"
	"bandjoin/internal/exec"
)

func spanNames(tr *exec.QueryTrace) map[string]bool {
	names := make(map[string]bool)
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestQueryTraceColdWarm pins the per-query trace contract on both planes:
// every Join carries a trace, the cold query reports misses on all three
// cache tiers, and the warm repeat reports hits — with zero shuffle bytes on
// the cluster plane — and the trace round-trips through JSON.
func TestQueryTraceColdWarm(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.4, 600, 17)
	band := bandjoin.Uniform(2, 0.15)
	opts := bandjoin.Options{Workers: 2, Seed: 5}

	for planeName, newEngine := range enginePlanes(t, 2) {
		t.Run(planeName, func(t *testing.T) {
			e := newEngine(bandjoin.EngineOptions{})
			defer e.Close()
			if err := e.Register("s", s); err != nil {
				t.Fatalf("Register: %v", err)
			}
			if err := e.Register("t", tt); err != nil {
				t.Fatalf("Register: %v", err)
			}
			cold, err := e.Join(context.Background(), "s", "t", band, opts)
			if err != nil {
				t.Fatalf("cold Join: %v", err)
			}
			warm, err := e.Join(context.Background(), "s", "t", band, opts)
			if err != nil {
				t.Fatalf("warm Join: %v", err)
			}

			ctr, wtr := cold.Trace, warm.Trace
			if ctr == nil || wtr == nil {
				t.Fatalf("missing traces: cold=%v warm=%v", ctr, wtr)
			}
			if ctr.SampleTier != exec.TierMiss || ctr.PlanTier != exec.TierMiss || ctr.RetainedTier != exec.TierMiss {
				t.Errorf("cold tiers = sample:%s plan:%s retained:%s, want all miss",
					ctr.SampleTier, ctr.PlanTier, ctr.RetainedTier)
			}
			if wtr.SampleTier != exec.TierHit || wtr.PlanTier != exec.TierHit || wtr.RetainedTier != exec.TierHit {
				t.Errorf("warm tiers = sample:%s plan:%s retained:%s, want all hit",
					wtr.SampleTier, wtr.PlanTier, wtr.RetainedTier)
			}
			for _, name := range []string{"sample", "plan", "join"} {
				if !spanNames(ctr)[name] {
					t.Errorf("cold trace missing span %q (have %v)", name, ctr.Spans)
				}
			}
			if ctr.Output != cold.Output || ctr.WallMicros <= 0 {
				t.Errorf("cold trace accounting: output=%d wall_us=%d", ctr.Output, ctr.WallMicros)
			}
			if planeName == "cluster" {
				if ctr.ShuffleBytes == 0 || !spanNames(ctr)["shuffle"] {
					t.Errorf("cold cluster trace has no shuffle (bytes=%d spans=%v)", ctr.ShuffleBytes, ctr.Spans)
				}
				if wtr.ShuffleBytes != 0 || wtr.ShuffleRPCs != 0 {
					t.Errorf("warm cluster trace shuffled: bytes=%d rpcs=%d", wtr.ShuffleBytes, wtr.ShuffleRPCs)
				}
			}

			js, err := wtr.JSON()
			if err != nil {
				t.Fatalf("trace JSON: %v", err)
			}
			var decoded exec.QueryTrace
			if err := json.Unmarshal(js, &decoded); err != nil {
				t.Fatalf("trace JSON does not round-trip: %v", err)
			}
			if decoded.RetainedTier != exec.TierHit || len(decoded.Spans) != len(wtr.Spans) {
				t.Errorf("decoded trace differs: tier=%s spans=%d/%d", decoded.RetainedTier, len(decoded.Spans), len(wtr.Spans))
			}
		})
	}
}

// TestQueryTraceRetentionOff pins the TierOff marker: an engine with
// retention disabled reports the retained tier as off, not miss.
func TestQueryTraceRetentionOff(t *testing.T) {
	s, tt := bandjoin.Pareto(1, 1.5, 300, 3)
	e := bandjoin.NewEngine(bandjoin.EngineOptions{DisableRetention: true})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := e.Join(context.Background(), "s", "t", bandjoin.Uniform(1, 0.2), bandjoin.Options{Workers: 2})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if res.Trace == nil || res.Trace.RetainedTier != exec.TierOff {
		t.Errorf("retained tier = %v, want off", res.Trace)
	}
}
