package bandjoin_test

import (
	"strings"
	"testing"

	"bandjoin"
)

func TestJoinWithDefaults(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 2000, 1)
	res, err := bandjoin.Join(s, tt, bandjoin.Uniform(2, 0.05), bandjoin.Options{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitioner != "RecPart" {
		t.Errorf("default partitioner = %q, want RecPart", res.Partitioner)
	}
	if res.Output == 0 {
		t.Error("join produced no results")
	}
	if res.TotalInput < int64(s.Len()+tt.Len()) {
		t.Error("total input below |S|+|T|")
	}
}

func TestJoinValidatesArguments(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 200, 1)
	if _, err := bandjoin.Join(nil, tt, bandjoin.Uniform(2, 1), bandjoin.Options{}); err == nil {
		t.Error("nil S accepted")
	}
	if _, err := bandjoin.Join(s, tt, bandjoin.Uniform(3, 1), bandjoin.Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := bandjoin.Join(s, tt, bandjoin.Symmetric(-1, 1), bandjoin.Options{}); err == nil {
		t.Error("negative band width accepted")
	}
	if _, err := bandjoin.Join(s, tt, bandjoin.Uniform(2, 1), bandjoin.Options{LocalAlgorithm: "nope"}); err == nil {
		t.Error("unknown local algorithm accepted")
	}
}

func TestAllPublicPartitionersAgreeOnCardinality(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 1500, 3)
	band := bandjoin.Uniform(2, 0.05)
	var want int64 = -1
	for _, p := range []struct {
		name string
		pt   bandjoin.Partitioner
	}{
		{"RecPart", bandjoin.RecPart()},
		{"RecPart-S", bandjoin.RecPartS()},
		{"RecPartWith", bandjoin.RecPartWith(bandjoin.RecPartOptions{Symmetric: true, Theoretical: true, Seed: 2})},
		{"OneBucket", bandjoin.OneBucket()},
		{"GridEps", bandjoin.GridEps()},
		{"GridEpsX4", bandjoin.GridEpsWithMultiplier(4)},
		{"GridStar", bandjoin.GridStar()},
		{"CSIO", bandjoin.CSIO()},
		{"CSIO-32", bandjoin.CSIOWithGranularity(32)},
		{"IEJoin", bandjoin.IEJoin()},
		{"IEJoin-500", bandjoin.IEJoinWithBlockSize(500)},
	} {
		res, err := bandjoin.Join(s, tt, band, bandjoin.Options{Workers: 5, Partitioner: p.pt, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if want == -1 {
			want = res.Output
			continue
		}
		if res.Output != want {
			t.Errorf("%s produced %d results, others produced %d", p.name, res.Output, want)
		}
	}
	if want <= 0 {
		t.Fatal("workload produced no results")
	}
}

func TestCountAndEstimateOnly(t *testing.T) {
	s, tt := bandjoin.Pareto(1, 1.5, 3000, 5)
	band := bandjoin.Symmetric(0.01)
	n, err := bandjoin.Count(s, tt, band, bandjoin.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("Count returned 0")
	}
	est, err := bandjoin.Join(s, tt, band, bandjoin.Options{Workers: 4, EstimateOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalInput == 0 {
		t.Error("estimate-only run reports no input")
	}
	ratio := float64(est.Output) / float64(n)
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("estimated output %d far from exact %d", est.Output, n)
	}
}

func TestLocalAlgorithmSelection(t *testing.T) {
	s, tt := bandjoin.Pareto(1, 1.5, 1000, 7)
	band := bandjoin.Symmetric(0.01)
	var counts []int64
	for _, alg := range []string{"sort-probe", "grid-sort-scan", "nested-loop"} {
		res, err := bandjoin.Join(s, tt, band, bandjoin.Options{Workers: 3, LocalAlgorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		counts = append(counts, res.Output)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("local algorithms disagree: %v", counts)
	}
}

func TestRelationBuildingAndCSV(t *testing.T) {
	r := bandjoin.NewRelation("emp", 1)
	r.Append(100)
	r.Append(200)
	if r.Len() != 2 || r.Dims() != 1 {
		t.Error("relation building broken")
	}
	rel, err := bandjoin.ReadCSV("x", strings.NewReader("A1,A2\n1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Dims() != 2 {
		t.Error("ReadCSV shape wrong")
	}
}

func TestGeneratorsExposed(t *testing.T) {
	s, tt := bandjoin.ReversePareto(2, 1.5, 100, 1)
	if s.Len() != 100 || tt.Len() != 100 {
		t.Error("ReversePareto sizes wrong")
	}
	s, tt = bandjoin.EBirdCloud(50, 60, 1)
	if s.Len() != 50 || tt.Len() != 60 {
		t.Error("EBirdCloud sizes wrong")
	}
	s, tt = bandjoin.PTF(80, 1)
	if s.Len() != 80 || tt.Len() != 80 {
		t.Error("PTF sizes wrong")
	}
	u := bandjoin.UniformRelation("u", 40, []float64{0}, []float64{1}, 1)
	if u.Len() != 40 {
		t.Error("UniformRelation size wrong")
	}
}

func TestCostModelHelpers(t *testing.T) {
	m := bandjoin.DefaultCostModel()
	if m.Beta2 <= 0 {
		t.Error("default cost model has no input weight")
	}
	if testing.Short() {
		return
	}
	cal, err := bandjoin.CalibrateCostModel()
	if err != nil {
		t.Fatal(err)
	}
	if err := cal.Validate(); err != nil {
		t.Errorf("calibrated model invalid: %v", err)
	}
}

func TestLocalClusterJoin(t *testing.T) {
	cl, err := bandjoin.StartLocalCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Workers() != 3 {
		t.Fatalf("Workers = %d", cl.Workers())
	}
	s, tt := bandjoin.Pareto(2, 1.5, 1200, 9)
	band := bandjoin.Uniform(2, 0.05)
	dist, err := cl.Join(s, tt, band, bandjoin.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	local, err := bandjoin.Join(s, tt, band, bandjoin.Options{Workers: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dist.Output != local.Output {
		t.Errorf("distributed output %d differs from simulated %d", dist.Output, local.Output)
	}
	if _, err := cl.Join(nil, tt, band, bandjoin.Options{}); err == nil {
		t.Error("nil relation accepted by cluster join")
	}
	if _, err := bandjoin.ConnectCluster(nil); err == nil {
		t.Error("ConnectCluster accepted an empty address list")
	}
}

func TestAsymmetricPublicAPI(t *testing.T) {
	s := bandjoin.NewRelation("s", 1)
	s.Append(10)
	tt := bandjoin.NewRelation("t", 1)
	for _, v := range []float64{7.9, 8, 11, 11.1} {
		tt.Append(v)
	}
	res, err := bandjoin.Join(s, tt, bandjoin.Asymmetric([]float64{2}, []float64{1}), bandjoin.Options{Workers: 2, CollectPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != 2 {
		t.Errorf("asymmetric join output = %d, want 2", res.Output)
	}
	if len(res.Pairs) != 2 {
		t.Errorf("CollectPairs returned %d pairs", len(res.Pairs))
	}
}
