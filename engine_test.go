package bandjoin_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"bandjoin"
)

// enginePlanes enumerates the two execution planes behind one test body. The
// cleanup funcs stop local clusters.
func enginePlanes(t *testing.T, workers int) map[string]func(bandjoin.EngineOptions) *bandjoin.Engine {
	t.Helper()
	cl, err := bandjoin.StartLocalCluster(workers)
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	t.Cleanup(cl.Close)
	return map[string]func(bandjoin.EngineOptions) *bandjoin.Engine{
		"in-process": bandjoin.NewEngine,
		"cluster":    cl.NewEngine,
	}
}

func pairsEqual(t *testing.T, label string, a, b []bandjoin.Pair) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: pair counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: pair %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func TestEngineRegisterAndJoin(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 800, 5)
	band := bandjoin.Uniform(2, 0.1)
	opts := bandjoin.Options{Workers: 4, CollectPairs: true, Seed: 9}

	oracle, err := bandjoin.Join(s, tt, band, opts)
	if err != nil {
		t.Fatalf("one-shot Join: %v", err)
	}

	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := e.Join(context.Background(), "s", "t", band, opts)
	if err != nil {
		t.Fatalf("Engine.Join: %v", err)
	}
	if res.Output != oracle.Output || res.TotalInput != oracle.TotalInput {
		t.Errorf("engine (I=%d out=%d) disagrees with one-shot Join (I=%d out=%d)",
			res.TotalInput, res.Output, oracle.TotalInput, oracle.Output)
	}
	pairsEqual(t, "engine vs one-shot", res.Pairs, oracle.Pairs)

	if _, err := e.Join(context.Background(), "s", "nope", band, opts); err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Errorf("join of unknown dataset: err = %v", err)
	}
	if _, err := e.Join(context.Background(), "s", "t", bandjoin.Uniform(3, 0.1), opts); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// TestEngineWarmCacheEquivalence is the plan/sample-cache equivalence
// guarantee: a warm-cache rerun must report identical Result accounting
// (I, Im, Om, pairs) to the cold run, across partitioner families and both
// planes; on the cluster plane the warm rerun must additionally move zero
// shuffle bytes.
func TestEngineWarmCacheEquivalence(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.4, 700, 21)
	band := bandjoin.Uniform(2, 0.15)
	partitioners := map[string]bandjoin.Partitioner{
		"RecPart":   bandjoin.RecPart(),
		"RecPart-S": bandjoin.RecPartS(),
		"1-Bucket":  bandjoin.OneBucket(),
		"Grid-eps":  bandjoin.GridEps(),
	}

	for planeName, newEngine := range enginePlanes(t, 3) {
		e := newEngine(bandjoin.EngineOptions{})
		defer e.Close()
		if err := e.Register("s", s); err != nil {
			t.Fatalf("Register: %v", err)
		}
		if err := e.Register("t", tt); err != nil {
			t.Fatalf("Register: %v", err)
		}
		for ptName, pt := range partitioners {
			t.Run(planeName+"/"+ptName, func(t *testing.T) {
				opts := bandjoin.Options{Workers: 3, Partitioner: pt, CollectPairs: true, Seed: 3}
				cold, err := e.Join(context.Background(), "s", "t", band, opts)
				if err != nil {
					t.Fatalf("cold Join: %v", err)
				}
				warm, err := e.Join(context.Background(), "s", "t", band, opts)
				if err != nil {
					t.Fatalf("warm Join: %v", err)
				}
				if warm.TotalInput != cold.TotalInput || warm.Output != cold.Output ||
					warm.Im != cold.Im || warm.Om != cold.Om {
					t.Errorf("warm accounting differs: cold (I=%d Im=%d Om=%d out=%d), warm (I=%d Im=%d Om=%d out=%d)",
						cold.TotalInput, cold.Im, cold.Om, cold.Output,
						warm.TotalInput, warm.Im, warm.Om, warm.Output)
				}
				pairsEqual(t, "cold vs warm", cold.Pairs, warm.Pairs)
				if planeName == "cluster" {
					if cold.ShuffleBytes == 0 {
						t.Error("cold cluster run reports zero shuffle bytes")
					}
					if warm.ShuffleBytes != 0 || warm.ShuffleRPCs != 0 {
						t.Errorf("warm cluster run shuffled: bytes=%d rpcs=%d, want 0/0", warm.ShuffleBytes, warm.ShuffleRPCs)
					}
				}
			})
		}
		st := e.Stats()
		if st.PlanHits < int64(len(partitioners)) {
			t.Errorf("%s: plan hits = %d, want >= %d (one per warm rerun)", planeName, st.PlanHits, len(partitioners))
		}
		if st.CachedSamples != 1 {
			t.Errorf("%s: %d cached samples, want 1 (shared across partitioners)", planeName, st.CachedSamples)
		}
	}
}

// TestEngineSampleReuseAcrossBands: replanning the same pair for a new ε is a
// sample-cache hit (no input rescan) but a plan-cache miss.
func TestEngineSampleReuseAcrossBands(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 600, 8)
	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	opts := bandjoin.Options{Workers: 4}
	for i, eps := range []float64{0.05, 0.1, 0.2} {
		if _, err := e.Join(context.Background(), "s", "t", bandjoin.Uniform(2, eps), opts); err != nil {
			t.Fatalf("Join(eps=%g): %v", eps, err)
		}
		st := e.Stats()
		if st.CachedSamples != 1 {
			t.Fatalf("after %d bands: %d cached samples, want 1", i+1, st.CachedSamples)
		}
		if st.CachedPlans != i+1 {
			t.Fatalf("after %d bands: %d cached plans, want %d", i+1, st.CachedPlans, i+1)
		}
		if st.SampleHits != int64(i) {
			t.Fatalf("after %d bands: %d sample hits, want %d", i+1, st.SampleHits, i)
		}
	}
}

// TestEngineConcurrentJoins hammers one engine with concurrent queries of
// several shapes on both planes; run under -race (as CI does) it verifies the
// cache and registry locking, and every result must be bit-identical to the
// serial one-shot oracle.
func TestEngineConcurrentJoins(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.4, 500, 31)
	queries := []struct {
		band bandjoin.Band
		opts bandjoin.Options
	}{
		{bandjoin.Uniform(2, 0.1), bandjoin.Options{Workers: 3, CollectPairs: true, Seed: 2}},
		{bandjoin.Uniform(2, 0.25), bandjoin.Options{Workers: 3, CollectPairs: true, Seed: 2}},
		{bandjoin.Uniform(2, 0.1), bandjoin.Options{Workers: 3, Partitioner: bandjoin.OneBucket(), CollectPairs: true, Seed: 2}},
		{bandjoin.Uniform(2, 0.25), bandjoin.Options{Workers: 3, Partitioner: bandjoin.GridEps(), CollectPairs: true, Seed: 2}},
	}
	// The serial one-shot path is the oracle.
	oracles := make([]*bandjoin.Result, len(queries))
	for i, q := range queries {
		res, err := bandjoin.Join(s, tt, q.band, q.opts)
		if err != nil {
			t.Fatalf("oracle %d: %v", i, err)
		}
		oracles[i] = res
	}

	for planeName, newEngine := range enginePlanes(t, 3) {
		t.Run(planeName, func(t *testing.T) {
			e := newEngine(bandjoin.EngineOptions{})
			defer e.Close()
			if err := e.Register("s", s); err != nil {
				t.Fatalf("Register: %v", err)
			}
			if err := e.Register("t", tt); err != nil {
				t.Fatalf("Register: %v", err)
			}
			const goroutines = 8
			const rounds = 3
			var wg sync.WaitGroup
			errCh := make(chan error, goroutines*rounds)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						qi := (g + round) % len(queries)
						res, err := e.Join(context.Background(), "s", "t", queries[qi].band, queries[qi].opts)
						if err != nil {
							errCh <- fmt.Errorf("goroutine %d round %d: %w", g, round, err)
							return
						}
						want := oracles[qi]
						if res.Output != want.Output || res.TotalInput != want.TotalInput {
							errCh <- fmt.Errorf("goroutine %d round %d: (I=%d out=%d), oracle (I=%d out=%d)",
								g, round, res.TotalInput, res.Output, want.TotalInput, want.Output)
							return
						}
						if len(res.Pairs) != len(want.Pairs) {
							errCh <- fmt.Errorf("goroutine %d round %d: %d pairs, oracle %d", g, round, len(res.Pairs), len(want.Pairs))
							return
						}
						for i := range res.Pairs {
							if res.Pairs[i] != want.Pairs[i] {
								errCh <- fmt.Errorf("goroutine %d round %d: pair %d = %v, oracle %v", g, round, i, res.Pairs[i], want.Pairs[i])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
		})
	}
}

// TestEngineUnregisterInvalidates: replacing or removing a dataset must
// invalidate cached samples and plans so no query ever serves stale data.
func TestEngineUnregisterInvalidates(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 400, 3)
	band := bandjoin.Uniform(2, 0.2)
	opts := bandjoin.Options{Workers: 2, CollectPairs: true}

	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res1, err := e.Join(context.Background(), "s", "t", band, opts)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}

	// Replace T with a half-sized relation; the same query must see it.
	smaller := bandjoin.NewRelation("t2", 2)
	for i := 0; i < tt.Len()/2; i++ {
		smaller.AppendKey(tt.Key(i))
	}
	if err := e.Register("t", smaller); err != nil {
		t.Fatalf("re-Register: %v", err)
	}
	res2, err := e.Join(context.Background(), "s", "t", band, opts)
	if err != nil {
		t.Fatalf("Join after re-Register: %v", err)
	}
	if res2.InputT != smaller.Len() {
		t.Errorf("query after re-Register saw |T| = %d, want %d", res2.InputT, smaller.Len())
	}
	want, err := bandjoin.Join(s, smaller, band, opts)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if res2.Output != want.Output {
		t.Errorf("output after re-Register = %d, want %d (stale cache?)", res2.Output, want.Output)
	}
	if res2.Output == res1.Output && len(res1.Pairs) != len(res2.Pairs) {
		t.Errorf("inconsistent pair accounting after re-Register")
	}

	if err := e.Unregister("t"); err != nil {
		t.Fatalf("Unregister: %v", err)
	}
	if _, err := e.Join(context.Background(), "s", "t", band, opts); err == nil {
		t.Error("join of unregistered dataset accepted")
	}
	if err := e.Unregister("t"); err == nil {
		t.Error("double Unregister accepted")
	}
	if got := len(e.Datasets()); got != 1 {
		t.Errorf("%d datasets registered, want 1", got)
	}
}

// TestEngineEstimateOnly: EstimateOnly queries run the optimizer but not the
// data plane, on both planes, and benefit from the same caches.
func TestEngineEstimateOnly(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 900, 4)
	band := bandjoin.Uniform(2, 0.1)
	for planeName, newEngine := range enginePlanes(t, 2) {
		t.Run(planeName, func(t *testing.T) {
			e := newEngine(bandjoin.EngineOptions{})
			defer e.Close()
			if err := e.Register("s", s); err != nil {
				t.Fatalf("Register: %v", err)
			}
			if err := e.Register("t", tt); err != nil {
				t.Fatalf("Register: %v", err)
			}
			res, err := e.Join(context.Background(), "s", "t", band, bandjoin.Options{EstimateOnly: true})
			if err != nil {
				t.Fatalf("EstimateOnly Join: %v", err)
			}
			if res.TotalInput <= 0 || res.Output <= 0 {
				t.Errorf("estimate reports I=%d out=%d, want positive", res.TotalInput, res.Output)
			}
			if res.ShuffleBytes != 0 {
				t.Errorf("estimate moved %d bytes", res.ShuffleBytes)
			}
		})
	}
}

// TestOptionsValidation: nonsensical knobs must be rejected by every entry
// point sharing the resolver, not silently defaulted.
func TestOptionsValidation(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 100, 1)
	band := bandjoin.Uniform(2, 0.5)
	bad := []bandjoin.Options{
		{Workers: -1},
		{ClusterChunkSize: -5},
		{ClusterWindow: -2},
		{ClusterJoinParallelism: -1},
		{InputSampleSize: -100},
		{PlannerParallelism: -3},
	}
	for i, opts := range bad {
		if _, err := bandjoin.Join(s, tt, band, opts); err == nil {
			t.Errorf("Join accepted bad options %d: %+v", i, opts)
		}
	}

	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i, opts := range bad {
		if _, err := e.Join(context.Background(), "s", "t", band, opts); err == nil {
			t.Errorf("Engine.Join accepted bad options %d: %+v", i, opts)
		}
	}
	if err := e.Register("", s); err == nil {
		t.Error("empty dataset name accepted")
	}
	if err := e.Register("x", nil); err == nil {
		t.Error("nil relation accepted")
	}

	cl, err := bandjoin.StartLocalCluster(2)
	if err != nil {
		t.Fatalf("StartLocalCluster: %v", err)
	}
	defer cl.Close()
	for i, opts := range bad {
		if _, err := cl.Join(s, tt, band, opts); err == nil {
			t.Errorf("Cluster.Join accepted bad options %d: %+v", i, opts)
		}
	}
}

// TestEngineClosedRejectsQueries: a closed engine fails loudly instead of
// serving from released caches.
func TestEngineClosedRejectsQueries(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 100, 1)
	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Join(context.Background(), "s", "t", bandjoin.Uniform(2, 0.5), bandjoin.Options{}); err == nil {
		t.Error("closed engine served a query")
	}
	if err := e.Register("u", s); err == nil {
		t.Error("closed engine accepted a registration")
	}
}

// TestEngineContextCancellation: an already-cancelled context aborts the
// query at a stage boundary.
func TestEngineContextCancellation(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 300, 2)
	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Join(ctx, "s", "t", bandjoin.Uniform(2, 0.5), bandjoin.Options{}); err == nil {
		t.Error("cancelled context did not abort the query")
	}
}

// TestEngineWarmOptimizationTimeIsPerQuery: Result.OptimizationTime reports
// the query's actual planning cost, not the cached plan's stored cost — a
// plan-cache hit must report (approximately) zero, while the cold query that
// populated the cache reports the real optimization time.
func TestEngineWarmOptimizationTimeIsPerQuery(t *testing.T) {
	s, tt := bandjoin.Pareto(3, 1.5, 30_000, 31)
	band := bandjoin.Uniform(3, 0.03)
	opts := bandjoin.Options{Workers: 4, Seed: 5, InputSampleSize: 8000, OutputSampleSize: 4000}

	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	cold, err := e.Join(context.Background(), "s", "t", band, opts)
	if err != nil {
		t.Fatalf("cold Join: %v", err)
	}
	if cold.OptimizationTime <= 0 {
		t.Errorf("cold query reports optimization time %v, want > 0", cold.OptimizationTime)
	}
	warm, err := e.Join(context.Background(), "s", "t", band, opts)
	if err != nil {
		t.Fatalf("warm Join: %v", err)
	}
	// The warm query only hashes a cache key; anything close to the cold
	// query's planning cost means the stored value leaked through again.
	if warm.OptimizationTime > cold.OptimizationTime/2 {
		t.Errorf("warm query reports optimization time %v (cold %v), want ~0 on a plan-cache hit",
			warm.OptimizationTime, cold.OptimizationTime)
	}
}

// TestEngineRetainedPreparedAlgorithmSwitch: the in-process retained plane
// prebuilds local-join structures for the sealing query's algorithm; a later
// warm query that names a different algorithm must still produce identical
// pairs (the prepared structures are rebuilt for it, not misused).
func TestEngineRetainedPreparedAlgorithmSwitch(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.4, 900, 41)
	band := bandjoin.Uniform(2, 0.12)

	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	base := bandjoin.Options{Workers: 3, Seed: 7, CollectPairs: true}

	cold, err := e.Join(context.Background(), "s", "t", band, base)
	if err != nil {
		t.Fatalf("cold Join: %v", err)
	}
	for _, alg := range []string{"", "sort-probe", "grid-sort-scan", "nested-loop", "eps-grid"} {
		opts := base
		opts.LocalAlgorithm = alg
		warm, err := e.Join(context.Background(), "s", "t", band, opts)
		if err != nil {
			t.Fatalf("warm Join (%q): %v", alg, err)
		}
		if warm.Output != cold.Output {
			t.Fatalf("algorithm %q: output %d, want %d", alg, warm.Output, cold.Output)
		}
		pairsEqual(t, "cold vs warm "+alg, cold.Pairs, warm.Pairs)
	}
}

// TestEnginePlanCacheIgnoresPlannerKnobs: queries that differ only in
// execution-only planner knobs (grower selection, planner parallelism)
// produce bit-identical plans, so they must share one cached plan and one
// retained partition set rather than re-optimizing and re-shuffling.
func TestEnginePlanCacheIgnoresPlannerKnobs(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 800, 51)
	band := bandjoin.Uniform(2, 0.1)

	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}

	variants := []bandjoin.Options{
		{Workers: 3, Seed: 4},
		{Workers: 3, Seed: 4, PlannerParallelism: 2},
		{Workers: 3, Seed: 4, Partitioner: bandjoin.RecPartWith(bandjoin.RecPartOptions{Symmetric: true, Seed: 1, SerialPlanner: true})},
		{Workers: 3, Seed: 4, Partitioner: bandjoin.RecPartWith(bandjoin.RecPartOptions{Symmetric: true, Seed: 1, PlannerParallelism: 3})},
	}
	for i, opts := range variants {
		if _, err := e.Join(context.Background(), "s", "t", band, opts); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.CachedPlans != 1 {
		t.Errorf("%d cached plans, want 1 (planner knobs must not fragment the plan cache)", st.CachedPlans)
	}
	if st.PlanHits != int64(len(variants)-1) {
		t.Errorf("%d plan hits, want %d", st.PlanHits, len(variants)-1)
	}
}
