package bandjoin_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"bandjoin"
)

// appendSplit cuts a full relation into a base prefix and successive delta
// slices at the given boundaries.
func appendSplit(r *bandjoin.Relation, cuts ...int) []*bandjoin.Relation {
	parts := make([]*bandjoin.Relation, 0, len(cuts)+1)
	lo := 0
	for _, hi := range append(cuts, r.Len()) {
		parts = append(parts, r.Slice(r.Name(), lo, hi))
		lo = hi
	}
	return parts
}

// TestEngineAppendEquivalence is the append-vs-rebuild guarantee: for every
// partitioner family on both planes, Register(base) + Append(deltas) + Join
// must produce pairs bit-identical to a fresh engine serving the full
// relations — at every intermediate prefix, not just the final state — and a
// warm query after appends must not reshuffle the base (zero shuffle bytes on
// the cluster plane: the deltas were absorbed by Append itself).
func TestEngineAppendEquivalence(t *testing.T) {
	fullS, fullT := bandjoin.Pareto(2, 1.4, 900, 23)
	band := bandjoin.Uniform(2, 0.12)
	partitioners := map[string]bandjoin.Partitioner{
		"RecPart":   bandjoin.RecPart(),
		"RecPart-S": bandjoin.RecPartS(),
		"1-Bucket":  bandjoin.OneBucket(),
		"Grid-eps":  bandjoin.GridEps(),
	}
	sParts := appendSplit(fullS, 600, 750) // base, delta1, delta2
	tParts := appendSplit(fullT, 700, 800)

	for ptName, pt := range partitioners {
		opts := bandjoin.Options{Workers: 3, Partitioner: pt, CollectPairs: true, Seed: 3}
		// Fresh-build oracles at each prefix the appended engine will serve.
		mid, err := bandjoin.Join(fullS.Slice("s", 0, 750), fullT.Slice("t", 0, 800), band, opts)
		if err != nil {
			t.Fatalf("%s: mid oracle: %v", ptName, err)
		}
		full, err := bandjoin.Join(fullS, fullT, band, opts)
		if err != nil {
			t.Fatalf("%s: full oracle: %v", ptName, err)
		}

		for planeName, newEngine := range enginePlanes(t, 3) {
			t.Run(planeName+"/"+ptName, func(t *testing.T) {
				e := newEngine(bandjoin.EngineOptions{})
				defer e.Close()
				ctx := context.Background()
				if err := e.Register("s", sParts[0]); err != nil {
					t.Fatalf("Register: %v", err)
				}
				if err := e.Register("t", tParts[0]); err != nil {
					t.Fatalf("Register: %v", err)
				}
				if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
					t.Fatalf("cold Join: %v", err)
				}

				if err := e.Append(ctx, "s", sParts[1]); err != nil {
					t.Fatalf("Append(s): %v", err)
				}
				if err := e.Append(ctx, "t", tParts[1]); err != nil {
					t.Fatalf("Append(t): %v", err)
				}
				res, err := e.Join(ctx, "s", "t", band, opts)
				if err != nil {
					t.Fatalf("Join after first appends: %v", err)
				}
				if res.InputS != 750 || res.InputT != 800 {
					t.Fatalf("query after appends saw |S|=%d |T|=%d, want 750/800", res.InputS, res.InputT)
				}
				if res.Output != mid.Output {
					t.Errorf("output after appends = %d, fresh rebuild = %d", res.Output, mid.Output)
				}
				pairsEqual(t, "append vs rebuild (mid)", res.Pairs, mid.Pairs)

				if err := e.Append(ctx, "s", sParts[2]); err != nil {
					t.Fatalf("Append(s) 2: %v", err)
				}
				if err := e.Append(ctx, "t", tParts[2]); err != nil {
					t.Fatalf("Append(t) 2: %v", err)
				}
				res, err = e.Join(ctx, "s", "t", band, opts)
				if err != nil {
					t.Fatalf("Join after second appends: %v", err)
				}
				if res.Output != full.Output {
					t.Errorf("final output = %d, fresh rebuild = %d", res.Output, full.Output)
				}
				pairsEqual(t, "append vs rebuild (full)", res.Pairs, full.Pairs)
				if planeName == "cluster" && res.ShuffleBytes != 0 {
					t.Errorf("warm query after appends shuffled %d bytes; the base must never reshuffle", res.ShuffleBytes)
				}

				st := e.Stats()
				if st.CachedSamples != 1 || st.CachedPlans != 1 {
					t.Errorf("appends fragmented the caches: %d samples, %d plans, want 1/1",
						st.CachedSamples, st.CachedPlans)
				}
				if st.Appends != 4 {
					t.Errorf("Appends = %d, want 4", st.Appends)
				}
				if st.PlanHits != 2 {
					t.Errorf("PlanHits = %d, want 2 (appends must not invalidate the plan)", st.PlanHits)
				}
			})
		}
	}
}

// TestEngineAppendValidation: Append's error surface — and that zero-row
// appends are free no-ops.
func TestEngineAppendValidation(t *testing.T) {
	s, tt := bandjoin.Pareto(2, 1.5, 200, 1)
	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	if err := e.Register("s", s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", tt); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx := context.Background()

	if err := e.Append(ctx, "nope", s.Slice("d", 0, 1)); err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Errorf("append to unknown dataset: err = %v", err)
	}
	bad := bandjoin.NewRelation("d", 3)
	bad.Append(1, 2, 3)
	if err := e.Append(ctx, "s", bad); err == nil {
		t.Error("append of wrong dimensionality accepted")
	}
	if err := e.Append(ctx, "", s.Slice("d", 0, 1)); err == nil {
		t.Error("append to empty name accepted")
	}
	if err := e.Append(ctx, "s", nil); err != nil {
		t.Errorf("nil append: %v", err)
	}
	if err := e.Append(ctx, "s", bandjoin.NewRelation("d", 2)); err != nil {
		t.Errorf("empty append: %v", err)
	}
	if got := e.Stats().Appends; got != 0 {
		t.Errorf("no-op appends counted: Appends = %d, want 0", got)
	}

	if err := e.Append(ctx, "s", s.Slice("d", 0, 5)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := e.Stats().Appends; got != 1 {
		t.Errorf("Appends = %d, want 1", got)
	}

	e.Close()
	if err := e.Append(ctx, "s", s.Slice("d", 0, 1)); err == nil {
		t.Error("closed engine accepted an append")
	}
}

// TestEngineAppendTraceShowsLazyRebuild: Append defers re-sorting and prepared
// structure rebuilds to the next probe; that query's result must account the
// rebuild (StaleRebuildTime) and carry a delta_absorb span in its trace.
func TestEngineAppendTraceShowsLazyRebuild(t *testing.T) {
	fullS, fullT := bandjoin.Pareto(2, 1.5, 800, 29)
	band := bandjoin.Uniform(2, 0.1)
	opts := bandjoin.Options{Workers: 3, Seed: 5}

	e := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	ctx := context.Background()
	if err := e.Register("s", fullS.Slice("s", 0, 600)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := e.Register("t", fullT); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
		t.Fatalf("cold Join: %v", err)
	}
	if err := e.Append(ctx, "s", fullS.Slice("d", 600, 800)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	warm, err := e.Join(ctx, "s", "t", band, opts)
	if err != nil {
		t.Fatalf("warm Join: %v", err)
	}
	if warm.StaleRebuildTime <= 0 {
		t.Errorf("warm query after append reports StaleRebuildTime = %v, want > 0 (lazy rebuild ran here)", warm.StaleRebuildTime)
	}
	if warm.Trace == nil {
		t.Fatal("warm query has no trace")
	}
	found := false
	for _, sp := range warm.Trace.Spans {
		if sp.Name == "delta_absorb" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace spans %+v lack a delta_absorb span", warm.Trace.Spans)
	}
}

// TestEngineAppendRacingWarmJoins hammers one engine with appends racing warm
// joins on both planes (run under -race as CI does). Every join must succeed,
// and once the appends settle the result must be bit-identical to a fresh
// engine over the full relations.
func TestEngineAppendRacingWarmJoins(t *testing.T) {
	fullS, fullT := bandjoin.Pareto(2, 1.4, 1200, 37)
	band := bandjoin.Uniform(2, 0.1)
	opts := bandjoin.Options{Workers: 3, CollectPairs: true, Seed: 2}
	full, err := bandjoin.Join(fullS, fullT, band, opts)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	const deltas = 8
	sParts := appendSplit(fullS, 400, 500, 600, 700, 800, 900, 1000, 1100)
	tParts := appendSplit(fullT, 400, 500, 600, 700, 800, 900, 1000, 1100)

	for planeName, newEngine := range enginePlanes(t, 3) {
		t.Run(planeName, func(t *testing.T) {
			e := newEngine(bandjoin.EngineOptions{})
			defer e.Close()
			ctx := context.Background()
			if err := e.Register("s", sParts[0]); err != nil {
				t.Fatalf("Register: %v", err)
			}
			if err := e.Register("t", tParts[0]); err != nil {
				t.Fatalf("Register: %v", err)
			}
			if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
				t.Fatalf("cold Join: %v", err)
			}

			var wg sync.WaitGroup
			errCh := make(chan error, deltas+2*6)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 1; i <= deltas; i++ {
					if err := e.Append(ctx, "s", sParts[i]); err != nil {
						errCh <- fmt.Errorf("append s %d: %w", i, err)
						return
					}
					if err := e.Append(ctx, "t", tParts[i]); err != nil {
						errCh <- fmt.Errorf("append t %d: %w", i, err)
						return
					}
				}
			}()
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for round := 0; round < 6; round++ {
						res, err := e.Join(ctx, "s", "t", band, opts)
						if err != nil {
							errCh <- fmt.Errorf("goroutine %d round %d: %w", g, round, err)
							return
						}
						if res.InputS < 400 || res.InputS > 1200 {
							errCh <- fmt.Errorf("goroutine %d round %d: |S| = %d outside any append prefix", g, round, res.InputS)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}

			res, err := e.Join(ctx, "s", "t", band, opts)
			if err != nil {
				t.Fatalf("settled Join: %v", err)
			}
			if res.InputS != fullS.Len() || res.InputT != fullT.Len() {
				t.Fatalf("settled query saw |S|=%d |T|=%d, want %d/%d", res.InputS, res.InputT, fullS.Len(), fullT.Len())
			}
			if res.Output != full.Output {
				t.Errorf("settled output = %d, fresh rebuild = %d", res.Output, full.Output)
			}
			pairsEqual(t, "settled append vs rebuild", res.Pairs, full.Pairs)
		})
	}
}

// TestEngineAppendDriftRepartition forces plan-quality drift via
// MaxDeltaFraction and verifies the full lifecycle on both planes: exactly one
// background re-partition fires, queries keep succeeding (and stay correct)
// throughout the swap, and the trigger does not re-fire once the replacement
// plan is serving.
func TestEngineAppendDriftRepartition(t *testing.T) {
	fullS, fullT := bandjoin.Pareto(2, 1.4, 1300, 41)
	band := bandjoin.Uniform(2, 0.1)
	opts := bandjoin.Options{Workers: 3, CollectPairs: true, Seed: 7, MaxDeltaFraction: 0.2}
	baseS := fullS.Slice("s", 0, 800)
	deltaS := fullS.Slice("d", 800, 1300)
	baseT := fullT.Slice("t", 0, 800)
	extended, err := bandjoin.Join(fullS, baseT, band, opts)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}

	for planeName, newEngine := range enginePlanes(t, 3) {
		t.Run(planeName, func(t *testing.T) {
			e := newEngine(bandjoin.EngineOptions{})
			defer e.Close()
			ctx := context.Background()
			if err := e.Register("s", baseS); err != nil {
				t.Fatalf("Register: %v", err)
			}
			if err := e.Register("t", baseT); err != nil {
				t.Fatalf("Register: %v", err)
			}
			if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
				t.Fatalf("cold Join: %v", err)
			}
			// 500 appended of 2100 total = 0.238 > MaxDeltaFraction.
			if err := e.Append(ctx, "s", deltaS); err != nil {
				t.Fatalf("Append: %v", err)
			}

			// The next warm query observes the drift and kicks off the
			// background re-partition; queries must keep being served and
			// correct while it plans, primes, and swaps.
			deadline := time.Now().Add(10 * time.Second)
			for e.Stats().Repartitions == 0 {
				res, err := e.Join(ctx, "s", "t", band, opts)
				if err != nil {
					t.Fatalf("Join during re-partition: %v", err)
				}
				if res.Output != extended.Output {
					t.Fatalf("output during re-partition = %d, want %d", res.Output, extended.Output)
				}
				if time.Now().After(deadline) {
					t.Fatal("drift-triggered re-partition never completed")
				}
				time.Sleep(time.Millisecond)
			}

			// The replacement plan serves identically, and with no further
			// appends the trigger must not fire again.
			for i := 0; i < 3; i++ {
				res, err := e.Join(ctx, "s", "t", band, opts)
				if err != nil {
					t.Fatalf("Join after re-partition: %v", err)
				}
				if res.Output != extended.Output {
					t.Errorf("output after re-partition = %d, want %d", res.Output, extended.Output)
				}
				pairsEqual(t, "post-repartition", res.Pairs, extended.Pairs)
			}
			if got := e.Stats().Repartitions; got != 1 {
				t.Errorf("Repartitions = %d, want exactly 1", got)
			}
		})
	}
}
