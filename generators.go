package bandjoin

import (
	"io"
	"math/rand"

	"bandjoin/internal/data"
)

// Pareto generates the paper's pareto-z workload: two relations of n tuples
// each whose d join attributes follow a Pareto distribution with shape z over
// [1, ∞); high-frequency values coincide in S and T.
func Pareto(d int, z float64, n int, seed int64) (*Relation, *Relation) {
	return data.ParetoPair(d, z, n, seed)
}

// ReversePareto generates the paper's rv-pareto-z workload: S follows
// Pareto(z) and T a mirrored Pareto descending from 10^6, so dense regions of
// the two inputs do not coincide.
func ReversePareto(d int, z float64, n int, seed int64) (*Relation, *Relation) {
	return data.ReverseParetoPair(d, z, n, seed)
}

// EBirdCloud generates the surrogate for the paper's real ebird ⋈ cloud
// workload: two clustered spatio-temporal relations (time, latitude,
// longitude) with correlated hotspots.
func EBirdCloud(nS, nT int, seed int64) (*Relation, *Relation) {
	return data.EBirdCloudPair(nS, nT, seed)
}

// PTF generates the surrogate for the paper's Palomar Transient Factory
// workload: two 2-dimensional (right ascension, declination) catalogs of
// repeat observations of clustered celestial objects.
func PTF(n int, seed int64) (*Relation, *Relation) {
	return data.PTFPair(n, seed)
}

// UniformRelation generates one relation with n tuples drawn uniformly from
// the box [lo, hi).
func UniformRelation(name string, n int, lo, hi []float64, seed int64) *Relation {
	return data.NewUniform(lo, hi).Generate(name, n, rand.New(rand.NewSource(seed)))
}

// ReadCSV reads a relation from CSV (header row followed by one row of join
// attributes per tuple).
func ReadCSV(name string, r io.Reader) (*Relation, error) { return data.ReadCSV(name, r) }
