// Birdweather reproduces Example 1 of the paper: a scientist links bird
// sightings with weather reports that are "nearby" in space and time, using a
// 3-dimensional band-join on (time, latitude, longitude):
//
//	|B.time − W.time| ≤ 10  AND  |B.latitude − W.latitude| ≤ 0.5
//	AND |B.longitude − W.longitude| ≤ 0.5
//
// The example runs the join both on the in-process simulator and on a real
// (loopback) RPC cluster, showing that the same partitioner and metrics apply
// to both execution paths.
//
//	go run ./examples/birdweather
package main

import (
	"fmt"
	"log"

	"bandjoin"
)

func main() {
	// Surrogates for the paper's ebird (bird sightings) and cloud (weather
	// report) datasets: clustered spatio-temporal data with correlated
	// hotspots. Attributes are (time [days], latitude, longitude).
	birds, weather := bandjoin.EBirdCloud(60_000, 45_000, 7)

	band := bandjoin.Symmetric(10, 0.5, 0.5)

	// --- Simulated 12-worker cluster.
	sim, err := bandjoin.Join(birds, weather, band, bandjoin.Options{
		Workers:     12,
		Partitioner: bandjoin.RecPart(),
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated cluster (12 workers):")
	report(sim)

	// --- Real RPC data path: 4 worker processes on loopback ports.
	cl, err := bandjoin.StartLocalCluster(4)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	dist, err := cl.Join(birds, weather, band, bandjoin.Options{
		Partitioner: bandjoin.RecPart(),
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRPC cluster (%d workers):\n", cl.Workers())
	report(dist)

	if sim.Output != dist.Output {
		log.Fatalf("result cardinality differs between execution paths: %d vs %d", sim.Output, dist.Output)
	}
	fmt.Println("\nboth execution paths produced the same number of (sighting, weather) matches")
}

func report(r *bandjoin.Result) {
	fmt.Printf("  matches                 %d\n", r.Output)
	fmt.Printf("  total shuffled input    %d (duplication overhead %.1f%%)\n", r.TotalInput, 100*r.DupOverhead)
	fmt.Printf("  most loaded worker      input=%d output=%d (load overhead %.1f%%)\n", r.Im, r.Om, 100*r.LoadOverhead)
	fmt.Printf("  optimization time       %v\n", r.OptimizationTime.Round(1e6))
}
