// Salary reproduces the classic one-dimensional band-join example from the
// Oracle SQL Language Reference that the paper's introduction cites: find
// pairs of employees from two departments whose salaries differ by at most
// $100. It demonstrates the public API on hand-built relations (no generator)
// and the asymmetric band condition ("earns between $200 less and $100 more").
//
//	go run ./examples/salary
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bandjoin"
)

func main() {
	// Build the two inputs by hand: salaries of employees in two departments.
	// In a real application these would come from a table scan; here we draw
	// a skewed salary distribution (many junior salaries, few executive ones).
	rng := rand.New(rand.NewSource(2024))
	engineering := bandjoin.NewRelation("engineering", 1)
	sales := bandjoin.NewRelation("sales", 1)
	for i := 0; i < 30_000; i++ {
		engineering.Append(salary(rng))
	}
	for i := 0; i < 20_000; i++ {
		sales.Append(salary(rng))
	}

	// |salary difference| <= 100, the Oracle manual's example.
	symmetric := bandjoin.Symmetric(100)
	res, err := bandjoin.Join(engineering, sales, symmetric, bandjoin.Options{
		Workers:     8,
		Partitioner: bandjoin.RecPart(),
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symmetric band |ΔS| ≤ 100:  %d matching pairs, duplication %.2f%%, load overhead %.2f%%\n",
		res.Output, 100*res.DupOverhead, 100*res.LoadOverhead)

	// Asymmetric band: the sales employee earns between $200 less and $100
	// more than the engineering employee.
	asymmetric := bandjoin.Asymmetric([]float64{200}, []float64{100})
	res, err = bandjoin.Join(engineering, sales, asymmetric, bandjoin.Options{
		Workers:     8,
		Partitioner: bandjoin.RecPart(),
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asymmetric band [-200,+100]: %d matching pairs, duplication %.2f%%, load overhead %.2f%%\n",
		res.Output, 100*res.DupOverhead, 100*res.LoadOverhead)
}

// salary draws a right-skewed salary: a log-normal-ish base plus seniority
// bumps, rounded to whole dollars.
func salary(rng *rand.Rand) float64 {
	base := 45_000 + 40_000*rng.ExpFloat64()
	if base > 400_000 {
		base = 400_000
	}
	return float64(int(base))
}
