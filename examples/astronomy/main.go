// Astronomy reproduces the paper's PTF (Palomar Transient Factory) use case
// (Appendix A.5): a band self-join of a sky-survey observation catalog on
// right ascension and declination groups repeat observations of the same
// celestial object. The band width is a few arcseconds, i.e. tiny compared to
// the attribute domains, while the data is heavily clustered along survey
// fields — the regime where partitioning quality matters most.
//
// The example compares RecPart with the theoretical termination condition
// (which needs no cost model) against CSIO and 1-Bucket, reporting the
// paper's Table 16 metrics.
//
//	go run ./examples/astronomy
package main

import (
	"fmt"
	"log"

	"bandjoin"
)

func main() {
	// A catalog of 150,000 observations; the self-join uses the same catalog
	// on both sides.
	catalog, catalogCopy := bandjoin.PTF(150_000, 11)

	// 1 arcsecond = 1/3600 degree; the paper uses 1 and 3 arcseconds.
	arcsec := 1.0 / 3600
	for _, eps := range []float64{1 * arcsec, 3 * arcsec} {
		band := bandjoin.Uniform(2, eps)
		fmt.Printf("band width %.2e degrees (%.0f arcsec):\n", eps, eps*3600)
		for _, p := range []struct {
			name string
			pt   bandjoin.Partitioner
		}{
			{"RecPart (theoretical)", bandjoin.RecPartWith(bandjoin.RecPartOptions{Symmetric: true, Theoretical: true})},
			{"CSIO", bandjoin.CSIO()},
			{"1-Bucket", bandjoin.OneBucket()},
		} {
			res, err := bandjoin.Join(catalog, catalogCopy, band, bandjoin.Options{
				Workers:     24,
				Partitioner: p.pt,
				Seed:        5,
			})
			if err != nil {
				log.Fatalf("%s: %v", p.name, err)
			}
			fmt.Printf("  %-22s matches=%-9d I=%-9d Im=%-7d Om=%-7d dup=%5.1f%% load=%6.1f%%\n",
				p.name, res.Output, res.TotalInput, res.Im, res.Om, 100*res.DupOverhead, 100*res.LoadOverhead)
		}
		fmt.Println()
	}
}
