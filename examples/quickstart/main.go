// Quickstart: run a 3-dimensional band-join on skewed synthetic data with
// RecPart and compare it against the 1-Bucket and Grid-ε baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bandjoin"
)

func main() {
	// Two relations of 50,000 tuples whose three join attributes follow a
	// skewed Pareto distribution (the paper's pareto-1.5 workload, scaled
	// down). High-frequency values coincide in S and T, which is exactly the
	// case where naive partitioning either duplicates heavily or overloads
	// one worker.
	s, t := bandjoin.Pareto(3, 1.5, 50_000, 42)

	// Band-join condition: |S.Ai − T.Ai| ≤ 0.03 in every dimension.
	band := bandjoin.Uniform(3, 0.03)

	for _, p := range []struct {
		name string
		pt   bandjoin.Partitioner
	}{
		{"RecPart", bandjoin.RecPart()},
		{"1-Bucket", bandjoin.OneBucket()},
		{"Grid-eps", bandjoin.GridEps()},
	} {
		res, err := bandjoin.Join(s, t, band, bandjoin.Options{
			Workers:     16,
			Partitioner: p.pt,
			Seed:        1,
		})
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("%-9s output=%-8d I=%-8d dup=%6.1f%%  max-worker load overhead=%6.1f%%  opt=%v\n",
			p.name, res.Output, res.TotalInput, 100*res.DupOverhead, 100*res.LoadOverhead,
			res.OptimizationTime.Round(1e6))
	}

	fmt.Println()
	fmt.Println("RecPart should show near-zero duplication and a max worker load close")
	fmt.Println("to the lower bound, while 1-Bucket duplicates ~sqrt(w)x and Grid-eps ~3^d x.")
}
