package bandjoin

import (
	"fmt"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/exec"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/sample"
	"bandjoin/internal/wire"
)

// resolved is the fully defaulted and validated form of Options. It is the
// single source of option-resolution truth shared by the one-shot Join, the
// cluster path, and the engine — previously each path defaulted its knobs
// independently (and silently accepted nonsense like negative worker counts).
type resolved struct {
	Workers          int
	Partitioner      Partitioner
	Algorithm        localjoin.Algorithm // nil selects the adaptive default
	AlgorithmName    string              // wire name for cluster runs
	Model            CostModel
	Sampling         sample.Options
	CollectPairs     bool
	EstimateOnly     bool
	Seed             int64
	ChunkSize        int
	Window           int
	JoinParallelism  int
	MorselRows       int
	Serial           bool
	Compression      string
	MaxPlanDrift     float64
	MaxDeltaFraction float64
}

// resolve validates the options and fills defaults. Nonsensical values —
// negative Workers, ClusterChunkSize, ClusterWindow, ClusterJoinParallelism,
// or sample sizes — are errors rather than being silently replaced, so a
// caller who mis-derives a knob hears about it instead of getting a default.
func (o Options) resolve() (resolved, error) {
	var r resolved
	if o.Workers < 0 {
		return r, fmt.Errorf("bandjoin: Workers must be >= 0 (0 selects the default), got %d", o.Workers)
	}
	if o.InputSampleSize < 0 || o.OutputSampleSize < 0 {
		return r, fmt.Errorf("bandjoin: sample sizes must be >= 0, got input %d, output %d",
			o.InputSampleSize, o.OutputSampleSize)
	}
	if o.ClusterChunkSize < 0 {
		return r, fmt.Errorf("bandjoin: ClusterChunkSize must be >= 0, got %d", o.ClusterChunkSize)
	}
	if o.ClusterWindow < 0 {
		return r, fmt.Errorf("bandjoin: ClusterWindow must be >= 0, got %d", o.ClusterWindow)
	}
	if o.ClusterJoinParallelism < 0 {
		return r, fmt.Errorf("bandjoin: ClusterJoinParallelism must be >= 0, got %d", o.ClusterJoinParallelism)
	}
	if _, err := wire.ParseMode(o.ClusterCompression); err != nil {
		return r, fmt.Errorf("bandjoin: %w", err)
	}
	if o.PlannerParallelism < 0 {
		return r, fmt.Errorf("bandjoin: PlannerParallelism must be >= 0, got %d", o.PlannerParallelism)
	}
	if o.MaxPlanDrift < 0 {
		return r, fmt.Errorf("bandjoin: MaxPlanDrift must be >= 0 (0 disables drift-triggered re-partitioning), got %v", o.MaxPlanDrift)
	}
	if o.MaxDeltaFraction < 0 || o.MaxDeltaFraction > 1 {
		return r, fmt.Errorf("bandjoin: MaxDeltaFraction must be in [0, 1] (0 disables), got %v", o.MaxDeltaFraction)
	}

	r.Workers = o.Workers
	if r.Workers == 0 {
		r.Workers = 8
	}
	r.Partitioner = o.Partitioner
	if r.Partitioner == nil {
		r.Partitioner = defaultPartitioner(o.PlannerParallelism)
	}
	if o.LocalAlgorithm != "" {
		alg, ok := localjoin.ByName(o.LocalAlgorithm)
		if !ok {
			return r, fmt.Errorf("bandjoin: unknown local join algorithm %q", o.LocalAlgorithm)
		}
		r.Algorithm = alg
		r.AlgorithmName = o.LocalAlgorithm
	}
	r.Model = o.Model
	if (r.Model == costmodel.Model{}) {
		r.Model = costmodel.Default()
	}
	r.Sampling = sample.Options{
		InputSampleSize:  o.InputSampleSize,
		OutputSampleSize: o.OutputSampleSize,
		Seed:             o.Seed + 1,
	}
	if r.Sampling.InputSampleSize == 0 {
		r.Sampling = sample.DefaultOptions()
		r.Sampling.Seed = o.Seed + 1
	}
	r.CollectPairs = o.CollectPairs
	r.EstimateOnly = o.EstimateOnly
	r.Seed = o.Seed
	r.ChunkSize = o.ClusterChunkSize
	r.Window = o.ClusterWindow
	r.JoinParallelism = o.ClusterJoinParallelism
	r.MorselRows = o.MorselRows // negative is meaningful: the per-partition oracle path
	r.Serial = o.ClusterSerial
	r.Compression = o.ClusterCompression
	r.MaxPlanDrift = o.MaxPlanDrift
	r.MaxDeltaFraction = o.MaxDeltaFraction
	return r, nil
}

// execOptions converts the resolved options into the in-process executor's
// form.
func (r resolved) execOptions() exec.Options {
	return exec.Options{
		Workers:      r.Workers,
		Algorithm:    r.Algorithm,
		Model:        r.Model,
		Sampling:     r.Sampling,
		CollectPairs: r.CollectPairs,
		MorselRows:   r.MorselRows,
		Seed:         r.Seed,
	}
}
