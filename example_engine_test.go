package bandjoin_test

import (
	"context"
	"fmt"
	"log"

	"bandjoin"
)

// ExampleEngine registers two small relations once and serves several queries
// over them; the second query with the same shape is answered entirely from
// the engine's caches.
func ExampleEngine() {
	s := bandjoin.NewRelation("sensors", 1)
	t := bandjoin.NewRelation("events", 1)
	for _, v := range []float64{1.0, 2.0, 3.0, 10.0} {
		s.Append(v)
	}
	for _, v := range []float64{1.4, 2.6, 9.1} {
		t.Append(v)
	}

	engine := bandjoin.NewEngine(bandjoin.EngineOptions{})
	defer engine.Close()
	if err := engine.Register("sensors", s); err != nil {
		log.Fatal(err)
	}
	if err := engine.Register("events", t); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	opts := bandjoin.Options{Workers: 2}

	// |sensor - event| <= 0.5 matches (1.0, 1.4) and (3.0, 2.6).
	res, err := engine.Join(ctx, "sensors", "events", bandjoin.Uniform(1, 0.5), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eps=0.5 pairs:", res.Output)

	// A wider band over the same pair reuses the cached input sample; only
	// the optimization and join rerun.
	res, err = engine.Join(ctx, "sensors", "events", bandjoin.Uniform(1, 1.0), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eps=1.0 pairs:", res.Output)

	// Repeating a query is a plan-cache hit: no sampling, no optimization,
	// and (with retention on) no shuffle.
	if _, err = engine.Join(ctx, "sensors", "events", bandjoin.Uniform(1, 1.0), opts); err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("queries=%d sampleHits=%d planHits=%d\n", st.Queries, st.SampleHits, st.PlanHits)
	// Output:
	// eps=0.5 pairs: 2
	// eps=1.0 pairs: 5
	// queries=3 sampleHits=2 planHits=1
}

// ExampleCluster_NewEngine serves repeated queries across RPC workers: the
// first query ships the shuffled partitions to the workers' retained
// registries, and the repeat joins them in place, moving zero shuffle bytes.
func ExampleCluster_NewEngine() {
	s, t := bandjoin.Pareto(2, 1.5, 2000, 1)
	band := bandjoin.Uniform(2, 0.05)

	cl, err := bandjoin.StartLocalCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	engine := cl.NewEngine(bandjoin.EngineOptions{})
	defer engine.Close()
	if err := engine.Register("s", s); err != nil {
		log.Fatal(err)
	}
	if err := engine.Register("t", t); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	cold, err := engine.Join(ctx, "s", "t", band, bandjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	warm, err := engine.Join(ctx, "s", "t", band, bandjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outputs equal:", cold.Output == warm.Output)
	fmt.Println("cold shuffled bytes > 0:", cold.ShuffleBytes > 0)
	fmt.Println("warm shuffled bytes:", warm.ShuffleBytes)
	// Output:
	// outputs equal: true
	// cold shuffled bytes > 0: true
	// warm shuffled bytes: 0
}
