// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each BenchmarkTable*/BenchmarkFigure* corresponds to one paper
// artifact (see DESIGN.md for the index) and prints the regenerated table so
// that `go test -bench=. -benchmem | tee bench_output.txt` leaves a complete
// record; EXPERIMENTS.md discusses paper-vs-measured for each.
//
// The Ablation* benchmarks study the design choices DESIGN.md calls out
// (split-score smoothing, sample size, termination rule, symmetric splits),
// and the Micro* benchmarks measure the building blocks in isolation.
package bandjoin_test

import (
	"fmt"
	"os"
	"testing"

	"bandjoin"
	"bandjoin/internal/bench"
	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// benchmarkExperiment runs one paper experiment and reports RecPart's average
// overheads as custom benchmark metrics.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := bench.DefaultConfig()
	cfg.Seed = 1
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run(cfg)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
	b.StopTimer()
	if err := bench.Render(os.Stdout, tbl); err != nil {
		b.Fatalf("rendering %s: %v", id, err)
	}
	sum := bench.Summarize(tbl)
	for _, name := range []string{"RecPart", "RecPart-S"} {
		if s, ok := sum[name]; ok {
			b.ReportMetric(100*s.DupOverhead, "recpart-dup-%")
			b.ReportMetric(100*s.LoadOverhead, "recpart-load-%")
			break
		}
	}
}

func BenchmarkTable1_Workloads(b *testing.B)       { benchmarkExperiment(b, "workloads") }
func BenchmarkTable2a_BandWidth1D(b *testing.B)    { benchmarkExperiment(b, "2a") }
func BenchmarkTable2b_BandWidth3D(b *testing.B)    { benchmarkExperiment(b, "2b") }
func BenchmarkTable2c_BandWidthReal(b *testing.B)  { benchmarkExperiment(b, "2c") }
func BenchmarkTable3_Skew(b *testing.B)            { benchmarkExperiment(b, "3") }
func BenchmarkTable4a_ScaleSynthetic(b *testing.B) { benchmarkExperiment(b, "4a") }
func BenchmarkTable4b_ScaleReal(b *testing.B)      { benchmarkExperiment(b, "4b") }
func BenchmarkTable4c_ScaleInput8D(b *testing.B)   { benchmarkExperiment(b, "4c") }
func BenchmarkTable4d_ScaleWorkers8D(b *testing.B) { benchmarkExperiment(b, "4d") }
func BenchmarkTable5_GridSize(b *testing.B)        { benchmarkExperiment(b, "5") }
func BenchmarkTable6_GridStarReverse(b *testing.B) { benchmarkExperiment(b, "6") }
func BenchmarkTable7_IEJoin(b *testing.B)          { benchmarkExperiment(b, "7") }
func BenchmarkTable8_BetaRatio(b *testing.B)       { benchmarkExperiment(b, "8") }
func BenchmarkTable9_Symmetric(b *testing.B)       { benchmarkExperiment(b, "9") }
func BenchmarkTable12_ModelAccuracy(b *testing.B)  { benchmarkExperiment(b, "12") }
func BenchmarkTable15_Dimensionality(b *testing.B) { benchmarkExperiment(b, "15") }
func BenchmarkTable16_PTF(b *testing.B)            { benchmarkExperiment(b, "16") }
func BenchmarkFigure4_Scatter(b *testing.B)        { benchmarkExperiment(b, "fig4") }

// -----------------------------------------------------------------------------
// Ablations of RecPart's design choices

// ablationWorkload is the shared workload for the ablation benchmarks: skewed
// 3D Pareto data where the dense region must be isolated and 1-Bucket'ed.
func ablationWorkload() (*bandjoin.Relation, *bandjoin.Relation, bandjoin.Band) {
	s, t := bandjoin.Pareto(3, 1.5, 40_000, 3)
	return s, t, bandjoin.Uniform(3, 0.03)
}

// BenchmarkAblationDupSmoothing sweeps the split-score smoothing budget δ
// (DESIGN.md's noted deviation from the literal paper scoring) and reports the
// resulting duplication and load overheads.
func BenchmarkAblationDupSmoothing(b *testing.B) {
	s, t, band := ablationWorkload()
	for _, frac := range []float64{0.00002, 0.0002, 0.002, 0.02, 0.2} {
		b.Run(fmt.Sprintf("delta=%g", frac), func(b *testing.B) {
			var res *bandjoin.Result
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Symmetric = false
				opts.DupSmoothingFraction = frac
				r, err := exec.Run(core.New(opts), s, t, band, exec.DefaultOptions(30))
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(100*res.DupOverhead, "dup-%")
			b.ReportMetric(100*res.LoadOverhead, "load-%")
		})
	}
}

// BenchmarkAblationSampleSize studies how the optimization-phase sample size
// affects partitioning quality and optimization time.
func BenchmarkAblationSampleSize(b *testing.B) {
	s, t, band := ablationWorkload()
	for _, size := range []int{500, 2000, 6000, 16000} {
		b.Run(fmt.Sprintf("sample=%d", size), func(b *testing.B) {
			var res *bandjoin.Result
			for i := 0; i < b.N; i++ {
				opts := exec.DefaultOptions(30)
				opts.Sampling = sample.Options{InputSampleSize: size, OutputSampleSize: size / 2, Seed: 9}
				r, err := exec.Run(core.NewRecPartS(), s, t, band, opts)
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(100*res.DupOverhead, "dup-%")
			b.ReportMetric(100*res.LoadOverhead, "load-%")
			b.ReportMetric(res.OptimizationTime.Seconds()*1000, "opt-ms")
		})
	}
}

// BenchmarkAblationTermination compares the applied (cost model) and
// theoretical (lower-bound) termination rules.
func BenchmarkAblationTermination(b *testing.B) {
	s, t, band := ablationWorkload()
	for _, mode := range []core.Termination{core.TerminateApplied, core.TerminateTheoretical} {
		b.Run(mode.String(), func(b *testing.B) {
			var res *bandjoin.Result
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.Termination = mode
				r, err := exec.Run(core.New(opts), s, t, band, exec.DefaultOptions(30))
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(100*res.DupOverhead, "dup-%")
			b.ReportMetric(100*res.LoadOverhead, "load-%")
		})
	}
}

// BenchmarkAblationSymmetric compares RecPart against RecPart-S on
// reverse-Pareto data, where symmetric splits are the difference between
// near-perfect and badly imbalanced plans (Table 9 / Table 14).
func BenchmarkAblationSymmetric(b *testing.B) {
	s, t := bandjoin.ReversePareto(3, 1.5, 40_000, 3)
	band := bandjoin.Uniform(3, 1000)
	for _, spec := range []struct {
		name string
		pt   partition.Partitioner
	}{{"RecPart-S", core.NewRecPartS()}, {"RecPart", core.NewDefault()}} {
		b.Run(spec.name, func(b *testing.B) {
			var res *bandjoin.Result
			for i := 0; i < b.N; i++ {
				r, err := exec.Run(spec.pt, s, t, band, exec.DefaultOptions(30))
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(float64(res.Im), "Im-tuples")
			b.ReportMetric(100*res.LoadOverhead, "load-%")
		})
	}
}

// -----------------------------------------------------------------------------
// Micro-benchmarks of the building blocks

// BenchmarkMicroLocalJoin measures the local band-join algorithms on one
// partition-sized input.
func BenchmarkMicroLocalJoin(b *testing.B) {
	s, t := data.ParetoPair(3, 1.5, 20_000, 5)
	band := data.Uniform(3, 0.03)
	for _, alg := range []localjoin.Algorithm{localjoin.SortProbe{}, localjoin.GridSortScan{}} {
		b.Run(alg.Name(), func(b *testing.B) {
			var out int64
			for i := 0; i < b.N; i++ {
				out = alg.Join(s, t, band, nil)
			}
			b.ReportMetric(float64(out), "pairs")
		})
	}
}

// BenchmarkMicroOptimization measures the optimization phase (planning only)
// of every partitioner on the same samples.
func BenchmarkMicroOptimization(b *testing.B) {
	s, t := data.ParetoPair(3, 1.5, 40_000, 5)
	band := data.Uniform(3, 0.03)
	smp, err := sample.Draw(s, t, band, sample.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ctx := &partition.Context{Band: band, Workers: 30, Sample: smp, Model: costmodel.Default(), Seed: 1}
	for _, spec := range []struct {
		name string
		pt   partition.Partitioner
	}{
		{"RecPart", core.NewDefault()},
		{"RecPart-S", core.NewRecPartS()},
		{"CSIO", bandjoinCSIO()},
		{"1-Bucket", bandjoinOneBucket()},
		{"Grid-eps", bandjoinGrid()},
	} {
		b.Run(spec.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spec.pt.Plan(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMicroShuffle measures the assignment (map-phase) throughput of a
// RecPart plan.
func BenchmarkMicroShuffle(b *testing.B) {
	s, t := data.ParetoPair(3, 1.5, 40_000, 5)
	band := data.Uniform(3, 0.03)
	smp, err := sample.Draw(s, t, band, sample.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ctx := &partition.Context{Band: band, Workers: 30, Sample: smp, Model: costmodel.Default(), Seed: 1}
	plan, err := core.NewDefault().Plan(ctx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var dst []int
	for i := 0; i < b.N; i++ {
		for j := 0; j < t.Len(); j++ {
			dst = plan.AssignT(int64(j), t.Key(j), dst[:0])
		}
	}
	b.ReportMetric(float64(t.Len()), "tuples/op")
}

// The public partitioner constructors return the partition.Partitioner
// interface; tiny adapters keep the micro-benchmark table uniform.
func bandjoinCSIO() partition.Partitioner      { return bandjoin.CSIO() }
func bandjoinOneBucket() partition.Partitioner { return bandjoin.OneBucket() }
func bandjoinGrid() partition.Partitioner      { return bandjoin.GridEps() }
