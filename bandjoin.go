// Package bandjoin is a library for running distributed band-joins with
// near-optimal partitioning, reproducing "Near-Optimal Distributed Band-Joins
// through Recursive Partitioning" (Li, Gatterbauer, Riedewald, SIGMOD 2020).
//
// A band-join of relations S and T returns all pairs (s, t) whose join
// attributes are within a per-dimension band width of each other,
// |s.Ai − t.Ai| ≤ εi. To run one on w workers the input must be partitioned;
// the partitioning determines how much input is duplicated and how evenly the
// load is balanced. This package provides:
//
//   - RecPart, the paper's recursive partitioner, plus the baselines it is
//     evaluated against (1-Bucket, Grid-ε, Grid*, CSIO, distributed IEJoin);
//   - a single-process cluster simulator and a net/rpc based distributed
//     executor, both reporting the paper's evaluation metrics (total input I,
//     max-worker input Im and output Om, max load Lm, lower bounds, and
//     relative overheads);
//   - Engine, a serving layer over either executor: register relations once,
//     then serve many concurrent queries with cached input samples, cached
//     plans, and worker-retained shuffled partitions (repeated queries move
//     zero shuffle bytes);
//   - data generators for the paper's workloads (Pareto, reverse Pareto,
//     ebird/cloud and PTF surrogates), sampling, and the abstract cost model.
//
// The smallest complete program:
//
//	s, t := bandjoin.Pareto(3, 1.5, 100_000, 1)
//	res, err := bandjoin.Join(s, t, bandjoin.Uniform(3, 2.0), bandjoin.Options{Workers: 8})
//	if err != nil { ... }
//	fmt.Println(res.Output, res.DupOverhead, res.LoadOverhead)
package bandjoin

import (
	"context"
	"fmt"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/partition"
)

// Relation is a collection of tuples; only the join attributes are stored.
type Relation = data.Relation

// Band is a band-join condition over d join attributes.
type Band = data.Band

// Result reports the outcome and accounting of one distributed band-join.
type Result = exec.Result

// Pair identifies one join result by the original tuple indices in S and T.
type Pair = exec.Pair

// Partitioner is a distributed band-join partitioning algorithm.
type Partitioner = partition.Partitioner

// Plan is the output of a partitioner's optimization phase.
type Plan = partition.Plan

// CostModel is the linear running-time model M(I, Im, Om) = β0+β1·I+β2·Im+β3·Om.
type CostModel = costmodel.Model

// NewRelation returns an empty relation with the given name and number of
// join attributes.
func NewRelation(name string, dims int) *Relation { return data.NewRelation(name, dims) }

// Symmetric returns the band condition |s.Ai − t.Ai| ≤ eps[i].
func Symmetric(eps ...float64) Band { return data.Symmetric(eps...) }

// Uniform returns a symmetric band condition with the same width in all d
// dimensions.
func Uniform(d int, eps float64) Band { return data.Uniform(d, eps) }

// Asymmetric returns the band condition s.Ai − low[i] ≤ t.Ai ≤ s.Ai + high[i].
func Asymmetric(low, high []float64) Band { return data.Asymmetric(low, high) }

// DefaultCostModel returns the cost model with the paper's cluster ratios
// (β2/β3 ≈ 4).
func DefaultCostModel() CostModel { return costmodel.Default() }

// CalibrateCostModel fits the cost model's coefficients on a local
// micro-benchmark (the paper's offline cluster profiling step).
func CalibrateCostModel() (CostModel, error) {
	res, err := costmodel.Calibrate(costmodel.DefaultCalibration())
	if err != nil {
		return CostModel{}, err
	}
	return res.Model, nil
}

// Options configures Join.
type Options struct {
	// Workers is the number of (simulated) worker machines; it defaults to 8.
	Workers int
	// Partitioner selects the partitioning algorithm; nil selects RecPart
	// with symmetric partitioning.
	Partitioner Partitioner
	// LocalAlgorithm names the per-worker join algorithm: "sort-probe"
	// (default), "grid-sort-scan", or "nested-loop".
	LocalAlgorithm string
	// Model supplies the β coefficients; the zero value selects the default
	// model.
	Model CostModel
	// InputSampleSize and OutputSampleSize bound the optimization-phase
	// samples; zero selects the defaults.
	InputSampleSize  int
	OutputSampleSize int
	// CollectPairs materializes the result pairs in Result.Pairs (intended
	// for small inputs and tests).
	CollectPairs bool
	// EstimateOnly skips the shuffle and local joins and reports sample-based
	// estimates of I, Im, Om instead (useful for very high-duplication
	// configurations).
	EstimateOnly bool
	// MorselRows sets the join execution grain on both planes: partitions'
	// probe (S) sides are split into morsels of this many rows, executed by a
	// shared worker pool draining a largest-partition-first queue, so one fat
	// partition cannot bound query latency (skew immunity). 0 (the default)
	// sizes morsels automatically from the partition sizes and the join
	// parallelism; > 0 fixes the row count; < 0 disables morsels and runs the
	// retained one-goroutine-per-partition path (the correctness oracle and
	// skew baseline). Results are bit-identical for every setting.
	MorselRows int
	// PlannerParallelism bounds the worker pool of the default partitioner's
	// parallel best-split evaluation (0 = GOMAXPROCS, 1 = inline). It applies
	// only when Partitioner is nil; an explicit partitioner carries its own
	// configuration (RecPartOptions.PlannerParallelism). Plans are
	// bit-identical regardless of the value.
	PlannerParallelism int
	// Seed makes sampling and randomized assignment deterministic.
	Seed int64

	// The remaining knobs tune the RPC data plane and apply only to cluster
	// runs (Cluster.Join); zeros select the defaults.

	// ClusterChunkSize is the number of tuples per Load RPC (default 4096).
	ClusterChunkSize int
	// ClusterWindow is the maximum number of Load RPCs in flight per worker
	// on the streaming shuffle (default 4).
	ClusterWindow int
	// ClusterJoinParallelism bounds the number of partition joins each worker
	// runs concurrently (default: the worker's GOMAXPROCS).
	ClusterJoinParallelism int
	// ClusterSerial selects the serial reference data plane (tuple-at-a-time
	// routing, blocking per-chunk RPCs, sequential worker joins) — the
	// correctness oracle and benchmark baseline — instead of the pipelined
	// streaming plane.
	ClusterSerial bool
	// ClusterCompression selects the streaming shuffle's wire encoding:
	// "auto" (default; per-column delta+varint with entropy-gated LZ4-style
	// block compression), "delta" (varint columns only), "lz4" (always
	// attempt block compression), or "off" (the v1 row-major packed plane,
	// retained as the equivalence oracle). Workers that have not negotiated
	// the v2 wire format fall back to v1 automatically.
	ClusterCompression string

	// The drift knobs govern when an Engine replaces a cached plan whose
	// quality degraded under Engine.Append. Both are off (0) by default:
	// appends are still absorbed, but plans are never replaced. They have no
	// effect on one-shot Join.

	// MaxPlanDrift triggers a background re-partition when a retained plan's
	// observed load_overhead exceeds its predicted overhead by more than this
	// amount (absolute, e.g. 0.25) after appends. The old plan keeps serving
	// until the replacement is primed.
	MaxPlanDrift float64
	// MaxDeltaFraction triggers a background re-partition when appended rows
	// exceed this fraction (0..1, e.g. 0.3) of a retained plan's total input,
	// regardless of observed drift.
	MaxDeltaFraction float64
}

// Join runs the band-join of s and t on the in-process cluster simulator.
//
// It is implemented as a throwaway Engine serving exactly one query, so the
// one-shot path and the serving path (Engine.Join) are the same code — the
// long-standing tests of Join pin the engine refactor. Callers issuing many
// queries over the same relations should hold an Engine instead and let it
// cache samples, plans, and shuffled partitions across queries.
func Join(s, t *Relation, band Band, opts Options) (*Result, error) {
	if s == nil || t == nil {
		return nil, fmt.Errorf("bandjoin: nil input relation")
	}
	// Retention is pointless on a single-query engine; disabling it avoids
	// holding a second copy of the shuffled input until Close.
	e := NewEngine(EngineOptions{DisableRetention: true})
	defer e.Close()
	if err := e.Register("s", s); err != nil {
		return nil, err
	}
	if err := e.Register("t", t); err != nil {
		return nil, err
	}
	return e.Join(context.Background(), "s", "t", band, opts)
}

// Count runs the band-join and returns only the result cardinality.
func Count(s, t *Relation, band Band, opts Options) (int64, error) {
	opts.CollectPairs = false
	res, err := Join(s, t, band, opts)
	if err != nil {
		return 0, err
	}
	return res.Output, nil
}
