package bandjoin

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bandjoin/internal/cluster"
	"bandjoin/internal/exec"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/obs"
	"bandjoin/internal/sample"
)

// Engine serves many band-join queries over long-lived registered datasets,
// amortizing the paper's per-query pipeline (sample → optimize → shuffle →
// local join) across executions. Three cache layers sit between a query and
// the work it would cost one-shot:
//
//  1. Input samples. Drawing the optimizer's input sample is the only part of
//     the optimization phase that scans the full inputs; the engine draws it
//     once per (dataset pair, sampling configuration) and derives the
//     band-dependent output sample per distinct band, so replanning the same
//     pair for a new ε never rescans the inputs.
//  2. Plans. The optimization phase's product — the partitioning plan — is
//     cached under (dataset pair, band, partitioner configuration, workers,
//     cost model, sampling configuration, seed); a repeated query skips
//     optimization entirely.
//  3. Shuffled partitions. Unless retention is disabled, the shuffle's output
//     is retained under the plan's fingerprint — in memory for the in-process
//     plane, in the workers' retained-plan registry for the RPC plane — so a
//     repeated query moves zero shuffle bytes and goes straight to the local
//     joins.
//
// Caches are invalidated by Unregister (and by re-Register of the same name,
// which bumps the dataset's version so stale entries can never serve a new
// relation). Engine is safe for concurrent use; concurrent identical queries
// share one sampling, one optimization, and one shuffle.
type Engine struct {
	id        string
	plane     enginePlane
	retention bool

	mu       sync.Mutex // guards datasets, samples, plans, closed
	datasets map[string]*engineDataset
	samples  map[sampleKey]*sampleEntry
	plans    map[planKey]*planEntry
	closed   bool

	m *engineMetrics
}

// engineMetrics is the engine's observability surface: per-tier cache
// hit/miss counters, latency histograms, data-plane totals, and scrape-time
// occupancy gauges, all in the engine's own registry (see Engine.Metrics).
type engineMetrics struct {
	reg *obs.Registry

	queries     *obs.Counter
	queryErrors *obs.Counter

	sampleHits, sampleMisses     *obs.Counter
	planHits, planMisses         *obs.Counter
	retainedHits, retainedMisses *obs.Counter

	shuffleBytes *obs.Counter
	shuffleRPCs  *obs.Counter

	querySeconds *obs.Histogram
	planSeconds  *obs.Histogram
}

func newEngineMetrics(e *Engine) *engineMetrics {
	reg := obs.NewRegistry()
	hits := "Engine cache hits by tier (sample, plan, retained)."
	misses := "Engine cache misses by tier (sample, plan, retained)."
	m := &engineMetrics{
		reg:            reg,
		queries:        reg.Counter("bandjoin_engine_queries_total", "Join calls served by the engine."),
		queryErrors:    reg.Counter("bandjoin_engine_query_errors_total", "Join calls that returned an error."),
		sampleHits:     reg.Counter("bandjoin_engine_cache_hits_total", hits, "tier", "sample"),
		sampleMisses:   reg.Counter("bandjoin_engine_cache_misses_total", misses, "tier", "sample"),
		planHits:       reg.Counter("bandjoin_engine_cache_hits_total", hits, "tier", "plan"),
		planMisses:     reg.Counter("bandjoin_engine_cache_misses_total", misses, "tier", "plan"),
		retainedHits:   reg.Counter("bandjoin_engine_cache_hits_total", hits, "tier", "retained"),
		retainedMisses: reg.Counter("bandjoin_engine_cache_misses_total", misses, "tier", "retained"),
		shuffleBytes:   reg.Counter("bandjoin_engine_shuffle_bytes_total", "Wire bytes moved by engine queries (cluster plane)."),
		shuffleRPCs:    reg.Counter("bandjoin_engine_shuffle_rpcs_total", "Load RPCs issued by engine queries (cluster plane)."),
		querySeconds:   reg.Histogram("bandjoin_engine_query_seconds", "End-to-end Join latency.", obs.LatencyBuckets()),
		planSeconds:    reg.Histogram("bandjoin_engine_plan_seconds", "Per-query planning-stage latency (≈0 on plan-cache hits).", obs.LatencyBuckets()),
	}
	entries := "Engine cache occupancy by tier (entries)."
	reg.GaugeFunc("bandjoin_engine_cache_entries", entries, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.datasets))
	}, "tier", "dataset")
	reg.GaugeFunc("bandjoin_engine_cache_entries", entries, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.samples))
	}, "tier", "sample")
	reg.GaugeFunc("bandjoin_engine_cache_entries", entries, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.plans))
	}, "tier", "plan")
	reg.GaugeFunc("bandjoin_engine_cache_entries", entries, func() float64 {
		plans, _ := e.plane.retained()
		return float64(plans)
	}, "tier", "retained")
	bytesHelp := "Engine cache occupancy by tier (approximate key/ID bytes)."
	reg.GaugeFunc("bandjoin_engine_cache_bytes", bytesHelp, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		var total int64
		for _, se := range e.samples {
			total += se.bytes.Load()
		}
		return float64(total)
	}, "tier", "sample")
	reg.GaugeFunc("bandjoin_engine_cache_bytes", bytesHelp, func() float64 {
		_, bytes := e.plane.retained()
		return float64(bytes)
	}, "tier", "retained")
	return m
}

// Metrics returns the engine's metrics registry, servable via obs.Handler /
// obs.Serve alongside other components' registries.
func (e *Engine) Metrics() *obs.Registry { return e.m.reg }

// EngineOptions configures an Engine.
type EngineOptions struct {
	// DisableRetention turns off the third cache layer (shuffled partitions):
	// samples and plans are still cached, but every query reshuffles. Use it
	// when inputs are large relative to memory, or for throwaway engines.
	DisableRetention bool
}

// engineSeq disambiguates engine instances: plan fingerprints are prefixed
// with the engine id so two engines sharing one long-lived worker fleet can
// never serve each other's retained partitions (their equally-named datasets
// may hold different data).
var engineSeq atomic.Int64

// NewEngine returns an engine executing on the in-process cluster simulator.
func NewEngine(opts EngineOptions) *Engine {
	return newEngine(&inProcessPlane{}, opts)
}

// NewEngine returns an engine executing across the cluster's RPC workers:
// retained partitions live on the workers, and a warm query's shuffle moves
// zero bytes over the wire. The engine does not own the cluster connection;
// close the Cluster separately.
func (c *Cluster) NewEngine(opts EngineOptions) *Engine {
	return newEngine(&clusterPlane{coord: c.coord}, opts)
}

func newEngine(p enginePlane, opts EngineOptions) *Engine {
	e := &Engine{
		id:        fmt.Sprintf("eng%d-%d", engineSeq.Add(1), time.Now().UnixNano()),
		plane:     p,
		retention: !opts.DisableRetention,
		datasets:  make(map[string]*engineDataset),
		samples:   make(map[sampleKey]*sampleEntry),
		plans:     make(map[planKey]*planEntry),
	}
	e.m = newEngineMetrics(e)
	return e
}

type engineDataset struct {
	rel     *Relation
	version uint64
}

// sampleKey identifies one cached input sample: the dataset pair (by name and
// version) plus everything DrawInputs consults.
type sampleKey struct {
	s, t       string
	sVer, tVer uint64
	sampling   sample.Options
}

type sampleEntry struct {
	once sync.Once
	in   *sample.InputSample
	err  error
	// bytes is the drawn sample's approximate footprint, stored after the
	// once completes so the occupancy gauge can read it without racing the
	// draw.
	bytes atomic.Int64
}

// planKey identifies one cached plan: the dataset pair plus everything the
// optimization phase consults — band, partitioner configuration, worker
// count, cost model, sampling configuration, and seed.
type planKey struct {
	s, t       string
	sVer, tVer uint64
	band       string
	pt         string
	workers    int
	model      CostModel
	sampling   sample.Options
	seed       int64
}

type planEntry struct {
	once sync.Once
	prep *exec.Prepared
	err  error

	// planID is the retention fingerprint, computed deterministically from
	// the plan key when the entry is created (under e.mu, so the invalidation
	// paths can read it there without racing the once). Empty when retention
	// is disabled: nothing is ever resident, so nothing needs evicting.
	planID string
}

// Register adds (or replaces) a named dataset. Re-registering a name bumps
// its version: cached samples, plans, and retained partitions derived from
// the old relation are invalidated and the memory they pin is released.
func (e *Engine) Register(name string, rel *Relation) error {
	if name == "" {
		return fmt.Errorf("bandjoin: dataset name must be non-empty")
	}
	if rel == nil {
		return fmt.Errorf("bandjoin: nil input relation")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: engine is closed")
	}
	version := uint64(1)
	var evict []string
	if old, ok := e.datasets[name]; ok {
		version = old.version + 1
		evict = e.dropDerivedLocked(name)
	}
	e.datasets[name] = &engineDataset{rel: rel, version: version}
	e.mu.Unlock()
	e.evictAll(evict)
	return nil
}

// Unregister removes a dataset and invalidates every cached sample, plan, and
// retained partition set derived from it. Unregistering an unknown name is an
// error.
func (e *Engine) Unregister(name string) error {
	e.mu.Lock()
	if _, ok := e.datasets[name]; !ok {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: unknown dataset %q", name)
	}
	evict := e.dropDerivedLocked(name)
	delete(e.datasets, name)
	e.mu.Unlock()
	e.evictAll(evict)
	return nil
}

// dropDerivedLocked removes cache entries touching the named dataset and
// returns the retained-plan fingerprints to evict from the execution plane.
// Callers hold e.mu; the eviction itself (per-worker RPCs on the cluster
// plane) must happen after releasing it so concurrent queries are not stalled
// behind network round trips.
func (e *Engine) dropDerivedLocked(name string) []string {
	var evict []string
	for k := range e.samples {
		if k.s == name || k.t == name {
			delete(e.samples, k)
		}
	}
	for k, pe := range e.plans {
		if k.s == name || k.t == name {
			if pe.planID != "" {
				evict = append(evict, pe.planID)
			}
			delete(e.plans, k)
		}
	}
	return evict
}

// evictAll drops the given retained-plan fingerprints from the execution
// plane. Call without holding e.mu.
func (e *Engine) evictAll(planIDs []string) {
	for _, id := range planIDs {
		e.plane.evict(id)
	}
}

// Datasets returns the registered dataset names.
func (e *Engine) Datasets() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.datasets))
	for name := range e.datasets {
		names = append(names, name)
	}
	return names
}

// EngineStats reports cache occupancy and hit counts.
type EngineStats struct {
	// Datasets, CachedSamples, and CachedPlans are current cache occupancy.
	Datasets      int
	CachedSamples int
	CachedPlans   int
	// Queries counts Join calls; SampleHits, PlanHits, and RetainedHits count
	// how many of them were served from the respective cache tier.
	Queries      int64
	SampleHits   int64
	PlanHits     int64
	RetainedHits int64
}

// Stats returns a snapshot of the engine's cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Datasets:      len(e.datasets),
		CachedSamples: len(e.samples),
		CachedPlans:   len(e.plans),
		Queries:       e.m.queries.Value(),
		SampleHits:    e.m.sampleHits.Value(),
		PlanHits:      e.m.planHits.Value(),
		RetainedHits:  e.m.retainedHits.Value(),
	}
}

// Close releases the engine's caches and evicts its retained partitions from
// the execution plane. The engine rejects queries afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	var evict []string
	for _, pe := range e.plans {
		if pe.planID != "" {
			evict = append(evict, pe.planID)
		}
	}
	e.datasets, e.samples, e.plans = nil, nil, nil
	e.mu.Unlock()
	e.evictAll(evict)
	e.plane.close()
}

// Join runs the band-join of the registered datasets sName and tName. The
// ctx bounds the whole query: it is checked between pipeline stages and
// inside execution — between shuffle passes, between partition joins, and (on
// the cluster plane) on every RPC — so cancellation aborts a running query
// promptly with ctx.Err(). Repeated queries are served from the caches: same
// pair and sampling → no input scan; same full query shape → no optimization;
// retention on → no shuffle.
//
// Every successful query carries a structured trace (Result.Trace): timed
// spans for the sample/plan/shuffle/join/merge stages, the cache-tier
// outcomes, bytes moved, and any fault events the coordinator recorded.
func (e *Engine) Join(ctx context.Context, sName, tName string, band Band, opts Options) (res *Result, err error) {
	start := time.Now()
	defer func() {
		if err != nil {
			e.m.queryErrors.Inc()
		}
	}()
	r, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	if w := e.plane.workers(); w > 0 {
		r.Workers = w
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("bandjoin: engine is closed")
	}
	ds, okS := e.datasets[sName]
	dt, okT := e.datasets[tName]
	e.mu.Unlock()
	if !okS {
		return nil, fmt.Errorf("bandjoin: unknown dataset %q", sName)
	}
	if !okT {
		return nil, fmt.Errorf("bandjoin: unknown dataset %q", tName)
	}
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if ds.rel.Dims() != band.Dims() || dt.rel.Dims() != band.Dims() {
		return nil, fmt.Errorf("bandjoin: band condition has %d dimensions but inputs have %d and %d",
			band.Dims(), ds.rel.Dims(), dt.rel.Dims())
	}
	e.m.queries.Inc()
	tr := &exec.QueryTrace{
		S: sName, T: tName,
		Band:         fmt.Sprintf("%v|%v", band.Low, band.High),
		StartedAt:    start,
		RetainedTier: exec.TierOff,
	}

	// Stage 1: input sample (cached per dataset pair and sampling config).
	sampleStart := time.Now()
	se, hit := e.sampleFor(sampleKey{s: sName, t: tName, sVer: ds.version, tVer: dt.version, sampling: r.Sampling})
	tr.SampleTier = exec.TierMiss
	if hit {
		e.m.sampleHits.Inc()
		tr.SampleTier = exec.TierHit
	} else {
		e.m.sampleMisses.Inc()
	}
	se.once.Do(func() {
		se.in, se.err = sample.DrawInputs(ds.rel, dt.rel, r.Sampling)
		if se.err == nil {
			se.bytes.Store(inputSampleBytes(se.in))
		}
	})
	if se.err != nil {
		return nil, fmt.Errorf("bandjoin: sampling: %w", se.err)
	}
	tr.AddSpan("sample", sampleStart, time.Now(), tr.SampleTier)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: plan (cached per full query shape). The reported optimization
	// time is this query's actual planning cost — the wall time spent in this
	// stage — not the cached plan's original cost: a plan-cache hit reports
	// (approximately) zero, a miss reports the sample derivation plus the
	// partitioner's optimization, and a query that arrives while an identical
	// one is planning reports its wait.
	planStart := time.Now()
	pk := planKey{
		s: sName, t: tName, sVer: ds.version, tVer: dt.version,
		band:     fmt.Sprintf("%v|%v", band.Low, band.High),
		pt:       partitionerFingerprint(r.Partitioner),
		workers:  r.Workers,
		model:    r.Model,
		sampling: r.Sampling,
		seed:     r.Seed,
	}
	pe, hit := e.planFor(pk)
	tr.PlanTier = exec.TierMiss
	if hit {
		e.m.planHits.Inc()
		tr.PlanTier = exec.TierHit
	} else {
		e.m.planMisses.Inc()
	}
	pe.once.Do(func() {
		smp, err := se.in.ForBand(band)
		if err != nil {
			pe.err = err
			return
		}
		pe.prep, pe.err = exec.PlanQuery(r.Partitioner, smp, band, r.execOptions())
	})
	if pe.err != nil {
		return nil, pe.err
	}
	planTime := time.Since(planStart)
	e.m.planSeconds.ObserveDuration(planTime)
	tr.AddSpan("plan", planStart, time.Now(), tr.PlanTier)
	tr.Partitioner = pe.prep.Partitioner
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 3: execute (or estimate, which never touches the full inputs).
	if r.EstimateOnly {
		res := exec.EstimatePlan(pe.prep.Plan, pe.prep.Ctx)
		res.Partitioner = pe.prep.Partitioner
		res.OptimizationTime = planTime
		e.finishTrace(tr, res, start, time.Now())
		return res, nil
	}
	execStart := time.Now()
	res, err = e.plane.execute(ctx, pe.prep, ds.rel, dt.rel, band, r, pe.planID)
	if err != nil {
		return nil, err
	}
	res.Partitioner = pe.prep.Partitioner
	res.OptimizationTime = planTime

	if pe.planID != "" {
		if res.WarmPartitions {
			e.m.retainedHits.Inc()
			tr.RetainedTier = exec.TierHit
		} else {
			e.m.retainedMisses.Inc()
			tr.RetainedTier = exec.TierMiss
		}
	}
	e.m.shuffleBytes.Add(res.ShuffleBytes)
	e.m.shuffleRPCs.Add(res.ShuffleRPCs)

	// The execution stages are reconstructed from the result's measured
	// durations: shuffle (when anything moved), then the parallel joins, then
	// whatever remains of the wall time as merge/aggregation.
	end := time.Now()
	shuffleEnd := execStart.Add(res.ShuffleTime)
	if res.ShuffleTime > 0 {
		tr.AddSpan("shuffle", execStart, shuffleEnd, fmt.Sprintf("bytes=%d rpcs=%d", res.ShuffleBytes, res.ShuffleRPCs))
	}
	joinEnd := shuffleEnd.Add(res.JoinWallTime)
	tr.AddSpan("join", shuffleEnd, joinEnd, fmt.Sprintf("partitions=%d tier=%s", res.Partitions, tr.RetainedTier))
	if end.After(joinEnd) {
		tr.AddSpan("merge", joinEnd, end, "")
	}
	tr.AddEvents(res.FaultEvents)
	e.finishTrace(tr, res, start, end)
	e.m.querySeconds.ObserveDuration(end.Sub(start))
	return res, nil
}

// finishTrace copies the result's accounting into the trace and attaches it.
func (e *Engine) finishTrace(tr *exec.QueryTrace, res *Result, start, end time.Time) {
	tr.WallMicros = end.Sub(start).Microseconds()
	tr.ShuffleBytes = res.ShuffleBytes
	tr.ShuffleRPCs = res.ShuffleRPCs
	tr.Output = res.Output
	tr.Retries = res.Retries
	tr.LostWorkers = res.LostWorkers
	tr.FailoverRounds = res.FailoverRounds
	tr.Degraded = res.Degraded
	res.Trace = tr
}

// inputSampleBytes approximates a drawn input sample's resident footprint
// (key bytes of both sampled relations).
func inputSampleBytes(in *sample.InputSample) int64 {
	var total int64
	if in.S != nil {
		total += int64(in.S.Len()) * int64(in.S.Dims()) * 8
	}
	if in.T != nil {
		total += int64(in.T.Len()) * int64(in.T.Dims()) * 8
	}
	return total
}

// partitionerFingerprint identifies a partitioner configuration for the plan
// cache. Partitioners that carry execution-only knobs irrelevant to the plans
// they produce expose a PlanFingerprint that omits them (core.RecPart's
// grower selection and parallelism), so two queries differing only in such
// knobs share one cached plan and one retained partition set; everything else
// falls back to the full configuration dump.
func partitionerFingerprint(p Partitioner) string {
	if fp, ok := p.(interface{ PlanFingerprint() string }); ok {
		return fp.PlanFingerprint()
	}
	return fmt.Sprintf("%T%+v", p, p)
}

// sampleFor returns the sample-cache entry for the key, reporting whether it
// already existed.
func (e *Engine) sampleFor(k sampleKey) (*sampleEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if se, ok := e.samples[k]; ok {
		return se, true
	}
	se := &sampleEntry{}
	e.samples[k] = se
	return se, false
}

// planFor returns the plan-cache entry for the key, reporting whether it
// already existed.
func (e *Engine) planFor(k planKey) (*planEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pe, ok := e.plans[k]; ok {
		return pe, true
	}
	pe := &planEntry{}
	if e.retention {
		pe.planID = fmt.Sprintf("%s|%s@%d|%s@%d|b=%s|p=%s|w=%d|m=%+v|smp=%+v|seed=%d",
			e.id, k.s, k.sVer, k.t, k.tVer, k.band, k.pt, k.workers, k.model, k.sampling, k.seed)
	}
	e.plans[k] = pe
	return pe, false
}

// enginePlane is the execution backend: the in-process simulator or the RPC
// cluster. Both serve through the same Engine interface.
type enginePlane interface {
	// workers reports the plane's fixed worker count, or 0 if the resolved
	// option decides.
	workers() int
	// execute runs (shuffle +) local joins for a prepared plan, honoring ctx.
	// A non-empty planID enables partition retention under that fingerprint.
	execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error)
	// evict drops one retained partition set.
	evict(planID string)
	// retained reports the plane's retained-partition occupancy: resident
	// plan count and (for planes that hold the data locally) approximate
	// resident bytes. Scrape-time only; never on a query path.
	retained() (plans int, bytes int64)
	// close releases plane-held resources.
	close()
}

// inProcessPlane executes on the in-process cluster simulator and retains
// shuffled partitions in memory.
type inProcessPlane struct {
	mu    sync.Mutex
	parts map[string]*retainedParts
}

// retainedParts is one retained in-memory shuffle outcome. Its RWMutex plays
// the same role as the coordinator's shipment record: exactly one shuffle per
// fingerprint, any number of concurrent warm joins. Alongside the presorted
// partitions it retains the local join's prepared structures (ε-grid CSR
// buckets, sorted-row caches, resolved candidate cells), the in-process
// analogue of the cluster workers' Seal-time prebuild; prepAlg names the
// algorithm they were built for, and a query using a different local
// algorithm rebuilds them once.
type retainedParts struct {
	mu         sync.RWMutex
	done       bool
	parts      []*exec.PartitionInput
	totalInput int64
	prepAlg    string
	prepared   []localjoin.PreparedT

	// bytes is the retained partitions' approximate footprint (key and ID
	// bytes), stored when the record fills so the occupancy gauge can read it
	// without taking the record's lock against a running shuffle.
	bytes atomic.Int64
}

func (p *inProcessPlane) workers() int { return 0 }

func (p *inProcessPlane) execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error) {
	execOpts := r.execOptions()
	if planID == "" {
		return exec.ExecutePlan(ctx, prep.Plan, s, t, band, execOpts)
	}

	p.mu.Lock()
	if p.parts == nil {
		p.parts = make(map[string]*retainedParts)
	}
	rec, ok := p.parts[planID]
	if !ok {
		rec = &retainedParts{}
		p.parts[planID] = rec
	}
	p.mu.Unlock()

	alg := r.Algorithm
	if alg == nil {
		alg = localjoin.Default()
	}
	algName := alg.Name()

	var shuffleTime time.Duration
	warm := true
	rec.mu.RLock()
	if !rec.done {
		rec.mu.RUnlock()
		rec.mu.Lock()
		if !rec.done {
			warm = false
			start := time.Now()
			parts, totalInput, err := exec.Shuffle(ctx, prep.Plan, s, t, 0)
			if err != nil {
				// A cancelled shuffle leaves the record unfilled; the next
				// query redoes it.
				rec.mu.Unlock()
				return nil, err
			}
			rec.parts, rec.totalInput = parts, totalInput
			// Presort and prebuild once at retention time (the in-process
			// analogue of the workers' seal-time presort + prepare): warm
			// joins find sorted rows and ready-made join structures.
			exec.PresortPartitions(rec.parts, 0)
			rec.prepared = exec.PrepareShuffled(rec.parts, band, alg, 0)
			rec.prepAlg = algName
			rec.bytes.Store(partitionBytes(rec.parts))
			shuffleTime = time.Since(start)
			rec.done = true
		}
		rec.mu.Unlock()
		rec.mu.RLock()
	}
	if rec.prepAlg != algName {
		// A query switched local-join algorithms on a retained plan: rebuild
		// the prepared structures once for the new algorithm (the pattern of
		// the cluster worker's preparedFor).
		rec.mu.RUnlock()
		rec.mu.Lock()
		if rec.prepAlg != algName {
			rec.prepared = exec.PrepareShuffled(rec.parts, band, alg, 0)
			rec.prepAlg = algName
		}
		rec.mu.Unlock()
		rec.mu.RLock()
	}
	parts, totalInput, prepared := rec.parts, rec.totalInput, rec.prepared
	rec.mu.RUnlock()

	res, err := exec.ExecuteShuffledPrepared(ctx, prep.Plan, parts, prepared, totalInput, s.Len(), t.Len(), band, execOpts)
	if err != nil {
		return nil, err
	}
	res.ShuffleTime = shuffleTime
	res.WarmPartitions = warm
	return res, nil
}

// partitionBytes sums the partitions' key and ID bytes.
func partitionBytes(parts []*exec.PartitionInput) int64 {
	var total int64
	for _, p := range parts {
		if p == nil {
			continue
		}
		total += int64(p.S.Len()+p.T.Len())*int64(p.S.Dims())*8 +
			int64(len(p.SIDs)+len(p.TIDs))*8
	}
	return total
}

func (p *inProcessPlane) evict(planID string) {
	p.mu.Lock()
	delete(p.parts, planID)
	p.mu.Unlock()
}

func (p *inProcessPlane) retained() (int, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var bytes int64
	for _, rec := range p.parts {
		bytes += rec.bytes.Load()
	}
	return len(p.parts), bytes
}

func (p *inProcessPlane) close() {
	p.mu.Lock()
	p.parts = nil
	p.mu.Unlock()
}

// clusterPlane executes across RPC workers; retained partitions live in the
// workers' registries and warm queries ship zero shuffle bytes.
type clusterPlane struct {
	coord *cluster.Coordinator
}

func (p *clusterPlane) workers() int { return p.coord.Workers() }

func (p *clusterPlane) execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error) {
	copts := cluster.Options{
		Algorithm:       r.AlgorithmName,
		Model:           r.Model,
		Sampling:        r.Sampling,
		CollectPairs:    r.CollectPairs,
		ChunkSize:       r.ChunkSize,
		Window:          r.Window,
		JoinParallelism: r.JoinParallelism,
		Serial:          r.Serial,
		Seed:            r.Seed,
		PlanID:          planID,
	}
	return p.coord.RunPlan(ctx, prep.Plan, prep.Ctx, s, t, band, copts)
}

func (p *clusterPlane) evict(planID string) { p.coord.EvictPlan(planID) }

// retained reports the coordinator's sealed-shipment count; the bytes live on
// the workers, whose own registries report them (bandjoin_worker_retained_bytes).
func (p *clusterPlane) retained() (int, int64) { return p.coord.RetainedPlans(), 0 }

func (p *clusterPlane) close() {}
