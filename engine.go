package bandjoin

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bandjoin/internal/cluster"
	"bandjoin/internal/exec"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/obs"
	"bandjoin/internal/sample"
)

// Engine serves many band-join queries over long-lived registered datasets,
// amortizing the paper's per-query pipeline (sample → optimize → shuffle →
// local join) across executions. Three cache layers sit between a query and
// the work it would cost one-shot:
//
//  1. Input samples. Drawing the optimizer's input sample is the only part of
//     the optimization phase that scans the full inputs; the engine draws it
//     once per (dataset pair, sampling configuration) and derives the
//     band-dependent output sample per distinct band, so replanning the same
//     pair for a new ε never rescans the inputs.
//  2. Plans. The optimization phase's product — the partitioning plan — is
//     cached under (dataset pair, band, partitioner configuration, workers,
//     cost model, sampling configuration, seed); a repeated query skips
//     optimization entirely.
//  3. Shuffled partitions. Unless retention is disabled, the shuffle's output
//     is retained under the plan's fingerprint — in memory for the in-process
//     plane, in the workers' retained-plan registry for the RPC plane — so a
//     repeated query moves zero shuffle bytes and goes straight to the local
//     joins.
//
// Caches are invalidated only by Unregister and by re-Register of the same
// name (which bumps the dataset's version so entries derived from the replaced
// relation can never serve the new one). Growing a dataset is NOT an
// invalidation: Append extends the relation in place (as an immutable-snapshot
// swap) and propagates the delta through every layer — cached input samples
// are kept statistically fresh by weighted reservoir merging, and retained
// partitions absorb just the appended suffix through the existing plan's
// routing, so neither planning nor a warm query ever rescans or reshuffles the
// base relation. Every cache entry records how many base rows it covers;
// whoever observes an entry behind its relation catches it up idempotently
// over the uncovered suffix, which makes appends race-safe against concurrent
// draws, fills, and queries. Engine is safe for concurrent use; concurrent
// identical queries share one sampling, one optimization, and one shuffle.
type Engine struct {
	id        string
	plane     enginePlane
	retention bool

	mu       sync.Mutex // guards datasets, samples, plans, closed
	datasets map[string]*engineDataset
	samples  map[sampleKey]*sampleEntry
	plans    map[planKey]*planEntry
	closed   bool

	m *engineMetrics
}

// engineMetrics is the engine's observability surface: per-tier cache
// hit/miss counters, latency histograms, data-plane totals, and scrape-time
// occupancy gauges, all in the engine's own registry (see Engine.Metrics).
type engineMetrics struct {
	reg *obs.Registry

	queries     *obs.Counter
	queryErrors *obs.Counter

	sampleHits, sampleMisses     *obs.Counter
	planHits, planMisses         *obs.Counter
	retainedHits, retainedMisses *obs.Counter

	shuffleBytes *obs.Counter
	shuffleRPCs  *obs.Counter

	appends      *obs.Counter
	appendTuples *obs.Counter
	appendBytes  *obs.Counter
	repartitions *obs.Counter

	querySeconds *obs.Histogram
	planSeconds  *obs.Histogram
}

func newEngineMetrics(e *Engine) *engineMetrics {
	reg := obs.NewRegistry()
	hits := "Engine cache hits by tier (sample, plan, retained)."
	misses := "Engine cache misses by tier (sample, plan, retained)."
	m := &engineMetrics{
		reg:            reg,
		queries:        reg.Counter("bandjoin_engine_queries_total", "Join calls served by the engine."),
		queryErrors:    reg.Counter("bandjoin_engine_query_errors_total", "Join calls that returned an error."),
		sampleHits:     reg.Counter("bandjoin_engine_cache_hits_total", hits, "tier", "sample"),
		sampleMisses:   reg.Counter("bandjoin_engine_cache_misses_total", misses, "tier", "sample"),
		planHits:       reg.Counter("bandjoin_engine_cache_hits_total", hits, "tier", "plan"),
		planMisses:     reg.Counter("bandjoin_engine_cache_misses_total", misses, "tier", "plan"),
		retainedHits:   reg.Counter("bandjoin_engine_cache_hits_total", hits, "tier", "retained"),
		retainedMisses: reg.Counter("bandjoin_engine_cache_misses_total", misses, "tier", "retained"),
		shuffleBytes:   reg.Counter("bandjoin_engine_shuffle_bytes_total", "Wire bytes moved by engine queries (cluster plane)."),
		shuffleRPCs:    reg.Counter("bandjoin_engine_shuffle_rpcs_total", "Load RPCs issued by engine queries (cluster plane)."),
		appends:        reg.Counter("bandjoin_engine_appends_total", "Append calls absorbed without cache invalidation."),
		appendTuples:   reg.Counter("bandjoin_engine_appended_tuples_total", "Tuples added via Append."),
		appendBytes:    reg.Counter("bandjoin_engine_appended_bytes_total", "Key bytes added via Append."),
		repartitions:   reg.Counter("bandjoin_engine_repartitions_total", "Background re-partitions triggered by plan drift."),
		querySeconds:   reg.Histogram("bandjoin_engine_query_seconds", "End-to-end Join latency.", obs.LatencyBuckets()),
		planSeconds:    reg.Histogram("bandjoin_engine_plan_seconds", "Per-query planning-stage latency (≈0 on plan-cache hits).", obs.LatencyBuckets()),
	}
	entries := "Engine cache occupancy by tier (entries)."
	reg.GaugeFunc("bandjoin_engine_cache_entries", entries, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.datasets))
	}, "tier", "dataset")
	reg.GaugeFunc("bandjoin_engine_cache_entries", entries, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.samples))
	}, "tier", "sample")
	reg.GaugeFunc("bandjoin_engine_cache_entries", entries, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.plans))
	}, "tier", "plan")
	reg.GaugeFunc("bandjoin_engine_cache_entries", entries, func() float64 {
		plans, _ := e.plane.retained()
		return float64(plans)
	}, "tier", "retained")
	bytesHelp := "Engine cache occupancy by tier (approximate key/ID bytes)."
	reg.GaugeFunc("bandjoin_engine_cache_bytes", bytesHelp, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		var total int64
		for _, se := range e.samples {
			total += se.bytes.Load()
		}
		return float64(total)
	}, "tier", "sample")
	reg.GaugeFunc("bandjoin_engine_cache_bytes", bytesHelp, func() float64 {
		_, bytes := e.plane.retained()
		return float64(bytes)
	}, "tier", "retained")
	return m
}

// Metrics returns the engine's metrics registry, servable via obs.Handler /
// obs.Serve alongside other components' registries.
func (e *Engine) Metrics() *obs.Registry { return e.m.reg }

// EngineOptions configures an Engine.
type EngineOptions struct {
	// DisableRetention turns off the third cache layer (shuffled partitions):
	// samples and plans are still cached, but every query reshuffles. Use it
	// when inputs are large relative to memory, or for throwaway engines.
	DisableRetention bool
}

// engineSeq disambiguates engine instances: plan fingerprints are prefixed
// with the engine id so two engines sharing one long-lived worker fleet can
// never serve each other's retained partitions (their equally-named datasets
// may hold different data).
var engineSeq atomic.Int64

// NewEngine returns an engine executing on the in-process cluster simulator.
func NewEngine(opts EngineOptions) *Engine {
	return newEngine(&inProcessPlane{}, opts)
}

// NewEngine returns an engine executing across the cluster's RPC workers:
// retained partitions live on the workers, and a warm query's shuffle moves
// zero bytes over the wire. The engine does not own the cluster connection;
// close the Cluster separately.
func (c *Cluster) NewEngine(opts EngineOptions) *Engine {
	return newEngine(&clusterPlane{coord: c.coord}, opts)
}

func newEngine(p enginePlane, opts EngineOptions) *Engine {
	e := &Engine{
		id:        fmt.Sprintf("eng%d-%d", engineSeq.Add(1), time.Now().UnixNano()),
		plane:     p,
		retention: !opts.DisableRetention,
		datasets:  make(map[string]*engineDataset),
		samples:   make(map[sampleKey]*sampleEntry),
		plans:     make(map[planKey]*planEntry),
	}
	e.m = newEngineMetrics(e)
	return e
}

type engineDataset struct {
	rel     *Relation
	version uint64
}

// sampleKey identifies one cached input sample: the dataset pair (by name and
// version) plus everything DrawInputs consults.
type sampleKey struct {
	s, t       string
	sVer, tVer uint64
	sampling   sample.Options
}

type sampleEntry struct {
	once sync.Once
	err  error
	// drawn flips once the initial draw succeeded; Append skips entries still
	// drawing (the drawing query catches itself up right after its once).
	drawn atomic.Bool
	// bytes is the drawn sample's approximate footprint, stored after the
	// once completes so the occupancy gauge can read it without racing the
	// draw.
	bytes atomic.Int64

	// mu guards the merged-sample snapshot. in is immutable once published;
	// catchUp replaces it wholesale with a reservoir-merged successor.
	// coveredS/coveredT are the base-relation prefix lengths the current
	// snapshot represents a uniform sample of; they only grow.
	mu       sync.RWMutex
	in       *sample.InputSample
	coveredS int
	coveredT int
}

// catchUp folds rows appended past the entry's covered prefixes into the
// cached sample by weighted reservoir merging (sample.InputSample.Merge) and
// returns the sample current for the given snapshots. The common fresh case is
// a read-lock check; merging runs under the write lock and advances the
// covered lengths, so concurrent callers merge each suffix exactly once and a
// caller whose snapshot is already covered gets the cached sample unchanged.
func (se *sampleEntry) catchUp(s, t *Relation) (*sample.InputSample, error) {
	se.mu.RLock()
	in, cs, ct := se.in, se.coveredS, se.coveredT
	se.mu.RUnlock()
	if cs >= s.Len() && ct >= t.Len() {
		return in, nil
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.coveredS >= s.Len() && se.coveredT >= t.Len() {
		return se.in, nil
	}
	var deltaS, deltaT *Relation
	if se.coveredS < s.Len() {
		deltaS = s.Slice(s.Name(), se.coveredS, s.Len())
	}
	if se.coveredT < t.Len() {
		deltaT = t.Slice(t.Name(), se.coveredT, t.Len())
	}
	merged, err := se.in.Merge(deltaS, deltaT)
	if err != nil {
		return nil, err
	}
	se.in = merged
	se.coveredS, se.coveredT = s.Len(), t.Len()
	se.bytes.Store(inputSampleBytes(merged))
	return merged, nil
}

// planKey identifies one cached plan: the dataset pair plus everything the
// optimization phase consults — band, partitioner configuration, worker
// count, cost model, sampling configuration, and seed.
type planKey struct {
	s, t       string
	sVer, tVer uint64
	band       string
	pt         string
	workers    int
	model      CostModel
	sampling   sample.Options
	seed       int64
}

type planEntry struct {
	once sync.Once
	prep *exec.Prepared
	err  error
	// ready flips once planning succeeded; Append reads prep only then.
	ready atomic.Bool

	// planID is the retention fingerprint, computed deterministically from
	// the plan key when the entry is created (under e.mu, so the invalidation
	// paths can read it there without racing the once). A drift-triggered
	// replacement appends a generation suffix ("#g2", ...) so the new shipment
	// never collides with the old plan's resident partitions. Empty when
	// retention is disabled: nothing is ever resident, so nothing needs
	// evicting.
	planID string

	// compression is the wire-compression mode the plan's queries resolved
	// (Options.ClusterCompression), written alongside prep before ready flips;
	// Append's eager delta absorb reuses it so deltas travel the same encoding
	// as the plan's shipment.
	compression string

	// Drift accounting. predictedOverhead and baseTuples are written once at
	// plan time (inside the once, or at creation for a replacement entry):
	// the plan's estimated load_overhead on the sample it was optimized for,
	// and the input size it was optimized against. deltaTuples accumulates
	// rows appended to either side since (guarded by driftMu); the observed
	// minus predicted overhead and the delta fraction drive the re-partition
	// trigger (Options.MaxPlanDrift / MaxDeltaFraction). repartitioning
	// ensures at most one background re-partition is in flight per entry;
	// generation numbers the replacements.
	driftMu           sync.Mutex
	predictedOverhead float64
	baseTuples        int64
	deltaTuples       int64
	generation        int
	repartitioning    atomic.Bool
}

// Register adds (or replaces) a named dataset. Re-registering a name bumps
// its version: cached samples, plans, and retained partitions derived from
// the old relation are invalidated and the memory they pin is released.
// Contrast Append, which grows a registered dataset without a version bump:
// derived entries stay live and absorb the delta instead of being rebuilt.
func (e *Engine) Register(name string, rel *Relation) error {
	if name == "" {
		return fmt.Errorf("bandjoin: dataset name must be non-empty")
	}
	if rel == nil {
		return fmt.Errorf("bandjoin: nil input relation")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: engine is closed")
	}
	version := uint64(1)
	var evict []string
	if old, ok := e.datasets[name]; ok {
		version = old.version + 1
		evict = e.dropDerivedLocked(name)
	}
	e.datasets[name] = &engineDataset{rel: rel, version: version}
	e.mu.Unlock()
	e.evictAll(evict)
	return nil
}

// Unregister removes a dataset and invalidates every cached sample, plan, and
// retained partition set derived from it. Unregistering an unknown name is an
// error.
func (e *Engine) Unregister(name string) error {
	e.mu.Lock()
	if _, ok := e.datasets[name]; !ok {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: unknown dataset %q", name)
	}
	evict := e.dropDerivedLocked(name)
	delete(e.datasets, name)
	e.mu.Unlock()
	e.evictAll(evict)
	return nil
}

// dropDerivedLocked removes cache entries touching the named dataset and
// returns the retained-plan fingerprints to evict from the execution plane.
// Callers hold e.mu; the eviction itself (per-worker RPCs on the cluster
// plane) must happen after releasing it so concurrent queries are not stalled
// behind network round trips.
func (e *Engine) dropDerivedLocked(name string) []string {
	var evict []string
	for k := range e.samples {
		if k.s == name || k.t == name {
			delete(e.samples, k)
		}
	}
	for k, pe := range e.plans {
		if k.s == name || k.t == name {
			if pe.planID != "" {
				evict = append(evict, pe.planID)
			}
			delete(e.plans, k)
		}
	}
	return evict
}

// evictAll drops the given retained-plan fingerprints from the execution
// plane. Call without holding e.mu.
func (e *Engine) evictAll(planIDs []string) {
	for _, id := range planIDs {
		e.plane.evict(id)
	}
}

// Append adds rows to the registered dataset name without invalidating any
// cache layer. The dataset's version is unchanged — cache keys stay stable —
// and the delta is propagated instead: the relation is extended by an
// immutable-snapshot swap (in-flight queries keep their snapshot), cached
// input samples covering the dataset are merged up by weighted reservoir
// continuation, and every live plan's retained partitions absorb just the
// appended rows through the plan's existing routing (in memory on the
// in-process plane, via delta Loads into the sealed plans on the cluster
// plane). Appended partitions are re-sorted and their prepared join structures
// rebuilt lazily on the next probe, not here. If a delta cannot be absorbed
// (e.g. a worker died mid-delta), that plan's retained partitions are evicted
// so the next query reships cold from the full extended relation — slower,
// never wrong. Appending zero rows is a no-op.
func (e *Engine) Append(ctx context.Context, name string, rows *Relation) error {
	if name == "" {
		return fmt.Errorf("bandjoin: dataset name must be non-empty")
	}
	if rows == nil || rows.Len() == 0 {
		return nil
	}

	type sampleWork struct {
		se   *sampleEntry
		s, t *Relation
	}
	type planWork struct {
		pe   *planEntry
		s, t *Relation
	}
	var sampleWorks []sampleWork
	var planWorks []planWork

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: engine is closed")
	}
	ds, ok := e.datasets[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: unknown dataset %q", name)
	}
	if ds.rel.Dims() != rows.Dims() {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: dataset %q has %d join attributes but appended rows have %d",
			name, ds.rel.Dims(), rows.Dims())
	}
	// e.mu serializes Extends of one dataset lineage (Relation.Extend's
	// contract); readers keep their snapshots, new queries adopt this one.
	ds.rel = ds.rel.Extend(rows)
	// Snapshot the derived entries touching this dataset together with both
	// sides' current relations, so the catch-ups below run off e.mu.
	for k, se := range e.samples {
		if k.s != name && k.t != name {
			continue
		}
		sd, okS := e.datasets[k.s]
		td, okT := e.datasets[k.t]
		if !okS || !okT || sd.version != k.sVer || td.version != k.tVer {
			continue
		}
		sampleWorks = append(sampleWorks, sampleWork{se: se, s: sd.rel, t: td.rel})
	}
	for k, pe := range e.plans {
		if k.s != name && k.t != name {
			continue
		}
		sd, okS := e.datasets[k.s]
		td, okT := e.datasets[k.t]
		if !okS || !okT || sd.version != k.sVer || td.version != k.tVer {
			continue
		}
		n := int64(rows.Len())
		if k.s == name && k.t == name {
			n *= 2 // a self-join's delta lands on both sides
		}
		pe.driftMu.Lock()
		pe.deltaTuples += n
		pe.driftMu.Unlock()
		planWorks = append(planWorks, planWork{pe: pe, s: sd.rel, t: td.rel})
	}
	e.mu.Unlock()

	e.m.appends.Inc()
	e.m.appendTuples.Add(int64(rows.Len()))
	e.m.appendBytes.Add(int64(rows.Len()) * int64(rows.Dims()) * 8)

	// Keep cached samples statistically fresh so later planning never rescans
	// the base relation. Entries still mid-draw are skipped: the drawing query
	// catches itself up right after its once completes.
	for _, w := range sampleWorks {
		if !w.se.drawn.Load() {
			continue
		}
		if _, err := w.se.catchUp(w.s, w.t); err != nil {
			return err
		}
	}
	// Shuffle the delta into each live plan's retained partitions eagerly, so
	// the next warm query finds them fresh and moves nothing.
	for _, w := range planWorks {
		if !w.pe.ready.Load() || w.pe.planID == "" {
			continue
		}
		if err := e.plane.absorb(ctx, w.pe.prep, w.s, w.t, w.pe.planID, w.pe.compression); err != nil {
			e.plane.evict(w.pe.planID)
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
	}
	return ctx.Err()
}

// noteDrift records one executed retained query's plan-quality drift — the
// observed load_overhead minus what the plan predicted on the sample it was
// optimized for — plus the appended fraction of the plan's input, and triggers
// at most one background re-partition per plan entry when either crosses its
// threshold (Options.MaxPlanDrift / MaxDeltaFraction, both off by default).
// The old plan keeps serving until the replacement is primed and swapped.
func (e *Engine) noteDrift(pk planKey, pe *planEntry, sName, tName string, band Band, r resolved, res *Result) {
	drift := res.LoadOverhead - pe.predictedOverhead
	pe.driftMu.Lock()
	delta := pe.deltaTuples
	pe.driftMu.Unlock()
	var deltaFrac float64
	if total := pe.baseTuples + delta; total > 0 {
		deltaFrac = float64(delta) / float64(total)
	}
	e.m.reg.Gauge("bandjoin_engine_plan_drift_millis",
		"Observed minus predicted load_overhead per plan, in thousandths.",
		"pair", sName+"|"+tName).Set(int64(drift * 1000))
	if delta == 0 {
		return // nothing appended; replanning from the same sample changes nothing
	}
	trigger := (r.MaxPlanDrift > 0 && drift > r.MaxPlanDrift) ||
		(r.MaxDeltaFraction > 0 && deltaFrac > r.MaxDeltaFraction)
	if !trigger {
		return
	}
	if !pe.repartitioning.CompareAndSwap(false, true) {
		return // a re-partition of this entry is already in flight
	}
	go e.repartition(pk, pe, sName, tName, band, r)
}

// repartition builds a replacement plan from the current (caught-up) sample,
// primes its partitions on the execution plane under a new generation
// fingerprint, and swaps it into the plan cache — all in the background, while
// the old plan keeps serving warm queries. Only after the swap are the old
// plan's retained partitions evicted; a query that raced the swap holding the
// old entry simply refills it cold (correct, just slower). On any failure the
// old entry stays in place and its repartitioning latch is released so a later
// drifted query can try again.
func (e *Engine) repartition(pk planKey, old *planEntry, sName, tName string, band Band, r resolved) {
	swapped := false
	defer func() {
		if !swapped {
			old.repartitioning.Store(false)
		}
	}()
	ctx := context.Background()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	ds, okS := e.datasets[sName]
	dt, okT := e.datasets[tName]
	if !okS || !okT || ds.version != pk.sVer || dt.version != pk.tVer || e.plans[pk] != old {
		e.mu.Unlock()
		return
	}
	se := e.samples[sampleKey{s: sName, t: tName, sVer: ds.version, tVer: dt.version, sampling: r.Sampling}]
	sRel, tRel := ds.rel, dt.rel
	e.mu.Unlock()
	if se == nil || !se.drawn.Load() {
		return
	}

	in, err := se.catchUp(sRel, tRel)
	if err != nil {
		return
	}
	smp, err := in.ForBand(band)
	if err != nil {
		return
	}
	prep, err := exec.PlanQuery(r.Partitioner, smp, band, r.execOptions())
	if err != nil {
		return
	}
	old.driftMu.Lock()
	gen := old.generation + 1
	old.driftMu.Unlock()
	ne := &planEntry{prep: prep, generation: gen, compression: r.Compression}
	ne.planID = fmt.Sprintf("%s#g%d", e.planIDFor(pk), gen)
	est := exec.EstimatePlan(prep.Plan, prep.Ctx)
	ne.predictedOverhead = est.LoadOverhead
	ne.baseTuples = int64(sRel.Len() + tRel.Len())
	ne.once.Do(func() {}) // planning is done; queries must not re-plan
	ne.ready.Store(true)

	if err := e.plane.prime(ctx, prep, sRel, tRel, band, r, ne.planID); err != nil {
		e.plane.evict(ne.planID)
		return
	}

	e.mu.Lock()
	if e.closed || e.plans[pk] != old {
		e.mu.Unlock()
		e.plane.evict(ne.planID)
		return
	}
	e.plans[pk] = ne
	e.mu.Unlock()
	swapped = true
	e.plane.evict(old.planID)
	e.m.repartitions.Inc()
}

// Datasets returns the registered dataset names.
func (e *Engine) Datasets() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.datasets))
	for name := range e.datasets {
		names = append(names, name)
	}
	return names
}

// EngineStats reports cache occupancy and hit counts.
type EngineStats struct {
	// Datasets, CachedSamples, and CachedPlans are current cache occupancy.
	Datasets      int
	CachedSamples int
	CachedPlans   int
	// Queries counts Join calls; SampleHits, PlanHits, and RetainedHits count
	// how many of them were served from the respective cache tier.
	Queries      int64
	SampleHits   int64
	PlanHits     int64
	RetainedHits int64
	// Appends counts Append calls absorbed without invalidation;
	// Repartitions counts drift-triggered background re-partitions.
	Appends      int64
	Repartitions int64
}

// Stats returns a snapshot of the engine's cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Datasets:      len(e.datasets),
		CachedSamples: len(e.samples),
		CachedPlans:   len(e.plans),
		Queries:       e.m.queries.Value(),
		SampleHits:    e.m.sampleHits.Value(),
		PlanHits:      e.m.planHits.Value(),
		RetainedHits:  e.m.retainedHits.Value(),
		Appends:       e.m.appends.Value(),
		Repartitions:  e.m.repartitions.Value(),
	}
}

// Close releases the engine's caches and evicts its retained partitions from
// the execution plane. The engine rejects queries afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	var evict []string
	for _, pe := range e.plans {
		if pe.planID != "" {
			evict = append(evict, pe.planID)
		}
	}
	e.datasets, e.samples, e.plans = nil, nil, nil
	e.mu.Unlock()
	e.evictAll(evict)
	e.plane.close()
}

// Join runs the band-join of the registered datasets sName and tName. The
// ctx bounds the whole query: it is checked between pipeline stages and
// inside execution — between shuffle passes, between partition joins, and (on
// the cluster plane) on every RPC — so cancellation aborts a running query
// promptly with ctx.Err(). Repeated queries are served from the caches: same
// pair and sampling → no input scan; same full query shape → no optimization;
// retention on → no shuffle.
//
// Every successful query carries a structured trace (Result.Trace): timed
// spans for the sample/plan/shuffle/join/merge stages, the cache-tier
// outcomes, bytes moved, and any fault events the coordinator recorded.
func (e *Engine) Join(ctx context.Context, sName, tName string, band Band, opts Options) (res *Result, err error) {
	start := time.Now()
	defer func() {
		if err != nil {
			e.m.queryErrors.Inc()
		}
	}()
	r, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	if w := e.plane.workers(); w > 0 {
		r.Workers = w
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("bandjoin: engine is closed")
	}
	ds, okS := e.datasets[sName]
	dt, okT := e.datasets[tName]
	// Snapshot both relation heads while e.mu is held: Append swaps new heads
	// in under the same lock, so the pair is consistent and everything below
	// serves this query from one immutable snapshot.
	var sRel, tRel *Relation
	if okS {
		sRel = ds.rel
	}
	if okT {
		tRel = dt.rel
	}
	e.mu.Unlock()
	if !okS {
		return nil, fmt.Errorf("bandjoin: unknown dataset %q", sName)
	}
	if !okT {
		return nil, fmt.Errorf("bandjoin: unknown dataset %q", tName)
	}
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if sRel.Dims() != band.Dims() || tRel.Dims() != band.Dims() {
		return nil, fmt.Errorf("bandjoin: band condition has %d dimensions but inputs have %d and %d",
			band.Dims(), sRel.Dims(), tRel.Dims())
	}
	e.m.queries.Inc()
	tr := &exec.QueryTrace{
		S: sName, T: tName,
		Band:         fmt.Sprintf("%v|%v", band.Low, band.High),
		StartedAt:    start,
		RetainedTier: exec.TierOff,
	}

	// Stage 1: input sample (cached per dataset pair and sampling config).
	sampleStart := time.Now()
	se, hit := e.sampleFor(sampleKey{s: sName, t: tName, sVer: ds.version, tVer: dt.version, sampling: r.Sampling})
	tr.SampleTier = exec.TierMiss
	if hit {
		e.m.sampleHits.Inc()
		tr.SampleTier = exec.TierHit
	} else {
		e.m.sampleMisses.Inc()
	}
	se.once.Do(func() {
		in, err := sample.DrawInputs(sRel, tRel, r.Sampling)
		se.err = err
		if err == nil {
			se.mu.Lock()
			se.in = in
			se.coveredS, se.coveredT = sRel.Len(), tRel.Len()
			se.mu.Unlock()
			se.bytes.Store(inputSampleBytes(in))
			se.drawn.Store(true)
		}
	})
	if se.err != nil {
		return nil, fmt.Errorf("bandjoin: sampling: %w", se.err)
	}
	// The entry may have been drawn from (or merged up to) older snapshots
	// than this query's; fold any uncovered appended suffix in before planning
	// consumes the sample.
	in, err := se.catchUp(sRel, tRel)
	if err != nil {
		return nil, fmt.Errorf("bandjoin: sampling: %w", err)
	}
	tr.AddSpan("sample", sampleStart, time.Now(), tr.SampleTier)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: plan (cached per full query shape). The reported optimization
	// time is this query's actual planning cost — the wall time spent in this
	// stage — not the cached plan's original cost: a plan-cache hit reports
	// (approximately) zero, a miss reports the sample derivation plus the
	// partitioner's optimization, and a query that arrives while an identical
	// one is planning reports its wait.
	planStart := time.Now()
	pk := planKey{
		s: sName, t: tName, sVer: ds.version, tVer: dt.version,
		band:     fmt.Sprintf("%v|%v", band.Low, band.High),
		pt:       partitionerFingerprint(r.Partitioner),
		workers:  r.Workers,
		model:    r.Model,
		sampling: r.Sampling,
		seed:     r.Seed,
	}
	pe, hit := e.planFor(pk)
	tr.PlanTier = exec.TierMiss
	if hit {
		e.m.planHits.Inc()
		tr.PlanTier = exec.TierHit
	} else {
		e.m.planMisses.Inc()
	}
	pe.once.Do(func() {
		smp, err := in.ForBand(band)
		if err != nil {
			pe.err = err
			return
		}
		pe.prep, pe.err = exec.PlanQuery(r.Partitioner, smp, band, r.execOptions())
		if pe.err == nil {
			est := exec.EstimatePlan(pe.prep.Plan, pe.prep.Ctx)
			pe.predictedOverhead = est.LoadOverhead
			pe.baseTuples = int64(sRel.Len() + tRel.Len())
			pe.compression = r.Compression
			pe.ready.Store(true)
		}
	})
	if pe.err != nil {
		return nil, pe.err
	}
	planTime := time.Since(planStart)
	e.m.planSeconds.ObserveDuration(planTime)
	tr.AddSpan("plan", planStart, time.Now(), tr.PlanTier)
	tr.Partitioner = pe.prep.Partitioner
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 3: execute (or estimate, which never touches the full inputs).
	if r.EstimateOnly {
		res := exec.EstimatePlan(pe.prep.Plan, pe.prep.Ctx)
		res.Partitioner = pe.prep.Partitioner
		res.OptimizationTime = planTime
		e.finishTrace(tr, res, start, time.Now())
		return res, nil
	}
	execStart := time.Now()
	res, err = e.plane.execute(ctx, pe.prep, sRel, tRel, band, r, pe.planID)
	if err != nil {
		return nil, err
	}
	res.Partitioner = pe.prep.Partitioner
	res.OptimizationTime = planTime

	if pe.planID != "" {
		if res.WarmPartitions {
			e.m.retainedHits.Inc()
			tr.RetainedTier = exec.TierHit
		} else {
			e.m.retainedMisses.Inc()
			tr.RetainedTier = exec.TierMiss
		}
		e.noteDrift(pk, pe, sName, tName, band, r, res)
	}
	e.m.shuffleBytes.Add(res.ShuffleBytes)
	e.m.shuffleRPCs.Add(res.ShuffleRPCs)

	// The execution stages are reconstructed from the result's measured
	// durations: delta absorption (when appended rows were folded in), shuffle
	// (when anything moved), then the parallel joins, then whatever remains of
	// the wall time as merge/aggregation.
	end := time.Now()
	absorbEnd := execStart
	if res.DeltaAbsorbTime > 0 || res.StaleRebuildTime > 0 {
		absorbEnd = execStart.Add(res.DeltaAbsorbTime)
		tr.AddSpan("delta_absorb", execStart, absorbEnd,
			fmt.Sprintf("absorb=%s stale_rebuild=%s", res.DeltaAbsorbTime, res.StaleRebuildTime))
	}
	shuffleEnd := absorbEnd.Add(res.ShuffleTime)
	if res.ShuffleTime > 0 {
		tr.AddSpan("shuffle", absorbEnd, shuffleEnd, fmt.Sprintf("bytes=%d rpcs=%d", res.ShuffleBytes, res.ShuffleRPCs))
	}
	joinEnd := shuffleEnd.Add(res.JoinWallTime)
	tr.AddSpan("join", shuffleEnd, joinEnd, fmt.Sprintf("partitions=%d tier=%s", res.Partitions, tr.RetainedTier))
	if end.After(joinEnd) {
		tr.AddSpan("merge", joinEnd, end, "")
	}
	tr.AddEvents(res.FaultEvents)
	e.finishTrace(tr, res, start, end)
	e.m.querySeconds.ObserveDuration(end.Sub(start))
	return res, nil
}

// finishTrace copies the result's accounting into the trace and attaches it.
func (e *Engine) finishTrace(tr *exec.QueryTrace, res *Result, start, end time.Time) {
	tr.WallMicros = end.Sub(start).Microseconds()
	tr.ShuffleBytes = res.ShuffleBytes
	tr.ShuffleRPCs = res.ShuffleRPCs
	tr.Output = res.Output
	tr.Retries = res.Retries
	tr.LostWorkers = res.LostWorkers
	tr.FailoverRounds = res.FailoverRounds
	tr.Degraded = res.Degraded
	res.Trace = tr
}

// inputSampleBytes approximates a drawn input sample's resident footprint
// (key bytes of both sampled relations).
func inputSampleBytes(in *sample.InputSample) int64 {
	var total int64
	if in.S != nil {
		total += int64(in.S.Len()) * int64(in.S.Dims()) * 8
	}
	if in.T != nil {
		total += int64(in.T.Len()) * int64(in.T.Dims()) * 8
	}
	return total
}

// partitionerFingerprint identifies a partitioner configuration for the plan
// cache. Partitioners that carry execution-only knobs irrelevant to the plans
// they produce expose a PlanFingerprint that omits them (core.RecPart's
// grower selection and parallelism), so two queries differing only in such
// knobs share one cached plan and one retained partition set; everything else
// falls back to the full configuration dump.
func partitionerFingerprint(p Partitioner) string {
	if fp, ok := p.(interface{ PlanFingerprint() string }); ok {
		return fp.PlanFingerprint()
	}
	return fmt.Sprintf("%T%+v", p, p)
}

// sampleFor returns the sample-cache entry for the key, reporting whether it
// already existed.
func (e *Engine) sampleFor(k sampleKey) (*sampleEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if se, ok := e.samples[k]; ok {
		return se, true
	}
	se := &sampleEntry{}
	e.samples[k] = se
	return se, false
}

// planIDFor computes a plan key's base retention fingerprint (generation
// suffixes are appended by the re-partition path).
func (e *Engine) planIDFor(k planKey) string {
	return fmt.Sprintf("%s|%s@%d|%s@%d|b=%s|p=%s|w=%d|m=%+v|smp=%+v|seed=%d",
		e.id, k.s, k.sVer, k.t, k.tVer, k.band, k.pt, k.workers, k.model, k.sampling, k.seed)
}

// planFor returns the plan-cache entry for the key, reporting whether it
// already existed.
func (e *Engine) planFor(k planKey) (*planEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pe, ok := e.plans[k]; ok {
		return pe, true
	}
	pe := &planEntry{}
	if e.retention {
		pe.planID = e.planIDFor(k)
	}
	e.plans[k] = pe
	return pe, false
}

// enginePlane is the execution backend: the in-process simulator or the RPC
// cluster. Both serve through the same Engine interface.
type enginePlane interface {
	// workers reports the plane's fixed worker count, or 0 if the resolved
	// option decides.
	workers() int
	// execute runs (shuffle +) local joins for a prepared plan, honoring ctx.
	// A non-empty planID enables partition retention under that fingerprint.
	execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error)
	// absorb eagerly catches a retained partition set up to rows appended to
	// s and t past its covered prefixes, shuffling only the delta through the
	// plan's routing. A plan with nothing retained is a no-op. On error the
	// retained data may be torn; the caller must evict the fingerprint.
	// compression is the wire-compression mode of the plan's queries; the
	// in-process plane ignores it.
	absorb(ctx context.Context, prep *exec.Prepared, s, t *Relation, planID, compression string) error
	// prime shuffles and retains a plan's partitions without joining — the
	// background half of a drift-triggered re-partition.
	prime(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) error
	// evict drops one retained partition set.
	evict(planID string)
	// retained reports the plane's retained-partition occupancy: resident
	// plan count and (for planes that hold the data locally) approximate
	// resident bytes. Scrape-time only; never on a query path.
	retained() (plans int, bytes int64)
	// close releases plane-held resources.
	close()
}

// inProcessPlane executes on the in-process cluster simulator and retains
// shuffled partitions in memory.
type inProcessPlane struct {
	mu    sync.Mutex
	parts map[string]*retainedParts
}

// retainedParts is one retained in-memory shuffle outcome. Its RWMutex plays
// the same role as the coordinator's shipment record: exactly one shuffle per
// fingerprint, any number of concurrent warm joins. Alongside the presorted
// partitions it retains the local join's prepared structures (ε-grid CSR
// buckets, sorted-row caches, resolved candidate cells), the in-process
// analogue of the cluster workers' Seal-time prebuild; prepAlg names the
// algorithm they were built for, and a query using a different local
// algorithm rebuilds them once.
type retainedParts struct {
	mu         sync.RWMutex
	done       bool
	parts      []*exec.PartitionInput
	totalInput int64
	prepAlg    string
	prepared   []localjoin.PreparedT

	// coveredS/coveredT record the base-relation prefix lengths the retained
	// partitions were shuffled from. Appended suffixes are absorbed by
	// catchUpLocked — eagerly from Engine.Append, lazily by the next query —
	// idempotently, because covered only advances past an absorbed delta.
	coveredS int
	coveredT int
	// dirty marks partitions whose presort order and prepared structure were
	// invalidated by an absorbed delta; they are rebuilt lazily on the next
	// probe (rebuildDirtyLocked), never at append time.
	dirty map[int]bool

	// bytes is the retained partitions' approximate footprint (key and ID
	// bytes), stored when the record fills so the occupancy gauge can read it
	// without taking the record's lock against a running shuffle.
	bytes atomic.Int64
}

// fillLocked runs the cold fill: shuffle everything, presort, prebuild the
// local join's structures, and record the covered prefix lengths. Caller holds
// rec.mu for writing.
func (rec *retainedParts) fillLocked(ctx context.Context, plan Plan, s, t *Relation, band Band, alg localjoin.Algorithm) error {
	parts, totalInput, err := exec.Shuffle(ctx, plan, s, t, 0)
	if err != nil {
		// A cancelled shuffle leaves the record unfilled; the next query
		// redoes it.
		return err
	}
	rec.parts, rec.totalInput = parts, totalInput
	// Presort and prebuild once at retention time (the in-process analogue of
	// the workers' seal-time presort + prepare): warm joins find sorted rows
	// and ready-made join structures.
	exec.PresortPartitions(rec.parts, 0)
	rec.prepared = exec.PrepareShuffled(rec.parts, band, alg, 0)
	rec.prepAlg = alg.Name()
	rec.coveredS, rec.coveredT = s.Len(), t.Len()
	rec.bytes.Store(partitionBytes(rec.parts))
	rec.done = true
	return nil
}

// cloneSlicesLocked returns fresh parts/prepared slice headers of at least n
// elements, sharing the current element pointers. Every write path replaces
// elements through such clones and swaps them in whole, so a query that
// snapshotted the previous slices under the read lock keeps reading a
// consistent, immutable view while an absorb or rebuild proceeds. Caller holds
// rec.mu for writing.
func (rec *retainedParts) cloneSlicesLocked(n int) ([]*exec.PartitionInput, []localjoin.PreparedT) {
	if n < len(rec.parts) {
		n = len(rec.parts)
	}
	parts := make([]*exec.PartitionInput, n)
	copy(parts, rec.parts)
	prepared := make([]localjoin.PreparedT, n)
	copy(prepared, rec.prepared)
	return parts, prepared
}

// catchUpLocked absorbs rows appended past the record's covered prefixes:
// the suffixes are shuffled through the plan (with tuple IDs offset to stay
// globally consistent) and folded into the retained partitions, which are
// marked dirty for lazy rebuild. The fold is copy-on-write — extended
// partitions are new PartitionInput snapshots (Relation.Extend never mutates
// the old head), swapped in via fresh slices — so queries executing off a
// previously snapshotted view race nothing. Caller holds rec.mu for writing;
// covered advances only on success, so a failed or cancelled catch-up is
// simply retried by the next caller.
func (rec *retainedParts) catchUpLocked(ctx context.Context, plan Plan, s, t *Relation) error {
	if rec.coveredS >= s.Len() && rec.coveredT >= t.Len() {
		return nil
	}
	deltaS := s.Slice(s.Name(), rec.coveredS, s.Len())
	deltaT := t.Slice(t.Name(), rec.coveredT, t.Len())
	parts, deltaInput, err := exec.ShuffleDelta(ctx, plan, deltaS, deltaT, rec.coveredS, rec.coveredT, 0)
	if err != nil {
		return err
	}
	next, nextPrep := rec.cloneSlicesLocked(len(parts))
	if rec.dirty == nil {
		rec.dirty = make(map[int]bool)
	}
	for pid, dp := range parts {
		if dp == nil {
			continue
		}
		base := next[pid]
		if base == nil {
			next[pid] = dp
		} else {
			next[pid] = &exec.PartitionInput{
				S:    base.S.Extend(dp.S),
				SIDs: append(base.SIDs, dp.SIDs...),
				T:    base.T.Extend(dp.T),
				TIDs: append(base.TIDs, dp.TIDs...),
			}
		}
		rec.dirty[pid] = true
	}
	rec.parts, rec.prepared = next, nextPrep
	rec.totalInput += deltaInput
	rec.coveredS, rec.coveredT = s.Len(), t.Len()
	rec.bytes.Store(partitionBytes(rec.parts))
	return nil
}

// rebuildDirtyLocked re-sorts the delta-appended partitions and rebuilds their
// prepared join structures — the lazy half of delta absorption, paid by the
// first probe after an append rather than by the append. Replacement is
// copy-on-write, like catchUpLocked. Caller holds rec.mu for writing.
func (rec *retainedParts) rebuildDirtyLocked(band Band, alg localjoin.Algorithm) {
	next, nextPrep := rec.cloneSlicesLocked(0)
	for pid := range rec.dirty {
		p := next[pid]
		if p == nil {
			continue
		}
		sorted := p.Presort()
		next[pid] = sorted
		nextPrep[pid] = localjoin.Prepare(alg, sorted.S, sorted.T, band)
	}
	rec.parts, rec.prepared = next, nextPrep
	rec.dirty = nil
	rec.bytes.Store(partitionBytes(rec.parts))
}

func (p *inProcessPlane) workers() int { return 0 }

func (p *inProcessPlane) execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error) {
	execOpts := r.execOptions()
	if planID == "" {
		return exec.ExecutePlan(ctx, prep.Plan, s, t, band, execOpts)
	}

	p.mu.Lock()
	if p.parts == nil {
		p.parts = make(map[string]*retainedParts)
	}
	rec, ok := p.parts[planID]
	if !ok {
		rec = &retainedParts{}
		p.parts[planID] = rec
	}
	p.mu.Unlock()

	alg := r.Algorithm
	if alg == nil {
		alg = localjoin.Default()
	}
	algName := alg.Name()

	var shuffleTime, absorbTime, rebuildTime time.Duration
	warm := true
	rec.mu.RLock()
	for {
		current := rec.done &&
			rec.coveredS >= s.Len() && rec.coveredT >= t.Len() &&
			rec.prepAlg == algName && len(rec.dirty) == 0
		if current {
			break
		}
		rec.mu.RUnlock()
		rec.mu.Lock()
		if !rec.done {
			warm = false
			start := time.Now()
			if err := rec.fillLocked(ctx, prep.Plan, s, t, band, alg); err != nil {
				rec.mu.Unlock()
				return nil, err
			}
			shuffleTime = time.Since(start)
		}
		if rec.coveredS < s.Len() || rec.coveredT < t.Len() {
			// The fill (possibly by a concurrent query holding an older
			// snapshot) covers a prefix of this query's relations: absorb the
			// appended suffix through the plan's routing before joining.
			start := time.Now()
			if err := rec.catchUpLocked(ctx, prep.Plan, s, t); err != nil {
				rec.mu.Unlock()
				return nil, err
			}
			absorbTime += time.Since(start)
		}
		if rec.prepAlg != algName {
			// A query switched local-join algorithms on a retained plan:
			// rebuild the prepared structures once for the new algorithm (the
			// pattern of the cluster worker's preparedFor). Delta-appended
			// partitions are re-sorted first so the prepare sees sorted rows;
			// both replacements are copy-on-write like catchUpLocked's.
			next, _ := rec.cloneSlicesLocked(0)
			for pid := range rec.dirty {
				if p := next[pid]; p != nil {
					next[pid] = p.Presort()
				}
			}
			rec.dirty = nil
			rec.parts = next
			rec.prepared = exec.PrepareShuffled(next, band, alg, 0)
			rec.prepAlg = algName
		}
		if len(rec.dirty) > 0 {
			start := time.Now()
			rec.rebuildDirtyLocked(band, alg)
			rebuildTime += time.Since(start)
		}
		rec.mu.Unlock()
		rec.mu.RLock()
	}
	parts, totalInput, prepared := rec.parts, rec.totalInput, rec.prepared
	rec.mu.RUnlock()

	res, err := exec.ExecuteShuffledPrepared(ctx, prep.Plan, parts, prepared, totalInput, s.Len(), t.Len(), band, execOpts)
	if err != nil {
		return nil, err
	}
	res.ShuffleTime = shuffleTime
	res.DeltaAbsorbTime = absorbTime
	res.StaleRebuildTime = rebuildTime
	res.WarmPartitions = warm
	return res, nil
}

// absorb eagerly folds rows appended past the retained record's covered
// prefixes into the in-memory partitions. A plan with nothing retained (never
// filled, or evicted) is a no-op: the next query fills cold from the full
// relations.
func (p *inProcessPlane) absorb(ctx context.Context, prep *exec.Prepared, s, t *Relation, planID, _ string) error {
	p.mu.Lock()
	rec := p.parts[planID]
	p.mu.Unlock()
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if !rec.done {
		return nil // a cold fill in progress covers a snapshot; its query catches up
	}
	return rec.catchUpLocked(ctx, prep.Plan, s, t)
}

// prime fills (or catches up) a plan's retained partitions without joining —
// the background half of a drift-triggered re-partition.
func (p *inProcessPlane) prime(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) error {
	p.mu.Lock()
	if p.parts == nil {
		p.parts = make(map[string]*retainedParts)
	}
	rec, ok := p.parts[planID]
	if !ok {
		rec = &retainedParts{}
		p.parts[planID] = rec
	}
	p.mu.Unlock()
	alg := r.Algorithm
	if alg == nil {
		alg = localjoin.Default()
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if !rec.done {
		return rec.fillLocked(ctx, prep.Plan, s, t, band, alg)
	}
	return rec.catchUpLocked(ctx, prep.Plan, s, t)
}

// partitionBytes sums the partitions' key and ID bytes.
func partitionBytes(parts []*exec.PartitionInput) int64 {
	var total int64
	for _, p := range parts {
		if p == nil {
			continue
		}
		total += int64(p.S.Len()+p.T.Len())*int64(p.S.Dims())*8 +
			int64(len(p.SIDs)+len(p.TIDs))*8
	}
	return total
}

func (p *inProcessPlane) evict(planID string) {
	p.mu.Lock()
	delete(p.parts, planID)
	p.mu.Unlock()
}

func (p *inProcessPlane) retained() (int, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var bytes int64
	for _, rec := range p.parts {
		bytes += rec.bytes.Load()
	}
	return len(p.parts), bytes
}

func (p *inProcessPlane) close() {
	p.mu.Lock()
	p.parts = nil
	p.mu.Unlock()
}

// clusterPlane executes across RPC workers; retained partitions live in the
// workers' registries and warm queries ship zero shuffle bytes.
type clusterPlane struct {
	coord *cluster.Coordinator
}

func (p *clusterPlane) workers() int { return p.coord.Workers() }

func (p *clusterPlane) execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error) {
	copts := cluster.Options{
		Algorithm:       r.AlgorithmName,
		Model:           r.Model,
		Sampling:        r.Sampling,
		CollectPairs:    r.CollectPairs,
		ChunkSize:       r.ChunkSize,
		Window:          r.Window,
		JoinParallelism: r.JoinParallelism,
		MorselRows:      r.MorselRows,
		Serial:          r.Serial,
		Compression:     r.Compression,
		Seed:            r.Seed,
		PlanID:          planID,
	}
	return p.coord.RunPlan(ctx, prep.Plan, prep.Ctx, s, t, band, copts)
}

// absorb ships the appended suffixes as delta Loads into the sealed plan on
// the workers, so the next warm query moves zero bytes.
func (p *clusterPlane) absorb(ctx context.Context, prep *exec.Prepared, s, t *Relation, planID, compression string) error {
	return p.coord.AbsorbPlan(ctx, prep.Plan, prep.Ctx, s, t, cluster.Options{PlanID: planID, Compression: compression})
}

// prime ships and seals a plan's partitions on the workers without joining.
func (p *clusterPlane) prime(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) error {
	copts := cluster.Options{
		Algorithm:       r.AlgorithmName,
		Model:           r.Model,
		Sampling:        r.Sampling,
		ChunkSize:       r.ChunkSize,
		Window:          r.Window,
		JoinParallelism: r.JoinParallelism,
		MorselRows:      r.MorselRows,
		Serial:          r.Serial,
		Compression:     r.Compression,
		Seed:            r.Seed,
		PlanID:          planID,
	}
	return p.coord.ShipPlan(ctx, prep.Plan, prep.Ctx, s, t, band, copts)
}

func (p *clusterPlane) evict(planID string) { p.coord.EvictPlan(planID) }

// retained reports the coordinator's sealed-shipment count; the bytes live on
// the workers, whose own registries report them (bandjoin_worker_retained_bytes).
func (p *clusterPlane) retained() (int, int64) { return p.coord.RetainedPlans(), 0 }

func (p *clusterPlane) close() {}
