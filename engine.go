package bandjoin

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bandjoin/internal/cluster"
	"bandjoin/internal/exec"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/sample"
)

// Engine serves many band-join queries over long-lived registered datasets,
// amortizing the paper's per-query pipeline (sample → optimize → shuffle →
// local join) across executions. Three cache layers sit between a query and
// the work it would cost one-shot:
//
//  1. Input samples. Drawing the optimizer's input sample is the only part of
//     the optimization phase that scans the full inputs; the engine draws it
//     once per (dataset pair, sampling configuration) and derives the
//     band-dependent output sample per distinct band, so replanning the same
//     pair for a new ε never rescans the inputs.
//  2. Plans. The optimization phase's product — the partitioning plan — is
//     cached under (dataset pair, band, partitioner configuration, workers,
//     cost model, sampling configuration, seed); a repeated query skips
//     optimization entirely.
//  3. Shuffled partitions. Unless retention is disabled, the shuffle's output
//     is retained under the plan's fingerprint — in memory for the in-process
//     plane, in the workers' retained-plan registry for the RPC plane — so a
//     repeated query moves zero shuffle bytes and goes straight to the local
//     joins.
//
// Caches are invalidated by Unregister (and by re-Register of the same name,
// which bumps the dataset's version so stale entries can never serve a new
// relation). Engine is safe for concurrent use; concurrent identical queries
// share one sampling, one optimization, and one shuffle.
type Engine struct {
	id        string
	plane     enginePlane
	retention bool

	mu       sync.Mutex // guards datasets, samples, plans, closed
	datasets map[string]*engineDataset
	samples  map[sampleKey]*sampleEntry
	plans    map[planKey]*planEntry
	closed   bool

	queries    atomic.Int64
	sampleHits atomic.Int64
	planHits   atomic.Int64
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// DisableRetention turns off the third cache layer (shuffled partitions):
	// samples and plans are still cached, but every query reshuffles. Use it
	// when inputs are large relative to memory, or for throwaway engines.
	DisableRetention bool
}

// engineSeq disambiguates engine instances: plan fingerprints are prefixed
// with the engine id so two engines sharing one long-lived worker fleet can
// never serve each other's retained partitions (their equally-named datasets
// may hold different data).
var engineSeq atomic.Int64

// NewEngine returns an engine executing on the in-process cluster simulator.
func NewEngine(opts EngineOptions) *Engine {
	return newEngine(&inProcessPlane{}, opts)
}

// NewEngine returns an engine executing across the cluster's RPC workers:
// retained partitions live on the workers, and a warm query's shuffle moves
// zero bytes over the wire. The engine does not own the cluster connection;
// close the Cluster separately.
func (c *Cluster) NewEngine(opts EngineOptions) *Engine {
	return newEngine(&clusterPlane{coord: c.coord}, opts)
}

func newEngine(p enginePlane, opts EngineOptions) *Engine {
	return &Engine{
		id:        fmt.Sprintf("eng%d-%d", engineSeq.Add(1), time.Now().UnixNano()),
		plane:     p,
		retention: !opts.DisableRetention,
		datasets:  make(map[string]*engineDataset),
		samples:   make(map[sampleKey]*sampleEntry),
		plans:     make(map[planKey]*planEntry),
	}
}

type engineDataset struct {
	rel     *Relation
	version uint64
}

// sampleKey identifies one cached input sample: the dataset pair (by name and
// version) plus everything DrawInputs consults.
type sampleKey struct {
	s, t       string
	sVer, tVer uint64
	sampling   sample.Options
}

type sampleEntry struct {
	once sync.Once
	in   *sample.InputSample
	err  error
}

// planKey identifies one cached plan: the dataset pair plus everything the
// optimization phase consults — band, partitioner configuration, worker
// count, cost model, sampling configuration, and seed.
type planKey struct {
	s, t       string
	sVer, tVer uint64
	band       string
	pt         string
	workers    int
	model      CostModel
	sampling   sample.Options
	seed       int64
}

type planEntry struct {
	once sync.Once
	prep *exec.Prepared
	err  error

	// planID is the retention fingerprint, computed deterministically from
	// the plan key when the entry is created (under e.mu, so the invalidation
	// paths can read it there without racing the once). Empty when retention
	// is disabled: nothing is ever resident, so nothing needs evicting.
	planID string
}

// Register adds (or replaces) a named dataset. Re-registering a name bumps
// its version: cached samples, plans, and retained partitions derived from
// the old relation are invalidated and the memory they pin is released.
func (e *Engine) Register(name string, rel *Relation) error {
	if name == "" {
		return fmt.Errorf("bandjoin: dataset name must be non-empty")
	}
	if rel == nil {
		return fmt.Errorf("bandjoin: nil input relation")
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: engine is closed")
	}
	version := uint64(1)
	var evict []string
	if old, ok := e.datasets[name]; ok {
		version = old.version + 1
		evict = e.dropDerivedLocked(name)
	}
	e.datasets[name] = &engineDataset{rel: rel, version: version}
	e.mu.Unlock()
	e.evictAll(evict)
	return nil
}

// Unregister removes a dataset and invalidates every cached sample, plan, and
// retained partition set derived from it. Unregistering an unknown name is an
// error.
func (e *Engine) Unregister(name string) error {
	e.mu.Lock()
	if _, ok := e.datasets[name]; !ok {
		e.mu.Unlock()
		return fmt.Errorf("bandjoin: unknown dataset %q", name)
	}
	evict := e.dropDerivedLocked(name)
	delete(e.datasets, name)
	e.mu.Unlock()
	e.evictAll(evict)
	return nil
}

// dropDerivedLocked removes cache entries touching the named dataset and
// returns the retained-plan fingerprints to evict from the execution plane.
// Callers hold e.mu; the eviction itself (per-worker RPCs on the cluster
// plane) must happen after releasing it so concurrent queries are not stalled
// behind network round trips.
func (e *Engine) dropDerivedLocked(name string) []string {
	var evict []string
	for k := range e.samples {
		if k.s == name || k.t == name {
			delete(e.samples, k)
		}
	}
	for k, pe := range e.plans {
		if k.s == name || k.t == name {
			if pe.planID != "" {
				evict = append(evict, pe.planID)
			}
			delete(e.plans, k)
		}
	}
	return evict
}

// evictAll drops the given retained-plan fingerprints from the execution
// plane. Call without holding e.mu.
func (e *Engine) evictAll(planIDs []string) {
	for _, id := range planIDs {
		e.plane.evict(id)
	}
}

// Datasets returns the registered dataset names.
func (e *Engine) Datasets() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.datasets))
	for name := range e.datasets {
		names = append(names, name)
	}
	return names
}

// EngineStats reports cache occupancy and hit counts.
type EngineStats struct {
	// Datasets, CachedSamples, and CachedPlans are current cache occupancy.
	Datasets      int
	CachedSamples int
	CachedPlans   int
	// Queries counts Join calls; SampleHits and PlanHits count how many of
	// them were served from the respective cache.
	Queries    int64
	SampleHits int64
	PlanHits   int64
}

// Stats returns a snapshot of the engine's cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Datasets:      len(e.datasets),
		CachedSamples: len(e.samples),
		CachedPlans:   len(e.plans),
		Queries:       e.queries.Load(),
		SampleHits:    e.sampleHits.Load(),
		PlanHits:      e.planHits.Load(),
	}
}

// Close releases the engine's caches and evicts its retained partitions from
// the execution plane. The engine rejects queries afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	var evict []string
	for _, pe := range e.plans {
		if pe.planID != "" {
			evict = append(evict, pe.planID)
		}
	}
	e.datasets, e.samples, e.plans = nil, nil, nil
	e.mu.Unlock()
	e.evictAll(evict)
	e.plane.close()
}

// Join runs the band-join of the registered datasets sName and tName. The
// ctx bounds the whole query: it is checked between pipeline stages and
// inside execution — between shuffle passes, between partition joins, and (on
// the cluster plane) on every RPC — so cancellation aborts a running query
// promptly with ctx.Err(). Repeated queries are served from the caches: same
// pair and sampling → no input scan; same full query shape → no optimization;
// retention on → no shuffle.
func (e *Engine) Join(ctx context.Context, sName, tName string, band Band, opts Options) (*Result, error) {
	r, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	if w := e.plane.workers(); w > 0 {
		r.Workers = w
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("bandjoin: engine is closed")
	}
	ds, okS := e.datasets[sName]
	dt, okT := e.datasets[tName]
	e.mu.Unlock()
	if !okS {
		return nil, fmt.Errorf("bandjoin: unknown dataset %q", sName)
	}
	if !okT {
		return nil, fmt.Errorf("bandjoin: unknown dataset %q", tName)
	}
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if ds.rel.Dims() != band.Dims() || dt.rel.Dims() != band.Dims() {
		return nil, fmt.Errorf("bandjoin: band condition has %d dimensions but inputs have %d and %d",
			band.Dims(), ds.rel.Dims(), dt.rel.Dims())
	}
	e.queries.Add(1)

	// Stage 1: input sample (cached per dataset pair and sampling config).
	se, hit := e.sampleFor(sampleKey{s: sName, t: tName, sVer: ds.version, tVer: dt.version, sampling: r.Sampling})
	if hit {
		e.sampleHits.Add(1)
	}
	se.once.Do(func() {
		se.in, se.err = sample.DrawInputs(ds.rel, dt.rel, r.Sampling)
	})
	if se.err != nil {
		return nil, fmt.Errorf("bandjoin: sampling: %w", se.err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: plan (cached per full query shape). The reported optimization
	// time is this query's actual planning cost — the wall time spent in this
	// stage — not the cached plan's original cost: a plan-cache hit reports
	// (approximately) zero, a miss reports the sample derivation plus the
	// partitioner's optimization, and a query that arrives while an identical
	// one is planning reports its wait.
	planStart := time.Now()
	pk := planKey{
		s: sName, t: tName, sVer: ds.version, tVer: dt.version,
		band:     fmt.Sprintf("%v|%v", band.Low, band.High),
		pt:       partitionerFingerprint(r.Partitioner),
		workers:  r.Workers,
		model:    r.Model,
		sampling: r.Sampling,
		seed:     r.Seed,
	}
	pe, hit := e.planFor(pk)
	if hit {
		e.planHits.Add(1)
	}
	pe.once.Do(func() {
		smp, err := se.in.ForBand(band)
		if err != nil {
			pe.err = err
			return
		}
		pe.prep, pe.err = exec.PlanQuery(r.Partitioner, smp, band, r.execOptions())
	})
	if pe.err != nil {
		return nil, pe.err
	}
	planTime := time.Since(planStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 3: execute (or estimate, which never touches the full inputs).
	if r.EstimateOnly {
		res := exec.EstimatePlan(pe.prep.Plan, pe.prep.Ctx)
		res.Partitioner = pe.prep.Partitioner
		res.OptimizationTime = planTime
		return res, nil
	}
	res, err := e.plane.execute(ctx, pe.prep, ds.rel, dt.rel, band, r, pe.planID)
	if err != nil {
		return nil, err
	}
	res.Partitioner = pe.prep.Partitioner
	res.OptimizationTime = planTime
	return res, nil
}

// partitionerFingerprint identifies a partitioner configuration for the plan
// cache. Partitioners that carry execution-only knobs irrelevant to the plans
// they produce expose a PlanFingerprint that omits them (core.RecPart's
// grower selection and parallelism), so two queries differing only in such
// knobs share one cached plan and one retained partition set; everything else
// falls back to the full configuration dump.
func partitionerFingerprint(p Partitioner) string {
	if fp, ok := p.(interface{ PlanFingerprint() string }); ok {
		return fp.PlanFingerprint()
	}
	return fmt.Sprintf("%T%+v", p, p)
}

// sampleFor returns the sample-cache entry for the key, reporting whether it
// already existed.
func (e *Engine) sampleFor(k sampleKey) (*sampleEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if se, ok := e.samples[k]; ok {
		return se, true
	}
	se := &sampleEntry{}
	e.samples[k] = se
	return se, false
}

// planFor returns the plan-cache entry for the key, reporting whether it
// already existed.
func (e *Engine) planFor(k planKey) (*planEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pe, ok := e.plans[k]; ok {
		return pe, true
	}
	pe := &planEntry{}
	if e.retention {
		pe.planID = fmt.Sprintf("%s|%s@%d|%s@%d|b=%s|p=%s|w=%d|m=%+v|smp=%+v|seed=%d",
			e.id, k.s, k.sVer, k.t, k.tVer, k.band, k.pt, k.workers, k.model, k.sampling, k.seed)
	}
	e.plans[k] = pe
	return pe, false
}

// enginePlane is the execution backend: the in-process simulator or the RPC
// cluster. Both serve through the same Engine interface.
type enginePlane interface {
	// workers reports the plane's fixed worker count, or 0 if the resolved
	// option decides.
	workers() int
	// execute runs (shuffle +) local joins for a prepared plan, honoring ctx.
	// A non-empty planID enables partition retention under that fingerprint.
	execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error)
	// evict drops one retained partition set.
	evict(planID string)
	// close releases plane-held resources.
	close()
}

// inProcessPlane executes on the in-process cluster simulator and retains
// shuffled partitions in memory.
type inProcessPlane struct {
	mu    sync.Mutex
	parts map[string]*retainedParts
}

// retainedParts is one retained in-memory shuffle outcome. Its RWMutex plays
// the same role as the coordinator's shipment record: exactly one shuffle per
// fingerprint, any number of concurrent warm joins. Alongside the presorted
// partitions it retains the local join's prepared structures (ε-grid CSR
// buckets, sorted-row caches, resolved candidate cells), the in-process
// analogue of the cluster workers' Seal-time prebuild; prepAlg names the
// algorithm they were built for, and a query using a different local
// algorithm rebuilds them once.
type retainedParts struct {
	mu         sync.RWMutex
	done       bool
	parts      []*exec.PartitionInput
	totalInput int64
	prepAlg    string
	prepared   []localjoin.PreparedT
}

func (p *inProcessPlane) workers() int { return 0 }

func (p *inProcessPlane) execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error) {
	execOpts := r.execOptions()
	if planID == "" {
		return exec.ExecutePlan(ctx, prep.Plan, s, t, band, execOpts)
	}

	p.mu.Lock()
	if p.parts == nil {
		p.parts = make(map[string]*retainedParts)
	}
	rec, ok := p.parts[planID]
	if !ok {
		rec = &retainedParts{}
		p.parts[planID] = rec
	}
	p.mu.Unlock()

	alg := r.Algorithm
	if alg == nil {
		alg = localjoin.Default()
	}
	algName := alg.Name()

	var shuffleTime time.Duration
	rec.mu.RLock()
	if !rec.done {
		rec.mu.RUnlock()
		rec.mu.Lock()
		if !rec.done {
			start := time.Now()
			parts, totalInput, err := exec.Shuffle(ctx, prep.Plan, s, t, 0)
			if err != nil {
				// A cancelled shuffle leaves the record unfilled; the next
				// query redoes it.
				rec.mu.Unlock()
				return nil, err
			}
			rec.parts, rec.totalInput = parts, totalInput
			// Presort and prebuild once at retention time (the in-process
			// analogue of the workers' seal-time presort + prepare): warm
			// joins find sorted rows and ready-made join structures.
			exec.PresortPartitions(rec.parts, 0)
			rec.prepared = exec.PrepareShuffled(rec.parts, band, alg, 0)
			rec.prepAlg = algName
			shuffleTime = time.Since(start)
			rec.done = true
		}
		rec.mu.Unlock()
		rec.mu.RLock()
	}
	if rec.prepAlg != algName {
		// A query switched local-join algorithms on a retained plan: rebuild
		// the prepared structures once for the new algorithm (the pattern of
		// the cluster worker's preparedFor).
		rec.mu.RUnlock()
		rec.mu.Lock()
		if rec.prepAlg != algName {
			rec.prepared = exec.PrepareShuffled(rec.parts, band, alg, 0)
			rec.prepAlg = algName
		}
		rec.mu.Unlock()
		rec.mu.RLock()
	}
	parts, totalInput, prepared := rec.parts, rec.totalInput, rec.prepared
	rec.mu.RUnlock()

	res, err := exec.ExecuteShuffledPrepared(ctx, prep.Plan, parts, prepared, totalInput, s.Len(), t.Len(), band, execOpts)
	if err != nil {
		return nil, err
	}
	res.ShuffleTime = shuffleTime
	return res, nil
}

func (p *inProcessPlane) evict(planID string) {
	p.mu.Lock()
	delete(p.parts, planID)
	p.mu.Unlock()
}

func (p *inProcessPlane) close() {
	p.mu.Lock()
	p.parts = nil
	p.mu.Unlock()
}

// clusterPlane executes across RPC workers; retained partitions live in the
// workers' registries and warm queries ship zero shuffle bytes.
type clusterPlane struct {
	coord *cluster.Coordinator
}

func (p *clusterPlane) workers() int { return p.coord.Workers() }

func (p *clusterPlane) execute(ctx context.Context, prep *exec.Prepared, s, t *Relation, band Band, r resolved, planID string) (*Result, error) {
	copts := cluster.Options{
		Algorithm:       r.AlgorithmName,
		Model:           r.Model,
		Sampling:        r.Sampling,
		CollectPairs:    r.CollectPairs,
		ChunkSize:       r.ChunkSize,
		Window:          r.Window,
		JoinParallelism: r.JoinParallelism,
		Serial:          r.Serial,
		Seed:            r.Seed,
		PlanID:          planID,
	}
	return p.coord.RunPlan(ctx, prep.Plan, prep.Ctx, s, t, band, copts)
}

func (p *clusterPlane) evict(planID string) { p.coord.EvictPlan(planID) }

func (p *clusterPlane) close() {}
