package wire

import "fmt"

// Mode selects how chunks are encoded on the wire.
type Mode uint8

const (
	// ModeAuto is the default: columnar encoding with the LZ4 stage gated by
	// an entropy probe per column.
	ModeAuto Mode = iota
	// ModeOff disables this package entirely; the cluster ships the v1
	// row-major packed format. Retained as the equivalence oracle.
	ModeOff
	// ModeDelta uses the columnar varint/delta encodings but never attempts
	// the LZ4 stage.
	ModeDelta
	// ModeLZ4 always attempts the LZ4 stage on every column (kept only when
	// strictly smaller).
	ModeLZ4
)

// ParseMode parses a compression knob value. The empty string means ModeAuto.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "off":
		return ModeOff, nil
	case "delta":
		return ModeDelta, nil
	case "lz4":
		return ModeLZ4, nil
	}
	return ModeAuto, fmt.Errorf("wire: unknown compression mode %q (want auto, off, delta, or lz4)", s)
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeOff:
		return "off"
	case ModeDelta:
		return "delta"
	case ModeLZ4:
		return "lz4"
	}
	return fmt.Sprintf("wire.Mode(%d)", uint8(m))
}
