package wire

import "encoding/binary"

// An LZ4-style block compressor: greedy single-hash-table LZ77 emitting the
// LZ4 block sequence format (token byte with literal/match length nibbles,
// 255-extension bytes, 2-byte little-endian match offsets, minimum match 4).
// Both sides live here and are dependency-free; the encoder only keeps a
// compressed column when it is strictly smaller than the plain payload, so the
// compressor never needs to win — only to be correct.

const (
	lzHashLog   = 13
	lzTableSize = 1 << lzHashLog
	lzMinMatch  = 4
	// lzMinInput is the smallest payload worth attempting: below this the
	// framing overhead dominates any possible win.
	lzMinInput = 64
)

func lzHash(v uint32) uint32 { return (v * 2654435761) >> (32 - lzHashLog) }

// lz4Compress appends the compressed form of src to dst and returns it. The
// table holds candidate positions + 1 (0 = empty) and is cleared here.
func lz4Compress(src, dst []byte, table *[lzTableSize]int32) []byte {
	clear(table[:])
	n := len(src)
	anchor, s := 0, 0
	if n > lzMinMatch+12 {
		limit := n - 12 // last 5 bytes stay literal; keep a search margin
		for s < limit {
			cur := binary.LittleEndian.Uint32(src[s:])
			h := lzHash(cur)
			cand := int(table[h]) - 1
			table[h] = int32(s + 1)
			if cand < 0 || s-cand > 0xFFFF || binary.LittleEndian.Uint32(src[cand:]) != cur {
				s++
				continue
			}
			mlen := lzMinMatch
			maxLen := n - 5 - s
			for mlen < maxLen && src[cand+mlen] == src[s+mlen] {
				mlen++
			}
			dst = lzEmit(dst, src[anchor:s], s-cand, mlen)
			s += mlen
			anchor = s
		}
	}
	// Final literals-only sequence (match nibble 0, no offset).
	lits := src[anchor:]
	tok := byte(0)
	if len(lits) >= 15 {
		tok = 0xF0
	} else {
		tok = byte(len(lits)) << 4
	}
	dst = append(dst, tok)
	if len(lits) >= 15 {
		dst = lzAppendLen(dst, len(lits)-15)
	}
	return append(dst, lits...)
}

// lzEmit appends one literal-run + match sequence.
func lzEmit(dst, lits []byte, offset, mlen int) []byte {
	ll, ml := len(lits), mlen-lzMinMatch
	tok := byte(0)
	if ll >= 15 {
		tok = 0xF0
	} else {
		tok = byte(ll) << 4
	}
	if ml >= 15 {
		tok |= 0x0F
	} else {
		tok |= byte(ml)
	}
	dst = append(dst, tok)
	if ll >= 15 {
		dst = lzAppendLen(dst, ll-15)
	}
	dst = append(dst, lits...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = lzAppendLen(dst, ml-15)
	}
	return dst
}

func lzAppendLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// lz4Decompress appends the decompressed form of src to dst, which must not
// grow beyond maxLen bytes (the declared uncompressed size). Malformed input
// returns errCorrupt; the function never panics on hostile bytes.
func lz4Decompress(src, dst []byte, maxLen int) ([]byte, error) {
	si := 0
	for si < len(src) {
		tok := src[si]
		si++
		ll := int(tok >> 4)
		if ll == 15 {
			ext, ns, ok := lzReadLen(src, si)
			if !ok {
				return nil, errCorrupt
			}
			ll += ext
			si = ns
		}
		if ll > len(src)-si || len(dst)+ll > maxLen {
			return nil, errCorrupt
		}
		dst = append(dst, src[si:si+ll]...)
		si += ll
		if si == len(src) {
			break // final literals-only sequence
		}
		if len(src)-si < 2 {
			return nil, errCorrupt
		}
		off := int(src[si]) | int(src[si+1])<<8
		si += 2
		if off == 0 || off > len(dst) {
			return nil, errCorrupt
		}
		ml := int(tok & 0x0F)
		if ml == 15 {
			ext, ns, ok := lzReadLen(src, si)
			if !ok {
				return nil, errCorrupt
			}
			ml += ext
			si = ns
		}
		ml += lzMinMatch
		if len(dst)+ml > maxLen {
			return nil, errCorrupt
		}
		// Byte-at-a-time copy: matches may overlap their own output.
		p := len(dst) - off
		for i := 0; i < ml; i++ {
			dst = append(dst, dst[p+i])
		}
	}
	return dst, nil
}

func lzReadLen(src []byte, si int) (v, next int, ok bool) {
	for {
		if si >= len(src) {
			return 0, 0, false
		}
		b := src[si]
		si++
		v += int(b)
		if v > 1<<30 {
			return 0, 0, false
		}
		if b != 255 {
			return v, si, true
		}
	}
}
