package wire

import (
	"math"
	"math/rand"
	"testing"
)

// roundTrip encodes one chunk and decodes it back, failing on any mismatch.
// It returns the encoded size so callers can assert compression claims.
func roundTrip(t *testing.T, mode Mode, keys []float64, dims int, ids []int64) int {
	t.Helper()
	enc := NewEncoder(mode)
	raw := enc.EncodeChunk(keys, dims, ids)
	size := len(raw)

	var dec Decoder
	n, gotDims, err := dec.Begin(raw)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if n != len(ids) || gotDims != dims {
		t.Fatalf("Begin = (%d, %d), want (%d, %d)", n, gotDims, len(ids), dims)
	}
	col := make([]float64, n)
	for d := 0; d < dims; d++ {
		min, max, err := dec.KeyColumn(col)
		if err != nil {
			t.Fatalf("KeyColumn(%d): %v", d, err)
		}
		wantMin, wantMax := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			want := keys[i*dims+d]
			if got := col[i]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("mode %v: column %d row %d = %v (%x), want %v (%x)",
					mode, d, i, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if want < wantMin {
				wantMin = want
			}
			if want > wantMax {
				wantMax = want
			}
		}
		if n > 0 && (min != wantMin || max != wantMax) {
			t.Fatalf("mode %v: column %d stats = [%v, %v], want [%v, %v]", mode, d, min, max, wantMin, wantMax)
		}
	}
	gotIDs := make([]int64, n)
	if err := dec.IDs(gotIDs); err != nil {
		t.Fatalf("IDs: %v", err)
	}
	for i, want := range ids {
		if gotIDs[i] != want {
			t.Fatalf("mode %v: id %d = %d, want %d", mode, i, gotIDs[i], want)
		}
	}
	return size
}

func quantize(v float64, decimals int) float64 {
	p := math.Pow(10, float64(decimals))
	return math.Round(v*p) / p
}

// chunkShapes builds the column shapes every encoding must survive.
func chunkShapes(rng *rand.Rand) map[string]struct {
	keys []float64
	dims int
	ids  []int64
} {
	shapes := map[string]struct {
		keys []float64
		dims int
		ids  []int64
	}{}

	shapes["empty"] = struct {
		keys []float64
		dims int
		ids  []int64
	}{nil, 3, nil}

	shapes["single-row"] = struct {
		keys []float64
		dims int
		ids  []int64
	}{[]float64{1.25, -3.5, 0}, 3, []int64{42}}

	// Near-sorted fixed-decimal keys with monotonic IDs: the shape RecPart
	// routing produces, where delta coding should win.
	n := 500
	sorted := make([]float64, n*2)
	sortedIDs := make([]int64, n)
	v := 1.0
	for i := 0; i < n; i++ {
		v += quantize(rng.Float64()*0.1, 3)
		sorted[i*2] = quantize(v, 3)
		sorted[i*2+1] = quantize(rng.Float64()*100, 2)
		sortedIDs[i] = int64(i * 3)
	}
	shapes["near-sorted-decimal"] = struct {
		keys []float64
		dims int
		ids  []int64
	}{sorted, 2, sortedIDs}

	// Adversarially unsorted: decimal-representable but in the worst order
	// for delta coding, with shuffled non-monotonic IDs.
	adv := make([]float64, n)
	advIDs := make([]int64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			adv[i] = quantize(float64(i)*0.001, 3)
		} else {
			adv[i] = quantize(1e6-float64(i), 3)
		}
		advIDs[i] = rng.Int63n(1 << 40)
	}
	shapes["adversarial-unsorted"] = struct {
		keys []float64
		dims int
		ids  []int64
	}{adv, 1, advIDs}

	// Full-entropy mantissas: must take the raw path and still round-trip
	// bit-identically. Includes negatives, tiny and huge magnitudes.
	raw := make([]float64, n)
	rawIDs := make([]int64, n)
	for i := 0; i < n; i++ {
		raw[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(60)-30))
		rawIDs[i] = int64(i)
	}
	shapes["raw-entropy"] = struct {
		keys []float64
		dims int
		ids  []int64
	}{raw, 1, rawIDs}

	// Special values that must never be mangled by the decimal probe.
	shapes["specials"] = struct {
		keys []float64
		dims int
		ids  []int64
	}{[]float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 1e300, -1e-300, 123.456}, 1,
		[]int64{0, 1, 2, 3, 4, 5, 6, 7}}

	// Highly repetitive column: the LZ4 stage should engage under auto/lz4.
	rep := make([]float64, n)
	repIDs := make([]int64, n)
	for i := 0; i < n; i++ {
		rep[i] = float64(i % 4)
		repIDs[i] = int64(i % 7)
	}
	shapes["repetitive"] = struct {
		keys []float64
		dims int
		ids  []int64
	}{rep, 1, repIDs}

	return shapes
}

func TestChunkRoundTripAllModesAndShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := chunkShapes(rng)
	for name, s := range shapes {
		for _, mode := range []Mode{ModeAuto, ModeDelta, ModeLZ4} {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				roundTrip(t, mode, s.keys, s.dims, s.ids)
			})
		}
	}
}

func TestDecimalChunksCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4096
	dims := 4
	keys := make([]float64, n*dims)
	ids := make([]int64, n)
	base := 0.0
	for i := 0; i < n; i++ {
		base += quantize(rng.Float64()*0.01, 3)
		for d := 0; d < dims; d++ {
			keys[i*dims+d] = quantize(base+rng.Float64()*10, 3)
		}
		ids[i] = int64(i)
	}
	raw := int(RawBytes(n, dims))
	size := roundTrip(t, ModeAuto, keys, dims, ids)
	if size*3 > raw {
		t.Fatalf("decimal chunk encoded to %d bytes; want at least 3x under raw %d", size, raw)
	}
}

func TestRawChunksNeverBlowUp(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 2048
	keys := make([]float64, n)
	ids := make([]int64, n)
	for i := range keys {
		keys[i] = rng.NormFloat64() * 1e9
		ids[i] = rng.Int63()
	}
	size := roundTrip(t, ModeLZ4, keys, 1, ids)
	// Framing overhead must stay marginal even when nothing compresses:
	// IDs here are random too, so the whole chunk is near-raw.
	raw := int(RawBytes(n, 1))
	if size > raw+raw/64+64 {
		t.Fatalf("incompressible chunk encoded to %d bytes, raw is %d", size, raw)
	}
}

func TestDecoderRejectsMalformedChunks(t *testing.T) {
	enc := NewEncoder(ModeAuto)
	keys := []float64{1.5, 2.5, 3.5, 4.5}
	ids := []int64{1, 2, 3, 4}
	good := append([]byte(nil), enc.EncodeChunk(keys, 1, ids)...)

	var dec Decoder
	col := make([]float64, 4)
	idDst := make([]int64, 4)

	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		n, dims, err := dec.Begin(good[:cut])
		if err != nil {
			continue
		}
		_ = n
		failed := false
		for d := 0; d < dims; d++ {
			if _, _, err := dec.KeyColumn(col); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			if err := dec.IDs(idDst); err == nil {
				t.Fatalf("truncated chunk (cut at %d) decoded without error", cut)
			}
		}
	}

	// Bit flips must either error or decode to the same row count — never
	// panic or over-read.
	for pos := 0; pos < len(good); pos++ {
		mut := append([]byte(nil), good...)
		mut[pos] ^= 0x41
		n, dims, err := dec.Begin(mut)
		if err != nil {
			continue
		}
		if n != 4 {
			continue // header mutated; any consistent parse is acceptable
		}
		for d := 0; d < dims && err == nil; d++ {
			_, _, err = dec.KeyColumn(col)
		}
		if err == nil {
			_ = dec.IDs(idDst)
		}
	}

	// Out-of-order access is rejected.
	if _, _, err := dec.Begin(good); err != nil {
		t.Fatalf("Begin(good): %v", err)
	}
	if err := dec.IDs(idDst); err == nil {
		t.Fatal("IDs before KeyColumn should fail")
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]Mode{"": ModeAuto, "auto": ModeAuto, "off": ModeOff, "delta": ModeDelta, "lz4": ModeLZ4}
	for s, want := range cases {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = (%v, %v), want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("zstd"); err == nil {
		t.Fatal("ParseMode(zstd) should fail")
	}
}
