package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

func lzRoundTrip(t *testing.T, src []byte) {
	t.Helper()
	var table [lzTableSize]int32
	comp := lz4Compress(src, nil, &table)
	out, err := lz4Decompress(comp, nil, len(src))
	if err != nil {
		t.Fatalf("decompress(%d bytes): %v", len(src), err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(out))
	}
}

func TestLZ4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := [][]byte{
		nil,
		[]byte{0},
		[]byte("a"),
		bytes.Repeat([]byte("abcd"), 1000),       // long overlapping matches
		bytes.Repeat([]byte{0}, 70000),           // run longer than a length byte chain
		[]byte("the quick brown fox jumps over"), // short, all literals
		append(bytes.Repeat([]byte("0123456789abcde"), 7), make([]byte, 17)...),
	}
	random := make([]byte, 50000)
	rng.Read(random)
	cases = append(cases, random)
	// Mixed: compressible prefix, random middle, compressible suffix.
	mixed := append(bytes.Repeat([]byte("xy"), 5000), random[:10000]...)
	mixed = append(mixed, bytes.Repeat([]byte("zw"), 5000)...)
	cases = append(cases, mixed)
	for i, src := range cases {
		t.Run("", func(t *testing.T) {
			_ = i
			lzRoundTrip(t, src)
		})
	}
}

func TestLZ4CompressesRepetitiveInput(t *testing.T) {
	src := bytes.Repeat([]byte("bandjoin"), 4096)
	var table [lzTableSize]int32
	comp := lz4Compress(src, nil, &table)
	if len(comp)*10 > len(src) {
		t.Fatalf("repetitive input compressed to %d of %d bytes", len(comp), len(src))
	}
	out, err := lz4Decompress(comp, nil, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestLZ4DecompressRejectsHostileInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Random garbage must never panic or return more than maxLen bytes.
	for trial := 0; trial < 2000; trial++ {
		src := make([]byte, rng.Intn(64))
		rng.Read(src)
		out, err := lz4Decompress(src, nil, 256)
		if err == nil && len(out) > 256 {
			t.Fatalf("trial %d: decompressed %d bytes past maxLen", trial, len(out))
		}
	}
	// A valid stream truncated anywhere must error or stay within bounds.
	var table [lzTableSize]int32
	full := lz4Compress(bytes.Repeat([]byte("abcdefgh"), 512), nil, &table)
	for cut := 0; cut < len(full); cut++ {
		out, err := lz4Decompress(full[:cut], nil, 8*512)
		if err == nil && len(out) > 8*512 {
			t.Fatalf("cut %d: overran maxLen", cut)
		}
	}
}
