package wire

import (
	"math"
	"testing"
)

// TestWireSteadyStateAllocs pins the hot-path contract: once an encoder and
// decoder have warmed their scratch, encoding and fully decoding a chunk
// performs zero allocations. CI's allocation-check step runs this.
func TestWireSteadyStateAllocs(t *testing.T) {
	const n, dims = 2048, 4
	keys := make([]float64, n*dims)
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			keys[i*dims+d] = math.Round(float64(i*7+d)*0.123*1000) / 1000
		}
		ids[i] = int64(i * 3)
	}
	col := make([]float64, n)
	idDst := make([]int64, n)

	for _, mode := range []Mode{ModeAuto, ModeDelta, ModeLZ4} {
		enc := NewEncoder(mode)
		var dec Decoder
		work := func() {
			raw := enc.EncodeChunk(keys, dims, ids)
			gotN, gotDims, err := dec.Begin(raw)
			if err != nil || gotN != n || gotDims != dims {
				t.Fatalf("Begin = (%d, %d, %v)", gotN, gotDims, err)
			}
			for d := 0; d < dims; d++ {
				if _, _, err := dec.KeyColumn(col); err != nil {
					t.Fatalf("KeyColumn: %v", err)
				}
			}
			if err := dec.IDs(idDst); err != nil {
				t.Fatalf("IDs: %v", err)
			}
		}
		work() // warm the scratch buffers
		if avg := testing.AllocsPerRun(20, work); avg != 0 {
			t.Errorf("mode %v: encode+decode allocates %.1f times per chunk, want 0", mode, avg)
		}
	}
}
