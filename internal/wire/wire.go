// Package wire implements the cluster's columnar compressed chunk format
// (shuffle protocol v2). A chunk carries n tuples as dims key columns plus one
// tuple-ID column; every column is encoded independently with the cheapest of
// several encodings and optionally wrapped in an LZ4-style compressed block:
//
//	chunk   := version(1B) uvarint(n) uvarint(dims) column{dims+1}
//	column  := tag(1B) uvarint(len(payload)) payload
//	payload := raw64 | scaled | scaledDelta | int | intDelta
//	          (tag bit 0x80 set: payload = uvarint(rawLen) lz4Block)
//
// Key columns holding fixed-decimal values (v == m/10^k exactly, the shape of
// sensor/coordinate data such as the PTF workload) are shipped as zigzag
// varints of the scaled integers — plain or delta-coded, whichever a fused
// cost pass says is smaller; anything else falls back to raw little-endian
// IEEE-754. Tuple-ID columns get the same treatment without the decimal scale
// (IDs are monotonic per sender pass, so deltas are tiny). The selection is
// exact, not heuristic: the encoder computes the byte cost of each candidate
// and never produces a column larger than raw.
//
// Encoder and Decoder own all scratch they need; steady-state EncodeChunk and
// column decoding perform zero allocations (pinned by TestWireSteadyStateAllocs
// and CI's allocation-check step). Decoding is defensive: malformed input from
// the network returns an error, never panics and never over-allocates beyond
// the declared row count.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Version is the chunk format version this package encodes. It is also the
// wire version advertised in cluster Ping replies; peers that report an older
// version receive the v1 row-major packed format instead.
const Version = 2

// chunkVersion is the leading byte of every encoded chunk.
const chunkVersion = 1

// Column encoding tags. The high bit (flagLZ4) marks a payload wrapped in an
// LZ4-style compressed block.
const (
	tagRaw64       = 0 // little-endian 64-bit values, 8 bytes each
	tagScaled      = 1 // uvarint k, then zigzag varints of round(v*10^k)
	tagScaledDelta = 2 // uvarint k, first value plain, then zigzag varint deltas
	tagInt         = 3 // zigzag varints of int64 values
	tagIntDelta    = 4 // first value plain, then zigzag varint deltas
	flagLZ4        = 0x80
)

// maxScale is the largest decimal exponent the encoder probes: values with
// more than 6 fractional decimal digits ship raw.
const maxScale = 6

var pow10 = [maxScale + 1]float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6}

// maxExact is the largest magnitude at which every integer is exactly
// representable as a float64.
const maxExact = 1 << 53

var (
	errTruncated  = errors.New("wire: truncated chunk")
	errCorrupt    = errors.New("wire: corrupt chunk")
	errColumnSize = errors.New("wire: column length mismatch")
)

// RawBytes returns the number of bytes the v1 row-major format would ship for
// a chunk of n tuples with the given dimensionality: 8 bytes per key value
// plus 8 per tuple ID. It is the numerator of the compression-ratio metrics.
func RawBytes(n, dims int) int64 {
	return int64(n) * int64(dims+1) * 8
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// Encoder encodes chunks. It is not safe for concurrent use; every sender
// goroutine owns one. All returned buffers are reused by the next call.
type Encoder struct {
	mode   Mode
	buf    []byte  // finished chunk
	col    []byte  // column payload before optional compression
	lz     []byte  // compressed-column scratch
	scaled []int64 // decimal-scaled or id column values
	table  [lzTableSize]int32
	hist   [256]int32
}

// NewEncoder returns an encoder producing chunks under the given mode, which
// must not be ModeOff (off means "do not use this package").
func NewEncoder(mode Mode) *Encoder {
	if mode == ModeOff {
		panic("wire: NewEncoder with ModeOff")
	}
	return &Encoder{mode: mode}
}

// EncodeChunk encodes a chunk of n = len(ids) tuples whose keys are the given
// row-major slab (len(keys) == n*dims). The returned slice aliases the
// encoder's internal buffer and is valid until the next call; net/rpc's gob
// codec serializes arguments synchronously inside Go(), so senders may reuse
// the encoder immediately after the call is issued.
func (e *Encoder) EncodeChunk(keys []float64, dims int, ids []int64) []byte {
	n := len(ids)
	if len(keys) != n*dims {
		panic(fmt.Sprintf("wire: EncodeChunk: %d key values for %d tuples x %d dims", len(keys), n, dims))
	}
	buf := e.buf[:0]
	buf = append(buf, chunkVersion)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(dims))
	for d := 0; d < dims; d++ {
		buf = e.appendKeyColumn(buf, keys, d, dims, n)
	}
	buf = e.appendIDColumn(buf, ids)
	e.buf = buf
	return buf
}

// appendKeyColumn encodes one key column (strided gather fused into the
// encoding — no row-major intermediate) and appends tag+len+payload to buf.
func (e *Encoder) appendKeyColumn(buf []byte, keys []float64, d, dims, n int) []byte {
	tag := byte(tagRaw64)
	col := e.col[:0]
	if k, ok := e.scaleColumn(keys, d, dims, n); ok {
		// Exact cost of plain vs delta varints over the scaled ints.
		plain, delta := varintCosts(e.scaled)
		kPrefix := uvarintLen(uint64(k))
		if plain <= delta && kPrefix+plain < 8*n {
			tag = tagScaled
			col = binary.AppendUvarint(col, uint64(k))
			for _, m := range e.scaled {
				col = binary.AppendUvarint(col, zigzag(m))
			}
		} else if delta < plain && kPrefix+delta < 8*n {
			tag = tagScaledDelta
			col = binary.AppendUvarint(col, uint64(k))
			col = appendDeltas(col, e.scaled)
		}
	}
	if tag == tagRaw64 {
		for i := 0; i < n; i++ {
			col = binary.LittleEndian.AppendUint64(col, math.Float64bits(keys[i*dims+d]))
		}
	}
	e.col = col
	return e.appendColumn(buf, tag, col)
}

// appendIDColumn encodes the tuple-ID column.
func (e *Encoder) appendIDColumn(buf []byte, ids []int64) []byte {
	n := len(ids)
	e.scaled = append(e.scaled[:0], ids...)
	plain, delta := varintCosts(e.scaled)
	tag := byte(tagRaw64)
	col := e.col[:0]
	switch {
	case delta < plain && delta < 8*n:
		tag = tagIntDelta
		col = appendDeltas(col, e.scaled)
	case plain <= delta && plain < 8*n:
		tag = tagInt
		for _, m := range e.scaled {
			col = binary.AppendUvarint(col, zigzag(m))
		}
	default:
		for _, v := range ids {
			col = binary.LittleEndian.AppendUint64(col, uint64(v))
		}
	}
	e.col = col
	return e.appendColumn(buf, tag, col)
}

// appendColumn applies the optional LZ4 stage and appends the framed column.
func (e *Encoder) appendColumn(buf []byte, tag byte, payload []byte) []byte {
	if e.shouldCompress(payload) {
		e.lz = lz4Compress(payload, e.lz[:0], &e.table)
		wrapped := uvarintLen(uint64(len(payload))) + len(e.lz)
		if len(e.lz) > 0 && wrapped < len(payload) {
			buf = append(buf, tag|flagLZ4)
			buf = binary.AppendUvarint(buf, uint64(wrapped))
			buf = binary.AppendUvarint(buf, uint64(len(payload)))
			return append(buf, e.lz...)
		}
	}
	buf = append(buf, tag)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

// shouldCompress gates the LZ4 attempt: never under ModeDelta, always under
// ModeLZ4, and under ModeAuto only when a cheap byte-entropy probe suggests
// the payload is compressible at all.
func (e *Encoder) shouldCompress(payload []byte) bool {
	switch e.mode {
	case ModeDelta:
		return false
	case ModeLZ4:
		return len(payload) >= lzMinInput
	}
	if len(payload) < lzMinInput {
		return false
	}
	return e.entropyBitsPerByte(payload) < 7.2
}

// entropyBitsPerByte estimates the Shannon entropy of payload from a sample of
// at most 4096 bytes.
func (e *Encoder) entropyBitsPerByte(p []byte) float64 {
	clear(e.hist[:])
	stride := len(p)/4096 + 1
	n := 0
	for i := 0; i < len(p); i += stride {
		e.hist[p[i]]++
		n++
	}
	h := 0.0
	for _, c := range e.hist {
		if c == 0 {
			continue
		}
		f := float64(c) / float64(n)
		h -= f * math.Log2(f)
	}
	return h
}

// scaleColumn finds the smallest decimal scale k such that every value of
// column d is exactly round(v*10^k)/10^k, filling e.scaled with the scaled
// integers. It reports false when no k <= maxScale represents the column
// exactly (the raw fallback). Negative zero is rejected so decoded bits always
// equal encoded bits.
func (e *Encoder) scaleColumn(keys []float64, d, dims, n int) (int, bool) {
	if cap(e.scaled) < n {
		e.scaled = make([]int64, 0, n)
	}
	for k := 0; k <= maxScale; k++ {
		p := pow10[k]
		scaled := e.scaled[:0]
		ok := true
		for i := 0; i < n; i++ {
			v := keys[i*dims+d]
			if v == 0 && math.Signbit(v) {
				return 0, false
			}
			m := math.Round(v * p)
			if !(m >= -maxExact && m <= maxExact) { // also rejects NaN
				ok = false
				break
			}
			mi := int64(m)
			if float64(mi)/p != v {
				ok = false
				break
			}
			scaled = append(scaled, mi)
		}
		if ok {
			e.scaled = scaled
			return k, true
		}
	}
	return 0, false
}

// varintCosts returns the encoded sizes of vals as plain zigzag varints and as
// first-value + zigzag-delta varints.
func varintCosts(vals []int64) (plain, delta int) {
	prev := int64(0)
	for i, m := range vals {
		plain += uvarintLen(zigzag(m))
		if i == 0 {
			delta += uvarintLen(zigzag(m))
		} else {
			delta += uvarintLen(zigzag(m - prev))
		}
		prev = m
	}
	return plain, delta
}

// appendDeltas appends vals as first-value + zigzag-delta varints.
func appendDeltas(dst []byte, vals []int64) []byte {
	prev := int64(0)
	for i, m := range vals {
		if i == 0 {
			dst = binary.AppendUvarint(dst, zigzag(m))
		} else {
			dst = binary.AppendUvarint(dst, zigzag(m-prev))
		}
		prev = m
	}
	return dst
}

// Decoder decodes chunks. It is not safe for concurrent use. Columns are read
// strictly in order: Begin, then dims calls to KeyColumn, then IDs.
type Decoder struct {
	raw     []byte
	pos     int
	n, dims int
	cols    int // columns consumed so far
	lz      []byte
}

// Begin parses the chunk header and returns the tuple count and
// dimensionality.
func (d *Decoder) Begin(raw []byte) (n, dims int, err error) {
	d.raw = raw
	d.pos = 0
	d.cols = 0
	d.n, d.dims = 0, 0
	if len(raw) < 1 {
		return 0, 0, errTruncated
	}
	if raw[0] != chunkVersion {
		return 0, 0, fmt.Errorf("wire: unsupported chunk version %d", raw[0])
	}
	d.pos = 1
	un, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	ud, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if un > math.MaxInt32 || ud == 0 || ud > 4096 {
		return 0, 0, errCorrupt
	}
	d.n, d.dims = int(un), int(ud)
	return d.n, d.dims, nil
}

func (d *Decoder) uvarint() (uint64, error) {
	v, w := binary.Uvarint(d.raw[d.pos:])
	if w <= 0 {
		return 0, errTruncated
	}
	d.pos += w
	return v, nil
}

// nextColumn unwraps the next column's framing (and LZ4 block, if any),
// returning the decompressed payload and the base encoding tag.
func (d *Decoder) nextColumn() (tag byte, payload []byte, err error) {
	if d.pos >= len(d.raw) {
		return 0, nil, errTruncated
	}
	tag = d.raw[d.pos]
	d.pos++
	plen, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if plen > uint64(len(d.raw)-d.pos) {
		return 0, nil, errTruncated
	}
	payload = d.raw[d.pos : d.pos+int(plen)]
	d.pos += int(plen)
	if tag&flagLZ4 == 0 {
		return tag, payload, nil
	}
	rawLen, w := binary.Uvarint(payload)
	if w <= 0 || rawLen > uint64(d.n+1)*8+16 {
		return 0, nil, errCorrupt
	}
	if cap(d.lz) < int(rawLen) {
		d.lz = make([]byte, 0, int(rawLen))
	}
	out, err := lz4Decompress(payload[w:], d.lz[:0], int(rawLen))
	if err != nil {
		return 0, nil, err
	}
	if len(out) != int(rawLen) {
		return 0, nil, errCorrupt
	}
	d.lz = out
	return tag &^ flagLZ4, out, nil
}

// KeyColumn decodes the next key column into dst (len must be the chunk's
// tuple count) and returns the column's min and max values.
func (d *Decoder) KeyColumn(dst []float64) (min, max float64, err error) {
	if d.cols >= d.dims {
		return 0, 0, errors.New("wire: KeyColumn after all key columns were read")
	}
	if len(dst) != d.n {
		return 0, 0, errColumnSize
	}
	tag, payload, err := d.nextColumn()
	if err != nil {
		return 0, 0, err
	}
	d.cols++
	min, max = math.Inf(1), math.Inf(-1)
	switch tag {
	case tagRaw64:
		if len(payload) != 8*d.n {
			return 0, 0, errColumnSize
		}
		for i := range dst {
			v := math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
			dst[i] = v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	case tagScaled, tagScaledDelta:
		uk, w := binary.Uvarint(payload)
		if w <= 0 || uk > maxScale {
			return 0, 0, errCorrupt
		}
		p := pow10[uk]
		payload = payload[w:]
		prev := int64(0)
		for i := range dst {
			u, w := binary.Uvarint(payload)
			if w <= 0 {
				return 0, 0, errTruncated
			}
			payload = payload[w:]
			m := unzigzag(u)
			if tag == tagScaledDelta && i > 0 {
				m += prev
			}
			prev = m
			v := float64(m) / p
			dst[i] = v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if len(payload) != 0 {
			return 0, 0, errColumnSize
		}
	default:
		return 0, 0, fmt.Errorf("wire: unknown key column tag %d", tag)
	}
	if d.n == 0 {
		return 0, 0, nil
	}
	return min, max, nil
}

// IDs decodes the tuple-ID column into dst (len must be the chunk's tuple
// count). It must be called after every key column has been read.
func (d *Decoder) IDs(dst []int64) error {
	if d.cols != d.dims {
		return fmt.Errorf("wire: IDs called after %d of %d key columns", d.cols, d.dims)
	}
	if len(dst) != d.n {
		return errColumnSize
	}
	tag, payload, err := d.nextColumn()
	if err != nil {
		return err
	}
	d.cols++
	switch tag {
	case tagRaw64:
		if len(payload) != 8*d.n {
			return errColumnSize
		}
		for i := range dst {
			dst[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	case tagInt, tagIntDelta:
		prev := int64(0)
		for i := range dst {
			u, w := binary.Uvarint(payload)
			if w <= 0 {
				return errTruncated
			}
			payload = payload[w:]
			m := unzigzag(u)
			if tag == tagIntDelta && i > 0 {
				m += prev
			}
			prev = m
			dst[i] = m
		}
		if len(payload) != 0 {
			return errColumnSize
		}
	default:
		return fmt.Errorf("wire: unknown id column tag %d", tag)
	}
	return nil
}
