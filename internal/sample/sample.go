// Package sample draws the input and output samples that drive the
// optimization phase (Figure 5 of the paper). Input samples are uniform
// random samples of S and T; the output sample is obtained by joining the two
// input samples and scaling, which plays the role of the join-sampling method
// of Vitorovic et al. used by the paper: it estimates where in the
// join-attribute space output is produced and how much.
package sample

import (
	"fmt"
	"math/rand"

	"bandjoin/internal/data"
	"bandjoin/internal/localjoin"
)

// Sample holds the statistics available to a partitioning optimizer. It never
// references the full inputs, mirroring the paper's setting where the
// optimizer sees only fixed-size samples.
type Sample struct {
	// Band is the band-join condition the samples were drawn for.
	Band data.Band

	// S and T are uniform random samples of the inputs.
	S, T *data.Relation
	// SRate and TRate are the sampling fractions |sample| / |input|.
	SRate, TRate float64
	// TotalS and TotalT are the full input cardinalities.
	TotalS, TotalT int

	// OutS and OutT are paired: (OutS.Key(i), OutT.Key(i)) is the i-th output
	// sample pair. OutWeight is the number of real output pairs each sample
	// pair represents, so OutWeight * OutS.Len() estimates |S ⋈B T|.
	OutS, OutT *data.Relation
	OutWeight  float64
}

// Options configures sampling.
type Options struct {
	// InputSampleSize is the total number of input sample tuples (split
	// between S and T proportionally to their sizes). The paper uses 100,000.
	InputSampleSize int
	// OutputSampleSize caps the number of output sample pairs retained.
	OutputSampleSize int
	// Seed makes sampling deterministic.
	Seed int64
}

// DefaultOptions returns the sampling configuration used by the experiments:
// 100,000 input samples are impractical for the scaled-down inputs here, so
// the defaults adapt to roughly 5% of the input, bounded to [2,000, 20,000].
func DefaultOptions() Options {
	return Options{InputSampleSize: 8000, OutputSampleSize: 4000, Seed: 1}
}

// InputSample is the band-independent half of the optimization-phase sample:
// uniform random samples of S and T plus the sampling rates. Drawing it is the
// only part of the optimization phase that reads the full inputs, so an engine
// serving many queries over the same registered datasets draws it once and
// derives the band-dependent output sample (ForBand) per distinct band.
type InputSample struct {
	// S and T are uniform random samples of the inputs.
	S, T *data.Relation
	// SRate and TRate are the sampling fractions |sample| / |input|.
	SRate, TRate float64
	// TotalS and TotalT are the full input cardinalities.
	TotalS, TotalT int
	// Opts is the configuration the samples were drawn with; ForBand uses its
	// OutputSampleSize bound and derives its deterministic subsample RNG from
	// its Seed.
	Opts Options
}

// DrawInputs draws the band-independent input samples. It is the stage of Draw
// that scans the full inputs; the result can be reused across band conditions
// via ForBand.
func DrawInputs(s, t *data.Relation, opts Options) (*InputSample, error) {
	if s.Dims() != t.Dims() {
		return nil, fmt.Errorf("sample: inputs have %d and %d dimensions", s.Dims(), t.Dims())
	}
	if opts.InputSampleSize <= 0 {
		opts.InputSampleSize = DefaultOptions().InputSampleSize
	}
	if opts.OutputSampleSize <= 0 {
		opts.OutputSampleSize = DefaultOptions().OutputSampleSize
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	total := s.Len() + t.Len()
	if total == 0 {
		return nil, fmt.Errorf("sample: both inputs are empty")
	}
	kS := opts.InputSampleSize * s.Len() / total
	kT := opts.InputSampleSize - kS
	// Proportional integer splitting can starve a heavily outnumbered input
	// (kS == 0 when |S| ≪ |T| and vice versa). A zero-tuple sample collapses
	// the sampling rate to 0, so ScaleS/ScaleT return 0 and every
	// partitioner's load estimates degenerate. Guarantee at least one sample
	// tuple per non-empty input.
	if kS == 0 && s.Len() > 0 {
		kS = 1
		if kT > 1 {
			kT--
		}
	}
	if kT == 0 && t.Len() > 0 {
		kT = 1
		if kS > 1 {
			kS--
		}
	}
	sSample := Uniform(s, kS, rng)
	tSample := Uniform(t, kT, rng)

	return &InputSample{
		S:      sSample,
		T:      tSample,
		SRate:  rate(sSample.Len(), s.Len()),
		TRate:  rate(tSample.Len(), t.Len()),
		TotalS: s.Len(),
		TotalT: t.Len(),
		Opts:   opts,
	}, nil
}

// ForBand derives the full optimizer-facing Sample for one band condition by
// joining the cached input samples. It never touches the full inputs, so
// replanning the same dataset pair for a new ε costs a sample-sized join, not
// an input scan. The output subsample's RNG is derived deterministically from
// the draw seed (not from shared RNG state), so repeated calls with the same
// band produce bit-identical samples — the property the engine's plan-cache
// equivalence guarantees rest on.
func (is *InputSample) ForBand(band data.Band) (*Sample, error) {
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if is.S.Dims() != band.Dims() {
		return nil, fmt.Errorf("sample: band condition has %d dimensions but samples have %d",
			band.Dims(), is.S.Dims())
	}
	out := &Sample{
		Band:   band,
		S:      is.S,
		T:      is.T,
		SRate:  is.SRate,
		TRate:  is.TRate,
		TotalS: is.TotalS,
		TotalT: is.TotalT,
	}
	// The golden-ratio offset decorrelates this stream from the input-sampling
	// stream seeded with Opts.Seed itself.
	rng := rand.New(rand.NewSource(is.Opts.Seed + 0x9e3779b9))
	out.sampleOutput(is.Opts.OutputSampleSize, rng)
	return out, nil
}

// Draw samples the inputs and the output for the given band condition. It is
// DrawInputs followed by ForBand; callers that serve several bands over the
// same inputs should hold on to the InputSample instead.
func Draw(s, t *data.Relation, band data.Band, opts Options) (*Sample, error) {
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if s.Dims() != band.Dims() || t.Dims() != band.Dims() {
		return nil, fmt.Errorf("sample: band condition has %d dimensions but inputs have %d and %d",
			band.Dims(), s.Dims(), t.Dims())
	}
	in, err := DrawInputs(s, t, opts)
	if err != nil {
		return nil, err
	}
	return in.ForBand(band)
}

func rate(k, n int) float64 {
	if n == 0 {
		return 1
	}
	return float64(k) / float64(n)
}

// Uniform returns a uniform random sample of k tuples from r (without
// replacement when k <= r.Len(), otherwise the full relation).
func Uniform(r *data.Relation, k int, rng *rand.Rand) *data.Relation {
	n := r.Len()
	if k >= n {
		return r.Clone(r.Name() + "-sample")
	}
	out := data.NewRelationCapacity(r.Name()+"-sample", r.Dims(), k)
	// Reservoir sampling keeps memory proportional to k and makes a single
	// pass over the input, which matches how a map task would sample chunks.
	reservoir := make([]int, k)
	for i := 0; i < n; i++ {
		if i < k {
			reservoir[i] = i
			continue
		}
		j := rng.Intn(i + 1)
		if j < k {
			reservoir[j] = i
		}
	}
	for _, i := range reservoir {
		out.AppendKey(r.Key(i))
	}
	return out
}

// sampleOutput joins the two input samples and keeps at most maxPairs pairs,
// recording the scale factor that converts sample-pair counts to estimated
// real output counts.
func (s *Sample) sampleOutput(maxPairs int, rng *rand.Rand) {
	d := s.Band.Dims()
	outS := data.NewRelation("outS", d)
	outT := data.NewRelation("outT", d)
	var pairs int64
	alg := localjoin.SortProbe{}
	// First pass counts; second pass subsamples if needed. For typical sample
	// sizes the pair count is modest, so collect and subsample in memory.
	type pair struct{ si, ti int }
	collected := make([]pair, 0, maxPairs)
	pairs = alg.Join(s.S, s.T, s.Band, func(si, ti int, _, _ []float64) {
		collected = append(collected, pair{si, ti})
	})
	kept := collected
	if len(collected) > maxPairs {
		rng.Shuffle(len(collected), func(i, j int) { collected[i], collected[j] = collected[j], collected[i] })
		kept = collected[:maxPairs]
	}
	for _, p := range kept {
		outS.AppendKey(s.S.Key(p.si))
		outT.AppendKey(s.T.Key(p.ti))
	}
	s.OutS, s.OutT = outS, outT
	// Each sample pair came from the cross product of the samples, which is a
	// (SRate * TRate) fraction of the full cross product.
	pairWeight := 1.0
	if s.SRate > 0 && s.TRate > 0 {
		pairWeight = 1 / (s.SRate * s.TRate)
	}
	if len(kept) > 0 && len(collected) > len(kept) {
		pairWeight *= float64(pairs) / float64(len(kept))
	}
	s.OutWeight = pairWeight
}

// EstimatedOutput returns the estimated size of the full join output.
func (s *Sample) EstimatedOutput() float64 {
	return float64(s.OutS.Len()) * s.OutWeight
}

// ScaleS converts a count of S-sample tuples into an estimate of real S
// tuples.
func (s *Sample) ScaleS(count int) float64 {
	if s.SRate == 0 {
		return 0
	}
	return float64(count) / s.SRate
}

// ScaleT converts a count of T-sample tuples into an estimate of real T
// tuples.
func (s *Sample) ScaleT(count int) float64 {
	if s.TRate == 0 {
		return 0
	}
	return float64(count) / s.TRate
}

// ScaleOut converts a count of output-sample pairs into an estimate of real
// output pairs.
func (s *Sample) ScaleOut(count int) float64 {
	return float64(count) * s.OutWeight
}
