// Package sample draws the input and output samples that drive the
// optimization phase (Figure 5 of the paper). Input samples are uniform
// random samples of S and T; the output sample is obtained by joining the two
// input samples and scaling, which plays the role of the join-sampling method
// of Vitorovic et al. used by the paper: it estimates where in the
// join-attribute space output is produced and how much.
package sample

import (
	"fmt"
	"math/rand"

	"bandjoin/internal/data"
	"bandjoin/internal/localjoin"
)

// Sample holds the statistics available to a partitioning optimizer. It never
// references the full inputs, mirroring the paper's setting where the
// optimizer sees only fixed-size samples.
type Sample struct {
	// Band is the band-join condition the samples were drawn for.
	Band data.Band

	// S and T are uniform random samples of the inputs.
	S, T *data.Relation
	// SRate and TRate are the sampling fractions |sample| / |input|.
	SRate, TRate float64
	// TotalS and TotalT are the full input cardinalities.
	TotalS, TotalT int

	// OutS and OutT are paired: (OutS.Key(i), OutT.Key(i)) is the i-th output
	// sample pair. OutWeight is the number of real output pairs each sample
	// pair represents, so OutWeight * OutS.Len() estimates |S ⋈B T|.
	OutS, OutT *data.Relation
	OutWeight  float64
}

// Options configures sampling.
type Options struct {
	// InputSampleSize is the total number of input sample tuples (split
	// between S and T proportionally to their sizes). The paper uses 100,000.
	InputSampleSize int
	// OutputSampleSize caps the number of output sample pairs retained.
	OutputSampleSize int
	// Seed makes sampling deterministic.
	Seed int64
}

// DefaultOptions returns the sampling configuration used by the experiments.
// The paper samples 100,000 input tuples; with the allocation-free parallel
// planner the optimization phase stays far below the join cost even at 32,000
// input samples (see BENCH_optimizer.json), so the default cashes in that
// headroom — larger samples mean tighter load estimates and better plans on
// skewed inputs. Inputs smaller than the sample size are used whole.
func DefaultOptions() Options {
	return Options{InputSampleSize: 32000, OutputSampleSize: 4000, Seed: 1}
}

// InputSample is the band-independent half of the optimization-phase sample:
// uniform random samples of S and T plus the sampling rates. Drawing it is the
// only part of the optimization phase that reads the full inputs, so an engine
// serving many queries over the same registered datasets draws it once and
// derives the band-dependent output sample (ForBand) per distinct band.
type InputSample struct {
	// S and T are uniform random samples of the inputs.
	S, T *data.Relation
	// SRate and TRate are the sampling fractions |sample| / |input|.
	SRate, TRate float64
	// TotalS and TotalT are the full input cardinalities.
	TotalS, TotalT int
	// Opts is the configuration the samples were drawn with; ForBand uses its
	// OutputSampleSize bound and derives its deterministic subsample RNG from
	// its Seed.
	Opts Options
}

// DrawInputs draws the band-independent input samples. It is the stage of Draw
// that scans the full inputs; the result can be reused across band conditions
// via ForBand.
func DrawInputs(s, t *data.Relation, opts Options) (*InputSample, error) {
	if s.Dims() != t.Dims() {
		return nil, fmt.Errorf("sample: inputs have %d and %d dimensions", s.Dims(), t.Dims())
	}
	if opts.InputSampleSize <= 0 {
		opts.InputSampleSize = DefaultOptions().InputSampleSize
	}
	if opts.OutputSampleSize <= 0 {
		opts.OutputSampleSize = DefaultOptions().OutputSampleSize
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	total := s.Len() + t.Len()
	if total == 0 {
		return nil, fmt.Errorf("sample: both inputs are empty")
	}
	kS := opts.InputSampleSize * s.Len() / total
	kT := opts.InputSampleSize - kS
	// Proportional integer splitting can starve a heavily outnumbered input
	// (kS == 0 when |S| ≪ |T| and vice versa). A zero-tuple sample collapses
	// the sampling rate to 0, so ScaleS/ScaleT return 0 and every
	// partitioner's load estimates degenerate. Guarantee at least one sample
	// tuple per non-empty input.
	if kS == 0 && s.Len() > 0 {
		kS = 1
		if kT > 1 {
			kT--
		}
	}
	if kT == 0 && t.Len() > 0 {
		kT = 1
		if kS > 1 {
			kS--
		}
	}
	sSample := Uniform(s, kS, rng)
	tSample := Uniform(t, kT, rng)

	return &InputSample{
		S:      sSample,
		T:      tSample,
		SRate:  rate(sSample.Len(), s.Len()),
		TRate:  rate(tSample.Len(), t.Len()),
		TotalS: s.Len(),
		TotalT: t.Len(),
		Opts:   opts,
	}, nil
}

// ForBand derives the full optimizer-facing Sample for one band condition by
// joining the cached input samples. It never touches the full inputs, so
// replanning the same dataset pair for a new ε costs a sample-sized join, not
// an input scan. The output subsample's RNG is derived deterministically from
// the draw seed (not from shared RNG state), so repeated calls with the same
// band produce bit-identical samples — the property the engine's plan-cache
// equivalence guarantees rest on.
func (is *InputSample) ForBand(band data.Band) (*Sample, error) {
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if is.S.Dims() != band.Dims() {
		return nil, fmt.Errorf("sample: band condition has %d dimensions but samples have %d",
			band.Dims(), is.S.Dims())
	}
	out := &Sample{
		Band:   band,
		S:      is.S,
		T:      is.T,
		SRate:  is.SRate,
		TRate:  is.TRate,
		TotalS: is.TotalS,
		TotalT: is.TotalT,
	}
	// The golden-ratio offset decorrelates this stream from the input-sampling
	// stream seeded with Opts.Seed itself.
	rng := rand.New(rand.NewSource(is.Opts.Seed + 0x9e3779b9))
	out.sampleOutput(is.Opts.OutputSampleSize, rng)
	return out, nil
}

// Merge returns a new InputSample covering the inputs after deltaS rows were
// appended to S and deltaT rows to T (either delta may be nil or empty). The
// receiver is never mutated — callers swap in the returned snapshot — and the
// full base relations are never rescanned: each side's sample is advanced by
// continuing the reservoir over just the delta rows.
//
// The math: a size-k reservoir over a stream of n items holds a uniform
// k-subset of the n. Continuing the same algorithm over d more items — item
// n+i replaces a uniformly chosen slot with probability k/(n+i+1) — yields a
// uniform k-subset of all n+d items. The continuation RNG is derived
// deterministically from (Opts.Seed, covered cardinalities), so merging the
// same delta onto the same sample always produces the same result, but each
// successive merge draws from a fresh stream. A side whose sample still holds
// the whole base (|sample| == |input|) first grows toward its proportional
// share of InputSampleSize before replacement starts, exactly as a reservoir
// filling from the extended stream would.
func (is *InputSample) Merge(deltaS, deltaT *data.Relation) (*InputSample, error) {
	dS, dT := 0, 0
	if deltaS != nil {
		if deltaS.Dims() != is.S.Dims() {
			return nil, fmt.Errorf("sample: S delta has %d dimensions, sample has %d", deltaS.Dims(), is.S.Dims())
		}
		dS = deltaS.Len()
	}
	if deltaT != nil {
		if deltaT.Dims() != is.T.Dims() {
			return nil, fmt.Errorf("sample: T delta has %d dimensions, sample has %d", deltaT.Dims(), is.T.Dims())
		}
		dT = deltaT.Len()
	}
	if dS == 0 && dT == 0 {
		return is, nil
	}
	size := is.Opts.InputSampleSize
	if size <= 0 {
		size = DefaultOptions().InputSampleSize
	}
	newTotalS, newTotalT := is.TotalS+dS, is.TotalT+dT
	// Per-side growth caps, proportional to the new cardinalities like
	// DrawInputs' split (with the same ≥1-per-non-empty-side guarantee). Only
	// sides still holding their whole base grow; a side already down-sampled
	// keeps its reservoir size and only replaces.
	targetS := size * newTotalS / (newTotalS + newTotalT)
	targetT := size - targetS
	if targetS == 0 && newTotalS > 0 {
		targetS = 1
	}
	if targetT == 0 && newTotalT > 0 {
		targetT = 1
	}
	rng := rand.New(rand.NewSource(mergeSeed(is.Opts.Seed, is.TotalS, is.TotalT)))
	out := &InputSample{
		S:      mergeSide(is.S, is.TotalS, deltaS, targetS, rng),
		T:      mergeSide(is.T, is.TotalT, deltaT, targetT, rng),
		TotalS: newTotalS,
		TotalT: newTotalT,
		Opts:   is.Opts,
	}
	out.SRate = rate(out.S.Len(), newTotalS)
	out.TRate = rate(out.T.Len(), newTotalT)
	return out, nil
}

// mergeSide continues one side's reservoir over the delta rows. cur is the
// current sample of total base rows; it is cloned, never mutated.
func mergeSide(cur *data.Relation, total int, delta *data.Relation, target int, rng *rand.Rand) *data.Relation {
	if delta == nil || delta.Len() == 0 {
		return cur
	}
	k := cur.Len()
	out := cur.Clone(cur.Name())
	if k == total {
		// The sample is the whole base: the reservoir never filled, so the
		// extended stream first fills it to target (delta rows append whole),
		// then replacement takes over.
		if grow := target - k; grow > 0 {
			out.Reserve(min(grow, delta.Len()))
		}
		for di := 0; di < delta.Len(); di++ {
			if out.Len() < target {
				out.AppendKey(delta.Key(di))
				continue
			}
			if j := rng.Intn(total + di + 1); j < target {
				out.SetKey(j, delta.Key(di))
			}
		}
		return out
	}
	// A proper size-k reservoir of the base: continue algorithm R over the
	// delta items at stream positions total, total+1, ….
	for di := 0; di < delta.Len(); di++ {
		if j := rng.Intn(total + di + 1); j < k {
			out.SetKey(j, delta.Key(di))
		}
	}
	return out
}

// mergeSeed derives the deterministic continuation seed for a merge that has
// covered the given base cardinalities (splitmix-style finalizer, so nearby
// coverage points decorrelate).
func mergeSeed(seed int64, coveredS, coveredT int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(coveredS+1) + 0xbf58476d1ce4e5b9*uint64(coveredT+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int64(z)
}

// Draw samples the inputs and the output for the given band condition. It is
// DrawInputs followed by ForBand; callers that serve several bands over the
// same inputs should hold on to the InputSample instead.
func Draw(s, t *data.Relation, band data.Band, opts Options) (*Sample, error) {
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if s.Dims() != band.Dims() || t.Dims() != band.Dims() {
		return nil, fmt.Errorf("sample: band condition has %d dimensions but inputs have %d and %d",
			band.Dims(), s.Dims(), t.Dims())
	}
	in, err := DrawInputs(s, t, opts)
	if err != nil {
		return nil, err
	}
	return in.ForBand(band)
}

func rate(k, n int) float64 {
	if n == 0 {
		return 1
	}
	return float64(k) / float64(n)
}

// Uniform returns a uniform random sample of k tuples from r (without
// replacement when k <= r.Len(), otherwise the full relation).
func Uniform(r *data.Relation, k int, rng *rand.Rand) *data.Relation {
	n := r.Len()
	if k >= n {
		return r.Clone(r.Name() + "-sample")
	}
	out := data.NewRelationCapacity(r.Name()+"-sample", r.Dims(), k)
	// Reservoir sampling keeps memory proportional to k and makes a single
	// pass over the input, which matches how a map task would sample chunks.
	reservoir := make([]int, k)
	for i := 0; i < n; i++ {
		if i < k {
			reservoir[i] = i
			continue
		}
		j := rng.Intn(i + 1)
		if j < k {
			reservoir[j] = i
		}
	}
	for _, i := range reservoir {
		out.AppendKey(r.Key(i))
	}
	return out
}

// sampleOutput joins the two input samples and keeps at most maxPairs pairs,
// recording the scale factor that converts sample-pair counts to estimated
// real output counts.
func (s *Sample) sampleOutput(maxPairs int, rng *rand.Rand) {
	d := s.Band.Dims()
	outS := data.NewRelation("outS", d)
	outT := data.NewRelation("outT", d)
	var pairs int64
	alg := localjoin.SortProbe{}
	// First pass counts; second pass subsamples if needed. For typical sample
	// sizes the pair count is modest, so collect and subsample in memory.
	type pair struct{ si, ti int }
	collected := make([]pair, 0, maxPairs)
	pairs = alg.Join(s.S, s.T, s.Band, func(si, ti int, _, _ []float64) {
		collected = append(collected, pair{si, ti})
	})
	kept := collected
	if len(collected) > maxPairs {
		rng.Shuffle(len(collected), func(i, j int) { collected[i], collected[j] = collected[j], collected[i] })
		kept = collected[:maxPairs]
	}
	for _, p := range kept {
		outS.AppendKey(s.S.Key(p.si))
		outT.AppendKey(s.T.Key(p.ti))
	}
	s.OutS, s.OutT = outS, outT
	// Each sample pair came from the cross product of the samples, which is a
	// (SRate * TRate) fraction of the full cross product.
	pairWeight := 1.0
	if s.SRate > 0 && s.TRate > 0 {
		pairWeight = 1 / (s.SRate * s.TRate)
	}
	if len(kept) > 0 && len(collected) > len(kept) {
		pairWeight *= float64(pairs) / float64(len(kept))
	}
	s.OutWeight = pairWeight
}

// EstimatedOutput returns the estimated size of the full join output.
func (s *Sample) EstimatedOutput() float64 {
	return float64(s.OutS.Len()) * s.OutWeight
}

// ScaleS converts a count of S-sample tuples into an estimate of real S
// tuples.
func (s *Sample) ScaleS(count int) float64 {
	if s.SRate == 0 {
		return 0
	}
	return float64(count) / s.SRate
}

// ScaleT converts a count of T-sample tuples into an estimate of real T
// tuples.
func (s *Sample) ScaleT(count int) float64 {
	if s.TRate == 0 {
		return 0
	}
	return float64(count) / s.TRate
}

// ScaleOut converts a count of output-sample pairs into an estimate of real
// output pairs.
func (s *Sample) ScaleOut(count int) float64 {
	return float64(count) * s.OutWeight
}
