package sample

import (
	"testing"

	"bandjoin/internal/data"
)

// seqRelation returns an n-tuple 1D relation with keys lo, lo+1, ….
func seqRelation(name string, lo, n int) *data.Relation {
	r := data.NewRelationCapacity(name, 1, n)
	for i := 0; i < n; i++ {
		r.Append(float64(lo + i))
	}
	return r
}

func sameRelation(a, b *data.Relation) bool {
	if a.Len() != b.Len() || a.Dims() != b.Dims() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		for d := 0; d < a.Dims(); d++ {
			if a.KeyAt(i, d) != b.KeyAt(i, d) {
				return false
			}
		}
	}
	return true
}

func TestMergeValidation(t *testing.T) {
	s := seqRelation("s", 0, 5000)
	tt := seqRelation("t", 0, 5000)
	in, err := DrawInputs(s, tt, Options{InputSampleSize: 400, Seed: 3})
	if err != nil {
		t.Fatalf("DrawInputs: %v", err)
	}
	bad := data.NewRelation("d", 2)
	bad.Append(1, 2)
	if _, err := in.Merge(bad, nil); err == nil {
		t.Error("S delta of wrong dimensionality accepted")
	}
	if _, err := in.Merge(nil, bad); err == nil {
		t.Error("T delta of wrong dimensionality accepted")
	}
	// Empty merge returns the receiver unchanged (same snapshot is fine).
	out, err := in.Merge(nil, data.NewRelation("d", 1))
	if err != nil {
		t.Fatalf("empty Merge: %v", err)
	}
	if out != in {
		t.Error("empty merge did not return the receiver")
	}
}

// TestMergeDeterministic: merging the same delta onto the same sample is
// bit-identical — the engine's plan-cache equivalence rests on this — while
// successive merges draw from fresh streams.
func TestMergeDeterministic(t *testing.T) {
	s := seqRelation("s", 0, 20000)
	tt := seqRelation("t", 0, 20000)
	opts := Options{InputSampleSize: 1000, Seed: 7}
	in, err := DrawInputs(s, tt, opts)
	if err != nil {
		t.Fatalf("DrawInputs: %v", err)
	}
	dS := seqRelation("ds", 20000, 3000)
	dT := seqRelation("dt", 20000, 1000)

	a, err := in.Merge(dS, dT)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	b, err := in.Merge(dS, dT)
	if err != nil {
		t.Fatalf("repeat Merge: %v", err)
	}
	if !sameRelation(a.S, b.S) || !sameRelation(a.T, b.T) {
		t.Error("repeated merge of the same delta is not bit-identical")
	}
	if a.TotalS != 23000 || a.TotalT != 21000 {
		t.Errorf("merged totals (%d, %d), want (23000, 21000)", a.TotalS, a.TotalT)
	}
	if a.S.Len() != in.S.Len() || a.T.Len() != in.T.Len() {
		t.Errorf("merged sample sizes (%d, %d) differ from base (%d, %d); down-sampled sides must keep their reservoir size",
			a.S.Len(), a.T.Len(), in.S.Len(), in.T.Len())
	}
	// The receiver is never mutated.
	if in.TotalS != 20000 || in.TotalT != 20000 {
		t.Errorf("receiver totals mutated to (%d, %d)", in.TotalS, in.TotalT)
	}
}

// TestMergeIsStatisticallyFresh: after appending a delta that is a known
// fraction of the stream, the merged reservoir must hold roughly that fraction
// of delta rows — the uniformity property that keeps cached samples usable for
// planning without rescanning the base.
func TestMergeIsStatisticallyFresh(t *testing.T) {
	const baseN, deltaN = 40000, 20000 // delta is 1/3 of the final stream
	s := seqRelation("s", 0, baseN)
	tt := seqRelation("t", 0, baseN)
	in, err := DrawInputs(s, tt, Options{InputSampleSize: 4000, Seed: 11})
	if err != nil {
		t.Fatalf("DrawInputs: %v", err)
	}
	out, err := in.Merge(seqRelation("ds", baseN, deltaN), seqRelation("dt", baseN, deltaN))
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	for _, side := range []struct {
		name string
		rel  *data.Relation
	}{{"S", out.S}, {"T", out.T}} {
		fromDelta := 0
		for i := 0; i < side.rel.Len(); i++ {
			if side.rel.KeyAt(i, 0) >= baseN {
				fromDelta++
			}
		}
		frac := float64(fromDelta) / float64(side.rel.Len())
		if frac < 0.25 || frac > 0.42 {
			t.Errorf("%s: delta fraction in merged sample = %.3f, want ≈ 1/3", side.name, frac)
		}
	}
	if got, want := out.SRate, float64(out.S.Len())/float64(baseN+deltaN); got != want {
		t.Errorf("SRate = %g, want %g", got, want)
	}
}

// TestMergeFillsUnfilledReservoir: a side whose sample still holds the whole
// base (the reservoir never filled) grows toward its proportional share of
// InputSampleSize before replacement starts, exactly like a reservoir filling
// from the extended stream.
func TestMergeFillsUnfilledReservoir(t *testing.T) {
	s := seqRelation("s", 0, 50)
	tt := seqRelation("t", 0, 50)
	in, err := DrawInputs(s, tt, Options{InputSampleSize: 400, Seed: 5})
	if err != nil {
		t.Fatalf("DrawInputs: %v", err)
	}
	if in.S.Len() != 50 || in.T.Len() != 50 {
		t.Fatalf("tiny inputs not fully sampled: (%d, %d)", in.S.Len(), in.T.Len())
	}
	out, err := in.Merge(seqRelation("ds", 50, 300), nil)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// New totals: S=350, T=50 → S's proportional target is 400*350/400 = 350,
	// capped by availability; the whole stream fits, so the sample holds it all.
	if out.S.Len() != 350 {
		t.Errorf("unfilled S reservoir grew to %d, want 350 (whole stream fits its target)", out.S.Len())
	}
	if out.T.Len() != 50 {
		t.Errorf("T sample resized to %d without a T delta", out.T.Len())
	}
	if out.SRate != 1 {
		t.Errorf("SRate = %g, want 1 when the sample holds the whole input", out.SRate)
	}
}

// TestMergeMatchesDrawDistributionForPlanning: planning from a merged sample
// must behave like planning from a fresh draw of the extended inputs — not
// bit-identically (different RNG streams), but with equivalent coverage: the
// merged sample's value range spans the delta's range, which a stale sample
// would miss entirely.
func TestMergeCoversDeltaRange(t *testing.T) {
	s := seqRelation("s", 0, 30000)
	tt := seqRelation("t", 0, 30000)
	in, err := DrawInputs(s, tt, Options{InputSampleSize: 2000, Seed: 17})
	if err != nil {
		t.Fatalf("DrawInputs: %v", err)
	}
	// Delta occupies a disjoint, far-away value range.
	out, err := in.Merge(seqRelation("ds", 1_000_000, 15000), seqRelation("dt", 1_000_000, 15000))
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	_, maxS, err := out.S.MinMax()
	if err != nil {
		t.Fatalf("MinMax: %v", err)
	}
	if maxS[0] < 1_000_000 {
		t.Errorf("merged S sample max = %g; the appended range is invisible to the planner", maxS[0])
	}
}
