package sample

import (
	"math"
	"math/rand"
	"testing"

	"bandjoin/internal/data"
	"bandjoin/internal/localjoin"
)

func TestUniformSampleSizeAndMembership(t *testing.T) {
	r := data.NewRelation("r", 1)
	for i := 0; i < 1000; i++ {
		r.Append(float64(i))
	}
	rng := rand.New(rand.NewSource(1))
	s := Uniform(r, 100, rng)
	if s.Len() != 100 {
		t.Fatalf("sample size = %d, want 100", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		v := s.Key(i)[0]
		if v < 0 || v >= 1000 || v != math.Trunc(v) {
			t.Fatalf("sample value %g is not an input value", v)
		}
	}
	// Requesting more than the population returns the whole relation.
	all := Uniform(r, 5000, rng)
	if all.Len() != 1000 {
		t.Errorf("oversized sample = %d, want 1000", all.Len())
	}
}

func TestUniformSampleIsRoughlyUnbiased(t *testing.T) {
	r := data.NewRelation("r", 1)
	for i := 0; i < 10000; i++ {
		r.Append(float64(i))
	}
	s := Uniform(r, 2000, rand.New(rand.NewSource(2)))
	below := 0
	for i := 0; i < s.Len(); i++ {
		if s.Key(i)[0] < 5000 {
			below++
		}
	}
	frac := float64(below) / float64(s.Len())
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("sample fraction below the median = %.2f, want ≈ 0.5", frac)
	}
}

func TestDrawValidation(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 500, 1)
	if _, err := Draw(s, tt, data.Symmetric(1), DefaultOptions()); err == nil {
		t.Error("band dimensionality mismatch accepted")
	}
	if _, err := Draw(s, tt, data.Band{Low: []float64{-1, 0}, High: []float64{1, 0}}, DefaultOptions()); err == nil {
		t.Error("invalid band accepted")
	}
	empty := data.NewRelation("e", 2)
	if _, err := Draw(empty, empty.Clone(""), data.Symmetric(1, 1), DefaultOptions()); err == nil {
		t.Error("empty inputs accepted")
	}
}

func TestDrawScalesBackToTotals(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 4000, 3)
	band := data.Symmetric(0.1, 0.1)
	smp, err := Draw(s, tt, band, Options{InputSampleSize: 800, OutputSampleSize: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if smp.TotalS != 4000 || smp.TotalT != 4000 {
		t.Errorf("totals %d/%d", smp.TotalS, smp.TotalT)
	}
	if got := smp.ScaleS(smp.S.Len()); math.Abs(got-4000) > 1 {
		t.Errorf("ScaleS of the whole sample = %g, want 4000", got)
	}
	if got := smp.ScaleT(smp.T.Len()); math.Abs(got-4000) > 1 {
		t.Errorf("ScaleT of the whole sample = %g, want 4000", got)
	}
	if smp.S.Len()+smp.T.Len() > 800 {
		t.Errorf("input sample larger than requested: %d", smp.S.Len()+smp.T.Len())
	}
}

func TestOutputSampleEstimatesJoinSize(t *testing.T) {
	s, tt := data.ParetoPair(1, 1.5, 6000, 5)
	band := data.Symmetric(0.01)
	exact := localjoin.SortProbe{}.Join(s, tt, band, nil)
	if exact == 0 {
		t.Skip("workload produced no output; widen the band")
	}
	smp, err := Draw(s, tt, band, Options{InputSampleSize: 3000, OutputSampleSize: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	est := smp.EstimatedOutput()
	ratio := est / float64(exact)
	if ratio < 0.3 || ratio > 3.0 {
		t.Errorf("output estimate %g is far from the exact size %d (ratio %.2f)", est, exact, ratio)
	}
	if smp.OutS.Len() != smp.OutT.Len() {
		t.Errorf("output sample sides differ: %d vs %d", smp.OutS.Len(), smp.OutT.Len())
	}
	// Every output sample pair must actually satisfy the band condition.
	for i := 0; i < smp.OutS.Len(); i++ {
		if !band.Matches(smp.OutS.Key(i), smp.OutT.Key(i)) {
			t.Fatalf("output sample pair %d does not satisfy the band condition", i)
		}
	}
}

func TestOutputSampleCap(t *testing.T) {
	// A huge band makes the sample join produce many pairs; the cap must hold
	// and the weight must compensate.
	s, tt := data.ParetoPair(1, 1.5, 2000, 7)
	band := data.Symmetric(1000)
	smp, err := Draw(s, tt, band, Options{InputSampleSize: 600, OutputSampleSize: 200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if smp.OutS.Len() > 200 {
		t.Errorf("output sample %d exceeds the cap", smp.OutS.Len())
	}
	est := smp.EstimatedOutput()
	exactOrder := float64(2000) * float64(2000) // nearly a Cartesian product
	if est < exactOrder/10 || est > exactOrder*10 {
		t.Errorf("capped output estimate %g is off by more than 10x from ≈%g", est, exactOrder)
	}
}

func TestScaleHelpers(t *testing.T) {
	smp := &Sample{SRate: 0.1, TRate: 0.5, OutWeight: 7}
	if smp.ScaleS(10) != 100 || smp.ScaleT(10) != 20 || smp.ScaleOut(3) != 21 {
		t.Error("scaling helpers wrong")
	}
	zero := &Sample{}
	if zero.ScaleS(5) != 0 || zero.ScaleT(5) != 0 {
		t.Error("zero-rate scaling should be 0")
	}
}

func TestDefaultOptionsApplied(t *testing.T) {
	s, tt := data.ParetoPair(1, 1.0, 300, 9)
	smp, err := Draw(s, tt, data.Symmetric(0.5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if smp.S.Len() == 0 || smp.T.Len() == 0 {
		t.Error("defaulted options produced an empty sample")
	}
}

// TestDrawGuaranteesSamplesForOutnumberedInput is the regression test for the
// degenerate-sampling bug: with |S| = 10 against |T| = 1,000,000 the
// proportional split rounds S's share to zero samples, which collapsed SRate
// to 0 and with it every ScaleS-based load estimate. Both inputs must now get
// at least one sample tuple.
func TestDrawGuaranteesSamplesForOutnumberedInput(t *testing.T) {
	small := data.NewRelation("small", 1)
	for i := 0; i < 10; i++ {
		small.Append(float64(i) / 10)
	}
	big := data.NewRelationCapacity("big", 1, 1_000_000)
	for i := 0; i < 1_000_000; i++ {
		big.Append(float64(i%1000) / 1000)
	}
	band := data.Symmetric(0.05)

	for _, tc := range []struct {
		name string
		s, t *data.Relation
	}{
		{"small-S", small, big},
		{"small-T", big, small},
	} {
		t.Run(tc.name, func(t *testing.T) {
			smp, err := Draw(tc.s, tc.t, band, DefaultOptions())
			if err != nil {
				t.Fatalf("Draw: %v", err)
			}
			if smp.S.Len() < 1 || smp.T.Len() < 1 {
				t.Fatalf("sample sizes (%d, %d): every non-empty input must contribute at least one sample",
					smp.S.Len(), smp.T.Len())
			}
			if smp.SRate <= 0 || smp.TRate <= 0 {
				t.Fatalf("sampling rates (%g, %g) must be positive", smp.SRate, smp.TRate)
			}
			if smp.ScaleS(smp.S.Len()) <= 0 || smp.ScaleT(smp.T.Len()) <= 0 {
				t.Fatalf("scale estimates degenerate: ScaleS=%g ScaleT=%g",
					smp.ScaleS(smp.S.Len()), smp.ScaleT(smp.T.Len()))
			}
		})
	}
}

// TestDrawMatchesStagedDraw: Draw must be exactly DrawInputs followed by
// ForBand, and ForBand must be repeatable — the cached-sample path an engine
// takes has to produce bit-identical samples to the one-shot path.
func TestDrawMatchesStagedDraw(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 3000, 11)
	band := data.Symmetric(0.2, 0.2)
	opts := Options{InputSampleSize: 900, OutputSampleSize: 300, Seed: 5}

	oneShot, err := Draw(s, tt, band, opts)
	if err != nil {
		t.Fatal(err)
	}
	in, err := DrawInputs(s, tt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		staged, err := in.ForBand(band)
		if err != nil {
			t.Fatal(err)
		}
		if staged.S.Len() != oneShot.S.Len() || staged.T.Len() != oneShot.T.Len() {
			t.Fatalf("round %d: input sample sizes (%d,%d), one-shot (%d,%d)",
				round, staged.S.Len(), staged.T.Len(), oneShot.S.Len(), oneShot.T.Len())
		}
		for i := 0; i < staged.S.Len(); i++ {
			for d := 0; d < staged.S.Dims(); d++ {
				if staged.S.KeyAt(i, d) != oneShot.S.KeyAt(i, d) {
					t.Fatalf("round %d: S sample row %d differs", round, i)
				}
			}
		}
		if staged.OutS.Len() != oneShot.OutS.Len() || staged.OutWeight != oneShot.OutWeight {
			t.Fatalf("round %d: output sample (%d pairs, w=%g), one-shot (%d pairs, w=%g)",
				round, staged.OutS.Len(), staged.OutWeight, oneShot.OutS.Len(), oneShot.OutWeight)
		}
		for i := 0; i < staged.OutS.Len(); i++ {
			for d := 0; d < staged.OutS.Dims(); d++ {
				if staged.OutS.KeyAt(i, d) != oneShot.OutS.KeyAt(i, d) || staged.OutT.KeyAt(i, d) != oneShot.OutT.KeyAt(i, d) {
					t.Fatalf("round %d: output sample pair %d differs", round, i)
				}
			}
		}
	}
}

// TestInputSampleReuseAcrossBands: one InputSample serves several band
// conditions, each matching its own one-shot Draw.
func TestInputSampleReuseAcrossBands(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 2000, 17)
	opts := Options{InputSampleSize: 600, OutputSampleSize: 400, Seed: 9}
	in, err := DrawInputs(s, tt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.05, 0.2, 0.5} {
		band := data.Uniform(2, eps)
		staged, err := in.ForBand(band)
		if err != nil {
			t.Fatal(err)
		}
		oneShot, err := Draw(s, tt, band, opts)
		if err != nil {
			t.Fatal(err)
		}
		if staged.OutS.Len() != oneShot.OutS.Len() || staged.EstimatedOutput() != oneShot.EstimatedOutput() {
			t.Errorf("eps=%g: staged estimate %g (%d pairs), one-shot %g (%d pairs)",
				eps, staged.EstimatedOutput(), staged.OutS.Len(), oneShot.EstimatedOutput(), oneShot.OutS.Len())
		}
	}
	if _, err := in.ForBand(data.Symmetric(1, 1, 1)); err == nil {
		t.Error("dimension mismatch accepted by ForBand")
	}
}
