// Package onebucket implements the 1-Bucket partitioner of Okcan and
// Riedewald (SIGMOD 2011), one of the paper's baselines. It covers the entire
// |S| × |T| join matrix with an r × c grid of regions: every S-tuple is
// assigned to a random row (and therefore replicated to all c regions of that
// row) and every T-tuple to a random column. Randomization yields near-perfect
// load balance for arbitrary theta-joins at the price of roughly √w-fold input
// duplication, and the cover is independent of the dimensionality of the join
// condition — which is why its numbers in the paper's Tables 2a and 2b are
// virtually identical.
package onebucket

import (
	"fmt"
	"math"

	"bandjoin/internal/partition"
)

// OneBucket is the partitioner. Rows and Cols may be set explicitly; when
// zero, Plan chooses them to minimize total input c·|S| + r·|T| subject to
// r·c ≤ w.
type OneBucket struct {
	Rows int
	Cols int
}

// New returns a 1-Bucket partitioner that chooses its grid automatically.
func New() *OneBucket { return &OneBucket{} }

// Name implements partition.Partitioner.
func (*OneBucket) Name() string { return "1-Bucket" }

// Plan implements partition.Partitioner.
func (o *OneBucket) Plan(ctx *partition.Context) (partition.Plan, error) {
	if err := ctx.Validate(); err != nil {
		return nil, fmt.Errorf("onebucket: invalid context: %w", err)
	}
	rows, cols := o.Rows, o.Cols
	if rows <= 0 || cols <= 0 {
		rows, cols = ChooseGrid(ctx.Workers, ctx.Sample.TotalS, ctx.Sample.TotalT)
	}
	if rows*cols > ctx.Workers && ctx.Workers > 0 && o.Rows <= 0 {
		rows, cols = ChooseGrid(ctx.Workers, ctx.Sample.TotalS, ctx.Sample.TotalT)
	}
	return &Plan{rows: rows, cols: cols, seed: uint64(ctx.Seed) + 0x9e3779b9}, nil
}

// ChooseGrid picks the r × c cover with r·c ≤ w that minimizes the total
// input c·|S| + r·|T|. With |S| = |T| this gives the classic √w × √w square
// cover.
func ChooseGrid(workers, sizeS, sizeT int) (rows, cols int) {
	if workers < 1 {
		return 1, 1
	}
	bestCost := math.Inf(1)
	rows, cols = 1, 1
	for r := 1; r <= workers; r++ {
		c := workers / r
		if c < 1 {
			break
		}
		cost := float64(c)*float64(sizeS) + float64(r)*float64(sizeT)
		// Prefer lower total input; among ties prefer the cover that uses
		// more of the available workers (finer load spread).
		if cost < bestCost || (cost == bestCost && r*c > rows*cols) {
			bestCost = cost
			rows, cols = r, c
		}
	}
	return rows, cols
}

// Plan is the 1-Bucket assignment: partition p = row·cols + col.
type Plan struct {
	rows, cols int
	seed       uint64
}

// Rows returns the number of matrix rows of the cover.
func (p *Plan) Rows() int { return p.rows }

// Cols returns the number of matrix columns of the cover.
func (p *Plan) Cols() int { return p.cols }

// NumPartitions implements partition.Plan.
func (p *Plan) NumPartitions() int { return p.rows * p.cols }

// AssignS implements partition.Plan: the S-tuple is hashed to a row and copied
// to every region of that row.
func (p *Plan) AssignS(id int64, _ []float64, dst []int) []int {
	row := int(partition.HashID(id, p.seed) % uint64(p.rows))
	for c := 0; c < p.cols; c++ {
		dst = append(dst, row*p.cols+c)
	}
	return dst
}

// AssignT implements partition.Plan: the T-tuple is hashed to a column and
// copied to every region of that column.
func (p *Plan) AssignT(id int64, _ []float64, dst []int) []int {
	col := int(partition.HashID(id, p.seed^0xabcdef1234) % uint64(p.cols))
	for r := 0; r < p.rows; r++ {
		dst = append(dst, r*p.cols+col)
	}
	return dst
}
