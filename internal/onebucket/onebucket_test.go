package onebucket

import (
	"testing"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

func testContext(t *testing.T, workers, n int) *partition.Context {
	t.Helper()
	s, tt := data.ParetoPair(2, 1.5, n, 1)
	band := data.Symmetric(0.1, 0.1)
	smp, err := sample.Draw(s, tt, band, sample.Options{InputSampleSize: 400, OutputSampleSize: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &partition.Context{Band: band, Workers: workers, Sample: smp, Model: costmodel.Default(), Seed: 3}
}

func TestChooseGrid(t *testing.T) {
	// Equal-sized inputs: the cover should be as square as possible.
	r, c := ChooseGrid(16, 1000, 1000)
	if r*c > 16 || r*c < 12 {
		t.Errorf("ChooseGrid(16) = %dx%d uses %d regions", r, c, r*c)
	}
	if r != 4 || c != 4 {
		t.Errorf("ChooseGrid with equal inputs should be square, got %dx%d", r, c)
	}
	// A much larger T should get more rows (T is replicated r times).
	r2, c2 := ChooseGrid(16, 1000, 100000)
	if r2 > c2 {
		t.Errorf("with |T| >> |S| the cover should favor few rows, got %dx%d", r2, c2)
	}
	if r0, c0 := ChooseGrid(0, 10, 10); r0 != 1 || c0 != 1 {
		t.Errorf("ChooseGrid(0) = %dx%d", r0, c0)
	}
}

func TestPlanAssignmentStructure(t *testing.T) {
	ctx := testContext(t, 12, 2000)
	plan, err := New().Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p := plan.(*Plan)
	if p.Rows()*p.Cols() != plan.NumPartitions() {
		t.Fatalf("partitions %d != rows*cols %d", plan.NumPartitions(), p.Rows()*p.Cols())
	}
	if plan.NumPartitions() > 12 {
		t.Errorf("1-Bucket uses %d regions for 12 workers", plan.NumPartitions())
	}
	key := []float64{1, 1}
	sParts := plan.AssignS(7, key, nil)
	tParts := plan.AssignT(7, key, nil)
	if len(sParts) != p.Cols() {
		t.Errorf("S tuple copied to %d regions, want one full row of %d", len(sParts), p.Cols())
	}
	if len(tParts) != p.Rows() {
		t.Errorf("T tuple copied to %d regions, want one full column of %d", len(tParts), p.Rows())
	}
	// Exactly one region in common: the row/column intersection.
	common := 0
	for _, a := range sParts {
		for _, b := range tParts {
			if a == b {
				common++
			}
		}
	}
	if common != 1 {
		t.Errorf("row and column intersect in %d regions, want 1", common)
	}
}

func TestAssignmentIsDeterministicPerID(t *testing.T) {
	ctx := testContext(t, 9, 1000)
	plan, err := New().Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	key := []float64{2, 3}
	a := plan.AssignS(42, key, nil)
	b := plan.AssignS(42, key, nil)
	if len(a) != len(b) {
		t.Fatal("assignment changed between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("assignment changed between calls")
		}
	}
}

func TestRowsSpreadAcrossIDs(t *testing.T) {
	ctx := testContext(t, 25, 1000)
	plan, err := New().Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p := plan.(*Plan)
	rows := make(map[int]int)
	for id := int64(0); id < 1000; id++ {
		parts := plan.AssignS(id, []float64{1, 1}, nil)
		rows[parts[0]/p.Cols()]++
	}
	if len(rows) != p.Rows() {
		t.Errorf("random row assignment used %d of %d rows", len(rows), p.Rows())
	}
	for r, n := range rows {
		if n < 1000/p.Rows()/3 {
			t.Errorf("row %d received only %d of 1000 tuples", r, n)
		}
	}
}

func TestExplicitGridRespected(t *testing.T) {
	ctx := testContext(t, 10, 500)
	plan, err := (&OneBucket{Rows: 2, Cols: 3}).Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPartitions() != 6 {
		t.Errorf("explicit 2x3 grid produced %d partitions", plan.NumPartitions())
	}
}

func TestPlanRejectsInvalidContext(t *testing.T) {
	if _, err := New().Plan(&partition.Context{}); err == nil {
		t.Error("invalid context accepted")
	}
}
