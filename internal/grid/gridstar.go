package grid

import (
	"fmt"
	"math"

	"bandjoin/internal/partition"
)

// GridStar is the Grid* extension (Section 6.5): starting from the default
// grid size εᵢ it tries coarser grids j·εᵢ for j = 2, 3, … and, for each,
// predicts the join time with the running-time model from the samples; it
// stops at the first local minimum and uses that grid size.
type GridStar struct {
	// MaxMultiplier bounds the search; zero means 128.
	MaxMultiplier int
}

// NewStar returns Grid* with the default search bound.
func NewStar() *GridStar { return &GridStar{} }

// Name implements partition.Partitioner.
func (*GridStar) Name() string { return "Grid*" }

// Plan implements partition.Partitioner.
func (g *GridStar) Plan(ctx *partition.Context) (partition.Plan, error) {
	m, _, err := g.ChooseMultiplier(ctx)
	if err != nil {
		return nil, err
	}
	size, err := CellSize(ctx.Band, float64(m))
	if err != nil {
		return nil, err
	}
	return NewPlan(ctx.Band, size), nil
}

// ChooseMultiplier returns the grid-size multiplier Grid* selects and the
// predicted join time of every multiplier it evaluated (indexed by
// multiplier), which Table 5 reports.
func (g *GridStar) ChooseMultiplier(ctx *partition.Context) (int, map[int]Estimate, error) {
	if err := ctx.Validate(); err != nil {
		return 0, nil, fmt.Errorf("grid: invalid context: %w", err)
	}
	max := g.MaxMultiplier
	if max <= 0 {
		max = 128
	}
	evaluated := make(map[int]Estimate)
	bestM := 1
	bestTime := math.Inf(1)
	worseStreak := 0
	for m := 1; m <= max; m++ {
		est, err := EstimateMultiplier(ctx, float64(m))
		if err != nil {
			return 0, nil, err
		}
		evaluated[m] = est
		if est.PredictedTime < bestTime {
			bestTime = est.PredictedTime
			bestM = m
			worseStreak = 0
		} else {
			worseStreak++
			// Stop at a local minimum: two consecutive non-improving grids.
			if worseStreak >= 2 {
				break
			}
		}
	}
	return bestM, evaluated, nil
}

// Estimate summarizes the sample-based prediction for one grid size.
type Estimate struct {
	Multiplier    float64
	TotalInput    float64 // I including duplicates
	MaxWorkerIn   float64 // Im
	MaxWorkerOut  float64 // Om
	PredictedTime float64
	Cells         int
}

// EstimateMultiplier estimates I, Im, and Om for Grid-ε with the given grid
// multiplier by assigning only the sample tuples and scaling, then hashing the
// occupied cells to workers exactly as the real plan would.
func EstimateMultiplier(ctx *partition.Context, multiplier float64) (Estimate, error) {
	size, err := CellSize(ctx.Band, multiplier)
	if err != nil {
		return Estimate{}, err
	}
	p := NewPlan(ctx.Band, size)
	return EstimatePlan(ctx, p, multiplier)
}

// EstimatePlan estimates the behaviour of an existing (empty) grid plan on the
// full input from the context's samples.
func EstimatePlan(ctx *partition.Context, p *Plan, multiplier float64) (Estimate, error) {
	smp := ctx.Sample
	type cellLoad struct{ in, out float64 }
	loads := make(map[int]*cellLoad)
	get := func(id int) *cellLoad {
		l, ok := loads[id]
		if !ok {
			l = &cellLoad{}
			loads[id] = l
		}
		return l
	}

	totalInput := 0.0
	var dst []int
	for i := 0; i < smp.S.Len(); i++ {
		dst = p.AssignS(int64(i), smp.S.Key(i), dst[:0])
		for _, id := range dst {
			get(id).in += 1 / smp.SRate
			totalInput += 1 / smp.SRate
		}
	}
	for i := 0; i < smp.T.Len(); i++ {
		dst = p.AssignT(int64(i), smp.T.Key(i), dst[:0])
		for _, id := range dst {
			get(id).in += 1 / smp.TRate
			totalInput += 1 / smp.TRate
		}
	}
	for i := 0; i < smp.OutS.Len(); i++ {
		dst = p.AssignS(int64(i), smp.OutS.Key(i), dst[:0])
		if len(dst) > 0 {
			get(dst[0]).out += smp.OutWeight
		}
	}

	workers := ctx.Workers
	workerIn := make([]float64, workers)
	workerOut := make([]float64, workers)
	for id, l := range loads {
		w := p.PlaceWorker(id, workers)
		workerIn[w] += l.in
		workerOut[w] += l.out
	}
	maxW := 0
	for w := 1; w < workers; w++ {
		if ctx.Model.Load(workerIn[w], workerOut[w]) > ctx.Model.Load(workerIn[maxW], workerOut[maxW]) {
			maxW = w
		}
	}
	est := Estimate{
		Multiplier:   multiplier,
		TotalInput:   totalInput,
		MaxWorkerIn:  workerIn[maxW],
		MaxWorkerOut: workerOut[maxW],
		Cells:        p.NumPartitions(),
	}
	est.PredictedTime = ctx.Model.Predict(est.TotalInput, est.MaxWorkerIn, est.MaxWorkerOut)
	return est, nil
}
