package grid

import (
	"testing"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

func testContext(t *testing.T, workers int, band data.Band, s, tt *data.Relation) *partition.Context {
	t.Helper()
	smp, err := sample.Draw(s, tt, band, sample.Options{InputSampleSize: 600, OutputSampleSize: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &partition.Context{Band: band, Workers: workers, Sample: smp, Model: costmodel.Default(), Seed: 3}
}

func TestCellSize(t *testing.T) {
	band := data.Symmetric(2, 4)
	size, err := CellSize(band, 1)
	if err != nil {
		t.Fatal(err)
	}
	if size[0] != 2 || size[1] != 4 {
		t.Errorf("CellSize = %v", size)
	}
	size, err = CellSize(band, 3)
	if err != nil {
		t.Fatal(err)
	}
	if size[0] != 6 || size[1] != 12 {
		t.Errorf("CellSize x3 = %v", size)
	}
	if _, err := CellSize(data.Symmetric(0, 1), 1); err == nil {
		t.Error("zero band width accepted; Grid-ε is undefined for equi-joins")
	}
}

func TestAssignSSingleCell(t *testing.T) {
	band := data.Symmetric(1, 1)
	plan := NewPlan(band, []float64{1, 1})
	parts := plan.AssignS(1, []float64{2.5, 3.5}, nil)
	if len(parts) != 1 {
		t.Fatalf("S tuple assigned to %d cells, want 1", len(parts))
	}
	// The same cell is reused for another tuple in the same cell.
	again := plan.AssignS(2, []float64{2.9, 3.1}, nil)
	if again[0] != parts[0] {
		t.Error("tuples in the same grid cell got different partitions")
	}
	other := plan.AssignS(3, []float64{3.1, 3.1}, nil)
	if other[0] == parts[0] {
		t.Error("tuples in different cells share a partition")
	}
}

func TestAssignTReplication(t *testing.T) {
	band := data.Symmetric(1, 1)
	plan := NewPlan(band, []float64{1, 1})
	// A tuple in the middle of a cell still reaches 3x3 neighboring cells at
	// grid size ε.
	parts := plan.AssignT(1, []float64{5.5, 5.5}, nil)
	if len(parts) != 9 {
		t.Errorf("T tuple replicated to %d cells, want 9", len(parts))
	}
	if plan.Replication([]float64{5.5, 5.5}) != 9 {
		t.Errorf("Replication = %d, want 9", plan.Replication([]float64{5.5, 5.5}))
	}
	// Coarser cells reduce replication.
	coarse := NewPlan(band, []float64{4, 4})
	if got := len(coarse.AssignT(1, []float64{5.5, 5.5}, nil)); got > 4 {
		t.Errorf("coarse grid still replicates to %d cells", got)
	}
}

func TestDefinitionOneOnGrid(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 1500, 5)
	band := data.Symmetric(0.1, 0.1)
	plan := NewPlan(band, mustCellSize(t, band, 1))
	checked := 0
	for i := 0; i < s.Len(); i += 11 {
		for j := 0; j < tt.Len(); j += 17 {
			sParts := plan.AssignS(int64(i), s.Key(i), nil)
			tParts := plan.AssignT(int64(j), tt.Key(j), nil)
			common := 0
			for _, a := range sParts {
				for _, b := range tParts {
					if a == b {
						common++
					}
				}
			}
			if band.Matches(s.Key(i), tt.Key(j)) {
				checked++
				if common != 1 {
					t.Fatalf("matching pair shares %d cells, want exactly 1", common)
				}
			} else if common > 1 {
				t.Fatalf("non-matching pair shares %d cells", common)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no matching pairs checked")
	}
}

func mustCellSize(t *testing.T, band data.Band, m float64) []float64 {
	t.Helper()
	size, err := CellSize(band, m)
	if err != nil {
		t.Fatal(err)
	}
	return size
}

func TestPlaceWorkerStable(t *testing.T) {
	band := data.Symmetric(1)
	plan := NewPlan(band, []float64{1})
	plan.AssignS(1, []float64{0.5}, nil)
	plan.AssignS(2, []float64{7.5}, nil)
	if plan.NumPartitions() != 2 {
		t.Fatalf("expected 2 cells, got %d", plan.NumPartitions())
	}
	if plan.PlaceWorker(0, 4) != plan.PlaceWorker(0, 4) {
		t.Error("placement not deterministic")
	}
	if w := plan.PlaceWorker(99, 4); w != 0 {
		t.Errorf("out-of-range partition placed on %d, want 0", w)
	}
}

func TestGridPartitionerNamesAndErrors(t *testing.T) {
	if New().Name() != "Grid-eps" {
		t.Errorf("Name = %q", New().Name())
	}
	if NewWithMultiplier(4).Name() == "Grid-eps" {
		t.Error("multiplier variant should carry the multiplier in its name")
	}
	if NewStar().Name() != "Grid*" {
		t.Errorf("Grid* name = %q", NewStar().Name())
	}
	if _, err := New().Plan(&partition.Context{}); err == nil {
		t.Error("invalid context accepted")
	}
	s, tt := data.ParetoPair(1, 1.5, 500, 7)
	ctx := testContext(t, 4, data.Symmetric(0), s, tt)
	if _, err := New().Plan(ctx); err == nil {
		t.Error("Grid-ε accepted a zero band width")
	}
}

func TestGridStarPrefersCoarserGridOnSmallBand(t *testing.T) {
	// At grid size ε the duplication is ~3^d; Grid* should pick a coarser
	// multiplier that trades duplication against balance (Table 5).
	s, tt := data.ParetoPair(3, 1.5, 4000, 9)
	band := data.Uniform(3, 0.03)
	ctx := testContext(t, 16, band, s, tt)
	m, evaluated, err := NewStar().ChooseMultiplier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m < 2 {
		t.Errorf("Grid* chose multiplier %d; a coarser grid should beat grid size ε here", m)
	}
	if len(evaluated) < 2 {
		t.Errorf("Grid* evaluated only %d grid sizes", len(evaluated))
	}
	if est, ok := evaluated[1]; ok {
		if better, ok2 := evaluated[m]; ok2 && better.PredictedTime > est.PredictedTime {
			t.Errorf("chosen multiplier %d predicts %f, worse than multiplier 1's %f",
				m, better.PredictedTime, est.PredictedTime)
		}
	}
	plan, err := NewStar().Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.(*Plan).CellSizes()[0] <= 0.03 {
		t.Errorf("Grid* plan uses cell size %g, expected coarser than ε", plan.(*Plan).CellSizes()[0])
	}
}

func TestEstimateMultiplierCountsDuplication(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 3000, 11)
	band := data.Symmetric(0.05, 0.05)
	ctx := testContext(t, 8, band, s, tt)
	fine, err := EstimateMultiplier(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := EstimateMultiplier(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fine.TotalInput <= coarse.TotalInput {
		t.Errorf("finer grid should duplicate more: fine %f vs coarse %f", fine.TotalInput, coarse.TotalInput)
	}
	if fine.Cells <= coarse.Cells {
		t.Errorf("finer grid should have more cells: %d vs %d", fine.Cells, coarse.Cells)
	}
}
