// Package grid implements the Grid-ε baseline (Soloviev's truncating-hash
// band-join partitioning generalized to d dimensions, Section 3.1 of the
// paper) and the Grid* extension (Section 6.5) that tunes the grid size with
// the running-time model. The join-attribute space is divided into a regular
// grid; every S-tuple belongs to exactly one cell, and every T-tuple is
// duplicated to all cells its ε-range intersects (up to 3^d cells at the
// default grid size). Cells are placed on workers by hashing, reflecting the
// method's near-zero optimization cost.
package grid

import (
	"fmt"
	"math"
	"sync"

	"bandjoin/internal/data"
	"bandjoin/internal/partition"
)

// Grid is the Grid-ε partitioner. Multiplier scales the cell size relative to
// the band width in each dimension: cell size in dimension i is
// Multiplier · εᵢ (the paper's default is Multiplier = 1; Table 5 sweeps it).
type Grid struct {
	Multiplier float64
}

// New returns Grid-ε with the default cell size of one band width.
func New() *Grid { return &Grid{Multiplier: 1} }

// NewWithMultiplier returns Grid-ε with cell size multiplier·ε per dimension.
func NewWithMultiplier(m float64) *Grid { return &Grid{Multiplier: m} }

// Name implements partition.Partitioner.
func (g *Grid) Name() string {
	if g.Multiplier == 1 || g.Multiplier == 0 {
		return "Grid-eps"
	}
	return fmt.Sprintf("Grid-eps(x%g)", g.Multiplier)
}

// Plan implements partition.Partitioner.
func (g *Grid) Plan(ctx *partition.Context) (partition.Plan, error) {
	if err := ctx.Validate(); err != nil {
		return nil, fmt.Errorf("grid: invalid context: %w", err)
	}
	m := g.Multiplier
	if m <= 0 {
		m = 1
	}
	size, err := CellSize(ctx.Band, m)
	if err != nil {
		return nil, err
	}
	return NewPlan(ctx.Band, size), nil
}

// CellSize returns the per-dimension grid cell size multiplier·εᵢ, where εᵢ is
// the (average) half band width. Grid partitioning is undefined for band width
// zero (the paper notes Grid-ε is not defined for equi-joins).
func CellSize(band data.Band, multiplier float64) ([]float64, error) {
	size := make([]float64, band.Dims())
	for i := range size {
		eps := band.Width(i) / 2
		if eps <= 0 {
			return nil, fmt.Errorf("grid: band width in dimension %d is zero; Grid-ε is undefined for equi-joins", i)
		}
		size[i] = multiplier * eps
	}
	return size, nil
}

// ---------------------------------------------------------------------------
// Plan

// cellEntry is one occupied grid cell; collisions of the coordinate hash are
// resolved by comparing the full coordinate vector, so distinct cells are
// never merged (which would make a local join emit duplicate results).
type cellEntry struct {
	coords []int64
	id     int
}

// Plan is the Grid-ε assignment. Cells are discovered lazily as tuples are
// assigned, so NumPartitions grows during the shuffle; it must be read after
// assignment. AssignS and AssignT are safe for concurrent use (the parallel
// shuffle calls them from many goroutines): lookups of already-discovered
// cells take a read lock only, and cell creation escalates to a write lock.
// Cell (partition) numbering therefore depends on discovery order, but which
// tuples share a cell, and the worker each cell is hashed to, do not.
type Plan struct {
	band     data.Band
	cellSize []float64

	mu     sync.RWMutex
	cells  map[uint64][]cellEntry
	hashes []uint64 // per partition id, hash of its cell coordinates
}

// NewPlan returns an empty Grid-ε plan with the given cell sizes.
func NewPlan(band data.Band, cellSize []float64) *Plan {
	return &Plan{
		band:     band,
		cellSize: cellSize,
		cells:    make(map[uint64][]cellEntry),
	}
}

// CellSizes returns the per-dimension cell size of the plan.
func (p *Plan) CellSizes() []float64 { return p.cellSize }

// NumPartitions implements partition.Plan. It returns the number of occupied
// cells discovered so far.
func (p *Plan) NumPartitions() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.hashes)
}

// PlaceWorker implements partition.WorkerPlacer: cells are hashed to workers,
// matching Grid-ε's near-zero optimization cost (no load-aware scheduling).
func (p *Plan) PlaceWorker(part, workers int) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if part < 0 || part >= len(p.hashes) || workers <= 0 {
		return 0
	}
	return int(p.hashes[part] % uint64(workers))
}

// maxStackDims bounds the dimensionality for which Assign scratch lives on the
// stack; the paper evaluates up to d = 8.
const maxStackDims = 16

// AssignS implements partition.Plan: the S-tuple belongs to exactly one cell.
func (p *Plan) AssignS(_ int64, key []float64, dst []int) []int {
	var buf [maxStackDims]int64
	coords := buf[:0]
	if len(key) > maxStackDims {
		coords = make([]int64, 0, len(key))
	}
	for d, v := range key {
		coords = append(coords, cellIndex(v, p.cellSize[d]))
	}
	return append(dst, p.lookup(coords))
}

// AssignT implements partition.Plan: the T-tuple is copied to every cell that
// its ε-range [t−High, t+Low] intersects (the cells that may hold matching
// S-tuples).
func (p *Plan) AssignT(_ int64, key []float64, dst []int) []int {
	d := len(key)
	var bufLo, bufHi, bufC [maxStackDims]int64
	lo, hi, coords := bufLo[:0], bufHi[:0], bufC[:d]
	if d > maxStackDims {
		lo, hi, coords = make([]int64, 0, d), make([]int64, 0, d), make([]int64, d)
	}
	for i, v := range key {
		lo = append(lo, cellIndex(v-p.band.High[i], p.cellSize[i]))
		hi = append(hi, cellIndex(v+p.band.Low[i], p.cellSize[i]))
	}
	copy(coords, lo)
	for {
		dst = append(dst, p.lookup(coords))
		// Advance the coordinate vector (odometer over the cell ranges).
		i := d - 1
		for i >= 0 {
			coords[i]++
			if coords[i] <= hi[i] {
				break
			}
			coords[i] = lo[i]
			i--
		}
		if i < 0 {
			break
		}
	}
	return dst
}

// Replication returns how many cells a T-tuple with the given key is copied
// to, without creating the cells. It is used for sample-based estimation.
func (p *Plan) Replication(key []float64) int {
	n := 1
	for i, v := range key {
		lo := cellIndex(v-p.band.High[i], p.cellSize[i])
		hi := cellIndex(v+p.band.Low[i], p.cellSize[i])
		n *= int(hi - lo + 1)
	}
	return n
}

// lookup returns the partition id of the cell with the given coordinates,
// creating it if necessary. The fast path (cell already discovered, which is
// every lookup after the shuffle's first pass) takes only a read lock.
func (p *Plan) lookup(coords []int64) int {
	h := hashCoords(coords)
	p.mu.RLock()
	for _, e := range p.cells[h] {
		if equalCoords(e.coords, coords) {
			p.mu.RUnlock()
			return e.id
		}
	}
	p.mu.RUnlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	// Re-check: another goroutine may have created the cell in the meantime.
	for _, e := range p.cells[h] {
		if equalCoords(e.coords, coords) {
			return e.id
		}
	}
	id := len(p.hashes)
	stored := make([]int64, len(coords))
	copy(stored, coords)
	p.cells[h] = append(p.cells[h], cellEntry{coords: stored, id: id})
	p.hashes = append(p.hashes, h)
	return id
}

func cellIndex(v, size float64) int64 {
	return int64(math.Floor(v / size))
}

func equalCoords(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashCoords mixes the cell coordinates with an FNV-1a / splitmix combination.
func hashCoords(coords []int64) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range coords {
		h ^= uint64(c)
		h *= 1099511628211
		h = partition.HashID(int64(h), 0x5bd1e995)
	}
	return h
}
