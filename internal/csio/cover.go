package csio

import (
	"math"
	"sort"
)

// rect is one region of the join-matrix cover: a contiguous range of rows and
// columns. Every candidate cell is covered by exactly one rect; rects never
// overlap geometrically, which guarantees that every join result is produced
// by exactly one worker.
type rect struct {
	rowLo, rowHi int // inclusive
	colLo, colHi int // inclusive
	load         float64
}

// coverMatrix finds a cover of all candidate cells with at most `workers`
// rectangles, minimizing the maximum rectangle load (β2·input + β3·output).
// It binary-searches the max load and uses an M-Bucket-I style feasibility
// check: rows are grouped into contiguous blocks, and within each block the
// candidate columns are covered left to right with rectangles whose load stays
// below the bound. This is the coarsened-matrix covering step of CSIO; the
// search over block heights is what makes its optimization cost grow quickly
// with the matrix granularity.
func coverMatrix(m *matrix, workers int, beta2, beta3 float64) []rect {
	// Candidate load values: binary search between the largest single-cell
	// load and the load of one rectangle covering everything.
	low := maxCellLoad(m, beta2, beta3)
	high := totalLoad(m, beta2, beta3)
	if high <= 0 {
		// Degenerate: no candidate cells. A single rectangle covering the
		// whole matrix keeps the plan well-formed.
		return []rect{{rowLo: 0, rowHi: m.rows - 1, colLo: 0, colHi: m.cols - 1}}
	}

	best := buildCover(m, high*1.0001, workers, beta2, beta3)
	for iter := 0; iter < 40 && high-low > 1e-9*(1+high); iter++ {
		mid := (low + high) / 2
		cover := buildCover(m, mid, workers, beta2, beta3)
		if cover != nil {
			best = cover
			high = mid
		} else {
			low = mid
		}
	}
	if best == nil {
		best = []rect{{rowLo: 0, rowHi: m.rows - 1, colLo: 0, colHi: m.cols - 1, load: high}}
	}
	return best
}

// buildCover attempts to cover all candidate cells with rectangles of load at
// most bound, using at most `workers` rectangles. It returns nil when it
// cannot.
func buildCover(m *matrix, bound float64, workers int, beta2, beta3 float64) []rect {
	var rects []rect
	row := 0
	for row < m.rows {
		bestHeight, bestScore := 1, math.Inf(-1)
		var bestBlock []rect
		// Try all block heights starting at this row and keep the one with
		// the best covered-cells-per-rectangle ratio (the M-Bucket-I score).
		for h := 1; row+h <= m.rows; h++ {
			block, cells, ok := coverBlock(m, row, row+h-1, bound, beta2, beta3)
			if !ok {
				break
			}
			if len(block) == 0 {
				// No candidate cells in this block; extending is free.
				if h == m.rows-row {
					bestHeight, bestBlock = h, block
					bestScore = math.Inf(1)
				}
				continue
			}
			score := float64(cells) / float64(len(block))
			if score > bestScore {
				bestScore, bestHeight, bestBlock = score, h, block
			}
		}
		if bestBlock == nil && bestScore == math.Inf(-1) {
			// Not even a single row fits under the bound.
			if blk, _, ok := coverBlock(m, row, row, bound, beta2, beta3); ok {
				bestHeight, bestBlock = 1, blk
			} else {
				return nil
			}
		}
		rects = append(rects, bestBlock...)
		if len(rects) > workers {
			return nil
		}
		row += bestHeight
	}
	if len(rects) == 0 {
		rects = append(rects, rect{rowLo: 0, rowHi: m.rows - 1, colLo: 0, colHi: m.cols - 1})
	}
	return rects
}

// coverBlock covers the candidate cells of rows [rowLo, rowHi] with
// rectangles spanning those rows and contiguous column ranges, each of load at
// most bound. It returns the rectangles, the number of candidate cells
// covered, and whether the bound could be respected.
func coverBlock(m *matrix, rowLo, rowHi int, bound float64, beta2, beta3 float64) ([]rect, int, bool) {
	rowIn := 0.0
	for r := rowLo; r <= rowHi; r++ {
		rowIn += m.rowInput[r]
	}
	var rects []rect
	cells := 0
	col := 0
	for col < m.cols {
		// Skip columns with no candidate cell in this row block.
		if !blockColumnCandidate(m, rowLo, rowHi, col) {
			col++
			continue
		}
		// Grow a rectangle starting at col while the load stays under bound.
		load := rowIn * beta2
		out := 0.0
		colIn := 0.0
		end := col
		for end < m.cols {
			if !blockColumnCandidate(m, rowLo, rowHi, end) {
				// Including a candidate-free column costs its input but covers
				// nothing; stop the rectangle before it.
				break
			}
			addIn := m.colInput[end]
			addOut := 0.0
			for r := rowLo; r <= rowHi; r++ {
				if m.candidate[m.at(r, end)] {
					addOut += m.cellOutput[m.at(r, end)]
				}
			}
			newLoad := (rowIn+colIn+addIn)*beta2 + (out+addOut)*beta3
			if end > col && newLoad > bound {
				break
			}
			colIn += addIn
			out += addOut
			load = newLoad
			end++
		}
		if end == col {
			end = col + 1 // a single column always forms a rectangle
		}
		if load > bound && !(rowLo == rowHi && end-col == 1) {
			return nil, 0, false
		}
		if load > bound {
			return nil, 0, false
		}
		for r := rowLo; r <= rowHi; r++ {
			for c := col; c < end; c++ {
				if m.candidate[m.at(r, c)] {
					cells++
				}
			}
		}
		rects = append(rects, rect{rowLo: rowLo, rowHi: rowHi, colLo: col, colHi: end - 1, load: load})
		col = end
	}
	return rects, cells, true
}

// blockColumnCandidate reports whether column c has any candidate cell within
// rows [rowLo, rowHi].
func blockColumnCandidate(m *matrix, rowLo, rowHi, c int) bool {
	for r := rowLo; r <= rowHi; r++ {
		if m.candidate[m.at(r, c)] {
			return true
		}
	}
	return false
}

func maxCellLoad(m *matrix, beta2, beta3 float64) float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if !m.candidate[m.at(i, j)] {
				continue
			}
			l := (m.rowInput[i]+m.colInput[j])*beta2 + m.cellOutput[m.at(i, j)]*beta3
			if l > max {
				max = l
			}
		}
	}
	return max
}

func totalLoad(m *matrix, beta2, beta3 float64) float64 {
	in := 0.0
	for _, v := range m.rowInput {
		in += v
	}
	for _, v := range m.colInput {
		in += v
	}
	out := 0.0
	for _, v := range m.cellOutput {
		out += v
	}
	return in*beta2 + out*beta3
}

// sortRects orders rectangles by (rowLo, colLo) for deterministic plans.
func sortRects(rects []rect) {
	sort.Slice(rects, func(a, b int) bool {
		if rects[a].rowLo != rects[b].rowLo {
			return rects[a].rowLo < rects[b].rowLo
		}
		return rects[a].colLo < rects[b].colLo
	})
}
