package csio

import (
	"testing"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

func testContext(t *testing.T, workers int, band data.Band, s, tt *data.Relation) *partition.Context {
	t.Helper()
	smp, err := sample.Draw(s, tt, band, sample.Options{InputSampleSize: 1200, OutputSampleSize: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &partition.Context{Band: band, Workers: workers, Sample: smp, Model: costmodel.Default(), Seed: 3}
}

func TestLessKeyRowMajor(t *testing.T) {
	if !lessKey([]float64{1, 9}, []float64{2, 0}) {
		t.Error("most significant dimension must dominate")
	}
	if !lessKey([]float64{1, 1}, []float64{1, 2}) {
		t.Error("ties broken by later dimensions")
	}
	if lessKey([]float64{1, 2}, []float64{1, 2}) {
		t.Error("equal keys are not less")
	}
}

func TestQuantileBoundaries(t *testing.T) {
	r := data.NewRelation("r", 1)
	for i := 0; i < 100; i++ {
		r.Append(float64(i))
	}
	bounds := quantileBoundaries(r, 4)
	if len(bounds) != 3 {
		t.Fatalf("expected 3 boundaries, got %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if !lessKey(bounds[i-1], bounds[i]) {
			t.Error("boundaries not strictly increasing")
		}
	}
	// Duplicate-heavy input collapses boundaries instead of repeating them.
	dup := data.NewRelation("d", 1)
	for i := 0; i < 100; i++ {
		dup.Append(5)
	}
	if got := quantileBoundaries(dup, 4); len(got) > 1 {
		t.Errorf("duplicate values produced %d boundaries", len(got))
	}
	if quantileBoundaries(data.NewRelation("e", 1), 4) != nil {
		t.Error("empty relation should have no boundaries")
	}
}

func TestRangeOf(t *testing.T) {
	bounds := [][]float64{{10}, {20}, {30}}
	cases := []struct {
		v    float64
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {29, 2}, {30, 3}, {1000, 3}}
	for _, c := range cases {
		if got := rangeOf(bounds, []float64{c.v}); got != c.want {
			t.Errorf("rangeOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPlanDefinitionOne(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 2500, 5)
	band := data.Symmetric(0.1, 0.1)
	ctx := testContext(t, 10, band, s, tt)
	plan, err := New().Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPartitions() < 1 || plan.NumPartitions() > 10 {
		t.Fatalf("CSIO produced %d rectangles for 10 workers", plan.NumPartitions())
	}
	checked := 0
	for i := 0; i < s.Len(); i += 13 {
		for j := 0; j < tt.Len(); j += 19 {
			sParts := plan.AssignS(int64(i), s.Key(i), nil)
			tParts := plan.AssignT(int64(j), tt.Key(j), nil)
			if len(sParts) == 0 || len(tParts) == 0 {
				t.Fatal("a tuple was assigned nowhere")
			}
			common := 0
			for _, a := range sParts {
				for _, b := range tParts {
					if a == b {
						common++
					}
				}
			}
			if band.Matches(s.Key(i), tt.Key(j)) {
				checked++
				if common != 1 {
					t.Fatalf("matching pair covered by %d rectangles, want 1", common)
				}
			} else if common > 1 {
				t.Fatalf("non-matching pair covered by %d rectangles", common)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no matching pairs checked")
	}
}

func TestCoverRespectsWorkerBudgetAndBalances(t *testing.T) {
	s, tt := data.ParetoPair(1, 2.0, 4000, 7)
	band := data.Symmetric(0.01)
	for _, w := range []int{2, 8, 24} {
		ctx := testContext(t, w, band, s, tt)
		plan, err := New().Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		p := plan.(*Plan)
		if p.Rectangles() > w {
			t.Errorf("w=%d: cover uses %d rectangles", w, p.Rectangles())
		}
		loads := p.EstimatedLoads()
		if len(loads) != p.Rectangles() {
			t.Errorf("w=%d: %d load estimates for %d rectangles", w, len(loads), p.Rectangles())
		}
	}
}

func TestGranularityIncreasesOptimizationWork(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 3000, 9)
	band := data.Symmetric(0.05, 0.05)
	ctxCoarse := testContext(t, 8, band, s, tt)
	coarse, err := NewWithGranularity(16).Plan(ctxCoarse)
	if err != nil {
		t.Fatal(err)
	}
	ctxFine := testContext(t, 8, band, s, tt)
	fine, err := NewWithGranularity(96).Plan(ctxFine)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NumPartitions() > 8 || fine.NumPartitions() > 8 {
		t.Error("rectangle budget exceeded")
	}
}

func TestPlanRejectsInvalidContext(t *testing.T) {
	if _, err := New().Plan(&partition.Context{}); err == nil {
		t.Error("invalid context accepted")
	}
	if New().Name() != "CSIO" {
		t.Error("name wrong")
	}
}

func TestBuildCoverDegenerateMatrix(t *testing.T) {
	// A matrix with no candidate cells still yields a well-formed cover.
	m := &matrix{rows: 3, cols: 3, candidate: make([]bool, 9), rowInput: make([]float64, 3), colInput: make([]float64, 3), cellOutput: make([]float64, 9)}
	rects := coverMatrix(m, 4, 1, 1)
	if len(rects) == 0 {
		t.Fatal("degenerate matrix produced no cover")
	}
}
