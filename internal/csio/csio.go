// Package csio implements the CSIO baseline (Vitorovic et al., ICDE 2016),
// the state of the art for distributed theta-joins that the paper compares
// against. CSIO range-partitions both inputs on a total order of the
// join-attribute space using approximate quantiles (row-major order per
// Section 5.2 of the paper), marks the join-matrix cells that may contain
// results, and covers those candidate cells with at most w rectangles while
// minimizing the maximum rectangle load. The covering search dominates its
// optimization time, which grows quickly with the statistics granularity and
// with join dimensionality — the weakness the paper's experiments expose.
package csio

import (
	"fmt"
	"math"
	"sort"

	"bandjoin/internal/data"
	"bandjoin/internal/partition"
)

// CSIO is the partitioner. Granularity is the number of quantile ranges per
// input; zero selects 4·w bounded to [16, 192]. Higher granularity finds
// better coverings but optimization cost grows roughly cubically with it.
type CSIO struct {
	Granularity int
}

// New returns CSIO with automatic granularity.
func New() *CSIO { return &CSIO{} }

// NewWithGranularity returns CSIO using the given number of quantile ranges
// per input.
func NewWithGranularity(g int) *CSIO { return &CSIO{Granularity: g} }

// Name implements partition.Partitioner.
func (*CSIO) Name() string { return "CSIO" }

// Plan implements partition.Partitioner.
func (c *CSIO) Plan(ctx *partition.Context) (partition.Plan, error) {
	if err := ctx.Validate(); err != nil {
		return nil, fmt.Errorf("csio: invalid context: %w", err)
	}
	g := c.Granularity
	if g <= 0 {
		g = 4 * ctx.Workers
		if g < 16 {
			g = 16
		}
		if g > 192 {
			g = 192
		}
	}

	smp := ctx.Sample
	sBounds := quantileBoundaries(smp.S, g)
	tBounds := quantileBoundaries(smp.T, g)
	rows := len(sBounds) + 1
	cols := len(tBounds) + 1

	m := buildMatrix(ctx, sBounds, tBounds, rows, cols)
	rects := coverMatrix(m, ctx.Workers, ctx.Model.Beta2, ctx.Model.Beta3)
	return newPlan(ctx.Band, sBounds, tBounds, m, rects), nil
}

// ---------------------------------------------------------------------------
// Row-major linearization and quantiles

// lessKey is the row-major (lexicographic, most-significant dimension first)
// total order on join-attribute keys that CSIO's range partitioning uses.
func lessKey(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// quantileBoundaries returns g−1 boundary keys splitting the sample into g
// approximately equal ranges under the row-major order.
func quantileBoundaries(r *data.Relation, g int) [][]float64 {
	n := r.Len()
	if n == 0 || g <= 1 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return lessKey(r.Key(idx[a]), r.Key(idx[b])) })
	bounds := make([][]float64, 0, g-1)
	for q := 1; q < g; q++ {
		pos := q * n / g
		if pos >= n {
			pos = n - 1
		}
		key := make([]float64, r.Dims())
		copy(key, r.Key(idx[pos]))
		if len(bounds) > 0 && !lessKey(bounds[len(bounds)-1], key) {
			continue // skip duplicate boundaries caused by repeated keys
		}
		bounds = append(bounds, key)
	}
	return bounds
}

// rangeOf returns the index of the range containing the key: the number of
// boundaries that are <= key.
func rangeOf(bounds [][]float64, key []float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if lessKey(key, bounds[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ---------------------------------------------------------------------------
// Candidate matrix

// matrix holds the candidate cells of the (coarsened) join matrix together
// with per-row input, per-column input, and per-cell output estimates.
type matrix struct {
	rows, cols int
	candidate  []bool    // rows*cols, row-major
	rowInput   []float64 // estimated S-tuples per row range
	colInput   []float64 // estimated T-tuples per column range
	cellOutput []float64 // estimated output per candidate cell
}

func (m *matrix) at(i, j int) int { return i*m.cols + j }

// buildMatrix marks candidate cells and estimates their weights from the
// samples. A cell (i, j) is a candidate when the most-significant-dimension
// intervals of S-range i and T-range j are within band width of each other
// (conservative, as required for correctness) — output-sample hits are a
// subset of those cells.
func buildMatrix(ctx *partition.Context, sBounds, tBounds [][]float64, rows, cols int) *matrix {
	smp := ctx.Sample
	band := ctx.Band
	m := &matrix{
		rows:       rows,
		cols:       cols,
		candidate:  make([]bool, rows*cols),
		rowInput:   make([]float64, rows),
		colInput:   make([]float64, cols),
		cellOutput: make([]float64, rows*cols),
	}

	// Interval of the most significant dimension covered by each range.
	sLo, sHi := rangeIntervals(sBounds, rows)
	tLo, tHi := rangeIntervals(tBounds, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			// Ranges can contain a match when some s0 in [sLo, sHi] and t0 in
			// [tLo, tHi] satisfy s0−Low ≤ t0 ≤ s0+High.
			if tLo[j] <= sHi[i]+band.High[0] && tHi[j] >= sLo[i]-band.Low[0] {
				m.candidate[m.at(i, j)] = true
			}
		}
	}

	for i := 0; i < smp.S.Len(); i++ {
		m.rowInput[rangeOf(sBounds, smp.S.Key(i))] += 1 / smp.SRate
	}
	for i := 0; i < smp.T.Len(); i++ {
		m.colInput[rangeOf(tBounds, smp.T.Key(i))] += 1 / smp.TRate
	}
	for i := 0; i < smp.OutS.Len(); i++ {
		r := rangeOf(sBounds, smp.OutS.Key(i))
		c := rangeOf(tBounds, smp.OutT.Key(i))
		cell := m.at(r, c)
		m.candidate[cell] = true
		m.cellOutput[cell] += smp.OutWeight
	}
	return m
}

// rangeIntervals returns, per range, the interval of the most significant
// dimension it can contain under the row-major order. Range q covers keys in
// [bounds[q-1], bounds[q]), so its first-dimension values lie between the
// first components of the two boundary keys (unbounded at the ends).
func rangeIntervals(bounds [][]float64, n int) (lo, hi []float64) {
	lo = make([]float64, n)
	hi = make([]float64, n)
	for q := 0; q < n; q++ {
		if q == 0 {
			lo[q] = math.Inf(-1)
		} else {
			lo[q] = bounds[q-1][0]
		}
		if q == n-1 {
			hi[q] = math.Inf(1)
		} else {
			hi[q] = bounds[q][0]
		}
	}
	return lo, hi
}
