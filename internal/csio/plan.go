package csio

import (
	"bandjoin/internal/data"
)

// Plan is the CSIO assignment: each input tuple is routed to the join-matrix
// rectangles that cover a candidate cell of its row (S) or column (T).
type Plan struct {
	band    data.Band
	sBounds [][]float64
	tBounds [][]float64
	rects   []rect
	// sendS[i] lists the rectangles an S-tuple in row range i must reach;
	// sendT[j] the rectangles for a T-tuple in column range j.
	sendS [][]int
	sendT [][]int
	// estLoads are the optimizer's per-rectangle load estimates.
	estLoads []float64
}

func newPlan(band data.Band, sBounds, tBounds [][]float64, m *matrix, rects []rect) *Plan {
	sortRects(rects)
	p := &Plan{
		band:     band,
		sBounds:  sBounds,
		tBounds:  tBounds,
		rects:    rects,
		sendS:    make([][]int, m.rows),
		sendT:    make([][]int, m.cols),
		estLoads: make([]float64, len(rects)),
	}
	for k, r := range rects {
		p.estLoads[k] = r.load
		for i := r.rowLo; i <= r.rowHi && i < m.rows; i++ {
			if rowHasCandidate(m, i, r.colLo, r.colHi) {
				p.sendS[i] = append(p.sendS[i], k)
			}
		}
		for j := r.colLo; j <= r.colHi && j < m.cols; j++ {
			if colHasCandidate(m, j, r.rowLo, r.rowHi) {
				p.sendT[j] = append(p.sendT[j], k)
			}
		}
	}
	// Tuples whose row or column has no candidate cell cannot match anything
	// (the candidate test is conservative), but Definition 1 still assigns
	// every input tuple to at least one worker; route them to rectangle 0.
	// This cannot create duplicate results precisely because such tuples have
	// no join partner.
	if len(rects) > 0 {
		fallback := []int{0}
		for i := range p.sendS {
			if len(p.sendS[i]) == 0 {
				p.sendS[i] = fallback
			}
		}
		for j := range p.sendT {
			if len(p.sendT[j]) == 0 {
				p.sendT[j] = fallback
			}
		}
	}
	return p
}

func rowHasCandidate(m *matrix, row, colLo, colHi int) bool {
	for c := colLo; c <= colHi && c < m.cols; c++ {
		if m.candidate[m.at(row, c)] {
			return true
		}
	}
	return false
}

func colHasCandidate(m *matrix, col, rowLo, rowHi int) bool {
	for r := rowLo; r <= rowHi && r < m.rows; r++ {
		if m.candidate[m.at(r, col)] {
			return true
		}
	}
	return false
}

// NumPartitions implements partition.Plan.
func (p *Plan) NumPartitions() int { return len(p.rects) }

// Rectangles returns the number of cover rectangles (for diagnostics).
func (p *Plan) Rectangles() int { return len(p.rects) }

// EstimatedLoads implements partition.LoadEstimator.
func (p *Plan) EstimatedLoads() []float64 { return p.estLoads }

// AssignS implements partition.Plan.
func (p *Plan) AssignS(_ int64, key []float64, dst []int) []int {
	row := rangeOf(p.sBounds, key)
	if row >= len(p.sendS) {
		row = len(p.sendS) - 1
	}
	return append(dst, p.sendS[row]...)
}

// AssignT implements partition.Plan.
func (p *Plan) AssignT(_ int64, key []float64, dst []int) []int {
	col := rangeOf(p.tBounds, key)
	if col >= len(p.sendT) {
		col = len(p.sendT) - 1
	}
	return append(dst, p.sendT[col]...)
}
