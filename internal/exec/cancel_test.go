package exec

import (
	"context"
	"errors"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
)

// TestExecutePlanHonorsCancellation: a cancelled context must stop the
// in-process pipeline between its stages — shuffle passes and per-partition
// joins — and surface the context's error, on both shuffle modes.
func TestExecutePlanHonorsCancellation(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.4, 400, 3)
	band := data.Symmetric(0.3, 0.3)
	plan := planFor(t, core.NewRecPartS(), s, tt, band, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, serial := range []bool{false, true} {
		opts := DefaultOptions(3)
		opts.SerialShuffle = serial
		if _, err := ExecutePlan(ctx, plan, s, tt, band, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("ExecutePlan(serial=%v) with cancelled ctx: got %v, want context.Canceled", serial, err)
		}
	}
	if _, _, err := Shuffle(ctx, plan, s, tt, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("Shuffle with cancelled ctx: got %v, want context.Canceled", err)
	}

	// A live context changes nothing: the same plan must still execute.
	if _, err := ExecutePlan(context.Background(), plan, s, tt, band, DefaultOptions(3)); err != nil {
		t.Fatalf("ExecutePlan with live ctx: %v", err)
	}
}
