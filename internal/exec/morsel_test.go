package exec

import (
	"context"
	"fmt"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
	"bandjoin/internal/localjoin"
)

// skewedInputs builds a point-mass workload: roughly half of S sits on one
// point, so any spatial partitioner routes it to a single partition — the
// dominant-partition shape the morsel scheduler is for.
func skewedInputs(n int, seed int64) (*data.Relation, *data.Relation, data.Band) {
	s, t := data.ParetoPair(2, 1.5, n, seed)
	sk := data.NewRelation("S", 2)
	for i := 0; i < s.Len(); i++ {
		if i%2 == 0 {
			sk.Append(0.5, 0.5)
		} else {
			sk.Append(s.Key(i)...)
		}
	}
	return sk, t, data.Symmetric(0.2, 0.2)
}

// TestMorselMatchesPerPartitionOracle pins the tentpole acceptance criterion:
// for every morsel granularity — auto, pathological 1-row morsels, and fixed
// sizes — the morsel-driven reduce phase produces output bit-identical to the
// retained per-partition path (MorselRows < 0), on uniform and point-mass
// skewed inputs, across the local algorithms.
func TestMorselMatchesPerPartitionOracle(t *testing.T) {
	type inputs struct {
		s, t *data.Relation
		band data.Band
	}
	cases := map[string]inputs{}
	{
		s, tt, band := testInputs(600, 11)
		cases["pareto"] = inputs{s, tt, band}
		s, tt, band = skewedInputs(700, 17)
		cases["skewed"] = inputs{s, tt, band}
	}
	for caseName, in := range cases {
		for _, alg := range []localjoin.Algorithm{nil, localjoin.SortProbe{}, localjoin.GridSortScan{}, localjoin.NestedLoop{}} {
			algName := "auto"
			if alg != nil {
				algName = alg.Name()
			}
			t.Run(fmt.Sprintf("%s/%s", caseName, algName), func(t *testing.T) {
				opts := DefaultOptions(4)
				opts.CollectPairs = true
				opts.Algorithm = alg
				opts.Seed = 3
				opts.MorselRows = -1 // the per-partition oracle
				oracle, err := Run(core.NewRecPartS(), in.s, in.t, in.band, opts)
				if err != nil {
					t.Fatalf("oracle Run: %v", err)
				}
				if oracle.Output == 0 {
					t.Fatal("oracle produced no pairs; widen the band")
				}
				for _, rows := range []int{0, 1, 7, 64} {
					opts.MorselRows = rows
					got, err := Run(core.NewRecPartS(), in.s, in.t, in.band, opts)
					if err != nil {
						t.Fatalf("morsel Run (rows=%d): %v", rows, err)
					}
					if got.Output != oracle.Output || got.TotalInput != oracle.TotalInput ||
						got.Im != oracle.Im || got.Om != oracle.Om {
						t.Fatalf("rows=%d: accounting (out=%d I=%d Im=%d Om=%d) differs from oracle (out=%d I=%d Im=%d Om=%d)",
							rows, got.Output, got.TotalInput, got.Im, got.Om,
							oracle.Output, oracle.TotalInput, oracle.Im, oracle.Om)
					}
					if len(got.Pairs) != len(oracle.Pairs) {
						t.Fatalf("rows=%d: %d pairs, oracle %d", rows, len(got.Pairs), len(oracle.Pairs))
					}
					for i := range oracle.Pairs {
						if got.Pairs[i] != oracle.Pairs[i] {
							t.Fatalf("rows=%d: pair %d = %v, oracle %v", rows, i, got.Pairs[i], oracle.Pairs[i])
						}
					}
					if rows >= 0 && got.Morsels == 0 {
						t.Errorf("rows=%d: morsel path reported zero morsels", rows)
					}
					if got.StragglerRatio < 1.0 {
						t.Errorf("rows=%d: straggler ratio %f < 1", rows, got.StragglerRatio)
					}
				}
			})
		}
	}
}

// TestResolveMorselRows pins the knob convention and the auto-sizing bounds.
func TestResolveMorselRows(t *testing.T) {
	if got := ResolveMorselRows(128, 8, 1_000_000); got != 128 {
		t.Errorf("explicit size not honored: got %d", got)
	}
	// One worker: striping cannot help, auto collapses to whole partitions.
	if got := ResolveMorselRows(0, 1, 50_000); got != 50_000 {
		t.Errorf("parallelism 1 should yield whole-partition morsels, got %d", got)
	}
	// Auto is clamped to [autoMorselMin, autoMorselMax].
	if got := ResolveMorselRows(0, 4, 2_000); got != autoMorselMin {
		t.Errorf("small partitions should clamp to %d, got %d", autoMorselMin, got)
	}
	if got := ResolveMorselRows(0, 2, 100_000_000); got != autoMorselMax {
		t.Errorf("huge partitions should clamp to %d, got %d", autoMorselMax, got)
	}
	// The largest partition alone should split into ~8 morsels per worker.
	if got := ResolveMorselRows(0, 4, 1_000_000); got != 1_000_000/(autoMorselPerWorker*4) {
		t.Errorf("auto sizing off: got %d", got)
	}
	if got := ResolveMorselRows(0, 4, 0); got < 1 {
		t.Errorf("empty input must still yield a positive size, got %d", got)
	}
}

// TestRunMorselsStealAccounting forces a deterministic steal: one job split
// into two morsels where the first claimer blocks until the second morsel has
// run, so the second morsel is necessarily executed by the other worker.
func TestRunMorselsStealAccounting(t *testing.T) {
	release := make(chan struct{})
	jobs := []MorselJob{{
		Rows: 2,
		Run: func(lo, hi int, emit localjoin.Emit) int64 {
			if lo == 0 {
				<-release // hold the first morsel until the second finishes
			} else {
				close(release)
			}
			return int64(hi - lo)
		},
	}}
	res, stats, err := RunMorsels(context.Background(), jobs, 1, 2, false)
	if err != nil {
		t.Fatalf("RunMorsels: %v", err)
	}
	if res[0].Count != 2 {
		t.Errorf("count = %d, want 2", res[0].Count)
	}
	if stats.Morsels != 2 {
		t.Errorf("morsels = %d, want 2", stats.Morsels)
	}
	if stats.Steals != 1 {
		t.Errorf("steals = %d, want exactly 1 (two workers had to share the job)", stats.Steals)
	}
	if stats.StragglerRatio != 1.0 {
		t.Errorf("single-job straggler ratio = %f, want 1", stats.StragglerRatio)
	}
}

// TestRunMorselsStragglerRatio checks the skew gauge: one 300-row job among
// three 100-row jobs gives max/mean = 300/150 = 2.
func TestRunMorselsStragglerRatio(t *testing.T) {
	run := func(lo, hi int, _ localjoin.Emit) int64 { return int64(hi - lo) }
	jobs := []MorselJob{{Rows: 300, Run: run}, {Rows: 100, Run: run}, {Rows: 100, Run: run}, {Rows: 100, Run: run}, {Rows: 0, Run: run}}
	_, stats, err := RunMorsels(context.Background(), jobs, 50, 2, false)
	if err != nil {
		t.Fatalf("RunMorsels: %v", err)
	}
	if stats.StragglerRatio != 2.0 {
		t.Errorf("straggler ratio = %f, want 2 (empty jobs excluded from the mean)", stats.StragglerRatio)
	}
	if stats.Morsels != 12 {
		t.Errorf("morsels = %d, want 12", stats.Morsels)
	}
}

// TestRunMorselsCancel: a canceled context stops the schedule at the next
// claim and surfaces the context error.
func TestRunMorselsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []MorselJob{{Rows: 1000, Run: func(lo, hi int, _ localjoin.Emit) int64 { return 0 }}}
	if _, _, err := RunMorsels(ctx, jobs, 10, 2, false); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMorselSteadyStateAllocs asserts the CI allocation criterion for the
// morsel hot path: after the prepared structure's scratch pools are warm, the
// per-morsel cost of a count-only schedule is allocation-free — the fixed
// per-RunMorsels setup (queue, slots, worker goroutines) amortizes to ~0 over
// the morsels of a realistic partition.
func TestMorselSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; steady state not observable")
	}
	s, tt := data.ParetoPair(3, 1.5, 20_000, 42)
	band := data.Uniform(3, 0.001)
	prep := localjoin.Prepare(localjoin.SortProbe{}, s, tt, band)
	rp := prep.(localjoin.RangeProber)
	jobs := []MorselJob{{
		Rows: s.Len(),
		Run:  func(lo, hi int, emit localjoin.Emit) int64 { return rp.ProbeRange(s, lo, hi, emit) },
	}}
	const rows = 64
	nMorsels := (s.Len() + rows - 1) / rows
	run := func() {
		if _, _, err := RunMorsels(context.Background(), jobs, rows, 4, false); err != nil {
			t.Fatalf("RunMorsels: %v", err)
		}
	}
	run() // warm the scratch pools
	perRun := testing.AllocsPerRun(5, run)
	perMorsel := perRun / float64(nMorsels)
	if perMorsel > 0.1 {
		t.Errorf("morsel hot path allocates %.3f per morsel (%.0f per run over %d morsels), want ~0",
			perMorsel, perRun, nMorsels)
	}
}
