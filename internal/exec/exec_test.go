package exec

import (
	"context"
	"math/rand"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/csio"
	"bandjoin/internal/data"
	"bandjoin/internal/grid"
	"bandjoin/internal/iejoin"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/onebucket"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// bruteForce computes the reference result set.
func bruteForce(s, t *data.Relation, band data.Band) map[Pair]int {
	out := make(map[Pair]int)
	for i := 0; i < s.Len(); i++ {
		for j := 0; j < t.Len(); j++ {
			if band.Matches(s.Key(i), t.Key(j)) {
				out[Pair{S: int64(i), T: int64(j)}]++
			}
		}
	}
	return out
}

// checkExactlyOnce verifies that the distributed execution produced every
// reference pair exactly once and nothing else (Definition 1 of the paper).
func checkExactlyOnce(t *testing.T, res *Result, want map[Pair]int) {
	t.Helper()
	got := make(map[Pair]int)
	for _, p := range res.Pairs {
		got[p]++
	}
	for p, n := range got {
		if n > 1 {
			t.Fatalf("pair %v produced %d times, want exactly once", p, n)
		}
		if want[p] == 0 {
			t.Fatalf("pair %v produced but does not satisfy the band condition", p)
		}
	}
	for p := range want {
		if got[p] == 0 {
			t.Fatalf("pair %v missing from the distributed result", p)
		}
	}
	if int64(len(want)) != res.Output {
		t.Fatalf("output count = %d, want %d", res.Output, len(want))
	}
}

// testInputs builds a small skewed 2D workload.
func testInputs(n int, seed int64) (*data.Relation, *data.Relation, data.Band) {
	s, t := data.ParetoPair(2, 1.5, n, seed)
	band := data.Symmetric(0.5, 0.5)
	return s, t, band
}

func allPartitioners() []partition.Partitioner {
	return []partition.Partitioner{
		core.NewDefault(),
		core.NewRecPartS(),
		onebucket.New(),
		grid.New(),
		grid.NewStar(),
		csio.New(),
		iejoin.New(),
	}
}

func TestAllPartitionersProduceExactResult(t *testing.T) {
	s, tt, band := testInputs(600, 11)
	want := bruteForce(s, tt, band)
	if len(want) == 0 {
		t.Fatal("test workload produced no join results; widen the band")
	}
	for _, pt := range allPartitioners() {
		pt := pt
		t.Run(pt.Name(), func(t *testing.T) {
			opts := DefaultOptions(5)
			opts.CollectPairs = true
			opts.Seed = 3
			res, err := Run(pt, s, tt, band, opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			checkExactlyOnce(t, res, want)
			if res.TotalInput < int64(s.Len()+tt.Len()) {
				t.Errorf("total input %d below lower bound %d", res.TotalInput, s.Len()+tt.Len())
			}
		})
	}
}

func TestAllPartitionersEquiJoin(t *testing.T) {
	// Equi-join (band width 0) with integer keys so matches exist. Grid-ε is
	// undefined for band width zero (as in the paper), so it is skipped.
	rng := rand.New(rand.NewSource(5))
	s := data.NewRelation("S", 1)
	tt := data.NewRelation("T", 1)
	for i := 0; i < 500; i++ {
		s.Append(float64(rng.Intn(40)))
		tt.Append(float64(rng.Intn(40)))
	}
	band := data.Symmetric(0)
	want := bruteForce(s, tt, band)
	for _, pt := range allPartitioners() {
		if pt.Name() == "Grid-eps" || pt.Name() == "Grid*" {
			continue
		}
		pt := pt
		t.Run(pt.Name(), func(t *testing.T) {
			opts := DefaultOptions(4)
			opts.CollectPairs = true
			res, err := Run(pt, s, tt, band, opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			checkExactlyOnce(t, res, want)
		})
	}
}

func TestGridRejectsEquiJoin(t *testing.T) {
	s, tt, _ := testInputs(200, 3)
	band := data.Symmetric(0, 0)
	_, err := Run(grid.New(), s, tt, band, DefaultOptions(4))
	if err == nil {
		t.Fatal("Grid-ε accepted a zero band width; the paper states it is undefined for equi-joins")
	}
}

func TestRunAccountingConsistency(t *testing.T) {
	s, tt, band := testInputs(800, 21)
	res, err := Run(core.NewDefault(), s, tt, band, DefaultOptions(6))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var wi, wo int64
	for w := range res.WorkerInput {
		wi += res.WorkerInput[w]
		wo += res.WorkerOutput[w]
	}
	if wi != res.TotalInput {
		t.Errorf("sum of worker inputs %d != total input %d", wi, res.TotalInput)
	}
	if wo != res.Output {
		t.Errorf("sum of worker outputs %d != total output %d", wo, res.Output)
	}
	if res.Im > res.TotalInput || res.Om > res.Output {
		t.Errorf("max-worker input/output exceed totals: Im=%d Om=%d", res.Im, res.Om)
	}
	if res.MaxLoad < res.LowerBoundLoad/float64(res.Workers) {
		t.Errorf("max load %f implausibly small vs lower bound %f", res.MaxLoad, res.LowerBoundLoad)
	}
	if res.LoadOverhead < 0 || res.DupOverhead < 0 {
		t.Errorf("overheads must be non-negative: dup=%f load=%f", res.DupOverhead, res.LoadOverhead)
	}
}

func TestEstimateAgreesRoughlyWithExecution(t *testing.T) {
	s, tt, band := testInputs(2000, 31)
	opts := DefaultOptions(8)
	opts.Seed = 1
	for _, pt := range []partition.Partitioner{core.NewRecPartS(), onebucket.New()} {
		run, err := Run(pt, s, tt, band, opts)
		if err != nil {
			t.Fatalf("Run(%s): %v", pt.Name(), err)
		}
		est, err := Estimate(pt, s, tt, band, opts)
		if err != nil {
			t.Fatalf("Estimate(%s): %v", pt.Name(), err)
		}
		ratio := float64(est.TotalInput) / float64(run.TotalInput)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: estimated total input %d is far from executed %d", pt.Name(), est.TotalInput, run.TotalInput)
		}
	}
}

func TestExecutePlanWithExplicitAlgorithms(t *testing.T) {
	s, tt, band := testInputs(300, 41)
	want := bruteForce(s, tt, band)
	for _, alg := range []localjoin.Algorithm{localjoin.NestedLoop{}, localjoin.SortProbe{}, localjoin.GridSortScan{}} {
		opts := DefaultOptions(3)
		opts.Algorithm = alg
		opts.CollectPairs = true
		res, err := Run(onebucket.New(), s, tt, band, opts)
		if err != nil {
			t.Fatalf("Run with %s: %v", alg.Name(), err)
		}
		checkExactlyOnce(t, res, want)
	}
}

// TestPlanQueryComposesToRun: the staged pipeline (sample.Draw → PlanQuery →
// ExecutePlan) must reproduce Run's accounting and pairs exactly — Run is the
// one-shot composition the engine's cached stages are pinned against.
func TestPlanQueryComposesToRun(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.4, 800, 7)
	band := data.Symmetric(0.25, 0.25)
	opts := DefaultOptions(4)
	opts.CollectPairs = true
	opts.Seed = 3

	direct, err := Run(core.NewRecPartS(), s, tt, band, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	smp, err := sample.Draw(s, tt, band, opts.Sampling)
	if err != nil {
		t.Fatalf("Draw: %v", err)
	}
	prep, err := PlanQuery(core.NewRecPartS(), smp, band, opts)
	if err != nil {
		t.Fatalf("PlanQuery: %v", err)
	}
	if prep.Partitioner != direct.Partitioner {
		t.Errorf("partitioner name %q, want %q", prep.Partitioner, direct.Partitioner)
	}
	staged, err := ExecutePlan(context.Background(), prep.Plan, s, tt, band, opts)
	if err != nil {
		t.Fatalf("ExecutePlan: %v", err)
	}
	if staged.TotalInput != direct.TotalInput || staged.Output != direct.Output ||
		staged.Im != direct.Im || staged.Om != direct.Om || staged.Partitions != direct.Partitions {
		t.Errorf("staged (I=%d out=%d Im=%d Om=%d parts=%d) differs from Run (I=%d out=%d Im=%d Om=%d parts=%d)",
			staged.TotalInput, staged.Output, staged.Im, staged.Om, staged.Partitions,
			direct.TotalInput, direct.Output, direct.Im, direct.Om, direct.Partitions)
	}
	if len(staged.Pairs) != len(direct.Pairs) {
		t.Fatalf("pair counts differ: staged %d, Run %d", len(staged.Pairs), len(direct.Pairs))
	}
	for i := range staged.Pairs {
		if staged.Pairs[i] != direct.Pairs[i] {
			t.Fatalf("pair %d differs: staged %v, Run %v", i, staged.Pairs[i], direct.Pairs[i])
		}
	}
}

// TestExecuteShuffledMatchesExecutePlan: running the reduce phase over
// pre-shuffled retained partitions must match the shuffle-included path.
func TestExecuteShuffledMatchesExecutePlan(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.4, 600, 13)
	band := data.Symmetric(0.3, 0.3)
	plan := planFor(t, core.NewRecPartS(), s, tt, band, 3)
	opts := DefaultOptions(3)
	opts.CollectPairs = true

	full, err := ExecutePlan(context.Background(), plan, s, tt, band, opts)
	if err != nil {
		t.Fatalf("ExecutePlan: %v", err)
	}
	parts, total, err := Shuffle(context.Background(), plan, s, tt, 0)
	if err != nil {
		t.Fatalf("Shuffle: %v", err)
	}
	for round := 0; round < 2; round++ {
		warm, err := ExecuteShuffled(context.Background(), plan, parts, total, s.Len(), tt.Len(), band, opts)
		if err != nil {
			t.Fatalf("ExecuteShuffled round %d: %v", round, err)
		}
		if warm.TotalInput != full.TotalInput || warm.Output != full.Output ||
			warm.Im != full.Im || warm.Om != full.Om {
			t.Errorf("round %d: warm (I=%d out=%d Im=%d Om=%d) differs from full (I=%d out=%d Im=%d Om=%d)",
				round, warm.TotalInput, warm.Output, warm.Im, warm.Om,
				full.TotalInput, full.Output, full.Im, full.Om)
		}
		if len(warm.Pairs) != len(full.Pairs) {
			t.Fatalf("round %d: pair counts differ: %d vs %d", round, len(warm.Pairs), len(full.Pairs))
		}
		for i := range warm.Pairs {
			if warm.Pairs[i] != full.Pairs[i] {
				t.Fatalf("round %d: pair %d differs", round, i)
			}
		}
	}
}
