package exec

import (
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

func TestEstimatePartitionLoadsCoversAllPartitions(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 3000, 3)
	band := data.Symmetric(0.1, 0.1)
	smp, err := sample.Draw(s, tt, band, sample.Options{InputSampleSize: 1000, OutputSampleSize: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &partition.Context{Band: band, Workers: 6, Sample: smp, Model: costmodel.Default(), Seed: 1}
	plan, err := core.NewDefault().Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	loads := EstimatePartitionLoads(plan, ctx)
	if len(loads) < plan.NumPartitions() {
		t.Fatalf("loads cover %d partitions, plan has %d", len(loads), plan.NumPartitions())
	}
	total := 0.0
	for _, l := range loads {
		if l < 0 {
			t.Fatal("negative estimated load")
		}
		total += l
	}
	// Total estimated load must at least account for the undivided input.
	minTotal := ctx.Model.Beta2 * float64(s.Len()+tt.Len()) * 0.9
	if total < minTotal {
		t.Errorf("total estimated load %g is implausibly small (< %g)", total, minTotal)
	}
}

func TestEstimateRejectsBadInputs(t *testing.T) {
	s, tt := data.ParetoPair(1, 1.5, 300, 5)
	if _, err := Estimate(core.NewDefault(), s, tt, data.Symmetric(0.1), Options{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Estimate(core.NewDefault(), s, tt, data.Band{Low: []float64{-1}, High: []float64{1}}, Options{Workers: 2}); err == nil {
		t.Error("invalid band accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	s, tt := data.ParetoPair(1, 1.5, 300, 5)
	if _, err := Run(core.NewDefault(), s, tt, data.Symmetric(0.1), Options{Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Run(core.NewDefault(), s, tt, data.Band{Low: []float64{1}, High: []float64{1, 2}}, Options{Workers: 2}); err == nil {
		t.Error("invalid band accepted")
	}
}
