package exec

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"bandjoin/internal/data"
	"bandjoin/internal/partition"
)

// The map phase (shuffle) routes every input tuple through the plan's
// assignment into per-partition buffers. Two implementations exist:
//
//   - serialShuffle is the straightforward single-threaded reference: one pass
//     over S then T, appending to growable per-partition relations. It is kept
//     behind Options.SerialShuffle as the correctness oracle the equivalence
//     tests compare against, and as the baseline the pipeline benchmark
//     measures speedups over.
//
//   - parallelShuffle shards S and T across goroutines and builds every
//     partition in exactly-sized flat buffers with two passes: pass 1 records
//     each tuple's partition assignments and counts per-(shard, partition)
//     occupancy; a prefix sum over the count matrix then yields the exact row
//     every (shard, partition) pair writes to; pass 2 replays the recorded
//     assignments and copies keys and tuple IDs straight to their final
//     locations. Shards write disjoint row ranges, so the write path needs no
//     locks and no append growth, and partition contents come out in global
//     tuple order — bit-identical to the serial shuffle.
//
// Plans must be safe for concurrent Assign calls (all in-repo plans are; see
// grid.Plan for the one that needed internal synchronization).

// PartitionInput is the data shuffled to one partition, as returned by
// Shuffle. The relations and ID slices may alias a shared arena; callers must
// not append to them.
type PartitionInput struct {
	S    *data.Relation
	SIDs []int64
	T    *data.Relation
	TIDs []int64
}

// Tuples returns the partition's input size |S_p| + |T_p|.
func (p *PartitionInput) Tuples() int { return p.S.Len() + p.T.Len() }

// Presort reorders the partition's rows into ascending dim-0 key order (ties
// kept in row order), returning a new PartitionInput that owns its storage.
// Every sort-based local join algorithm begins by sorting its inputs on the
// first join attribute; retained partitions are presorted once at retention
// time so each warm query's internal sort finds already-sorted input and
// degenerates to a linear scan — the registry's analogue of an index built at
// load time. The result set is unchanged (joins are order-independent, and
// tuple IDs travel with their rows).
func (p *PartitionInput) Presort() *PartitionInput {
	s, sIDs := sortByDim0(p.S, p.SIDs)
	t, tIDs := sortByDim0(p.T, p.TIDs)
	return &PartitionInput{S: s, SIDs: sIDs, T: t, TIDs: tIDs}
}

// sortByDim0 returns the relation's rows (and their parallel tuple IDs)
// reordered by ascending first-dimension key, stably.
func sortByDim0(rel *data.Relation, ids []int64) (*data.Relation, []int64) {
	n := rel.Len()
	if n < 2 {
		return rel, ids
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return rel.KeyAt(int(perm[a]), 0) < rel.KeyAt(int(perm[b]), 0)
	})
	dims := rel.Dims()
	keys := make([]float64, n*dims)
	outIDs := make([]int64, n)
	for row, src := range perm {
		copy(keys[row*dims:(row+1)*dims], rel.Key(int(src)))
		outIDs[row] = ids[src]
	}
	return data.NewRelationFromKeys(rel.Name(), dims, keys), outIDs
}

// PresortPartitions presorts every non-nil partition in place (slice entries
// are replaced; the underlying arenas are not mutated), with at most
// `parallelism` concurrent sorts (< 1 selects GOMAXPROCS).
func PresortPartitions(parts []*PartitionInput, parallelism int) {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for pid, p := range parts {
		if p == nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(pid int, p *PartitionInput) {
			defer wg.Done()
			defer func() { <-sem }()
			parts[pid] = p.Presort()
		}(pid, p)
	}
	wg.Wait()
}

// Shuffle routes every tuple of s and t through the plan's assignment with the
// parallel two-pass shuffle and returns the per-partition inputs plus the
// total routed tuple count I (input including duplicates). Entries for empty
// partitions are nil. parallelism bounds the shard goroutines; values < 1
// select GOMAXPROCS. It is the routing stage the RPC coordinator
// (internal/cluster) shares with the in-process executor. Cancelling ctx
// aborts the shuffle between its two passes, returning ctx.Err().
func Shuffle(ctx context.Context, plan partition.Plan, s, t *data.Relation, parallelism int) ([]*PartitionInput, int64, error) {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return parallelShuffle(ctx, plan, s, t, parallelism)
}

// ShuffleDelta routes only appended rows through the plan's assignment,
// returning per-partition delta inputs whose tuple IDs are offset by the base
// cardinalities (sBase rows of S and tBase rows of T existed before the
// append), so a delta shuffle's IDs are exactly what a full-relation shuffle
// of the extended inputs would have assigned those rows. Either delta may be
// empty. The returned partitions own their arenas (nothing aliases the
// deltas), so callers may append them into retained partition storage.
func ShuffleDelta(ctx context.Context, plan partition.Plan, deltaS, deltaT *data.Relation, sBase, tBase int, parallelism int) ([]*PartitionInput, int64, error) {
	// Route with the rows' global IDs: plans that consult the tuple ID
	// (1-Bucket's randomized row/column choice) must see the same ID a
	// full-relation shuffle of the extended input would pass them.
	shifted := &offsetIDPlan{Plan: plan, sOff: int64(sBase), tOff: int64(tBase)}
	parts, totalInput, err := Shuffle(ctx, shifted, deltaS, deltaT, parallelism)
	if err != nil {
		return nil, 0, err
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for i := range p.SIDs {
			p.SIDs[i] += int64(sBase)
		}
		for i := range p.TIDs {
			p.TIDs[i] += int64(tBase)
		}
	}
	return parts, totalInput, nil
}

// offsetIDPlan rebases the tuple IDs a delta shuffle passes to the wrapped
// plan's assignment. Only the routing surface Shuffle touches (AssignS,
// AssignT, NumPartitions via embedding) is forwarded.
type offsetIDPlan struct {
	partition.Plan
	sOff, tOff int64
}

func (o *offsetIDPlan) AssignS(id int64, key []float64, dst []int) []int {
	return o.Plan.AssignS(id+o.sOff, key, dst)
}

func (o *offsetIDPlan) AssignT(id int64, key []float64, dst []int) []int {
	return o.Plan.AssignT(id+o.tOff, key, dst)
}

// ShuffleSerial is the retained single-threaded reference shuffle, exported as
// the correctness oracle Shuffle is compared against. The parts slice is
// pre-sized from plan.NumPartitions; only plans that discover partitions
// lazily during assignment (Grid-ε) ever grow it.
func ShuffleSerial(plan partition.Plan, s, t *data.Relation) ([]*PartitionInput, int64) {
	parts := make([]*PartitionInput, plan.NumPartitions())
	getPart := func(id int) *PartitionInput {
		for id >= len(parts) {
			parts = append(parts, nil)
		}
		if parts[id] == nil {
			parts[id] = &PartitionInput{
				S: data.NewRelation("S-part", s.Dims()),
				T: data.NewRelation("T-part", t.Dims()),
			}
		}
		return parts[id]
	}
	var dst []int
	var totalInput int64
	for i := 0; i < s.Len(); i++ {
		key := s.Key(i)
		dst = plan.AssignS(int64(i), key, dst[:0])
		for _, pid := range dst {
			p := getPart(pid)
			p.S.AppendKey(key)
			p.SIDs = append(p.SIDs, int64(i))
		}
		totalInput += int64(len(dst))
	}
	for i := 0; i < t.Len(); i++ {
		key := t.Key(i)
		dst = plan.AssignT(int64(i), key, dst[:0])
		for _, pid := range dst {
			p := getPart(pid)
			p.T.AppendKey(key)
			p.TIDs = append(p.TIDs, int64(i))
		}
		totalInput += int64(len(dst))
	}
	return parts, totalInput
}

// shardAssignments records what one shard's counting pass learned about one
// relation: the concatenated partition ids of its tuples (in tuple order), how
// many partitions each tuple went to, and the per-partition occupancy.
type shardAssignments struct {
	pids    []int32 // partition ids, concatenated in tuple order
	degrees []int32 // per tuple, number of entries in pids
	counts  []int   // per partition, number of tuples this shard sends there
}

// assignFunc is plan.AssignS or plan.AssignT.
type assignFunc func(id int64, key []float64, dst []int) []int

// countShard runs the counting pass of one shard over rel[lo:hi). numParts
// pre-sizes the occupancy counters; lazily-discovering plans may report more
// partitions as they go, growing the counters past it.
func countShard(assign assignFunc, rel *data.Relation, lo, hi, numParts int, sa *shardAssignments) {
	dst := make([]int, 0, 16)
	sa.counts = make([]int, numParts)
	sa.degrees = make([]int32, 0, hi-lo)
	sa.pids = make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		dst = assign(int64(i), rel.Key(i), dst[:0])
		sa.degrees = append(sa.degrees, int32(len(dst)))
		for _, pid := range dst {
			for pid >= len(sa.counts) {
				sa.counts = append(sa.counts, make([]int, pid+1-len(sa.counts))...)
			}
			sa.counts[pid]++
			sa.pids = append(sa.pids, int32(pid))
		}
	}
}

// writeShard replays one shard's recorded assignments, copying keys and tuple
// IDs to their pre-computed rows. off[pid] is the next global row this shard
// writes for partition pid; rows of different shards are disjoint, so the
// writes need no synchronization.
func writeShard(rel *data.Relation, lo, hi int, sa *shardAssignments, off []int, keys []float64, ids []int64) {
	dims := rel.Dims()
	sp := 0
	for i := lo; i < hi; i++ {
		key := rel.Key(i)
		for e := int32(0); e < sa.degrees[i-lo]; e++ {
			pid := sa.pids[sp]
			sp++
			row := off[pid]
			off[pid] = row + 1
			copy(keys[row*dims:(row+1)*dims], key)
			ids[row] = int64(i)
		}
	}
}

// shardRanges splits n tuples into at most shards contiguous ranges.
func shardRanges(n, shards int) [][2]int {
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	out := make([][2]int, 0, shards)
	for k := 0; k < shards; k++ {
		lo := n * k / shards
		hi := n * (k + 1) / shards
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// sideBuffers aggregates the two-pass bookkeeping of one relation side.
type sideBuffers struct {
	shards  [][2]int
	assigns []shardAssignments
	totals  []int     // per partition, total tuple count
	starts  []int     // per partition, first row in the arena
	offsets [][]int   // per shard, next row per partition (consumed by pass 2)
	keys    []float64 // arena: all partitions' keys, row-major
	ids     []int64   // arena: all partitions' tuple IDs
}

// finishCounts turns per-shard counts into per-partition totals and exact
// per-(shard, partition) write offsets over a single shared arena.
func (sb *sideBuffers) finishCounts(numParts, dims int) int64 {
	sb.totals = make([]int, numParts)
	for k := range sb.assigns {
		for pid, c := range sb.assigns[k].counts {
			sb.totals[pid] += c
		}
	}
	var total int64
	sb.starts = make([]int, numParts+1)
	for pid, c := range sb.totals {
		sb.starts[pid+1] = sb.starts[pid] + c
		total += int64(c)
	}
	cum := make([]int, numParts)
	copy(cum, sb.starts[:numParts])
	sb.offsets = make([][]int, len(sb.assigns))
	for k := range sb.assigns {
		off := make([]int, numParts)
		copy(off, cum)
		sb.offsets[k] = off
		for pid, c := range sb.assigns[k].counts {
			cum[pid] += c
		}
	}
	sb.keys = make([]float64, int(total)*dims)
	sb.ids = make([]int64, total)
	return total
}

// partitionRows returns the rows of partition pid as zero-copy slices of the
// arena. Capacities are clamped so a later Append on the wrapped relation
// reallocates instead of silently overwriting the next partition's rows.
func (sb *sideBuffers) partitionRows(pid, dims int) ([]float64, []int64) {
	lo, hi := sb.starts[pid], sb.starts[pid+1]
	return sb.keys[lo*dims : hi*dims : hi*dims], sb.ids[lo:hi:hi]
}

// parallelShuffle shards each input into at most `shards` ranges and builds
// every partition with the two-pass count/prefix-sum/write scheme described
// above; at most `shards` goroutines run at any time across both relations.
func parallelShuffle(ctx context.Context, plan partition.Plan, s, t *data.Relation, shards int) ([]*PartitionInput, int64, error) {
	if shards < 1 {
		shards = 1
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	var sb, tb sideBuffers
	sb.shards = shardRanges(s.Len(), shards)
	tb.shards = shardRanges(t.Len(), shards)
	sb.assigns = make([]shardAssignments, len(sb.shards))
	tb.assigns = make([]shardAssignments, len(tb.shards))
	planned := plan.NumPartitions()

	// run executes fn for every S- and T-shard, at most `shards` at a time
	// across both sides, so Options.Parallelism truly bounds the concurrency
	// (Parallelism = 1 processes the shards strictly one after another).
	run := func(fn func(side *sideBuffers, isS bool, k int)) {
		var wg sync.WaitGroup
		sem := make(chan struct{}, shards)
		for _, side := range []struct {
			sb  *sideBuffers
			isS bool
		}{{&sb, true}, {&tb, false}} {
			for k := range side.sb.shards {
				wg.Add(1)
				sem <- struct{}{}
				go func(sb *sideBuffers, isS bool, k int) {
					defer wg.Done()
					defer func() { <-sem }()
					fn(sb, isS, k)
				}(side.sb, side.isS, k)
			}
		}
		wg.Wait()
	}

	// Pass 1: count and record assignments, in parallel over shards.
	run(func(side *sideBuffers, isS bool, k int) {
		r := side.shards[k]
		if isS {
			countShard(plan.AssignS, s, r[0], r[1], planned, &side.assigns[k])
		} else {
			countShard(plan.AssignT, t, r[0], r[1], planned, &side.assigns[k])
		}
	})

	// Pass 1 is the expensive half (every Assign call); honor a cancellation
	// that arrived during it before committing to the arena writes of pass 2.
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	// All partitions are known now, even for lazily-discovering plans.
	numParts := plan.NumPartitions()
	for k := range sb.assigns {
		if n := len(sb.assigns[k].counts); n > numParts {
			numParts = n
		}
	}
	for k := range tb.assigns {
		if n := len(tb.assigns[k].counts); n > numParts {
			numParts = n
		}
	}

	// Prefix sums: exact write offsets and exactly-sized arenas.
	totalInput := sb.finishCounts(numParts, s.Dims()) + tb.finishCounts(numParts, t.Dims())

	// Pass 2: write keys and IDs to their final rows, in parallel over shards.
	run(func(side *sideBuffers, isS bool, k int) {
		r := side.shards[k]
		if isS {
			writeShard(s, r[0], r[1], &side.assigns[k], side.offsets[k], side.keys, side.ids)
		} else {
			writeShard(t, r[0], r[1], &side.assigns[k], side.offsets[k], side.keys, side.ids)
		}
	})

	parts := make([]*PartitionInput, numParts)
	for pid := 0; pid < numParts; pid++ {
		if sb.totals[pid] == 0 && tb.totals[pid] == 0 {
			continue
		}
		sKeys, sIDs := sb.partitionRows(pid, s.Dims())
		tKeys, tIDs := tb.partitionRows(pid, t.Dims())
		parts[pid] = &PartitionInput{
			S:    data.NewRelationFromKeys("S-part", s.Dims(), sKeys),
			SIDs: sIDs,
			T:    data.NewRelationFromKeys("T-part", t.Dims(), tKeys),
			TIDs: tIDs,
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return parts, totalInput, nil
}
