package exec

import (
	"context"
	"fmt"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/grid"
	"bandjoin/internal/onebucket"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// planFor runs one partitioner's optimization phase on the given workload.
func planFor(t *testing.T, pt partition.Partitioner, s, tt *data.Relation, band data.Band, workers int) partition.Plan {
	t.Helper()
	smp, err := sample.Draw(s, tt, band, sample.DefaultOptions())
	if err != nil {
		t.Fatalf("sampling: %v", err)
	}
	ctx := &partition.Context{Band: band, Workers: workers, Sample: smp, Model: costmodel.Default(), Seed: 3}
	plan, err := pt.Plan(ctx)
	if err != nil {
		t.Fatalf("%s optimization: %v", pt.Name(), err)
	}
	return plan
}

// equalParts verifies two shuffle outcomes are bit-identical: same number of
// partitions, same per-partition sizes, and the same keys and tuple IDs in the
// same order.
func equalParts(t *testing.T, serial, par []*PartitionInput) {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("partition count: serial %d, parallel %d", len(serial), len(par))
	}
	for pid := range serial {
		sp, pp := serial[pid], par[pid]
		if (sp == nil) != (pp == nil) {
			t.Fatalf("partition %d: serial nil=%v, parallel nil=%v", pid, sp == nil, pp == nil)
		}
		if sp == nil {
			continue
		}
		if sp.S.Len() != pp.S.Len() || sp.T.Len() != pp.T.Len() {
			t.Fatalf("partition %d sizes: serial (%d,%d), parallel (%d,%d)",
				pid, sp.S.Len(), sp.T.Len(), pp.S.Len(), pp.T.Len())
		}
		for i := 0; i < sp.S.Len(); i++ {
			if sp.SIDs[i] != pp.SIDs[i] {
				t.Fatalf("partition %d S row %d: serial id %d, parallel id %d", pid, i, sp.SIDs[i], pp.SIDs[i])
			}
			for d := 0; d < sp.S.Dims(); d++ {
				if sp.S.KeyAt(i, d) != pp.S.KeyAt(i, d) {
					t.Fatalf("partition %d S row %d dim %d: keys differ", pid, i, d)
				}
			}
		}
		for i := 0; i < sp.T.Len(); i++ {
			if sp.TIDs[i] != pp.TIDs[i] {
				t.Fatalf("partition %d T row %d: serial id %d, parallel id %d", pid, i, sp.TIDs[i], pp.TIDs[i])
			}
			for d := 0; d < sp.T.Dims(); d++ {
				if sp.T.KeyAt(i, d) != pp.T.KeyAt(i, d) {
					t.Fatalf("partition %d T row %d dim %d: keys differ", pid, i, d)
				}
			}
		}
	}
}

func equivalencePartitioners() []partition.Partitioner {
	return []partition.Partitioner{core.NewRecPartS(), onebucket.New(), grid.New()}
}

func equivalenceBands() map[string]data.Band {
	return map[string]data.Band{
		"symmetric":  data.Symmetric(0.4, 0.4),
		"asymmetric": data.Asymmetric([]float64{0.5, 0.15}, []float64{0.1, 0.35}),
	}
}

// TestShuffleEquivalence checks that the parallel two-pass shuffle produces
// bit-identical partitions to the serial reference for every partitioner and
// both symmetric and asymmetric bands, at several shard counts. The serial
// shuffle runs first so that lazily-discovering plans (Grid-ε) number their
// partitions deterministically before the parallel run replays them.
func TestShuffleEquivalence(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 900, 17)
	for bandName, band := range equivalenceBands() {
		for _, pt := range equivalencePartitioners() {
			plan := planFor(t, pt, s, tt, band, 6)
			serialParts, serialTotal := ShuffleSerial(plan, s, tt)
			for _, shards := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", pt.Name(), bandName, shards), func(t *testing.T) {
					parParts, parTotal, err := parallelShuffle(context.Background(), plan, s, tt, shards)
					if err != nil {
						t.Fatalf("parallelShuffle: %v", err)
					}
					if serialTotal != parTotal {
						t.Fatalf("total input: serial %d, parallel %d", serialTotal, parTotal)
					}
					equalParts(t, serialParts, parParts)
				})
			}
		}
	}
}

// TestExecutePlanSerialVsParallel checks the end-to-end accounting: both
// shuffle modes must agree on every quantity the paper evaluates and on the
// exact (sorted) result pair set.
func TestExecutePlanSerialVsParallel(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 700, 29)
	for bandName, band := range equivalenceBands() {
		for _, pt := range equivalencePartitioners() {
			t.Run(pt.Name()+"/"+bandName, func(t *testing.T) {
				plan := planFor(t, pt, s, tt, band, 5)
				serialOpts := DefaultOptions(5)
				serialOpts.SerialShuffle = true
				serialOpts.CollectPairs = true
				serialRes, err := ExecutePlan(context.Background(), plan, s, tt, band, serialOpts)
				if err != nil {
					t.Fatalf("serial ExecutePlan: %v", err)
				}
				parOpts := DefaultOptions(5)
				parOpts.CollectPairs = true
				parOpts.Parallelism = 7
				parRes, err := ExecutePlan(context.Background(), plan, s, tt, band, parOpts)
				if err != nil {
					t.Fatalf("parallel ExecutePlan: %v", err)
				}
				if serialRes.TotalInput != parRes.TotalInput {
					t.Errorf("TotalInput: serial %d, parallel %d", serialRes.TotalInput, parRes.TotalInput)
				}
				if serialRes.Output != parRes.Output {
					t.Errorf("Output: serial %d, parallel %d", serialRes.Output, parRes.Output)
				}
				if serialRes.Partitions != parRes.Partitions {
					t.Errorf("Partitions: serial %d, parallel %d", serialRes.Partitions, parRes.Partitions)
				}
				if serialRes.Im != parRes.Im || serialRes.Om != parRes.Om {
					t.Errorf("max-worker accounting: serial (Im=%d,Om=%d), parallel (Im=%d,Om=%d)",
						serialRes.Im, serialRes.Om, parRes.Im, parRes.Om)
				}
				if len(serialRes.Pairs) != len(parRes.Pairs) {
					t.Fatalf("pair count: serial %d, parallel %d", len(serialRes.Pairs), len(parRes.Pairs))
				}
				for i := range serialRes.Pairs {
					if serialRes.Pairs[i] != parRes.Pairs[i] {
						t.Fatalf("pair %d: serial %v, parallel %v", i, serialRes.Pairs[i], parRes.Pairs[i])
					}
				}
			})
		}
	}
}

// TestParallelShuffleRace hammers the parallel shuffle with many shards; run
// under -race (as CI does) it verifies the concurrent counting pass, the
// lock-free write pass, and Grid-ε's synchronized lazy cell discovery.
func TestParallelShuffleRace(t *testing.T) {
	s, tt := data.ParetoPair(3, 1.2, 1500, 41)
	band := data.Uniform(3, 0.3)
	for _, pt := range equivalencePartitioners() {
		t.Run(pt.Name(), func(t *testing.T) {
			plan := planFor(t, pt, s, tt, band, 8)
			var wantTotal int64 = -1
			for round := 0; round < 3; round++ {
				parts, total, err := parallelShuffle(context.Background(), plan, s, tt, 16)
				if err != nil {
					t.Fatalf("parallelShuffle: %v", err)
				}
				if wantTotal == -1 {
					wantTotal = total
				} else if total != wantTotal {
					t.Fatalf("round %d total input %d, want %d", round, total, wantTotal)
				}
				if countNonEmpty(parts) == 0 {
					t.Fatal("shuffle produced no partitions")
				}
			}
		})
	}
}
