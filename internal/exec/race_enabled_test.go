//go:build race

package exec

// raceEnabled reports that the race detector is active; under -race sync.Pool
// deliberately drops items to widen race coverage, so steady-state allocation
// tests are meaningless and skip themselves.
const raceEnabled = true
