package exec

import (
	"fmt"
	"math"

	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// Estimate runs only the optimization phase and then predicts I, Im, Om and
// join time by routing the sample tuples (not the full input) through the
// plan and scaling the counts. The paper does the same for its most expensive
// configurations (the 8-dimensional scalability tables use the running-time
// model instead of cloud executions); here it additionally avoids shuffling
// inputs whose duplication factor is in the thousands (Grid-ε at d = 8).
func Estimate(pt partition.Partitioner, s, t *data.Relation, band data.Band, opts Options) (*Result, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("exec: need at least one worker, got %d", opts.Workers)
	}
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if opts.Sampling.InputSampleSize == 0 {
		opts.Sampling = sample.DefaultOptions()
	}
	smp, err := sample.Draw(s, t, band, opts.Sampling)
	if err != nil {
		return nil, fmt.Errorf("exec: sampling: %w", err)
	}
	prep, err := PlanQuery(pt, smp, band, opts)
	if err != nil {
		return nil, err
	}
	res := EstimatePlan(prep.Plan, prep.Ctx)
	res.Partitioner = prep.Partitioner
	res.OptimizationTime = prep.OptimizationTime
	return res, nil
}

// EstimatePartitionLoads routes only the sample tuples through the plan and
// returns the estimated load (β2·input + β3·output) per partition, scaled to
// the full input. It is used by schedulers (e.g. the RPC coordinator) that
// must place partitions on workers before the actual partition sizes are
// known — the role the cluster scheduler's load estimates play in the paper's
// MapReduce setting.
func EstimatePartitionLoads(plan partition.Plan, ctx *partition.Context) []float64 {
	smp := ctx.Sample
	loads := make(map[int]float64)
	var dst []int
	for i := 0; i < smp.S.Len(); i++ {
		dst = plan.AssignS(int64(i), smp.S.Key(i), dst[:0])
		for _, id := range dst {
			loads[id] += ctx.Model.Beta2 / smp.SRate
		}
	}
	for i := 0; i < smp.T.Len(); i++ {
		dst = plan.AssignT(int64(i), smp.T.Key(i), dst[:0])
		for _, id := range dst {
			loads[id] += ctx.Model.Beta2 / smp.TRate
		}
	}
	var sDst, tDst []int
	for i := 0; i < smp.OutS.Len(); i++ {
		sDst = plan.AssignS(int64(i), smp.OutS.Key(i), sDst[:0])
		tDst = plan.AssignT(int64(i), smp.OutT.Key(i), tDst[:0])
		for _, a := range sDst {
			for _, b := range tDst {
				if a == b {
					loads[a] += ctx.Model.Beta3 * smp.OutWeight
				}
			}
		}
	}
	maxID := plan.NumPartitions() - 1
	for id := range loads {
		if id > maxID {
			maxID = id
		}
	}
	out := make([]float64, maxID+1)
	for id, l := range loads {
		out[id] = l
	}
	return out
}

// EstimatePlan estimates the execution metrics of a plan from the context's
// samples without touching the full inputs.
func EstimatePlan(plan partition.Plan, ctx *partition.Context) *Result {
	smp := ctx.Sample
	type pload struct{ in, out float64 }
	partLoads := make(map[int]*pload)
	get := func(id int) *pload {
		l, ok := partLoads[id]
		if !ok {
			l = &pload{}
			partLoads[id] = l
		}
		return l
	}

	var dst []int
	totalInput := 0.0
	for i := 0; i < smp.S.Len(); i++ {
		dst = plan.AssignS(int64(i), smp.S.Key(i), dst[:0])
		for _, id := range dst {
			get(id).in += 1 / smp.SRate
		}
		totalInput += float64(len(dst)) / smp.SRate
	}
	for i := 0; i < smp.T.Len(); i++ {
		dst = plan.AssignT(int64(i), smp.T.Key(i), dst[:0])
		for _, id := range dst {
			get(id).in += 1 / smp.TRate
		}
		totalInput += float64(len(dst)) / smp.TRate
	}
	// Output is attributed to the partition where the pair meets: the (unique)
	// partition receiving both sides. Intersecting the assignment lists of the
	// sample pair's S- and T-side finds it.
	var sDst, tDst []int
	for i := 0; i < smp.OutS.Len(); i++ {
		sDst = plan.AssignS(int64(i), smp.OutS.Key(i), sDst[:0])
		tDst = plan.AssignT(int64(i), smp.OutT.Key(i), tDst[:0])
		for _, a := range sDst {
			for _, b := range tDst {
				if a == b {
					get(a).out += smp.OutWeight
				}
			}
		}
	}

	// Place partitions on workers.
	maxID := -1
	for id := range partLoads {
		if id > maxID {
			maxID = id
		}
	}
	loads := make([]float64, maxID+1)
	ins := make([]float64, maxID+1)
	outs := make([]float64, maxID+1)
	for id, l := range partLoads {
		ins[id] = l.in
		outs[id] = l.out
		loads[id] = ctx.Model.Load(l.in, l.out)
	}
	var sched partition.Schedule
	if placer, ok := plan.(partition.WorkerPlacer); ok {
		sched = partition.FromPlacer(placer, maxID+1, ctx.Workers)
	} else {
		sched = partition.LPT(loads, ctx.Workers)
	}
	workerIn := make([]float64, ctx.Workers)
	workerOut := make([]float64, ctx.Workers)
	for id := range loads {
		w := sched[id]
		workerIn[w] += ins[id]
		workerOut[w] += outs[id]
	}
	maxW := 0
	for w := 1; w < ctx.Workers; w++ {
		if ctx.Model.Load(workerIn[w], workerOut[w]) > ctx.Model.Load(workerIn[maxW], workerOut[maxW]) {
			maxW = w
		}
	}

	totalOutput := smp.EstimatedOutput()
	res := &Result{
		Workers:        ctx.Workers,
		Partitions:     len(partLoads),
		InputS:         smp.TotalS,
		InputT:         smp.TotalT,
		TotalInput:     int64(totalInput + 0.5),
		Output:         int64(totalOutput + 0.5),
		Im:             int64(workerIn[maxW] + 0.5),
		Om:             int64(workerOut[maxW] + 0.5),
		MaxLoad:        ctx.Model.Load(workerIn[maxW], workerOut[maxW]),
		LowerBoundLoad: ctx.Model.LowerBoundLoad(float64(smp.TotalS+smp.TotalT), totalOutput, ctx.Workers),
		WorkerInput:    toInt64(workerIn),
		WorkerOutput:   toInt64(workerOut),
	}
	if smp.TotalS+smp.TotalT > 0 {
		// Sample scaling can undershoot by a fraction of a tuple; overheads are
		// clamped at zero (they are relative to true lower bounds).
		res.DupOverhead = math.Max(0, totalInput/float64(smp.TotalS+smp.TotalT)-1)
	}
	if res.LowerBoundLoad > 0 {
		res.LoadOverhead = math.Max(0, res.MaxLoad/res.LowerBoundLoad-1)
	}
	res.PredictedTime = ctx.Model.Predict(totalInput, workerIn[maxW], workerOut[maxW])
	return res
}

func toInt64(v []float64) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = int64(x + 0.5)
	}
	return out
}
