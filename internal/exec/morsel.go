// Morsel-driven intra-partition parallelism. RecPart plans minimize the
// *predicted* max partition load from a sample, but sampling error and drift
// leave residual skew, and a per-partition join pool lets one fat partition
// bound query latency no matter how many cores exist. The scheduler here
// splits every partition's probe (S) side into fixed-size row-range morsels
// and runs them on a shared worker pool draining one global queue ordered
// largest-partition-first: an atomic claim cursor over that order *is* the
// work-stealing discipline — a worker that finishes a morsel immediately
// claims the next unclaimed one wherever it lives, so idle workers drain the
// straggler partition instead of waiting on it, and wall time tracks
// total-work/p instead of max-partition.
//
// Determinism: morsels probe a shared read-only structure
// (localjoin.RangeProber) whose range contract guarantees that concatenating
// consecutive ranges reproduces the sequential probe bit-identically.
// Emission is per-S-tuple, so no pair crosses a morsel boundary; each morsel
// buffers its own pairs and the scheduler concatenates them in (partition,
// morsel) order, making the merged output byte-for-byte equal to the retained
// per-partition path whatever the claim interleaving was.
package exec

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bandjoin/internal/localjoin"
	"bandjoin/internal/obs"
)

// Morsel sizing bounds for the auto setting (MorselRows == 0): small enough
// that a skewed partition splits into many times the worker count (so the
// tail is short), large enough that the per-morsel claim and the sorted
// scan's window re-search are noise.
const (
	autoMorselMin = 1024
	autoMorselMax = 65536
	// autoMorselPerWorker is how many morsels per worker the largest
	// partition alone should yield.
	autoMorselPerWorker = 8
)

// ResolveMorselRows turns the MorselRows knob into a concrete morsel size for
// a run whose largest partition probes maxRows S-rows with the given
// parallelism. Positive values are used as-is; zero (auto) sizes from the
// partition sizes and the parallelism. With one worker auto collapses to
// whole-partition morsels — striping cannot help a single worker, and this
// keeps the 1-CPU schedule identical to the per-partition path.
func ResolveMorselRows(morselRows, parallelism, maxRows int) int {
	if morselRows > 0 {
		return morselRows
	}
	if parallelism <= 1 || maxRows == 0 {
		return max(maxRows, 1)
	}
	rows := maxRows / (autoMorselPerWorker * parallelism)
	return min(max(rows, autoMorselMin), autoMorselMax)
}

// MorselJob is one partition's probe work for RunMorsels: Rows is the probe
// domain size (always the partition's S cardinality), and Run executes probe
// positions [lo, hi) of the partition's own probe order, returning the pair
// count. Single forces the job to run as one morsel regardless of size (used
// for structures without a range probe, where only whole-job execution
// preserves the sequential emission order).
type MorselJob struct {
	Rows   int
	Single bool
	Run    func(lo, hi int, emit localjoin.Emit) int64
}

// JobResult is one job's aggregated outcome: the pair count, the summed
// execution time of its morsels (the partition's simulated busy time), and —
// when pairs were collected — the emitted local (S index, T index) pairs
// concatenated in morsel order, i.e. in exactly the sequential probe's
// emission order.
type JobResult struct {
	Count int64
	Nanos int64
	SIdx  []int32
	TIdx  []int32
}

// MorselStats is the scheduler's skew accounting for one run.
type MorselStats struct {
	// Morsels is the number of morsels executed.
	Morsels int64
	// Steals counts morsels executed by a worker other than the one that
	// claimed the job's first morsel — cross-worker sharing of one
	// partition's work, which only a skewed or striped schedule produces.
	Steals int64
	// StragglerRatio is max job rows / mean job rows over non-empty jobs:
	// 1.0 for a perfectly balanced plan, ~p/2 when one partition holds half
	// the probe work. It measures the residual skew the morsel schedule
	// absorbs.
	StragglerRatio float64
}

// morsel is one claimable unit: probe positions [lo, hi) of one job.
type morsel struct {
	job    int32
	lo, hi int32
}

// morselSlot is one morsel's result, written only by its claiming worker.
type morselSlot struct {
	count int64
	nanos int64
	sIdx  []int32
	tIdx  []int32
}

// RunMorsels executes the jobs' probe work on a pool of parallelism workers
// draining a single largest-partition-first morsel queue, and returns per-job
// results merged in deterministic (job, morsel) order. morselRows follows the
// MorselRows knob convention (> 0 fixed, 0 auto); collect materializes the
// emitted pairs. Cancelling ctx stops workers at the next morsel claim and
// returns ctx.Err().
func RunMorsels(ctx context.Context, jobs []MorselJob, morselRows, parallelism int, collect bool) ([]JobResult, MorselStats, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	maxRows, totalRows, nonEmpty := 0, 0, 0
	for i := range jobs {
		if jobs[i].Rows <= 0 {
			continue
		}
		nonEmpty++
		totalRows += jobs[i].Rows
		if jobs[i].Rows > maxRows {
			maxRows = jobs[i].Rows
		}
	}
	var stats MorselStats
	if nonEmpty > 0 {
		stats.StragglerRatio = float64(maxRows) / (float64(totalRows) / float64(nonEmpty))
	}
	rows := ResolveMorselRows(morselRows, parallelism, maxRows)

	// Queue order: largest probe side first (stable by job index), so the
	// straggler partition starts draining immediately and the small tail
	// fills the gaps.
	order := make([]int, 0, len(jobs))
	for i := range jobs {
		if jobs[i].Rows > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Rows > jobs[order[b]].Rows })
	var morsels []morsel
	for _, j := range order {
		step := rows
		if jobs[j].Single {
			step = jobs[j].Rows
		}
		for lo := 0; lo < jobs[j].Rows; lo += step {
			hi := min(lo+step, jobs[j].Rows)
			morsels = append(morsels, morsel{job: int32(j), lo: int32(lo), hi: int32(hi)})
		}
	}
	slots := make([]morselSlot, len(morsels))
	owners := make([]atomic.Int32, len(jobs))
	for i := range owners {
		owners[i].Store(-1)
	}

	var cursor atomic.Int64
	var steals atomic.Int64
	var canceled atomic.Bool
	workers := min(parallelism, len(morsels))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int32) {
			defer wg.Done()
			for {
				idx := cursor.Add(1) - 1
				if idx >= int64(len(morsels)) {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				m := morsels[idx]
				if !owners[m.job].CompareAndSwap(-1, worker) && owners[m.job].Load() != worker {
					steals.Add(1)
				}
				slot := &slots[idx]
				var emit localjoin.Emit
				if collect {
					emit = func(si, ti int, _, _ []float64) {
						slot.sIdx = append(slot.sIdx, int32(si))
						slot.tIdx = append(slot.tIdx, int32(ti))
					}
				}
				start := time.Now()
				slot.count = jobs[m.job].Run(int(m.lo), int(m.hi), emit)
				slot.nanos = time.Since(start).Nanoseconds()
			}
		}(int32(w))
	}
	wg.Wait()
	if canceled.Load() {
		return nil, stats, ctx.Err()
	}
	stats.Morsels = int64(len(morsels))
	stats.Steals = steals.Load()

	// Deterministic merge: fold each job's morsels in queue (= probe range)
	// order, so the concatenated emissions equal the sequential probe's.
	results := make([]JobResult, len(jobs))
	for idx := range morsels {
		m := morsels[idx]
		r := &results[m.job]
		r.Count += slots[idx].count
		r.Nanos += slots[idx].nanos
		if collect {
			r.SIdx = append(r.SIdx, slots[idx].sIdx...)
			r.TIdx = append(r.TIdx, slots[idx].tIdx...)
		}
	}
	metrics.morsels.Add(stats.Morsels)
	metrics.steals.Add(stats.Steals)
	metrics.straggler.Set(int64(math.Round(stats.StragglerRatio * 1000)))
	return results, stats, nil
}

// metrics is the exec plane's process-wide morsel instrumentation, the
// in-process counterpart of the cluster workers' bandjoin_worker_morsel_*
// series (every in-process Engine shares one exec pipeline, so unlike the
// per-Worker registries this one is package-level).
var metrics = struct {
	reg       *obs.Registry
	morsels   *obs.Counter
	steals    *obs.Counter
	straggler *obs.Gauge
}{}

func init() {
	metrics.reg = obs.NewRegistry()
	metrics.morsels = metrics.reg.Counter("bandjoin_exec_morsels_total",
		"Probe-side morsels executed by the in-process morsel scheduler.")
	metrics.steals = metrics.reg.Counter("bandjoin_exec_morsel_steals_total",
		"Morsels executed by a worker other than their partition's first claimer.")
	metrics.straggler = metrics.reg.Gauge("bandjoin_exec_straggler_ratio_millis",
		"Max-partition / mean-partition probe rows of the last morsel run, in thousandths.")
}

// Metrics returns the exec plane's morsel-scheduler registry for exposition
// alongside an engine's own registry.
func Metrics() *obs.Registry { return metrics.reg }
