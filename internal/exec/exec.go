// Package exec runs a distributed band-join on a simulated cluster: the map
// phase routes every input tuple through the plan's assignment (duplicating
// tuples assigned to several partitions, exactly like the shuffle of the
// paper's MapReduce setting), the reduce phase runs a local band-join per
// partition, and partitions are placed on the w workers. The result records
// the quantities the paper evaluates: total input including duplicates I,
// the input Im and output Om of the most loaded worker, max worker load Lm,
// the Lemma 1 lower bounds, and the relative overheads plotted in Figure 4.
//
// Two knobs control the execution pipeline itself:
//
//   - Options.Parallelism bounds both the number of shuffle shards and the
//     number of concurrent local joins (zero means GOMAXPROCS).
//   - Options.SerialShuffle replaces the default parallel two-pass shuffle
//     (see shuffle.go) with the single-threaded reference implementation.
//     Both produce bit-identical partitions; the serial path exists as the
//     correctness oracle and benchmark baseline.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// Options configures a run.
type Options struct {
	// Workers is the number of simulated worker machines.
	Workers int
	// Algorithm is the local band-join algorithm; nil selects the adaptive
	// default (localjoin.Auto: nested loop for tiny partitions, 2D local
	// ε-grid for multi-dimensional bands, sorted probe for 1D, sorted
	// sliding-window scan otherwise).
	Algorithm localjoin.Algorithm
	// Model supplies the β coefficients; a zero value selects the default.
	Model costmodel.Model
	// Sampling configures the optimization-phase samples.
	Sampling sample.Options
	// CollectPairs materializes every result pair's (S id, T id); it is meant
	// for correctness tests on small inputs, not for benchmarks.
	CollectPairs bool
	// Parallelism bounds the number of shuffle shards and concurrent local
	// joins; zero means GOMAXPROCS.
	Parallelism int
	// SerialShuffle selects the retained single-threaded reference shuffle
	// instead of the parallel two-pass shuffle. It exists as the correctness
	// oracle for equivalence tests and as the pipeline benchmark's baseline;
	// both shuffles produce bit-identical partitions.
	SerialShuffle bool
	// MorselRows sets the probe-side morsel size of the reduce phase's
	// morsel-driven scheduler (see morsel.go): 0 sizes morsels automatically
	// from the partition sizes and the parallelism, > 0 fixes the row count,
	// and < 0 disables morsels entirely, selecting the retained
	// one-goroutine-per-partition path (the correctness oracle and skew
	// baseline). All settings produce bit-identical results.
	MorselRows int
	// Seed drives randomized plan decisions.
	Seed int64
}

// DefaultOptions returns options for a w-worker run.
func DefaultOptions(workers int) Options {
	return Options{Workers: workers, Model: costmodel.Default(), Sampling: sample.DefaultOptions()}
}

// Pair is one join result identified by the original tuple indices.
type Pair struct {
	S int64
	T int64
}

// Result summarizes one distributed band-join execution.
type Result struct {
	Partitioner string
	Workers     int
	Partitions  int

	// Timing.
	OptimizationTime time.Duration
	ShuffleTime      time.Duration
	JoinWallTime     time.Duration // wall time of the (parallel) reduce phase
	Makespan         time.Duration // max simulated per-worker busy time

	// Input/output accounting (the paper's I, Im, Om in tuples).
	InputS, InputT int
	TotalInput     int64 // I: input including duplicates
	Output         int64
	Im, Om         int64 // input and output of the most loaded worker

	// Loads and lower bounds.
	MaxLoad        float64 // Lm = β2·Im + β3·Om
	LowerBoundLoad float64 // L0 from Lemma 1
	DupOverhead    float64 // I/(|S|+|T|) − 1
	LoadOverhead   float64 // Lm/L0 − 1
	PredictedTime  float64 // M(I, Im, Om), seconds

	// RPC data-plane accounting, filled only by the cluster coordinator
	// (internal/cluster): wire bytes moved during the shuffle (both directions,
	// post-encoding) and the number of Load RPCs issued. Zero for in-process
	// runs, which move no bytes over a network.
	ShuffleBytes int64
	ShuffleRPCs  int64
	// ShuffleRawBytes is what the shipped tuples would occupy row-major and
	// uncompressed (8 bytes per key value and per tuple ID), so
	// ShuffleRawBytes/ShuffleBytes is the shuffle's effective compression
	// ratio. Zero for in-process runs.
	ShuffleRawBytes int64

	// Fault-tolerance accounting, filled only by the cluster coordinator.
	// Degraded reports that the query ran on fewer workers than the cluster
	// was configured with (a worker was down at query start or died
	// mid-query). LostWorkers counts workers declared dead during this query;
	// Retries counts RPC retries and recovery reshipments the query needed;
	// FailoverRounds counts the recovery rounds (reship-and-rejoin passes,
	// retained-plan rebuilds) the query went through. All zero for in-process
	// runs and for undisturbed cluster runs.
	Degraded       bool
	LostWorkers    int
	Retries        int
	FailoverRounds int

	// FaultEvents are the timestamped fault-path occurrences (worker losses,
	// failover rounds) recorded while the query ran; the engine rebases them
	// into Trace spans.
	FaultEvents []TraceEvent

	// WarmPartitions reports that the retained-partition layer served this
	// query: the shuffle's output was already resident (in memory for the
	// in-process plane, on the workers for the cluster plane) and nothing was
	// reshuffled.
	WarmPartitions bool

	// DeltaAbsorbTime is the time this query spent catching retained
	// partitions up to rows appended since they were shuffled (routing and
	// shipping just the delta); zero when the retained data was already fresh.
	// StaleRebuildTime is the time the local joins spent re-sorting and
	// re-building prepared join structures invalidated by such deltas —
	// deferred from append time to the next probe, so it shows up on the first
	// query after an append and is zero afterwards.
	DeltaAbsorbTime  time.Duration
	StaleRebuildTime time.Duration

	// Morsel-scheduler accounting (see morsel.go): morsels executed, morsels
	// run by a worker other than their partition's first claimer, and the
	// max/mean partition probe-row ratio the schedule absorbed. All zero on
	// the per-partition oracle path (MorselRows < 0).
	Morsels        int64
	MorselSteals   int64
	StragglerRatio float64

	// Trace is the per-query structured trace, attached by the Engine (nil
	// for direct exec/coordinator runs).
	Trace *QueryTrace

	// Per-worker accounting.
	WorkerInput  []int64
	WorkerOutput []int64

	// Pairs holds the result pairs when Options.CollectPairs is set.
	Pairs []Pair
}

// Prepared is the output of the optimization stage: a partitioning plan
// together with the context it was optimized in. It contains everything
// Execute needs apart from the full inputs, so an engine can cache it and
// serve repeated queries without re-sampling or re-optimizing.
type Prepared struct {
	// Plan is the chosen partitioning.
	Plan partition.Plan
	// Ctx is the optimization context (band, workers, samples, model, seed)
	// the plan was computed for.
	Ctx *partition.Context
	// Partitioner is the name of the algorithm that produced the plan.
	Partitioner string
	// OptimizationTime is the duration of the partitioner's Plan call.
	OptimizationTime time.Duration
}

// PlanQuery runs the optimization stage on an already-drawn sample: it builds
// the partitioning context and asks the partitioner for a plan. Splitting this
// from Run lets callers cache the sample (one input scan per dataset pair) and
// the resulting Prepared plan (one optimization per distinct query shape).
func PlanQuery(pt partition.Partitioner, smp *sample.Sample, band data.Band, opts Options) (*Prepared, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("exec: need at least one worker, got %d", opts.Workers)
	}
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if (opts.Model == costmodel.Model{}) {
		opts.Model = costmodel.Default()
	}
	ctx := &partition.Context{Band: band, Workers: opts.Workers, Sample: smp, Model: opts.Model, Seed: opts.Seed}
	optStart := time.Now()
	plan, err := pt.Plan(ctx)
	if err != nil {
		return nil, fmt.Errorf("exec: %s optimization failed: %w", pt.Name(), err)
	}
	return &Prepared{
		Plan:             plan,
		Ctx:              ctx,
		Partitioner:      pt.Name(),
		OptimizationTime: time.Since(optStart),
	}, nil
}

// Run samples the inputs, runs the partitioner's optimization phase, executes
// the join on the simulated cluster, and returns the full accounting. It is
// the one-shot composition of the staged pipeline: sample.Draw → PlanQuery →
// ExecutePlan.
func Run(pt partition.Partitioner, s, t *data.Relation, band data.Band, opts Options) (*Result, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("exec: need at least one worker, got %d", opts.Workers)
	}
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if opts.Sampling.InputSampleSize == 0 {
		opts.Sampling = sample.DefaultOptions()
	}

	smp, err := sample.Draw(s, t, band, opts.Sampling)
	if err != nil {
		return nil, fmt.Errorf("exec: sampling: %w", err)
	}
	prep, err := PlanQuery(pt, smp, band, opts)
	if err != nil {
		return nil, err
	}

	res, err := ExecutePlan(context.Background(), prep.Plan, s, t, band, opts)
	if err != nil {
		return nil, err
	}
	res.Partitioner = prep.Partitioner
	res.OptimizationTime = prep.OptimizationTime
	return res, nil
}

// ExecutePlan runs the shuffle and local joins for an already-computed plan.
// Cancelling ctx aborts the run between shuffle passes and between local
// joins, returning ctx.Err().
func ExecutePlan(ctx context.Context, plan partition.Plan, s, t *data.Relation, band data.Band, opts Options) (*Result, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("exec: need at least one worker, got %d", opts.Workers)
	}
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	// --- Shuffle (map phase): route every tuple to its partitions.
	shuffleStart := time.Now()
	var parts []*PartitionInput
	var totalInput int64
	if opts.SerialShuffle {
		parts, totalInput = ShuffleSerial(plan, s, t)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	} else {
		var err error
		parts, totalInput, err = parallelShuffle(ctx, plan, s, t, parallelism)
		if err != nil {
			return nil, err
		}
	}
	shuffleTime := time.Since(shuffleStart)

	res, err := ExecuteShuffled(ctx, plan, parts, totalInput, s.Len(), t.Len(), band, opts)
	if err != nil {
		return nil, err
	}
	res.ShuffleTime = shuffleTime
	return res, nil
}

// PrepareShuffled builds, for every non-nil partition, the local join's
// reusable T-side structure for (p.S, p.T, band) with the given algorithm
// (nil selects the default), running at most parallelism builds concurrently
// (< 1 selects GOMAXPROCS). Entries are nil where the algorithm has no
// prepared form. It is the in-process analogue of the cluster workers'
// Seal-time prebuild: paid once at retention time, off every warm query's
// critical path.
func PrepareShuffled(parts []*PartitionInput, band data.Band, alg localjoin.Algorithm, parallelism int) []localjoin.PreparedT {
	if alg == nil {
		alg = localjoin.Default()
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	prepared := make([]localjoin.PreparedT, len(parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for pid, p := range parts {
		if p == nil {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(pid int, p *PartitionInput) {
			defer wg.Done()
			defer func() { <-sem }()
			prepared[pid] = localjoin.Prepare(alg, p.S, p.T, band)
		}(pid, p)
	}
	wg.Wait()
	return prepared
}

// ExecuteShuffled runs the reduce phase (local joins, worker placement, and
// accounting) over already-shuffled partition inputs. It is the stage an
// engine reuses when the shuffled partitions for a plan are retained between
// queries: a warm query skips the shuffle entirely and pays only for the
// joins. totalInput is the routed tuple count I the shuffle reported; inputS
// and inputT are the original relation cardinalities.
func ExecuteShuffled(ctx context.Context, plan partition.Plan, parts []*PartitionInput, totalInput int64, inputS, inputT int, band data.Band, opts Options) (*Result, error) {
	return ExecuteShuffledPrepared(ctx, plan, parts, nil, totalInput, inputS, inputT, band, opts)
}

// ExecuteShuffledPrepared is ExecuteShuffled over partitions whose reusable
// join structures were prebuilt with PrepareShuffled (for the same algorithm
// and band): partitions with a non-nil entry probe the prepared structure
// instead of rebuilding sort orders and grid buckets per query. prepared may
// be nil or sparse; those partitions run the plain per-query join. Results
// are identical either way (PreparedT.Probe emits exactly the pairs of the
// corresponding Join, in the same order).
func ExecuteShuffledPrepared(ctx context.Context, plan partition.Plan, parts []*PartitionInput, prepared []localjoin.PreparedT, totalInput int64, inputS, inputT int, band data.Band, opts Options) (*Result, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("exec: need at least one worker, got %d", opts.Workers)
	}
	if (opts.Model == costmodel.Model{}) {
		opts.Model = costmodel.Default()
	}
	alg := opts.Algorithm
	if alg == nil {
		alg = localjoin.Default()
	}

	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	// --- Reduce phase: morsel-driven by default (a shared pool drains
	// probe-row ranges of all partitions, so one fat partition cannot bound
	// the wall time), or the retained one-goroutine-per-partition oracle when
	// MorselRows < 0. Both produce bit-identical results.
	joinStart := time.Now()
	var results []partResult
	var mstats MorselStats
	var err error
	if opts.MorselRows < 0 {
		results, err = joinPerPartition(ctx, parts, prepared, alg, band, parallelism, opts.CollectPairs)
	} else {
		results, mstats, err = joinMorsels(ctx, parts, prepared, alg, band, parallelism, opts.MorselRows, opts.CollectPairs)
	}
	if err != nil {
		return nil, err
	}
	joinWall := time.Since(joinStart)

	// --- Place partitions on workers and aggregate per-worker accounting.
	numParts := len(parts)
	loads := make([]float64, numParts)
	partIn := make([]int64, numParts)
	partOut := make([]int64, numParts)
	for pid, p := range parts {
		if p == nil {
			continue
		}
		partIn[pid] = int64(p.Tuples())
		partOut[pid] = results[pid].output
		loads[pid] = opts.Model.Load(float64(partIn[pid]), float64(partOut[pid]))
	}
	var sched partition.Schedule
	if placer, ok := plan.(partition.WorkerPlacer); ok {
		sched = partition.FromPlacer(placer, numParts, opts.Workers)
	} else {
		sched = partition.LPT(loads, opts.Workers)
	}

	res := &Result{
		Workers:        opts.Workers,
		Partitions:     numParts,
		JoinWallTime:   joinWall,
		InputS:         inputS,
		InputT:         inputT,
		TotalInput:     totalInput,
		Morsels:        mstats.Morsels,
		MorselSteals:   mstats.Steals,
		StragglerRatio: mstats.StragglerRatio,
		WorkerInput:    make([]int64, opts.Workers),
		WorkerOutput:   make([]int64, opts.Workers),
	}
	workerBusy := make([]time.Duration, opts.Workers)
	for pid := range parts {
		if parts[pid] == nil {
			continue
		}
		w := sched[pid]
		res.WorkerInput[w] += partIn[pid]
		res.WorkerOutput[w] += partOut[pid]
		res.Output += partOut[pid]
		workerBusy[w] += results[pid].duration
	}
	maxW := 0
	for w := 1; w < opts.Workers; w++ {
		lw := opts.Model.Load(float64(res.WorkerInput[w]), float64(res.WorkerOutput[w]))
		lm := opts.Model.Load(float64(res.WorkerInput[maxW]), float64(res.WorkerOutput[maxW]))
		if lw > lm {
			maxW = w
		}
	}
	res.Im = res.WorkerInput[maxW]
	res.Om = res.WorkerOutput[maxW]
	res.MaxLoad = opts.Model.Load(float64(res.Im), float64(res.Om))
	res.LowerBoundLoad = opts.Model.LowerBoundLoad(float64(res.InputS+res.InputT), float64(res.Output), opts.Workers)
	if res.InputS+res.InputT > 0 {
		res.DupOverhead = float64(res.TotalInput)/float64(res.InputS+res.InputT) - 1
	}
	if res.LowerBoundLoad > 0 {
		res.LoadOverhead = res.MaxLoad/res.LowerBoundLoad - 1
	}
	res.PredictedTime = opts.Model.Predict(float64(res.TotalInput), float64(res.Im), float64(res.Om))
	for _, busy := range workerBusy {
		if busy > res.Makespan {
			res.Makespan = busy
		}
	}
	if opts.CollectPairs {
		for pid := range results {
			res.Pairs = append(res.Pairs, results[pid].pairs...)
		}
		sort.Slice(res.Pairs, func(a, b int) bool {
			if res.Pairs[a].S != res.Pairs[b].S {
				return res.Pairs[a].S < res.Pairs[b].S
			}
			return res.Pairs[a].T < res.Pairs[b].T
		})
	}
	res.Partitions = countNonEmpty(parts)
	return res, nil
}

// partResult is one partition's reduce-phase outcome.
type partResult struct {
	output   int64
	duration time.Duration
	pairs    []Pair
}

// joinPerPartition is the retained one-goroutine-per-partition reduce phase:
// the morsel scheduler's correctness oracle and skew baseline. One fat
// partition bounds its wall time no matter the parallelism.
func joinPerPartition(ctx context.Context, parts []*PartitionInput, prepared []localjoin.PreparedT, alg localjoin.Algorithm, band data.Band, parallelism int, collectPairs bool) ([]partResult, error) {
	results := make([]partResult, len(parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for pid, p := range parts {
		if p == nil {
			continue
		}
		// Cancellation is checked before dispatching each partition, so a
		// cancelled query stops after the joins already in flight rather than
		// draining the whole partition list.
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(pid int, p *PartitionInput) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			var pairs []Pair
			var emit localjoin.Emit
			if collectPairs {
				emit = func(si, ti int, _, _ []float64) {
					pairs = append(pairs, Pair{S: p.SIDs[si], T: p.TIDs[ti]})
				}
			}
			var count int64
			if pid < len(prepared) && prepared[pid] != nil {
				count = prepared[pid].Probe(p.S, emit)
			} else {
				count = alg.Join(p.S, p.T, band, emit)
			}
			results[pid] = partResult{output: count, duration: time.Since(start), pairs: pairs}
		}(pid, p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// joinMorsels is the morsel-driven reduce phase. Partitions with a prepared
// range-probe structure stripe directly over it; unprepared partitions big
// enough to split get one built here first (bounded-parallel, largest first —
// the same work their plain Join would have spent inline, paid once and then
// shared by all morsels); everything else runs as a single whole-partition
// morsel through the pooled-scratch plain join, except algorithms whose range
// form needs no per-call build (the nested loop, and Auto's nested-loop
// choice), which stripe directly.
func joinMorsels(ctx context.Context, parts []*PartitionInput, prepared []localjoin.PreparedT, alg localjoin.Algorithm, band data.Band, parallelism, morselRows int, collectPairs bool) ([]partResult, MorselStats, error) {
	maxRows := 0
	for _, p := range parts {
		if p != nil && p.S.Len() > maxRows {
			maxRows = p.S.Len()
		}
	}
	rows := ResolveMorselRows(morselRows, parallelism, maxRows)

	local := make([]localjoin.PreparedT, len(parts))
	copy(local, prepared[:min(len(prepared), len(parts))])
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for pid, p := range parts {
		if p == nil || local[pid] != nil || p.S.Len() <= rows {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(pid int, p *PartitionInput) {
			defer wg.Done()
			defer func() { <-sem }()
			local[pid] = localjoin.Prepare(alg, p.S, p.T, band)
		}(pid, p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, MorselStats{}, err
	}

	jobs := make([]MorselJob, len(parts))
	for pid, p := range parts {
		if p == nil {
			continue
		}
		p := p
		switch {
		case local[pid] != nil:
			if rp, ok := local[pid].(localjoin.RangeProber); ok {
				jobs[pid] = MorselJob{Rows: p.S.Len(), Run: func(lo, hi int, emit localjoin.Emit) int64 {
					return rp.ProbeRange(p.S, lo, hi, emit)
				}}
			} else {
				prep := local[pid]
				jobs[pid] = MorselJob{Rows: p.S.Len(), Single: true, Run: func(_, _ int, emit localjoin.Emit) int64 {
					return prep.Probe(p.S, emit)
				}}
			}
		case localjoin.RangeNeedsNoPrepare(alg):
			// Prepare returned nil, which for these algorithms means the
			// nested loop: no build work to repeat per range, stripe directly.
			rj := alg.(localjoin.RangeJoiner)
			jobs[pid] = MorselJob{Rows: p.S.Len(), Run: func(lo, hi int, emit localjoin.Emit) int64 {
				return rj.JoinRange(p.S, p.T, band, lo, hi, emit)
			}}
		default:
			jobs[pid] = MorselJob{Rows: p.S.Len(), Single: true, Run: func(_, _ int, emit localjoin.Emit) int64 {
				return alg.Join(p.S, p.T, band, emit)
			}}
		}
	}
	jres, mstats, err := RunMorsels(ctx, jobs, rows, parallelism, collectPairs)
	if err != nil {
		return nil, mstats, err
	}
	results := make([]partResult, len(parts))
	for pid, p := range parts {
		if p == nil {
			continue
		}
		r := partResult{output: jres[pid].Count, duration: time.Duration(jres[pid].Nanos)}
		if collectPairs {
			r.pairs = make([]Pair, len(jres[pid].SIdx))
			for k := range jres[pid].SIdx {
				r.pairs[k] = Pair{S: p.SIDs[jres[pid].SIdx[k]], T: p.TIDs[jres[pid].TIdx[k]]}
			}
		}
		results[pid] = r
	}
	return results, mstats, nil
}

func countNonEmpty(parts []*PartitionInput) int {
	n := 0
	for _, p := range parts {
		if p != nil {
			n++
		}
	}
	return n
}

// String returns a one-line summary of the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s: w=%d parts=%d I=%d Im=%d Om=%d out=%d dup=%.1f%% loadOverhead=%.1f%% opt=%v",
		r.Partitioner, r.Workers, r.Partitions, r.TotalInput, r.Im, r.Om, r.Output,
		100*r.DupOverhead, 100*r.LoadOverhead, r.OptimizationTime.Round(time.Millisecond))
}
