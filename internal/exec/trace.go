package exec

import (
	"encoding/json"
	"time"
)

// Cache-tier outcomes recorded in a QueryTrace.
const (
	TierHit  = "hit"  // served from the cache layer
	TierMiss = "miss" // paid the full cost and (where applicable) filled the cache
	TierOff  = "off"  // the layer was disabled for this query
)

// Span is one timed stage of a query: offsets are relative to the trace's
// StartedAt, so a trace is self-contained and spans are comparable without
// wall-clock context. Zero-duration spans mark point events (worker lost,
// failover round).
type Span struct {
	Name string `json:"name"`
	// StartMicros is the span's start offset from the query start.
	StartMicros int64 `json:"start_us"`
	// DurationMicros is the span's length; 0 for point events.
	DurationMicros int64 `json:"duration_us,omitempty"`
	// Detail carries stage-specific context: cache-tier outcome, bytes moved,
	// which worker failed.
	Detail string `json:"detail,omitempty"`
}

// TraceEvent is a timestamped fault-path occurrence (retry escalation, worker
// loss, failover reshipment) recorded by the coordinator while a query runs.
// Events carry absolute times because the coordinator does not know the
// query's trace epoch; the engine rebases them into spans.
type TraceEvent struct {
	At     time.Time `json:"at"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
}

// QueryTrace is the per-query structured trace: which cache tiers hit, what
// each pipeline stage cost, what moved over the wire, and how the query
// degraded under faults. The engine attaches one to every Result; it is
// allocated per query (not on the per-tuple/per-partition hot paths) so
// building it costs a handful of small allocations, invisible next to the
// query itself.
type QueryTrace struct {
	// S, T, and Band identify the query.
	S    string `json:"s"`
	T    string `json:"t"`
	Band string `json:"band"`
	// Partitioner is the planning algorithm that produced the plan.
	Partitioner string `json:"partitioner,omitempty"`

	StartedAt time.Time `json:"started_at"`
	// WallMicros is the query's total wall time.
	WallMicros int64 `json:"wall_us"`

	// Cache-tier outcomes (TierHit/TierMiss/TierOff): the input-sample cache,
	// the plan cache, and the retained-partition layer.
	SampleTier   string `json:"sample_tier"`
	PlanTier     string `json:"plan_tier"`
	RetainedTier string `json:"retained_tier"`

	// Data-plane accounting, copied from the Result for self-containment.
	ShuffleBytes int64 `json:"shuffle_bytes"`
	ShuffleRPCs  int64 `json:"shuffle_rpcs"`
	Output       int64 `json:"output"`

	// Fault accounting.
	Retries        int  `json:"retries,omitempty"`
	LostWorkers    int  `json:"lost_workers,omitempty"`
	FailoverRounds int  `json:"failover_rounds,omitempty"`
	Degraded       bool `json:"degraded,omitempty"`

	Spans []Span `json:"spans"`
}

// AddSpan appends a timed span; start and end are absolute times from the
// same clock as StartedAt.
func (tr *QueryTrace) AddSpan(name string, start, end time.Time, detail string) {
	tr.Spans = append(tr.Spans, Span{
		Name:           name,
		StartMicros:    start.Sub(tr.StartedAt).Microseconds(),
		DurationMicros: end.Sub(start).Microseconds(),
		Detail:         detail,
	})
}

// AddEvents rebases coordinator-recorded fault events into point spans.
func (tr *QueryTrace) AddEvents(events []TraceEvent) {
	for _, ev := range events {
		tr.Spans = append(tr.Spans, Span{
			Name:        ev.Name,
			StartMicros: ev.At.Sub(tr.StartedAt).Microseconds(),
			Detail:      ev.Detail,
		})
	}
}

// JSON renders the trace as indented JSON (the -trace output of
// cmd/bandjoin).
func (tr *QueryTrace) JSON() ([]byte, error) {
	return json.MarshalIndent(tr, "", "  ")
}
