package core

import (
	"fmt"
	"io"
	"strings"
)

// DumpTree writes a human-readable rendering of the split tree to w, one node
// per line, indented by depth. Inner nodes show the split predicate and which
// relation is duplicated across it; leaves show their partition numbers and,
// for small leaves, their internal 1-Bucket grid. It is meant for debugging
// and for inspecting what RecPart decided on a workload (the paper's Figure 3
// and Figure 7, as text).
func (p *Plan) DumpTree(w io.Writer) error {
	var sb strings.Builder
	p.dumpNode(&sb, p.root, 0)
	_, err := io.WriteString(w, sb.String())
	return err
}

func (p *Plan) dumpNode(sb *strings.Builder, n *node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.isLeaf {
		if n.small && (n.rows > 1 || n.cols > 1) {
			fmt.Fprintf(sb, "%sleaf #%d: small, 1-Bucket %dx%d, partitions %d..%d, region %s\n",
				indent, n.id, n.rows, n.cols, n.partBase, n.partBase+n.rows*n.cols-1, n.region)
			return
		}
		kind := "regular"
		if n.small {
			kind = "small"
		}
		fmt.Fprintf(sb, "%sleaf #%d: %s, partition %d, region %s\n", indent, n.id, kind, n.partBase, n.region)
		return
	}
	fmt.Fprintf(sb, "%snode #%d: A%d < %g (%s: duplicate %s near the boundary)\n",
		indent, n.id, n.dim+1, n.val, n.kind, duplicatedSide(n.kind))
	p.dumpNode(sb, n.left, depth+1)
	p.dumpNode(sb, n.right, depth+1)
}

// duplicatedSide names the relation a split duplicates.
func duplicatedSide(k splitKind) string {
	if k == splitT {
		return "T"
	}
	return "S"
}
