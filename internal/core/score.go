package core

// zeroDup is the threshold below which an estimated duplication increase is
// treated as zero for reporting purposes.
const zeroDup = 1e-9

// score is the value of a candidate split: the load-variance reduction it
// achieves and the input duplication it adds (both estimated from the samples
// and scaled to real tuple counts).
//
// The paper orders splits and leaves by the ratio ΔVar/ΔDup, with
// zero-duplication splits ranked by variance reduction among themselves. A
// literal implementation of that ordering starves heavily loaded partitions:
// an arbitrarily small variance reduction with zero duplication would always
// outrank the (duplication-adding) split or 1-Bucket refinement of the
// partition that actually dominates the max worker load. We therefore smooth
// the denominator by a small duplication budget δ (a fraction of |S|+|T|,
// Options.DupSmoothingFraction): free splits with meaningful variance
// reduction still rank first, ties among free splits are still broken by
// variance reduction, but a heavy partition whose only splits cost
// duplication can no longer be starved by near-useless free splits. The
// deviation from the paper is recorded in DESIGN.md.
type score struct {
	valid  bool
	dup    float64 // estimated additional duplicated input tuples
	varRed float64 // reduction of the load variance V[P] = (w−1)/w² Σ l_p²
	ratio  float64 // varRed / (dup + δ)
}

// invalidScore is the score of a leaf that has no useful split.
func invalidScore() score { return score{} }

// newScore builds a score with the given smoothing constant δ, marking it
// invalid when it offers no variance reduction (such a split would only add
// duplication or do nothing).
func newScore(varRed, dup, smoothing float64) score {
	if varRed <= 0 {
		return invalidScore()
	}
	if dup < 0 {
		dup = 0
	}
	if smoothing < 1 {
		smoothing = 1
	}
	return score{valid: true, dup: dup, varRed: varRed, ratio: varRed / (dup + smoothing)}
}

// zeroDuplication reports whether the split adds (essentially) no duplicates.
func (s score) zeroDuplication() bool { return s.dup <= zeroDup }

// better reports whether s is strictly preferable to o.
func (s score) better(o score) bool {
	if !s.valid {
		return false
	}
	if !o.valid {
		return true
	}
	if s.ratio != o.ratio {
		return s.ratio > o.ratio
	}
	// Deterministic tie-break: larger variance reduction first.
	return s.varRed > o.varRed
}
