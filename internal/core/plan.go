package core

import (
	"fmt"

	"bandjoin/internal/data"
	"bandjoin/internal/partition"
)

// Plan is the partitioning RecPart produces: a split tree whose leaves are the
// physical partitions (small leaves contribute one partition per cell of their
// internal 1-Bucket grid). It implements partition.Plan; AssignS / AssignT
// realize Algorithm 3 of the paper.
type Plan struct {
	root  *node
	band  data.Band
	seed  uint64
	parts int

	// History records the estimated quality after every iteration of the
	// growth loop; Chosen is the iteration whose partitioning this plan is.
	History []IterationStats
	// Chosen is the number of actions of the winning prefix.
	Chosen int
	// Symmetric records whether S-splits were allowed (RecPart vs RecPart-S).
	Symmetric bool
	// Leaves is the number of split-tree leaves (before expanding small
	// leaves into their grid cells).
	Leaves int
}

// finalizePlan numbers the partitions of every leaf and returns the plan.
func finalizePlan(root *node, band data.Band, seed int64) *Plan {
	p := &Plan{root: root, band: band, seed: uint64(seed)}
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf {
			n.partBase = p.parts
			p.parts += n.numPartitions()
			p.Leaves++
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(root)
	return p
}

// NumPartitions implements partition.Plan.
func (p *Plan) NumPartitions() int { return p.parts }

// AssignS implements partition.Plan.
func (p *Plan) AssignS(id int64, key []float64, dst []int) []int {
	return p.assign(p.root, id, key, true, dst)
}

// AssignT implements partition.Plan.
func (p *Plan) AssignT(id int64, key []float64, dst []int) []int {
	return p.assign(p.root, id, key, false, dst)
}

// assign descends the split tree. At a node that partitions the tuple's
// relation, exactly one child is followed; at a node that duplicates it, every
// child whose region intersects the tuple's ε-range is followed. At a small
// leaf the tuple is hashed to a 1-Bucket row (S) or column (T) and copied to
// every cell of it.
func (p *Plan) assign(n *node, id int64, key []float64, isS bool, dst []int) []int {
	for !n.isLeaf {
		dim, x := n.dim, n.val
		partitioned := (n.kind == splitT) == isS
		if partitioned {
			if key[dim] < x {
				n = n.left
			} else {
				n = n.right
			}
			continue
		}
		var goLeft, goRight bool
		if isS {
			// S duplicated at an S-split: ε-range of s is [s−Low, s+High].
			goLeft = key[dim]-p.band.Low[dim] < x
			goRight = key[dim]+p.band.High[dim] >= x
		} else {
			// T duplicated at a T-split: ε-range of t is [t−High, t+Low].
			goLeft = key[dim]-p.band.High[dim] < x
			goRight = key[dim]+p.band.Low[dim] >= x
		}
		switch {
		case goLeft && goRight:
			dst = p.assign(n.left, id, key, isS, dst)
			n = n.right
		case goLeft:
			n = n.left
		default:
			n = n.right
		}
	}

	if n.small && (n.rows > 1 || n.cols > 1) {
		h := partition.HashID(id, p.seed^uint64(n.id)*0x100000001b3)
		if isS {
			row := int(h % uint64(n.rows))
			for c := 0; c < n.cols; c++ {
				dst = append(dst, n.partBase+row*n.cols+c)
			}
		} else {
			col := int(h % uint64(n.cols))
			for r := 0; r < n.rows; r++ {
				dst = append(dst, n.partBase+r*n.cols+col)
			}
		}
		return dst
	}
	return append(dst, n.partBase)
}

// Regions returns the leaf regions of the split tree in partition order
// (useful for diagnostics, visualization, and tests). Small leaves report a
// single region covering all their grid cells.
func (p *Plan) Regions() []data.Region {
	var out []data.Region
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf {
			out = append(out, n.region.Clone())
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(p.root)
	return out
}

// FinalStats returns the iteration statistics of the chosen partitioning.
func (p *Plan) FinalStats() IterationStats {
	for _, h := range p.History {
		if h.Iteration == p.Chosen {
			return h
		}
	}
	if len(p.History) > 0 {
		return p.History[len(p.History)-1]
	}
	return IterationStats{}
}

// Describe returns a short human-readable summary of the plan.
func (p *Plan) Describe() string {
	fs := p.FinalStats()
	return fmt.Sprintf("recpart plan: %d leaves, %d partitions, est dup overhead %.2f%%, est load overhead %.2f%%",
		p.Leaves, p.parts, 100*fs.DupOverhead, 100*fs.LoadOverhead)
}
