package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"bandjoin/internal/data"
	"bandjoin/internal/partition"
)

// action is one applied step of the repeat loop: either a regular split of a
// leaf or an increment of a small leaf's internal 1-Bucket grid. The action
// log, together with the deterministic node-ID numbering, lets RecPart replay
// the prefix of actions that produced the best partitioning found (the
// "winning partitioning P*" of Algorithm 1) without snapshotting the tree at
// every iteration.
type action struct {
	nodeID int
	// Regular split.
	dim  int
	val  float64
	kind splitKind
	// Small-leaf action.
	smallAction bool
	addRow      bool
}

// growEnv is the state and arithmetic shared by the two grower
// implementations: the serial reference grower below (the correctness oracle)
// and the fast grower (fastgrower.go). Everything that influences a planning
// decision — split scoring, the per-iteration statistics, the termination
// rule, the incremental total-input accounting — lives here and is executed
// through the same code by both, so the two growers produce bit-identical
// action logs and histories (the property the equivalence suite pins).
type growEnv struct {
	ctx  *partition.Context
	opts Options
	band data.Band
	w    int

	beta2, beta3 float64
	varFactor    float64 // (w−1)/w²
	smoothing    float64 // δ of the split score ΔVar/(ΔDup+δ)

	// Sweep constants with the sampling rates folded in: b2s·count ==
	// β2·ScaleS(count) (up to rounding), and likewise for T and the output
	// sample weight. Hoisting the divisions out of the per-candidate loop
	// roughly halves the sweep's cost; both growers share the folded
	// arithmetic, so their scores remain bit-identical to each other.
	b2s, b2t, b3o float64 // β2/SRate, β2/TRate, β3·OutWeight
	invS, invT    float64 // 1/SRate, 1/TRate (0 when the rate is 0)

	actions []action
	history []IterationStats

	// Lower bounds (Lemma 1) used for overhead computation.
	inputLowerBound float64
	estTotalOutput  float64
	loadLowerBound  float64

	// totalInput is Σ leaf.assignedInput() over the current leaves — the
	// estimated total input I including duplicates. It is maintained
	// incrementally (the split leaf's contribution leaves, its replacements'
	// enter) through noteSplit/noteSmall rather than re-summed per iteration;
	// since floating-point addition is order-sensitive, both growers share
	// these exact update expressions so the value is bit-identical.
	totalInput float64
}

func newGrowEnv(ctx *partition.Context, opts Options) growEnv {
	w := ctx.Workers
	e := growEnv{
		ctx:       ctx,
		opts:      opts.withDefaults(w),
		band:      ctx.Band,
		w:         w,
		beta2:     ctx.Model.Beta2,
		beta3:     ctx.Model.Beta3,
		varFactor: float64(w-1) / float64(w*w),
	}
	e.inputLowerBound = float64(ctx.Sample.TotalS + ctx.Sample.TotalT)
	e.estTotalOutput = ctx.Sample.EstimatedOutput()
	e.loadLowerBound = ctx.Model.LowerBoundLoad(e.inputLowerBound, e.estTotalOutput, w)
	e.smoothing = e.opts.DupSmoothingFraction * e.inputLowerBound
	if e.smoothing < 1 {
		e.smoothing = 1
	}
	smp := ctx.Sample
	if smp.SRate > 0 {
		e.invS = 1 / smp.SRate
		e.b2s = e.beta2 / smp.SRate
	}
	if smp.TRate > 0 {
		e.invT = 1 / smp.TRate
		e.b2t = e.beta2 / smp.TRate
	}
	e.b3o = e.beta3 * smp.OutWeight
	return e
}

// rootRegion bounds the split tree's root by the bounding box of the samples,
// expanded by one band width. The assignment of real tuples never depends on
// region containment (only on split predicates), so tuples outside the sample
// bounding box are still routed correctly; the finite box only serves the
// "small partition" detection and candidate-split filtering.
func (e *growEnv) rootRegion() data.Region {
	d := e.band.Dims()
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	expand := func(r *data.Relation) {
		for i := 0; i < r.Len(); i++ {
			k := r.Key(i)
			for dim, v := range k {
				if v < lo[dim] {
					lo[dim] = v
				}
				if v > hi[dim] {
					hi[dim] = v
				}
			}
		}
	}
	expand(e.ctx.Sample.S)
	expand(e.ctx.Sample.T)
	for i := 0; i < d; i++ {
		if math.IsInf(lo[i], 0) || math.IsInf(hi[i], 0) {
			lo[i], hi[i] = 0, 0
		}
		lo[i] -= e.band.MaxWidth(i)
		hi[i] += e.band.MaxWidth(i) + 1e-9
	}
	return data.Region{Lo: lo, Hi: hi}
}

// setEstimates refreshes the leaf's scaled input/output estimates from its
// sample membership counts.
func (e *growEnv) setEstimates(n *node) {
	smp := e.ctx.Sample
	n.estS = smp.ScaleS(n.nS)
	n.estT = smp.ScaleT(n.nT)
	n.estOut = smp.ScaleOut(n.nOut)
}

// noteSplit folds a regular split into the incremental total-input sum.
func (e *growEnv) noteSplit(parent, left, right *node) {
	e.totalInput += left.assignedInput() + right.assignedInput() - parent.assignedInput()
}

// noteSmall folds a small-leaf grid increment into the incremental
// total-input sum; prev is the leaf's assignedInput before the increment.
func (e *growEnv) noteSmall(n *node, prev float64) {
	e.totalInput += n.assignedInput() - prev
}

// grower is the straightforward serial implementation of Algorithm 1: one
// leaf at a time, re-sorting the leaf's sample per dimension for every
// best-split evaluation, with freshly allocated candidate and statistics
// buffers. It is retained behind Options.Serial as the reference the fast
// grower is compared against (the SerialShuffle pattern of internal/exec).
// Note the scope of that oracle role: the *mechanical* machinery the fast
// grower replaces — sort inheritance, arenas, membership-flag distribution,
// the parallel reduction — is independent here and cross-checked by the
// equivalence suite, while the decision arithmetic itself (sweep scoring,
// statistics, termination) is deliberately shared through growEnv, because
// bit-identical plans are impossible under independently-rounded floating
// point. Bugs in the shared arithmetic are instead caught by the semantic
// tests (Definition 1 invariants, history monotonicity, plan-quality
// comparisons), which run against the default fast path.
type grower struct {
	growEnv

	nodes  []*node
	root   *node
	leaves leafHeap
}

func newGrower(ctx *partition.Context, opts Options) *grower {
	return &grower{growEnv: newGrowEnv(ctx, opts)}
}

// initialize builds the root leaf holding all samples (lines 1-4 of
// Algorithm 1).
func (g *grower) initialize() {
	smp := g.ctx.Sample
	root := &node{
		id:      0,
		region:  g.rootRegion(),
		isLeaf:  true,
		rows:    1,
		cols:    1,
		heapIdx: -1,
	}
	root.sIdx = make([]int32, smp.S.Len())
	for i := range root.sIdx {
		root.sIdx[i] = int32(i)
	}
	root.tIdx = make([]int32, smp.T.Len())
	for i := range root.tIdx {
		root.tIdx[i] = int32(i)
	}
	root.outIdx = make([]int32, smp.OutS.Len())
	for i := range root.outIdx {
		root.outIdx[i] = int32(i)
	}
	g.updateEstimates(root)
	root.small = root.region.IsSmall(g.band)
	root.best = g.bestSplit(root)

	g.root = root
	g.nodes = []*node{root}
	g.leaves = leafHeap{}
	heap.Push(&g.leaves, root)
	g.totalInput = root.assignedInput()
	g.history = append(g.history, g.snapshotStats(g.leaves, 0, nil))
}

// updateEstimates refreshes the leaf's scaled input/output estimates from its
// sample membership.
func (g *grower) updateEstimates(n *node) {
	n.nS, n.nT, n.nOut = len(n.sIdx), len(n.tIdx), len(n.outIdx)
	g.setEstimates(n)
}

// grow runs the repeat loop until a termination condition fires and returns
// the index (into the action log) of the winning partitioning.
func (g *grower) grow() int {
	for iter := 1; iter <= g.opts.MaxIterations; iter++ {
		top := g.leaves.peek()
		if top == nil || !top.best.sc.valid {
			break
		}
		top = heap.Pop(&g.leaves).(*node)
		g.apply(top)
		g.history = append(g.history, g.snapshotStats(g.leaves, len(g.actions), nil))
		if g.shouldStop() {
			break
		}
	}
	return g.bestIteration()
}

// apply performs the leaf's best action and re-inserts the affected leaves
// with fresh best-split scores (lines 7-9 of Algorithm 1).
func (g *grower) apply(n *node) {
	c := n.best
	if c.smallAction {
		prev := n.assignedInput()
		if c.addRow {
			n.rows++
		} else {
			n.cols++
		}
		g.noteSmall(n, prev)
		n.best = g.bestSplit(n)
		heap.Push(&g.leaves, n)
		g.actions = append(g.actions, action{nodeID: n.id, smallAction: true, addRow: c.addRow})
		return
	}

	leftRegion, rightRegion := n.region.SplitAt(c.dim, c.val)
	left := &node{id: len(g.nodes), region: leftRegion, isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
	right := &node{id: len(g.nodes) + 1, region: rightRegion, isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
	g.nodes = append(g.nodes, left, right)

	g.distribute(n, c, left, right)
	g.updateEstimates(left)
	g.updateEstimates(right)
	left.small = left.region.IsSmall(g.band)
	right.small = right.region.IsSmall(g.band)
	left.best = g.bestSplit(left)
	right.best = g.bestSplit(right)
	g.noteSplit(n, left, right)

	n.isLeaf = false
	n.dim, n.val, n.kind = c.dim, c.val, c.kind
	n.left, n.right = left, right
	n.sIdx, n.tIdx, n.outIdx = nil, nil, nil

	heap.Push(&g.leaves, left)
	heap.Push(&g.leaves, right)
	g.actions = append(g.actions, action{nodeID: n.id, dim: c.dim, val: c.val, kind: c.kind})
}

// distribute assigns the leaf's sample tuples to the two children of the given
// split, duplicating tuples of the duplicated relation whose ε-range crosses
// the split boundary, exactly as the real shuffle will (Algorithm 3).
func (g *grower) distribute(n *node, c candidate, left, right *node) {
	smp := g.ctx.Sample
	dim, x := c.dim, c.val
	low, high := g.band.Low[dim], g.band.High[dim]

	if c.kind == splitT {
		for _, i := range n.sIdx {
			if smp.S.Key(int(i))[dim] < x {
				left.sIdx = append(left.sIdx, i)
			} else {
				right.sIdx = append(right.sIdx, i)
			}
		}
		for _, i := range n.tIdx {
			v := smp.T.Key(int(i))[dim]
			if v < x+high {
				left.tIdx = append(left.tIdx, i)
			}
			if v >= x-low {
				right.tIdx = append(right.tIdx, i)
			}
		}
		for _, i := range n.outIdx {
			if smp.OutS.Key(int(i))[dim] < x {
				left.outIdx = append(left.outIdx, i)
			} else {
				right.outIdx = append(right.outIdx, i)
			}
		}
		return
	}
	// S-split: partition T, duplicate S near the boundary.
	for _, i := range n.tIdx {
		if smp.T.Key(int(i))[dim] < x {
			left.tIdx = append(left.tIdx, i)
		} else {
			right.tIdx = append(right.tIdx, i)
		}
	}
	for _, i := range n.sIdx {
		v := smp.S.Key(int(i))[dim]
		if v < x+low {
			left.sIdx = append(left.sIdx, i)
		}
		if v >= x-high {
			right.sIdx = append(right.sIdx, i)
		}
	}
	for _, i := range n.outIdx {
		if smp.OutT.Key(int(i))[dim] < x {
			left.outIdx = append(left.outIdx, i)
		} else {
			right.outIdx = append(right.outIdx, i)
		}
	}
}

// ---------------------------------------------------------------------------
// best_split (Algorithm 2)

// bestSplit returns the best available action for the leaf.
func (g *grower) bestSplit(n *node) candidate {
	if n.small {
		return g.evalSmall(n)
	}
	return g.evalRegular(n)
}

// evalSmall scores incrementing the row or column count of a small leaf's
// internal 1-Bucket grid. Adding a row duplicates every T-tuple in the leaf
// once more (each T-tuple is replicated to all rows of its column); adding a
// column duplicates every S-tuple once more.
func (e *growEnv) evalSmall(n *node) candidate {
	cur := n.sumSquaredLoads(e.beta2, e.beta3)

	rowLoad := n.subLoad(e.beta2, e.beta3, n.rows+1, n.cols)
	rowSq := float64((n.rows+1)*n.cols) * rowLoad * rowLoad
	scoreRow := newScore(e.varFactor*(cur-rowSq), n.estT, e.smoothing)

	colLoad := n.subLoad(e.beta2, e.beta3, n.rows, n.cols+1)
	colSq := float64(n.rows*(n.cols+1)) * colLoad * colLoad
	scoreCol := newScore(e.varFactor*(cur-colSq), n.estS, e.smoothing)

	if scoreRow.better(scoreCol) {
		return candidate{sc: scoreRow, smallAction: true, addRow: true}
	}
	if scoreCol.valid {
		return candidate{sc: scoreCol, smallAction: true, addRow: false}
	}
	return candidate{sc: invalidScore()}
}

// evalRegular finds the best decision-tree style split of a regular leaf: for
// every dimension in which the leaf is not yet small, it sorts the sample and
// sweeps all mid-points between consecutive values, scoring each as a T-split
// and (if symmetric partitioning is enabled) as an S-split. Per-dimension
// winners are merged in dimension order, which selects exactly the candidate a
// single interleaved sweep would (score.better is a strict weak order, so the
// first element of the maximal class wins either way).
func (g *grower) evalRegular(n *node) candidate {
	best := candidate{sc: invalidScore()}
	smp := g.ctx.Sample
	lp := n.load(g.beta2, g.beta3)
	lpSq := lp * lp
	if lp <= 0 {
		return best
	}

	for dim := 0; dim < g.band.Dims(); dim++ {
		if n.region.SmallInDim(dim, g.band) {
			continue
		}
		sv := sortedVals(smp.S, n.sIdx, dim)
		tv := sortedVals(smp.T, n.tIdx, dim)
		ovS := sortedVals(smp.OutS, n.outIdx, dim)
		ovT := sortedVals(smp.OutT, n.outIdx, dim)
		cands, cS, cT := candidatePoints(sv, tv, n.region.Lo[dim], n.region.Hi[dim])
		if len(cands) == 0 {
			continue
		}
		if c := g.sweepDim(dim, sv, tv, ovS, ovT, cands, cS, cT, lpSq); c.sc.better(best.sc) {
			best = c
		}
	}
	return best
}

// sweepDim scores every candidate split point of one dimension and returns the
// dimension's best candidate, visiting candidates in ascending order and
// scoring the T-split before the S-split at each point. The value slices must
// be the leaf's sample values in that dimension, sorted ascending; cands, cS,
// and cT must come from candidatePoints (or candsFromSorted) over sv and tv:
// the candidate points plus, per candidate, the number of S and T values
// strictly below it.
func (e *growEnv) sweepDim(dim int, sv, tv, ovS, ovT, cands []float64, cS, cT []int32, lpSq float64) candidate {
	nS, nT, nOut := len(sv), len(tv), len(ovS)
	low, high := e.band.Low[dim], e.band.High[dim]
	b2s, b2t, b3o := e.b2s, e.b2t, e.b3o
	varFactor, smoothing := e.varFactor, e.smoothing
	symmetric := e.opts.Symmetric

	// The running best is tracked as (ratio, varRed); a challenger wins when
	// varRed > ratio·(dup'+δ) — the multiply form of the ratio comparison —
	// so the division is paid only by the rare improving candidate, not by
	// every scored split. Multiply-form ties are broken by larger variance
	// reduction, mirroring score.better.
	bestRatio, bestVarRed, bestDup := math.Inf(-1), math.Inf(-1), 0.0
	bestX, bestKind := 0.0, splitT
	found := false
	consider := func(varRed, dup, x float64, kind splitKind) {
		if dup < 0 {
			dup = 0
		}
		den := dup + smoothing
		lhs := bestRatio * den
		if varRed < lhs || (varRed == lhs && varRed <= bestVarRed) {
			return
		}
		bestRatio = varRed / den
		bestVarRed = varRed
		bestDup = dup
		bestX, bestKind = x, kind
		found = true
	}

	// Monotone pointers into the sorted value arrays; every threshold is
	// a non-decreasing function of the candidate x, so one sweep suffices.
	// The unshifted counts (S and T values below x itself) ride along with
	// the candidates, so only the band-shifted thresholds advance here.
	// The two loads are linked: lL + lR equals the leaf's duplication-free
	// total plus the duplicated tuples' contribution, so lR is one
	// fused multiply-add away from lL instead of a second full dot product.
	base := b2s*float64(nS) + b2t*float64(nT) + b3o*float64(nOut)

	var pTHigh, pTLow, pOS int // T-split pointers
	var pSLow, pSHigh, pOT int // S-split pointers
	for ci, x := range cands {
		// --- T-split: partition S at x, duplicate T within the band.
		pS := int(cS[ci])
		pTHigh = advance(tv, pTHigh, x+high)
		pTLow = advance(tv, pTLow, x-low)
		pOS = advance(ovS, pOS, x)

		dupT := float64(pTHigh - pTLow) // tLeft + tRight − nT, exactly
		lL := b2s*float64(pS) + b2t*float64(pTHigh) + b3o*float64(pOS)
		lR := base - lL + b2t*dupT
		if varRed := varFactor * (lpSq - lL*lL - lR*lR); varRed > 0 {
			consider(varRed, dupT*e.invT, x, splitT)
		}

		if !symmetric {
			continue
		}
		// --- S-split: partition T at x, duplicate S within the band.
		pT := int(cT[ci])
		pSLow = advance(sv, pSLow, x+low)
		pSHigh = advance(sv, pSHigh, x-high)
		pOT = advance(ovT, pOT, x)

		dupS := float64(pSLow - pSHigh) // sL + sR − nS, exactly
		lL = b2s*float64(pSLow) + b2t*float64(pT) + b3o*float64(pOT)
		lR = base - lL + b2s*dupS
		if varRed := varFactor * (lpSq - lL*lL - lR*lR); varRed > 0 {
			consider(varRed, dupS*e.invS, x, splitS)
		}
	}
	if !found {
		return candidate{sc: invalidScore()}
	}
	return candidate{
		sc:   score{valid: true, dup: bestDup, varRed: bestVarRed, ratio: bestRatio},
		dim:  dim,
		val:  bestX,
		kind: bestKind,
	}
}

// sortedVals extracts dimension dim of the referenced sample tuples, sorted
// ascending.
func sortedVals(r *data.Relation, idx []int32, dim int) []float64 {
	out := make([]float64, len(idx))
	for i, id := range idx {
		out[i] = r.Key(int(id))[dim]
	}
	sort.Float64s(out)
	return out
}

// advance moves pointer p forward until vals[p] >= threshold and returns the
// new position, i.e. the count of values strictly below the threshold.
func advance(vals []float64, p int, threshold float64) int {
	for p < len(vals) && vals[p] < threshold {
		p++
	}
	return p
}

// candidatePoints returns the mid-points between consecutive distinct values
// of the combined sample, restricted to the open interval (lo, hi), together
// with the per-candidate counts of S and T values strictly below each point
// (the sweep's unshifted pointers, precomputed).
func candidatePoints(sv, tv []float64, lo, hi float64) (cands []float64, cS, cT []int32) {
	merged := make([]float64, 0, len(sv)+len(tv))
	merged = append(merged, sv...)
	merged = append(merged, tv...)
	sort.Float64s(merged)
	for i := 1; i < len(merged); i++ {
		a, b := merged[i-1], merged[i]
		if a == b {
			continue
		}
		mid := a + (b-a)/2
		if mid > lo && mid < hi && mid > a {
			cands = append(cands, mid)
		}
	}
	cS = make([]int32, len(cands))
	cT = make([]int32, len(cands))
	var pS, pT int
	for i, x := range cands {
		pS = advance(sv, pS, x)
		pT = advance(tv, pT, x)
		cS[i] = int32(pS)
		cT[i] = int32(pT)
	}
	return cands, cS, cT
}

// ---------------------------------------------------------------------------
// Per-iteration statistics and termination

// statsScratch holds the reusable buffers of snapshotStats. A nil scratch
// allocates fresh buffers per call (the serial oracle's behavior); the fast
// grower passes a pooled scratch so the per-iteration statistics are
// allocation-free in steady state. Either way the computed values are
// identical.
type statsScratch struct {
	inputs, outputs, loads          []float64
	workerLoad, workerIn, workerOut []float64
	lpt                             partition.LPTScratch
}

// snapshotStats estimates the quality of the current partitioning: total input
// including duplicates (maintained incrementally in e.totalInput), and max
// worker load / input / output under LPT placement of all (sub-)partitions.
// The leaves slice is iterated in its given order; both growers pass their
// leaf heap's backing slice, which evolves identically under identical
// operation sequences.
func (e *growEnv) snapshotStats(leaves []*node, iteration int, sc *statsScratch) IterationStats {
	var inputs, outputs, loads []float64
	if sc != nil {
		inputs, outputs, loads = sc.inputs[:0], sc.outputs[:0], sc.loads[:0]
	}
	parts := 0
	for _, leaf := range leaves {
		inputs, outputs, loads = leaf.subPartitionLoads(e.beta2, e.beta3, inputs, outputs, loads)
		parts += leaf.numPartitions()
	}
	var sched partition.Schedule
	var workerLoad, workerIn, workerOut []float64
	if sc != nil {
		sc.inputs, sc.outputs, sc.loads = inputs, outputs, loads
		sched = partition.LPTInto(loads, e.w, &sc.lpt)
		workerLoad = resetFloats(&sc.workerLoad, e.w)
		workerIn = resetFloats(&sc.workerIn, e.w)
		workerOut = resetFloats(&sc.workerOut, e.w)
	} else {
		sched = partition.LPT(loads, e.w)
		workerLoad = make([]float64, e.w)
		workerIn = make([]float64, e.w)
		workerOut = make([]float64, e.w)
	}
	for p, wk := range sched {
		workerLoad[wk] += loads[p]
		workerIn[wk] += inputs[p]
		workerOut[wk] += outputs[p]
	}
	maxW := 0
	for wk := 1; wk < e.w; wk++ {
		if workerLoad[wk] > workerLoad[maxW] {
			maxW = wk
		}
	}

	st := IterationStats{
		Iteration:     iteration,
		Partitions:    parts,
		EstTotalInput: e.totalInput,
		EstMaxLoad:    workerLoad[maxW],
		EstIm:         workerIn[maxW],
		EstOm:         workerOut[maxW],
	}
	if e.inputLowerBound > 0 {
		st.DupOverhead = math.Max(0, (e.totalInput-e.inputLowerBound)/e.inputLowerBound)
	}
	if e.loadLowerBound > 0 {
		st.LoadOverhead = math.Max(0, (st.EstMaxLoad-e.loadLowerBound)/e.loadLowerBound)
	}
	st.PredictedTime = e.ctx.Model.Predict(e.totalInput, st.EstIm, st.EstOm)
	return st
}

// resetFloats returns *buf resized to n with all elements zeroed.
func resetFloats(buf *[]float64, n int) []float64 {
	b := *buf
	if cap(b) < n {
		b = make([]float64, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = 0
		}
	}
	*buf = b
	return b
}

// shouldStop evaluates the configured termination condition against the
// recorded history.
func (e *growEnv) shouldStop() bool {
	last := e.history[len(e.history)-1]
	switch e.opts.Termination {
	case TerminateTheoretical:
		// Input duplication grows monotonically; once it exceeds the best
		// load overhead seen, no later partitioning can improve the
		// max{dup, load} objective.
		minLoad := math.Inf(1)
		for _, h := range e.history {
			if h.LoadOverhead < minLoad {
				minLoad = h.LoadOverhead
			}
		}
		return last.DupOverhead > minLoad
	default:
		window := e.opts.ImprovementWindow
		n := len(e.history)
		if n <= window {
			return false
		}
		bestOld := math.Inf(1)
		for _, h := range e.history[:n-window] {
			if h.PredictedTime < bestOld {
				bestOld = h.PredictedTime
			}
		}
		bestNow := bestOld
		for _, h := range e.history[n-window:] {
			if h.PredictedTime < bestNow {
				bestNow = h.PredictedTime
			}
		}
		return bestNow > bestOld*(1-e.opts.MinImprovement)
	}
}

// bestIteration returns the index into the action log whose prefix produced
// the best objective value.
func (e *growEnv) bestIteration() int {
	best := 0
	bestObj := math.Inf(1)
	for _, h := range e.history {
		obj := h.objective(e.opts.Termination)
		if obj < bestObj {
			bestObj = obj
			best = h.Iteration
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Structural replay of an action prefix

// replay rebuilds the split tree produced by the first k actions without
// recomputing any scores; node IDs are assigned in creation order, so they
// coincide with the IDs recorded in the action log. The returned tree is
// freshly allocated (never from a grower arena), since the Plan retains it.
func (e *growEnv) replay(k int) (*node, error) {
	root := &node{id: 0, region: e.rootRegion(), isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
	root.small = root.region.IsSmall(e.band)
	nodes := []*node{root}
	for i := 0; i < k; i++ {
		a := e.actions[i]
		if a.nodeID >= len(nodes) {
			return nil, fmt.Errorf("core: replay action %d references unknown node %d", i, a.nodeID)
		}
		n := nodes[a.nodeID]
		if !n.isLeaf {
			return nil, fmt.Errorf("core: replay action %d targets inner node %d", i, a.nodeID)
		}
		if a.smallAction {
			if a.addRow {
				n.rows++
			} else {
				n.cols++
			}
			continue
		}
		leftRegion, rightRegion := n.region.SplitAt(a.dim, a.val)
		left := &node{id: len(nodes), region: leftRegion, isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
		right := &node{id: len(nodes) + 1, region: rightRegion, isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
		left.small = left.region.IsSmall(e.band)
		right.small = right.region.IsSmall(e.band)
		nodes = append(nodes, left, right)
		n.isLeaf = false
		n.dim, n.val, n.kind = a.dim, a.val, a.kind
		n.left, n.right = left, right
	}
	return root, nil
}
