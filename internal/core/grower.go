package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"bandjoin/internal/data"
	"bandjoin/internal/partition"
)

// action is one applied step of the repeat loop: either a regular split of a
// leaf or an increment of a small leaf's internal 1-Bucket grid. The action
// log, together with the deterministic node-ID numbering, lets RecPart replay
// the prefix of actions that produced the best partitioning found (the
// "winning partitioning P*" of Algorithm 1) without snapshotting the tree at
// every iteration.
type action struct {
	nodeID int
	// Regular split.
	dim  int
	val  float64
	kind splitKind
	// Small-leaf action.
	smallAction bool
	addRow      bool
}

// grower runs Algorithm 1 on the samples and records per-iteration statistics.
type grower struct {
	ctx  *partition.Context
	opts Options
	band data.Band
	w    int

	beta2, beta3 float64
	varFactor    float64 // (w−1)/w²
	smoothing    float64 // δ of the split score ΔVar/(ΔDup+δ)

	nodes   []*node
	root    *node
	leaves  leafHeap
	actions []action
	history []IterationStats

	// Lower bounds (Lemma 1) used for overhead computation.
	inputLowerBound float64
	estTotalOutput  float64
	loadLowerBound  float64
}

func newGrower(ctx *partition.Context, opts Options) *grower {
	w := ctx.Workers
	g := &grower{
		ctx:       ctx,
		opts:      opts.withDefaults(w),
		band:      ctx.Band,
		w:         w,
		beta2:     ctx.Model.Beta2,
		beta3:     ctx.Model.Beta3,
		varFactor: float64(w-1) / float64(w*w),
	}
	g.inputLowerBound = float64(ctx.Sample.TotalS + ctx.Sample.TotalT)
	g.estTotalOutput = ctx.Sample.EstimatedOutput()
	g.loadLowerBound = ctx.Model.LowerBoundLoad(g.inputLowerBound, g.estTotalOutput, w)
	g.smoothing = g.opts.DupSmoothingFraction * g.inputLowerBound
	if g.smoothing < 1 {
		g.smoothing = 1
	}
	return g
}

// rootRegion bounds the split tree's root by the bounding box of the samples,
// expanded by one band width. The assignment of real tuples never depends on
// region containment (only on split predicates), so tuples outside the sample
// bounding box are still routed correctly; the finite box only serves the
// "small partition" detection and candidate-split filtering.
func (g *grower) rootRegion() data.Region {
	d := g.band.Dims()
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	expand := func(r *data.Relation) {
		for i := 0; i < r.Len(); i++ {
			k := r.Key(i)
			for dim, v := range k {
				if v < lo[dim] {
					lo[dim] = v
				}
				if v > hi[dim] {
					hi[dim] = v
				}
			}
		}
	}
	expand(g.ctx.Sample.S)
	expand(g.ctx.Sample.T)
	for i := 0; i < d; i++ {
		if math.IsInf(lo[i], 0) || math.IsInf(hi[i], 0) {
			lo[i], hi[i] = 0, 0
		}
		lo[i] -= g.band.MaxWidth(i)
		hi[i] += g.band.MaxWidth(i) + 1e-9
	}
	return data.Region{Lo: lo, Hi: hi}
}

// initialize builds the root leaf holding all samples (lines 1-4 of
// Algorithm 1).
func (g *grower) initialize() {
	smp := g.ctx.Sample
	root := &node{
		id:      0,
		region:  g.rootRegion(),
		isLeaf:  true,
		rows:    1,
		cols:    1,
		heapIdx: -1,
	}
	root.sIdx = make([]int32, smp.S.Len())
	for i := range root.sIdx {
		root.sIdx[i] = int32(i)
	}
	root.tIdx = make([]int32, smp.T.Len())
	for i := range root.tIdx {
		root.tIdx[i] = int32(i)
	}
	root.outIdx = make([]int32, smp.OutS.Len())
	for i := range root.outIdx {
		root.outIdx[i] = int32(i)
	}
	g.updateEstimates(root)
	root.small = root.region.IsSmall(g.band)
	root.best = g.bestSplit(root)

	g.root = root
	g.nodes = []*node{root}
	g.leaves = leafHeap{}
	heap.Push(&g.leaves, root)
	g.history = append(g.history, g.snapshot(0))
}

// updateEstimates refreshes the leaf's scaled input/output estimates from its
// sample membership.
func (g *grower) updateEstimates(n *node) {
	smp := g.ctx.Sample
	n.estS = smp.ScaleS(len(n.sIdx))
	n.estT = smp.ScaleT(len(n.tIdx))
	n.estOut = smp.ScaleOut(len(n.outIdx))
}

// grow runs the repeat loop until a termination condition fires and returns
// the index (into the action log) of the winning partitioning.
func (g *grower) grow() int {
	for iter := 1; iter <= g.opts.MaxIterations; iter++ {
		top := g.leaves.peek()
		if top == nil || !top.best.sc.valid {
			break
		}
		top = heap.Pop(&g.leaves).(*node)
		g.apply(top)
		g.history = append(g.history, g.snapshot(len(g.actions)))
		if g.shouldStop() {
			break
		}
	}
	return g.bestIteration()
}

// apply performs the leaf's best action and re-inserts the affected leaves
// with fresh best-split scores (lines 7-9 of Algorithm 1).
func (g *grower) apply(n *node) {
	c := n.best
	if c.smallAction {
		if c.addRow {
			n.rows++
		} else {
			n.cols++
		}
		n.best = g.bestSplit(n)
		heap.Push(&g.leaves, n)
		g.actions = append(g.actions, action{nodeID: n.id, smallAction: true, addRow: c.addRow})
		return
	}

	leftRegion, rightRegion := n.region.SplitAt(c.dim, c.val)
	left := &node{id: len(g.nodes), region: leftRegion, isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
	right := &node{id: len(g.nodes) + 1, region: rightRegion, isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
	g.nodes = append(g.nodes, left, right)

	g.distribute(n, c, left, right)
	g.updateEstimates(left)
	g.updateEstimates(right)
	left.small = left.region.IsSmall(g.band)
	right.small = right.region.IsSmall(g.band)
	left.best = g.bestSplit(left)
	right.best = g.bestSplit(right)

	n.isLeaf = false
	n.dim, n.val, n.kind = c.dim, c.val, c.kind
	n.left, n.right = left, right
	n.sIdx, n.tIdx, n.outIdx = nil, nil, nil

	heap.Push(&g.leaves, left)
	heap.Push(&g.leaves, right)
	g.actions = append(g.actions, action{nodeID: n.id, dim: c.dim, val: c.val, kind: c.kind})
}

// distribute assigns the leaf's sample tuples to the two children of the given
// split, duplicating tuples of the duplicated relation whose ε-range crosses
// the split boundary, exactly as the real shuffle will (Algorithm 3).
func (g *grower) distribute(n *node, c candidate, left, right *node) {
	smp := g.ctx.Sample
	dim, x := c.dim, c.val
	low, high := g.band.Low[dim], g.band.High[dim]

	if c.kind == splitT {
		for _, i := range n.sIdx {
			if smp.S.Key(int(i))[dim] < x {
				left.sIdx = append(left.sIdx, i)
			} else {
				right.sIdx = append(right.sIdx, i)
			}
		}
		for _, i := range n.tIdx {
			v := smp.T.Key(int(i))[dim]
			if v < x+high {
				left.tIdx = append(left.tIdx, i)
			}
			if v >= x-low {
				right.tIdx = append(right.tIdx, i)
			}
		}
		for _, i := range n.outIdx {
			if smp.OutS.Key(int(i))[dim] < x {
				left.outIdx = append(left.outIdx, i)
			} else {
				right.outIdx = append(right.outIdx, i)
			}
		}
		return
	}
	// S-split: partition T, duplicate S near the boundary.
	for _, i := range n.tIdx {
		if smp.T.Key(int(i))[dim] < x {
			left.tIdx = append(left.tIdx, i)
		} else {
			right.tIdx = append(right.tIdx, i)
		}
	}
	for _, i := range n.sIdx {
		v := smp.S.Key(int(i))[dim]
		if v < x+low {
			left.sIdx = append(left.sIdx, i)
		}
		if v >= x-high {
			right.sIdx = append(right.sIdx, i)
		}
	}
	for _, i := range n.outIdx {
		if smp.OutT.Key(int(i))[dim] < x {
			left.outIdx = append(left.outIdx, i)
		} else {
			right.outIdx = append(right.outIdx, i)
		}
	}
}

// ---------------------------------------------------------------------------
// best_split (Algorithm 2)

// bestSplit returns the best available action for the leaf.
func (g *grower) bestSplit(n *node) candidate {
	if n.small {
		return g.evalSmall(n)
	}
	return g.evalRegular(n)
}

// evalSmall scores incrementing the row or column count of a small leaf's
// internal 1-Bucket grid. Adding a row duplicates every T-tuple in the leaf
// once more (each T-tuple is replicated to all rows of its column); adding a
// column duplicates every S-tuple once more.
func (g *grower) evalSmall(n *node) candidate {
	cur := n.sumSquaredLoads(g.beta2, g.beta3)

	rowLoad := n.subLoad(g.beta2, g.beta3, n.rows+1, n.cols)
	rowSq := float64((n.rows+1)*n.cols) * rowLoad * rowLoad
	scoreRow := newScore(g.varFactor*(cur-rowSq), n.estT, g.smoothing)

	colLoad := n.subLoad(g.beta2, g.beta3, n.rows, n.cols+1)
	colSq := float64(n.rows*(n.cols+1)) * colLoad * colLoad
	scoreCol := newScore(g.varFactor*(cur-colSq), n.estS, g.smoothing)

	if scoreRow.better(scoreCol) {
		return candidate{sc: scoreRow, smallAction: true, addRow: true}
	}
	if scoreCol.valid {
		return candidate{sc: scoreCol, smallAction: true, addRow: false}
	}
	return candidate{sc: invalidScore()}
}

// evalRegular finds the best decision-tree style split of a regular leaf: for
// every dimension in which the leaf is not yet small, it sorts the sample and
// sweeps all mid-points between consecutive values, scoring each as a T-split
// and (if symmetric partitioning is enabled) as an S-split.
func (g *grower) evalRegular(n *node) candidate {
	best := candidate{sc: invalidScore()}
	smp := g.ctx.Sample
	lp := n.load(g.beta2, g.beta3)
	lpSq := lp * lp
	if lp <= 0 {
		return best
	}
	nS, nT, nOut := len(n.sIdx), len(n.tIdx), len(n.outIdx)

	for dim := 0; dim < g.band.Dims(); dim++ {
		if n.region.SmallInDim(dim, g.band) {
			continue
		}
		sv := sortedVals(smp.S, n.sIdx, dim)
		tv := sortedVals(smp.T, n.tIdx, dim)
		ovS := sortedVals(smp.OutS, n.outIdx, dim)
		ovT := sortedVals(smp.OutT, n.outIdx, dim)
		cands := candidatePoints(sv, tv, n.region.Lo[dim], n.region.Hi[dim])
		if len(cands) == 0 {
			continue
		}
		low, high := g.band.Low[dim], g.band.High[dim]

		// Monotone pointers into the sorted value arrays; every threshold is
		// a non-decreasing function of the candidate x, so one sweep suffices.
		var pS, pTHigh, pTLow, pOS int // T-split pointers
		var pT, pSLow, pSHigh, pOT int // S-split pointers
		for _, x := range cands {
			// --- T-split: partition S at x, duplicate T within the band.
			pS = advance(sv, pS, x)
			pTHigh = advance(tv, pTHigh, x+high)
			pTLow = advance(tv, pTLow, x-low)
			pOS = advance(ovS, pOS, x)

			sLeft, sRight := pS, nS-pS
			tLeft, tRight := pTHigh, nT-pTLow
			outLeft, outRight := pOS, nOut-pOS
			dup := float64(tLeft + tRight - nT)
			lL := g.beta2*(smp.ScaleS(sLeft)+smp.ScaleT(tLeft)) + g.beta3*smp.ScaleOut(outLeft)
			lR := g.beta2*(smp.ScaleS(sRight)+smp.ScaleT(tRight)) + g.beta3*smp.ScaleOut(outRight)
			sc := newScore(g.varFactor*(lpSq-lL*lL-lR*lR), smp.ScaleT(int(dup)), g.smoothing)
			if sc.better(best.sc) {
				best = candidate{sc: sc, dim: dim, val: x, kind: splitT}
			}

			if !g.opts.Symmetric {
				continue
			}
			// --- S-split: partition T at x, duplicate S within the band.
			pT = advance(tv, pT, x)
			pSLow = advance(sv, pSLow, x+low)
			pSHigh = advance(sv, pSHigh, x-high)
			pOT = advance(ovT, pOT, x)

			tL, tR := pT, nT-pT
			sL, sR := pSLow, nS-pSHigh
			oL, oR := pOT, nOut-pOT
			dupS := float64(sL + sR - nS)
			lL = g.beta2*(smp.ScaleS(sL)+smp.ScaleT(tL)) + g.beta3*smp.ScaleOut(oL)
			lR = g.beta2*(smp.ScaleS(sR)+smp.ScaleT(tR)) + g.beta3*smp.ScaleOut(oR)
			sc = newScore(g.varFactor*(lpSq-lL*lL-lR*lR), smp.ScaleS(int(dupS)), g.smoothing)
			if sc.better(best.sc) {
				best = candidate{sc: sc, dim: dim, val: x, kind: splitS}
			}
		}
	}
	return best
}

// sortedVals extracts dimension dim of the referenced sample tuples, sorted
// ascending.
func sortedVals(r *data.Relation, idx []int32, dim int) []float64 {
	out := make([]float64, len(idx))
	for i, id := range idx {
		out[i] = r.Key(int(id))[dim]
	}
	sort.Float64s(out)
	return out
}

// advance moves pointer p forward until vals[p] >= threshold and returns the
// new position, i.e. the count of values strictly below the threshold.
func advance(vals []float64, p int, threshold float64) int {
	for p < len(vals) && vals[p] < threshold {
		p++
	}
	return p
}

// candidatePoints returns the mid-points between consecutive distinct values
// of the combined sample, restricted to the open interval (lo, hi).
func candidatePoints(sv, tv []float64, lo, hi float64) []float64 {
	merged := make([]float64, 0, len(sv)+len(tv))
	merged = append(merged, sv...)
	merged = append(merged, tv...)
	sort.Float64s(merged)
	out := make([]float64, 0, len(merged))
	for i := 1; i < len(merged); i++ {
		a, b := merged[i-1], merged[i]
		if a == b {
			continue
		}
		mid := a + (b-a)/2
		if mid > lo && mid < hi && mid > a {
			out = append(out, mid)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Per-iteration statistics and termination

// snapshot estimates the quality of the current partitioning: total input
// including duplicates, and max worker load / input / output under LPT
// placement of all (sub-)partitions.
func (g *grower) snapshot(iteration int) IterationStats {
	var inputs, outputs, loads []float64
	totalInput := 0.0
	parts := 0
	for _, leaf := range g.leaves {
		inputs, outputs, loads = leaf.subPartitionLoads(g.beta2, g.beta3, inputs, outputs, loads)
		totalInput += leaf.assignedInput()
		parts += leaf.numPartitions()
	}
	sched := partition.LPT(loads, g.w)
	workerLoad := make([]float64, g.w)
	workerIn := make([]float64, g.w)
	workerOut := make([]float64, g.w)
	for p, wk := range sched {
		workerLoad[wk] += loads[p]
		workerIn[wk] += inputs[p]
		workerOut[wk] += outputs[p]
	}
	maxW := 0
	for wk := 1; wk < g.w; wk++ {
		if workerLoad[wk] > workerLoad[maxW] {
			maxW = wk
		}
	}

	st := IterationStats{
		Iteration:     iteration,
		Partitions:    parts,
		EstTotalInput: totalInput,
		EstMaxLoad:    workerLoad[maxW],
		EstIm:         workerIn[maxW],
		EstOm:         workerOut[maxW],
	}
	if g.inputLowerBound > 0 {
		st.DupOverhead = math.Max(0, (totalInput-g.inputLowerBound)/g.inputLowerBound)
	}
	if g.loadLowerBound > 0 {
		st.LoadOverhead = math.Max(0, (st.EstMaxLoad-g.loadLowerBound)/g.loadLowerBound)
	}
	st.PredictedTime = g.ctx.Model.Predict(totalInput, st.EstIm, st.EstOm)
	return st
}

// shouldStop evaluates the configured termination condition against the
// recorded history.
func (g *grower) shouldStop() bool {
	last := g.history[len(g.history)-1]
	switch g.opts.Termination {
	case TerminateTheoretical:
		// Input duplication grows monotonically; once it exceeds the best
		// load overhead seen, no later partitioning can improve the
		// max{dup, load} objective.
		minLoad := math.Inf(1)
		for _, h := range g.history {
			if h.LoadOverhead < minLoad {
				minLoad = h.LoadOverhead
			}
		}
		return last.DupOverhead > minLoad
	default:
		window := g.opts.ImprovementWindow
		n := len(g.history)
		if n <= window {
			return false
		}
		bestOld := math.Inf(1)
		for _, h := range g.history[:n-window] {
			if h.PredictedTime < bestOld {
				bestOld = h.PredictedTime
			}
		}
		bestNow := bestOld
		for _, h := range g.history[n-window:] {
			if h.PredictedTime < bestNow {
				bestNow = h.PredictedTime
			}
		}
		return bestNow > bestOld*(1-g.opts.MinImprovement)
	}
}

// bestIteration returns the index into the action log whose prefix produced
// the best objective value.
func (g *grower) bestIteration() int {
	best := 0
	bestObj := math.Inf(1)
	for _, h := range g.history {
		obj := h.objective(g.opts.Termination)
		if obj < bestObj {
			bestObj = obj
			best = h.Iteration
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Structural replay of an action prefix

// replay rebuilds the split tree produced by the first k actions without
// recomputing any scores; node IDs are assigned in creation order, so they
// coincide with the IDs recorded in the action log.
func (g *grower) replay(k int) (*node, error) {
	root := &node{id: 0, region: g.rootRegion(), isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
	root.small = root.region.IsSmall(g.band)
	nodes := []*node{root}
	for i := 0; i < k; i++ {
		a := g.actions[i]
		if a.nodeID >= len(nodes) {
			return nil, fmt.Errorf("core: replay action %d references unknown node %d", i, a.nodeID)
		}
		n := nodes[a.nodeID]
		if !n.isLeaf {
			return nil, fmt.Errorf("core: replay action %d targets inner node %d", i, a.nodeID)
		}
		if a.smallAction {
			if a.addRow {
				n.rows++
			} else {
				n.cols++
			}
			continue
		}
		leftRegion, rightRegion := n.region.SplitAt(a.dim, a.val)
		left := &node{id: len(nodes), region: leftRegion, isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
		right := &node{id: len(nodes) + 1, region: rightRegion, isLeaf: true, rows: 1, cols: 1, heapIdx: -1}
		left.small = left.region.IsSmall(g.band)
		right.small = right.region.IsSmall(g.band)
		nodes = append(nodes, left, right)
		n.isLeaf = false
		n.dim, n.val, n.kind = a.dim, a.val, a.kind
		n.left, n.right = left, right
	}
	return root, nil
}
