package core

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"bandjoin/internal/data"
)

// fastGrower is the high-performance implementation of Algorithm 1. It makes
// the same decisions as the serial reference grower (grower.go) — the
// equivalence suite pins bit-identical action logs and histories — but gets
// there very differently:
//
//   - Sort inheritance. The root sample is argsorted once per dimension into
//     index arrays; a split then distributes each sorted view to the two
//     children with a linear stable partition, so every child's per-dimension
//     sorted views cost O(n·d) instead of the oracle's fresh
//     O(n·d·log n) sorts per leaf.
//
//   - Allocation-free growth. Leaf index slabs are carved from a reusable
//     arena, growth nodes come from a chunked node arena, and every sweep,
//     candidate, membership, and statistics buffer lives in a pooled scratch
//     (the sync.Pool pattern of internal/localjoin and the flat-arena pattern
//     of internal/exec's shuffle), so steady-state planning performs a
//     handful of allocations per plan instead of several per leaf per
//     dimension.
//
//   - Incremental iteration statistics. The estimated total input is
//     maintained incrementally (growEnv.totalInput), the per-iteration
//     partition loads are written into reused buffers, and LPT placement
//     reuses its scratch (partition.LPTInto) instead of reallocating sort
//     order, worker heap, and schedule every iteration.
//
//   - Parallel best-split. The per-dimension sweeps of the leaves created by
//     a split are evaluated on a bounded worker pool (Options.Parallelism)
//     and merged deterministically in (node, ascending dimension) order with
//     score.better — the exact visit order of the serial oracle — so plans
//     are bit-identical regardless of scheduling.
type fastGrower struct {
	growEnv

	dims     int
	numNodes int
	root     *node
	leaves   leafHeap
	sc       *plannerScratch
	par      int
}

// ---------------------------------------------------------------------------
// Arenas and pooled scratch

// i32Arena carves int32 slices from a single reusable buffer. When the buffer
// is exhausted a larger one replaces it (previously carved slices stay alive
// through their own references); reset rewinds the write offset, so after a
// few plans the buffer converges to a size that serves a whole plan with zero
// allocations.
type i32Arena struct {
	buf []int32
	off int
}

func (a *i32Arena) alloc(n int) []int32 {
	if a.off+n > len(a.buf) {
		size := 2 * len(a.buf)
		if size < n {
			size = n
		}
		if size < 1<<15 {
			size = 1 << 15
		}
		a.buf = make([]int32, size)
		a.off = 0
	}
	out := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

func (a *i32Arena) reset() { a.off = 0 }

// nodeArena hands out growth-phase nodes from fixed-size blocks, so node
// pointers stay valid as the arena grows. reset rewinds for the next plan;
// nodes are zeroed on alloc. The final split tree is never built from the
// arena (replay allocates fresh nodes), so pooling the arena across plans is
// safe.
type nodeArena struct {
	blocks [][]node
	bi, ni int
}

const nodeBlockSize = 128

func (a *nodeArena) alloc() *node {
	if a.bi == len(a.blocks) {
		a.blocks = append(a.blocks, make([]node, nodeBlockSize))
	}
	n := &a.blocks[a.bi][a.ni]
	*n = node{}
	a.ni++
	if a.ni == nodeBlockSize {
		a.bi++
		a.ni = 0
	}
	return n
}

func (a *nodeArena) reset() { a.bi, a.ni = 0, 0 }

// evalScratch is one sweep worker's private value buffers.
type evalScratch struct {
	sv, tv, ovS, ovT, cands []float64
	cS, cT                  []int32
}

// evalTask is one per-dimension sweep of one leaf; result holds the
// dimension's best candidate after runTasks.
type evalTask struct {
	n      *node
	dim    int
	lpSq   float64
	result candidate
}

// plannerScratch is the reusable state of one fast plan computation, checked
// out of plannerPool per plan so concurrent planners never share buffers.
type plannerScratch struct {
	idx                   i32Arena
	nodes                 nodeArena
	membS, membT, membOut []byte
	leaves                leafHeap
	stats                 statsScratch
	evals                 []evalScratch
	tasks                 []evalTask

	// Root argsort (radix) buffers.
	radixK, radixK2 []uint64
	radixI, radixI2 []int32
}

var plannerPool = sync.Pool{New: func() interface{} { return &plannerScratch{} }}

// growBytes ensures *buf has length n.
func growBytes(buf *[]byte, n int) {
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	*buf = (*buf)[:n]
}

const (
	sideLeft  byte = 1
	sideRight byte = 2
)

// ---------------------------------------------------------------------------
// Growth

// runFastGrower grows the split tree with pooled scratch and returns the
// populated environment (action log, history) plus the winning iteration.
func runFastGrower(env growEnv, parallelism int) (growEnv, int) {
	f := &fastGrower{growEnv: env, dims: env.band.Dims(), par: parallelism}
	if f.par <= 0 {
		f.par = runtime.GOMAXPROCS(0)
	}
	f.sc = plannerPool.Get().(*plannerScratch)
	defer f.release()
	smp := f.ctx.Sample
	growBytes(&f.sc.membS, smp.S.Len())
	growBytes(&f.sc.membT, smp.T.Len())
	growBytes(&f.sc.membOut, smp.OutS.Len())
	f.initialize()
	chosen := f.grow()
	return f.growEnv, chosen
}

// release returns the scratch to the pool, dropping node references so the
// previous plan's tree can be collected once its arena slots are reused.
func (f *fastGrower) release() {
	for i := range f.leaves {
		f.leaves[i] = nil
	}
	f.sc.leaves = f.leaves[:0]
	for i := range f.sc.tasks {
		f.sc.tasks[i] = evalTask{}
	}
	f.sc.tasks = f.sc.tasks[:0]
	f.sc.idx.reset()
	f.sc.nodes.reset()
	plannerPool.Put(f.sc)
	f.sc = nil
	f.root = nil
	f.leaves = nil
}

// initialize builds the root leaf: one argsort of the samples per dimension,
// the only sorting the fast grower ever performs (lines 1-4 of Algorithm 1).
func (f *fastGrower) initialize() {
	smp := f.ctx.Sample
	d := f.dims
	root := f.sc.nodes.alloc()
	root.id = 0
	root.region = f.rootRegion()
	root.isLeaf = true
	root.rows, root.cols = 1, 1
	root.heapIdx = -1
	root.nS, root.nT, root.nOut = smp.S.Len(), smp.T.Len(), smp.OutS.Len()
	root.slab = f.sc.idx.alloc(d * (root.nS + root.nT + 2*root.nOut))
	for dim := 0; dim < d; dim++ {
		f.argsortInto(smp.S, root.nS, dim, root.sView(dim))
		f.argsortInto(smp.T, root.nT, dim, root.tView(d, dim))
		f.argsortInto(smp.OutS, root.nOut, dim, root.outSView(d, dim))
		f.argsortInto(smp.OutT, root.nOut, dim, root.outTView(d, dim))
	}
	f.setEstimates(root)
	root.small = root.region.IsSmall(f.band)
	f.evalBatch(root, nil)

	f.numNodes = 1
	f.root = root
	f.leaves = f.sc.leaves[:0]
	heap.Push(&f.leaves, root)
	f.totalInput = root.assignedInput()
	f.history = append(f.history, f.snapshotStats(f.leaves, 0, &f.sc.stats))
}

// argsortInto writes the indices 0..n-1 of r sorted by dimension dim (ties by
// index) into out, using a stable byte-wise LSD radix sort over the
// order-preserving integer encoding of the float keys. Byte positions on
// which every key agrees are skipped, so the near-constant exponent bytes of
// typical samples cost only their histogram pass.
func (f *fastGrower) argsortInto(r *data.Relation, n, dim int, out []int32) {
	if n == 0 {
		return
	}
	sc := f.sc
	keys := resizeU64(&sc.radixK, n)
	idx := resizeI32(&sc.radixI, n)
	tmpK := resizeU64(&sc.radixK2, n)
	tmpI := resizeI32(&sc.radixI2, n)
	for i := 0; i < n; i++ {
		keys[i] = floatSortKey(r.KeyAt(i, dim))
		idx[i] = int32(i)
	}
	for shift := 0; shift < 64; shift += 8 {
		var count [256]int
		for _, k := range keys {
			count[byte(k>>shift)]++
		}
		if count[byte(keys[0]>>shift)] == n {
			continue // all keys share this byte
		}
		pos := 0
		var start [256]int
		for b := 0; b < 256; b++ {
			start[b] = pos
			pos += count[b]
		}
		for i, k := range keys {
			b := byte(k >> shift)
			tmpK[start[b]] = k
			tmpI[start[b]] = idx[i]
			start[b]++
		}
		keys, tmpK = tmpK, keys
		idx, tmpI = tmpI, idx
	}
	copy(out, idx)
	// The buffers may have swapped an odd number of times; store them back so
	// every slice the scratch retains is scratch-owned (never a slab view).
	sc.radixK, sc.radixK2 = keys, tmpK
	sc.radixI, sc.radixI2 = idx, tmpI
}

// floatSortKey maps a float64 to a uint64 whose unsigned order matches the
// float order (negative values are bit-complemented, positives get the sign
// bit set).
func floatSortKey(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// resizeU64 returns *buf with length n (contents unspecified).
func resizeU64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// resizeI32 returns *buf with length n (contents unspecified).
func resizeI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// grow runs the repeat loop until a termination condition fires and returns
// the index (into the action log) of the winning partitioning.
func (f *fastGrower) grow() int {
	for iter := 1; iter <= f.opts.MaxIterations; iter++ {
		top := f.leaves.peek()
		if top == nil || !top.best.sc.valid {
			break
		}
		top = heap.Pop(&f.leaves).(*node)
		f.apply(top)
		f.history = append(f.history, f.snapshotStats(f.leaves, len(f.actions), &f.sc.stats))
		if f.shouldStop() {
			break
		}
	}
	return f.bestIteration()
}

// apply performs the leaf's best action and re-inserts the affected leaves
// with fresh best-split scores (lines 7-9 of Algorithm 1), evaluating both
// fresh children's per-dimension sweeps on the worker pool.
func (f *fastGrower) apply(n *node) {
	c := n.best
	if c.smallAction {
		prev := n.assignedInput()
		if c.addRow {
			n.rows++
		} else {
			n.cols++
		}
		f.noteSmall(n, prev)
		n.best = f.evalSmall(n)
		heap.Push(&f.leaves, n)
		f.actions = append(f.actions, action{nodeID: n.id, smallAction: true, addRow: c.addRow})
		return
	}

	leftRegion, rightRegion := n.region.SplitAt(c.dim, c.val)
	left := f.sc.nodes.alloc()
	right := f.sc.nodes.alloc()
	left.id = f.numNodes
	right.id = f.numNodes + 1
	f.numNodes += 2
	left.region, right.region = leftRegion, rightRegion
	left.isLeaf, right.isLeaf = true, true
	left.rows, left.cols = 1, 1
	right.rows, right.cols = 1, 1
	left.heapIdx, right.heapIdx = -1, -1

	f.distribute(n, c, left, right)
	f.setEstimates(left)
	f.setEstimates(right)
	left.small = left.region.IsSmall(f.band)
	right.small = right.region.IsSmall(f.band)
	f.evalBatch(left, right)
	f.noteSplit(n, left, right)

	n.isLeaf = false
	n.dim, n.val, n.kind = c.dim, c.val, c.kind
	n.left, n.right = left, right
	n.slab = nil // dead views; the arena space is reclaimed at release

	heap.Push(&f.leaves, left)
	heap.Push(&f.leaves, right)
	f.actions = append(f.actions, action{nodeID: n.id, dim: c.dim, val: c.val, kind: c.kind})
}

// distribute assigns the leaf's sample tuples to the two children of the
// given split — the same membership predicates as the serial grower's
// distribute (Algorithm 3) — while inheriting sortedness: membership flags
// are computed once per tuple from the dimension-0 views, then every
// dimension's sorted view is split by a linear stable partition, so the
// children's views are sorted without sorting.
func (f *fastGrower) distribute(n *node, c candidate, left, right *node) {
	smp := f.ctx.Sample
	d := f.dims
	dim, x := c.dim, c.val
	low, high := f.band.Low[dim], f.band.High[dim]
	membS, membT, membOut := f.sc.membS, f.sc.membT, f.sc.membOut

	var lnS, rnS, lnT, rnT, lnOut, rnOut int
	if c.kind == splitT {
		// T-split: partition S at x, duplicate T within the band; output
		// pairs follow their S side.
		for _, i := range n.sView(0) {
			if smp.S.KeyAt(int(i), dim) < x {
				membS[i] = sideLeft
				lnS++
			} else {
				membS[i] = sideRight
				rnS++
			}
		}
		for _, i := range n.tView(d, 0) {
			v := smp.T.KeyAt(int(i), dim)
			var m byte
			if v < x+high {
				m = sideLeft
				lnT++
			}
			if v >= x-low {
				m |= sideRight
				rnT++
			}
			membT[i] = m
		}
		for _, i := range n.outSView(d, 0) {
			if smp.OutS.KeyAt(int(i), dim) < x {
				membOut[i] = sideLeft
				lnOut++
			} else {
				membOut[i] = sideRight
				rnOut++
			}
		}
	} else {
		// S-split: partition T at x, duplicate S near the boundary; output
		// pairs follow their T side.
		for _, i := range n.tView(d, 0) {
			if smp.T.KeyAt(int(i), dim) < x {
				membT[i] = sideLeft
				lnT++
			} else {
				membT[i] = sideRight
				rnT++
			}
		}
		for _, i := range n.sView(0) {
			v := smp.S.KeyAt(int(i), dim)
			var m byte
			if v < x+low {
				m = sideLeft
				lnS++
			}
			if v >= x-high {
				m |= sideRight
				rnS++
			}
			membS[i] = m
		}
		for _, i := range n.outTView(d, 0) {
			if smp.OutT.KeyAt(int(i), dim) < x {
				membOut[i] = sideLeft
				lnOut++
			} else {
				membOut[i] = sideRight
				rnOut++
			}
		}
	}

	left.nS, left.nT, left.nOut = lnS, lnT, lnOut
	right.nS, right.nT, right.nOut = rnS, rnT, rnOut
	left.slab = f.sc.idx.alloc(d * (lnS + lnT + 2*lnOut))
	right.slab = f.sc.idx.alloc(d * (rnS + rnT + 2*rnOut))

	for dd := 0; dd < d; dd++ {
		stablePartition(n.sView(dd), membS, left.sView(dd), right.sView(dd))
		stablePartition(n.tView(d, dd), membT, left.tView(d, dd), right.tView(d, dd))
		stablePartition(n.outSView(d, dd), membOut, left.outSView(d, dd), right.outSView(d, dd))
		stablePartition(n.outTView(d, dd), membOut, left.outTView(d, dd), right.outTView(d, dd))
	}
}

// stablePartition distributes the sorted index view src into left and right
// according to the membership flags, preserving order (duplicated indices go
// to both sides). left and right must have the exact flag counts as length.
func stablePartition(src []int32, memb []byte, left, right []int32) {
	li, ri := 0, 0
	for _, i := range src {
		m := memb[i]
		if m&sideLeft != 0 {
			left[li] = i
			li++
		}
		if m&sideRight != 0 {
			right[ri] = i
			ri++
		}
	}
}

// ---------------------------------------------------------------------------
// Parallel best-split

// evalBatch computes the best action of the given fresh leaves (b may be
// nil). Small leaves are scored inline; the regular leaves' per-dimension
// sweeps are fanned out to the worker pool and reduced in (node, ascending
// dimension) order, exactly the serial oracle's visit order.
func (f *fastGrower) evalBatch(a, b *node) {
	tasks := f.sc.tasks[:0]
	for _, n := range [2]*node{a, b} {
		if n == nil {
			continue
		}
		if n.small {
			n.best = f.evalSmall(n)
			continue
		}
		n.best = candidate{sc: invalidScore()}
		lp := n.load(f.beta2, f.beta3)
		if lp <= 0 {
			continue
		}
		lpSq := lp * lp
		for dim := 0; dim < f.dims; dim++ {
			if n.region.SmallInDim(dim, f.band) {
				continue
			}
			tasks = append(tasks, evalTask{n: n, dim: dim, lpSq: lpSq})
		}
	}
	f.sc.tasks = tasks
	if len(tasks) == 0 {
		return
	}
	f.runTasks(tasks)
	for i := range tasks {
		t := &tasks[i]
		if t.result.sc.better(t.n.best.sc) {
			t.n.best = t.result
		}
	}
}

// runTasks evaluates the sweep tasks on at most f.par goroutines, each with
// its own value scratch. Tasks only read shared state and write their own
// result slot, so the reduction in evalBatch is free of ordering effects.
func (f *fastGrower) runTasks(tasks []evalTask) {
	workers := f.par
	if workers > len(tasks) {
		workers = len(tasks)
	}
	for len(f.sc.evals) < workers {
		f.sc.evals = append(f.sc.evals, evalScratch{})
	}
	if workers <= 1 {
		es := &f.sc.evals[0]
		for i := range tasks {
			t := &tasks[i]
			t.result = f.evalDim(t.n, t.dim, t.lpSq, es)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func(es *evalScratch) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(tasks) {
				return
			}
			t := &tasks[i]
			t.result = f.evalDim(t.n, t.dim, t.lpSq, es)
		}
	}
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(es *evalScratch) {
			defer wg.Done()
			work(es)
		}(&f.sc.evals[w])
	}
	work(&f.sc.evals[0])
	wg.Wait()
}

// evalDim computes one dimension's best candidate for a leaf: gather the
// leaf's sorted values from its inherited views (no sorting), merge S and T
// linearly, form the candidate mid-points, and run the shared sweep.
func (f *fastGrower) evalDim(n *node, dim int, lpSq float64, es *evalScratch) candidate {
	smp := f.ctx.Sample
	d := f.dims
	es.sv = gatherVals(smp.S, n.sView(dim), dim, es.sv[:0])
	es.tv = gatherVals(smp.T, n.tView(d, dim), dim, es.tv[:0])
	es.ovS = gatherVals(smp.OutS, n.outSView(d, dim), dim, es.ovS[:0])
	es.ovT = gatherVals(smp.OutT, n.outTView(d, dim), dim, es.ovT[:0])
	es.cands, es.cS, es.cT = candsFromSorted(es.sv, es.tv, n.region.Lo[dim], n.region.Hi[dim],
		es.cands[:0], es.cS[:0], es.cT[:0])
	if len(es.cands) == 0 {
		return candidate{sc: invalidScore()}
	}
	return f.sweepDim(dim, es.sv, es.tv, es.ovS, es.ovT, es.cands, es.cS, es.cT, lpSq)
}

// gatherVals appends dimension dim of the referenced sample tuples to out.
// idx is sorted by that dimension's value, so out comes out sorted — the same
// value sequence sortedVals produces for the same membership.
func gatherVals(r *data.Relation, idx []int32, dim int, out []float64) []float64 {
	for _, id := range idx {
		out = append(out, r.KeyAt(int(id), dim))
	}
	return out
}

// candsFromSorted fuses the merge of two ascending value slices with the
// mid-point generation and below-count bookkeeping of candidatePoints into
// one pass: at the moment a candidate is emitted, the merge positions are
// exactly the counts of S and T values strictly below it.
func candsFromSorted(sv, tv []float64, lo, hi float64, out []float64, cS, cT []int32) ([]float64, []int32, []int32) {
	i, j := 0, 0
	have := false
	var prev float64
	for i < len(sv) || j < len(tv) {
		pi, pj := i, j
		var v float64
		if j >= len(tv) || (i < len(sv) && sv[i] <= tv[j]) {
			v = sv[i]
			i++
		} else {
			v = tv[j]
			j++
		}
		if have && v != prev {
			mid := prev + (v-prev)/2
			if mid > lo && mid < hi && mid > prev {
				out = append(out, mid)
				cS = append(cS, int32(pi))
				cT = append(cT, int32(pj))
			}
		}
		prev = v
		have = true
	}
	return out, cS, cT
}
