package core

import (
	"testing"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// TestDebugGrowth prints the growth history for a representative skewed
// workload when run with -v; it asserts only basic sanity so it can stay in
// the suite as a smoke test.
func TestDebugGrowth(t *testing.T) {
	s, tt := data.ParetoPair(3, 1.5, 40000, 1)
	band := data.Uniform(3, 0.03)
	smp, err := sample.Draw(s, tt, band, sample.Options{InputSampleSize: 6000, OutputSampleSize: 3000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &partition.Context{Band: band, Workers: 30, Sample: smp, Model: costmodel.Default(), Seed: 1}
	rp := NewRecPartS()
	plan, err := rp.PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("iterations=%d chosen=%d leaves=%d partitions=%d", len(plan.History)-1, plan.Chosen, plan.Leaves, plan.NumPartitions())
	for i, h := range plan.History {
		if i%10 == 0 || i == plan.Chosen || i == len(plan.History)-1 {
			t.Logf("iter=%3d parts=%3d I=%8.0f dup=%6.2f%% Lm=%8.4g Im=%8.0f Om=%8.0f load=%7.2f%% pred=%.5f",
				h.Iteration, h.Partitions, h.EstTotalInput, 100*h.DupOverhead, h.EstMaxLoad, h.EstIm, h.EstOm, 100*h.LoadOverhead, h.PredictedTime)
		}
	}
	if plan.NumPartitions() < 1 {
		t.Fatal("plan has no partitions")
	}
}
