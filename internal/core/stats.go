package core

// IterationStats records the estimated quality of the partitioning after a
// given number of repeat-loop iterations of Algorithm 1. All quantities are
// estimates derived from the samples, as the optimizer never sees the full
// input.
type IterationStats struct {
	// Iteration is the number of applied split actions (0 = the single root
	// partition).
	Iteration int
	// Partitions is the number of physical partitions (sub-partitions of
	// small leaves counted individually).
	Partitions int
	// EstTotalInput is the estimated total input including duplicates, I.
	EstTotalInput float64
	// DupOverhead is (I − (|S|+|T|)) / (|S|+|T|), the x-axis of Figure 4.
	DupOverhead float64
	// EstMaxLoad, EstIm and EstOm are the estimated load, input and output of
	// the most loaded worker under LPT placement of the partitions.
	EstMaxLoad float64
	EstIm      float64
	EstOm      float64
	// LoadOverhead is (Lm − L0)/L0 with L0 from Lemma 1, the y-axis of
	// Figure 4.
	LoadOverhead float64
	// PredictedTime is the cost model's join-time estimate M(I, Im, Om).
	PredictedTime float64
}

// objective returns the quantity minimized when selecting the winning
// partitioning under the given termination mode.
func (s IterationStats) objective(mode Termination) float64 {
	if mode == TerminateTheoretical {
		if s.DupOverhead > s.LoadOverhead {
			return s.DupOverhead
		}
		return s.LoadOverhead
	}
	return s.PredictedTime
}
