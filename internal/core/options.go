// Package core implements RecPart, the paper's main contribution: recursive
// partitioning of the d-dimensional join-attribute space for distributed
// band-joins (Algorithm 1). Starting from a single partition covering the
// whole space, RecPart repeatedly splits the leaf with the best available
// split, where splits are scored by the ratio of load-variance reduction to
// input-duplication increase (Algorithm 2). Partitions that have become small
// relative to the band width switch to an internal 1-Bucket grid. The final
// plan assigns every input tuple to the partitions it must reach (Algorithm 3)
// so that each join result is produced by exactly one local join.
package core

import "fmt"

// Termination selects how RecPart decides when to stop growing the split tree
// and which of the partitionings seen so far wins (Section 4.2).
type Termination int

const (
	// TerminateApplied stops when the cost-model-predicted join time has not
	// improved by at least MinImprovement over the last ImprovementWindow
	// iterations; the winning partitioning minimizes predicted join time.
	TerminateApplied Termination = iota
	// TerminateTheoretical stops when the input-duplication overhead exceeds
	// the smallest max-load overhead seen so far; the winning partitioning
	// minimizes max{duplication overhead, load overhead} relative to the
	// Lemma 1 lower bounds.
	TerminateTheoretical
)

// String implements fmt.Stringer.
func (t Termination) String() string {
	switch t {
	case TerminateApplied:
		return "applied"
	case TerminateTheoretical:
		return "theoretical"
	default:
		return fmt.Sprintf("termination(%d)", int(t))
	}
}

// Options configures RecPart.
type Options struct {
	// Symmetric enables symmetric partitioning: every candidate split is
	// evaluated both as a T-split (partition S, duplicate T) and as an
	// S-split (partition T, duplicate S), and the better one is used. With
	// Symmetric false the algorithm is the paper's RecPart-S, which always
	// duplicates T.
	Symmetric bool

	// Termination selects the stopping rule; the default is the applied
	// (cost-model) rule the paper uses for its cloud experiments.
	Termination Termination

	// MaxIterations caps the number of repeat-loop executions as a safety
	// net. Zero means the default of 64·w + 64, far above the "small multiple
	// of w" the paper observes in practice.
	MaxIterations int

	// ImprovementWindow is the number of recent iterations over which the
	// applied rule looks for improvement. Zero means w, the paper's choice.
	ImprovementWindow int

	// MinImprovement is the relative improvement in predicted join time that
	// counts as progress for the applied rule. Zero means 1%.
	MinImprovement float64

	// DupSmoothingFraction is the smoothing budget δ of the split score
	// ΔVar/(ΔDup+δ), expressed as a fraction of |S|+|T|. Zero means 0.2%.
	// See score.go for why the smoothing exists; the ablation benchmark
	// BenchmarkAblationDupSmoothing sweeps it.
	DupSmoothingFraction float64

	// Seed drives the deterministic pseudo-random row/column assignment used
	// inside small partitions.
	Seed int64

	// Serial selects the retained serial reference grower — per-leaf
	// re-sorting, freshly allocated buffers, single-threaded — instead of the
	// fast planner (sort inheritance, arena scratch, parallel best-split; see
	// fastgrower.go). Both produce bit-identical plans; the serial grower is
	// kept as the correctness oracle and benchmark baseline, the same pattern
	// as exec.Options.SerialShuffle.
	Serial bool

	// Parallelism bounds the fast planner's worker pool for best-split
	// evaluation (per-dimension sweeps of the leaves created by each split).
	// Zero selects GOMAXPROCS; 1 evaluates inline on the calling goroutine.
	// The planner's decisions are bit-identical regardless of the value.
	// Ignored when Serial is set.
	Parallelism int
}

// DefaultOptions returns RecPart with symmetric partitioning enabled and the
// applied termination rule.
func DefaultOptions() Options {
	return Options{Symmetric: true, Termination: TerminateApplied, Seed: 1}
}

// withDefaults fills unset option fields given the number of workers.
func (o Options) withDefaults(workers int) Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 64*workers + 64
	}
	if o.ImprovementWindow <= 0 {
		o.ImprovementWindow = workers
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = 0.01
	}
	if o.DupSmoothingFraction <= 0 {
		o.DupSmoothingFraction = 0.002
	}
	return o
}
