package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// buildContext draws samples for a workload and wraps them in a plan context.
func buildContext(t testing.TB, s, tt *data.Relation, band data.Band, workers int) *partition.Context {
	t.Helper()
	smp, err := sample.Draw(s, tt, band, sample.Options{InputSampleSize: 2000, OutputSampleSize: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return &partition.Context{Band: band, Workers: workers, Sample: smp, Model: costmodel.Default(), Seed: 1}
}

// exactlyOnePartitionSharesPair is the Definition 1 invariant: for a matching
// pair, the assignment lists of the two sides intersect in exactly one
// partition.
func exactlyOnePartitionSharesPair(p partition.Plan, sID, tID int64, sKey, tKey []float64) int {
	sParts := p.AssignS(sID, sKey, nil)
	tParts := p.AssignT(tID, tKey, nil)
	common := 0
	for _, a := range sParts {
		for _, b := range tParts {
			if a == b {
				common++
			}
		}
	}
	return common
}

func TestRecPartPlanSatisfiesDefinition1(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 3000, 5)
	band := data.Symmetric(0.1, 0.1)
	for _, rp := range []*RecPart{NewDefault(), NewRecPartS()} {
		ctx := buildContext(t, s, tt, band, 8)
		plan, err := rp.PlanDetailed(ctx)
		if err != nil {
			t.Fatalf("%s: %v", rp.Name(), err)
		}
		if plan.NumPartitions() < 1 {
			t.Fatalf("%s: no partitions", rp.Name())
		}
		checked := 0
		for i := 0; i < s.Len(); i += 7 {
			for j := 0; j < tt.Len(); j += 13 {
				if !band.Matches(s.Key(i), tt.Key(j)) {
					continue
				}
				checked++
				if got := exactlyOnePartitionSharesPair(plan, int64(i), int64(j), s.Key(i), tt.Key(j)); got != 1 {
					t.Fatalf("%s: matching pair shared by %d partitions, want 1", rp.Name(), got)
				}
			}
		}
		if checked == 0 {
			t.Fatal("no matching pairs were checked; widen the band")
		}
	}
}

func TestRecPartEveryTupleAssignedSomewhere(t *testing.T) {
	s, tt := data.ParetoPair(3, 1.5, 2000, 7)
	band := data.Uniform(3, 0.05)
	ctx := buildContext(t, s, tt, band, 6)
	plan, err := NewDefault().PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if len(plan.AssignS(int64(i), s.Key(i), nil)) == 0 {
			t.Fatalf("S tuple %d assigned nowhere", i)
		}
	}
	for j := 0; j < tt.Len(); j++ {
		parts := plan.AssignT(int64(j), tt.Key(j), nil)
		if len(parts) == 0 {
			t.Fatalf("T tuple %d assigned nowhere", j)
		}
		for _, p := range parts {
			if p < 0 || p >= plan.NumPartitions() {
				t.Fatalf("T tuple %d assigned to invalid partition %d", j, p)
			}
		}
	}
}

func TestRecPartSNeverUsesSSplits(t *testing.T) {
	s, tt := data.ReverseParetoPair(1, 1.5, 3000, 9)
	band := data.Symmetric(2)
	ctx := buildContext(t, s, tt, band, 8)
	plan, err := NewRecPartS().PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// With only T-splits, every S tuple goes to exactly one partition, except
	// inside small 1-Bucket leaves where it is copied to all columns of its
	// row. Verify that an S tuple's assignment never exceeds the largest
	// small-leaf column count, and that at least the structure is plausible.
	if plan.Symmetric {
		t.Fatal("RecPart-S plan claims symmetric splits")
	}
}

func TestRecPartSymmetricBeatsRecPartSOnReversePareto(t *testing.T) {
	s, tt := data.ReverseParetoPair(3, 1.5, 4000, 11)
	band := data.Uniform(3, 1000)
	ctxA := buildContext(t, s, tt, band, 10)
	planS, err := NewRecPartS().PlanDetailed(ctxA)
	if err != nil {
		t.Fatal(err)
	}
	ctxB := buildContext(t, s, tt, band, 10)
	planSym, err := NewDefault().PlanDetailed(ctxB)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 14: with symmetric splits the estimated max-worker
	// input drops dramatically on reverse-Pareto data.
	if planSym.FinalStats().EstIm > planS.FinalStats().EstIm {
		t.Errorf("symmetric RecPart Im=%.0f not better than RecPart-S Im=%.0f",
			planSym.FinalStats().EstIm, planS.FinalStats().EstIm)
	}
}

func TestRecPartHistoryInvariants(t *testing.T) {
	s, tt := data.ParetoPair(2, 2.0, 3000, 13)
	band := data.Symmetric(0.05, 0.05)
	ctx := buildContext(t, s, tt, band, 8)
	plan, err := NewDefault().PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.History) == 0 {
		t.Fatal("no growth history recorded")
	}
	prevInput := 0.0
	for i, h := range plan.History {
		if h.Iteration != i {
			t.Errorf("history entry %d has iteration %d", i, h.Iteration)
		}
		// Input duplication grows monotonically with tree growth (Section 4.2).
		if h.EstTotalInput+1e-6 < prevInput {
			t.Errorf("estimated total input decreased at iteration %d: %f -> %f", i, prevInput, h.EstTotalInput)
		}
		prevInput = h.EstTotalInput
		if h.DupOverhead < 0 || h.LoadOverhead < 0 {
			t.Errorf("negative overhead at iteration %d", i)
		}
		if h.EstIm > h.EstTotalInput+1e-6 {
			t.Errorf("max-worker input exceeds total input at iteration %d", i)
		}
	}
	if plan.Chosen < 0 || plan.Chosen >= len(plan.History) {
		t.Errorf("chosen iteration %d out of range", plan.Chosen)
	}
	// The chosen iteration must minimize the applied objective.
	best := plan.History[0].PredictedTime
	for _, h := range plan.History {
		if h.PredictedTime < best {
			best = h.PredictedTime
		}
	}
	if plan.FinalStats().PredictedTime > best*1.0001 {
		t.Errorf("chosen partitioning (predicted %f) is not the best seen (%f)",
			plan.FinalStats().PredictedTime, best)
	}
}

func TestRecPartSingleWorkerProducesSinglePartition(t *testing.T) {
	s, tt := data.ParetoPair(1, 1.5, 1000, 15)
	band := data.Symmetric(0.01)
	ctx := buildContext(t, s, tt, band, 1)
	plan, err := NewDefault().PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPartitions() != 1 {
		t.Errorf("w=1 should not split at all, got %d partitions", plan.NumPartitions())
	}
}

func TestRecPartEquiJoinAddsNoDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := data.NewRelation("s", 2)
	tt := data.NewRelation("t", 2)
	for i := 0; i < 3000; i++ {
		s.Append(float64(rng.Intn(50)), float64(rng.Intn(50)))
		tt.Append(float64(rng.Intn(50)), float64(rng.Intn(50)))
	}
	band := data.Symmetric(0, 0)
	ctx := buildContext(t, s, tt, band, 8)
	plan, err := NewDefault().PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < tt.Len(); j++ {
		if n := len(plan.AssignT(int64(j), tt.Key(j), nil)); n != 1 {
			t.Fatalf("equi-join duplicated T tuple %d to %d partitions", j, n)
		}
	}
	if plan.FinalStats().DupOverhead > 1e-9 {
		t.Errorf("equi-join plan reports duplication overhead %f", plan.FinalStats().DupOverhead)
	}
}

func TestRecPartTheoreticalTermination(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 4000, 19)
	band := data.Symmetric(0.05, 0.05)
	opts := DefaultOptions()
	opts.Termination = TerminateTheoretical
	ctx := buildContext(t, s, tt, band, 12)
	plan, err := New(opts).PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fs := plan.FinalStats()
	// The theoretical winner minimizes max{dup, load} overhead; on this
	// workload both must end well below the single-partition starting point.
	if fs.LoadOverhead > 1.0 {
		t.Errorf("theoretical termination left load overhead at %.0f%%", 100*fs.LoadOverhead)
	}
	if fs.DupOverhead > 1.0 {
		t.Errorf("theoretical termination produced %.0f%% duplication", 100*fs.DupOverhead)
	}
}

func TestRecPartDeterministicForFixedSeed(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 2500, 21)
	band := data.Symmetric(0.08, 0.08)
	ctx1 := buildContext(t, s, tt, band, 6)
	ctx2 := buildContext(t, s, tt, band, 6)
	p1, err := NewDefault().PlanDetailed(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewDefault().PlanDetailed(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumPartitions() != p2.NumPartitions() || p1.Chosen != p2.Chosen {
		t.Errorf("plans differ across identical runs: %d/%d vs %d/%d partitions/chosen",
			p1.NumPartitions(), p1.Chosen, p2.NumPartitions(), p2.Chosen)
	}
	for i := 0; i < s.Len(); i += 97 {
		a := p1.AssignS(int64(i), s.Key(i), nil)
		b := p2.AssignS(int64(i), s.Key(i), nil)
		if len(a) != len(b) {
			t.Fatalf("assignment differs for tuple %d", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("assignment differs for tuple %d", i)
			}
		}
	}
}

// TestRecPartPairPropertyQuick drives the Definition 1 invariant with random
// band widths and random tuples (property-based).
func TestRecPartPairPropertyQuick(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 2500, 23)
	band := data.Symmetric(0.1, 0.1)
	ctx := buildContext(t, s, tt, band, 8)
	plan, err := NewDefault().PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f := func(iRaw, jRaw uint16) bool {
		i := int(iRaw) % s.Len()
		j := int(jRaw) % tt.Len()
		common := exactlyOnePartitionSharesPair(plan, int64(i), int64(j), s.Key(i), tt.Key(j))
		if band.Matches(s.Key(i), tt.Key(j)) {
			return common == 1
		}
		return common <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Error(err)
	}
}

func TestRecPartRejectsInvalidContext(t *testing.T) {
	if _, err := NewDefault().Plan(&partition.Context{}); err == nil {
		t.Error("invalid context accepted")
	}
}

func TestPlanDescribeAndRegions(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 1500, 31)
	band := data.Symmetric(0.1, 0.1)
	ctx := buildContext(t, s, tt, band, 4)
	plan, err := NewDefault().PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Describe() == "" {
		t.Error("Describe is empty")
	}
	regions := plan.Regions()
	if len(regions) != plan.Leaves {
		t.Errorf("Regions returned %d regions for %d leaves", len(regions), plan.Leaves)
	}
}
