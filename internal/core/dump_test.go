package core

import (
	"strings"
	"testing"

	"bandjoin/internal/data"
)

func TestDumpTree(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 2000, 3)
	band := data.Symmetric(0.1, 0.1)
	ctx := buildContext(t, s, tt, band, 6)
	plan, err := NewDefault().PlanDetailed(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := plan.DumpTree(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "leaf") {
		t.Error("dump contains no leaves")
	}
	if plan.Leaves > 1 && !strings.Contains(out, "node #0") {
		t.Error("dump misses the root split")
	}
	if strings.Count(out, "leaf") != plan.Leaves {
		t.Errorf("dump shows %d leaves, plan has %d", strings.Count(out, "leaf"), plan.Leaves)
	}
}
