package core

import (
	"container/heap"

	"bandjoin/internal/data"
)

// splitKind distinguishes which relation a split partitions and which it
// duplicates across the boundary.
type splitKind uint8

const (
	// splitT partitions S without duplication and duplicates T-tuples within
	// band width of the boundary (the only kind RecPart-S uses).
	splitT splitKind = iota
	// splitS partitions T and duplicates S-tuples near the boundary
	// (symmetric partitioning, Section 4.2).
	splitS
)

func (k splitKind) String() string {
	if k == splitT {
		return "T-split"
	}
	return "S-split"
}

// candidate describes the best action available at a leaf: either a regular
// recursive split (dim, val, kind) or, for a small leaf, an increment of the
// internal 1-Bucket row or column count.
type candidate struct {
	sc score
	// Regular split.
	dim  int
	val  float64
	kind splitKind
	// Small-leaf action.
	smallAction bool
	addRow      bool
}

// node is a split-tree node. Inner nodes carry the split predicate; leaves
// carry the sample tuples that fall into (or are duplicated into) their region
// together with scaled estimates of the real input and output they represent.
type node struct {
	id     int
	region data.Region

	// Inner-node state.
	isLeaf bool
	dim    int
	val    float64
	kind   splitKind
	left   *node
	right  *node

	// Leaf state.
	small      bool
	rows, cols int // internal 1-Bucket grid for small leaves (1×1 otherwise)
	sIdx       []int32
	tIdx       []int32
	outIdx     []int32
	// nS/nT/nOut are the leaf's sample membership counts. The serial grower
	// derives them from the index slices above; the fast grower stores only
	// the counts plus the per-dimension sorted views in slab.
	nS, nT, nOut int
	// slab is the fast grower's sort-inherited leaf state, carved from the
	// planner arena: dims consecutive segments of the leaf's S sample indices
	// (each segment sorted by that dimension's value), then dims segments of
	// T indices, then dims segments of output-pair indices sorted by the OutS
	// value, then dims segments sorted by the OutT value. See fastgrower.go.
	slab   []int32
	estS   float64 // estimated real S-tuples assigned to this partition (incl. duplicates)
	estT   float64
	estOut float64 // estimated real output produced in this partition

	best    candidate
	heapIdx int // index in the leaf priority queue, -1 when not enqueued

	// partBase is the first partition index owned by this leaf in the final
	// plan; a regular leaf owns one partition, a small leaf owns rows*cols.
	partBase int
}

// sView returns the leaf's S sample indices sorted by dimension d.
func (n *node) sView(d int) []int32 {
	return n.slab[d*n.nS : (d+1)*n.nS]
}

// tView returns the leaf's T sample indices sorted by dimension d.
func (n *node) tView(dims, d int) []int32 {
	base := dims*n.nS + d*n.nT
	return n.slab[base : base+n.nT]
}

// outSView returns the leaf's output-pair indices sorted by the OutS value of
// dimension d.
func (n *node) outSView(dims, d int) []int32 {
	base := dims*(n.nS+n.nT) + d*n.nOut
	return n.slab[base : base+n.nOut]
}

// outTView returns the leaf's output-pair indices sorted by the OutT value of
// dimension d.
func (n *node) outTView(dims, d int) []int32 {
	base := dims*(n.nS+n.nT+n.nOut) + d*n.nOut
	return n.slab[base : base+n.nOut]
}

// load returns the estimated load β2·I_p + β3·O_p of the leaf's partition
// treated as a single unit (ignoring any internal 1-Bucket grid).
func (n *node) load(beta2, beta3 float64) float64 {
	return beta2*(n.estS+n.estT) + beta3*n.estOut
}

// subLoad returns the estimated load of one cell of the leaf's internal r×c
// 1-Bucket grid: each cell receives 1/r of the S input, 1/c of the T input,
// and 1/(r·c) of the output in expectation.
func (n *node) subLoad(beta2, beta3 float64, rows, cols int) float64 {
	r, c := float64(rows), float64(cols)
	return beta2*(n.estS/r+n.estT/c) + beta3*n.estOut/(r*c)
}

// sumSquaredLoads returns this leaf's contribution to Σ l_p² over all
// (sub-)partitions, the quantity whose decrease defines ΔVar.
func (n *node) sumSquaredLoads(beta2, beta3 float64) float64 {
	if n.small && (n.rows > 1 || n.cols > 1) {
		l := n.subLoad(beta2, beta3, n.rows, n.cols)
		return float64(n.rows*n.cols) * l * l
	}
	l := n.load(beta2, beta3)
	return l * l
}

// assignedInput returns the estimated number of input tuples (including
// duplicates) this leaf receives. Inside a small leaf's r×c grid every S-tuple
// is replicated to the c cells of its row and every T-tuple to the r cells of
// its column.
func (n *node) assignedInput() float64 {
	if n.small && (n.rows > 1 || n.cols > 1) {
		return float64(n.cols)*n.estS + float64(n.rows)*n.estT
	}
	return n.estS + n.estT
}

// numPartitions returns how many physical partitions the leaf produces.
func (n *node) numPartitions() int {
	if n.small {
		return n.rows * n.cols
	}
	return 1
}

// subPartitionLoads appends the (input, output, load) triple of every
// (sub-)partition of this leaf to the given slices; it is used to estimate the
// max worker load of the current partitioning by LPT scheduling.
func (n *node) subPartitionLoads(beta2, beta3 float64, inputs, outputs, loads []float64) ([]float64, []float64, []float64) {
	if n.small && (n.rows > 1 || n.cols > 1) {
		r, c := float64(n.rows), float64(n.cols)
		in := n.estS/r + n.estT/c
		out := n.estOut / (r * c)
		l := beta2*in + beta3*out
		for i := 0; i < n.rows*n.cols; i++ {
			inputs = append(inputs, in)
			outputs = append(outputs, out)
			loads = append(loads, l)
		}
		return inputs, outputs, loads
	}
	in := n.estS + n.estT
	out := n.estOut
	return append(inputs, in), append(outputs, out), append(loads, beta2*in+beta3*out)
}

// ---------------------------------------------------------------------------
// Leaf priority queue (Algorithm 1 manages leaves by their topScore).

type leafHeap []*node

func (h leafHeap) Len() int { return len(h) }
func (h leafHeap) Less(i, j int) bool {
	return h[i].best.sc.better(h[j].best.sc)
}
func (h leafHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *leafHeap) Push(x interface{}) {
	n := x.(*node)
	n.heapIdx = len(*h)
	*h = append(*h, n)
}
func (h *leafHeap) Pop() interface{} {
	old := *h
	last := len(old) - 1
	n := old[last]
	old[last] = nil
	n.heapIdx = -1
	*h = old[:last]
	return n
}

// peek returns the leaf with the best split score without removing it.
func (h leafHeap) peek() *node {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}

// fix re-establishes the heap invariant after a leaf's score changed in place.
func (h *leafHeap) fix(n *node) {
	if n.heapIdx >= 0 {
		heap.Fix(h, n.heapIdx)
	}
}
