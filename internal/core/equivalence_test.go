package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// The plan-equivalence regression suite: the fast grower (sort inheritance,
// arena scratch, parallel best-split) must make exactly the decisions of the
// serial reference oracle — bit-identical action logs, histories, and plans —
// across partitioner variants, dimensionalities, band shapes, and seeds, and
// regardless of the parallelism level. Run with -race it also exercises the
// worker pool and the pooled scratch under concurrency.

// equivCase is one workload configuration of the suite.
type equivCase struct {
	name      string
	dims      int
	symmetric bool
	band      data.Band
	seed      int64
	workers   int
}

func equivCases() []equivCase {
	var cases []equivCase
	for _, dims := range []int{1, 2, 8} {
		for _, symmetric := range []bool{false, true} {
			for _, seed := range []int64{1, 7} {
				cases = append(cases, equivCase{
					name:      fmt.Sprintf("d=%d/sym=%v/seed=%d", dims, symmetric, seed),
					dims:      dims,
					symmetric: symmetric,
					band:      data.Uniform(dims, 0.05),
					seed:      seed,
					workers:   8,
				})
			}
		}
	}
	// Asymmetric bands exercise the low/high threshold asymmetry of both
	// distribute and the sweep.
	asym2 := data.Asymmetric([]float64{0.0, 0.08}, []float64{0.1, 0.01})
	cases = append(cases,
		equivCase{name: "asym/d=2/recpart-s", dims: 2, symmetric: false, band: asym2, seed: 3, workers: 12},
		equivCase{name: "asym/d=2/recpart", dims: 2, symmetric: true, band: asym2, seed: 3, workers: 12},
	)
	return cases
}

func equivContext(t testing.TB, c equivCase) *partition.Context {
	t.Helper()
	s, tt := data.ParetoPair(c.dims, 1.5, 4000, c.seed)
	smp, err := sample.Draw(s, tt, c.band, sample.Options{InputSampleSize: 1500, OutputSampleSize: 800, Seed: c.seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return &partition.Context{Band: c.band, Workers: c.workers, Sample: smp, Model: costmodel.Default(), Seed: 1}
}

// growBoth runs the serial oracle and the fast grower (at the given
// parallelism) on the same context and returns both environments.
func growBoth(ctx *partition.Context, symmetric bool, parallelism int) (serial, fast growEnv, serialChosen, fastChosen int) {
	opts := DefaultOptions()
	opts.Symmetric = symmetric

	so := opts
	so.Serial = true
	serial, serialChosen = growTree(ctx, so)

	fo := opts
	fo.Parallelism = parallelism
	fast, fastChosen = growTree(ctx, fo)
	return serial, fast, serialChosen, fastChosen
}

// TestFastGrowerMatchesSerialOracle pins bit-identical action logs and
// histories between the fast grower and the serial oracle.
func TestFastGrowerMatchesSerialOracle(t *testing.T) {
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			ctx := equivContext(t, c)
			for _, par := range []int{1, 4} {
				serial, fast, sChosen, fChosen := growBoth(ctx, c.symmetric, par)
				if sChosen != fChosen {
					t.Fatalf("par=%d: chosen iteration differs: serial %d, fast %d", par, sChosen, fChosen)
				}
				if !reflect.DeepEqual(serial.actions, fast.actions) {
					n := len(serial.actions)
					if len(fast.actions) < n {
						n = len(fast.actions)
					}
					for i := 0; i < n; i++ {
						if serial.actions[i] != fast.actions[i] {
							t.Fatalf("par=%d: action %d differs: serial %+v, fast %+v", par, i, serial.actions[i], fast.actions[i])
						}
					}
					t.Fatalf("par=%d: action log lengths differ: serial %d, fast %d", par, len(serial.actions), len(fast.actions))
				}
				if !reflect.DeepEqual(serial.history, fast.history) {
					for i := range serial.history {
						if i < len(fast.history) && serial.history[i] != fast.history[i] {
							t.Fatalf("par=%d: history entry %d differs:\nserial %+v\nfast   %+v", par, i, serial.history[i], fast.history[i])
						}
					}
					t.Fatalf("par=%d: history lengths differ: serial %d, fast %d", par, len(serial.history), len(fast.history))
				}
			}
		})
	}
}

// TestFastPlanMatchesSerialPlan pins the public outcome: the Plans produced
// behind the two grower implementations assign every probed tuple to the same
// partitions.
func TestFastPlanMatchesSerialPlan(t *testing.T) {
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			ctx := equivContext(t, c)
			opts := DefaultOptions()
			opts.Symmetric = c.symmetric
			so := opts
			so.Serial = true
			serialPlan, err := New(so).PlanDetailed(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fastPlan, err := New(opts).PlanDetailed(ctx)
			if err != nil {
				t.Fatal(err)
			}
			assertPlansIdentical(t, serialPlan, fastPlan, ctx)
		})
	}
}

func assertPlansIdentical(t *testing.T, a, b *Plan, ctx *partition.Context) {
	t.Helper()
	if a.NumPartitions() != b.NumPartitions() || a.Leaves != b.Leaves || a.Chosen != b.Chosen {
		t.Fatalf("plan shapes differ: %d/%d/%d vs %d/%d/%d (partitions/leaves/chosen)",
			a.NumPartitions(), a.Leaves, a.Chosen, b.NumPartitions(), b.Leaves, b.Chosen)
	}
	if !reflect.DeepEqual(a.History, b.History) {
		t.Fatal("plan histories differ")
	}
	if !reflect.DeepEqual(a.Regions(), b.Regions()) {
		t.Fatal("plan leaf regions differ")
	}
	smp := ctx.Sample
	var da, db []int
	for i := 0; i < smp.S.Len(); i++ {
		da = a.AssignS(int64(i), smp.S.Key(i), da[:0])
		db = b.AssignS(int64(i), smp.S.Key(i), db[:0])
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("S tuple %d assigned differently: %v vs %v", i, da, db)
		}
	}
	for i := 0; i < smp.T.Len(); i++ {
		da = a.AssignT(int64(i), smp.T.Key(i), da[:0])
		db = b.AssignT(int64(i), smp.T.Key(i), db[:0])
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("T tuple %d assigned differently: %v vs %v", i, da, db)
		}
	}
}

// TestConcurrentPlanningMatchesOracle plans the same contexts from many
// goroutines at once — sharing the planner scratch pool and each using a
// parallel best-split pool — and checks every result against the serial
// oracle's. Run under -race this is the concurrency regression test for the
// fast planner.
func TestConcurrentPlanningMatchesOracle(t *testing.T) {
	cases := equivCases()
	type oracle struct {
		ctx  *partition.Context
		plan *Plan
	}
	oracles := make([]oracle, len(cases))
	for i, c := range cases {
		ctx := equivContext(t, c)
		so := DefaultOptions()
		so.Symmetric = c.symmetric
		so.Serial = true
		plan, err := New(so).PlanDetailed(ctx)
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = oracle{ctx: ctx, plan: plan}
	}

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(cases))
	for r := 0; r < rounds; r++ {
		for i, c := range cases {
			wg.Add(1)
			go func(i int, c equivCase) {
				defer wg.Done()
				opts := DefaultOptions()
				opts.Symmetric = c.symmetric
				opts.Parallelism = 3
				plan, err := New(opts).PlanDetailed(oracles[i].ctx)
				if err != nil {
					errs <- err
					return
				}
				if plan.NumPartitions() != oracles[i].plan.NumPartitions() ||
					plan.Chosen != oracles[i].plan.Chosen ||
					!reflect.DeepEqual(plan.History, oracles[i].plan.History) {
					errs <- fmt.Errorf("%s: concurrent fast plan differs from oracle", c.name)
				}
			}(i, c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
