package core

import (
	"fmt"

	"bandjoin/internal/partition"
)

// RecPart is the paper's partitioner (Algorithm 1). With Options.Symmetric it
// is the full RecPart; without, it is RecPart-S, which always partitions S and
// duplicates T.
type RecPart struct {
	Opts Options
}

// New returns a RecPart partitioner with the given options.
func New(opts Options) *RecPart { return &RecPart{Opts: opts} }

// NewDefault returns RecPart with symmetric partitioning and the applied
// (cost-model based) termination rule.
func NewDefault() *RecPart { return New(DefaultOptions()) }

// NewRecPartS returns RecPart-S: symmetric partitioning disabled, so T is
// always the duplicated relation, matching the configuration used in the
// paper's band-width, skew, and scalability experiments.
func NewRecPartS() *RecPart {
	o := DefaultOptions()
	o.Symmetric = false
	return New(o)
}

// Name implements partition.Partitioner.
func (r *RecPart) Name() string {
	if r.Opts.Symmetric {
		return "RecPart"
	}
	return "RecPart-S"
}

// PlanFingerprint returns a canonical description of every option that
// influences the plans this partitioner produces. The execution-only knobs —
// Serial and Parallelism — are excluded: plans are bit-identical regardless
// of them, so caches keyed on the fingerprint (the engine's plan cache and
// partition-retention registry) share plans and retained partitions across
// grower implementations and parallelism levels.
func (r *RecPart) PlanFingerprint() string {
	o := r.Opts
	o.Serial = false
	o.Parallelism = 0
	return fmt.Sprintf("%T%+v", r, o)
}

// Plan implements partition.Partitioner: it grows the split tree on the
// samples, selects the best partitioning seen, and returns a Plan that routes
// real tuples to partitions.
func (r *RecPart) Plan(ctx *partition.Context) (partition.Plan, error) {
	p, err := r.PlanDetailed(ctx)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// PlanDetailed is Plan with the concrete plan type, exposing the growth
// history for experiments and tests.
func (r *RecPart) PlanDetailed(ctx *partition.Context) (*Plan, error) {
	if err := ctx.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid context: %w", err)
	}
	env, chosen := growTree(ctx, r.Opts)
	root, err := env.replay(chosen)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding winning partitioning: %w", err)
	}
	plan := finalizePlan(root, ctx.Band, env.opts.Seed)
	plan.History = env.history
	plan.Chosen = chosen
	plan.Symmetric = env.opts.Symmetric
	return plan, nil
}

// growTree runs the configured grower implementation — the fast planner by
// default, the serial reference oracle behind Options.Serial — and returns
// the populated growth environment (action log, history) plus the winning
// iteration. Both implementations produce bit-identical results.
func growTree(ctx *partition.Context, opts Options) (growEnv, int) {
	if opts.Serial {
		g := newGrower(ctx, opts)
		g.initialize()
		chosen := g.grow()
		return g.growEnv, chosen
	}
	return runFastGrower(newGrowEnv(ctx, opts), opts.Parallelism)
}
