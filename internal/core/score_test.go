package core

import "testing"

func TestScoreInvalidWhenNoVarianceReduction(t *testing.T) {
	if newScore(0, 5, 1).valid {
		t.Error("zero variance reduction should be invalid")
	}
	if newScore(-1, 0, 1).valid {
		t.Error("negative variance reduction should be invalid")
	}
	if !newScore(1e-12, 0, 1).valid {
		t.Error("tiny positive variance reduction should be valid")
	}
}

func TestScoreOrdering(t *testing.T) {
	smoothing := 10.0
	free := newScore(100, 0, smoothing)
	cheap := newScore(100, 5, smoothing)
	expensive := newScore(100, 1000, smoothing)
	if !free.better(cheap) || !cheap.better(expensive) {
		t.Error("scores with equal variance reduction must be ordered by duplication")
	}
	bigger := newScore(200, 0, smoothing)
	if !bigger.better(free) {
		t.Error("among zero-duplication splits the larger variance reduction must win")
	}
	// A heavy partition's costly split outranks a near-useless free split.
	heavy := newScore(1e6, 500, smoothing)
	useless := newScore(1e-3, 0, smoothing)
	if !heavy.better(useless) {
		t.Error("heavy-partition split starved by a near-useless free split")
	}
	if invalidScore().better(free) {
		t.Error("invalid score ranked above a valid one")
	}
	if !free.better(invalidScore()) {
		t.Error("valid score not ranked above an invalid one")
	}
}

func TestScoreNegativeDupClamped(t *testing.T) {
	s := newScore(10, -5, 1)
	if s.dup != 0 {
		t.Errorf("negative duplication not clamped: %g", s.dup)
	}
	if !s.zeroDuplication() {
		t.Error("clamped score should report zero duplication")
	}
}

func TestScoreSmoothingFloor(t *testing.T) {
	a := newScore(10, 0, 0.0001) // smoothing below 1 is clamped to 1
	b := newScore(10, 0, 1)
	if a.ratio != b.ratio {
		t.Errorf("smoothing floor not applied: %g vs %g", a.ratio, b.ratio)
	}
}

func TestScoreTieBreak(t *testing.T) {
	// Equal ratios: larger variance reduction wins deterministically.
	a := newScore(20, 19, 1) // ratio 1
	b := newScore(10, 9, 1)  // ratio 1
	if !a.better(b) || b.better(a) {
		t.Error("tie-break by variance reduction failed")
	}
}

func TestTerminationString(t *testing.T) {
	if TerminateApplied.String() != "applied" || TerminateTheoretical.String() != "theoretical" {
		t.Error("Termination.String wrong")
	}
	if Termination(99).String() == "" {
		t.Error("unknown termination mode has empty string")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(10)
	if o.MaxIterations <= 0 || o.ImprovementWindow != 10 || o.MinImprovement != 0.01 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if o.DupSmoothingFraction != 0.002 {
		t.Errorf("default smoothing fraction = %g", o.DupSmoothingFraction)
	}
	explicit := Options{MaxIterations: 5, ImprovementWindow: 3, MinImprovement: 0.1, DupSmoothingFraction: 0.01}.withDefaults(10)
	if explicit.MaxIterations != 5 || explicit.ImprovementWindow != 3 || explicit.MinImprovement != 0.1 || explicit.DupSmoothingFraction != 0.01 {
		t.Errorf("explicit options overridden: %+v", explicit)
	}
}

func TestPartitionerNames(t *testing.T) {
	if NewDefault().Name() != "RecPart" || NewRecPartS().Name() != "RecPart-S" {
		t.Error("partitioner names wrong")
	}
}
