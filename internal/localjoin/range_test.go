package localjoin

import (
	"sync"
	"testing"

	"bandjoin/internal/data"
)

type idxPair struct{ s, t int }

// emitInto returns an Emit that appends to *dst.
func emitInto(dst *[]idxPair) Emit {
	return func(si, ti int, _, _ []float64) {
		*dst = append(*dst, idxPair{si, ti})
	}
}

// skewedPair builds inputs where roughly half of S sits on a single point —
// the shape the morsel scheduler exists for: one partition (or here, one
// probe range) holds a disproportionate share of the matches.
func skewedPair(n, d int, eps float64, seed int64) (*data.Relation, *data.Relation, data.Band) {
	s, t := data.ParetoPair(d, 1.5, n, seed)
	point := make([]float64, d)
	for i := range point {
		point[i] = 0.5
	}
	sk := data.NewRelation("s", d)
	for i := 0; i < s.Len(); i++ {
		if i%2 == 0 {
			sk.Append(point...)
		} else {
			sk.Append(s.Key(i)...)
		}
	}
	return sk, t, data.Uniform(d, eps)
}

// TestJoinRangeConcatenationMatchesJoin pins the RangeJoiner contract: running
// consecutive ranges and concatenating the emissions must reproduce the plain
// Join bit-identically — same pairs, same order, same count — for every range
// granularity, including degenerate 1-row morsels.
func TestJoinRangeConcatenationMatchesJoin(t *testing.T) {
	cases := map[string]func() (*data.Relation, *data.Relation, data.Band){
		"pareto": func() (*data.Relation, *data.Relation, data.Band) { return makePair(350, 2, 0.1, 3) },
		"skewed": func() (*data.Relation, *data.Relation, data.Band) { return skewedPair(350, 2, 0.05, 9) },
	}
	for caseName, mk := range cases {
		s, tt, band := mk()
		// The baseline oracles are deliberately range-free; every production
		// algorithm must stripe.
		for _, alg := range []Algorithm{NestedLoop{}, SortProbe{}, GridSortScan{}, EpsGrid{}, Auto{}} {
			rj, ok := alg.(RangeJoiner)
			if !ok {
				t.Errorf("%s does not implement RangeJoiner", alg.Name())
				continue
			}
			var plain []idxPair
			wantCount := alg.Join(s, tt, band, emitInto(&plain))
			if wantCount == 0 {
				t.Fatalf("%s/%s: reference join empty; widen the band", caseName, alg.Name())
			}
			for _, step := range []int{1, 3, 17, 100, s.Len(), s.Len() + 7} {
				var got []idxPair
				var gotCount int64
				for lo := 0; lo < s.Len(); lo += step {
					hi := min(lo+step, s.Len())
					gotCount += rj.JoinRange(s, tt, band, lo, hi, emitInto(&got))
				}
				if gotCount != wantCount {
					t.Fatalf("%s/%s step %d: range count %d, plain %d", caseName, alg.Name(), step, gotCount, wantCount)
				}
				if len(got) != len(plain) {
					t.Fatalf("%s/%s step %d: %d pairs, plain %d", caseName, alg.Name(), step, len(got), len(plain))
				}
				for i := range plain {
					if got[i] != plain[i] {
						t.Fatalf("%s/%s step %d: pair %d = %v, plain %v", caseName, alg.Name(), step, i, got[i], plain[i])
					}
				}
			}
			// Empty and full ranges behave.
			if rj.JoinRange(s, tt, band, 0, 0, nil) != 0 {
				t.Errorf("%s: empty range emitted pairs", alg.Name())
			}
			if rj.JoinRange(s, tt, band, 0, s.Len(), nil) != wantCount {
				t.Errorf("%s: full range disagrees with Join", alg.Name())
			}
		}
	}
}

// TestProbeRangeConcatenationMatchesProbe pins the same contract on the
// prepared structures — the shared read-only form the morsel scheduler
// actually probes.
func TestProbeRangeConcatenationMatchesProbe(t *testing.T) {
	s, tt, band := skewedPair(400, 3, 0.15, 7)
	for _, alg := range []Algorithm{Auto{}, SortProbe{}, GridSortScan{}, EpsGrid{}} {
		prep := Prepare(alg, s, tt, band)
		if prep == nil {
			t.Fatalf("%s: no prepared form", alg.Name())
		}
		rp, ok := prep.(RangeProber)
		if !ok {
			t.Fatalf("%s: prepared form does not implement RangeProber", alg.Name())
		}
		var plain []idxPair
		wantCount := prep.Probe(s, emitInto(&plain))
		if wantCount == 0 {
			t.Fatalf("%s: reference probe empty; widen the band", alg.Name())
		}
		for _, step := range []int{1, 5, 64, s.Len()} {
			var got []idxPair
			var gotCount int64
			for lo := 0; lo < s.Len(); lo += step {
				hi := min(lo+step, s.Len())
				gotCount += rp.ProbeRange(s, lo, hi, emitInto(&got))
			}
			if gotCount != wantCount {
				t.Fatalf("%s step %d: range count %d, plain %d", alg.Name(), step, gotCount, wantCount)
			}
			for i := range plain {
				if got[i] != plain[i] {
					t.Fatalf("%s step %d: pair %d = %v, plain %v", alg.Name(), step, i, got[i], plain[i])
				}
			}
		}
	}
}

// TestConcurrentProbeRangeShared drives many goroutines through ONE shared
// prepared structure concurrently (run under -race via the repo's race suite):
// each goroutine owns an interleaved subset of the stripes, and reassembling
// the per-stripe buffers in stripe order must reproduce the sequential probe
// exactly. This is precisely the access pattern of the morsel worker pool.
func TestConcurrentProbeRangeShared(t *testing.T) {
	s, tt, band := skewedPair(600, 2, 0.1, 21)
	const goroutines = 8
	const step = 37
	for _, alg := range []Algorithm{Auto{}, SortProbe{}, GridSortScan{}, EpsGrid{}} {
		prep := Prepare(alg, s, tt, band)
		rp := prep.(RangeProber)
		var plain []idxPair
		wantCount := prep.Probe(s, emitInto(&plain))

		nStripes := (s.Len() + step - 1) / step
		buffers := make([][]idxPair, nStripes)
		counts := make([]int64, nStripes)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for stripe := g; stripe < nStripes; stripe += goroutines {
					lo := stripe * step
					hi := min(lo+step, s.Len())
					counts[stripe] = rp.ProbeRange(s, lo, hi, emitInto(&buffers[stripe]))
				}
			}(g)
		}
		wg.Wait()

		var got []idxPair
		var gotCount int64
		for i := range buffers {
			got = append(got, buffers[i]...)
			gotCount += counts[i]
		}
		if gotCount != wantCount {
			t.Fatalf("%s: concurrent count %d, sequential %d", alg.Name(), gotCount, wantCount)
		}
		if len(got) != len(plain) {
			t.Fatalf("%s: %d pairs, sequential %d", alg.Name(), len(got), len(plain))
		}
		for i := range plain {
			if got[i] != plain[i] {
				t.Fatalf("%s: pair %d = %v, sequential %v", alg.Name(), i, got[i], plain[i])
			}
		}
	}
}

// TestRangeNeedsNoPrepare pins which algorithms may be striped without a
// prepared structure: exactly those whose Prepare can return nil while
// JoinRange repeats no build work (nested loop, and Auto only when its
// dispatch picks nested loop — which is exactly when its Prepare is nil).
func TestRangeNeedsNoPrepare(t *testing.T) {
	if !RangeNeedsNoPrepare(NestedLoop{}) || !RangeNeedsNoPrepare(Auto{}) {
		t.Error("NestedLoop and Auto must stripe without a prepared structure")
	}
	for _, alg := range []Algorithm{SortProbe{}, GridSortScan{}, EpsGrid{}} {
		if RangeNeedsNoPrepare(alg) {
			t.Errorf("%s wrongly claims prepare-free range probes (JoinRange rebuilds per call)", alg.Name())
		}
	}
}
