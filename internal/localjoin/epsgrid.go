package localjoin

import (
	"math"

	"bandjoin/internal/data"
)

// EpsGrid is a two-dimensional local ε-grid join: the T-side of the partition
// is bucketed into grid cells of one band extent per side on the first two
// dimensions, and every S-tuple probes only the (at most 3×3) cells its band
// region can intersect. Sorting-based algorithms filter candidates on one
// dimension only, so on multi-dimensional workloads they scan every tuple in
// the dimension-0 window — often orders of magnitude more than the true
// matches; the grid filters on two dimensions at once, shrinking the scanned
// candidates to roughly the tuples inside the band neighborhood. Cells are
// kept in an open-addressing hash table and a CSR bucket layout, both reused
// through the scratch pool, so the steady state allocates nothing.
//
// The grid is undefined when either of the first two band extents is zero
// (equi-join dimensions) or the join is one-dimensional; Join falls back to
// GridSortScan in that case. Remaining dimensions (d > 2) are verified per
// candidate, like the other algorithms do for d > 1.
type EpsGrid struct{}

// Name implements Algorithm.
func (EpsGrid) Name() string { return "eps-grid" }

// gridState is the scratch of one EpsGrid build, stored inside scratch.
type gridState struct {
	// Open-addressing cell table: cell coordinates -> dense cell id.
	tabC0, tabC1 []int64
	tabID        []int32
	mask         int

	cellOf []int32 // per T tuple, dense cell id
	starts []int32 // CSR: per cell id, start row (len numCells+1)
	cursor []int32 // per cell id, next row to fill during the gather
	rows   []float64
	perm   []int32
}

// grow ensures capacities for n tuples and resets the cell table.
func (g *gridState) grow(n, dims int) {
	size := 1
	for size < 2*n {
		size <<= 1
	}
	if cap(g.tabC0) < size {
		g.tabC0 = make([]int64, size)
		g.tabC1 = make([]int64, size)
		g.tabID = make([]int32, size)
	} else {
		g.tabC0 = g.tabC0[:size]
		g.tabC1 = g.tabC1[:size]
		g.tabID = g.tabID[:size]
	}
	for i := range g.tabID {
		g.tabID[i] = -1
	}
	g.mask = size - 1
	if cap(g.cellOf) < n {
		g.cellOf = make([]int32, n)
	} else {
		g.cellOf = g.cellOf[:n]
	}
	if cap(g.rows) < n*dims {
		g.rows = make([]float64, n*dims)
	} else {
		g.rows = g.rows[:n*dims]
	}
	if cap(g.perm) < n {
		g.perm = make([]int32, n)
	} else {
		g.perm = g.perm[:n]
	}
}

// hashCell mixes two cell coordinates (splitmix64-style finalizer).
func hashCell(c0, c1 int64) uint64 {
	h := uint64(c0)*0x9e3779b97f4a7c15 ^ uint64(c1)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// lookupOrInsert returns the dense id of cell (c0, c1), inserting it with id
// next if absent; the bool reports whether it was inserted.
func (g *gridState) lookupOrInsert(c0, c1 int64, next int32) (int32, bool) {
	slot := int(hashCell(c0, c1)) & g.mask
	for {
		id := g.tabID[slot]
		if id < 0 {
			g.tabC0[slot] = c0
			g.tabC1[slot] = c1
			g.tabID[slot] = next
			return next, true
		}
		if g.tabC0[slot] == c0 && g.tabC1[slot] == c1 {
			return id, false
		}
		slot = (slot + 1) & g.mask
	}
}

// lookup returns the dense id of cell (c0, c1), or -1.
func (g *gridState) lookup(c0, c1 int64) int32 {
	slot := int(hashCell(c0, c1)) & g.mask
	for {
		id := g.tabID[slot]
		if id < 0 {
			return -1
		}
		if g.tabC0[slot] == c0 && g.tabC1[slot] == c1 {
			return id
		}
		slot = (slot + 1) & g.mask
	}
}

// epsGridWidths returns the grid cell extents for the band, or ok=false when
// the grid is undefined (one-dimensional join or a zero extent on either of
// the first two dimensions).
func epsGridWidths(dims int, band data.Band) (w0, w1 float64, ok bool) {
	if dims < 2 {
		return 0, 0, false
	}
	w0 = math.Max(band.Low[0], band.High[0])
	w1 = math.Max(band.Low[1], band.High[1])
	return w0, w1, w0 > 0 && w1 > 0
}

// build assigns every T-tuple to its cell, builds the CSR bucket layout, and
// gathers rows bucket by bucket so each probe scans contiguously.
func (g *gridState) build(t *data.Relation, w0, w1 float64) {
	nt, dims := t.Len(), t.Dims()
	g.grow(nt, dims)
	numCells := int32(0)
	for i := 0; i < nt; i++ {
		c0 := int64(math.Floor(t.KeyAt(i, 0) / w0))
		c1 := int64(math.Floor(t.KeyAt(i, 1) / w1))
		id, inserted := g.lookupOrInsert(c0, c1, numCells)
		if inserted {
			numCells++
		}
		g.cellOf[i] = id
	}
	if cap(g.starts) < int(numCells)+1 {
		g.starts = make([]int32, numCells+1)
		g.cursor = make([]int32, numCells)
	} else {
		g.starts = g.starts[:numCells+1]
		g.cursor = g.cursor[:numCells]
	}
	for i := range g.starts {
		g.starts[i] = 0
	}
	for i := 0; i < nt; i++ {
		g.starts[g.cellOf[i]+1]++
	}
	for id := int32(0); id < numCells; id++ {
		g.starts[id+1] += g.starts[id]
		g.cursor[id] = g.starts[id]
	}
	for i := 0; i < nt; i++ {
		id := g.cellOf[i]
		pos := g.cursor[id]
		g.cursor[id] = pos + 1
		copy(g.rows[int(pos)*dims:(int(pos)+1)*dims], t.Key(i))
		g.perm[pos] = int32(i)
	}
}

// probe scans, for every S-tuple, the cells its band region [s−Low, s+High]
// can intersect, verifying all dimensions per candidate.
func (g *gridState) probe(s *data.Relation, dims int, band data.Band, w0, w1 float64, emit Emit) int64 {
	return g.probeRange(s, dims, band, w0, w1, 0, s.Len(), emit)
}

// probeRange is probe restricted to S indices [sLo, sHi). Each S-tuple's cell
// walk is independent, so a range runs exactly the iterations the full loop
// would run for those indices.
func (g *gridState) probeRange(s *data.Relation, dims int, band data.Band, w0, w1 float64, sLo, sHi int, emit Emit) int64 {
	var count int64
	for i := sLo; i < sHi; i++ {
		sk := s.Key(i)
		cl0 := int64(math.Floor((sk[0] - band.Low[0]) / w0))
		ch0 := int64(math.Floor((sk[0] + band.High[0]) / w0))
		cl1 := int64(math.Floor((sk[1] - band.Low[1]) / w1))
		ch1 := int64(math.Floor((sk[1] + band.High[1]) / w1))
		for c0 := cl0; c0 <= ch0; c0++ {
			for c1 := cl1; c1 <= ch1; c1++ {
				id := g.lookup(c0, c1)
				if id < 0 {
					continue
				}
				for pos := g.starts[id]; pos < g.starts[id+1]; pos++ {
					base := int(pos) * dims
					row := g.rows[base : base+dims]
					if matchesFrom(band, sk, row, 0) {
						count++
						if emit != nil {
							emit(i, int(g.perm[pos]), sk, row)
						}
					}
				}
			}
		}
	}
	return count
}

// Join implements Algorithm.
func (EpsGrid) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	ns, nt := s.Len(), t.Len()
	if ns == 0 || nt == 0 {
		return 0
	}
	dims := t.Dims()
	w0, w1, ok := epsGridWidths(dims, band)
	if !ok {
		return GridSortScan{}.Join(s, t, band, emit)
	}

	sc := scratchPool.Get().(*scratch)
	g := &sc.grid
	g.build(t, w0, w1)
	count := g.probe(s, dims, band, w0, w1, emit)
	scratchPool.Put(sc)
	return count
}

// JoinRange implements RangeJoiner: the cell-walk loop restricted to S
// indices [lo, hi) (or the sorted-scan fallback's range form when the grid is
// undefined). The grid is rebuilt per call; when several ranges of the same
// partition run, Prepare the structure once and use ProbeRange instead.
func (EpsGrid) JoinRange(s, t *data.Relation, band data.Band, lo, hi int, emit Emit) int64 {
	ns, nt := s.Len(), t.Len()
	if ns == 0 || nt == 0 || lo >= hi {
		return 0
	}
	dims := t.Dims()
	w0, w1, ok := epsGridWidths(dims, band)
	if !ok {
		return GridSortScan{}.JoinRange(s, t, band, lo, hi, emit)
	}

	sc := scratchPool.Get().(*scratch)
	g := &sc.grid
	g.build(t, w0, w1)
	count := g.probeRange(s, dims, band, w0, w1, lo, hi, emit)
	scratchPool.Put(sc)
	return count
}
