package localjoin

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"bandjoin/internal/data"
)

func algorithms() []Algorithm {
	return []Algorithm{NestedLoop{}, SortProbe{}, GridSortScan{}, EpsGrid{}, Auto{}, BaselineSortProbe{}, BaselineGridSortScan{}}
}

func makePair(n, d int, eps float64, seed int64) (*data.Relation, *data.Relation, data.Band) {
	s, t := data.ParetoPair(d, 1.5, n, seed)
	return s, t, data.Uniform(d, eps)
}

// collect gathers the result pair identifiers of an algorithm.
func collect(alg Algorithm, s, t *data.Relation, band data.Band) map[[2]int]bool {
	out := make(map[[2]int]bool)
	alg.Join(s, t, band, func(si, ti int, _, _ []float64) {
		out[[2]int{si, ti}] = true
	})
	return out
}

func TestAllAlgorithmsAgreeWithNestedLoop(t *testing.T) {
	s, tt, band := makePair(400, 2, 0.1, 3)
	want := collect(NestedLoop{}, s, tt, band)
	if len(want) == 0 {
		t.Fatal("reference join produced no results; widen the band")
	}
	for _, alg := range algorithms()[1:] {
		got := collect(alg, s, tt, band)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s disagrees with nested loop: %d vs %d pairs", alg.Name(), len(got), len(want))
		}
	}
}

func TestCountMatchesEmit(t *testing.T) {
	s, tt, band := makePair(300, 3, 0.05, 5)
	for _, alg := range algorithms() {
		var emitted int64
		count := alg.Join(s, tt, band, func(int, int, []float64, []float64) { emitted++ })
		if count != emitted {
			t.Errorf("%s: returned count %d but emitted %d", alg.Name(), count, emitted)
		}
		countOnly := alg.Join(s, tt, band, nil)
		if countOnly != count {
			t.Errorf("%s: count-only mode returned %d, want %d", alg.Name(), countOnly, count)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := data.NewRelation("e", 1)
	one := data.NewRelation("o", 1)
	one.Append(1)
	band := data.Symmetric(1)
	for _, alg := range algorithms() {
		if alg.Join(empty, one, band, nil) != 0 || alg.Join(one, empty, band, nil) != 0 {
			t.Errorf("%s: join with an empty input produced results", alg.Name())
		}
	}
}

func TestEquiJoin(t *testing.T) {
	s := data.NewRelation("s", 1)
	tt := data.NewRelation("t", 1)
	for i := 0; i < 50; i++ {
		s.Append(float64(i % 10))
		tt.Append(float64(i % 5))
	}
	band := data.Symmetric(0)
	want := NestedLoop{}.Join(s, tt, band, nil)
	if want == 0 {
		t.Fatal("equi-join reference produced no results")
	}
	for _, alg := range algorithms()[1:] {
		if got := alg.Join(s, tt, band, nil); got != want {
			t.Errorf("%s equi-join count = %d, want %d", alg.Name(), got, want)
		}
	}
}

func TestAsymmetricBand(t *testing.T) {
	s := data.NewRelation("s", 1)
	tt := data.NewRelation("t", 1)
	s.Append(10)
	for _, v := range []float64{7.9, 8, 9, 10, 11, 11.1} {
		tt.Append(v)
	}
	band := data.Asymmetric([]float64{2}, []float64{1}) // s-2 <= t <= s+1
	for _, alg := range algorithms() {
		if got := alg.Join(s, tt, band, nil); got != 4 {
			t.Errorf("%s asymmetric count = %d, want 4", alg.Name(), got)
		}
	}
}

// TestAlgorithmsAgreeProperty cross-checks the algorithms on random inputs
// with random band widths (testing/quick drives the generation).
func TestAlgorithmsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64, epsRaw float64) bool {
		eps := 0.001 + (epsRaw-float64(int(epsRaw)))*0.2
		if eps < 0 {
			eps = -eps
		}
		for _, d := range []int{1, 2} {
			s, tt, band := makePair(120, d, eps, seed)
			want := NestedLoop{}.Join(s, tt, band, nil)
			ok := (SortProbe{}).Join(s, tt, band, nil) == want &&
				(GridSortScan{}).Join(s, tt, band, nil) == want &&
				(EpsGrid{}).Join(s, tt, band, nil) == want &&
				(Auto{}).Join(s, tt, band, nil) == want &&
				(BaselineSortProbe{}).Join(s, tt, band, nil) == want &&
				(BaselineGridSortScan{}).Join(s, tt, band, nil) == want
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEmitIndicesValid(t *testing.T) {
	s, tt, band := makePair(200, 1, 0.01, 13)
	for _, alg := range algorithms() {
		alg.Join(s, tt, band, func(si, ti int, sk, tk []float64) {
			if si < 0 || si >= s.Len() || ti < 0 || ti >= tt.Len() {
				t.Fatalf("%s emitted out-of-range indices (%d, %d)", alg.Name(), si, ti)
			}
			if s.Key(si)[0] != sk[0] || tt.Key(ti)[0] != tk[0] {
				t.Fatalf("%s emitted keys that do not match the indices", alg.Name())
			}
			if !band.Matches(sk, tk) {
				t.Fatalf("%s emitted a non-matching pair", alg.Name())
			}
		})
	}
}

func TestByName(t *testing.T) {
	names := []string{"auto", "nested-loop", "sort-probe", "grid-sort-scan", "eps-grid", "baseline-sort-probe", "baseline-grid-sort-scan"}
	sort.Strings(names)
	for _, n := range names {
		alg, ok := ByName(n)
		if !ok || alg.Name() != n {
			t.Errorf("ByName(%q) = %v, %v", n, alg, ok)
		}
	}
	if _, ok := ByName("does-not-exist"); ok {
		t.Error("ByName accepted an unknown algorithm")
	}
	if Default() == nil {
		t.Error("Default returned nil")
	}
}

// TestPreparedMatchesJoin: for every algorithm with a prepared form, probing
// the prepared T-side structure must produce exactly the pairs — in the same
// order — as the plain per-query Join.
func TestPreparedMatchesJoin(t *testing.T) {
	s, tt := data.ParetoPair(3, 1.4, 400, 7)
	bands := map[string]data.Band{
		"band":      data.Symmetric(0.3, 0.3, 0.3),
		"asym":      data.Asymmetric([]float64{0.4, 0.1, 0.2}, []float64{0.1, 0.3, 0.5}),
		"equi-dim0": {Low: []float64{0, 0.3, 0.3}, High: []float64{0, 0.3, 0.3}},
	}
	algs := []Algorithm{Auto{}, SortProbe{}, GridSortScan{}, EpsGrid{}}
	for bandName, band := range bands {
		for _, alg := range algs {
			type pair struct{ s, t int }
			var plain, probed []pair
			wantCount := alg.Join(s, tt, band, func(si, ti int, _, _ []float64) {
				plain = append(plain, pair{si, ti})
			})
			prep := Prepare(alg, s, tt, band)
			if prep == nil {
				t.Fatalf("%s/%s: no prepared form", alg.Name(), bandName)
			}
			for round := 0; round < 2; round++ {
				probed = probed[:0]
				gotCount := prep.Probe(s, func(si, ti int, _, _ []float64) {
					probed = append(probed, pair{si, ti})
				})
				if gotCount != wantCount {
					t.Fatalf("%s/%s round %d: prepared count %d, plain %d", alg.Name(), bandName, round, gotCount, wantCount)
				}
				if len(probed) != len(plain) {
					t.Fatalf("%s/%s round %d: %d pairs, plain %d", alg.Name(), bandName, round, len(probed), len(plain))
				}
				for i := range plain {
					if plain[i] != probed[i] {
						t.Fatalf("%s/%s round %d: pair %d = %v, plain %v", alg.Name(), bandName, round, i, probed[i], plain[i])
					}
				}
			}
		}
	}
	// Algorithms without a prepared form decline instead of guessing.
	if Prepare(NestedLoop{}, s, tt, bands["band"]) != nil {
		t.Error("NestedLoop unexpectedly has a prepared form")
	}
}
