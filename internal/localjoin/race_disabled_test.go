//go:build !race

package localjoin

const raceEnabled = false
