// Package localjoin implements the band-join algorithms each worker runs on
// its local partition after the shuffle. The paper (Section 6.1) uses an
// index-nested-loop algorithm that range-partitions T on the most selective
// dimension A1 with ranges of size ε1 and probes with binary search; a
// sorted-scan variant is used for Grid-ε partitions, and a block nested loop
// serves as the correctness reference. All algorithms produce each matching
// pair exactly once.
//
// SortProbe and GridSortScan are allocation-free in the steady state: sort
// scratch (flat (key, index) pair buffers and a dimension-0-sorted copy of
// the partition rows) is reused through a sync.Pool, the pairs are sorted
// with slices.SortFunc over a concrete element type instead of sort.Slice
// with closure comparators, and the probe loop scans contiguous rows with no
// index indirection. Auto, the executor's default, picks per partition among
// the nested loop (tiny inputs), the 2D local ε-grid (multi-dimensional
// bands), the sorted probe (1D), and the sliding-window sorted scan.
// The previous allocating implementations are retained as BaselineSortProbe
// and BaselineGridSortScan; they serve as additional correctness oracles and
// as the pre-optimization reference the pipeline benchmark (internal/bench)
// measures speedups against.
package localjoin

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"bandjoin/internal/data"
)

// Emit receives one join result: the S-key, the T-key, and their tuple IDs in
// the local partition relations. Passing a nil Emit to a Join computes the
// result cardinality only, which is what the benchmark harness uses to avoid
// materializing billions of pairs.
type Emit func(sIdx, tIdx int, sKey, tKey []float64)

// Algorithm is a local band-join algorithm.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Join computes the band-join of s and t, invoking emit (if non-nil) for
	// every matching pair, and returns the number of result pairs.
	Join(s, t *data.Relation, band data.Band, emit Emit) int64
}

// RangeJoiner is an Algorithm whose probe loop can be restricted to a
// contiguous range of its own probe order. JoinRange(s, t, band, lo, hi, emit)
// runs positions [lo, hi) of the exact probe sequence Join(s, t, band, emit)
// would run: concatenating the emissions of consecutive ranges covering
// [0, probe-domain) reproduces Join's output bit-identically, which is what
// lets the morsel scheduler stripe one partition across workers and still
// merge a deterministic result. The probe domain is S — raw S indices for the
// probe-style algorithms, dim-0-sorted S positions for the sorted scan — so
// the domain size is always s.Len(). Emission is per-S-tuple; no pair crosses
// a range boundary.
type RangeJoiner interface {
	Algorithm
	JoinRange(s, t *data.Relation, band data.Band, lo, hi int, emit Emit) int64
}

// ---------------------------------------------------------------------------
// Block nested loop (reference implementation)

// NestedLoop is the quadratic reference algorithm. It is used by tests as the
// ground truth and by workers for very small partitions where sorting is not
// worthwhile.
type NestedLoop struct{}

// Name implements Algorithm.
func (NestedLoop) Name() string { return "nested-loop" }

// Join implements Algorithm.
func (NestedLoop) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	return NestedLoop{}.JoinRange(s, t, band, 0, s.Len(), emit)
}

// JoinRange implements RangeJoiner: the outer loop restricted to S indices
// [lo, hi).
func (NestedLoop) JoinRange(s, t *data.Relation, band data.Band, lo, hi int, emit Emit) int64 {
	var count int64
	for i := lo; i < hi; i++ {
		sk := s.Key(i)
		for j := 0; j < t.Len(); j++ {
			tk := t.Key(j)
			if band.Matches(sk, tk) {
				count++
				if emit != nil {
					emit(i, j, sk, tk)
				}
			}
		}
	}
	return count
}

// ---------------------------------------------------------------------------
// Sort scratch shared by the fast algorithms

// keyIdx is one element of the flat sort arrays: the dimension-0 key of a
// tuple together with its index in the partition relation. Sorting and
// scanning these 16-byte records keeps the probe loop on contiguous memory,
// unlike sorting an []int index slice whose comparator chases the key through
// the relation on every comparison.
type keyIdx struct {
	key float64
	idx int32
}

// sortedRel is a partition relation re-materialized in dimension-0 order:
// rows holds all key rows contiguously (row-major) sorted by dimension 0, and
// perm maps a sorted position back to the original tuple index (needed only
// when pairs are emitted). Gathering the rows once turns every probe's
// candidate scan into a purely sequential read — the original implementations
// chased an index indirection into the relation for every candidate.
type sortedRel struct {
	rows []float64
	perm []int32
}

// scratch holds the reusable sort buffers of one worker. Buffers grow to the
// largest partition a worker sees and are then reused allocation-free.
type scratch struct {
	pairs []keyIdx
	s, t  sortedRel
	grid  gridState
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// sortedPairs fills buf with (dimension-0 key, index) pairs of r, sorted by
// key, reusing buf's storage when it is large enough.
func sortedPairs(buf []keyIdx, r *data.Relation) []keyIdx {
	n := r.Len()
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("localjoin: partition of %d tuples exceeds the 2^31-1 local index range", n))
	}
	if cap(buf) < n {
		buf = make([]keyIdx, n)
	} else {
		buf = buf[:n]
	}
	for i := 0; i < n; i++ {
		buf[i] = keyIdx{key: r.KeyAt(i, 0), idx: int32(i)}
	}
	slices.SortFunc(buf, func(a, b keyIdx) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return 0
		}
	})
	return buf
}

// build fills sr with r's rows sorted by dimension 0, using sc.pairs as the
// sort scratch. All buffers are reused when large enough.
func (sr *sortedRel) build(sc *scratch, r *data.Relation) {
	n, dims := r.Len(), r.Dims()
	sc.pairs = sortedPairs(sc.pairs, r)
	if cap(sr.rows) < n*dims {
		sr.rows = make([]float64, n*dims)
	} else {
		sr.rows = sr.rows[:n*dims]
	}
	if cap(sr.perm) < n {
		sr.perm = make([]int32, n)
	} else {
		sr.perm = sr.perm[:n]
	}
	for pos, p := range sc.pairs {
		sr.perm[pos] = p.idx
		copy(sr.rows[pos*dims:(pos+1)*dims], r.Key(int(p.idx)))
	}
}

// searchRowsGE returns the first sorted position whose dimension-0 key is >= x.
func searchRowsGE(rows []float64, dims, n int, x float64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rows[mid*dims] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchRowsGT returns the first sorted position whose dimension-0 key is > x.
func searchRowsGT(rows []float64, dims, n int, x float64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rows[mid*dims] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// matchesFrom checks the band condition for dimensions [from, d).
func matchesFrom(band data.Band, sk, tk []float64, from int) bool {
	for d := from; d < len(sk); d++ {
		if tk[d] < sk[d]-band.Low[d] || tk[d] > sk[d]+band.High[d] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Sorted probe (the paper's index-nested-loop, realized with one sort)

// SortProbe sorts T on dimension 0 once and, for every S-tuple, locates the
// matching T-range with binary search and scans it, verifying the remaining
// dimensions. This is equivalent to the paper's index-nested-loop with
// ε1-sized ranges (the binary search plays the role of the range index) and
// also covers the equi-join case ε = 0, for which Grid-ε is undefined but the
// other partitioners still need a local algorithm.
type SortProbe struct{}

// Name implements Algorithm.
func (SortProbe) Name() string { return "sort-probe" }

// probeSortedT runs the sorted-probe loop of S against a dim-0-sorted T
// (rows/perm as produced by sortedRel.build). It is shared by the one-shot
// Join and the prepared (cached T side) form.
func probeSortedT(rows []float64, perm []int32, n, dims int, s *data.Relation, band data.Band, emit Emit) int64 {
	return probeSortedTRange(rows, perm, n, dims, s, 0, s.Len(), band, emit)
}

// probeSortedTRange is probeSortedT restricted to S indices [sLo, sHi). Each
// S-tuple's probe is independent, so a range runs exactly the iterations the
// full loop would run for those indices.
func probeSortedTRange(rows []float64, perm []int32, n, dims int, s *data.Relation, sLo, sHi int, band data.Band, emit Emit) int64 {
	var count int64
	countOnly1D := emit == nil && dims == 1
	for i := sLo; i < sHi; i++ {
		sk := s.Key(i)
		lo := sk[0] - band.Low[0]
		hi := sk[0] + band.High[0]
		start := searchRowsGE(rows, dims, n, lo)
		if countOnly1D {
			// One dimension and no pair materialization: the matching range
			// is exactly [start, end), no per-tuple verification needed.
			count += int64(searchRowsGT(rows, dims, n, hi) - start)
			continue
		}
		for pos := start; pos < n; pos++ {
			base := pos * dims
			if rows[base] > hi {
				break
			}
			row := rows[base : base+dims]
			if matchesFrom(band, sk, row, 1) {
				count++
				if emit != nil {
					emit(i, int(perm[pos]), sk, row)
				}
			}
		}
	}
	return count
}

// Join implements Algorithm.
func (SortProbe) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	n := t.Len()
	if n == 0 || s.Len() == 0 {
		return 0
	}
	dims := t.Dims()
	sc := scratchPool.Get().(*scratch)
	sc.t.build(sc, t)
	count := probeSortedT(sc.t.rows, sc.t.perm, n, dims, s, band, emit)
	scratchPool.Put(sc)
	return count
}

// JoinRange implements RangeJoiner: the probe loop restricted to S indices
// [lo, hi). The T side is rebuilt per call; when several ranges of the same
// partition run, Prepare the structure once and use ProbeRange instead.
func (SortProbe) JoinRange(s, t *data.Relation, band data.Band, lo, hi int, emit Emit) int64 {
	n := t.Len()
	if n == 0 || lo >= hi {
		return 0
	}
	dims := t.Dims()
	sc := scratchPool.Get().(*scratch)
	sc.t.build(sc, t)
	count := probeSortedTRange(sc.t.rows, sc.t.perm, n, dims, s, lo, hi, band, emit)
	scratchPool.Put(sc)
	return count
}

// ---------------------------------------------------------------------------
// Grid sorted scan (the Grid-ε local algorithm from Section 6.1)

// GridSortScan sorts both inputs on dimension 0 and, for every S-tuple in
// sorted order, advances a sliding window over T. It matches the paper's
// description of the slightly modified local algorithm used for Grid-ε
// partitions, whose extent in A1 already equals the grid size.
type GridSortScan struct{}

// Name implements Algorithm.
func (GridSortScan) Name() string { return "grid-sort-scan" }

// scanSortedWindow runs the sliding-window scan of a dim-0-sorted S against a
// dim-0-sorted T. It is shared by the one-shot Join and the prepared form.
func scanSortedWindow(sRows []float64, sPerm []int32, ns int, tRows []float64, tPerm []int32, nt, dims int, band data.Band, emit Emit) int64 {
	return scanSortedWindowRange(sRows, sPerm, tRows, tPerm, nt, dims, 0, ns, band, emit)
}

// scanSortedWindowRange is scanSortedWindow restricted to sorted-S positions
// [sLo, sHi). The sequential scan's window start is monotone: winLo stops at
// the first T position with key >= (sKey - band.Low[0]), and that bound is
// nondecreasing in sorted-S order, so winLo at any position equals the binary
// search for it — recomputing it at sLo puts a range on the exact state the
// sequential scan would have there, and the emissions of consecutive ranges
// concatenate to the full scan bit-identically.
func scanSortedWindowRange(sRows []float64, sPerm []int32, tRows []float64, tPerm []int32, nt, dims, sLo, sHi int, band data.Band, emit Emit) int64 {
	var count int64
	if sLo >= sHi {
		return 0
	}
	winLo := searchRowsGE(tRows, dims, nt, sRows[sLo*dims]-band.Low[0])
	for spos := sLo; spos < sHi; spos++ {
		sk := sRows[spos*dims : (spos+1)*dims]
		lo := sk[0] - band.Low[0]
		hi := sk[0] + band.High[0]
		for winLo < nt && tRows[winLo*dims] < lo {
			winLo++
		}
		for pos := winLo; pos < nt; pos++ {
			base := pos * dims
			if tRows[base] > hi {
				break
			}
			row := tRows[base : base+dims]
			if matchesFrom(band, sk, row, 1) {
				count++
				if emit != nil {
					emit(int(sPerm[spos]), int(tPerm[pos]), sk, row)
				}
			}
		}
	}
	return count
}

// Join implements Algorithm.
func (GridSortScan) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	ns, nt := s.Len(), t.Len()
	if ns == 0 || nt == 0 {
		return 0
	}
	dims := t.Dims()
	sc := scratchPool.Get().(*scratch)
	sc.s.build(sc, s)
	sc.t.build(sc, t)
	count := scanSortedWindow(sc.s.rows, sc.s.perm, ns, sc.t.rows, sc.t.perm, nt, dims, band, emit)
	scratchPool.Put(sc)
	return count
}

// JoinRange implements RangeJoiner. The probe domain is dim-0-sorted S
// positions, not raw S indices: [lo, hi) of the sorted scan order. Both sides
// are rebuilt per call; when several ranges of the same partition run,
// Prepare the structure once and use ProbeRange instead.
func (GridSortScan) JoinRange(s, t *data.Relation, band data.Band, lo, hi int, emit Emit) int64 {
	ns, nt := s.Len(), t.Len()
	if ns == 0 || nt == 0 || lo >= hi {
		return 0
	}
	dims := t.Dims()
	sc := scratchPool.Get().(*scratch)
	sc.s.build(sc, s)
	sc.t.build(sc, t)
	count := scanSortedWindowRange(sc.s.rows, sc.s.perm, sc.t.rows, sc.t.perm, nt, dims, lo, hi, band, emit)
	scratchPool.Put(sc)
	return count
}

// ---------------------------------------------------------------------------
// Adaptive selection

// Auto picks the cheapest algorithm per partition: the quadratic nested loop
// when either side is too small for sorting to pay off, the two-dimensional
// ε-grid when it is defined (d ≥ 2 and non-zero band extents on the first two
// dimensions — it filters candidates on two dimensions instead of one), the
// sorted probe for one-dimensional joins (whose count-only path answers each
// probe with two binary searches), and the sliding-window sorted scan for
// everything else (e.g. equi-join dimensions).
type Auto struct{}

// autoNestedLoopMax is the side size below which the nested loop wins.
const autoNestedLoopMax = 32

// Name implements Algorithm.
func (Auto) Name() string { return "auto" }

// Join implements Algorithm.
func (Auto) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	if s.Len() <= autoNestedLoopMax || t.Len() <= autoNestedLoopMax {
		return NestedLoop{}.Join(s, t, band, emit)
	}
	if t.Dims() == 1 {
		return SortProbe{}.Join(s, t, band, emit)
	}
	// EpsGrid falls back to GridSortScan itself when its grid is undefined.
	return EpsGrid{}.Join(s, t, band, emit)
}

// JoinRange implements RangeJoiner, dispatching exactly like Join (the
// selection consults only sizes and dimensionality, never the range).
func (Auto) JoinRange(s, t *data.Relation, band data.Band, lo, hi int, emit Emit) int64 {
	if s.Len() <= autoNestedLoopMax || t.Len() <= autoNestedLoopMax {
		return NestedLoop{}.JoinRange(s, t, band, lo, hi, emit)
	}
	if t.Dims() == 1 {
		return SortProbe{}.JoinRange(s, t, band, lo, hi, emit)
	}
	return EpsGrid{}.JoinRange(s, t, band, lo, hi, emit)
}

// Default returns the algorithm the executor uses when none is specified.
func Default() Algorithm { return Auto{} }

// RangeNeedsNoPrepare reports whether alg's JoinRange repeats no build work
// per range, so a partition without a prepared structure can be striped
// through it directly. True only for the nested loop — including Auto, whose
// Prepare returns nil exactly when it would pick the nested loop — whose
// probe has no T-side structure to rebuild. The sort- and grid-based
// algorithms rebuild their structure per JoinRange call; stripe those through
// Prepare + ProbeRange instead.
func RangeNeedsNoPrepare(alg Algorithm) bool {
	switch alg.(type) {
	case NestedLoop, Auto:
		return true
	default:
		return false
	}
}

// ByName returns the algorithm with the given name, or false if unknown.
func ByName(name string) (Algorithm, bool) {
	switch name {
	case "auto":
		return Auto{}, true
	case "nested-loop":
		return NestedLoop{}, true
	case "sort-probe":
		return SortProbe{}, true
	case "grid-sort-scan":
		return GridSortScan{}, true
	case "eps-grid":
		return EpsGrid{}, true
	case "baseline-sort-probe":
		return BaselineSortProbe{}, true
	case "baseline-grid-sort-scan":
		return BaselineGridSortScan{}, true
	default:
		return nil, false
	}
}
