// Package localjoin implements the band-join algorithms each worker runs on
// its local partition after the shuffle. The paper (Section 6.1) uses an
// index-nested-loop algorithm that range-partitions T on the most selective
// dimension A1 with ranges of size ε1 and probes with binary search; a
// sorted-scan variant is used for Grid-ε partitions, and a block nested loop
// serves as the correctness reference. All algorithms produce each matching
// pair exactly once.
package localjoin

import (
	"sort"

	"bandjoin/internal/data"
)

// Emit receives one join result: the S-key, the T-key, and their tuple IDs in
// the local partition relations. Passing a nil Emit to a Join computes the
// result cardinality only, which is what the benchmark harness uses to avoid
// materializing billions of pairs.
type Emit func(sIdx, tIdx int, sKey, tKey []float64)

// Algorithm is a local band-join algorithm.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Join computes the band-join of s and t, invoking emit (if non-nil) for
	// every matching pair, and returns the number of result pairs.
	Join(s, t *data.Relation, band data.Band, emit Emit) int64
}

// ---------------------------------------------------------------------------
// Block nested loop (reference implementation)

// NestedLoop is the quadratic reference algorithm. It is used by tests as the
// ground truth and by workers for very small partitions where sorting is not
// worthwhile.
type NestedLoop struct{}

// Name implements Algorithm.
func (NestedLoop) Name() string { return "nested-loop" }

// Join implements Algorithm.
func (NestedLoop) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	var count int64
	for i := 0; i < s.Len(); i++ {
		sk := s.Key(i)
		for j := 0; j < t.Len(); j++ {
			tk := t.Key(j)
			if band.Matches(sk, tk) {
				count++
				if emit != nil {
					emit(i, j, sk, tk)
				}
			}
		}
	}
	return count
}

// ---------------------------------------------------------------------------
// Sorted probe (the paper's index-nested-loop, realized with one sort)

// SortProbe sorts T on dimension 0 once and, for every S-tuple, locates the
// matching T-range with binary search and scans it, verifying the remaining
// dimensions. This is equivalent to the paper's index-nested-loop with
// ε1-sized ranges (the binary search plays the role of the range index) and
// also covers the equi-join case ε = 0, for which Grid-ε is undefined but the
// other partitioners still need a local algorithm.
type SortProbe struct{}

// Name implements Algorithm.
func (SortProbe) Name() string { return "sort-probe" }

// Join implements Algorithm.
func (SortProbe) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	n := t.Len()
	if n == 0 || s.Len() == 0 {
		return 0
	}
	// Sort indices of T by dimension 0.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.Key(idx[a])[0] < t.Key(idx[b])[0] })
	vals := make([]float64, n)
	for pos, j := range idx {
		vals[pos] = t.Key(j)[0]
	}

	var count int64
	for i := 0; i < s.Len(); i++ {
		sk := s.Key(i)
		lo := sk[0] - band.Low[0]
		hi := sk[0] + band.High[0]
		start := sort.SearchFloat64s(vals, lo)
		for pos := start; pos < n && vals[pos] <= hi; pos++ {
			j := idx[pos]
			tk := t.Key(j)
			if matchesFrom(band, sk, tk, 1) {
				count++
				if emit != nil {
					emit(i, j, sk, tk)
				}
			}
		}
	}
	return count
}

// matchesFrom checks the band condition for dimensions [from, d).
func matchesFrom(band data.Band, sk, tk []float64, from int) bool {
	for d := from; d < len(sk); d++ {
		if tk[d] < sk[d]-band.Low[d] || tk[d] > sk[d]+band.High[d] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Grid sorted scan (the Grid-ε local algorithm from Section 6.1)

// GridSortScan sorts both inputs on dimension 0 and, for every S-tuple in
// sorted order, advances a sliding window over T. It matches the paper's
// description of the slightly modified local algorithm used for Grid-ε
// partitions, whose extent in A1 already equals the grid size.
type GridSortScan struct{}

// Name implements Algorithm.
func (GridSortScan) Name() string { return "grid-sort-scan" }

// Join implements Algorithm.
func (GridSortScan) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	ns, nt := s.Len(), t.Len()
	if ns == 0 || nt == 0 {
		return 0
	}
	sIdx := make([]int, ns)
	for i := range sIdx {
		sIdx[i] = i
	}
	sort.Slice(sIdx, func(a, b int) bool { return s.Key(sIdx[a])[0] < s.Key(sIdx[b])[0] })
	tIdx := make([]int, nt)
	for i := range tIdx {
		tIdx[i] = i
	}
	sort.Slice(tIdx, func(a, b int) bool { return t.Key(tIdx[a])[0] < t.Key(tIdx[b])[0] })

	var count int64
	winLo := 0
	for _, si := range sIdx {
		sk := s.Key(si)
		lo := sk[0] - band.Low[0]
		hi := sk[0] + band.High[0]
		for winLo < nt && t.Key(tIdx[winLo])[0] < lo {
			winLo++
		}
		for pos := winLo; pos < nt; pos++ {
			tj := tIdx[pos]
			tk := t.Key(tj)
			if tk[0] > hi {
				break
			}
			if matchesFrom(band, sk, tk, 1) {
				count++
				if emit != nil {
					emit(si, tj, sk, tk)
				}
			}
		}
	}
	return count
}

// ---------------------------------------------------------------------------
// Algorithm selection

// Default returns the algorithm the executor uses when none is specified.
func Default() Algorithm { return SortProbe{} }

// ByName returns the algorithm with the given name, or false if unknown.
func ByName(name string) (Algorithm, bool) {
	switch name {
	case "nested-loop":
		return NestedLoop{}, true
	case "sort-probe":
		return SortProbe{}, true
	case "grid-sort-scan":
		return GridSortScan{}, true
	default:
		return nil, false
	}
}
