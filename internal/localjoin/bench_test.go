package localjoin

import (
	"fmt"
	"testing"

	"bandjoin/internal/data"
)

// benchInputs builds a partition-sized workload: n tuples per side, d
// dimensions, band width chosen so each probe scans a handful of candidates.
func benchInputs(n, d int) (*data.Relation, *data.Relation, data.Band) {
	s, t := data.ParetoPair(d, 1.5, n, 42)
	return s, t, data.Uniform(d, 0.001)
}

func benchmarkAlgorithm(b *testing.B, alg Algorithm, n, d int) {
	s, t, band := benchInputs(n, d)
	// Warm the scratch pool so the steady state is measured.
	alg.Join(s, t, band, nil)
	b.ReportAllocs()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total += alg.Join(s, t, band, nil)
	}
	b.StopTimer()
	if total < 0 {
		b.Fatal("impossible negative count")
	}
	b.SetBytes(int64(n * d * 8 * 2))
}

func benchmarkBoth(b *testing.B, fast, baseline Algorithm) {
	for _, cfg := range []struct{ n, d int }{{10_000, 1}, {10_000, 3}} {
		b.Run(fmt.Sprintf("n=%d/d=%d", cfg.n, cfg.d), func(b *testing.B) {
			benchmarkAlgorithm(b, fast, cfg.n, cfg.d)
		})
		b.Run(fmt.Sprintf("baseline/n=%d/d=%d", cfg.n, cfg.d), func(b *testing.B) {
			benchmarkAlgorithm(b, baseline, cfg.n, cfg.d)
		})
	}
}

func BenchmarkSortProbe(b *testing.B) {
	benchmarkBoth(b, SortProbe{}, BaselineSortProbe{})
}

func BenchmarkGridSortScan(b *testing.B) {
	benchmarkBoth(b, GridSortScan{}, BaselineGridSortScan{})
}

// TestSortProbeSteadyStateAllocs asserts the acceptance criterion directly:
// after warm-up, SortProbe performs zero allocations per join call.
func TestSortProbeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; steady state not observable")
	}
	s, tt, band := benchInputs(5_000, 3)
	alg := SortProbe{}
	alg.Join(s, tt, band, nil) // warm the scratch pool
	avg := testing.AllocsPerRun(10, func() {
		alg.Join(s, tt, band, nil)
	})
	if avg > 0 {
		t.Errorf("SortProbe steady state allocates %.1f times per join, want 0", avg)
	}
}

func TestEpsGridSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; steady state not observable")
	}
	s, tt, band := benchInputs(5_000, 3)
	alg := EpsGrid{}
	alg.Join(s, tt, band, nil)
	avg := testing.AllocsPerRun(10, func() {
		alg.Join(s, tt, band, nil)
	})
	if avg > 0 {
		t.Errorf("EpsGrid steady state allocates %.1f times per join, want 0", avg)
	}
}

func BenchmarkEpsGrid(b *testing.B) {
	for _, cfg := range []struct{ n, d int }{{10_000, 2}, {10_000, 3}} {
		b.Run(fmt.Sprintf("n=%d/d=%d", cfg.n, cfg.d), func(b *testing.B) {
			benchmarkAlgorithm(b, EpsGrid{}, cfg.n, cfg.d)
		})
	}
}

func TestGridSortScanSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; steady state not observable")
	}
	s, tt, band := benchInputs(5_000, 3)
	alg := GridSortScan{}
	alg.Join(s, tt, band, nil)
	avg := testing.AllocsPerRun(10, func() {
		alg.Join(s, tt, band, nil)
	})
	if avg > 0 {
		t.Errorf("GridSortScan steady state allocates %.1f times per join, want 0", avg)
	}
}
