package localjoin

import (
	"math"

	"bandjoin/internal/data"
)

// PreparedT is a join structure built once for a fixed (S, T, band) triple
// and probed by any number of queries. It is the index-retention counterpart
// of the engine's retained partitions: a worker that keeps a partition
// resident across queries also keeps the structures its local joins would
// otherwise rebuild per query — the ε-grid CSR buckets or dim-0-sorted row
// copies, plus, since the S side is pinned too, each S-tuple's resolved list
// of candidate cells (the per-probe hash lookups, paid once). Probe must
// produce exactly the pairs — in the same order — as the corresponding
// Algorithm.Join over the same inputs.
//
// Probe's s must be the relation passed to Prepare. Retained partitions
// change only through delta appends, and an append invalidates the cached
// PreparedT (the worker drops it and rebuilds from the grown partition on the
// next probe), so every live PreparedT matches its partition's current rows.
// A PreparedT is immutable after Prepare and safe for concurrent Probe calls.
type PreparedT interface {
	// Probe joins s against the prepared structure, invoking emit (if
	// non-nil) per matching pair, and returns the number of result pairs.
	Probe(s *data.Relation, emit Emit) int64
}

// RangeProber is a PreparedT whose probe can be restricted to a contiguous
// range [lo, hi) of its own probe order (raw S indices for the probe-style
// structures, dim-0-sorted S positions for the sorted scan; the domain size
// is always s.Len()). Concatenating the emissions of consecutive ranges
// covering [0, s.Len()) reproduces Probe's output bit-identically, and since
// the structure is immutable, any number of ProbeRange calls may run
// concurrently over the same receiver — this is the morsel scheduler's
// contract. All structures returned by Prepare implement it.
type RangeProber interface {
	PreparedT
	ProbeRange(s *data.Relation, lo, hi int, emit Emit) int64
}

// Prepare builds the reusable T-side structure the algorithm would otherwise
// rebuild on every Join of the same (s, t, band), dispatching exactly like
// the algorithm's own Join (including Auto's per-partition selection, which
// only consults the fixed sizes and dimensionality). It returns nil when the
// algorithm has no prepared form (e.g. the nested loop, or the retained
// baseline oracles), in which case callers fall back to plain Join calls.
func Prepare(alg Algorithm, s, t *data.Relation, band data.Band) PreparedT {
	if s.Len() == 0 || t.Len() == 0 {
		return nil
	}
	switch alg.(type) {
	case Auto:
		if s.Len() <= autoNestedLoopMax || t.Len() <= autoNestedLoopMax {
			return nil // nested loop: nothing to prepare, and sorting cannot pay off
		}
		if t.Dims() == 1 {
			return Prepare(SortProbe{}, s, t, band)
		}
		return Prepare(EpsGrid{}, s, t, band)
	case EpsGrid:
		w0, w1, ok := epsGridWidths(t.Dims(), band)
		if !ok {
			return Prepare(GridSortScan{}, s, t, band)
		}
		g := &gridState{}
		g.build(t, w0, w1)
		p := &preparedEpsGrid{g: g, band: band, dims: t.Dims(), w0: w0, w1: w1}
		p.resolveCells(s)
		return p
	case SortProbe:
		sr := buildSortedStandalone(t)
		return &preparedSortProbe{t: sr, n: t.Len(), dims: t.Dims(), band: band}
	case GridSortScan:
		return &preparedGridSortScan{
			s: buildSortedStandalone(s), ns: s.Len(),
			t: buildSortedStandalone(t), nt: t.Len(),
			dims: t.Dims(), band: band,
		}
	default:
		return nil
	}
}

// buildSortedStandalone materializes r's rows in dimension-0 order into
// storage owned by the result (unlike sortedRel.build, whose buffers belong
// to the pooled scratch and must not outlive the call).
func buildSortedStandalone(r *data.Relation) *sortedRel {
	sc := scratchPool.Get().(*scratch)
	var sr sortedRel
	sr.build(sc, r)
	// Detach from the scratch before returning it to the pool: steal the
	// built buffers and leave the scratch's own sortedRels untouched.
	out := &sortedRel{rows: sr.rows, perm: sr.perm}
	scratchPool.Put(sc)
	return out
}

// preparedEpsGrid is the cached form of EpsGrid: the CSR cell buckets over T
// plus, per S-tuple, the resolved list of non-empty cells its band region
// intersects (sStarts/sCells, CSR over S). The plain probe spends most of its
// time hash-looking-up the ≤ 9 candidate cells per S-tuple, almost all of
// which are empty for sparse workloads; resolving them once at Prepare turns
// every later probe into a read of a short precomputed id list.
type preparedEpsGrid struct {
	g      *gridState
	band   data.Band
	dims   int
	w0, w1 float64

	sStarts []int32
	sCells  []int32
}

// resolveCells records, for every S-tuple, the dense ids of the existing
// cells its band region intersects, in the exact (c0 asc, c1 asc) order the
// plain probe visits them, so the emission order is unchanged.
func (p *preparedEpsGrid) resolveCells(s *data.Relation) {
	ns := s.Len()
	p.sStarts = make([]int32, ns+1)
	p.sCells = make([]int32, 0, ns)
	for i := 0; i < ns; i++ {
		sk := s.Key(i)
		cl0 := int64(math.Floor((sk[0] - p.band.Low[0]) / p.w0))
		ch0 := int64(math.Floor((sk[0] + p.band.High[0]) / p.w0))
		cl1 := int64(math.Floor((sk[1] - p.band.Low[1]) / p.w1))
		ch1 := int64(math.Floor((sk[1] + p.band.High[1]) / p.w1))
		for c0 := cl0; c0 <= ch0; c0++ {
			for c1 := cl1; c1 <= ch1; c1++ {
				if id := p.g.lookup(c0, c1); id >= 0 {
					p.sCells = append(p.sCells, id)
				}
			}
		}
		p.sStarts[i+1] = int32(len(p.sCells))
	}
}

func (p *preparedEpsGrid) Probe(s *data.Relation, emit Emit) int64 {
	return p.ProbeRange(s, 0, s.Len(), emit)
}

// ProbeRange implements RangeProber: the probe restricted to S indices
// [lo, hi).
func (p *preparedEpsGrid) ProbeRange(s *data.Relation, lo, hi int, emit Emit) int64 {
	ns := s.Len()
	if ns == 0 || lo >= hi {
		return 0
	}
	if len(p.sStarts) != ns+1 {
		// Not the S side this structure was prepared for; fall back to the
		// hash-lookup probe, which only assumes the T side.
		return p.g.probeRange(s, p.dims, p.band, p.w0, p.w1, lo, hi, emit)
	}
	g, dims, band := p.g, p.dims, p.band
	var count int64
	for i := lo; i < hi; i++ {
		sk := s.Key(i)
		for ci := p.sStarts[i]; ci < p.sStarts[i+1]; ci++ {
			id := p.sCells[ci]
			for pos := g.starts[id]; pos < g.starts[id+1]; pos++ {
				base := int(pos) * dims
				row := g.rows[base : base+dims]
				if matchesFrom(band, sk, row, 0) {
					count++
					if emit != nil {
						emit(i, int(g.perm[pos]), sk, row)
					}
				}
			}
		}
	}
	return count
}

// preparedSortProbe is the cached form of SortProbe: T's dim-0-sorted rows,
// binary-searched per S-tuple.
type preparedSortProbe struct {
	t    *sortedRel
	n    int
	dims int
	band data.Band
}

func (p *preparedSortProbe) Probe(s *data.Relation, emit Emit) int64 {
	return p.ProbeRange(s, 0, s.Len(), emit)
}

// ProbeRange implements RangeProber: the probe restricted to S indices
// [lo, hi).
func (p *preparedSortProbe) ProbeRange(s *data.Relation, lo, hi int, emit Emit) int64 {
	if s.Len() == 0 || lo >= hi {
		return 0
	}
	return probeSortedTRange(p.t.rows, p.t.perm, p.n, p.dims, s, lo, hi, p.band, emit)
}

// preparedGridSortScan caches the dim-0-sorted rows of both sides: T's, and —
// because the S side of a prepared partition is pinned too — S's, so that
// concurrent range probes share one read-only sorted copy instead of each
// re-sorting S. When Probe is handed a different S than the one prepared for
// (same fallback contract as preparedEpsGrid), the S side is sorted per call
// with pooled scratch (retained partitions are presorted at seal time and
// re-presorted when a delta append dirties them, so that sort finds sorted
// input and is linear).
type preparedGridSortScan struct {
	s    *sortedRel
	ns   int
	t    *sortedRel
	nt   int
	dims int
	band data.Band
}

func (p *preparedGridSortScan) Probe(s *data.Relation, emit Emit) int64 {
	return p.ProbeRange(s, 0, s.Len(), emit)
}

// ProbeRange implements RangeProber: the sliding-window scan restricted to
// dim-0-sorted S positions [lo, hi), with the window start recovered by
// binary search (see scanSortedWindowRange).
func (p *preparedGridSortScan) ProbeRange(s *data.Relation, lo, hi int, emit Emit) int64 {
	ns := s.Len()
	if ns == 0 || lo >= hi {
		return 0
	}
	if ns == p.ns {
		return scanSortedWindowRange(p.s.rows, p.s.perm, p.t.rows, p.t.perm, p.nt, p.dims, lo, hi, p.band, emit)
	}
	// Not the S side this structure was prepared for; sort it per call.
	sc := scratchPool.Get().(*scratch)
	sc.s.build(sc, s)
	count := scanSortedWindowRange(sc.s.rows, sc.s.perm, p.t.rows, p.t.perm, p.nt, p.dims, lo, hi, p.band, emit)
	scratchPool.Put(sc)
	return count
}
