package localjoin

import (
	"sort"

	"bandjoin/internal/data"
)

// BaselineSortProbe is the original SortProbe implementation: it allocates a
// fresh []int index slice and a parallel key slice on every call and sorts
// through a sort.Slice closure comparator. It is retained as a correctness
// oracle and as the reference point for the allocation-free SortProbe in the
// pipeline benchmark (internal/bench).
type BaselineSortProbe struct{}

// Name implements Algorithm.
func (BaselineSortProbe) Name() string { return "baseline-sort-probe" }

// Join implements Algorithm.
func (BaselineSortProbe) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	n := t.Len()
	if n == 0 || s.Len() == 0 {
		return 0
	}
	// Sort indices of T by dimension 0.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.Key(idx[a])[0] < t.Key(idx[b])[0] })
	vals := make([]float64, n)
	for pos, j := range idx {
		vals[pos] = t.Key(j)[0]
	}

	var count int64
	for i := 0; i < s.Len(); i++ {
		sk := s.Key(i)
		lo := sk[0] - band.Low[0]
		hi := sk[0] + band.High[0]
		start := sort.SearchFloat64s(vals, lo)
		for pos := start; pos < n && vals[pos] <= hi; pos++ {
			j := idx[pos]
			tk := t.Key(j)
			if matchesFrom(band, sk, tk, 1) {
				count++
				if emit != nil {
					emit(i, j, sk, tk)
				}
			}
		}
	}
	return count
}

// BaselineGridSortScan is the original GridSortScan implementation with
// per-call index allocations and closure-comparator sorts, retained for the
// same reasons as BaselineSortProbe.
type BaselineGridSortScan struct{}

// Name implements Algorithm.
func (BaselineGridSortScan) Name() string { return "baseline-grid-sort-scan" }

// Join implements Algorithm.
func (BaselineGridSortScan) Join(s, t *data.Relation, band data.Band, emit Emit) int64 {
	ns, nt := s.Len(), t.Len()
	if ns == 0 || nt == 0 {
		return 0
	}
	sIdx := make([]int, ns)
	for i := range sIdx {
		sIdx[i] = i
	}
	sort.Slice(sIdx, func(a, b int) bool { return s.Key(sIdx[a])[0] < s.Key(sIdx[b])[0] })
	tIdx := make([]int, nt)
	for i := range tIdx {
		tIdx[i] = i
	}
	sort.Slice(tIdx, func(a, b int) bool { return t.Key(tIdx[a])[0] < t.Key(tIdx[b])[0] })

	var count int64
	winLo := 0
	for _, si := range sIdx {
		sk := s.Key(si)
		lo := sk[0] - band.Low[0]
		hi := sk[0] + band.High[0]
		for winLo < nt && t.Key(tIdx[winLo])[0] < lo {
			winLo++
		}
		for pos := winLo; pos < nt; pos++ {
			tj := tIdx[pos]
			tk := t.Key(tj)
			if tk[0] > hi {
				break
			}
			if matchesFrom(band, sk, tk, 1) {
				count++
				if emit != nil {
					emit(si, tj, sk, tk)
				}
			}
		}
	}
	return count
}
