// Package costmodel implements the abstract running-time model of Li et al.
// used by the paper (Section 2): join time is estimated as a (piecewise)
// linear function M(I, Im, Om) = β0 + β1·I + β2·Im + β3·Om of the total input
// (including duplicates) I, and the input Im and output Om assigned to the
// most loaded worker. The β coefficients are obtained by linear regression on
// a micro-benchmark of local joins, mirroring the paper's offline profiling of
// the cluster.
package costmodel

import (
	"fmt"
	"math"
)

// Model is the linear running-time model.
//
// The same coefficients serve two purposes in the paper and here:
//
//   - predicting join time of a candidate partitioning (applied termination
//     condition, Grid* tuning, experiment reporting), and
//   - weighing input versus output when computing per-partition load
//     l_p = β2·I_p + β3·O_p for RecPart's variance-based split scoring.
type Model struct {
	Beta0 float64 // fixed overhead (seconds)
	Beta1 float64 // per shuffled input tuple (seconds)
	Beta2 float64 // per input tuple on the most loaded worker (seconds)
	Beta3 float64 // per output tuple on the most loaded worker (seconds)
}

// Default returns a model with the β2/β3 ≈ 4 ratio the paper measured on its
// Amazon EMR cluster and a small per-shuffled-tuple cost. It is used when no
// calibration has been run; the absolute scale is arbitrary but the ratios
// match the paper's cluster.
func Default() Model {
	return Model{
		Beta0: 0,
		Beta1: 25e-9,  // 25 ns per shuffled tuple
		Beta2: 200e-9, // 200 ns per local input tuple
		Beta3: 50e-9,  // 50 ns per local output tuple (β2/β3 = 4)
	}
}

// Predict estimates join time (in seconds) for total input i, max-worker
// input im, and max-worker output om.
func (m Model) Predict(i, im, om float64) float64 {
	return m.Beta0 + m.Beta1*i + m.Beta2*im + m.Beta3*om
}

// Load returns the load β2·i + β3·o induced by i input tuples and o output
// tuples on one worker, the quantity RecPart balances (Section 2).
func (m Model) Load(i, o float64) float64 {
	return m.Beta2*i + m.Beta3*o
}

// LowerBoundLoad returns L0 = (β2·(|S|+|T|) + β3·|S ⋈ T|)/w, the Lemma 1
// lower bound on max worker load.
func (m Model) LowerBoundLoad(inputSize, outputSize float64, workers int) float64 {
	if workers <= 0 {
		return math.Inf(1)
	}
	return (m.Beta2*inputSize + m.Beta3*outputSize) / float64(workers)
}

// Validate reports whether the model is usable: finite coefficients and a
// positive input weight (β2), without which load balancing is meaningless.
func (m Model) Validate() error {
	for _, v := range []float64{m.Beta0, m.Beta1, m.Beta2, m.Beta3} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("costmodel: coefficient is not finite: %+v", m)
		}
	}
	if m.Beta2 <= 0 {
		return fmt.Errorf("costmodel: β2 must be positive, got %g", m.Beta2)
	}
	if m.Beta3 < 0 || m.Beta1 < 0 {
		return fmt.Errorf("costmodel: β1 and β3 must be non-negative: %+v", m)
	}
	return nil
}

// WithInputOutputRatio returns a copy of the model with β2 scaled so that
// β2/β3 equals the given ratio, keeping β3 fixed. Table 8 / Table 13 of the
// paper sweep this ratio to study how the relative cost of input versus
// output (i.e. the local join algorithm) changes the chosen partitioning.
func (m Model) WithInputOutputRatio(ratio float64) Model {
	out := m
	out.Beta2 = out.Beta3 * ratio
	return out
}

// WithShuffleWeight returns a copy of the model with β1 set so that
// β2/β1 equals the given ratio (Table 8's x-axis is β2/β1). A high ratio
// models fast networks and slow local processing.
func (m Model) WithShuffleWeight(beta2OverBeta1 float64) Model {
	out := m
	if beta2OverBeta1 <= 0 {
		out.Beta1 = 0
		return out
	}
	out.Beta1 = out.Beta2 / beta2OverBeta1
	return out
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("M(I,Im,Om) = %.3g + %.3g·I + %.3g·Im + %.3g·Om", m.Beta0, m.Beta1, m.Beta2, m.Beta3)
}

// ---------------------------------------------------------------------------
// Piecewise model

// Piecewise is a piecewise-linear running-time model: the segment whose input
// range contains the total input I is used for prediction. The paper describes
// M as piecewise linear because per-tuple costs grow once inputs exceed memory.
type Piecewise struct {
	// Breaks are the upper input bounds of each segment, ascending; the last
	// segment is unbounded.
	Breaks   []float64
	Segments []Model
}

// NewPiecewise builds a piecewise model. len(segments) must be
// len(breaks) + 1.
func NewPiecewise(breaks []float64, segments []Model) (*Piecewise, error) {
	if len(segments) != len(breaks)+1 {
		return nil, fmt.Errorf("costmodel: piecewise model needs %d segments for %d breaks, got %d",
			len(breaks)+1, len(breaks), len(segments))
	}
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			return nil, fmt.Errorf("costmodel: piecewise breaks must be ascending")
		}
	}
	return &Piecewise{Breaks: breaks, Segments: segments}, nil
}

// Segment returns the model applicable to total input i.
func (p *Piecewise) Segment(i float64) Model {
	for k, b := range p.Breaks {
		if i <= b {
			return p.Segments[k]
		}
	}
	return p.Segments[len(p.Segments)-1]
}

// Predict estimates join time using the segment selected by total input.
func (p *Piecewise) Predict(i, im, om float64) float64 {
	return p.Segment(i).Predict(i, im, om)
}
