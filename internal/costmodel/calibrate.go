package costmodel

import (
	"fmt"
	"math/rand"
	"time"

	"bandjoin/internal/data"
	"bandjoin/internal/localjoin"
)

// CalibrationOptions configures the micro-benchmark that determines the β
// coefficients (the paper runs a benchmark of 100 queries offline, once per
// cluster).
type CalibrationOptions struct {
	// Queries is the number of training joins to run.
	Queries int
	// MaxInput is the largest per-side input size of a training join.
	MaxInput int
	// Algorithm is the local join algorithm being profiled.
	Algorithm localjoin.Algorithm
	// Seed makes calibration deterministic.
	Seed int64
}

// DefaultCalibration returns a calibration small enough to finish in well
// under a second while still spanning an order of magnitude of input and
// output sizes.
func DefaultCalibration() CalibrationOptions {
	return CalibrationOptions{Queries: 40, MaxInput: 20000, Algorithm: localjoin.Default(), Seed: 7}
}

// CalibrationResult is the outcome of a calibration run.
type CalibrationResult struct {
	Model    Model
	RSquared float64
	// Observations holds one row per training query: I, Im, Om, seconds.
	Observations [][4]float64
}

// Calibrate runs the micro-benchmark and fits the model coefficients.
//
// Each training query joins two uniform relations whose size and band width
// are varied so that input-dominated and output-dominated local joins both
// appear in the training set; the measured wall time is regressed on
// (1, I, Im, Om). Since a single-worker micro-benchmark has I = Im (nothing is
// shuffled), β1 cannot be identified from it; it is set from the measured
// per-tuple partitioning cost of streaming the input once, mirroring the
// paper's observation that shuffle cost is proportional to total input.
func Calibrate(opts CalibrationOptions) (*CalibrationResult, error) {
	if opts.Queries <= 0 {
		opts = DefaultCalibration()
	}
	if opts.Algorithm == nil {
		opts.Algorithm = localjoin.Default()
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var (
		features [][]float64
		times    []float64
		obs      [][4]float64
	)
	for q := 0; q < opts.Queries; q++ {
		// Vary input size geometrically and band width to vary selectivity.
		frac := 0.1 + 0.9*float64(q)/float64(opts.Queries)
		n := int(float64(opts.MaxInput) * frac)
		if n < 100 {
			n = 100
		}
		eps := 0.5 * rng.Float64() / float64(n) * 1e4
		gen := data.NewUniform([]float64{0}, []float64{1e4})
		s := gen.Generate("calS", n, rng)
		t := gen.Generate("calT", n, rng)
		band := data.Symmetric(eps)

		start := time.Now()
		out := opts.Algorithm.Join(s, t, band, nil)
		elapsed := time.Since(start).Seconds()

		im := float64(s.Len() + t.Len())
		features = append(features, []float64{1, im, float64(out)})
		times = append(times, elapsed)
		obs = append(obs, [4]float64{im, im, float64(out), elapsed})
	}

	coef, err := NonNegativeLeastSquares(features, times)
	if err != nil {
		return nil, fmt.Errorf("costmodel: calibration regression failed: %w", err)
	}
	model := Model{Beta0: coef[0], Beta2: coef[1], Beta3: coef[2]}
	// β1: cost of routing one tuple through the shuffle, measured as a pure
	// streaming pass over the largest training input.
	model.Beta1 = measureStreamCost(opts.MaxInput, rng)
	if model.Beta2 <= 0 {
		// Degenerate fit (e.g. timer resolution too coarse); fall back to the
		// default ratios scaled to the observed magnitude.
		model = Default()
	}

	pred := make([]float64, len(times))
	for i, f := range features {
		pred[i] = model.Beta0 + model.Beta2*f[1] + model.Beta3*f[2]
	}
	return &CalibrationResult{Model: model, RSquared: RSquared(times, pred), Observations: obs}, nil
}

// measureStreamCost times one pass of copying n tuples into per-partition
// buffers, the dominant per-tuple cost of the shuffle in the simulator.
func measureStreamCost(n int, rng *rand.Rand) float64 {
	if n < 1000 {
		n = 1000
	}
	gen := data.NewUniform([]float64{0}, []float64{1})
	r := gen.Generate("stream", n, rng)
	buckets := make([]*data.Relation, 16)
	for i := range buckets {
		buckets[i] = data.NewRelation(fmt.Sprintf("b%d", i), 1)
	}
	start := time.Now()
	for i := 0; i < r.Len(); i++ {
		k := r.Key(i)
		buckets[i%len(buckets)].AppendKey(k)
	}
	elapsed := time.Since(start).Seconds()
	return elapsed / float64(n)
}
