package costmodel

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the regression design matrix is rank deficient
// and the coefficients cannot be determined.
var ErrSingular = errors.New("costmodel: singular design matrix")

// LeastSquares solves min_b ||X·b − y||² via the normal equations
// (XᵀX)·b = Xᵀy with Gaussian elimination and partial pivoting. X is given
// row-wise; every row must have the same number of features.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("costmodel: no observations")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("costmodel: %d feature rows but %d targets", len(x), len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("costmodel: empty feature rows")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("costmodel: row %d has %d features, want %d", i, len(row), p)
		}
	}

	// Build XᵀX (p×p) and Xᵀy (p).
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r, row := range x {
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[r]
			for j := 0; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	return solve(xtx, xty)
}

// NonNegativeLeastSquares solves the least-squares problem and clamps negative
// coefficients to zero, re-solving with those columns removed. The running
// time model's coefficients are physically non-negative (a tuple cannot have
// negative cost), and small benchmarks occasionally produce slightly negative
// estimates for near-collinear features; this keeps the fitted model valid.
func NonNegativeLeastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("costmodel: no observations")
	}
	p := len(x[0])
	active := make([]bool, p)
	for i := range active {
		active[i] = true
	}
	for iter := 0; iter <= p; iter++ {
		cols := make([]int, 0, p)
		for j := 0; j < p; j++ {
			if active[j] {
				cols = append(cols, j)
			}
		}
		if len(cols) == 0 {
			return make([]float64, p), nil
		}
		sub := make([][]float64, len(x))
		for i, row := range x {
			r := make([]float64, len(cols))
			for k, j := range cols {
				r[k] = row[j]
			}
			sub[i] = r
		}
		b, err := LeastSquares(sub, y)
		if err != nil {
			return nil, err
		}
		anyNegative := false
		full := make([]float64, p)
		for k, j := range cols {
			if b[k] < 0 {
				active[j] = false
				anyNegative = true
			} else {
				full[j] = b[k]
			}
		}
		if !anyNegative {
			return full, nil
		}
	}
	return nil, errors.New("costmodel: non-negative least squares did not converge")
}

// solve performs Gaussian elimination with partial pivoting on the square
// system a·x = b, modifying a and b in place.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// RSquared returns the coefficient of determination of predictions pred
// against observations y, a standard goodness-of-fit measure for the
// calibrated model.
func RSquared(y, pred []float64) float64 {
	if len(y) == 0 || len(y) != len(pred) {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - pred[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
