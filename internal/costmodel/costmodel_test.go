package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModelPredictAndLoad(t *testing.T) {
	m := Model{Beta0: 1, Beta1: 2, Beta2: 3, Beta3: 4}
	if got := m.Predict(10, 5, 2); got != 1+20+15+8 {
		t.Errorf("Predict = %g", got)
	}
	if got := m.Load(5, 2); got != 15+8 {
		t.Errorf("Load = %g", got)
	}
}

func TestLowerBoundLoad(t *testing.T) {
	m := Default()
	lb := m.LowerBoundLoad(3000, 900, 30)
	want := (m.Beta2*3000 + m.Beta3*900) / 30
	if math.Abs(lb-want) > 1e-15 {
		t.Errorf("LowerBoundLoad = %g, want %g", lb, want)
	}
	if !math.IsInf(m.LowerBoundLoad(1, 1, 0), 1) {
		t.Error("zero workers should give an infinite bound")
	}
}

func TestModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	if err := (Model{Beta2: -1}).Validate(); err == nil {
		t.Error("negative β2 accepted")
	}
	if err := (Model{Beta2: math.NaN()}).Validate(); err == nil {
		t.Error("NaN coefficient accepted")
	}
	if err := (Model{Beta2: 1, Beta3: -1}).Validate(); err == nil {
		t.Error("negative β3 accepted")
	}
}

func TestModelRatioHelpers(t *testing.T) {
	m := Default()
	m2 := m.WithInputOutputRatio(10)
	if math.Abs(m2.Beta2/m2.Beta3-10) > 1e-9 {
		t.Errorf("WithInputOutputRatio: β2/β3 = %g", m2.Beta2/m2.Beta3)
	}
	m3 := m.WithShuffleWeight(100)
	if math.Abs(m3.Beta2/m3.Beta1-100) > 1e-9 {
		t.Errorf("WithShuffleWeight: β2/β1 = %g", m3.Beta2/m3.Beta1)
	}
	m4 := m.WithShuffleWeight(0)
	if m4.Beta1 != 0 {
		t.Error("non-positive ratio should zero β1")
	}
	if m.String() == "" {
		t.Error("String() empty")
	}
}

func TestPiecewise(t *testing.T) {
	seg1 := Model{Beta2: 1}
	seg2 := Model{Beta2: 10}
	p, err := NewPiecewise([]float64{100}, []Model{seg1, seg2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Segment(50).Beta2 != 1 || p.Segment(150).Beta2 != 10 {
		t.Error("segment selection wrong")
	}
	if p.Predict(150, 10, 0) != 100 {
		t.Errorf("piecewise Predict = %g", p.Predict(150, 10, 0))
	}
	if _, err := NewPiecewise([]float64{1, 1}, []Model{seg1, seg1, seg2}); err == nil {
		t.Error("non-ascending breaks accepted")
	}
	if _, err := NewPiecewise([]float64{1}, []Model{seg1}); err == nil {
		t.Error("wrong segment count accepted")
	}
}

func TestLeastSquaresRecoversKnownCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	true3 := []float64{2.5, -1.0, 0.5}
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		row := []float64{1, rng.Float64() * 10, rng.Float64() * 5}
		x = append(x, row)
		y = append(y, true3[0]*row[0]+true3[1]*row[1]+true3[2]*row[2])
	}
	got, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range true3 {
		if math.Abs(got[i]-true3[i]) > 1e-6 {
			t.Errorf("coefficient %d = %g, want %g", i, got[i], true3[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	// Perfectly collinear columns are singular.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LeastSquares(x, []float64{1, 2, 3}); err == nil {
		t.Error("singular design matrix accepted")
	}
}

func TestNonNegativeLeastSquares(t *testing.T) {
	// The true relationship has a negative coefficient; NNLS must clamp it.
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 3*a-0.5*b)
	}
	got, err := NonNegativeLeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v < 0 {
			t.Errorf("coefficient %d = %g is negative", i, v)
		}
	}
	if got[0] < 1 {
		t.Errorf("dominant positive coefficient lost: %v", got)
	}
}

func TestRSquared(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if r := RSquared(y, y); r != 1 {
		t.Errorf("perfect fit R² = %g", r)
	}
	if r := RSquared(y, []float64{2.5, 2.5, 2.5, 2.5}); r > 1e-9 {
		t.Errorf("mean predictor R² = %g, want 0", r)
	}
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Error("empty input should give NaN")
	}
}

// TestPredictMonotonic is a property test: predictions never decrease when
// any of the inputs grows (all coefficients are non-negative).
func TestPredictMonotonic(t *testing.T) {
	m := Default()
	f := func(i, im, om, di, dim, dom float64) bool {
		i, im, om = math.Abs(i), math.Abs(im), math.Abs(om)
		di, dim, dom = math.Abs(di), math.Abs(dim), math.Abs(dom)
		return m.Predict(i+di, im+dim, om+dom) >= m.Predict(i, im, om)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateProducesUsableModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs timed joins")
	}
	opts := DefaultCalibration()
	opts.Queries = 12
	opts.MaxInput = 6000
	res, err := Calibrate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.Validate(); err != nil {
		t.Errorf("calibrated model invalid: %v", err)
	}
	if len(res.Observations) != 12 {
		t.Errorf("expected 12 observations, got %d", len(res.Observations))
	}
	if res.Model.Beta1 < 0 {
		t.Errorf("negative shuffle coefficient: %g", res.Model.Beta1)
	}
}

func TestCalibrateDefaultsOnZeroOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs timed joins")
	}
	res, err := Calibrate(CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Beta2 <= 0 {
		t.Errorf("calibration produced non-positive β2: %+v", res.Model)
	}
}
