package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"slices"
	"sync"
)

// expvarRegs is the process-wide set of registries published under the single
// expvar key "bandjoin". expvar.Publish panics on duplicate names, so the
// publication happens exactly once and later Handler calls only extend the
// set the published Func reads.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarRegs []*Registry
)

// PublishExpvar merges the registries into the process's expvar output (the
// "bandjoin" variable on /debug/vars). Safe to call repeatedly; registries
// already published are not duplicated.
func PublishExpvar(regs ...*Registry) {
	expvarMu.Lock()
	for _, r := range regs {
		if r != nil && !slices.Contains(expvarRegs, r) {
			expvarRegs = append(expvarRegs, r)
		}
	}
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("bandjoin", expvar.Func(func() any {
			expvarMu.Lock()
			regs := slices.Clone(expvarRegs)
			expvarMu.Unlock()
			out := make(map[string]any)
			for _, r := range regs {
				for k, v := range r.Snapshot() {
					out[k] = v
				}
			}
			return out
		}))
	})
}

// Handler returns an HTTP handler exposing the registries:
//
//	/metrics       — Prometheus text format (all given registries, in order)
//	/debug/vars    — expvar JSON (process-wide, including the registries)
//	/debug/pprof/* — net/http/pprof profiles
//
// The pprof handlers are registered on the returned mux explicitly, so
// serving this handler never requires (or pollutes) http.DefaultServeMux.
func Handler(regs ...*Registry) http.Handler {
	PublishExpvar(regs...)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r != nil {
				r.WritePrometheus(w)
			}
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for Handler(regs...) on addr in a background
// goroutine and returns the bound address (useful with ":0") and a shutdown
// function. It is what recpartd and cmd/bandjoin run behind -metrics-addr.
func Serve(addr string, regs ...*Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(regs...)}
	go srv.Serve(ln)
	return ln.Addr(), srv.Close, nil
}
