//go:build race

package obs

// raceEnabled reports that the race detector is active; its instrumentation
// can charge allocations to the measured function, so steady-state allocation
// tests skip themselves under -race (the concurrency tests are what -race is
// for here).
const raceEnabled = true
