package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets pins the bucket semantics: an observation lands in the
// tightest bucket whose upper bound covers it (`le` is inclusive), values
// above every bound land in +Inf, and sum/count track exactly.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99.9, 100, 1000, -3} {
		h.Observe(v)
	}
	bounds, cumulative := h.Buckets()
	if len(bounds) != 3 || len(cumulative) != 4 {
		t.Fatalf("got %d bounds, %d cumulative counts", len(bounds), len(cumulative))
	}
	// le=1: {0.5, 1, -3}; le=10: +{1.5, 10}; le=100: +{99.9, 100}; +Inf: +{1000}.
	want := []int64{3, 5, 7, 8}
	for i, w := range want {
		if cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cumulative[i], w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.5 + 10 + 99.9 + 100 + 1000 - 3
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram([]float64{100, 1, 10})
	h.Observe(5)
	bounds, cumulative := h.Buckets()
	if bounds[0] != 1 || bounds[1] != 10 || bounds[2] != 100 {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if cumulative[0] != 0 || cumulative[1] != 1 {
		t.Fatalf("observation landed in the wrong bucket: %v", cumulative)
	}
}

// TestPrometheusGolden pins the exact text exposition: HELP/TYPE blocks,
// label rendering, family ordering by name, series ordering by labels, and
// the cumulative histogram expansion.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_hits_total", "Cache hits by tier.", "tier", "plan").Add(3)
	r.Counter("test_hits_total", "Cache hits by tier.", "tier", "sample").Add(5)
	r.Gauge("test_inflight", "In-flight joins.").Set(2)
	r.GaugeFunc("test_bytes", "Resident bytes.", func() float64 { return 4096 })
	h := r.Histogram("test_latency_seconds", "Query latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_bytes Resident bytes.
# TYPE test_bytes gauge
test_bytes 4096
# HELP test_hits_total Cache hits by tier.
# TYPE test_hits_total counter
test_hits_total{tier="plan"} 3
test_hits_total{tier="sample"} 5
# HELP test_inflight In-flight joins.
# TYPE test_inflight gauge
test_inflight 2
# HELP test_latency_seconds Query latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 0.555
test_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc_total", "", "path", `a"b\c`+"\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label missing:\n%s", b.String())
	}
}

// TestRegistrationIdempotent pins that registering the same identity twice
// returns the same instrument (so wiring code need not dedupe).
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "", "k", "v")
	b := r.Counter("test_total", "", "k", "v")
	if a != b {
		t.Error("same identity returned distinct counters")
	}
	if c := r.Counter("test_total", "", "k", "w"); c == a {
		t.Error("distinct labels returned the same counter")
	}
	h1 := r.Histogram("test_h", "", []float64{1, 2})
	h2 := r.Histogram("test_h", "", []float64{5, 6, 7})
	if h1 != h2 {
		t.Error("same identity returned distinct histograms")
	}
}

// TestConcurrentIncrements hammers one counter, gauge, and histogram from
// many goroutines; run under -race it doubles as the data-race check for the
// whole hot path, and the totals pin that no update is lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "")
	g := r.Gauge("test_conc_gauge", "")
	h := r.Histogram("test_conc_seconds", "", LatencyBuckets())
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) * 0.0001)
				// Concurrent scrapes must be safe against concurrent updates.
				if j == 500 && i == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if g.Value() != goroutines*perG {
		t.Errorf("gauge = %d, want %d", g.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
}

// TestHotPathSteadyStateAllocs asserts the tentpole's hot-path constraint
// directly: updating counters, gauges, and histograms allocates nothing, so
// instrumented shuffle/join paths keep their zero-alloc steady state.
func TestHotPathSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation accounting")
	}
	r := NewRegistry()
	c := r.Counter("test_alloc_total", "")
	g := r.Gauge("test_alloc_gauge", "")
	h := r.Histogram("test_alloc_seconds", "", LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Errorf("Counter updates allocate %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(7); g.Add(-2) }); n != 0 {
		t.Errorf("Gauge updates allocate %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003); h.ObserveDuration(time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per run, want 0", n)
	}
}

// TestHTTPEndpoints drives the bundled handler: /metrics serves the
// Prometheus text, /debug/vars includes the published registries as JSON,
// and the pprof index answers.
func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_http_total", "HTTP test series.").Add(42)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "test_http_total 42") {
		t.Errorf("/metrics: code %d, body:\n%s", code, body)
	}
	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: code %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var published map[string]any
	if err := json.Unmarshal(vars["bandjoin"], &published); err != nil {
		t.Fatalf("bandjoin expvar missing or malformed: %v", err)
	}
	if published["test_http_total"] != float64(42) {
		t.Errorf("expvar test_http_total = %v, want 42", published["test_http_total"])
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}
