// Package obs is the repo's dependency-free observability kit: atomic
// counters, gauges, and fixed-bucket histograms grouped into registries, with
// Prometheus text-format and expvar exposition and an HTTP handler bundling
// /metrics, /debug/vars, and net/http/pprof.
//
// Design constraints, in order:
//
//  1. Hot-path updates (Counter.Inc/Add, Gauge.Set/Add, Histogram.Observe)
//     are single atomic operations — no locks, no allocation — so the
//     shuffle/join fast paths instrumented with them keep their zero-alloc
//     steady state.
//  2. No third-party dependencies: the exposition is the Prometheus text
//     format written by hand, which any scraper (or curl) understands.
//  3. Multiple registries coexist in one process (every Engine, Coordinator,
//     and Worker owns one), so tests spinning up many components never fight
//     over global metric names; an HTTP endpoint serves whichever registries
//     it was given.
//
// Instruments are identified by (family name, label pairs). Registering the
// same identity twice returns the existing instrument, so wiring code can be
// written idempotently.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is usable,
// but counters are normally created through Registry.Counter so they are
// scrapeable.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error; it is not checked on the hot
// path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// series is one (family, label set) instrument.
type series struct {
	labels  string // pre-rendered `{k="v",...}`, or "" for no labels
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups the series sharing one metric name (one HELP/TYPE block).
type family struct {
	name    string
	help    string
	kind    metricKind
	series  []*series
	byLabel map[string]*series
}

// Registry holds a set of metric families. Instrument creation and exposition
// take the registry lock; instrument updates never do.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns (creating if needed) the named family, enforcing that one
// name never spans two metric kinds.
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabel: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	return f
}

// seriesFor returns (creating if needed) the family's series for the labels.
func (f *family) seriesFor(labelPairs []string) (*series, bool) {
	ls := renderLabels(labelPairs)
	if s, ok := f.byLabel[ls]; ok {
		return s, true
	}
	s := &series{labels: ls}
	f.byLabel[ls] = s
	f.series = append(f.series, s)
	return s, false
}

// renderLabels renders alternating key/value pairs as `{k="v",...}` with
// Prometheus escaping; no pairs renders as "".
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", pairs))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Counter registers (or fetches) a counter. labelPairs is an alternating
// key/value list, e.g. Counter("hits_total", "...", "tier", "plan").
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.familyFor(name, help, counterKind).seriesFor(labelPairs)
	if !existed {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.familyFor(name, help, gaugeKind).seriesFor(labelPairs)
	if !existed {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time by fn —
// the fit for occupancy numbers the owning component already tracks (cache
// entries, resident bytes, pool in-flight). fn must be safe to call from any
// goroutine. Re-registering the same identity replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.familyFor(name, help, gaugeFuncKind).seriesFor(labelPairs)
	s.fn = fn
}

// Histogram registers (or fetches) a fixed-bucket histogram. bounds are the
// ascending upper bucket bounds (an implicit +Inf bucket is added); on a
// re-registration the existing histogram is returned and bounds are ignored.
func (r *Registry) Histogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.familyFor(name, help, histogramKind).seriesFor(labelPairs)
	if !existed {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// sortedFamilies snapshots the family list ordered by name. Series within a
// family are ordered by label string so exposition is deterministic.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })
	for _, f := range fams {
		sort.Slice(f.series, func(a, b int) bool { return f.series[a].labels < f.series[b].labels })
	}
	return fams
}
