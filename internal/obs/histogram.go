package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram: counts per upper bound plus a +Inf
// bucket, a running sum, and a total count. Observe is lock-free and
// allocation-free (binary search over the bounds plus three atomic updates),
// so histograms can sit on per-partition join paths.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; immutable after creation
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// Histograms meant to be scraped should be created through
// Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// The first bound >= v is the tightest bucket whose `le` covers v; values
	// above every bound land in the trailing +Inf bucket.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus convention
// for *_seconds histograms).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each (the
// Prometheus `le` semantics); the final entry of counts is the +Inf bucket
// and equals Count().
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	cumulative = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return h.bounds, cumulative
}

// LatencyBuckets returns the default upper bounds (seconds) for latency
// histograms: 100µs to 60s, roughly logarithmic. Covers everything from a
// warm plan-cache hit (~35µs, below the first bound) to a multi-second cold
// shuffle.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// ByteBuckets returns the default upper bounds for byte-size histograms:
// 1KiB to 1GiB in powers of four.
func ByteBuckets() []float64 {
	return []float64{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
	}
}
