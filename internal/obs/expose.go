package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus writes the registry's metrics in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE block per family, series
// sorted by label set, histograms expanded into cumulative _bucket/_sum/_count
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case counterKind:
				writeIntSample(bw, f.name, "", s.labels, s.counter.Value())
			case gaugeKind:
				writeIntSample(bw, f.name, "", s.labels, s.gauge.Value())
			case gaugeFuncKind:
				writeFloatSample(bw, f.name, "", s.labels, s.fn())
			case histogramKind:
				bounds, cumulative := s.hist.Buckets()
				for i, b := range bounds {
					writeIntSample(bw, f.name, "_bucket", withLE(s.labels, formatFloat(b)), cumulative[i])
				}
				writeIntSample(bw, f.name, "_bucket", withLE(s.labels, "+Inf"), cumulative[len(bounds)])
				writeFloatSample(bw, f.name, "_sum", s.labels, s.hist.Sum())
				writeIntSample(bw, f.name, "_count", s.labels, s.hist.Count())
			}
		}
	}
	return bw.Flush()
}

func writeIntSample(bw *bufio.Writer, name, suffix, labels string, v int64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(v, 10))
	bw.WriteByte('\n')
}

func writeFloatSample(bw *bufio.Writer, name, suffix, labels string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLE merges an `le` label into an already-rendered label string.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// Snapshot returns the registry's current values as a flat map keyed by
// series name (with rendered labels), suitable for expvar publication:
// counters and gauges map to numbers, histograms to {count, sum, buckets}.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			key := f.name + s.labels
			switch f.kind {
			case counterKind:
				out[key] = s.counter.Value()
			case gaugeKind:
				out[key] = s.gauge.Value()
			case gaugeFuncKind:
				out[key] = s.fn()
			case histogramKind:
				bounds, cumulative := s.hist.Buckets()
				buckets := make(map[string]int64, len(cumulative))
				for i, b := range bounds {
					buckets[formatFloat(b)] = cumulative[i]
				}
				buckets["+Inf"] = cumulative[len(bounds)]
				out[key] = map[string]any{
					"count":   s.hist.Count(),
					"sum":     s.hist.Sum(),
					"buckets": buckets,
				}
			}
		}
	}
	return out
}
