package iejoin

import (
	"testing"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

func testContext(t *testing.T, workers int, band data.Band, s, tt *data.Relation) *partition.Context {
	t.Helper()
	smp, err := sample.Draw(s, tt, band, sample.Options{InputSampleSize: 800, OutputSampleSize: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &partition.Context{Band: band, Workers: workers, Sample: smp, Model: costmodel.Default(), Seed: 3}
}

func TestPlanDefinitionOne(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 2500, 5)
	band := data.Symmetric(0.1, 0.1)
	ctx := testContext(t, 8, band, s, tt)
	plan, err := New().Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumPartitions() < 1 {
		t.Fatal("no work units")
	}
	checked := 0
	for i := 0; i < s.Len(); i += 13 {
		for j := 0; j < tt.Len(); j += 17 {
			sParts := plan.AssignS(int64(i), s.Key(i), nil)
			tParts := plan.AssignT(int64(j), tt.Key(j), nil)
			if len(sParts) == 0 || len(tParts) == 0 {
				t.Fatal("a tuple was assigned nowhere")
			}
			common := 0
			for _, a := range sParts {
				for _, b := range tParts {
					if a == b {
						common++
					}
				}
			}
			if band.Matches(s.Key(i), tt.Key(j)) {
				checked++
				if common != 1 {
					t.Fatalf("matching pair in %d work units, want 1", common)
				}
			} else if common > 1 {
				t.Fatalf("non-matching pair shares %d work units", common)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no matching pairs checked")
	}
}

func TestBlockSizeControlsGranularity(t *testing.T) {
	s, tt := data.ParetoPair(1, 1.5, 4000, 7)
	band := data.Symmetric(0.05)
	small := NewWithBlockSize(200)
	large := NewWithBlockSize(2000)
	ctx1 := testContext(t, 8, band, s, tt)
	p1, err := small.Plan(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := testContext(t, 8, band, s, tt)
	p2, err := large.Plan(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.(*Plan).Blocks() <= p2.(*Plan).Blocks() {
		t.Errorf("smaller sizePerBlock must create more blocks: %d vs %d",
			p1.(*Plan).Blocks(), p2.(*Plan).Blocks())
	}
}

func TestDefaultBlockSize(t *testing.T) {
	s, tt := data.ParetoPair(1, 1.0, 3000, 9)
	band := data.Symmetric(0.05)
	ctx := testContext(t, 6, band, s, tt)
	plan, err := New().Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	blocks := plan.(*Plan).Blocks()
	if blocks < 2 {
		t.Errorf("default block size produced only %d blocks", blocks)
	}
}

func TestBoundaryValueLandsInUpperBlock(t *testing.T) {
	p := newPlan([]float64{10, 20}, 0, 0)
	// A pair of identical boundary values must meet in exactly one work unit
	// (the unit of the upper block joined with itself); block adjacency makes
	// the per-side assignment conservative but never double-covers a pair.
	sParts := p.AssignS(1, []float64{10}, nil)
	tParts := p.AssignT(1, []float64{10}, nil)
	common := 0
	for _, a := range sParts {
		for _, b := range tParts {
			if a == b {
				common++
			}
		}
	}
	if common != 1 {
		t.Errorf("boundary pair meets in %d work units, want 1 (S units %v, T units %v)", common, sParts, tParts)
	}
	// A value just below the boundary belongs to the lower block and is
	// assigned to a different set of work units.
	below := p.AssignS(1, []float64{9.999}, nil)
	same := len(below) == len(sParts)
	if same {
		for i := range below {
			if below[i] != sParts[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("value below the boundary got the same work units as the boundary value")
	}
}

func TestPlanRejectsInvalidContext(t *testing.T) {
	if _, err := New().Plan(&partition.Context{}); err == nil {
		t.Error("invalid context accepted")
	}
	if New().Name() != "IEJoin" {
		t.Error("name wrong")
	}
}
