// Package iejoin implements the distributed partitioning used by IEJoin
// (Khayyat et al., VLDBJ 2017) as evaluated in the paper's Section 6.6 and
// Appendix A.1: both inputs are range-partitioned on the first join attribute
// into blocks of roughly sizePerBlock tuples using approximate quantiles, and
// every pair of joinable blocks (blocks whose ranges are within band width of
// each other) becomes one unit of local work. Blocks that participate in
// several joinable pairs are duplicated, which is the source of its higher
// input duplication compared to RecPart.
package iejoin

import (
	"fmt"
	"math"
	"sort"

	"bandjoin/internal/partition"
)

// IEJoin is the distributed IEJoin partitioner. SizePerBlock is the paper's
// key meta-parameter: the target number of tuples per range block. Zero
// selects (|S|+|T|)/(4·w).
type IEJoin struct {
	SizePerBlock int
}

// New returns the partitioner with automatic block size.
func New() *IEJoin { return &IEJoin{} }

// NewWithBlockSize returns the partitioner with the given sizePerBlock.
func NewWithBlockSize(size int) *IEJoin { return &IEJoin{SizePerBlock: size} }

// Name implements partition.Partitioner.
func (*IEJoin) Name() string { return "IEJoin" }

// Plan implements partition.Partitioner.
func (ie *IEJoin) Plan(ctx *partition.Context) (partition.Plan, error) {
	if err := ctx.Validate(); err != nil {
		return nil, fmt.Errorf("iejoin: invalid context: %w", err)
	}
	size := ie.SizePerBlock
	total := ctx.Sample.TotalS + ctx.Sample.TotalT
	if size <= 0 {
		size = total / (4 * ctx.Workers)
		if size < 1 {
			size = 1
		}
	}
	blocks := total / size
	if blocks < 1 {
		blocks = 1
	}

	// Quantile boundaries of the first join attribute over both samples.
	vals := make([]float64, 0, ctx.Sample.S.Len()+ctx.Sample.T.Len())
	for i := 0; i < ctx.Sample.S.Len(); i++ {
		vals = append(vals, ctx.Sample.S.Key(i)[0])
	}
	for i := 0; i < ctx.Sample.T.Len(); i++ {
		vals = append(vals, ctx.Sample.T.Key(i)[0])
	}
	sort.Float64s(vals)
	bounds := make([]float64, 0, blocks-1)
	for q := 1; q < blocks; q++ {
		pos := q * len(vals) / blocks
		if pos >= len(vals) {
			pos = len(vals) - 1
		}
		v := vals[pos]
		if len(bounds) > 0 && v <= bounds[len(bounds)-1] {
			continue
		}
		bounds = append(bounds, v)
	}
	return newPlan(bounds, ctx.Band.Low[0], ctx.Band.High[0]), nil
}

// Plan routes every S-tuple to all work units whose S-block is the tuple's
// block, and every T-tuple to all units with its T-block.
type Plan struct {
	bounds []float64
	units  [][2]int // (sBlock, tBlock), one partition per joinable block pair
	sUnits [][]int  // S-block -> unit indices
	tUnits [][]int  // T-block -> unit indices
}

func newPlan(bounds []float64, low, high float64) *Plan {
	nBlocks := len(bounds) + 1
	p := &Plan{
		bounds: bounds,
		sUnits: make([][]int, nBlocks),
		tUnits: make([][]int, nBlocks),
	}
	// Block i covers A1 values in [bounds[i-1], bounds[i]). Blocks (i, j) are
	// joinable when some s in block i and t in block j can satisfy
	// s−Low ≤ t ≤ s+High.
	lo := func(b int) float64 {
		if b == 0 {
			return math.Inf(-1)
		}
		return bounds[b-1]
	}
	hi := func(b int) float64 {
		if b == nBlocks-1 {
			return math.Inf(1)
		}
		return bounds[b]
	}
	for i := 0; i < nBlocks; i++ {
		for j := 0; j < nBlocks; j++ {
			if lo(j) <= hi(i)+high && hi(j) >= lo(i)-low {
				unit := len(p.units)
				p.units = append(p.units, [2]int{i, j})
				p.sUnits[i] = append(p.sUnits[i], unit)
				p.tUnits[j] = append(p.tUnits[j], unit)
			}
		}
	}
	return p
}

// NumPartitions implements partition.Plan.
func (p *Plan) NumPartitions() int { return len(p.units) }

// Blocks returns the number of range blocks per input.
func (p *Plan) Blocks() int { return len(p.bounds) + 1 }

// AssignS implements partition.Plan.
func (p *Plan) AssignS(_ int64, key []float64, dst []int) []int {
	b := sort.SearchFloat64s(p.bounds, key[0])
	if b < len(p.bounds) && p.bounds[b] == key[0] {
		b++ // boundary values belong to the upper block
	}
	if b >= len(p.sUnits) {
		b = len(p.sUnits) - 1
	}
	return append(dst, p.sUnits[b]...)
}

// AssignT implements partition.Plan.
func (p *Plan) AssignT(_ int64, key []float64, dst []int) []int {
	b := sort.SearchFloat64s(p.bounds, key[0])
	if b < len(p.bounds) && p.bounds[b] == key[0] {
		b++
	}
	if b >= len(p.tUnits) {
		b = len(p.tUnits) - 1
	}
	return append(dst, p.tUnits[b]...)
}
