package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"bandjoin"
	"bandjoin/internal/data"
)

// EngineConfig scales the engine-throughput benchmark: the same query served
// three ways on the RPC cluster plane — cold (one-shot path: sample +
// optimize + shuffle + join per query), warm-plan (cached sample and plan,
// reshuffled), and warm-partitions (cached everything; the shuffled
// partitions are retained on the workers and the query moves zero shuffle
// bytes).
type EngineConfig struct {
	// Tuples is the per-relation input size.
	Tuples int
	// Dims is the number of join attributes.
	Dims int
	// Eps is the symmetric per-dimension band width.
	Eps float64
	// Workers is the number of in-process RPC workers.
	Workers int
	// ChunkSize is the number of tuples per Load RPC.
	ChunkSize int
	// Window is the streaming plane's per-worker in-flight RPC bound.
	Window int
	// Rounds measures each tier this many times and keeps the fastest.
	Rounds int
	// Seed drives data generation and planning.
	Seed int64
}

// DefaultEngineConfig mirrors the cluster benchmark's acceptance workload (8D
// near-duplicate self-match, shuffle-dominated) so the engine's tiers are
// directly comparable with the data-plane numbers in BENCH_cluster.json.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Tuples:    500_000,
		Dims:      8,
		Eps:       0.003,
		Workers:   2,
		ChunkSize: 4096,
		Window:    4,
		Rounds:    3,
		Seed:      1,
	}
}

// EngineMeasurement is the timing of one serving tier.
type EngineMeasurement struct {
	// Tier is "cold", "warm_plan", or "warm_partitions".
	Tier string `json:"tier"`
	// WallSeconds is the fastest end-to-end query time over the rounds;
	// the phase columns belong to that round. Cold includes sampling and
	// optimization; the warm tiers serve both from the engine's caches.
	WallSeconds float64 `json:"wall_seconds"`
	// OptimizationSeconds is the query's actual planning cost: the cold tier
	// pays the partitioner's optimization, the warm tiers report the
	// (near-zero) plan-cache lookup — not the cached plan's stored cost.
	OptimizationSeconds float64 `json:"optimization_seconds"`
	ShuffleSeconds      float64 `json:"shuffle_seconds"`
	JoinSeconds         float64 `json:"join_seconds"`
	ShuffleBytes        int64   `json:"shuffle_bytes"`
	ShuffleRPCs         int64   `json:"shuffle_rpcs"`
	QueriesPerSec       float64 `json:"queries_per_sec"`
}

// EngineReport is the machine-readable benchmark artifact
// (BENCH_engine.json).
type EngineReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	Tuples      int     `json:"tuples_per_relation"`
	Dims        int     `json:"dims"`
	Eps         float64 `json:"band_width"`
	Workers     int     `json:"workers"`
	ChunkSize   int     `json:"chunk_size"`
	Window      int     `json:"window"`
	Partitioner string  `json:"partitioner"`
	TotalInput  int64   `json:"total_input"`
	Output      int64   `json:"output_pairs"`

	Cold           EngineMeasurement `json:"cold"`
	WarmPlan       EngineMeasurement `json:"warm_plan"`
	WarmPartitions EngineMeasurement `json:"warm_partitions"`

	// Speedups are cold / warm wall-time ratios.
	SpeedupWarmPlan       float64 `json:"speedup_warm_plan"`
	SpeedupWarmPartitions float64 `json:"speedup_warm_partitions"`

	// PairsChecked is the number of result pairs compared bit-for-bit between
	// a cold one-shot run and a warm-partition engine run; PairsIdentical
	// records that they matched (the benchmark fails otherwise).
	PairsChecked   int  `json:"pairs_checked"`
	PairsIdentical bool `json:"pairs_identical"`
}

// engineWorkload generates the benchmark's near-duplicate self-match pair
// (each T tuple within the band of its S counterpart), shared with the
// cluster data-plane benchmark.
func engineWorkload(tuples, dims int, eps float64, seed int64) (*data.Relation, *data.Relation) {
	return selfMatchPair(tuples, dims, eps, seed, -1)
}

// RunEngine executes the engine-throughput benchmark over in-process RPC
// workers and returns the report.
func RunEngine(cfg EngineConfig) (*EngineReport, error) {
	if cfg.Tuples <= 0 || cfg.Dims <= 0 {
		return nil, fmt.Errorf("bench: invalid engine config %+v", cfg)
	}
	if cfg.Workers < 2 {
		cfg.Workers = 2
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	s, t := engineWorkload(cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Seed)
	band := data.Uniform(cfg.Dims, cfg.Eps)
	opts := bandjoin.Options{
		Partitioner:      bandjoin.RecPartS(),
		Seed:             cfg.Seed,
		ClusterChunkSize: cfg.ChunkSize,
		ClusterWindow:    cfg.Window,
	}

	cl, err := bandjoin.StartLocalCluster(cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("bench: starting workers: %w", err)
	}
	defer cl.Close()
	ctx := context.Background()

	// --- Cold: the one-shot path, everything recomputed per query.
	cold, coldRes, err := measureEngine("cold", cfg.Rounds, func() (*bandjoin.Result, error) {
		return cl.Join(s, t, band, opts)
	})
	if err != nil {
		return nil, err
	}

	// --- Warm-plan: cached sample and plan, but no partition retention; each
	// query reshuffles.
	planEngine := cl.NewEngine(bandjoin.EngineOptions{DisableRetention: true})
	defer planEngine.Close()
	if err := registerPair(planEngine, s, t); err != nil {
		return nil, err
	}
	if _, err := planEngine.Join(ctx, "s", "t", band, opts); err != nil {
		return nil, fmt.Errorf("bench: priming warm-plan engine: %w", err)
	}
	warmPlan, _, err := measureEngine("warm_plan", cfg.Rounds, func() (*bandjoin.Result, error) {
		return planEngine.Join(ctx, "s", "t", band, opts)
	})
	if err != nil {
		return nil, err
	}

	// --- Warm-partitions: full cache stack; the repeat joins worker-resident
	// partitions with zero shuffle.
	partEngine := cl.NewEngine(bandjoin.EngineOptions{})
	defer partEngine.Close()
	if err := registerPair(partEngine, s, t); err != nil {
		return nil, err
	}
	if _, err := partEngine.Join(ctx, "s", "t", band, opts); err != nil {
		return nil, fmt.Errorf("bench: priming warm-partition engine: %w", err)
	}
	warmParts, warmRes, err := measureEngine("warm_partitions", cfg.Rounds, func() (*bandjoin.Result, error) {
		return partEngine.Join(ctx, "s", "t", band, opts)
	})
	if err != nil {
		return nil, err
	}
	if warmParts.ShuffleBytes != 0 || warmParts.ShuffleRPCs != 0 {
		return nil, fmt.Errorf("bench: warm-partition query shuffled (bytes=%d rpcs=%d), want zero",
			warmParts.ShuffleBytes, warmParts.ShuffleRPCs)
	}
	if warmRes.Output != coldRes.Output || warmRes.TotalInput != coldRes.TotalInput {
		return nil, fmt.Errorf("bench: tiers disagree: cold (I=%d out=%d) vs warm (I=%d out=%d)",
			coldRes.TotalInput, coldRes.Output, warmRes.TotalInput, warmRes.Output)
	}

	// --- Pair-level identity between the cold one-shot path and a cached
	// warm-partition run, on a subsample-sized rerun of the same workload so
	// pair collection stays tractable.
	checked, identical, err := enginePairCheck(cl, cfg)
	if err != nil {
		return nil, err
	}
	if !identical {
		return nil, fmt.Errorf("bench: warm-partition pairs differ from the cold one-shot pairs")
	}

	rep := &EngineReport{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Tuples:         cfg.Tuples,
		Dims:           cfg.Dims,
		Eps:            cfg.Eps,
		Workers:        cfg.Workers,
		ChunkSize:      cfg.ChunkSize,
		Window:         cfg.Window,
		Partitioner:    coldRes.Partitioner,
		TotalInput:     coldRes.TotalInput,
		Output:         coldRes.Output,
		Cold:           cold,
		WarmPlan:       warmPlan,
		WarmPartitions: warmParts,
		PairsChecked:   checked,
		PairsIdentical: identical,
	}
	rep.SpeedupWarmPlan = ratio(cold.WallSeconds, warmPlan.WallSeconds)
	rep.SpeedupWarmPartitions = ratio(cold.WallSeconds, warmParts.WallSeconds)
	return rep, nil
}

func registerPair(e *bandjoin.Engine, s, t *data.Relation) error {
	if err := e.Register("s", s); err != nil {
		return fmt.Errorf("bench: registering s: %w", err)
	}
	if err := e.Register("t", t); err != nil {
		return fmt.Errorf("bench: registering t: %w", err)
	}
	return nil
}

// measureEngine runs the query rounds times and keeps the fastest round.
func measureEngine(tier string, rounds int, query func() (*bandjoin.Result, error)) (EngineMeasurement, *bandjoin.Result, error) {
	var best *bandjoin.Result
	var bestWall time.Duration
	for r := 0; r < rounds; r++ {
		// Level the heap across rounds and tiers, as in the cluster benchmark.
		runtime.GC()
		start := time.Now()
		res, err := query()
		wall := time.Since(start)
		if err != nil {
			return EngineMeasurement{}, nil, fmt.Errorf("bench: %s query: %w", tier, err)
		}
		if best == nil || wall < bestWall {
			best, bestWall = res, wall
		}
	}
	m := EngineMeasurement{
		Tier:                tier,
		WallSeconds:         bestWall.Seconds(),
		OptimizationSeconds: best.OptimizationTime.Seconds(),
		ShuffleSeconds:      best.ShuffleTime.Seconds(),
		JoinSeconds:         best.JoinWallTime.Seconds(),
		ShuffleBytes:        best.ShuffleBytes,
		ShuffleRPCs:         best.ShuffleRPCs,
	}
	if m.WallSeconds > 0 {
		m.QueriesPerSec = 1 / m.WallSeconds
	}
	return m, best, nil
}

// enginePairCheck verifies cold one-shot and warm-partition engine runs agree
// pair for pair on a smaller instance of the same workload (pair collection
// over RPC is quadratic in memory on the full benchmark size).
func enginePairCheck(cl *bandjoin.Cluster, cfg EngineConfig) (int, bool, error) {
	tuples := cfg.Tuples / 10
	if tuples > 50_000 {
		tuples = 50_000
	}
	if tuples < 1_000 {
		tuples = cfg.Tuples
	}
	s, t := engineWorkload(tuples, cfg.Dims, cfg.Eps, cfg.Seed+100)
	band := data.Uniform(cfg.Dims, cfg.Eps)
	opts := bandjoin.Options{
		Partitioner:      bandjoin.RecPartS(),
		Seed:             cfg.Seed,
		ClusterChunkSize: cfg.ChunkSize,
		ClusterWindow:    cfg.Window,
		CollectPairs:     true,
	}
	coldRes, err := cl.Join(s, t, band, opts)
	if err != nil {
		return 0, false, fmt.Errorf("bench: pair-check cold run: %w", err)
	}
	e := cl.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := registerPair(e, s, t); err != nil {
		return 0, false, err
	}
	ctx := context.Background()
	if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
		return 0, false, fmt.Errorf("bench: pair-check priming run: %w", err)
	}
	warmRes, err := e.Join(ctx, "s", "t", band, opts)
	if err != nil {
		return 0, false, fmt.Errorf("bench: pair-check warm run: %w", err)
	}
	if warmRes.ShuffleBytes != 0 {
		return 0, false, fmt.Errorf("bench: pair-check warm run shuffled %d bytes", warmRes.ShuffleBytes)
	}
	if len(coldRes.Pairs) != len(warmRes.Pairs) {
		return len(coldRes.Pairs), false, nil
	}
	for i := range coldRes.Pairs {
		if coldRes.Pairs[i] != warmRes.Pairs[i] {
			return len(coldRes.Pairs), false, nil
		}
	}
	return len(coldRes.Pairs), true, nil
}

// WriteEngineJSON writes the report as indented JSON.
func WriteEngineJSON(w io.Writer, rep *EngineReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
