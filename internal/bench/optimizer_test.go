package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunOptimizerQuick runs the planner benchmark harness on a small
// workload: both growers must produce bit-identical plans (enforced inside
// RunOptimizer), the fast grower must not be slower than the oracle, and the
// JSON artifact must round-trip.
func TestRunOptimizerQuick(t *testing.T) {
	cfg := OptimizerConfig{
		Tuples:      20_000,
		Dims:        2,
		Eps:         0.05,
		Workers:     8,
		SampleSizes: []int{1000, 3000},
		Rounds:      1,
		Seed:        3,
	}
	rep, err := RunOptimizer(cfg)
	if err != nil {
		t.Fatalf("RunOptimizer: %v", err)
	}
	// RecPart-S at both sizes plus symmetric RecPart at the default size.
	if len(rep.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if !row.PlansIdentical {
			t.Errorf("%s/%d: plans not identical", row.Partitioner, row.SampleSize)
		}
		if row.Partitions < 1 || row.Iterations < 1 {
			t.Errorf("%s/%d: degenerate plan (%d partitions, %d iterations)",
				row.Partitioner, row.SampleSize, row.Partitions, row.Iterations)
		}
		if row.Serial.WallSeconds <= 0 || row.Fast.WallSeconds <= 0 {
			t.Errorf("%s/%d: missing wall times: %+v / %+v",
				row.Partitioner, row.SampleSize, row.Serial, row.Fast)
		}
		if row.Fast.AllocsPerOp >= row.Serial.AllocsPerOp {
			t.Errorf("%s/%d: fast grower allocates more than the oracle (%.0f >= %.0f)",
				row.Partitioner, row.SampleSize, row.Fast.AllocsPerOp, row.Serial.AllocsPerOp)
		}
	}

	var buf bytes.Buffer
	if err := WriteOptimizerJSON(&buf, rep); err != nil {
		t.Fatalf("WriteOptimizerJSON: %v", err)
	}
	var back OptimizerReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) {
		t.Errorf("round-trip lost rows: %d vs %d", len(back.Rows), len(rep.Rows))
	}
}
