package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/sample"
)

// SkewConfig drives the skewed-workload join benchmark: the morsel-driven
// reduce phase versus the retained per-partition path on a point-mass
// workload, where one partition holds roughly MassFraction of the probe rows
// and a per-partition schedule is bounded by it.
type SkewConfig struct {
	// Tuples is the per-relation input size.
	Tuples int
	// Dims is the number of join attributes.
	Dims int
	// Eps is the symmetric per-dimension band width.
	Eps float64
	// MassFraction is the fraction of S concentrated on a single point inside
	// the Pareto bulk (default 0.5). Every spatial partitioner must route the
	// mass to exactly one partition, so it lower-bounds the straggler ratio.
	MassFraction float64
	// Workers is the simulated worker count the plan targets.
	Workers int
	// Rounds runs each path this many times per procs value and keeps the
	// fastest.
	Rounds int
	// MorselRows is the morsel path's grain (0 = auto).
	MorselRows int
	// Procs is the GOMAXPROCS list to measure at (empty = current setting
	// only). Values above NumCPU are allowed; see ScalingConfig.Procs.
	Procs []int
	// Seed drives data generation and planning.
	Seed int64
}

// DefaultSkewConfig returns a workload whose fat partition dominates the
// per-partition schedule but whose total output stays CI-sized.
func DefaultSkewConfig() SkewConfig {
	return SkewConfig{
		Tuples:       150_000,
		Dims:         2,
		Eps:          0.01,
		MassFraction: 0.5,
		Workers:      8,
		Rounds:       3,
		Seed:         1,
	}
}

// SkewPoint is one GOMAXPROCS measurement: both reduce paths over the same
// shuffled partitions.
type SkewPoint struct {
	Procs               int     `json:"gomaxprocs"`
	PerPartitionSeconds float64 `json:"per_partition_wall_seconds"`
	MorselSeconds       float64 `json:"morsel_wall_seconds"`
	// Speedup is per-partition / morsel wall time (≥ 1 means the morsel path
	// wins; on a single core both schedules do identical work).
	Speedup float64 `json:"speedup_morsel_vs_per_partition"`
	Morsels int64   `json:"morsels"`
	Steals  int64   `json:"steals"`
}

// SkewReport is the machine-readable artifact (BENCH_skew.json).
type SkewReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`

	Tuples       int     `json:"tuples_per_relation"`
	Dims         int     `json:"dims"`
	Eps          float64 `json:"band_width"`
	MassFraction float64 `json:"mass_fraction"`
	Workers      int     `json:"workers"`
	Rounds       int     `json:"rounds"`
	MorselRows   int     `json:"morsel_rows"`

	// StragglerRatio is max/mean partition probe rows of the executed plan —
	// the residual skew the morsel schedule absorbs (≈ partitions ×
	// MassFraction when the point mass lands in one partition).
	StragglerRatio float64 `json:"straggler_ratio"`
	Output         int64   `json:"output_pairs"`
	// PairsIdentical certifies the acceptance criterion: both paths emitted
	// bit-identical pair sequences on this workload.
	PairsChecked   int  `json:"pairs_checked"`
	PairsIdentical bool `json:"pairs_identical"`

	Points []SkewPoint `json:"points"`
}

// pointMassPair builds the skewed workload: S is Pareto with MassFraction of
// its rows replaced by one fixed point inside the distribution's bulk, T is
// plain Pareto. The point sits in T's dense region, so the mass rows carry
// real probe work and output, not just routing weight.
func pointMassPair(tuples, dims int, massFraction float64, seed int64) (*data.Relation, *data.Relation) {
	gen := data.NewPareto(dims, 1.5)
	base := gen.Generate("S", tuples, rand.New(rand.NewSource(seed)))
	t := gen.Generate("T", tuples, rand.New(rand.NewSource(seed+1)))
	point := make([]float64, dims)
	for d := range point {
		point[d] = 1.05
	}
	s := data.NewRelationCapacity("S", dims, tuples)
	rng := rand.New(rand.NewSource(seed + 2))
	for i := 0; i < base.Len(); i++ {
		if rng.Float64() < massFraction {
			s.AppendKey(point)
		} else {
			s.AppendKey(base.Key(i))
		}
	}
	return s, t
}

// RunSkew plans and shuffles the point-mass workload once, then measures the
// morsel-driven and per-partition reduce paths over the identical shuffled
// partitions at each GOMAXPROCS value, and verifies the two paths' collected
// pairs are bit-identical. GOMAXPROCS is restored before returning.
func RunSkew(cfg SkewConfig) (*SkewReport, error) {
	if cfg.Tuples <= 0 || cfg.Dims <= 0 {
		return nil, fmt.Errorf("bench: invalid skew config %+v", cfg)
	}
	if cfg.MassFraction <= 0 || cfg.MassFraction >= 1 {
		cfg.MassFraction = 0.5
	}
	if cfg.Workers < 1 {
		cfg.Workers = 8
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	procs := cfg.Procs
	if len(procs) == 0 {
		procs = []int{runtime.GOMAXPROCS(0)}
	}
	for _, p := range procs {
		if p < 1 {
			return nil, fmt.Errorf("bench: invalid procs value %d in %v", p, procs)
		}
	}

	band := data.Uniform(cfg.Dims, cfg.Eps)
	s, t := pointMassPair(cfg.Tuples, cfg.Dims, cfg.MassFraction, cfg.Seed)

	pt := core.NewRecPartS()
	smp, err := sample.Draw(s, t, band, sample.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("bench: sampling: %w", err)
	}
	opts := exec.DefaultOptions(cfg.Workers)
	opts.Seed = cfg.Seed
	opts.MorselRows = cfg.MorselRows
	optsPP := opts
	optsPP.MorselRows = -1
	prep, err := exec.PlanQuery(pt, smp, band, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: planning: %w", err)
	}
	parts, total, err := exec.Shuffle(context.Background(), prep.Plan, s, t, 0)
	if err != nil {
		return nil, fmt.Errorf("bench: shuffle: %w", err)
	}
	run := func(o exec.Options) (*exec.Result, error) {
		return exec.ExecuteShuffled(context.Background(), prep.Plan, parts, total, s.Len(), t.Len(), band, o)
	}

	// Verification pass: both reduce paths must emit bit-identical pairs.
	collectOpts, collectOptsPP := opts, optsPP
	collectOpts.CollectPairs, collectOptsPP.CollectPairs = true, true
	morselRes, err := run(collectOpts)
	if err != nil {
		return nil, fmt.Errorf("bench: morsel verification run: %w", err)
	}
	ppRes, err := run(collectOptsPP)
	if err != nil {
		return nil, fmt.Errorf("bench: per-partition verification run: %w", err)
	}
	identical := len(morselRes.Pairs) == len(ppRes.Pairs)
	if identical {
		for i := range ppRes.Pairs {
			if morselRes.Pairs[i] != ppRes.Pairs[i] {
				identical = false
				break
			}
		}
	}

	rep := &SkewReport{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Tuples:         cfg.Tuples,
		Dims:           cfg.Dims,
		Eps:            cfg.Eps,
		MassFraction:   cfg.MassFraction,
		Workers:        cfg.Workers,
		Rounds:         cfg.Rounds,
		MorselRows:     cfg.MorselRows,
		StragglerRatio: morselRes.StragglerRatio,
		Output:         morselRes.Output,
		PairsChecked:   len(ppRes.Pairs),
		PairsIdentical: identical,
	}

	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		var bestMorsel, bestPP time.Duration
		var morsels, steals int64
		for r := 0; r < cfg.Rounds; r++ {
			runtime.GC()
			start := time.Now()
			res, err := run(opts)
			if err != nil {
				return nil, fmt.Errorf("bench: morsel join at procs=%d: %w", p, err)
			}
			morselWall := time.Since(start)
			start = time.Now()
			if _, err := run(optsPP); err != nil {
				return nil, fmt.Errorf("bench: per-partition join at procs=%d: %w", p, err)
			}
			ppWall := time.Since(start)
			if r == 0 || morselWall < bestMorsel {
				bestMorsel = morselWall
				morsels, steals = res.Morsels, res.MorselSteals
			}
			if r == 0 || ppWall < bestPP {
				bestPP = ppWall
			}
		}
		rep.Points = append(rep.Points, SkewPoint{
			Procs:               p,
			PerPartitionSeconds: bestPP.Seconds(),
			MorselSeconds:       bestMorsel.Seconds(),
			Speedup:             ratio(bestPP.Seconds(), bestMorsel.Seconds()),
			Morsels:             morsels,
			Steals:              steals,
		})
	}
	return rep, nil
}

// WriteSkewJSON writes the report as indented JSON.
func WriteSkewJSON(w io.Writer, rep *SkewReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
