package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunAppendQuick runs the append benchmark harness on a small workload:
// the post-append warm query must report zero shuffle traffic (enforced inside
// RunAppend, along with pair-level identity against a fresh rebuild), the
// drift phase must have completed exactly one re-partition with queries served
// throughout, and the JSON artifact must round-trip.
func TestRunAppendQuick(t *testing.T) {
	cfg := AppendConfig{
		Tuples:        4000,
		Dims:          4,
		Eps:           0.01,
		Workers:       2,
		ChunkSize:     256,
		Window:        3,
		DeltaFraction: 0.10,
		Batches:       3,
		Rounds:        1,
		Seed:          5,
	}
	rep, err := RunAppend(cfg)
	if err != nil {
		t.Fatalf("RunAppend: %v", err)
	}
	if rep.Output <= 0 {
		t.Error("benchmark workload produced no output pairs")
	}
	if rep.DeltaTuples != 400 {
		t.Errorf("delta sized %d tuples, want 400 (10%% of 4000)", rep.DeltaTuples)
	}
	if rep.WarmShuffleBytes != 0 {
		t.Errorf("warm query after append shuffled %d bytes", rep.WarmShuffleBytes)
	}
	if rep.AppendSeconds <= 0 || rep.AppendTuplesPerSec <= 0 {
		t.Errorf("append timing missing: %gs, %g tuples/s", rep.AppendSeconds, rep.AppendTuplesPerSec)
	}
	if rep.SpeedupVsRebuild <= 0 {
		t.Errorf("speedup %g must be positive", rep.SpeedupVsRebuild)
	}
	if rep.Sustained.Queries <= 0 || rep.Sustained.MaxSeconds <= 0 {
		t.Errorf("sustained phase served %d queries (max %gs), want > 0",
			rep.Sustained.Queries, rep.Sustained.MaxSeconds)
	}
	if rep.RepartitionSeconds <= 0 || rep.ServedDuringRepartition <= 0 {
		t.Errorf("drift phase: re-partition took %gs with %d queries served, want both > 0",
			rep.RepartitionSeconds, rep.ServedDuringRepartition)
	}
	if !rep.PairsIdentical || rep.PairsChecked <= 0 {
		t.Errorf("pair check: %d pairs, identical=%v", rep.PairsChecked, rep.PairsIdentical)
	}

	var buf bytes.Buffer
	if err := WriteAppendJSON(&buf, rep); err != nil {
		t.Fatalf("WriteAppendJSON: %v", err)
	}
	var back AppendReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Output != rep.Output || back.DeltaTuples != rep.DeltaTuples {
		t.Error("round-tripped report differs")
	}
}
