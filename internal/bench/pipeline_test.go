package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunPipelineSmoke(t *testing.T) {
	cfg := PipelineConfig{Tuples: 8_000, Dims: 2, Eps: 0.002, Workers: 6, Rounds: 1, Seed: 3, SkipMicro: true}
	rep, err := RunPipeline(cfg)
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	if rep.Output <= 0 {
		t.Error("pipeline produced no join results; widen the band")
	}
	if rep.Partitions <= 0 {
		t.Error("pipeline produced no partitions")
	}
	if rep.TotalInput < int64(2*cfg.Tuples) {
		t.Errorf("total input %d below the |S|+|T| lower bound %d", rep.TotalInput, 2*cfg.Tuples)
	}
	if rep.Reference.TotalSeconds <= 0 || rep.Optimized.TotalSeconds <= 0 {
		t.Error("measurements missing wall times")
	}
	if rep.SpeedupEndToEnd <= 0 {
		t.Error("speedup must be positive")
	}
	if rep.Reference.Path != "serial-reference" || rep.Optimized.Path != "parallel" {
		t.Errorf("unexpected path labels %q / %q", rep.Reference.Path, rep.Optimized.Path)
	}

	var buf bytes.Buffer
	if err := WritePipelineJSON(&buf, rep); err != nil {
		t.Fatalf("WritePipelineJSON: %v", err)
	}
	var decoded PipelineReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Tuples != cfg.Tuples || decoded.Dims != cfg.Dims {
		t.Errorf("round-trip mismatch: %+v", decoded)
	}
}
