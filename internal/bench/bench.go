// Package bench regenerates the paper's evaluation: every table and figure of
// Section 6 and Appendix A has a corresponding experiment here that sweeps the
// same parameters (band width, skew, scale, dimensionality, grid size, block
// size, β ratios) over the same set of methods (RecPart, RecPart-S, CSIO,
// 1-Bucket, Grid-ε, Grid*, distributed IEJoin) and reports the same columns
// (runtime split into optimization and join time, and I / Im / Om).
//
// Inputs are scaled down from the paper's hundreds of millions of tuples to
// tens of thousands so that the whole suite runs on one machine; all relative
// measures (duplication overhead, load overhead, who wins and by how much)
// are preserved because every method sees the same scaled input. The band
// widths are likewise rescaled to keep the paper's output-to-input ratios in
// the same regimes; EXPERIMENTS.md records the mapping.
package bench

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/csio"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/grid"
	"bandjoin/internal/onebucket"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// Config controls the scale of all experiments.
type Config struct {
	// Workers is the default cluster size (the paper's default is 30).
	Workers int
	// BaseTuples is the per-relation input size of the "400 million" paper
	// configuration; other configurations scale relative to it.
	BaseTuples int
	// SampleSize is the optimization-phase input sample size.
	SampleSize int
	// Seed drives all data generation and sampling.
	Seed int64
	// Model supplies β coefficients (β2/β3 ≈ 4 as measured in the paper).
	Model costmodel.Model
	// Quick reduces input sizes further for smoke tests.
	Quick bool
}

// DefaultConfig returns the configuration used by bench_test.go and
// cmd/experiments. The environment variable BANDJOIN_BENCH_TUPLES overrides
// the per-relation input size.
func DefaultConfig() Config {
	cfg := Config{
		Workers:    30,
		BaseTuples: 40000,
		SampleSize: 6000,
		Seed:       1,
		Model:      costmodel.Default(),
	}
	if v := os.Getenv("BANDJOIN_BENCH_TUPLES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.BaseTuples = n
		}
	}
	return cfg
}

// QuickConfig returns a small configuration used by unit tests of the harness
// itself.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.BaseTuples = 3000
	cfg.SampleSize = 1500
	cfg.Workers = 8
	cfg.Quick = true
	return cfg
}

// tuples returns the input size for a configuration that the paper runs with
// `millions` million tuples per relation (relative to the 200-million
// baseline).
func (c Config) tuples(millions float64) int {
	n := int(float64(c.BaseTuples) * millions / 200.0)
	if n < 500 {
		n = 500
	}
	return n
}

// Cell is the outcome of running one method on one experiment row.
type Cell struct {
	Method string
	// Result carries the full accounting (I, Im, Om, overheads, timings).
	Result *exec.Result
	// Err records a failed configuration, mirroring the paper's "failed"
	// entries (e.g. Grid-ε running out of memory on the largest input).
	Err error
}

// Row is one parameter combination of an experiment.
type Row struct {
	// Labels are the parameter columns, e.g. {"band width": "(2,2,2)"}.
	Labels []Label
	Cells  []Cell
}

// Label is one parameter column of a row.
type Label struct {
	Name  string
	Value string
}

// Table is one regenerated paper table (or figure data series).
type Table struct {
	ID      string
	Title   string
	Paper   string // what the paper's corresponding artifact shows
	Methods []string
	Rows    []Row
	// Elapsed is the wall time spent producing the table.
	Elapsed time.Duration
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Table, error)
}

// methodSpec names a partitioner variant used in an experiment.
type methodSpec struct {
	name string
	pt   partition.Partitioner
	// estimateOnly forces sample-based estimation instead of execution, used
	// where the paper also falls back to the cost model (8-dimensional runs)
	// or where execution would need thousands-fold duplication (Grid-ε at
	// d = 8).
	estimateOnly bool
}

// standardMethods returns the paper's main competitor line-up.
func standardMethods(includeGrid bool) []methodSpec {
	ms := []methodSpec{
		{name: "RecPart-S", pt: core.NewRecPartS()},
		{name: "CSIO", pt: csio.New()},
		{name: "1-Bucket", pt: onebucket.New()},
	}
	if includeGrid {
		ms = append(ms, methodSpec{name: "Grid-eps", pt: grid.New()})
	}
	return ms
}

// run executes (or estimates) one method on one workload.
func (c Config) run(spec methodSpec, s, t *data.Relation, band data.Band, workers int) Cell {
	opts := exec.Options{
		Workers: workers,
		Model:   c.Model,
		Seed:    c.Seed,
		Sampling: sample.Options{
			InputSampleSize:  c.SampleSize,
			OutputSampleSize: c.SampleSize / 2,
			Seed:             c.Seed + 7,
		},
	}
	var (
		res *exec.Result
		err error
	)
	if spec.estimateOnly {
		res, err = exec.Estimate(spec.pt, s, t, band, opts)
	} else {
		res, err = exec.Run(spec.pt, s, t, band, opts)
	}
	return Cell{Method: spec.name, Result: res, Err: err}
}

// runRow runs every method of the row on the same inputs.
func (c Config) runRow(labels []Label, specs []methodSpec, s, t *data.Relation, band data.Band, workers int) Row {
	row := Row{Labels: labels}
	for _, spec := range specs {
		row.Cells = append(row.Cells, c.run(spec, s, t, band, workers))
	}
	return row
}

// methodNames extracts the method column order.
func methodNames(specs []methodSpec) []string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.name
	}
	return names
}

// labels builds a label list from alternating name/value pairs.
func labels(pairs ...string) []Label {
	out := make([]Label, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return out
}

// bandString formats a band width vector the way the paper's tables do.
func bandString(eps []float64) string {
	if len(eps) == 1 {
		return fmt.Sprintf("%g", eps[0])
	}
	s := "("
	for i, e := range eps {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%g", e)
	}
	return s + ")"
}

// uniformEps returns a d-dimensional symmetric band-width vector.
func uniformEps(d int, eps float64) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = eps
	}
	return v
}

// All returns every experiment keyed by its identifier.
func All() []Experiment {
	return []Experiment{
		{ID: "workloads", Title: "Table 1/10: workload characteristics", Run: Workloads},
		{ID: "2a", Title: "Table 2a: band width, 1D pareto-1.5", Run: Table2a},
		{ID: "2b", Title: "Table 2b: band width, 3D pareto-1.5", Run: Table2b},
		{ID: "2c", Title: "Table 2c: band width, ebird x cloud", Run: Table2c},
		{ID: "3", Title: "Table 3: skew resistance", Run: Table3},
		{ID: "4a", Title: "Table 4a: scale input+workers, pareto-1.5 3D", Run: Table4a},
		{ID: "4b", Title: "Table 4b: scale input+workers, ebird x cloud", Run: Table4b},
		{ID: "4c", Title: "Table 4c: scale input, 8D", Run: Table4c},
		{ID: "4d", Title: "Table 4d: scale workers, 8D", Run: Table4d},
		{ID: "5", Title: "Table 5: Grid-eps grid-size sweep vs Grid*", Run: Table5},
		{ID: "6", Title: "Table 6: Grid* vs RecPart on reverse Pareto", Run: Table6},
		{ID: "7", Title: "Table 7/11: RecPart-S vs distributed IEJoin", Run: Table7},
		{ID: "8", Title: "Table 8/13: impact of the beta2/beta1 ratio", Run: Table8},
		{ID: "9", Title: "Table 9/14: RecPart-S vs RecPart (symmetric splits)", Run: Table9},
		{ID: "12", Title: "Table 12 / Figure 9: running-time model accuracy", Run: Table12},
		{ID: "15", Title: "Table 15: dimensionality sweep", Run: Table15},
		{ID: "16", Title: "Table 16: PTF with theoretical termination", Run: Table16},
		{ID: "fig4", Title: "Figure 4/10: overhead scatter across all settings", Run: Figure4},
	}
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
