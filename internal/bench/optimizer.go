package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// OptimizerConfig scales the planner benchmark: the fast RecPart grower (sort
// inheritance, arena scratch, parallel best-split) against the serial
// reference oracle, on the same optimization contexts, across sample sizes.
type OptimizerConfig struct {
	// Tuples is the per-relation input size the samples are drawn from.
	Tuples int
	// Dims is the number of join attributes.
	Dims int
	// Eps is the symmetric per-dimension band width.
	Eps float64
	// Workers is the planning-time cluster size w.
	Workers int
	// SampleSizes are the optimization-phase input sample sizes to measure;
	// the output sample is half the input sample, mirroring the defaults.
	SampleSizes []int
	// Rounds measures each grower this many times per size, keeping the
	// fastest round.
	Rounds int
	// Seed drives data generation, sampling, and planning.
	Seed int64
}

// DefaultOptimizerConfig measures sample sizes 2k/8k/32k on the 3-dimensional
// Pareto workload of the ablation benchmarks, planning for 30 workers with
// RecPart-S — the paper's primary configuration (band-width, skew, and
// scalability experiments, and the cluster/engine benchmarks). The symmetric
// RecPart is measured alongside at the default sample size.
func DefaultOptimizerConfig() OptimizerConfig {
	return OptimizerConfig{
		Tuples:      200_000,
		Dims:        3,
		Eps:         0.03,
		Workers:     30,
		SampleSizes: []int{2000, 8000, 32000},
		Rounds:      5,
		Seed:        1,
	}
}

// OptimizerMeasurement is one (configuration, sample size, grower) cell.
type OptimizerMeasurement struct {
	// Grower is "serial-oracle" or "fast".
	Grower string `json:"grower"`
	// WallSeconds is the fastest PlanDetailed wall time over the rounds.
	WallSeconds float64 `json:"wall_seconds"`
	// AllocsPerOp and BytesPerOp are steady-state allocations per plan
	// (measured after a warm-up plan, so pools and arenas are primed).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// OptimizerRow compares the two growers on one (partitioner, sample size)
// configuration and records the resulting plan's quality — which must be
// identical between the growers (the benchmark fails otherwise).
type OptimizerRow struct {
	// Partitioner is "RecPart-S" or "RecPart".
	Partitioner string `json:"partitioner"`
	// SampleSize is the optimization-phase input sample size.
	SampleSize int `json:"sample_size"`

	Serial OptimizerMeasurement `json:"serial"`
	Fast   OptimizerMeasurement `json:"fast"`

	// Speedup is serial wall time / fast wall time; AllocReduction is the
	// serial-to-fast ratio of steady-state allocations per plan.
	Speedup        float64 `json:"speedup"`
	AllocReduction float64 `json:"alloc_reduction"`

	// PlansIdentical records that the two growers produced bit-identical
	// growth histories and plan shapes.
	PlansIdentical bool `json:"plans_identical"`

	// Plan quality of the (shared) resulting plan.
	Iterations    int     `json:"iterations"`
	Partitions    int     `json:"partitions"`
	DupOverhead   float64 `json:"dup_overhead"`
	LoadOverhead  float64 `json:"load_overhead"`
	PredictedTime float64 `json:"predicted_time_seconds"`
}

// OptimizerReport is the machine-readable benchmark artifact
// (BENCH_optimizer.json).
type OptimizerReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	Tuples  int     `json:"tuples_per_relation"`
	Dims    int     `json:"dims"`
	Eps     float64 `json:"band_width"`
	Workers int     `json:"workers"`
	Rounds  int     `json:"rounds"`

	Rows []OptimizerRow `json:"rows"`
}

// RunOptimizer executes the planner benchmark and returns the report.
func RunOptimizer(cfg OptimizerConfig) (*OptimizerReport, error) {
	if cfg.Tuples <= 0 || cfg.Dims <= 0 || len(cfg.SampleSizes) == 0 {
		return nil, fmt.Errorf("bench: invalid optimizer config %+v", cfg)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 30
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	s, t := data.ParetoPair(cfg.Dims, 1.5, cfg.Tuples, cfg.Seed)
	band := data.Uniform(cfg.Dims, cfg.Eps)

	rep := &OptimizerReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Tuples:      cfg.Tuples,
		Dims:        cfg.Dims,
		Eps:         cfg.Eps,
		Workers:     cfg.Workers,
		Rounds:      cfg.Rounds,
	}

	type variant struct {
		name      string
		symmetric bool
		sizes     []int
	}
	defaultSize := cfg.SampleSizes[len(cfg.SampleSizes)/2]
	variants := []variant{
		{name: "RecPart-S", symmetric: false, sizes: cfg.SampleSizes},
		{name: "RecPart", symmetric: true, sizes: []int{defaultSize}},
	}
	for _, v := range variants {
		for _, size := range v.sizes {
			smp, err := sample.Draw(s, t, band, sample.Options{
				InputSampleSize:  size,
				OutputSampleSize: size / 2,
				Seed:             cfg.Seed + 8,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: sampling %d: %w", size, err)
			}
			ctx := &partition.Context{Band: band, Workers: cfg.Workers, Sample: smp, Model: costmodel.Default(), Seed: cfg.Seed}
			row, err := measureOptimizerRow(v.name, v.symmetric, size, ctx, cfg.Rounds)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// measureOptimizerRow times both growers on one context and cross-checks that
// their plans are bit-identical.
func measureOptimizerRow(ptName string, symmetric bool, size int, ctx *partition.Context, rounds int) (OptimizerRow, error) {
	mkOpts := func(serial bool) core.Options {
		o := core.DefaultOptions()
		o.Symmetric = symmetric
		o.Serial = serial
		return o
	}
	serialPlan, serialM, err := measureGrower("serial-oracle", core.New(mkOpts(true)), ctx, rounds)
	if err != nil {
		return OptimizerRow{}, err
	}
	fastPlan, fastM, err := measureGrower("fast", core.New(mkOpts(false)), ctx, rounds)
	if err != nil {
		return OptimizerRow{}, err
	}

	identical := serialPlan.NumPartitions() == fastPlan.NumPartitions() &&
		serialPlan.Chosen == fastPlan.Chosen &&
		serialPlan.Leaves == fastPlan.Leaves &&
		reflect.DeepEqual(serialPlan.History, fastPlan.History) &&
		reflect.DeepEqual(serialPlan.Regions(), fastPlan.Regions())
	if !identical {
		return OptimizerRow{}, fmt.Errorf("bench: %s/%d: fast plan differs from the serial oracle's", ptName, size)
	}

	fs := fastPlan.FinalStats()
	row := OptimizerRow{
		Partitioner:    ptName,
		SampleSize:     size,
		Serial:         serialM,
		Fast:           fastM,
		Speedup:        ratio(serialM.WallSeconds, fastM.WallSeconds),
		AllocReduction: ratio(serialM.AllocsPerOp, fastM.AllocsPerOp),
		PlansIdentical: identical,
		Iterations:     len(fastPlan.History) - 1,
		Partitions:     fastPlan.NumPartitions(),
		DupOverhead:    fs.DupOverhead,
		LoadOverhead:   fs.LoadOverhead,
		PredictedTime:  fs.PredictedTime,
	}
	return row, nil
}

// measureGrower times PlanDetailed over the rounds (fastest kept) and
// measures steady-state allocations per plan after a warm-up run.
func measureGrower(name string, rp *core.RecPart, ctx *partition.Context, rounds int) (*core.Plan, OptimizerMeasurement, error) {
	// Warm up pools, arenas, and the scheduler before timing.
	plan, err := rp.PlanDetailed(ctx)
	if err != nil {
		return nil, OptimizerMeasurement{}, fmt.Errorf("bench: %s warm-up plan: %w", name, err)
	}
	best := time.Duration(0)
	for r := 0; r < rounds; r++ {
		runtime.GC()
		start := time.Now()
		if _, err := rp.PlanDetailed(ctx); err != nil {
			return nil, OptimizerMeasurement{}, fmt.Errorf("bench: %s plan: %w", name, err)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}

	// Steady-state allocations: measure a few back-to-back plans without
	// interleaving GC so pool contents survive between them.
	const allocRuns = 3
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for r := 0; r < allocRuns; r++ {
		if _, err := rp.PlanDetailed(ctx); err != nil {
			return nil, OptimizerMeasurement{}, fmt.Errorf("bench: %s alloc-measure plan: %w", name, err)
		}
	}
	runtime.ReadMemStats(&after)

	m := OptimizerMeasurement{
		Grower:      name,
		WallSeconds: best.Seconds(),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / allocRuns,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / allocRuns,
	}
	return plan, m, nil
}

// WriteOptimizerJSON writes the report as indented JSON.
func WriteOptimizerJSON(w io.Writer, rep *OptimizerReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
