package bench

import (
	"fmt"
	"math"
	"time"

	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/csio"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/grid"
	"bandjoin/internal/iejoin"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/onebucket"
	"bandjoin/internal/sample"
)

// -----------------------------------------------------------------------------
// Workload construction helpers

// pareto1D returns the 1D pareto-1.5 pair with values rounded to 4 decimals so
// that an equi-join (band width 0) has matches, mirroring the paper's Table 2a
// where ε = 0 still produces output.
func (c Config) pareto1D(z float64) (*data.Relation, *data.Relation) {
	s, t := data.ParetoPair(1, z, c.tuples(200), c.Seed)
	roundRelation(s, 4)
	roundRelation(t, 4)
	return s, t
}

func (c Config) pareto(d int, z float64) (*data.Relation, *data.Relation) {
	return data.ParetoPair(d, z, c.tuples(200), c.Seed)
}

func (c Config) paretoSized(d int, z float64, perRelation int) (*data.Relation, *data.Relation) {
	return data.ParetoPair(d, z, perRelation, c.Seed)
}

func (c Config) ebirdCloud() (*data.Relation, *data.Relation) {
	return data.EBirdCloudPair(c.tuples(508), c.tuples(382), c.Seed)
}

func (c Config) ebirdCloudSized(nS, nT int) (*data.Relation, *data.Relation) {
	return data.EBirdCloudPair(nS, nT, c.Seed)
}

func (c Config) reversePareto(d int, z float64) (*data.Relation, *data.Relation) {
	return data.ReverseParetoPair(d, z, c.tuples(200), c.Seed)
}

func (c Config) ptf() (*data.Relation, *data.Relation) {
	return data.PTFPair(c.tuples(599), c.Seed)
}

// roundRelation rounds every join-attribute value to the given number of
// decimal places in place.
func roundRelation(r *data.Relation, decimals int) {
	scale := math.Pow(10, float64(decimals))
	for i := 0; i < r.Len(); i++ {
		k := r.Key(i)
		for d := range k {
			k[d] = math.Round(k[d]*scale) / scale
		}
	}
}

// Band widths used by the scaled-down workloads. The paper's absolute widths
// assume 200-million-tuple Pareto inputs; these values reproduce the same
// output-to-input regimes at the scaled input sizes (see EXPERIMENTS.md).
var (
	widths1D    = []float64{0, 1e-4, 2e-4, 3e-4}
	widths3D    = []float64{0, 0.03, 0.06}
	width3D     = 0.03 // the analogue of the paper's (2,2,2)
	widthsEbird = []float64{0, 1, 2}
	width8D     = 0.2 // the analogue of the paper's 20 per dimension at d=8
)

// -----------------------------------------------------------------------------
// Table 1 / Table 10: workload characteristics

// Workloads regenerates Table 1 / Table 10: the input and output size of every
// (dataset, band width) combination used in the experiments. Output sizes are
// computed exactly with a single-worker run.
func Workloads(cfg Config) (*Table, error) {
	start := time.Now()
	t := &Table{
		ID:      "workloads",
		Title:   "Workload characteristics (input and output sizes)",
		Paper:   "Table 1 / Table 10",
		Methods: []string{"exact"},
	}
	type wl struct {
		name string
		d    int
		eps  []float64
		make func() (*data.Relation, *data.Relation)
	}
	var wls []wl
	for _, e := range widths1D {
		e := e
		wls = append(wls, wl{"pareto-1.5", 1, []float64{e}, func() (*data.Relation, *data.Relation) { return cfg.pareto1D(1.5) }})
	}
	for _, e := range widths3D {
		e := e
		wls = append(wls, wl{"pareto-1.5", 3, uniformEps(3, e), func() (*data.Relation, *data.Relation) { return cfg.pareto(3, 1.5) }})
	}
	for _, z := range []float64{0.5, 1.0, 2.0} {
		z := z
		wls = append(wls, wl{fmt.Sprintf("pareto-%g", z), 3, uniformEps(3, width3D), func() (*data.Relation, *data.Relation) { return cfg.pareto(3, z) }})
	}
	wls = append(wls, wl{"pareto-1.5", 8, uniformEps(8, width8D), func() (*data.Relation, *data.Relation) { return cfg.pareto(8, 1.5) }})
	for _, e := range []float64{2, 1000} {
		e := e
		wls = append(wls, wl{"rv-pareto-1.5", 1, []float64{e}, func() (*data.Relation, *data.Relation) { return cfg.reversePareto(1, 1.5) }})
	}
	for _, e := range []float64{1000, 2000} {
		e := e
		wls = append(wls, wl{"rv-pareto-1.5", 3, uniformEps(3, e), func() (*data.Relation, *data.Relation) { return cfg.reversePareto(3, 1.5) }})
	}
	for _, e := range widthsEbird {
		e := e
		wls = append(wls, wl{"ebird and cloud", 3, uniformEps(3, e), func() (*data.Relation, *data.Relation) { return cfg.ebirdCloud() }})
	}
	for _, e := range []float64{2.78e-4, 8.33e-4} {
		e := e
		wls = append(wls, wl{"ptf_objects", 2, uniformEps(2, e), func() (*data.Relation, *data.Relation) { return cfg.ptf() }})
	}

	for _, w := range wls {
		s, tt := w.make()
		band := data.Symmetric(w.eps...)
		count := localjoin.SortProbe{}.Join(s, tt, band, nil)
		row := Row{
			Labels: labels(
				"dataset", w.name,
				"d", fmt.Sprint(w.d),
				"band width", bandString(w.eps),
				"input", fmt.Sprint(s.Len()+tt.Len()),
				"output", fmt.Sprint(count),
			),
		}
		t.Rows = append(t.Rows, row)
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 2: impact of band width

// Table2a regenerates Table 2a: 1D pareto-1.5, varying band width.
func Table2a(cfg Config) (*Table, error) {
	start := time.Now()
	specs := standardMethods(true)
	t := &Table{ID: "2a", Title: "Impact of band width: pareto-1.5, d=1", Paper: "Table 2a", Methods: methodNames(specs)}
	s, tt := cfg.pareto1D(1.5)
	for _, eps := range widths1D {
		rowSpecs := specs
		if eps == 0 {
			rowSpecs = standardMethods(false) // Grid-ε is undefined at band width 0
		}
		band := data.Symmetric(eps)
		t.Rows = append(t.Rows, cfg.runRow(labels("band width", bandString([]float64{eps})), rowSpecs, s, tt, band, cfg.Workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// Table2b regenerates Table 2b: 3D pareto-1.5, varying band width.
func Table2b(cfg Config) (*Table, error) {
	start := time.Now()
	specs := standardMethods(true)
	t := &Table{ID: "2b", Title: "Impact of band width: pareto-1.5, d=3", Paper: "Table 2b", Methods: methodNames(specs)}
	s, tt := cfg.pareto(3, 1.5)
	for _, eps := range widths3D {
		rowSpecs := specs
		if eps == 0 {
			rowSpecs = standardMethods(false)
		}
		band := data.Uniform(3, eps)
		t.Rows = append(t.Rows, cfg.runRow(labels("band width", bandString(uniformEps(3, eps))), rowSpecs, s, tt, band, cfg.Workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// Table2c regenerates Table 2c: ebird ⋈ cloud, d=3, varying band width.
func Table2c(cfg Config) (*Table, error) {
	start := time.Now()
	specs := standardMethods(true)
	t := &Table{ID: "2c", Title: "Impact of band width: ebird x cloud, d=3", Paper: "Table 2c", Methods: methodNames(specs)}
	s, tt := cfg.ebirdCloud()
	for _, eps := range widthsEbird {
		rowSpecs := specs
		if eps == 0 {
			rowSpecs = standardMethods(false)
		}
		band := data.Uniform(3, eps)
		t.Rows = append(t.Rows, cfg.runRow(labels("band width", bandString(uniformEps(3, eps))), rowSpecs, s, tt, band, cfg.Workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 3: skew resistance

// Table3 regenerates Table 3: pareto-z, d=3, fixed band width, increasing skew.
func Table3(cfg Config) (*Table, error) {
	start := time.Now()
	specs := standardMethods(true)
	t := &Table{ID: "3", Title: "Skew resistance: pareto-z, d=3", Paper: "Table 3", Methods: methodNames(specs)}
	for _, z := range []float64{0.5, 1.0, 1.5, 2.0} {
		s, tt := cfg.pareto(3, z)
		band := data.Uniform(3, width3D)
		t.Rows = append(t.Rows, cfg.runRow(labels("dataset", fmt.Sprintf("pareto-%g", z)), specs, s, tt, band, cfg.Workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 4: scalability

// Table4a regenerates Table 4a: doubling input and workers together on
// pareto-1.5, d=3.
func Table4a(cfg Config) (*Table, error) {
	start := time.Now()
	specs := standardMethods(true)
	t := &Table{ID: "4a", Title: "Scalability: pareto-1.5, d=3, input and workers doubling", Paper: "Table 4a", Methods: methodNames(specs)}
	type step struct {
		totalMillions float64
		workers       int
	}
	for _, st := range []step{{200, cfg.Workers / 2}, {400, cfg.Workers}, {800, cfg.Workers * 2}} {
		if st.workers < 1 {
			st.workers = 1
		}
		s, tt := cfg.paretoSized(3, 1.5, cfg.tuples(st.totalMillions/2))
		band := data.Uniform(3, width3D)
		lbl := labels("scale", fmt.Sprintf("%d tuples / %d workers", s.Len()+tt.Len(), st.workers))
		t.Rows = append(t.Rows, cfg.runRow(lbl, specs, s, tt, band, st.workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// Table4b regenerates Table 4b: doubling input and workers on ebird ⋈ cloud.
func Table4b(cfg Config) (*Table, error) {
	start := time.Now()
	specs := standardMethods(true)
	t := &Table{ID: "4b", Title: "Scalability: ebird x cloud, input and workers doubling", Paper: "Table 4b", Methods: methodNames(specs)}
	type step struct {
		frac    float64
		workers int
	}
	for _, st := range []step{{0.25, cfg.Workers / 2}, {0.5, cfg.Workers}, {1.0, cfg.Workers * 2}} {
		if st.workers < 1 {
			st.workers = 1
		}
		s, tt := cfg.ebirdCloudSized(int(float64(cfg.tuples(508))*st.frac), int(float64(cfg.tuples(382))*st.frac))
		band := data.Uniform(3, 2)
		lbl := labels("scale", fmt.Sprintf("%d tuples / %d workers", s.Len()+tt.Len(), st.workers))
		t.Rows = append(t.Rows, cfg.runRow(lbl, specs, s, tt, band, st.workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// methods8D returns the method set for the 8-dimensional scalability tables.
// The paper evaluates these with the running-time model rather than cloud
// executions; likewise all methods here use sample-based estimation, and
// Grid-ε — whose duplication factor approaches 3^8 — is estimated in closed
// form.
func methods8D() []methodSpec {
	return []methodSpec{
		{name: "RecPart", pt: core.NewDefault(), estimateOnly: true},
		{name: "CSIO", pt: csio.New(), estimateOnly: true},
		{name: "1-Bucket", pt: onebucket.New(), estimateOnly: true},
	}
}

// Table4c regenerates Table 4c: varying input size at d=8, fixed workers.
func Table4c(cfg Config) (*Table, error) {
	start := time.Now()
	specs := methods8D()
	t := &Table{ID: "4c", Title: "Scalability: pareto-1.5, d=8, varying input", Paper: "Table 4c", Methods: append(methodNames(specs), "Grid-eps")}
	for _, totalM := range []float64{100, 200, 400, 800} {
		s, tt := cfg.paretoSized(8, 1.5, cfg.tuples(totalM/2))
		band := data.Uniform(8, width8D)
		row := cfg.runRow(labels("input", fmt.Sprint(s.Len()+tt.Len())), specs, s, tt, band, cfg.Workers)
		row.Cells = append(row.Cells, cfg.gridAnalytic(s, tt, band, cfg.Workers))
		t.Rows = append(t.Rows, row)
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// Table4d regenerates Table 4d: varying the number of workers at d=8.
func Table4d(cfg Config) (*Table, error) {
	start := time.Now()
	specs := methods8D()
	t := &Table{ID: "4d", Title: "Scalability: pareto-1.5, d=8, varying workers", Paper: "Table 4d", Methods: append(methodNames(specs), "Grid-eps")}
	s, tt := cfg.pareto(8, 1.5)
	band := data.Uniform(8, width8D)
	for _, w := range []int{1, cfg.Workers / 2, cfg.Workers, cfg.Workers * 2} {
		if w < 1 {
			w = 1
		}
		row := cfg.runRow(labels("workers", fmt.Sprint(w)), specs, s, tt, band, w)
		row.Cells = append(row.Cells, cfg.gridAnalytic(s, tt, band, w))
		t.Rows = append(t.Rows, row)
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// gridAnalytic estimates Grid-ε in closed form: total input is |S| plus the
// average ε-range replication of T, and per-worker quantities assume the hash
// placement spreads the (very many) cells evenly — the regime Table 4c/4d's
// Grid-ε columns are in.
func (c Config) gridAnalytic(s, t *data.Relation, band data.Band, workers int) Cell {
	const method = "Grid-eps"
	size, err := grid.CellSize(band, 1)
	if err != nil {
		return Cell{Method: method, Err: err}
	}
	plan := grid.NewPlan(band, size)
	smp, err := sample.Draw(s, t, band, sample.Options{InputSampleSize: c.SampleSize, OutputSampleSize: c.SampleSize / 2, Seed: c.Seed + 7})
	if err != nil {
		return Cell{Method: method, Err: err}
	}
	repl := 0.0
	for i := 0; i < smp.T.Len(); i++ {
		repl += float64(plan.Replication(smp.T.Key(i)))
	}
	if smp.T.Len() > 0 {
		repl /= float64(smp.T.Len())
	}
	totalInput := float64(s.Len()) + repl*float64(t.Len())
	output := smp.EstimatedOutput()
	res := &exec.Result{
		Partitioner:    method,
		Workers:        workers,
		InputS:         s.Len(),
		InputT:         t.Len(),
		TotalInput:     int64(totalInput),
		Output:         int64(output),
		Im:             int64(totalInput / float64(workers)),
		Om:             int64(output / float64(workers)),
		LowerBoundLoad: c.Model.LowerBoundLoad(float64(s.Len()+t.Len()), output, workers),
	}
	res.MaxLoad = c.Model.Load(float64(res.Im), float64(res.Om))
	res.DupOverhead = totalInput/float64(s.Len()+t.Len()) - 1
	if res.LowerBoundLoad > 0 {
		res.LoadOverhead = res.MaxLoad/res.LowerBoundLoad - 1
	}
	res.PredictedTime = c.Model.Predict(totalInput, float64(res.Im), float64(res.Om))
	return Cell{Method: method, Result: res}
}

// -----------------------------------------------------------------------------
// Table 5 and 6: grid size tuning

// Table5 regenerates Table 5: Grid-ε under different grid sizes versus Grid*,
// RecPart-S, CSIO, and 1-Bucket on pareto-1.5, d=3.
func Table5(cfg Config) (*Table, error) {
	start := time.Now()
	t := &Table{ID: "5", Title: "Grid-eps grid-size sweep vs Grid*, RecPart-S, CSIO, 1-Bucket", Paper: "Table 5", Methods: []string{"result"}}
	s, tt := cfg.pareto(3, 1.5)
	band := data.Uniform(3, width3D)

	for _, mult := range []float64{1, 2, 4, 8, 16, 32, 64} {
		spec := methodSpec{name: fmt.Sprintf("Grid-eps x%g", mult), pt: grid.NewWithMultiplier(mult)}
		cell := cfg.run(spec, s, tt, band, cfg.Workers)
		t.Rows = append(t.Rows, Row{Labels: labels("method", spec.name), Cells: []Cell{cell}})
	}
	for _, spec := range []methodSpec{
		{name: "Grid*", pt: grid.NewStar()},
		{name: "RecPart-S", pt: core.NewRecPartS()},
		{name: "CSIO", pt: csio.New()},
		{name: "1-Bucket", pt: onebucket.New()},
	} {
		cell := cfg.run(spec, s, tt, band, cfg.Workers)
		t.Rows = append(t.Rows, Row{Labels: labels("method", spec.name), Cells: []Cell{cell}})
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// Table6 regenerates Table 6: Grid* versus RecPart on skewed and
// reverse-Pareto data, where Lemma 2 predicts grid partitioning must fail.
func Table6(cfg Config) (*Table, error) {
	start := time.Now()
	specs := []methodSpec{
		{name: "RecPart", pt: core.NewDefault()},
		{name: "Grid*", pt: grid.NewStar()},
	}
	t := &Table{ID: "6", Title: "Grid* vs RecPart on skewed and reverse-Pareto data", Paper: "Table 6", Methods: methodNames(specs)}

	s, tt := cfg.pareto(3, 2.0)
	t.Rows = append(t.Rows, cfg.runRow(labels("dataset", "pareto-2.0", "band width", bandString(uniformEps(3, width3D))),
		specs, s, tt, data.Uniform(3, width3D), cfg.Workers))

	s, tt = cfg.reversePareto(3, 1.5)
	for _, eps := range []float64{1000, 2000} {
		t.Rows = append(t.Rows, cfg.runRow(labels("dataset", "rv-pareto-1.5", "band width", bandString(uniformEps(3, eps))),
			specs, s, tt, data.Uniform(3, eps), cfg.Workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 7 / 11: distributed IEJoin

// Table7 regenerates Table 7 / Table 11: RecPart-S versus distributed IEJoin
// over a sweep of sizePerBlock, its key meta-parameter.
func Table7(cfg Config) (*Table, error) {
	start := time.Now()
	t := &Table{ID: "7", Title: "RecPart-S vs distributed IEJoin (sizePerBlock sweep)", Paper: "Table 7 / Table 11", Methods: []string{"result"}}
	total := 2 * cfg.tuples(200)
	blockSizes := []int{total / 100, total / 50, total / 25, total / 12}

	type workload struct {
		name string
		z    float64
		eps  float64
	}
	for _, w := range []workload{{"pareto-1.5", 1.5, width3D}, {"pareto-1.0", 1.0, width3D}, {"pareto-0.5", 0.5, width3D}} {
		s, tt := cfg.pareto(3, w.z)
		band := data.Uniform(3, w.eps)
		cell := cfg.run(methodSpec{name: "RecPart-S", pt: core.NewRecPartS()}, s, tt, band, cfg.Workers)
		t.Rows = append(t.Rows, Row{Labels: labels("dataset", w.name, "method", "RecPart-S"), Cells: []Cell{cell}})
		for _, bs := range blockSizes {
			name := fmt.Sprintf("IEJoin block=%d", bs)
			cell := cfg.run(methodSpec{name: name, pt: iejoin.NewWithBlockSize(bs)}, s, tt, band, cfg.Workers)
			t.Rows = append(t.Rows, Row{Labels: labels("dataset", w.name, "method", name), Cells: []Cell{cell}})
		}
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 8 / 13: local join cost ratio

// Table8 regenerates Table 8 / Table 13: how the ratio β2/β1 (local processing
// cost versus shuffle cost) changes the tradeoff RecPart chooses, while the
// competitors are unaffected.
func Table8(cfg Config) (*Table, error) {
	start := time.Now()
	t := &Table{ID: "8", Title: "Impact of beta2/beta1 on RecPart's chosen tradeoff", Paper: "Table 8 / Table 13", Methods: []string{"RecPart"}}
	s, tt := cfg.ebirdCloud()
	band := data.Uniform(3, 2)

	for _, ratio := range []float64{1e-4, 1e-2, 1, 1e2, 1e4} {
		model := cfg.Model.WithShuffleWeight(ratio)
		c := cfg
		c.Model = model
		cell := c.run(methodSpec{name: "RecPart", pt: core.NewDefault()}, s, tt, band, cfg.Workers)
		t.Rows = append(t.Rows, Row{Labels: labels("beta2/beta1", fmt.Sprintf("%g", ratio)), Cells: []Cell{cell}})
	}
	// Reference rows: the competitors do not depend on the ratio.
	for _, spec := range []methodSpec{
		{name: "CSIO", pt: csio.New()},
		{name: "1-Bucket", pt: onebucket.New()},
		{name: "Grid-eps", pt: grid.New()},
	} {
		cell := cfg.run(spec, s, tt, band, cfg.Workers)
		t.Rows = append(t.Rows, Row{Labels: labels("beta2/beta1", "n/a ("+spec.name+")"), Cells: []Cell{cell}})
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 9 / 14: symmetric partitioning

// Table9 regenerates Table 9 / Table 14: RecPart-S versus RecPart. The gap is
// small when dense regions of S and T coincide and large on reverse-Pareto
// data, where only symmetric splits avoid duplicating the dense relation.
func Table9(cfg Config) (*Table, error) {
	start := time.Now()
	specs := []methodSpec{
		{name: "RecPart-S", pt: core.NewRecPartS()},
		{name: "RecPart", pt: core.NewDefault()},
	}
	t := &Table{ID: "9", Title: "RecPart-S vs RecPart (symmetric partitioning)", Paper: "Table 9 / Table 14", Methods: methodNames(specs)}

	s, tt := cfg.pareto(3, 1.0)
	t.Rows = append(t.Rows, cfg.runRow(labels("dataset", "pareto-1.0", "band width", bandString(uniformEps(3, width3D))),
		specs, s, tt, data.Uniform(3, width3D), cfg.Workers))

	s, tt = cfg.ebirdCloud()
	for _, eps := range []float64{0, 2, 4} {
		t.Rows = append(t.Rows, cfg.runRow(labels("dataset", "ebird and cloud", "band width", bandString(uniformEps(3, eps))),
			specs, s, tt, data.Uniform(3, eps), cfg.Workers))
	}

	s, tt = cfg.reversePareto(3, 1.5)
	for _, eps := range []float64{1000, 2000} {
		t.Rows = append(t.Rows, cfg.runRow(labels("dataset", "rv-pareto-1.5", "band width", bandString(uniformEps(3, eps))),
			specs, s, tt, data.Uniform(3, eps), cfg.Workers))
	}
	s, tt = cfg.reversePareto(1, 1.5)
	for _, eps := range []float64{2, 1000} {
		t.Rows = append(t.Rows, cfg.runRow(labels("dataset", "rv-pareto-1.5 (1D)", "band width", bandString([]float64{eps})),
			specs, s, tt, data.Symmetric(eps), cfg.Workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 12 / Figure 9: running-time model accuracy

// measuredSeconds is the quantity the running-time model predicts in this
// reproduction: shuffle time plus the simulated makespan (max per-worker local
// join time).
func measuredSeconds(r *exec.Result) float64 {
	return r.ShuffleTime.Seconds() + r.Makespan.Seconds()
}

// Table12 regenerates Table 12 and Figure 9. As in the paper, the model is
// first fit offline on a benchmark of training queries (here: half-scale
// workloads executed on the same simulator), then every evaluation
// configuration is both predicted from its (I, Im, Om) and measured, and the
// relative errors form the Figure 9 CDF.
func Table12(cfg Config) (*Table, error) {
	start := time.Now()
	specs := standardMethods(true)
	t := &Table{ID: "12", Title: "Running-time model accuracy (predicted vs measured)", Paper: "Table 12 / Figure 9", Methods: []string{"result"}}

	// --- Offline profiling: training queries at half scale, several methods,
	// regressing measured time on (1, I, Im, Om).
	trainCfg := cfg
	trainCfg.BaseTuples = cfg.BaseTuples / 2
	if trainCfg.BaseTuples < 1000 {
		trainCfg.BaseTuples = 1000
	}
	var features [][]float64
	var times []float64
	trainSpecs := []methodSpec{
		{name: "RecPart-S", pt: core.NewRecPartS()},
		{name: "1-Bucket", pt: onebucket.New()},
		{name: "Grid-eps", pt: grid.New()},
	}
	addTraining := func(s, tt *data.Relation, band data.Band) {
		for _, spec := range trainSpecs {
			if band.IsEquiJoin() && spec.name == "Grid-eps" {
				continue
			}
			cell := trainCfg.run(spec, s, tt, band, cfg.Workers)
			if cell.Err != nil || cell.Result == nil {
				continue
			}
			r := cell.Result
			features = append(features, []float64{1, float64(r.TotalInput), float64(r.Im), float64(r.Om)})
			times = append(times, measuredSeconds(r))
		}
	}
	sTr, tTr := trainCfg.pareto(3, 1.5)
	for _, eps := range []float64{0.02, 0.05} {
		addTraining(sTr, tTr, data.Uniform(3, eps))
	}
	sTr2, tTr2 := trainCfg.pareto(3, 1.0)
	addTraining(sTr2, tTr2, data.Uniform(3, width3D))
	sTr3, tTr3 := trainCfg.pareto(1, 1.5)
	addTraining(sTr3, tTr3, data.Symmetric(widths1D[2]))
	se0, te0 := trainCfg.ebirdCloudSized(trainCfg.tuples(254), trainCfg.tuples(191))
	addTraining(se0, te0, data.Uniform(3, 1))

	coef, err := costmodel.NonNegativeLeastSquares(features, times)
	if err != nil {
		return nil, fmt.Errorf("bench: fitting the running-time model: %w", err)
	}
	predict := func(r *exec.Result) float64 {
		return coef[0] + coef[1]*float64(r.TotalInput) + coef[2]*float64(r.Im) + coef[3]*float64(r.Om)
	}

	// --- Evaluation queries at full scale.
	type wkl struct {
		name string
		s, t *data.Relation
		band data.Band
	}
	var wkls []wkl
	s3, t3 := cfg.pareto(3, 1.5)
	for _, eps := range widths3D[1:] {
		wkls = append(wkls, wkl{fmt.Sprintf("pareto-1.5 %s", bandString(uniformEps(3, eps))), s3, t3, data.Uniform(3, eps)})
	}
	sz, tz := cfg.pareto(3, 2.0)
	wkls = append(wkls, wkl{"pareto-2.0 " + bandString(uniformEps(3, width3D)), sz, tz, data.Uniform(3, width3D)})
	se, te := cfg.ebirdCloud()
	wkls = append(wkls, wkl{"ebird x cloud (1,1,1)", se, te, data.Uniform(3, 1)})

	var errsAbs []float64
	rankAgreements, rankTotal := 0, 0
	for _, w := range wkls {
		bestPredicted, bestMeasured := "", ""
		bestPredVal, bestMeasVal := math.Inf(1), math.Inf(1)
		for _, spec := range specs {
			if w.band.IsEquiJoin() && (spec.name == "Grid-eps" || spec.name == "Grid*") {
				continue
			}
			cell := cfg.run(spec, w.s, w.t, w.band, cfg.Workers)
			if cell.Err != nil {
				t.Rows = append(t.Rows, Row{Labels: labels("workload", w.name, "method", spec.name, "error", "failed"), Cells: []Cell{cell}})
				continue
			}
			measured := measuredSeconds(cell.Result)
			predicted := predict(cell.Result)
			relErr := 0.0
			if measured > 0 {
				relErr = math.Abs(predicted-measured) / measured
			}
			errsAbs = append(errsAbs, relErr)
			if predicted < bestPredVal {
				bestPredVal, bestPredicted = predicted, spec.name
			}
			if measured < bestMeasVal {
				bestMeasVal, bestMeasured = measured, spec.name
			}
			t.Rows = append(t.Rows, Row{
				Labels: labels(
					"workload", w.name,
					"method", spec.name,
					"predicted [s]", fmt.Sprintf("%.4f", predicted),
					"measured [s]", fmt.Sprintf("%.4f", measured),
					"error", fmt.Sprintf("%.1f%%", 100*relErr),
				),
				Cells: []Cell{cell},
			})
		}
		if bestPredicted != "" {
			rankTotal++
			if bestPredicted == bestMeasured {
				rankAgreements++
			}
		}
	}
	// The property RecPart needs from the model (Section 6.9): it must rank
	// partitionings correctly, i.e. identify the fastest method.
	t.Rows = append(t.Rows, Row{Labels: labels("workload", "ranking", "method", "model picks the fastest method",
		"predicted [s]", "", "measured [s]", "", "error", fmt.Sprintf("%d of %d workloads", rankAgreements, rankTotal))})
	// Figure 9: cumulative distribution of the absolute relative error.
	for _, threshold := range []float64{0.2, 0.4, 0.73} {
		within := 0
		for _, e := range errsAbs {
			if e <= threshold {
				within++
			}
		}
		pct := 0.0
		if len(errsAbs) > 0 {
			pct = 100 * float64(within) / float64(len(errsAbs))
		}
		t.Rows = append(t.Rows, Row{Labels: labels("workload", "Figure 9 CDF", "method", fmt.Sprintf("error <= %.2f", threshold),
			"error", fmt.Sprintf("%.0f%% of runs", pct))})
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 15: dimensionality

// Table15 regenerates Table 15: pareto-1.5 with the same per-dimension band
// width as the dimensionality grows from 1 to 8.
func Table15(cfg Config) (*Table, error) {
	start := time.Now()
	t := &Table{ID: "15", Title: "Multidimensional joins: pareto-1.5, d = 1..8", Paper: "Table 15", Methods: []string{"RecPart", "CSIO", "1-Bucket", "Grid-eps"}}
	eps := 0.05
	for _, d := range []int{1, 2, 4, 8} {
		s, tt := cfg.pareto(d, 1.5)
		band := data.Uniform(d, eps)
		var row Row
		if d >= 8 {
			specs := []methodSpec{
				{name: "RecPart", pt: core.NewDefault(), estimateOnly: true},
				{name: "CSIO", pt: csio.New(), estimateOnly: true},
				{name: "1-Bucket", pt: onebucket.New(), estimateOnly: true},
			}
			row = cfg.runRow(labels("d", fmt.Sprint(d)), specs, s, tt, band, cfg.Workers)
			row.Cells = append(row.Cells, cfg.gridAnalytic(s, tt, band, cfg.Workers))
		} else {
			specs := []methodSpec{
				{name: "RecPart", pt: core.NewDefault()},
				{name: "CSIO", pt: csio.New()},
				{name: "1-Bucket", pt: onebucket.New()},
				{name: "Grid-eps", pt: grid.New()},
			}
			row = cfg.runRow(labels("d", fmt.Sprint(d)), specs, s, tt, band, cfg.Workers)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Table 16: PTF with the theoretical termination condition

// Table16 regenerates Table 16: the PTF self-join with RecPart using the
// theoretical termination condition (no cost model), against all competitors.
func Table16(cfg Config) (*Table, error) {
	start := time.Now()
	theoretical := core.DefaultOptions()
	theoretical.Termination = core.TerminateTheoretical
	specs := []methodSpec{
		{name: "RecPart", pt: core.New(theoretical)},
		{name: "CSIO", pt: csio.New()},
		{name: "1-Bucket", pt: onebucket.New()},
		{name: "Grid-eps", pt: grid.New()},
	}
	t := &Table{ID: "16", Title: "PTF self-join with theoretical termination", Paper: "Table 16", Methods: methodNames(specs)}
	s, tt := cfg.ptf()
	for _, eps := range []float64{2.78e-4, 8.33e-4} {
		band := data.Uniform(2, eps)
		t.Rows = append(t.Rows, cfg.runRow(labels("band width", bandString(uniformEps(2, eps))), specs, s, tt, band, cfg.Workers))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

// -----------------------------------------------------------------------------
// Figure 4 / 10: overhead scatter

// Figure4 regenerates the Figure 4 / Figure 10 scatter: for a spread of
// datasets, band widths, and cluster sizes, each method's input-duplication
// overhead (x axis) and max-load overhead (y axis) relative to the Lemma 1
// lower bounds. RecPart's points are expected to stay within roughly 10% of
// both bounds.
func Figure4(cfg Config) (*Table, error) {
	start := time.Now()
	specs := []methodSpec{
		{name: "RecPart", pt: core.NewDefault()},
		{name: "CSIO", pt: csio.New()},
		{name: "1-Bucket", pt: onebucket.New()},
		{name: "Grid-eps", pt: grid.New()},
	}
	t := &Table{ID: "fig4", Title: "Duplication overhead vs max-load overhead (all settings)", Paper: "Figure 4 / Figure 10", Methods: methodNames(specs)}

	type wkl struct {
		name string
		s, t *data.Relation
		band data.Band
		w    int
	}
	var wkls []wkl
	s3, t3 := cfg.pareto(3, 1.5)
	for _, eps := range widths3D[1:] {
		wkls = append(wkls, wkl{"pareto-1.5 " + bandString(uniformEps(3, eps)), s3, t3, data.Uniform(3, eps), cfg.Workers})
	}
	for _, z := range []float64{0.5, 1.0, 2.0} {
		sz, tz := cfg.pareto(3, z)
		wkls = append(wkls, wkl{fmt.Sprintf("pareto-%g %s", z, bandString(uniformEps(3, width3D))), sz, tz, data.Uniform(3, width3D), cfg.Workers})
	}
	s1, t1 := cfg.pareto1D(1.5)
	wkls = append(wkls, wkl{"pareto-1.5 1D", s1, t1, data.Symmetric(widths1D[2]), cfg.Workers})
	se, te := cfg.ebirdCloud()
	wkls = append(wkls, wkl{"ebird x cloud (1,1,1)", se, te, data.Uniform(3, 1), cfg.Workers})
	wkls = append(wkls, wkl{"ebird x cloud (2,2,2)", se, te, data.Uniform(3, 2), cfg.Workers})
	sp, tp := cfg.ptf()
	wkls = append(wkls, wkl{"ptf_objects", sp, tp, data.Uniform(2, 2.78e-4), cfg.Workers})
	if !cfg.Quick {
		wkls = append(wkls, wkl{"pareto-1.5 half cluster", s3, t3, data.Uniform(3, width3D), cfg.Workers / 2})
	}

	for _, w := range wkls {
		t.Rows = append(t.Rows, cfg.runRow(labels("workload", w.name), specs, w.s, w.t, w.band, w.w))
	}
	t.Elapsed = time.Since(start)
	return t, nil
}
