package bench

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"
	"time"

	"bandjoin/internal/exec"
)

func sampleTable() *Table {
	ok := Cell{Method: "RecPart", Result: &exec.Result{
		Partitioner: "RecPart", Workers: 4, Partitions: 8,
		TotalInput: 12345678, Im: 4321, Om: 99,
		DupOverhead: 0.034, LoadOverhead: 0.118,
		OptimizationTime: 12 * time.Millisecond, PredictedTime: 0.5,
	}}
	failed := Cell{Method: "Grid-eps", Err: errors.New("band width is zero")}
	return &Table{
		ID: "demo", Title: "demo table", Paper: "Table X",
		Methods: []string{"RecPart", "Grid-eps"},
		Rows: []Row{
			{Labels: labels("band width", "(1,1)"), Cells: []Cell{ok, failed}},
			{Labels: labels("band width", "(2,2)"), Cells: []Cell{ok}},
		},
	}
}

func TestRenderHandlesFailuresAndAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "failed: band width is zero") {
		t.Errorf("render output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "12.3M") {
		t.Errorf("large counts should use the M suffix:\n%s", out)
	}
	if !strings.Contains(out, "3.4%") || !strings.Contains(out, "11.8%") {
		t.Errorf("overheads missing:\n%s", out)
	}
}

func TestWriteCSVSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleTable()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse: %v", err)
	}
	if len(records) != 4 { // header + 3 cells
		t.Fatalf("expected 4 CSV records, got %d", len(records))
	}
	if records[0][0] != "table" || records[0][2] != "method" {
		t.Errorf("unexpected CSV header %v", records[0])
	}
	for i, rec := range records[1:] {
		if len(rec) != len(records[0]) {
			t.Errorf("record %d has %d fields, header has %d", i+1, len(rec), len(records[0]))
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{{5, "5"}, {9999, "9999"}, {10000, "10.0k"}, {2500000, "2500.0k"}, {10000000, "10.0M"}}
	for _, c := range cases {
		if got := humanCount(c.in); got != c.want {
			t.Errorf("humanCount(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCellColumnsNilResult(t *testing.T) {
	cols := cellColumns(Cell{Method: "x"})
	if len(cols) != 6 {
		t.Fatalf("expected 6 columns, got %d", len(cols))
	}
	for _, c := range cols {
		if c != "-" {
			t.Errorf("nil result should render as '-', got %q", c)
		}
	}
}

func TestSummarizeSkipsFailures(t *testing.T) {
	sum := Summarize(sampleTable())
	if _, ok := sum["Grid-eps"]; ok {
		t.Error("failed cells should not contribute to the summary")
	}
	if got := sum["RecPart"]; got.DupOverhead != 0.034 {
		t.Errorf("summary dup = %g", got.DupOverhead)
	}
}
