package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) not found", e.ID)
		}
	}
	if _, ok := ByID("no-such-table"); ok {
		t.Error("ByID returned an unknown experiment")
	}
}

func TestConfigTuples(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.tuples(200); got != cfg.BaseTuples {
		t.Errorf("tuples(200) = %d, want BaseTuples %d", got, cfg.BaseTuples)
	}
	if got := cfg.tuples(400); got != 2*cfg.BaseTuples {
		t.Errorf("tuples(400) = %d, want %d", got, 2*cfg.BaseTuples)
	}
	if got := cfg.tuples(0.001); got < 500 {
		t.Errorf("tuples floor violated: %d", got)
	}
}

func TestTable2bQuick(t *testing.T) {
	cfg := QuickConfig()
	tbl, err := Table2b(cfg)
	if err != nil {
		t.Fatalf("Table2b: %v", err)
	}
	if len(tbl.Rows) != len(widths3D) {
		t.Fatalf("Table2b produced %d rows, want %d", len(tbl.Rows), len(widths3D))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row.Cells {
			if cell.Err != nil {
				t.Errorf("cell %s failed: %v", cell.Method, cell.Err)
				continue
			}
			if cell.Result.TotalInput < int64(cell.Result.InputS+cell.Result.InputT) {
				t.Errorf("%s total input below |S|+|T|", cell.Method)
			}
		}
	}
	// RecPart-S should never duplicate more than 1-Bucket on this workload.
	for _, row := range tbl.Rows {
		var rec, ob *Cell
		for i := range row.Cells {
			switch row.Cells[i].Method {
			case "RecPart-S":
				rec = &row.Cells[i]
			case "1-Bucket":
				ob = &row.Cells[i]
			}
		}
		if rec != nil && ob != nil && rec.Err == nil && ob.Err == nil {
			if rec.Result.DupOverhead > ob.Result.DupOverhead+0.05 {
				t.Errorf("RecPart-S duplication %.2f exceeds 1-Bucket %.2f",
					rec.Result.DupOverhead, ob.Result.DupOverhead)
			}
		}
	}
	var buf bytes.Buffer
	if err := Render(&buf, tbl); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Table 2b") {
		t.Error("rendered table misses the paper reference")
	}
	buf.Reset()
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 2 {
		t.Errorf("CSV export produced only %d lines", lines)
	}
}

func TestTable6RevealsGridWeakness(t *testing.T) {
	cfg := QuickConfig()
	tbl, err := Table6(cfg)
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	// On reverse-Pareto data RecPart must achieve (much) lower max-worker
	// input than Grid*, the qualitative claim of Table 6 and Lemma 2.
	checked := 0
	for _, row := range tbl.Rows {
		isReverse := false
		for _, l := range row.Labels {
			if l.Name == "dataset" && strings.HasPrefix(l.Value, "rv-pareto") {
				isReverse = true
			}
		}
		if !isReverse {
			continue
		}
		var rec, gs *Cell
		for i := range row.Cells {
			switch row.Cells[i].Method {
			case "RecPart":
				rec = &row.Cells[i]
			case "Grid*":
				gs = &row.Cells[i]
			}
		}
		if rec == nil || gs == nil || rec.Err != nil || gs.Err != nil {
			continue
		}
		checked++
		if rec.Result.Im > gs.Result.Im {
			t.Errorf("RecPart Im=%d not below Grid* Im=%d on reverse Pareto", rec.Result.Im, gs.Result.Im)
		}
	}
	if checked == 0 {
		t.Error("no reverse-Pareto rows were comparable")
	}
}

func TestWorkloadsQuick(t *testing.T) {
	cfg := QuickConfig()
	tbl, err := Workloads(cfg)
	if err != nil {
		t.Fatalf("Workloads: %v", err)
	}
	if len(tbl.Rows) < 10 {
		t.Fatalf("expected at least 10 workload rows, got %d", len(tbl.Rows))
	}
	var buf bytes.Buffer
	if err := Render(&buf, tbl); err != nil {
		t.Fatalf("Render: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	cfg := QuickConfig()
	tbl, err := Table2b(cfg)
	if err != nil {
		t.Fatalf("Table2b: %v", err)
	}
	sum := Summarize(tbl)
	if len(sum) == 0 {
		t.Fatal("Summarize returned no methods")
	}
	if _, ok := sum["RecPart-S"]; !ok {
		t.Error("Summarize misses RecPart-S")
	}
}
