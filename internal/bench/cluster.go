package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"bandjoin/internal/cluster"
	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// ClusterConfig scales the distributed data-plane benchmark: one band-join
// plan executed over real in-process RPC workers twice — once on the retained
// serial coordinator (tuple-at-a-time routing, one blocking Load call per
// chunk, sequential per-worker joins) and once on the pipelined streaming
// plane (shared parallel two-pass routing, per-worker sender goroutines with
// a bounded window of async Load RPCs, parallel worker joins).
type ClusterConfig struct {
	// Tuples is the per-relation input size.
	Tuples int
	// Dims is the number of join attributes.
	Dims int
	// Eps is the symmetric per-dimension band width.
	Eps float64
	// Workers is the number of in-process RPC workers (the acceptance
	// criterion requires at least 2).
	Workers int
	// ChunkSize is the number of tuples per Load RPC.
	ChunkSize int
	// Window is the streaming plane's per-worker in-flight RPC bound.
	Window int
	// Rounds runs each plane this many times and keeps the fastest, damping
	// scheduler noise.
	Rounds int
	// SelfMatch makes T a jittered copy of S (each T tuple within the band of
	// its S counterpart), the paper's PTF-style near-duplicate workload: it
	// guarantees an output of at least |S| pairs at any dimensionality, so
	// the join phase produces real results without dominating the data-plane
	// comparison. When false, S and T are drawn independently.
	SelfMatch bool
	// Seed drives data generation and planning.
	Seed int64
}

// DefaultClusterConfig returns the acceptance-criteria workload: an 8D
// near-duplicate self-match (the paper's highest-dimensional configuration,
// in the style of its PTF astronomy workload) whose shuffle moves ~70 MB
// over the wire and whose join emits one pair per S tuple. High
// dimensionality weights the comparison toward the data plane (routing,
// encoding, transfer, ingest), which is what differs between the planes;
// the join work is identical on both.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Tuples:    500_000,
		Dims:      8,
		Eps:       0.003,
		Workers:   2,
		ChunkSize: 16384,
		Window:    4,
		Rounds:    5,
		SelfMatch: true,
		Seed:      1,
	}
}

// ClusterMeasurement is the timing and wire accounting of one data plane.
type ClusterMeasurement struct {
	// Plane identifies the configuration ("serial" or "streaming").
	Plane string `json:"plane"`
	// WallSeconds is the fastest end-to-end execution (shuffle + joins +
	// aggregation) over the configured rounds; ShuffleSeconds and JoinSeconds
	// are the phases of that round.
	WallSeconds    float64 `json:"wall_seconds"`
	ShuffleSeconds float64 `json:"shuffle_seconds"`
	JoinSeconds    float64 `json:"join_seconds"`
	// ShuffleBytes is wire bytes moved during the shuffle (both directions,
	// post-gob); ShuffleRPCs is the number of Load calls.
	ShuffleBytes int64 `json:"shuffle_bytes"`
	ShuffleRPCs  int64 `json:"shuffle_rpcs"`
	// ShuffleTuplesPerSec is routed tuples (total input I) per second of
	// shuffle time.
	ShuffleTuplesPerSec float64 `json:"shuffle_tuples_per_sec"`
	// Degraded, LostWorkers, and Retries surface the coordinator's fault
	// accounting; all zero on a healthy benchmark run.
	Degraded    bool `json:"degraded,omitempty"`
	LostWorkers int  `json:"lost_workers,omitempty"`
	Retries     int  `json:"retries,omitempty"`
}

// ClusterReport is the machine-readable benchmark artifact
// (BENCH_cluster.json): the distributed-path counterpart of
// BENCH_pipeline.json.
type ClusterReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	Tuples      int     `json:"tuples_per_relation"`
	Dims        int     `json:"dims"`
	Eps         float64 `json:"band_width"`
	Workers     int     `json:"workers"`
	ChunkSize   int     `json:"chunk_size"`
	Window      int     `json:"window"`
	Partitioner string  `json:"partitioner"`
	Partitions  int     `json:"partitions"`
	TotalInput  int64   `json:"total_input"`
	Output      int64   `json:"output_pairs"`

	Serial    ClusterMeasurement `json:"serial"`
	Streaming ClusterMeasurement `json:"streaming"`

	// Speedups are serial / streaming wall-time ratios.
	SpeedupEndToEnd float64 `json:"speedup_end_to_end"`
	SpeedupShuffle  float64 `json:"speedup_shuffle"`
	SpeedupJoin     float64 `json:"speedup_join"`
}

// selfMatchPair generates the paper's PTF-style near-duplicate workload: S is
// Pareto-distributed and each T tuple is a jittered copy of its S counterpart
// within the band, guaranteeing an output of at least |S| pairs at any
// dimensionality. It is shared by the cluster data-plane and engine
// benchmarks.
func selfMatchPair(tuples, dims int, eps float64, seed int64) (*data.Relation, *data.Relation) {
	gen := data.NewPareto(dims, 1.5)
	s := gen.Generate("S", tuples, rand.New(rand.NewSource(seed)))
	rng := rand.New(rand.NewSource(seed + 1))
	t := data.NewRelationCapacity("T", dims, s.Len())
	key := make([]float64, dims)
	for i := 0; i < s.Len(); i++ {
		k := s.Key(i)
		for d := range key {
			key[d] = k[d] + (rng.Float64()-0.5)*eps
		}
		t.AppendKey(key)
	}
	return s, t
}

// RunCluster executes the cluster benchmark on in-process RPC workers. The
// plan is computed once and shared by both planes, so the comparison isolates
// the data plane; both planes must agree exactly on I and the output count.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	if cfg.Tuples <= 0 || cfg.Dims <= 0 {
		return nil, fmt.Errorf("bench: invalid cluster config %+v", cfg)
	}
	if cfg.Workers < 2 {
		cfg.Workers = 2
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	band := data.Uniform(cfg.Dims, cfg.Eps)
	var s, t *data.Relation
	if cfg.SelfMatch {
		s, t = selfMatchPair(cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Seed)
	} else {
		gen := data.NewPareto(cfg.Dims, 1.5)
		s = gen.Generate("S", cfg.Tuples, rand.New(rand.NewSource(cfg.Seed)))
		t = gen.Generate("T", cfg.Tuples, rand.New(rand.NewSource(cfg.Seed+1)))
	}

	lc, err := cluster.StartLocal(cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("bench: starting workers: %w", err)
	}
	defer lc.Stop()
	coord, err := cluster.Dial(lc.Addrs())
	if err != nil {
		return nil, fmt.Errorf("bench: dialing workers: %w", err)
	}
	defer coord.Close()

	pt := core.NewRecPartS()
	smp, err := sample.Draw(s, t, band, sample.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("bench: sampling: %w", err)
	}
	ctx := &partition.Context{Band: band, Workers: cfg.Workers, Sample: smp, Model: costmodel.Default(), Seed: cfg.Seed}
	plan, err := pt.Plan(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: planning: %w", err)
	}

	serialOpts := cluster.Options{Serial: true, ChunkSize: cfg.ChunkSize}
	streamOpts := cluster.Options{ChunkSize: cfg.ChunkSize, Window: cfg.Window}

	serial, serialRes, err := measureCluster(coord, plan, ctx, s, t, band, serialOpts, cfg.Rounds, "serial")
	if err != nil {
		return nil, err
	}
	stream, streamRes, err := measureCluster(coord, plan, ctx, s, t, band, streamOpts, cfg.Rounds, "streaming")
	if err != nil {
		return nil, err
	}
	if serialRes.Output != streamRes.Output || serialRes.TotalInput != streamRes.TotalInput {
		return nil, fmt.Errorf("bench: planes disagree: serial (I=%d, out=%d) vs streaming (I=%d, out=%d)",
			serialRes.TotalInput, serialRes.Output, streamRes.TotalInput, streamRes.Output)
	}

	rep := &ClusterReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Tuples:      cfg.Tuples,
		Dims:        cfg.Dims,
		Eps:         cfg.Eps,
		Workers:     cfg.Workers,
		ChunkSize:   cfg.ChunkSize,
		Window:      cfg.Window,
		Partitioner: pt.Name(),
		Partitions:  streamRes.Partitions,
		TotalInput:  streamRes.TotalInput,
		Output:      streamRes.Output,
		Serial:      serial,
		Streaming:   stream,
	}
	rep.SpeedupEndToEnd = ratio(serial.WallSeconds, stream.WallSeconds)
	rep.SpeedupShuffle = ratio(serial.ShuffleSeconds, stream.ShuffleSeconds)
	rep.SpeedupJoin = ratio(serial.JoinSeconds, stream.JoinSeconds)
	return rep, nil
}

// measureCluster runs RunPlan rounds times and keeps the fastest round by
// end-to-end wall time.
func measureCluster(coord *cluster.Coordinator, plan partition.Plan, ctx *partition.Context, s, t *data.Relation, band data.Band, opts cluster.Options, rounds int, plane string) (ClusterMeasurement, *exec.Result, error) {
	var best *exec.Result
	var bestWall time.Duration
	for r := 0; r < rounds; r++ {
		// Level the heap across rounds and planes: on small machines GC debt
		// from a previous round otherwise bleeds into the next measurement.
		runtime.GC()
		start := time.Now()
		res, err := coord.RunPlan(context.Background(), plan, ctx, s, t, band, opts)
		wall := time.Since(start)
		if err != nil {
			return ClusterMeasurement{}, nil, fmt.Errorf("bench: %s RunPlan: %w", plane, err)
		}
		if best == nil || wall < bestWall {
			best, bestWall = res, wall
		}
	}
	m := ClusterMeasurement{
		Plane:          plane,
		WallSeconds:    bestWall.Seconds(),
		ShuffleSeconds: best.ShuffleTime.Seconds(),
		JoinSeconds:    best.JoinWallTime.Seconds(),
		ShuffleBytes:   best.ShuffleBytes,
		ShuffleRPCs:    best.ShuffleRPCs,
		Degraded:       best.Degraded,
		LostWorkers:    best.LostWorkers,
		Retries:        best.Retries,
	}
	if m.ShuffleSeconds > 0 {
		m.ShuffleTuplesPerSec = float64(best.TotalInput) / m.ShuffleSeconds
	}
	return m, best, nil
}

// WriteClusterJSON writes the report as indented JSON.
func WriteClusterJSON(w io.Writer, rep *ClusterReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
