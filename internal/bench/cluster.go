package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"bandjoin/internal/cluster"
	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// ClusterConfig scales the distributed data-plane benchmark: one band-join
// plan executed over real in-process RPC workers twice — once on the retained
// serial coordinator (tuple-at-a-time routing, one blocking Load call per
// chunk, sequential per-worker joins) and once on the pipelined streaming
// plane (shared parallel two-pass routing, per-worker sender goroutines with
// a bounded window of async Load RPCs, parallel worker joins).
type ClusterConfig struct {
	// Tuples is the per-relation input size.
	Tuples int
	// Dims is the number of join attributes.
	Dims int
	// Eps is the symmetric per-dimension band width.
	Eps float64
	// Workers is the number of in-process RPC workers (the acceptance
	// criterion requires at least 2).
	Workers int
	// ChunkSize is the number of tuples per Load RPC.
	ChunkSize int
	// Window is the streaming plane's per-worker in-flight RPC bound.
	Window int
	// Rounds runs each plane this many times and keeps the fastest, damping
	// scheduler noise.
	Rounds int
	// SelfMatch makes T a jittered copy of S (each T tuple within the band of
	// its S counterpart), the paper's PTF-style near-duplicate workload: it
	// guarantees an output of at least |S| pairs at any dimensionality, so
	// the join phase produces real results without dominating the data-plane
	// comparison. When false, S and T are drawn independently.
	SelfMatch bool
	// KeyDecimals quantizes every generated key to this many decimal places,
	// modelling the fixed-precision coordinates real survey data ships (the
	// paper's PTF workload). Fixed precision is what the columnar scaled-int
	// wire encodings are built for; full-entropy float64 mantissas are
	// incompressible by any codec. Negative disables quantization. The
	// self-match guarantee survives quantization as long as 10^-KeyDecimals
	// ≤ Eps (jitter ≤ Eps/2 plus half an ulp of the grid stays in the band).
	KeyDecimals int
	// Compression selects the streaming plane's wire encoding ("" = auto).
	// The benchmark always also measures the v1 packed plane
	// (compression=off) on the same plan as the wire-size baseline and
	// pair-level equivalence oracle.
	Compression string
	// Seed drives data generation and planning.
	Seed int64
}

// DefaultClusterConfig returns the acceptance-criteria workload: an 8D
// near-duplicate self-match (the paper's highest-dimensional configuration,
// in the style of its PTF astronomy workload) whose shuffle moves ~70 MB
// over the wire and whose join emits one pair per S tuple. High
// dimensionality weights the comparison toward the data plane (routing,
// encoding, transfer, ingest), which is what differs between the planes;
// the join work is identical on both.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Tuples:      500_000,
		Dims:        8,
		Eps:         0.003,
		Workers:     2,
		ChunkSize:   16384,
		Window:      4,
		Rounds:      5,
		SelfMatch:   true,
		KeyDecimals: 3,
		Seed:        1,
	}
}

// ClusterMeasurement is the timing and wire accounting of one data plane.
type ClusterMeasurement struct {
	// Plane identifies the configuration ("serial" or "streaming").
	Plane string `json:"plane"`
	// WallSeconds is the fastest end-to-end execution (shuffle + joins +
	// aggregation) over the configured rounds; ShuffleSeconds and JoinSeconds
	// are the phases of that round.
	WallSeconds    float64 `json:"wall_seconds"`
	ShuffleSeconds float64 `json:"shuffle_seconds"`
	JoinSeconds    float64 `json:"join_seconds"`
	// ShuffleBytes is wire bytes moved during the shuffle (both directions,
	// post-gob); ShuffleRPCs is the number of Load calls. ShuffleRawBytes is
	// the uncompressed row-major footprint of the same tuples — raw/wire is
	// the effective compression ratio of the plane's encoding.
	ShuffleBytes    int64 `json:"shuffle_bytes"`
	ShuffleRawBytes int64 `json:"shuffle_raw_bytes"`
	ShuffleRPCs     int64 `json:"shuffle_rpcs"`
	// ShuffleTuplesPerSec is routed tuples (total input I) per second of
	// shuffle time.
	ShuffleTuplesPerSec float64 `json:"shuffle_tuples_per_sec"`
	// Degraded, LostWorkers, and Retries surface the coordinator's fault
	// accounting; all zero on a healthy benchmark run.
	Degraded    bool `json:"degraded,omitempty"`
	LostWorkers int  `json:"lost_workers,omitempty"`
	Retries     int  `json:"retries,omitempty"`
}

// ClusterReport is the machine-readable benchmark artifact
// (BENCH_cluster.json): the distributed-path counterpart of
// BENCH_pipeline.json.
type ClusterReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	Tuples      int     `json:"tuples_per_relation"`
	Dims        int     `json:"dims"`
	Eps         float64 `json:"band_width"`
	Workers     int     `json:"workers"`
	ChunkSize   int     `json:"chunk_size"`
	Window      int     `json:"window"`
	KeyDecimals int     `json:"key_decimals"`
	Compression string  `json:"compression"`
	Partitioner string  `json:"partitioner"`
	Partitions  int     `json:"partitions"`
	TotalInput  int64   `json:"total_input"`
	Output      int64   `json:"output_pairs"`

	// Serial is the v1 tuple-at-a-time oracle plane. StreamingOff is the
	// streaming plane with compression=off (v1 packed chunks) — the wire-size
	// baseline. Streaming is the streaming plane under the configured
	// compression mode.
	Serial       ClusterMeasurement `json:"serial"`
	StreamingOff ClusterMeasurement `json:"streaming_off"`
	Streaming    ClusterMeasurement `json:"streaming"`

	// CompressionRatio is StreamingOff.ShuffleBytes / Streaming.ShuffleBytes:
	// how much smaller the columnar compressed shuffle is than the packed v1
	// shuffle for the same tuples.
	CompressionRatio float64 `json:"compression_ratio"`

	// PairsChecked result pairs were compared bit-for-bit between a
	// compression=off run and a compressed run of a subsample-sized rerun of
	// the workload (full-size runs only compare output cardinalities, which
	// the timed planes must also agree on).
	PairsChecked   int  `json:"pairs_checked"`
	PairsIdentical bool `json:"pairs_identical"`

	// Speedups are serial / streaming wall-time ratios.
	SpeedupEndToEnd float64 `json:"speedup_end_to_end"`
	SpeedupShuffle  float64 `json:"speedup_shuffle"`
	SpeedupJoin     float64 `json:"speedup_join"`
}

// quantizeKeys rounds every key of r to the given number of decimal places in
// place; negative decimals is a no-op.
func quantizeKeys(r *data.Relation, decimals int) {
	if decimals < 0 {
		return
	}
	scale := math.Pow(10, float64(decimals))
	keys := r.KeysRange(0, r.Len())
	for i, k := range keys {
		keys[i] = math.Round(k*scale) / scale
	}
}

// selfMatchPair generates the paper's PTF-style near-duplicate workload: S is
// Pareto-distributed and each T tuple is a jittered copy of its S counterpart
// within the band, guaranteeing an output of at least |S| pairs at any
// dimensionality. It is shared by the cluster data-plane and engine
// benchmarks. Non-negative decimals quantize both relations to that many
// decimal places; S is quantized before T is derived, so as long as
// 10^-decimals ≤ eps the jitter (≤ eps/2) plus T's own rounding error
// (≤ 10^-decimals/2) keeps every T tuple within the band of its S
// counterpart and the output floor of |S| pairs survives.
func selfMatchPair(tuples, dims int, eps float64, seed int64, decimals int) (*data.Relation, *data.Relation) {
	gen := data.NewPareto(dims, 1.5)
	s := gen.Generate("S", tuples, rand.New(rand.NewSource(seed)))
	quantizeKeys(s, decimals)
	rng := rand.New(rand.NewSource(seed + 1))
	t := data.NewRelationCapacity("T", dims, s.Len())
	key := make([]float64, dims)
	for i := 0; i < s.Len(); i++ {
		k := s.Key(i)
		for d := range key {
			key[d] = k[d] + (rng.Float64()-0.5)*eps
		}
		t.AppendKey(key)
	}
	quantizeKeys(t, decimals)
	return s, t
}

// RunCluster executes the cluster benchmark on in-process RPC workers. The
// plan is computed once and shared by both planes, so the comparison isolates
// the data plane; both planes must agree exactly on I and the output count.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	if cfg.Tuples <= 0 || cfg.Dims <= 0 {
		return nil, fmt.Errorf("bench: invalid cluster config %+v", cfg)
	}
	if cfg.Workers < 2 {
		cfg.Workers = 2
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	band := data.Uniform(cfg.Dims, cfg.Eps)
	var s, t *data.Relation
	if cfg.SelfMatch {
		s, t = selfMatchPair(cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Seed, cfg.KeyDecimals)
	} else {
		gen := data.NewPareto(cfg.Dims, 1.5)
		s = gen.Generate("S", cfg.Tuples, rand.New(rand.NewSource(cfg.Seed)))
		t = gen.Generate("T", cfg.Tuples, rand.New(rand.NewSource(cfg.Seed+1)))
		quantizeKeys(s, cfg.KeyDecimals)
		quantizeKeys(t, cfg.KeyDecimals)
	}

	lc, err := cluster.StartLocal(cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("bench: starting workers: %w", err)
	}
	defer lc.Stop()
	coord, err := cluster.Dial(lc.Addrs())
	if err != nil {
		return nil, fmt.Errorf("bench: dialing workers: %w", err)
	}
	defer coord.Close()

	pt := core.NewRecPartS()
	smp, err := sample.Draw(s, t, band, sample.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("bench: sampling: %w", err)
	}
	ctx := &partition.Context{Band: band, Workers: cfg.Workers, Sample: smp, Model: costmodel.Default(), Seed: cfg.Seed}
	plan, err := pt.Plan(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: planning: %w", err)
	}

	serialOpts := cluster.Options{Serial: true, ChunkSize: cfg.ChunkSize}
	offOpts := cluster.Options{ChunkSize: cfg.ChunkSize, Window: cfg.Window, Compression: "off"}
	streamOpts := cluster.Options{ChunkSize: cfg.ChunkSize, Window: cfg.Window, Compression: cfg.Compression}

	serial, serialRes, err := measureCluster(coord, plan, ctx, s, t, band, serialOpts, cfg.Rounds, "serial")
	if err != nil {
		return nil, err
	}
	off, offRes, err := measureCluster(coord, plan, ctx, s, t, band, offOpts, cfg.Rounds, "streaming-off")
	if err != nil {
		return nil, err
	}
	stream, streamRes, err := measureCluster(coord, plan, ctx, s, t, band, streamOpts, cfg.Rounds, "streaming")
	if err != nil {
		return nil, err
	}
	if serialRes.Output != streamRes.Output || serialRes.TotalInput != streamRes.TotalInput ||
		offRes.Output != streamRes.Output || offRes.TotalInput != streamRes.TotalInput {
		return nil, fmt.Errorf("bench: planes disagree: serial (I=%d, out=%d) vs off (I=%d, out=%d) vs streaming (I=%d, out=%d)",
			serialRes.TotalInput, serialRes.Output, offRes.TotalInput, offRes.Output, streamRes.TotalInput, streamRes.Output)
	}

	// Pair-level identity between the compression=off oracle and the
	// compressed plane, on a subsample-sized rerun so pair collection stays
	// tractable at benchmark scale.
	checked, identical, err := clusterPairCheck(coord, cfg, band)
	if err != nil {
		return nil, err
	}
	if !identical {
		return nil, fmt.Errorf("bench: compressed pairs differ from the compression=off oracle pairs")
	}

	rep := &ClusterReport{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Tuples:         cfg.Tuples,
		Dims:           cfg.Dims,
		Eps:            cfg.Eps,
		Workers:        cfg.Workers,
		ChunkSize:      cfg.ChunkSize,
		Window:         cfg.Window,
		KeyDecimals:    cfg.KeyDecimals,
		Compression:    compressionName(cfg.Compression),
		Partitioner:    pt.Name(),
		Partitions:     streamRes.Partitions,
		TotalInput:     streamRes.TotalInput,
		Output:         streamRes.Output,
		Serial:         serial,
		StreamingOff:   off,
		Streaming:      stream,
		PairsChecked:   checked,
		PairsIdentical: identical,
	}
	rep.CompressionRatio = ratio(float64(off.ShuffleBytes), float64(stream.ShuffleBytes))
	rep.SpeedupEndToEnd = ratio(serial.WallSeconds, stream.WallSeconds)
	rep.SpeedupShuffle = ratio(serial.ShuffleSeconds, stream.ShuffleSeconds)
	rep.SpeedupJoin = ratio(serial.JoinSeconds, stream.JoinSeconds)
	return rep, nil
}

func compressionName(mode string) string {
	if mode == "" {
		return "auto"
	}
	return mode
}

// clusterPairCheck reruns the workload at a reduced size with pair collection
// on, once under compression=off and once under the configured mode, and
// compares the result pairs bit-for-bit (as sorted multisets — the parallel
// worker joins do not define a global pair order).
func clusterPairCheck(coord *cluster.Coordinator, cfg ClusterConfig, band data.Band) (int, bool, error) {
	tuples := cfg.Tuples
	if tuples > 50_000 {
		tuples = 50_000
	}
	small := cfg
	small.Tuples = tuples
	var s, t *data.Relation
	if small.SelfMatch {
		s, t = selfMatchPair(small.Tuples, small.Dims, small.Eps, small.Seed, small.KeyDecimals)
	} else {
		gen := data.NewPareto(small.Dims, 1.5)
		s = gen.Generate("S", small.Tuples, rand.New(rand.NewSource(small.Seed)))
		t = gen.Generate("T", small.Tuples, rand.New(rand.NewSource(small.Seed+1)))
		quantizeKeys(s, small.KeyDecimals)
		quantizeKeys(t, small.KeyDecimals)
	}
	run := func(mode string) ([]exec.Pair, error) {
		res, err := coord.Run(context.Background(), core.NewRecPartS(), s, t, band, cluster.Options{
			ChunkSize:    small.ChunkSize,
			Window:       small.Window,
			Compression:  mode,
			CollectPairs: true,
			Seed:         small.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: pair-check run (compression=%s): %w", compressionName(mode), err)
		}
		pairs := res.Pairs
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].S != pairs[j].S {
				return pairs[i].S < pairs[j].S
			}
			return pairs[i].T < pairs[j].T
		})
		return pairs, nil
	}
	oracle, err := run("off")
	if err != nil {
		return 0, false, err
	}
	got, err := run(cfg.Compression)
	if err != nil {
		return 0, false, err
	}
	if len(oracle) != len(got) {
		return len(oracle), false, nil
	}
	for i := range oracle {
		if oracle[i] != got[i] {
			return len(oracle), false, nil
		}
	}
	return len(oracle), true, nil
}

// measureCluster runs RunPlan rounds times and keeps the fastest round by
// end-to-end wall time.
func measureCluster(coord *cluster.Coordinator, plan partition.Plan, ctx *partition.Context, s, t *data.Relation, band data.Band, opts cluster.Options, rounds int, plane string) (ClusterMeasurement, *exec.Result, error) {
	var best *exec.Result
	var bestWall time.Duration
	// Per-phase minima are tracked independently of the fastest end-to-end
	// round: on loaded or single-core machines the scheduler assigns noise to
	// shuffle in one round and join in the next, and reporting the fastest
	// round's coupled split would amplify that noise into the phase ratios.
	var bestShuffle, bestJoin time.Duration
	for r := 0; r < rounds; r++ {
		// Level the heap across rounds and planes: on small machines GC debt
		// from a previous round otherwise bleeds into the next measurement.
		runtime.GC()
		start := time.Now()
		res, err := coord.RunPlan(context.Background(), plan, ctx, s, t, band, opts)
		wall := time.Since(start)
		if err != nil {
			return ClusterMeasurement{}, nil, fmt.Errorf("bench: %s RunPlan: %w", plane, err)
		}
		if best == nil || wall < bestWall {
			best, bestWall = res, wall
		}
		if r == 0 || res.ShuffleTime < bestShuffle {
			bestShuffle = res.ShuffleTime
		}
		if r == 0 || res.JoinWallTime < bestJoin {
			bestJoin = res.JoinWallTime
		}
	}
	m := ClusterMeasurement{
		Plane:           plane,
		WallSeconds:     bestWall.Seconds(),
		ShuffleSeconds:  bestShuffle.Seconds(),
		JoinSeconds:     bestJoin.Seconds(),
		ShuffleBytes:    best.ShuffleBytes,
		ShuffleRawBytes: best.ShuffleRawBytes,
		ShuffleRPCs:     best.ShuffleRPCs,
		Degraded:        best.Degraded,
		LostWorkers:     best.LostWorkers,
		Retries:         best.Retries,
	}
	if m.ShuffleSeconds > 0 {
		m.ShuffleTuplesPerSec = float64(best.TotalInput) / m.ShuffleSeconds
	}
	return m, best, nil
}

// WriteClusterJSON writes the report as indented JSON.
func WriteClusterJSON(w io.Writer, rep *ClusterReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
