package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/sample"
)

// ScalingConfig scales the GOMAXPROCS sweep: every pipeline tier is measured
// at 1, 2, 4, … up to NumCPU procs, so the report shows how each tier's
// parallelism actually pays off on the machine it runs on.
type ScalingConfig struct {
	// Tuples is the per-relation input size.
	Tuples int
	// Dims is the number of join attributes.
	Dims int
	// Eps is the symmetric per-dimension band width.
	Eps float64
	// Workers is the simulated worker count the plan targets.
	Workers int
	// Rounds runs each tier this many times per procs value and keeps the
	// fastest.
	Rounds int
	// MaxProcs caps the sweep (0 = NumCPU). The sweep doubles from 1 and
	// always includes the cap itself.
	MaxProcs int
	// Procs, when non-empty, replaces the doubling sweep with this exact
	// GOMAXPROCS list. Values above NumCPU are allowed — GOMAXPROCS can
	// oversubscribe the cores, which is how a 1-CPU CI runner still measures
	// the schedule-level effect of the morsel path (more runnable goroutines
	// sharing one core), even though wall-clock speedups need real cores.
	Procs []int
	// Seed drives data generation and planning.
	Seed int64
}

// DefaultScalingConfig returns a self-match workload big enough that every
// tier's parallel sections dominate their fixed overheads, small enough that
// the full sweep finishes in CI.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Tuples:  250_000,
		Dims:    4,
		Eps:     0.003,
		Workers: 8,
		Rounds:  3,
		Seed:    1,
	}
}

// ScalingPoint is one tier measurement at one GOMAXPROCS value.
type ScalingPoint struct {
	Procs       int     `json:"gomaxprocs"`
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is this tier's procs=1 wall time divided by this point's;
	// Efficiency is Speedup/Procs (1.0 = perfect linear scaling).
	Speedup    float64 `json:"speedup_vs_1"`
	Efficiency float64 `json:"parallel_efficiency"`
}

// ScalingTier is one pipeline stage's sweep.
type ScalingTier struct {
	// Tier names the stage: "shuffle" (parallel two-pass routing), "join"
	// (the morsel-driven reduce phase over pre-shuffled partitions),
	// "join-per-partition" (the retained one-goroutine-per-partition reduce
	// path, the skew baseline the morsel tier is compared against), "planner"
	// (RecPart optimization with parallel best-split evaluation), "engine"
	// (the full in-process query: sample + plan + shuffle + join).
	Tier   string         `json:"tier"`
	Points []ScalingPoint `json:"points"`
}

// ScalingReport is the machine-readable artifact (BENCH_scaling.json).
type ScalingReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`

	Tuples  int     `json:"tuples_per_relation"`
	Dims    int     `json:"dims"`
	Eps     float64 `json:"band_width"`
	Workers int     `json:"workers"`
	Rounds  int     `json:"rounds"`
	Procs   []int   `json:"procs_sweep"`

	Tiers []ScalingTier `json:"tiers"`
}

// procsSweep returns 1, 2, 4, … doubling up to max, always including max.
func procsSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	var procs []int
	for p := 1; p < max; p *= 2 {
		procs = append(procs, p)
	}
	return append(procs, max)
}

// RunScaling sweeps GOMAXPROCS over the pipeline tiers. The plan is computed
// once (plans are bit-identical at any parallelism) and shared by the shuffle
// and join tiers; the planner and engine tiers redo their own work per
// measurement. GOMAXPROCS is restored before returning.
func RunScaling(cfg ScalingConfig) (*ScalingReport, error) {
	if cfg.Tuples <= 0 || cfg.Dims <= 0 {
		return nil, fmt.Errorf("bench: invalid scaling config %+v", cfg)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 8
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	procs := cfg.Procs
	if len(procs) == 0 {
		maxProcs := cfg.MaxProcs
		if maxProcs <= 0 || maxProcs > runtime.NumCPU() {
			maxProcs = runtime.NumCPU()
		}
		procs = procsSweep(maxProcs)
	}
	for _, p := range procs {
		if p < 1 {
			return nil, fmt.Errorf("bench: invalid procs value %d in forced sweep %v", p, procs)
		}
	}

	band := data.Uniform(cfg.Dims, cfg.Eps)
	s, t := selfMatchPair(cfg.Tuples, cfg.Dims, cfg.Eps, cfg.Seed, 3)

	pt := core.NewRecPartS()
	smp, err := sample.Draw(s, t, band, sample.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("bench: sampling: %w", err)
	}
	opts := exec.DefaultOptions(cfg.Workers)
	opts.Seed = cfg.Seed
	prep, err := exec.PlanQuery(pt, smp, band, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: planning: %w", err)
	}

	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	// fastest runs fn cfg.Rounds times and returns the fastest wall time.
	fastest := func(fn func() error) (time.Duration, error) {
		var best time.Duration
		for r := 0; r < cfg.Rounds; r++ {
			runtime.GC()
			start := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if wall := time.Since(start); r == 0 || wall < best {
				best = wall
			}
		}
		return best, nil
	}

	tiers := []ScalingTier{{Tier: "shuffle"}, {Tier: "join"}, {Tier: "join-per-partition"}, {Tier: "planner"}, {Tier: "engine"}}
	optsPP := opts
	optsPP.MorselRows = -1 // the per-partition baseline
	for _, p := range procs {
		runtime.GOMAXPROCS(p)

		// Shuffle and the two join variants share each round: a fresh shuffle
		// feeds the join measurements so the joins never re-sort partitions a
		// previous round already prepared, and the morsel and per-partition
		// paths see identical partitions. Each phase keeps its own fastest
		// round.
		var bestShuffle, bestJoin, bestJoinPP time.Duration
		for r := 0; r < cfg.Rounds; r++ {
			runtime.GC()
			start := time.Now()
			parts, total, err := exec.Shuffle(context.Background(), prep.Plan, s, t, 0)
			shuffleWall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: shuffle at procs=%d: %w", p, err)
			}
			start = time.Now()
			if _, err := exec.ExecuteShuffled(context.Background(), prep.Plan, parts, total, s.Len(), t.Len(), band, opts); err != nil {
				return nil, fmt.Errorf("bench: join at procs=%d: %w", p, err)
			}
			joinWall := time.Since(start)
			start = time.Now()
			if _, err := exec.ExecuteShuffled(context.Background(), prep.Plan, parts, total, s.Len(), t.Len(), band, optsPP); err != nil {
				return nil, fmt.Errorf("bench: per-partition join at procs=%d: %w", p, err)
			}
			joinPPWall := time.Since(start)
			if r == 0 || shuffleWall < bestShuffle {
				bestShuffle = shuffleWall
			}
			if r == 0 || joinWall < bestJoin {
				bestJoin = joinWall
			}
			if r == 0 || joinPPWall < bestJoinPP {
				bestJoinPP = joinPPWall
			}
		}

		planWall, err := fastest(func() error {
			_, err := exec.PlanQuery(pt, smp, band, opts)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: planner at procs=%d: %w", p, err)
		}

		engineWall, err := fastest(func() error {
			_, err := exec.Run(pt, s, t, band, opts)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: engine at procs=%d: %w", p, err)
		}

		for i, wall := range []time.Duration{bestShuffle, bestJoin, bestJoinPP, planWall, engineWall} {
			tiers[i].Points = append(tiers[i].Points, ScalingPoint{
				Procs:       p,
				WallSeconds: wall.Seconds(),
			})
		}
	}

	for i := range tiers {
		base := tiers[i].Points[0].WallSeconds
		for j := range tiers[i].Points {
			q := &tiers[i].Points[j]
			q.Speedup = ratio(base, q.WallSeconds)
			q.Efficiency = q.Speedup / float64(q.Procs)
		}
	}

	return &ScalingReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Tuples:      cfg.Tuples,
		Dims:        cfg.Dims,
		Eps:         cfg.Eps,
		Workers:     cfg.Workers,
		Rounds:      cfg.Rounds,
		Procs:       procs,
		Tiers:       tiers,
	}, nil
}

// WriteScalingJSON writes the report as indented JSON.
func WriteScalingJSON(w io.Writer, rep *ScalingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
