package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunEngineQuick runs the engine benchmark harness on a small workload:
// the warm-partition tier must report zero shuffle traffic, the tiers must
// agree on accounting (enforced inside RunEngine, including the pair-level
// identity check), and the JSON artifact must round-trip.
func TestRunEngineQuick(t *testing.T) {
	cfg := EngineConfig{
		Tuples:    4000,
		Dims:      4,
		Eps:       0.01,
		Workers:   2,
		ChunkSize: 256,
		Window:    3,
		Rounds:    1,
		Seed:      5,
	}
	rep, err := RunEngine(cfg)
	if err != nil {
		t.Fatalf("RunEngine: %v", err)
	}
	if rep.Output <= 0 {
		t.Error("benchmark workload produced no output pairs")
	}
	if rep.Cold.ShuffleBytes <= 0 || rep.Cold.ShuffleRPCs <= 0 {
		t.Errorf("cold wire accounting missing: %d RPCs, %d bytes", rep.Cold.ShuffleRPCs, rep.Cold.ShuffleBytes)
	}
	if rep.WarmPartitions.ShuffleBytes != 0 || rep.WarmPartitions.ShuffleRPCs != 0 {
		t.Errorf("warm-partition tier shuffled: %d RPCs, %d bytes",
			rep.WarmPartitions.ShuffleRPCs, rep.WarmPartitions.ShuffleBytes)
	}
	if !rep.PairsIdentical || rep.PairsChecked <= 0 {
		t.Errorf("pair check: %d pairs, identical=%v", rep.PairsChecked, rep.PairsIdentical)
	}
	if rep.SpeedupWarmPartitions <= 0 {
		t.Errorf("speedup %g must be positive", rep.SpeedupWarmPartitions)
	}

	var buf bytes.Buffer
	if err := WriteEngineJSON(&buf, rep); err != nil {
		t.Fatalf("WriteEngineJSON: %v", err)
	}
	var back EngineReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Output != rep.Output || back.Workers != rep.Workers {
		t.Error("round-tripped report differs")
	}
}
