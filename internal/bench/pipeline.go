package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// PipelineConfig scales the execution-pipeline benchmark: a synthetic
// band-join executed twice on the same plan — once on the retained serial
// reference path (serial shuffle, one local join at a time, baseline
// allocating local-join algorithm) and once on the optimized path (parallel
// two-pass shuffle, GOMAXPROCS-parallel allocation-free local joins).
type PipelineConfig struct {
	// Tuples is the per-relation input size (the acceptance workload is 1M).
	Tuples int
	// Dims is the number of join attributes.
	Dims int
	// Eps is the symmetric per-dimension band width.
	Eps float64
	// Workers is the simulated cluster size.
	Workers int
	// Rounds runs each path this many times and keeps the fastest, damping
	// scheduler noise.
	Rounds int
	// Seed drives data generation and planning.
	Seed int64
	// SkipMicro disables the local-join micro-benchmarks (used by quick
	// harness tests; the micro-benchmarks re-run their function many times).
	SkipMicro bool
}

// DefaultPipelineConfig returns the acceptance-criteria workload:
// 1M x 1M tuples, 2 dimensions (so local joins verify a second dimension and
// no 1D counting shortcut applies), band width tuned for an output of the
// same order as the input.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{Tuples: 1_000_000, Dims: 2, Eps: 0.001, Workers: 30, Rounds: 3, Seed: 1}
}

// PipelineMeasurement is the timing of one execution path.
type PipelineMeasurement struct {
	// Path identifies the configuration ("serial-reference" or "parallel").
	Path string `json:"path"`
	// Algorithm is the local-join algorithm used.
	Algorithm string `json:"algorithm"`
	// ShuffleSeconds, JoinSeconds, TotalSeconds are wall times of the fastest
	// round (Total = Shuffle + Join).
	ShuffleSeconds float64 `json:"shuffle_seconds"`
	JoinSeconds    float64 `json:"join_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`
	// ShuffleTuplesPerSec is routed tuples (total input I, including
	// duplicates) per second of shuffle time.
	ShuffleTuplesPerSec float64 `json:"shuffle_tuples_per_sec"`
	// JoinInputTuplesPerSec is partition input tuples consumed per second of
	// join wall time; JoinOutputPairsPerSec is result pairs per second.
	JoinInputTuplesPerSec float64 `json:"join_input_tuples_per_sec"`
	JoinOutputPairsPerSec float64 `json:"join_output_pairs_per_sec"`
}

// MicroBenchmark is one local-join micro-benchmark result (testing.Benchmark
// over one Join call on a partition-sized input).
type MicroBenchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PipelineReport is the machine-readable benchmark artifact (BENCH_pipeline.json)
// every future PR's numbers are compared against.
type PipelineReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	Tuples      int     `json:"tuples_per_relation"`
	Dims        int     `json:"dims"`
	Eps         float64 `json:"band_width"`
	Workers     int     `json:"workers"`
	Partitioner string  `json:"partitioner"`
	Partitions  int     `json:"partitions"`
	TotalInput  int64   `json:"total_input"`
	Output      int64   `json:"output_pairs"`

	Reference PipelineMeasurement `json:"reference"`
	Optimized PipelineMeasurement `json:"optimized"`

	// Speedups are reference / optimized wall-time ratios.
	SpeedupEndToEnd float64 `json:"speedup_end_to_end"`
	SpeedupShuffle  float64 `json:"speedup_shuffle"`
	SpeedupJoin     float64 `json:"speedup_join"`

	Micro []MicroBenchmark `json:"micro_benchmarks,omitempty"`
}

// RunPipeline executes the pipeline benchmark. The plan is computed once and
// shared by both paths, so the comparison isolates the execution pipeline.
func RunPipeline(cfg PipelineConfig) (*PipelineReport, error) {
	if cfg.Tuples <= 0 || cfg.Dims <= 0 || cfg.Workers <= 0 {
		return nil, fmt.Errorf("bench: invalid pipeline config %+v", cfg)
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	s, t := data.ParetoPair(cfg.Dims, 1.5, cfg.Tuples, cfg.Seed)
	band := data.Uniform(cfg.Dims, cfg.Eps)

	pt := core.NewRecPartS()
	smp, err := sample.Draw(s, t, band, sample.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("bench: sampling: %w", err)
	}
	ctx := &partition.Context{Band: band, Workers: cfg.Workers, Sample: smp, Model: costmodel.Default(), Seed: cfg.Seed}
	plan, err := pt.Plan(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: planning: %w", err)
	}

	refOpts := exec.Options{
		Workers:       cfg.Workers,
		Model:         costmodel.Default(),
		SerialShuffle: true,
		Parallelism:   1,
		Algorithm:     localjoin.BaselineSortProbe{},
	}
	optOpts := exec.Options{Workers: cfg.Workers, Model: costmodel.Default()}

	ref, refRes, err := measurePipeline(plan, s, t, band, refOpts, cfg.Rounds, "serial-reference")
	if err != nil {
		return nil, err
	}
	opt, optRes, err := measurePipeline(plan, s, t, band, optOpts, cfg.Rounds, "parallel")
	if err != nil {
		return nil, err
	}
	if refRes.Output != optRes.Output || refRes.TotalInput != optRes.TotalInput {
		return nil, fmt.Errorf("bench: paths disagree: reference (I=%d, out=%d) vs optimized (I=%d, out=%d)",
			refRes.TotalInput, refRes.Output, optRes.TotalInput, optRes.Output)
	}

	rep := &PipelineReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Tuples:      cfg.Tuples,
		Dims:        cfg.Dims,
		Eps:         cfg.Eps,
		Workers:     cfg.Workers,
		Partitioner: pt.Name(),
		Partitions:  optRes.Partitions,
		TotalInput:  optRes.TotalInput,
		Output:      optRes.Output,
		Reference:   ref,
		Optimized:   opt,
	}
	rep.SpeedupEndToEnd = ratio(ref.TotalSeconds, opt.TotalSeconds)
	rep.SpeedupShuffle = ratio(ref.ShuffleSeconds, opt.ShuffleSeconds)
	rep.SpeedupJoin = ratio(ref.JoinSeconds, opt.JoinSeconds)

	if !cfg.SkipMicro {
		rep.Micro = microBenchmarks()
	}
	return rep, nil
}

// measurePipeline runs ExecutePlan rounds times and keeps the fastest round.
func measurePipeline(plan partition.Plan, s, t *data.Relation, band data.Band, opts exec.Options, rounds int, path string) (PipelineMeasurement, *exec.Result, error) {
	var best *exec.Result
	for r := 0; r < rounds; r++ {
		res, err := exec.ExecutePlan(context.Background(), plan, s, t, band, opts)
		if err != nil {
			return PipelineMeasurement{}, nil, fmt.Errorf("bench: %s ExecutePlan: %w", path, err)
		}
		if best == nil || res.ShuffleTime+res.JoinWallTime < best.ShuffleTime+best.JoinWallTime {
			best = res
		}
	}
	alg := opts.Algorithm
	if alg == nil {
		alg = localjoin.Default()
	}
	shuffle := best.ShuffleTime.Seconds()
	join := best.JoinWallTime.Seconds()
	m := PipelineMeasurement{
		Path:           path,
		Algorithm:      alg.Name(),
		ShuffleSeconds: shuffle,
		JoinSeconds:    join,
		TotalSeconds:   shuffle + join,
	}
	if shuffle > 0 {
		m.ShuffleTuplesPerSec = float64(best.TotalInput) / shuffle
	}
	if join > 0 {
		m.JoinInputTuplesPerSec = float64(best.TotalInput) / join
		m.JoinOutputPairsPerSec = float64(best.Output) / join
	}
	return m, best, nil
}

// microBenchmarks measures the local-join algorithms in isolation on a
// partition-sized input, reporting allocations per Join call (the acceptance
// criterion: zero in the steady state for the scratch-buffer algorithms).
func microBenchmarks() []MicroBenchmark {
	s, t := data.ParetoPair(3, 1.5, 20_000, 7)
	band := data.Uniform(3, 0.0005)
	algs := []localjoin.Algorithm{
		localjoin.SortProbe{},
		localjoin.BaselineSortProbe{},
		localjoin.GridSortScan{},
		localjoin.BaselineGridSortScan{},
		localjoin.EpsGrid{},
	}
	out := make([]MicroBenchmark, 0, len(algs))
	for _, alg := range algs {
		alg.Join(s, t, band, nil) // warm scratch pools
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				alg.Join(s, t, band, nil)
			}
		})
		out = append(out, MicroBenchmark{
			Name:        alg.Name(),
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return out
}

// WritePipelineJSON writes the report as indented JSON.
func WritePipelineJSON(w io.Writer, rep *PipelineReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func ratio(ref, opt float64) float64 {
	if opt <= 0 {
		return 0
	}
	return ref / opt
}
