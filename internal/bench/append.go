package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"bandjoin"
	"bandjoin/internal/data"
)

// AppendConfig scales the incremental-ingestion benchmark: Engine.Append of a
// small delta versus a full Register + cold-join rebuild, warm-query latency
// while appends are streaming in, and the cost of a drift-triggered background
// re-partition versus that full rebuild — all on the RPC cluster plane.
type AppendConfig struct {
	// Tuples is the per-relation base size; the delta rides on top of it.
	Tuples int
	// Dims is the number of join attributes.
	Dims int
	// Eps is the symmetric per-dimension band width.
	Eps float64
	// Workers is the number of in-process RPC workers.
	Workers int
	// ChunkSize is the number of tuples per Load RPC.
	ChunkSize int
	// Window is the streaming plane's per-worker in-flight RPC bound.
	Window int
	// DeltaFraction sizes the appended delta as a fraction of the base
	// (per relation). The acceptance scenario is 0.10: a ≤10% append must be
	// absorbed without any full-relation reshuffle.
	DeltaFraction float64
	// Batches splits the delta for the sustained-append phase, which measures
	// warm-query latency while appends stream in batch by batch.
	Batches int
	// Rounds measures the one-shot phases this many times, fastest kept.
	Rounds int
	// Seed drives data generation and planning.
	Seed int64
}

// DefaultAppendConfig rides the engine benchmark's acceptance workload (8D
// near-duplicate self-match) with a 10% delta, so the append numbers are
// directly comparable with the serving tiers in BENCH_engine.json.
func DefaultAppendConfig() AppendConfig {
	return AppendConfig{
		Tuples:        500_000,
		Dims:          8,
		Eps:           0.003,
		Workers:       2,
		ChunkSize:     4096,
		Window:        4,
		DeltaFraction: 0.10,
		Batches:       5,
		Rounds:        3,
		Seed:          1,
	}
}

// AppendLatency summarizes the warm-query latencies observed while appends
// were streaming in.
type AppendLatency struct {
	Queries       int     `json:"queries"`
	MeanSeconds   float64 `json:"mean_seconds"`
	MedianSeconds float64 `json:"median_seconds"`
	MaxSeconds    float64 `json:"max_seconds"`
}

// AppendReport is the machine-readable benchmark artifact (BENCH_append.json).
type AppendReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	Tuples        int     `json:"tuples_per_relation"`
	DeltaTuples   int     `json:"delta_tuples_per_relation"`
	DeltaFraction float64 `json:"delta_fraction"`
	Dims          int     `json:"dims"`
	Eps           float64 `json:"band_width"`
	Workers       int     `json:"workers"`
	ChunkSize     int     `json:"chunk_size"`
	Window        int     `json:"window"`
	Partitioner   string  `json:"partitioner"`
	Output        int64   `json:"output_pairs"`

	// RebuildSeconds is the baseline: a fresh engine registering the full
	// (base + delta) relations and serving the cold query — sample, optimize,
	// full shuffle, join.
	RebuildSeconds float64 `json:"rebuild_seconds"`
	// AppendSeconds is Engine.Append of both relations' deltas (reservoir
	// merge + delta shuffle into the retained plans); WarmJoinSeconds is the
	// warm query served right after, which must move zero shuffle bytes.
	AppendSeconds       float64 `json:"append_seconds"`
	WarmJoinSeconds     float64 `json:"warm_join_seconds"`
	WarmShuffleBytes    int64   `json:"warm_shuffle_bytes"`
	StaleRebuildSeconds float64 `json:"stale_rebuild_seconds"`
	// AppendTuplesPerSec is both deltas' tuples over AppendSeconds.
	AppendTuplesPerSec float64 `json:"append_tuples_per_sec"`
	// SpeedupVsRebuild is RebuildSeconds / (AppendSeconds + WarmJoinSeconds):
	// how much cheaper absorbing the delta is than rebuilding from scratch.
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild"`

	// Sustained is the latency profile of warm queries racing batch appends.
	Sustained AppendLatency `json:"sustained_warm_queries"`

	// RepartitionSeconds is the wall time of the drift-triggered background
	// re-partition (plan + prime + swap), during which ServedDuringRepartition
	// warm queries kept being answered with zero failures.
	RepartitionSeconds      float64 `json:"repartition_seconds"`
	ServedDuringRepartition int     `json:"queries_served_during_repartition"`

	// PairsChecked/PairsIdentical verify Register+Append+Join against a fresh
	// full Register+Join bit for bit on a subsample-sized instance.
	PairsChecked   int  `json:"pairs_checked"`
	PairsIdentical bool `json:"pairs_identical"`
}

// appendWorkload slices one self-match pair into base prefixes and delta
// suffixes so the delta follows the base distribution.
func appendWorkload(cfg AppendConfig) (baseS, baseT, deltaS, deltaT *data.Relation) {
	deltaN := int(float64(cfg.Tuples) * cfg.DeltaFraction)
	if deltaN < 1 {
		deltaN = 1
	}
	fullS, fullT := selfMatchPair(cfg.Tuples+deltaN, cfg.Dims, cfg.Eps, cfg.Seed, -1)
	return fullS.Slice("s", 0, cfg.Tuples), fullT.Slice("t", 0, cfg.Tuples),
		fullS.Slice("ds", cfg.Tuples, fullS.Len()), fullT.Slice("dt", cfg.Tuples, fullT.Len())
}

// RunAppend executes the incremental-ingestion benchmark over in-process RPC
// workers and returns the report.
func RunAppend(cfg AppendConfig) (*AppendReport, error) {
	if cfg.Tuples <= 0 || cfg.Dims <= 0 || cfg.DeltaFraction <= 0 {
		return nil, fmt.Errorf("bench: invalid append config %+v", cfg)
	}
	if cfg.Workers < 2 {
		cfg.Workers = 2
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 1
	}
	baseS, baseT, deltaS, deltaT := appendWorkload(cfg)
	band := data.Uniform(cfg.Dims, cfg.Eps)
	opts := bandjoin.Options{
		Partitioner:      bandjoin.RecPartS(),
		Seed:             cfg.Seed,
		ClusterChunkSize: cfg.ChunkSize,
		ClusterWindow:    cfg.Window,
	}

	cl, err := bandjoin.StartLocalCluster(cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("bench: starting workers: %w", err)
	}
	defer cl.Close()
	ctx := context.Background()

	rep := &AppendReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Tuples:        cfg.Tuples,
		DeltaTuples:   deltaS.Len(),
		DeltaFraction: cfg.DeltaFraction,
		Dims:          cfg.Dims,
		Eps:           cfg.Eps,
		Workers:       cfg.Workers,
		ChunkSize:     cfg.ChunkSize,
		Window:        cfg.Window,
	}

	// --- Baseline: register the full relations fresh and serve the cold
	// query; this is what an append avoids.
	fullS := baseS.Clone("s").Extend(deltaS)
	fullT := baseT.Clone("t").Extend(deltaT)
	for r := 0; r < cfg.Rounds; r++ {
		runtime.GC()
		e := cl.NewEngine(bandjoin.EngineOptions{})
		start := time.Now()
		if err := registerPair(e, fullS, fullT); err != nil {
			e.Close()
			return nil, err
		}
		res, err := e.Join(ctx, "s", "t", band, opts)
		wall := time.Since(start).Seconds()
		e.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: rebuild baseline: %w", err)
		}
		if r == 0 || wall < rep.RebuildSeconds {
			rep.RebuildSeconds = wall
		}
		rep.Partitioner = res.Partitioner
		rep.Output = res.Output
	}

	// --- Append + warm join: a primed engine absorbs the delta and serves the
	// next query with zero full-relation reshuffle.
	for r := 0; r < cfg.Rounds; r++ {
		runtime.GC()
		e := cl.NewEngine(bandjoin.EngineOptions{})
		if err := registerPair(e, baseS, baseT); err != nil {
			e.Close()
			return nil, err
		}
		if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
			e.Close()
			return nil, fmt.Errorf("bench: priming append engine: %w", err)
		}
		start := time.Now()
		if err := e.Append(ctx, "s", deltaS); err != nil {
			e.Close()
			return nil, fmt.Errorf("bench: Append(s): %w", err)
		}
		if err := e.Append(ctx, "t", deltaT); err != nil {
			e.Close()
			return nil, fmt.Errorf("bench: Append(t): %w", err)
		}
		appendWall := time.Since(start).Seconds()
		start = time.Now()
		res, err := e.Join(ctx, "s", "t", band, opts)
		warmWall := time.Since(start).Seconds()
		e.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: warm join after append: %w", err)
		}
		if res.ShuffleBytes != 0 {
			return nil, fmt.Errorf("bench: warm join after append shuffled %d bytes, want 0", res.ShuffleBytes)
		}
		if res.Output != rep.Output {
			return nil, fmt.Errorf("bench: appended output %d != rebuilt output %d", res.Output, rep.Output)
		}
		if r == 0 || appendWall+warmWall < rep.AppendSeconds+rep.WarmJoinSeconds {
			rep.AppendSeconds = appendWall
			rep.WarmJoinSeconds = warmWall
			rep.WarmShuffleBytes = res.ShuffleBytes
			rep.StaleRebuildSeconds = res.StaleRebuildTime.Seconds()
		}
	}
	if rep.AppendSeconds > 0 {
		rep.AppendTuplesPerSec = float64(deltaS.Len()+deltaT.Len()) / rep.AppendSeconds
	}
	rep.SpeedupVsRebuild = ratio(rep.RebuildSeconds, rep.AppendSeconds+rep.WarmJoinSeconds)

	// --- Sustained appends: warm queries racing batch appends.
	lat, err := runSustained(ctx, cl, cfg, baseS, baseT, deltaS, deltaT, band, opts)
	if err != nil {
		return nil, err
	}
	rep.Sustained = lat

	// --- Drift-triggered re-partition vs the full rebuild.
	repartSecs, served, err := runDriftRepartition(ctx, cl, cfg, baseS, baseT, deltaS, deltaT, band, opts)
	if err != nil {
		return nil, err
	}
	rep.RepartitionSeconds = repartSecs
	rep.ServedDuringRepartition = served

	// --- Pair-level identity between append-then-join and a fresh rebuild, on
	// a subsample-sized instance (pair collection over RPC is quadratic).
	checked, identical, err := appendPairCheck(ctx, cl, cfg, band)
	if err != nil {
		return nil, err
	}
	rep.PairsChecked, rep.PairsIdentical = checked, identical
	if !identical {
		return nil, fmt.Errorf("bench: appended pairs differ from the fresh rebuild's")
	}
	return rep, nil
}

// runSustained streams the delta in batches through Engine.Append while a
// concurrent loop serves warm queries, and profiles those query latencies.
func runSustained(ctx context.Context, cl *bandjoin.Cluster, cfg AppendConfig, baseS, baseT, deltaS, deltaT *data.Relation, band data.Band, opts bandjoin.Options) (AppendLatency, error) {
	e := cl.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := registerPair(e, baseS, baseT); err != nil {
		return AppendLatency{}, err
	}
	if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
		return AppendLatency{}, fmt.Errorf("bench: priming sustained engine: %w", err)
	}

	var (
		wg        sync.WaitGroup
		appendErr error
		done      = make(chan struct{})
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		per := (deltaS.Len() + cfg.Batches - 1) / cfg.Batches
		for lo := 0; lo < deltaS.Len(); lo += per {
			hi := min(lo+per, deltaS.Len())
			if err := e.Append(ctx, "s", deltaS.Slice("ds", lo, hi)); err != nil {
				appendErr = fmt.Errorf("bench: sustained Append(s): %w", err)
				return
			}
			hi = min(lo+per, deltaT.Len())
			if hi > lo {
				if err := e.Append(ctx, "t", deltaT.Slice("dt", lo, hi)); err != nil {
					appendErr = fmt.Errorf("bench: sustained Append(t): %w", err)
					return
				}
			}
		}
	}()

	var latencies []float64
	var queryErr error
	for {
		start := time.Now()
		if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
			queryErr = fmt.Errorf("bench: warm query during sustained appends: %w", err)
			break
		}
		latencies = append(latencies, time.Since(start).Seconds())
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	wg.Wait()
	if appendErr != nil {
		return AppendLatency{}, appendErr
	}
	if queryErr != nil {
		return AppendLatency{}, queryErr
	}

	lat := AppendLatency{Queries: len(latencies)}
	if len(latencies) > 0 {
		sorted := append([]float64(nil), latencies...)
		sort.Float64s(sorted)
		var sum float64
		for _, v := range sorted {
			sum += v
		}
		lat.MeanSeconds = sum / float64(len(sorted))
		lat.MedianSeconds = sorted[len(sorted)/2]
		lat.MaxSeconds = sorted[len(sorted)-1]
	}
	return lat, nil
}

// runDriftRepartition forces the drift trigger with a tight MaxDeltaFraction,
// measures how long the background re-partition takes end to end, and serves
// warm queries throughout to verify none fail or block on the swap.
func runDriftRepartition(ctx context.Context, cl *bandjoin.Cluster, cfg AppendConfig, baseS, baseT, deltaS, deltaT *data.Relation, band data.Band, opts bandjoin.Options) (float64, int, error) {
	dOpts := opts
	dOpts.MaxDeltaFraction = cfg.DeltaFraction / 2
	e := cl.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := registerPair(e, baseS, baseT); err != nil {
		return 0, 0, err
	}
	if _, err := e.Join(ctx, "s", "t", band, dOpts); err != nil {
		return 0, 0, fmt.Errorf("bench: priming drift engine: %w", err)
	}
	if err := e.Append(ctx, "s", deltaS); err != nil {
		return 0, 0, fmt.Errorf("bench: drift Append(s): %w", err)
	}
	if err := e.Append(ctx, "t", deltaT); err != nil {
		return 0, 0, fmt.Errorf("bench: drift Append(t): %w", err)
	}

	// The first warm query observes the crossed threshold and kicks off the
	// background re-partition; keep serving until the swap lands.
	start := time.Now()
	served := 0
	deadline := start.Add(5 * time.Minute)
	for e.Stats().Repartitions == 0 {
		if _, err := e.Join(ctx, "s", "t", band, dOpts); err != nil {
			return 0, served, fmt.Errorf("bench: query during re-partition: %w", err)
		}
		served++
		if time.Now().After(deadline) {
			return 0, served, fmt.Errorf("bench: drift re-partition never completed")
		}
	}
	return time.Since(start).Seconds(), served, nil
}

// appendPairCheck verifies Register+Append+Join equals a fresh full
// Register+Join pair for pair on a smaller instance of the same workload.
func appendPairCheck(ctx context.Context, cl *bandjoin.Cluster, cfg AppendConfig, band data.Band) (int, bool, error) {
	small := cfg
	small.Tuples = cfg.Tuples / 10
	if small.Tuples > 50_000 {
		small.Tuples = 50_000
	}
	if small.Tuples < 1_000 {
		small.Tuples = cfg.Tuples
	}
	small.Seed = cfg.Seed + 100
	baseS, baseT, deltaS, deltaT := appendWorkload(small)
	opts := bandjoin.Options{
		Partitioner:      bandjoin.RecPartS(),
		Seed:             cfg.Seed,
		ClusterChunkSize: cfg.ChunkSize,
		ClusterWindow:    cfg.Window,
		CollectPairs:     true,
	}
	fresh, err := cl.Join(baseS.Clone("s").Extend(deltaS), baseT.Clone("t").Extend(deltaT), band, opts)
	if err != nil {
		return 0, false, fmt.Errorf("bench: pair-check rebuild run: %w", err)
	}
	e := cl.NewEngine(bandjoin.EngineOptions{})
	defer e.Close()
	if err := registerPair(e, baseS, baseT); err != nil {
		return 0, false, err
	}
	if _, err := e.Join(ctx, "s", "t", band, opts); err != nil {
		return 0, false, fmt.Errorf("bench: pair-check priming run: %w", err)
	}
	if err := e.Append(ctx, "s", deltaS); err != nil {
		return 0, false, fmt.Errorf("bench: pair-check Append(s): %w", err)
	}
	if err := e.Append(ctx, "t", deltaT); err != nil {
		return 0, false, fmt.Errorf("bench: pair-check Append(t): %w", err)
	}
	appended, err := e.Join(ctx, "s", "t", band, opts)
	if err != nil {
		return 0, false, fmt.Errorf("bench: pair-check appended run: %w", err)
	}
	if appended.ShuffleBytes != 0 {
		return 0, false, fmt.Errorf("bench: pair-check appended run shuffled %d bytes", appended.ShuffleBytes)
	}
	if len(fresh.Pairs) != len(appended.Pairs) {
		return len(fresh.Pairs), false, nil
	}
	for i := range fresh.Pairs {
		if fresh.Pairs[i] != appended.Pairs[i] {
			return len(fresh.Pairs), false, nil
		}
	}
	return len(fresh.Pairs), true, nil
}

// WriteAppendJSON writes the report as indented JSON.
func WriteAppendJSON(w io.Writer, rep *AppendReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
