package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Render writes a table as aligned text, one line per row, with the same
// column structure as the paper's tables: the parameter columns followed by,
// per method, the runtime split (optimization + model-predicted join time)
// and the I / Im / Om sizes.
func Render(w io.Writer, t *Table) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s — %s (reproduces %s)\n", t.ID, t.Title, t.Paper)

	// Header.
	var header []string
	if len(t.Rows) > 0 {
		for _, l := range t.Rows[0].Labels {
			header = append(header, l.Name)
		}
	}
	// Name the method columns from the row with the most cells (some rows
	// skip methods that are undefined for their configuration, e.g. Grid-ε at
	// band width zero).
	var widest *Row
	for i := range t.Rows {
		if widest == nil || len(t.Rows[i].Cells) > len(widest.Cells) {
			widest = &t.Rows[i]
		}
	}
	methodCols := 0
	if widest != nil {
		methodCols = len(widest.Cells)
	}
	for i := 0; i < methodCols; i++ {
		name := fmt.Sprintf("method%d", i+1)
		if i < len(widest.Cells) {
			name = widest.Cells[i].Method
		}
		header = append(header, name+" runtime[s](opt+join)", name+" I", name+" Im", name+" Om", name+" dup%", name+" load%")
	}

	rows := make([][]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		var cols []string
		for _, l := range row.Labels {
			cols = append(cols, l.Value)
		}
		for _, cell := range row.Cells {
			cols = append(cols, cellColumns(cell)...)
		}
		rows = append(rows, cols)
	}

	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeLine := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", max(pad, 0)))
		}
		sb.WriteByte('\n')
	}
	writeLine(header)
	for _, r := range rows {
		writeLine(r)
	}
	fmt.Fprintf(&sb, "(generated in %s)\n\n", t.Elapsed.Round(10*time.Millisecond))
	_, err := io.WriteString(w, sb.String())
	return err
}

// cellColumns formats one method's measurements.
func cellColumns(c Cell) []string {
	if c.Err != nil {
		return []string{"failed: " + c.Err.Error(), "-", "-", "-", "-", "-"}
	}
	if c.Result == nil {
		return []string{"-", "-", "-", "-", "-", "-"}
	}
	r := c.Result
	runtime := fmt.Sprintf("%.2f (%.2f+%.2f)",
		r.OptimizationTime.Seconds()+r.PredictedTime, r.OptimizationTime.Seconds(), r.PredictedTime)
	return []string{
		runtime,
		humanCount(r.TotalInput),
		humanCount(r.Im),
		humanCount(r.Om),
		fmt.Sprintf("%.1f%%", 100*r.DupOverhead),
		fmt.Sprintf("%.1f%%", 100*r.LoadOverhead),
	}
}

// humanCount renders a tuple count compactly (k / M suffixes).
func humanCount(v int64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprint(v)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteCSV exports a table's raw measurements, one line per (row, method),
// suitable for plotting Figure 4 style scatters.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := []string{"table", "labels", "method", "workers", "partitions",
		"optimization_seconds", "predicted_join_seconds", "makespan_seconds",
		"total_input", "im", "om", "output", "dup_overhead", "load_overhead"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		var lbl []string
		for _, l := range row.Labels {
			lbl = append(lbl, l.Name+"="+l.Value)
		}
		for _, cell := range row.Cells {
			rec := []string{t.ID, strings.Join(lbl, ";"), cell.Method}
			if cell.Err != nil || cell.Result == nil {
				rec = append(rec, "", "", "", "", "", "", "", "", "", "", "")
			} else {
				r := cell.Result
				rec = append(rec,
					fmt.Sprint(r.Workers), fmt.Sprint(r.Partitions),
					fmt.Sprintf("%.6f", r.OptimizationTime.Seconds()),
					fmt.Sprintf("%.6f", r.PredictedTime),
					fmt.Sprintf("%.6f", r.Makespan.Seconds()),
					fmt.Sprint(r.TotalInput), fmt.Sprint(r.Im), fmt.Sprint(r.Om), fmt.Sprint(r.Output),
					fmt.Sprintf("%.6f", r.DupOverhead), fmt.Sprintf("%.6f", r.LoadOverhead))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		if len(row.Cells) == 0 {
			rec := []string{t.ID, strings.Join(lbl, ";"), "", "", "", "", "", "", "", "", "", "", "", ""}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summarize returns a compact single-line summary per method of a table,
// averaging duplication and load overheads across rows — the quantities the
// paper's Figure 4 visualizes.
func Summarize(t *Table) map[string]struct{ DupOverhead, LoadOverhead float64 } {
	type acc struct {
		dup, load float64
		n         int
	}
	accs := make(map[string]*acc)
	for _, row := range t.Rows {
		for _, cell := range row.Cells {
			if cell.Err != nil || cell.Result == nil {
				continue
			}
			a, ok := accs[cell.Method]
			if !ok {
				a = &acc{}
				accs[cell.Method] = a
			}
			a.dup += cell.Result.DupOverhead
			a.load += cell.Result.LoadOverhead
			a.n++
		}
	}
	out := make(map[string]struct{ DupOverhead, LoadOverhead float64 })
	for m, a := range accs {
		if a.n == 0 {
			continue
		}
		out[m] = struct{ DupOverhead, LoadOverhead float64 }{a.dup / float64(a.n), a.load / float64(a.n)}
	}
	return out
}
