package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunClusterQuick runs the cluster benchmark harness on a small workload:
// it must produce a well-formed report whose planes agree exactly, and the
// JSON artifact must round-trip.
func TestRunClusterQuick(t *testing.T) {
	cfg := ClusterConfig{
		Tuples:    4000,
		Dims:      2,
		Eps:       0.01,
		Workers:   2,
		ChunkSize: 256,
		Window:    3,
		Rounds:    1,
		Seed:      5,
	}
	rep, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if rep.Output <= 0 {
		t.Error("benchmark workload produced no output pairs")
	}
	if rep.TotalInput < int64(2*cfg.Tuples) {
		t.Errorf("total input %d below |S|+|T| = %d", rep.TotalInput, 2*cfg.Tuples)
	}
	if rep.Serial.WallSeconds <= 0 || rep.Streaming.WallSeconds <= 0 {
		t.Errorf("non-positive wall times: serial %g, streaming %g",
			rep.Serial.WallSeconds, rep.Streaming.WallSeconds)
	}
	if rep.Streaming.ShuffleRPCs <= 0 || rep.Streaming.ShuffleBytes <= 0 {
		t.Errorf("streaming wire accounting missing: %d RPCs, %d bytes",
			rep.Streaming.ShuffleRPCs, rep.Streaming.ShuffleBytes)
	}
	if rep.SpeedupEndToEnd <= 0 {
		t.Errorf("speedup %g must be positive", rep.SpeedupEndToEnd)
	}

	var buf bytes.Buffer
	if err := WriteClusterJSON(&buf, rep); err != nil {
		t.Fatalf("WriteClusterJSON: %v", err)
	}
	var back ClusterReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Output != rep.Output || back.Workers != rep.Workers {
		t.Error("round-tripped report differs")
	}
}
