// Package partition defines the common framework shared by all distributed
// band-join partitioning algorithms in this repository: the optimizer-facing
// Context (samples, band condition, worker count, cost model), the Plan
// produced by a partitioner (a mapping from input tuples to one or more
// partitions, Definition 1 in the paper), and the scheduling of partitions
// onto workers.
package partition

import (
	"fmt"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/sample"
)

// Context carries everything a partitioner may consult during its
// optimization phase. Partitioners must not access the full inputs — only the
// samples — mirroring the paper's optimization phase (Figure 5).
type Context struct {
	// Band is the band-join condition.
	Band data.Band
	// Workers is the number of worker machines w.
	Workers int
	// Sample holds the input and output samples and full input cardinalities.
	Sample *sample.Sample
	// Model supplies the β coefficients for load and join-time estimation.
	Model costmodel.Model
	// Seed drives any randomized decisions (e.g. 1-Bucket row assignment).
	Seed int64
}

// Validate reports whether the context is usable by a partitioner.
func (c *Context) Validate() error {
	if c == nil {
		return fmt.Errorf("partition: nil context")
	}
	if err := c.Band.Validate(); err != nil {
		return err
	}
	if c.Workers < 1 {
		return fmt.Errorf("partition: need at least one worker, got %d", c.Workers)
	}
	if c.Sample == nil {
		return fmt.Errorf("partition: context has no sample")
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	return nil
}

// Dims returns the dimensionality of the join.
func (c *Context) Dims() int { return c.Band.Dims() }

// InputSize returns |S| + |T|, the Lemma 1 lower bound on total input.
func (c *Context) InputSize() int { return c.Sample.TotalS + c.Sample.TotalT }

// Plan is the output of a partitioner's optimization phase: an assignment of
// every input tuple to one or more partitions such that every join result is
// produced by exactly one partition's local join (Definition 1). Partitions
// are later placed on workers by a Schedule.
type Plan interface {
	// NumPartitions returns the number of partitions the plan creates.
	NumPartitions() int
	// AssignS appends to dst the partitions that must receive the S-tuple
	// with the given ID and join-attribute key, and returns the extended
	// slice. The tuple ID is stable and is used for any pseudo-random
	// assignment (e.g. 1-Bucket rows) so plans are deterministic.
	AssignS(id int64, key []float64, dst []int) []int
	// AssignT is the T-side counterpart of AssignS.
	AssignT(id int64, key []float64, dst []int) []int
}

// WorkerPlacer is an optional interface a Plan can implement to dictate how
// partitions map to workers. Grid-ε uses it for hash placement (its
// near-zero-optimization design point); plans that do not implement it are
// scheduled with greedy LPT on observed partition load, the deterministic
// stand-in for the cluster scheduler's dynamic load balancing.
type WorkerPlacer interface {
	PlaceWorker(partition, workers int) int
}

// LoadEstimator is an optional interface a Plan can implement to expose its
// optimizer's per-partition load estimates (used for reporting and for
// scheduling before actual loads are known).
type LoadEstimator interface {
	EstimatedLoads() []float64
}

// Partitioner finds a Plan for a given context. Implementations: RecPart
// (internal/core), 1-Bucket (internal/onebucket), Grid-ε and Grid*
// (internal/grid), CSIO (internal/csio), and distributed IEJoin
// (internal/iejoin).
type Partitioner interface {
	// Name identifies the partitioner in experiment reports.
	Name() string
	// Plan runs the optimization phase and returns the chosen partitioning.
	Plan(ctx *Context) (Plan, error)
}
