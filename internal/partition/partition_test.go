package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/sample"
)

func testContext(t *testing.T, workers int) *Context {
	t.Helper()
	s, tt := data.ParetoPair(2, 1.5, 800, 1)
	band := data.Symmetric(0.1, 0.1)
	smp, err := sample.Draw(s, tt, band, sample.Options{InputSampleSize: 300, OutputSampleSize: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &Context{Band: band, Workers: workers, Sample: smp, Model: costmodel.Default(), Seed: 1}
}

func TestContextValidate(t *testing.T) {
	ctx := testContext(t, 4)
	if err := ctx.Validate(); err != nil {
		t.Errorf("valid context rejected: %v", err)
	}
	if err := (*Context)(nil).Validate(); err == nil {
		t.Error("nil context accepted")
	}
	bad := *ctx
	bad.Workers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero workers accepted")
	}
	bad = *ctx
	bad.Sample = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing sample accepted")
	}
	bad = *ctx
	bad.Model = costmodel.Model{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid model accepted")
	}
	bad = *ctx
	bad.Band = data.Band{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid band accepted")
	}
	if ctx.Dims() != 2 {
		t.Errorf("Dims = %d", ctx.Dims())
	}
	if ctx.InputSize() != 1600 {
		t.Errorf("InputSize = %d", ctx.InputSize())
	}
}

func TestLPTBalancesLoads(t *testing.T) {
	loads := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	sched := LPT(loads, 3)
	if len(sched) != len(loads) {
		t.Fatalf("schedule length %d", len(sched))
	}
	worker := sched.WorkerLoads(loads, 3)
	total := 0.0
	maxLoad := 0.0
	for _, l := range worker {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total != 55 {
		t.Errorf("total load %g, want 55", total)
	}
	// LPT is within 4/3 of optimal; the optimum here is ceil(55/3) ≈ 19.
	if maxLoad > 4.0/3.0*19+1e-9 {
		t.Errorf("LPT max load %g exceeds the 4/3 bound", maxLoad)
	}
	if got := sched.MaxLoad(loads, 3); got != maxLoad {
		t.Errorf("MaxLoad = %g, want %g", got, maxLoad)
	}
}

// TestLPTNeverWorseThanRoundRobin is a property test of the scheduler.
func TestLPTNeverWorseThanRoundRobin(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]float64, len(raw))
		for i, v := range raw {
			loads[i] = math.Abs(math.Mod(v, 1000))
		}
		workers := 4
		lpt := LPT(loads, workers).MaxLoad(loads, workers)
		rr := RoundRobin(len(loads), workers).MaxLoad(loads, workers)
		return lpt <= rr+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestRoundRobinAndHashCoverAllWorkers(t *testing.T) {
	for _, sched := range []Schedule{RoundRobin(100, 7), Hash(100, 7)} {
		seen := make(map[int]bool)
		for _, w := range sched {
			if w < 0 || w >= 7 {
				t.Fatalf("worker %d out of range", w)
			}
			seen[w] = true
		}
		if len(seen) < 5 {
			t.Errorf("placement uses only %d of 7 workers", len(seen))
		}
	}
	if RoundRobin(3, 0)[0] != 0 {
		t.Error("zero workers should degrade to a single worker")
	}
}

type fixedPlacer struct{ workers int }

func (f fixedPlacer) PlaceWorker(p, w int) int {
	if p%2 == 0 {
		return 0
	}
	return w + 5 // deliberately out of range to exercise the fallback
}

func TestFromPlacerFallsBackOnBadWorker(t *testing.T) {
	sched := FromPlacer(fixedPlacer{}, 10, 3)
	for p, w := range sched {
		if w < 0 || w >= 3 {
			t.Fatalf("partition %d placed on invalid worker %d", p, w)
		}
		if p%2 == 0 && w != 0 {
			t.Errorf("partition %d ignored the placer", p)
		}
	}
}

func TestScheduleWorkers(t *testing.T) {
	if (Schedule{0, 2, 1}).Workers() != 3 {
		t.Error("Workers() wrong")
	}
	if (Schedule{}).Workers() != 0 {
		t.Error("empty schedule should report 0 workers")
	}
}

func TestHashIDDeterministicAndSpread(t *testing.T) {
	if HashID(42, 7) != HashID(42, 7) {
		t.Error("HashID is not deterministic")
	}
	if HashID(42, 7) == HashID(43, 7) && HashID(44, 7) == HashID(45, 7) {
		t.Error("HashID collides suspiciously")
	}
	buckets := make(map[uint64]int)
	for i := int64(0); i < 1000; i++ {
		buckets[HashID(i, 1)%10]++
	}
	for b, n := range buckets {
		if n < 50 || n > 200 {
			t.Errorf("hash bucket %d holds %d of 1000 ids; distribution is skewed", b, n)
		}
	}
}
