package partition

import (
	"slices"
)

// Schedule maps each partition index to the worker that will process it.
type Schedule []int

// Workers returns the number of distinct workers referenced by the schedule
// assuming workers are numbered 0..w-1; it is the maximum worker index + 1.
func (s Schedule) Workers() int {
	max := -1
	for _, w := range s {
		if w > max {
			max = w
		}
	}
	return max + 1
}

// LPT assigns partitions to workers with the greedy longest-processing-time
// rule: partitions are considered in decreasing load order and each is placed
// on the currently least-loaded worker. LPT is within 4/3 of the optimal
// makespan and models the dynamic load balancing that cluster schedulers
// (YARN in the paper's setup) perform at runtime.
func LPT(loads []float64, workers int) Schedule {
	return LPTInto(loads, workers, nil)
}

// LPTScratch holds the reusable working buffers of LPTInto. The zero value is
// ready to use; buffers grow to the largest problem seen and are reused across
// calls, so a caller scheduling every iteration (e.g. RecPart's per-iteration
// statistics) allocates nothing in steady state.
type LPTScratch struct {
	order      []int
	heapLoad   []float64
	heapWorker []int
	sched      Schedule
}

// LPTInto is LPT scheduling into reusable buffers. The returned schedule
// aliases the scratch and is only valid until the next call with the same
// scratch; a nil scratch allocates fresh buffers (exactly LPT). Given equal
// inputs, LPT and LPTInto produce identical schedules regardless of scratch
// reuse. The worker min-heap is stored as two parallel slices and resifted in
// place, avoiding the interface boxing of container/heap on what is the
// optimizer's per-iteration hot path.
func LPTInto(loads []float64, workers int, s *LPTScratch) Schedule {
	if workers < 1 {
		workers = 1
	}
	if s == nil {
		s = &LPTScratch{}
	}
	order := resizeInts(&s.order, len(loads))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case loads[a] > loads[b]:
			return -1
		case loads[a] < loads[b]:
			return 1
		}
		return 0
	})

	// All workers start at load zero, which is already a valid min-heap in
	// worker order.
	hl := resizeFloats(&s.heapLoad, workers)
	hw := resizeInts(&s.heapWorker, workers)
	for w := 0; w < workers; w++ {
		hl[w] = 0
		hw[w] = w
	}

	sched := s.sched[:0]
	if cap(sched) < len(loads) {
		sched = make(Schedule, 0, len(loads))
	}
	sched = sched[:len(loads)]
	s.sched = sched
	for _, p := range order {
		sched[p] = hw[0]
		hl[0] += loads[p]
		siftDownLoad(hl, hw, 0)
	}
	return sched
}

// siftDownLoad restores the min-heap property of the parallel (load, worker)
// slices after the root's load increased.
func siftDownLoad(load []float64, worker []int, i int) {
	n := len(load)
	for {
		m := i
		if l := 2*i + 1; l < n && load[l] < load[m] {
			m = l
		}
		if r := 2*i + 2; r < n && load[r] < load[m] {
			m = r
		}
		if m == i {
			return
		}
		load[i], load[m] = load[m], load[i]
		worker[i], worker[m] = worker[m], worker[i]
		i = m
	}
}

// resizeInts returns *buf with length n (contents unspecified).
func resizeInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// resizeFloats returns *buf with length n (contents unspecified).
func resizeFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// RoundRobin assigns partition i to worker i mod workers.
func RoundRobin(partitions, workers int) Schedule {
	if workers < 1 {
		workers = 1
	}
	sched := make(Schedule, partitions)
	for i := range sched {
		sched[i] = i % workers
	}
	return sched
}

// Hash assigns partitions to workers by a multiplicative hash of the partition
// index, the placement used by Grid-ε style partitioners that avoid any
// optimization cost.
func Hash(partitions, workers int) Schedule {
	if workers < 1 {
		workers = 1
	}
	sched := make(Schedule, partitions)
	for i := range sched {
		sched[i] = int(hash64(uint64(i)) % uint64(workers))
	}
	return sched
}

// FromPlacer builds a schedule by asking the plan's WorkerPlacer for each
// partition.
func FromPlacer(p WorkerPlacer, partitions, workers int) Schedule {
	sched := make(Schedule, partitions)
	for i := range sched {
		w := p.PlaceWorker(i, workers)
		if w < 0 || w >= workers {
			w = int(hash64(uint64(i)) % uint64(workers))
		}
		sched[i] = w
	}
	return sched
}

// WorkerLoads aggregates per-partition loads into per-worker loads under the
// schedule.
func (s Schedule) WorkerLoads(loads []float64, workers int) []float64 {
	out := make([]float64, workers)
	for p, w := range s {
		if p < len(loads) {
			out[w] += loads[p]
		}
	}
	return out
}

// MaxLoad returns the largest per-worker load under the schedule.
func (s Schedule) MaxLoad(loads []float64, workers int) float64 {
	wl := s.WorkerLoads(loads, workers)
	max := 0.0
	for _, l := range wl {
		if l > max {
			max = l
		}
	}
	return max
}

// hash64 is the splitmix64 finalizer, used for cheap deterministic hashing of
// partition indices and tuple IDs throughout the repository.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashID exposes hash64 combined with a salt for plans that need a
// deterministic pseudo-random function of a tuple ID (e.g. 1-Bucket row and
// column choices).
func HashID(id int64, salt uint64) uint64 {
	return hash64(uint64(id)*0x9e3779b97f4a7c15 ^ hash64(salt))
}
