package partition

import (
	"container/heap"
	"sort"
)

// Schedule maps each partition index to the worker that will process it.
type Schedule []int

// Workers returns the number of distinct workers referenced by the schedule
// assuming workers are numbered 0..w-1; it is the maximum worker index + 1.
func (s Schedule) Workers() int {
	max := -1
	for _, w := range s {
		if w > max {
			max = w
		}
	}
	return max + 1
}

// LPT assigns partitions to workers with the greedy longest-processing-time
// rule: partitions are considered in decreasing load order and each is placed
// on the currently least-loaded worker. LPT is within 4/3 of the optimal
// makespan and models the dynamic load balancing that cluster schedulers
// (YARN in the paper's setup) perform at runtime.
func LPT(loads []float64, workers int) Schedule {
	if workers < 1 {
		workers = 1
	}
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })

	h := &workerHeap{}
	for w := 0; w < workers; w++ {
		*h = append(*h, workerLoad{worker: w})
	}
	heap.Init(h)

	sched := make(Schedule, len(loads))
	for _, p := range order {
		least := heap.Pop(h).(workerLoad)
		sched[p] = least.worker
		least.load += loads[p]
		heap.Push(h, least)
	}
	return sched
}

// RoundRobin assigns partition i to worker i mod workers.
func RoundRobin(partitions, workers int) Schedule {
	if workers < 1 {
		workers = 1
	}
	sched := make(Schedule, partitions)
	for i := range sched {
		sched[i] = i % workers
	}
	return sched
}

// Hash assigns partitions to workers by a multiplicative hash of the partition
// index, the placement used by Grid-ε style partitioners that avoid any
// optimization cost.
func Hash(partitions, workers int) Schedule {
	if workers < 1 {
		workers = 1
	}
	sched := make(Schedule, partitions)
	for i := range sched {
		sched[i] = int(hash64(uint64(i)) % uint64(workers))
	}
	return sched
}

// FromPlacer builds a schedule by asking the plan's WorkerPlacer for each
// partition.
func FromPlacer(p WorkerPlacer, partitions, workers int) Schedule {
	sched := make(Schedule, partitions)
	for i := range sched {
		w := p.PlaceWorker(i, workers)
		if w < 0 || w >= workers {
			w = int(hash64(uint64(i)) % uint64(workers))
		}
		sched[i] = w
	}
	return sched
}

// WorkerLoads aggregates per-partition loads into per-worker loads under the
// schedule.
func (s Schedule) WorkerLoads(loads []float64, workers int) []float64 {
	out := make([]float64, workers)
	for p, w := range s {
		if p < len(loads) {
			out[w] += loads[p]
		}
	}
	return out
}

// MaxLoad returns the largest per-worker load under the schedule.
func (s Schedule) MaxLoad(loads []float64, workers int) float64 {
	wl := s.WorkerLoads(loads, workers)
	max := 0.0
	for _, l := range wl {
		if l > max {
			max = l
		}
	}
	return max
}

// hash64 is the splitmix64 finalizer, used for cheap deterministic hashing of
// partition indices and tuple IDs throughout the repository.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashID exposes hash64 combined with a salt for plans that need a
// deterministic pseudo-random function of a tuple ID (e.g. 1-Bucket row and
// column choices).
func HashID(id int64, salt uint64) uint64 {
	return hash64(uint64(id)*0x9e3779b97f4a7c15 ^ hash64(salt))
}

type workerLoad struct {
	worker int
	load   float64
}

type workerHeap []workerLoad

func (h workerHeap) Len() int            { return len(h) }
func (h workerHeap) Less(i, j int) bool  { return h[i].load < h[j].load }
func (h workerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x interface{}) { *h = append(*h, x.(workerLoad)) }
func (h *workerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
