package cluster

import (
	"fmt"
	"net"
)

// LocalCluster is a set of in-process workers listening on loopback TCP
// ports. It exists so that tests, examples, and the quickstart can exercise
// the real RPC data path without deploying separate processes.
type LocalCluster struct {
	listeners []net.Listener
	workers   []*Worker
	addrs     []string
}

// StartLocal starts n in-process workers on ephemeral loopback ports.
func StartLocal(n int) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one worker, got %d", n)
	}
	lc := &LocalCluster{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lc.Stop()
			return nil, fmt.Errorf("cluster: starting local worker %d: %w", i, err)
		}
		w := NewWorker(fmt.Sprintf("local-%d", i))
		go func() {
			// Serve returns when the listener is closed by Stop.
			_ = Serve(w, ln)
		}()
		lc.listeners = append(lc.listeners, ln)
		lc.workers = append(lc.workers, w)
		lc.addrs = append(lc.addrs, ln.Addr().String())
	}
	return lc, nil
}

// Addrs returns the worker addresses, suitable for Dial.
func (lc *LocalCluster) Addrs() []string { return lc.addrs }

// Handles returns the in-process worker services, letting tests inspect
// worker state (e.g. retained jobs) directly.
func (lc *LocalCluster) Handles() []*Worker { return lc.workers }

// Stop shuts down all workers.
func (lc *LocalCluster) Stop() {
	for _, ln := range lc.listeners {
		if ln != nil {
			ln.Close()
		}
	}
}
