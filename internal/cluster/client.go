package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/rpc"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerState is the coordinator-side health of one worker connection.
//
//	up      — the last RPC or heartbeat succeeded.
//	suspect — a call failed with a transport error (timeout, reset, EOF);
//	          the worker may be slow, restarting, or gone. Queries still try
//	          it; a failed probe demotes it to down.
//	down    — a probe or repeated heartbeats failed. Queries skip it; the
//	          background heartbeat keeps redialing, and any later successful
//	          call (heartbeat or query) promotes it straight back to up.
type WorkerState int32

const (
	StateUp WorkerState = iota
	StateSuspect
	StateDown
)

func (s WorkerState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// DialOptions configures the coordinator's fault-tolerance policy. The zero
// value selects production defaults (and requires every worker at Dial, like
// the original Dial).
type DialOptions struct {
	// MinWorkers is the number of reachable workers required for Dial to
	// succeed; unreachable workers start in the down state and are picked up
	// by the heartbeat when they appear. Zero requires every address to be
	// reachable (the strict historical behavior).
	MinWorkers int
	// CallTimeout is the per-attempt deadline of control-plane RPCs (Ping,
	// Load, Seal, Evict, Reset) and of dialing; zero selects 15s, negative
	// disables the deadline.
	CallTimeout time.Duration
	// JoinTimeout is the per-attempt deadline of Join RPCs, which legitimately
	// run long; zero selects 2m, negative disables the deadline (the caller's
	// context still bounds the query).
	JoinTimeout time.Duration
	// MaxRetries is how many times an idempotent RPC is retried after a
	// transport error before the failure escalates to recovery; zero selects
	// 3, negative disables retries.
	MaxRetries int
	// RetryBaseDelay/RetryMaxDelay shape the capped exponential backoff
	// between retries (base 25ms, cap 1s by default). Each attempt waits
	// base<<attempt, capped, plus deterministic jitter in [0, delay/2] drawn
	// from a per-worker generator seeded with Seed — no wall-clock randomness,
	// so a given fault sequence always backs off identically.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// HeartbeatInterval is the cadence of the background Ping probing every
	// worker (detecting silent deaths and redialing down workers); zero
	// selects 3s, negative disables the heartbeat.
	HeartbeatInterval time.Duration
	// Seed drives the retry jitter.
	Seed int64
}

// withDefaults fills unset knobs. It is idempotent.
func (o DialOptions) withDefaults() DialOptions {
	if o.CallTimeout == 0 {
		o.CallTimeout = 15 * time.Second
	}
	if o.JoinTimeout == 0 {
		o.JoinTimeout = 2 * time.Minute
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 25 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 3 * time.Second
	}
	return o
}

// callDeadline returns the effective per-attempt deadline of a control call
// (0 = none).
func (o DialOptions) callDeadline() time.Duration {
	if o.CallTimeout < 0 {
		return 0
	}
	return o.CallTimeout
}

// joinDeadline returns the effective per-attempt deadline of a Join call.
func (o DialOptions) joinDeadline() time.Duration {
	if o.JoinTimeout < 0 {
		return 0
	}
	return o.JoinTimeout
}

// probeDeadline bounds the liveness probes that decide worker death; they
// should answer quickly even when CallTimeout is generous.
func (o DialOptions) probeDeadline() time.Duration {
	d := o.callDeadline()
	if d == 0 || d > 3*time.Second {
		return 3 * time.Second
	}
	return d
}

// errCallTimeout marks an RPC attempt abandoned by the per-call deadline. The
// connection is dropped with it (aborting the in-flight call), so it is a
// transport-level failure: the request may or may not have executed.
var errCallTimeout = errors.New("cluster: rpc call timed out")

// heartbeatDownThreshold is how many consecutive heartbeat failures demote a
// worker to down (a single miss only makes it suspect).
const heartbeatDownThreshold = 2

// isTransportErr reports whether an RPC error is a transport-level failure
// (connection died, timed out, or was never established) as opposed to an
// application error returned by the worker's method. Transport failures leave
// the request's fate unknown and the worker's liveness in question; they are
// the errors worth retrying or failing over. net/rpc surfaces worker-side
// errors as rpc.ServerError and everything else as the raw read/write error.
func isTransportErr(err error) bool {
	if err == nil {
		return false
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, errCallTimeout) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// net/rpc flattens some transport failures into plain errors; recognize
	// the well-known spellings (ServerError was already excluded above).
	msg := err.Error()
	for _, marker := range []string{
		"connection is shut down",
		"connection reset",
		"connection refused",
		"broken pipe",
		"use of closed network connection",
		"EOF",
	} {
		if strings.Contains(msg, marker) {
			return true
		}
	}
	return false
}

// countingConn wraps a worker connection and counts wire bytes in both
// directions into the owning workerClient's counters, so the result's
// shuffle-byte accounting reports real post-gob sizes and survives redials.
type countingConn struct {
	net.Conn
	read    *atomic.Int64
	written *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// workerClient wraps one worker's RPC connection with health tracking,
// per-call deadlines, retry with deterministic backoff, and automatic redial.
type workerClient struct {
	idx  int
	addr string
	opts DialOptions

	state   atomic.Int32
	hbFails atomic.Int32
	hbBusy  atomic.Bool

	// Wire-byte counters live here rather than on the connection so the
	// accounting survives reconnects.
	read    atomic.Int64
	written atomic.Int64

	mu         sync.Mutex // guards client, workerName
	client     *rpc.Client
	workerName string

	// wireVer is the chunk format version the worker advertised in the Ping
	// answered at dial time (re-negotiated on every redial, so a worker
	// restarted with different capabilities is picked up automatically). Zero
	// until the first successful Ping — senders treat anything below
	// wire.Version as "use the v1 row-major format".
	wireVer atomic.Int32

	rngMu sync.Mutex
	rng   *rand.Rand

	// onTransition, when set (before the client is shared across goroutines),
	// observes every health-state change — the coordinator's metrics hook.
	onTransition func(from, to WorkerState)
}

func newWorkerClient(idx int, addr string, opts DialOptions) *workerClient {
	wc := &workerClient{idx: idx, addr: addr, opts: opts}
	wc.rng = rand.New(rand.NewSource(opts.Seed*1315423911 + int64(idx) + 1))
	wc.state.Store(int32(StateDown))
	return wc
}

// State returns the worker's current health state.
func (wc *workerClient) State() WorkerState { return WorkerState(wc.state.Load()) }

// setState moves the health state and reports the transition (if any) to the
// hook. Swap makes the old state unambiguous under concurrent markers.
func (wc *workerClient) setState(to WorkerState) {
	from := WorkerState(wc.state.Swap(int32(to)))
	if from != to && wc.onTransition != nil {
		wc.onTransition(from, to)
	}
}

func (wc *workerClient) markUp() {
	wc.setState(StateUp)
	wc.hbFails.Store(0)
}

// markSuspect demotes an up worker after a transport failure; a down worker
// stays down (only a successful call resurrects it).
func (wc *workerClient) markSuspect() {
	if wc.state.CompareAndSwap(int32(StateUp), int32(StateSuspect)) && wc.onTransition != nil {
		wc.onTransition(StateUp, StateSuspect)
	}
}

func (wc *workerClient) markDown() { wc.setState(StateDown) }

// name returns the worker's self-reported display name (its address until the
// first successful Ping).
func (wc *workerClient) name() string {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.workerName != "" {
		return wc.workerName
	}
	return wc.addr
}

// conn returns the current client, dialing (with the call deadline) and
// verifying the worker with a Ping if there is none.
func (wc *workerClient) conn() (*rpc.Client, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.client != nil {
		return wc.client, nil
	}
	dialTimeout := wc.opts.callDeadline()
	var conn net.Conn
	var err error
	if dialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", wc.addr, dialTimeout)
	} else {
		conn, err = net.Dial("tcp", wc.addr)
	}
	if err != nil {
		return nil, err
	}
	cl := rpc.NewClient(&countingConn{Conn: conn, read: &wc.read, written: &wc.written})
	var pong PingReply
	if err := rawTimedCall(cl, ServiceName+".Ping", &PingArgs{}, &pong, wc.opts.probeDeadline()); err != nil {
		cl.Close()
		return nil, err
	}
	wc.client = cl
	wc.workerName = pong.Worker
	wc.wireVer.Store(int32(pong.WireVersion))
	return cl, nil
}

// wireVersion returns the chunk format version negotiated with the worker.
func (wc *workerClient) wireVersion() int { return int(wc.wireVer.Load()) }

// dropConn closes and forgets cl if it is still the current connection,
// aborting every call in flight on it. Concurrent callers that already hold
// cl get rpc.ErrShutdown and redial on their next attempt.
func (wc *workerClient) dropConn(cl *rpc.Client) {
	wc.mu.Lock()
	if wc.client == cl {
		wc.client = nil
	}
	wc.mu.Unlock()
	cl.Close()
}

// close tears the connection down for good (coordinator shutdown).
func (wc *workerClient) close() {
	wc.mu.Lock()
	cl := wc.client
	wc.client = nil
	wc.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// rawTimedCall is a bare deadline-guarded call used while the connection is
// being established (before it is published to other goroutines).
func rawTimedCall(cl *rpc.Client, method string, args, reply any, timeout time.Duration) error {
	if timeout <= 0 {
		return cl.Call(method, args, reply)
	}
	call := cl.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case c := <-call.Done:
		return c.Error
	case <-timer.C:
		return fmt.Errorf("%w: %s after %v", errCallTimeout, method, timeout)
	}
}

// callOnce issues one RPC attempt with a deadline, updating the health state.
// A timeout or cancellation drops the connection, aborting the in-flight call
// (a hung worker must never pin the query). The attempt decodes into a fresh
// reply value and copies it out only on success, so a retry can never race an
// abandoned attempt's decode into the same reply.
func (wc *workerClient) callOnce(ctx context.Context, method string, args, reply any, timeout time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cl, err := wc.conn()
	if err != nil {
		wc.markSuspect()
		return err
	}
	attemptReply := reflect.New(reflect.TypeOf(reply).Elem()).Interface()
	call := cl.Go(method, args, attemptReply, make(chan *rpc.Call, 1))
	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case <-ctx.Done():
		wc.dropConn(cl)
		return ctx.Err()
	case <-timerC:
		wc.dropConn(cl)
		wc.markSuspect()
		return fmt.Errorf("%w: %s to worker %d (%s) after %v", errCallTimeout, method, wc.idx, wc.name(), timeout)
	case c := <-call.Done:
		if c.Error != nil {
			if isTransportErr(c.Error) {
				wc.dropConn(cl)
				wc.markSuspect()
			}
			return c.Error
		}
		wc.markUp()
		reflect.ValueOf(reply).Elem().Set(reflect.ValueOf(attemptReply).Elem())
		return nil
	}
}

// call issues an RPC with the retry policy for idempotent methods: transport
// errors are retried up to `retries` times with capped exponential backoff and
// deterministic jitter; application errors and context cancellation return
// immediately. onRetry (optional) is invoked before each retry so queries can
// account for them.
func (wc *workerClient) call(ctx context.Context, method string, args, reply any, timeout time.Duration, retries int, onRetry func()) error {
	for attempt := 0; ; attempt++ {
		err := wc.callOnce(ctx, method, args, reply, timeout)
		if err == nil {
			return nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if !isTransportErr(err) || attempt >= retries {
			return err
		}
		if onRetry != nil {
			onRetry()
		}
		if berr := wc.backoff(ctx, attempt); berr != nil {
			return err
		}
	}
}

// backoff sleeps base<<attempt capped at the max, plus deterministic jitter in
// [0, delay/2] from the per-worker seeded generator, honoring ctx.
func (wc *workerClient) backoff(ctx context.Context, attempt int) error {
	d := wc.opts.RetryBaseDelay
	for i := 0; i < attempt && d < wc.opts.RetryMaxDelay; i++ {
		d *= 2
	}
	if d > wc.opts.RetryMaxDelay {
		d = wc.opts.RetryMaxDelay
	}
	wc.rngMu.Lock()
	jitter := time.Duration(wc.rng.Int63n(int64(d)/2 + 1))
	wc.rngMu.Unlock()
	timer := time.NewTimer(d + jitter)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// probe decides, after a transport failure, whether the worker is alive: a
// short Ping, retried once. Alive workers can have their partial state cleared
// and reshipped; a worker that fails the probe is marked down and its
// partitions fail over to the survivors (the heartbeat keeps redialing it).
func (wc *workerClient) probe(ctx context.Context) bool {
	for attempt := 0; attempt < 2; attempt++ {
		if ctx.Err() != nil {
			return false
		}
		if attempt > 0 {
			if wc.backoff(ctx, 0) != nil {
				return false
			}
		}
		var pong PingReply
		if wc.callOnce(ctx, ServiceName+".Ping", &PingArgs{}, &pong, wc.opts.probeDeadline()) == nil {
			return true
		}
	}
	wc.markDown()
	return false
}

// heartbeat fires one background liveness probe unless the previous one is
// still in flight (a hung worker must not stack probes). Failures demote the
// worker (suspect, then down); any success — including the redial inside
// callOnce — promotes it back to up.
func (wc *workerClient) heartbeat() {
	if !wc.hbBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer wc.hbBusy.Store(false)
		var pong PingReply
		err := wc.callOnce(context.Background(), ServiceName+".Ping", &PingArgs{}, &pong, wc.opts.probeDeadline())
		if err != nil && wc.hbFails.Add(1) >= heartbeatDownThreshold {
			wc.markDown()
		}
	}()
}

// Dial connects to the given worker addresses with default fault-tolerance
// options; every address must be reachable.
func Dial(addrs []string) (*Coordinator, error) {
	return DialConfig(addrs, DialOptions{})
}

// DialConfig connects to the given worker addresses. With opts.MinWorkers > 0
// the coordinator starts as long as that many workers are reachable; the rest
// begin down and join the pool when the background heartbeat reaches them.
func DialConfig(addrs []string, opts DialOptions) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	opts = opts.withDefaults()
	if opts.MinWorkers > len(addrs) {
		return nil, fmt.Errorf("cluster: MinWorkers %d exceeds the %d worker addresses", opts.MinWorkers, len(addrs))
	}
	c := &Coordinator{opts: opts, hbStop: make(chan struct{})}
	c.m = newCoordMetrics(c)
	reachable := 0
	var firstErr error
	for i, addr := range addrs {
		wc := newWorkerClient(i, addr, opts)
		wc.onTransition = c.m.transition
		if _, err := wc.conn(); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: dialing worker %s: %w", addr, err)
			}
		} else {
			wc.markUp()
			reachable++
		}
		c.workers = append(c.workers, wc)
	}
	need := opts.MinWorkers
	if need == 0 {
		need = len(addrs)
	}
	if reachable < need {
		c.Close()
		return nil, fmt.Errorf("cluster: only %d of %d workers reachable, need %d: %w",
			reachable, len(addrs), need, firstErr)
	}
	if opts.HeartbeatInterval > 0 {
		c.hbWG.Add(1)
		go c.heartbeatLoop()
	}
	return c, nil
}

// heartbeatLoop drives the background liveness probes until Close.
func (c *Coordinator) heartbeatLoop() {
	defer c.hbWG.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-ticker.C:
		}
		for _, wc := range c.workers {
			wc.heartbeat()
		}
	}
}
