package cluster

import (
	"context"
	"fmt"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
)

// skewedClusterInputs builds a point-mass workload: roughly half of S sits on
// one point, so any spatial partitioner must route it to a single partition —
// one worker's join dominates unless morsels spread it.
func skewedClusterInputs(n int, seed int64) (*data.Relation, *data.Relation, data.Band) {
	s, t := data.ParetoPair(2, 1.5, n, seed)
	sk := data.NewRelation("S", 2)
	for i := 0; i < s.Len(); i++ {
		if i%2 == 0 {
			sk.Append(0.5, 0.5)
		} else {
			sk.Append(s.Key(i)...)
		}
	}
	return sk, t, data.Symmetric(0.2, 0.2)
}

// TestWorkerMorselMatchesPerPartitionOracle pins the worker-side morsel path
// against the retained per-partition path at the RPC level, on a point-mass
// skewed workload, for both the transient and the retained partition
// lifecycle: bit-identical pairs and accounting for every MorselRows setting.
func TestWorkerMorselMatchesPerPartitionOracle(t *testing.T) {
	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	s, tt, band := skewedClusterInputs(700, 19)
	plan, pctx := retainPlanFor(t, core.NewRecPartS(), s, tt, band, 3)

	for _, mode := range []string{"transient", "retained"} {
		t.Run(mode, func(t *testing.T) {
			run := func(morselRows int) *exec.Result {
				opts := Options{CollectPairs: true, ChunkSize: 128, MorselRows: morselRows}
				if mode == "retained" {
					opts.PlanID = fmt.Sprintf("morsel-%s", mode)
				}
				res, err := coord.RunPlan(context.Background(), plan, pctx, s, tt, band, opts)
				if err != nil {
					t.Fatalf("RunPlan(MorselRows=%d): %v", morselRows, err)
				}
				return res
			}
			oracle := run(-1)
			if oracle.Output == 0 {
				t.Fatal("oracle produced no pairs; widen the band")
			}
			for _, rows := range []int{16, 1, 0} {
				got := run(rows)
				if got.Output != oracle.Output || got.TotalInput != oracle.TotalInput ||
					got.Im != oracle.Im || got.Om != oracle.Om {
					t.Errorf("rows=%d: accounting (out=%d I=%d Im=%d Om=%d) differs from oracle (out=%d I=%d Im=%d Om=%d)",
						rows, got.Output, got.TotalInput, got.Im, got.Om,
						oracle.Output, oracle.TotalInput, oracle.Im, oracle.Om)
				}
				samePairs(t, fmt.Sprintf("rows=%d vs oracle", rows), got.Pairs, oracle.Pairs)
			}
		})
	}

	// The morsel runs must have surfaced in the worker skew counters.
	stats := coord.Stats(context.Background())
	var morsels int64
	for _, ws := range stats.Workers {
		if ws.Err != "" {
			t.Fatalf("worker %d unreachable: %s", ws.Slot, ws.Err)
		}
		morsels += ws.Stats.Morsels
		if ws.Stats.Morsels > 0 && ws.Stats.StragglerRatio < 1.0 {
			t.Errorf("worker %d: straggler ratio %f < 1 after morsel runs", ws.Slot, ws.Stats.StragglerRatio)
		}
	}
	if morsels == 0 {
		t.Error("no worker reported executed morsels after morsel-path runs")
	}
}

// TestSerialPlaneForcesPerPartitionPath: the serial reference data plane is
// the correctness oracle, so it must ignore a morsel request and keep its
// sequential per-partition schedule — while still producing identical pairs.
func TestSerialPlaneForcesPerPartitionPath(t *testing.T) {
	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	s, tt, band := skewedClusterInputs(400, 5)
	plan, pctx := retainPlanFor(t, core.NewRecPartS(), s, tt, band, 3)

	streaming, err := coord.RunPlan(context.Background(), plan, pctx, s, tt, band,
		Options{CollectPairs: true, ChunkSize: 128, MorselRows: 16})
	if err != nil {
		t.Fatalf("streaming RunPlan: %v", err)
	}
	before := int64(0)
	for _, ws := range coord.Stats(context.Background()).Workers {
		before += ws.Stats.Morsels
	}
	if before == 0 {
		t.Fatal("streaming morsel run executed no morsels")
	}
	serial, err := coord.RunPlan(context.Background(), plan, pctx, s, tt, band,
		Options{CollectPairs: true, ChunkSize: 128, MorselRows: 16, Serial: true})
	if err != nil {
		t.Fatalf("serial RunPlan: %v", err)
	}
	samePairs(t, "serial vs streaming", serial.Pairs, streaming.Pairs)
	after := int64(0)
	for _, ws := range coord.Stats(context.Background()).Workers {
		after += ws.Stats.Morsels
	}
	if after != before {
		t.Errorf("serial plane executed %d morsels, want 0 (it is the per-partition oracle)", after-before)
	}
}
