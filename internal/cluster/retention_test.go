package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// retainPlanFor runs one partitioner's optimization phase for the retention
// tests.
func retainPlanFor(t *testing.T, pt partition.Partitioner, s, tt *data.Relation, band data.Band, workers int) (partition.Plan, *partition.Context) {
	t.Helper()
	smp, err := sample.Draw(s, tt, band, sample.DefaultOptions())
	if err != nil {
		t.Fatalf("sampling: %v", err)
	}
	ctx := &partition.Context{Band: band, Workers: workers, Sample: smp, Model: costmodel.Default(), Seed: 7}
	plan, err := pt.Plan(ctx)
	if err != nil {
		t.Fatalf("%s optimization: %v", pt.Name(), err)
	}
	return plan, ctx
}

func samePairs(t *testing.T, label string, a, b []exec.Pair) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: pair counts differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: pair %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

// TestRetainedPlanZeroShuffleRerun is the core warm-partition property: a
// repeated RunPlan naming the same plan fingerprint must move zero shuffle
// bytes and zero Load RPCs, and report bit-identical accounting and pairs,
// on both data planes.
func TestRetainedPlanZeroShuffleRerun(t *testing.T) {
	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	s, tt := data.ParetoPair(2, 1.4, 500, 11)
	band := data.Symmetric(0.3, 0.3)
	plan, ctx := retainPlanFor(t, core.NewRecPartS(), s, tt, band, 3)

	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			opts := Options{PlanID: fmt.Sprintf("test-plan-serial=%v", serial), CollectPairs: true, ChunkSize: 128, Serial: serial}
			cold, err := coord.RunPlan(context.Background(), plan, ctx, s, tt, band, opts)
			if err != nil {
				t.Fatalf("cold RunPlan: %v", err)
			}
			if cold.ShuffleBytes == 0 || cold.ShuffleRPCs == 0 {
				t.Fatalf("cold run reports no shuffle traffic (bytes=%d rpcs=%d)", cold.ShuffleBytes, cold.ShuffleRPCs)
			}
			warm, err := coord.RunPlan(context.Background(), plan, ctx, s, tt, band, opts)
			if err != nil {
				t.Fatalf("warm RunPlan: %v", err)
			}
			if warm.ShuffleBytes != 0 || warm.ShuffleRPCs != 0 {
				t.Errorf("warm run shuffled: bytes=%d rpcs=%d, want 0/0", warm.ShuffleBytes, warm.ShuffleRPCs)
			}
			if warm.TotalInput != cold.TotalInput || warm.Output != cold.Output ||
				warm.Im != cold.Im || warm.Om != cold.Om || warm.Partitions != cold.Partitions {
				t.Errorf("warm accounting differs: cold (I=%d out=%d Im=%d Om=%d parts=%d), warm (I=%d out=%d Im=%d Om=%d parts=%d)",
					cold.TotalInput, cold.Output, cold.Im, cold.Om, cold.Partitions,
					warm.TotalInput, warm.Output, warm.Im, warm.Om, warm.Partitions)
			}
			samePairs(t, "cold vs warm", cold.Pairs, warm.Pairs)
		})
	}
}

// TestResetScopedToTransientJobs pins the Reset-scoping bugfix at the worker
// level: a Reset naming a retained plan's fingerprint must not evict it, and
// the plan must remain joinable.
func TestResetScopedToTransientJobs(t *testing.T) {
	w := NewWorker("scoped")
	chunk := data.NewRelation("c", 1)
	ids := make([]int64, 8)
	for i := 0; i < 8; i++ {
		chunk.Append(float64(i))
		ids[i] = int64(i)
	}
	for _, side := range []string{"S", "T"} {
		var lr LoadReply
		if err := w.Load(&LoadArgs{JobID: "plan-x", Partition: 0, Side: side, Chunk: chunk, IDs: ids, Retain: true}, &lr); err != nil {
			t.Fatalf("Load: %v", err)
		}
	}
	var sr SealReply
	if err := w.Seal(&SealArgs{PlanID: "plan-x"}, &sr); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if sr.Partitions != 1 {
		t.Fatalf("sealed partitions = %d, want 1", sr.Partitions)
	}

	var rr ResetReply
	if err := w.Reset(&ResetArgs{JobID: "plan-x"}, &rr); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := w.Retained(); got != 1 {
		t.Fatalf("Reset evicted the retained registry: %d plans resident, want 1", got)
	}
	var jr JoinReply
	if err := w.Join(&JoinArgs{JobID: "plan-x", Band: data.Symmetric(0.5), Retained: true}, &jr); err != nil {
		t.Fatalf("retained Join after Reset: %v", err)
	}
	if len(jr.Partitions) != 1 || jr.Partitions[0].Output == 0 {
		t.Fatalf("retained join produced %+v, want one partition with output", jr.Partitions)
	}

	// Eviction is explicit: Evict removes what Reset must not.
	var er EvictReply
	if err := w.Evict(&EvictArgs{PlanID: "plan-x"}, &er); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if !er.Existed || w.Retained() != 0 {
		t.Fatalf("Evict(existed=%v) left %d plans resident", er.Existed, w.Retained())
	}
}

// toggleFailLoadWorker fails Load RPCs while armed, letting a test ship a
// retained plan successfully and then inject a mid-shuffle failure into a
// later transient query.
type toggleFailLoadWorker struct {
	*Worker
	fail atomic.Bool
}

func (w *toggleFailLoadWorker) Load(args *LoadArgs, reply *LoadReply) error {
	if w.fail.Load() {
		return fmt.Errorf("synthetic mid-shuffle failure")
	}
	return w.Worker.Load(args, reply)
}

// TestFailedQueryPreservesRetainedRegistry is the fault-injection regression
// for the Reset-scoping bugfix, end to end: a transient query that fails
// mid-shuffle fires the coordinator's best-effort Reset on every worker, and
// the retained plan shipped before the failure must survive and still serve
// warm zero-shuffle queries with identical results.
func TestFailedQueryPreservesRetainedRegistry(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.3, 400, 13)
	band := data.Symmetric(0.35, 0.35)

	good := NewWorker("good")
	goodAddr, stopGood := serveService(t, good)
	defer stopGood()
	flaky := &toggleFailLoadWorker{Worker: NewWorker("flaky")}
	flakyAddr, stopFlaky := serveService(t, flaky)
	defer stopFlaky()

	coord, err := Dial([]string{goodAddr, flakyAddr})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	plan, ctx := retainPlanFor(t, core.NewRecPartS(), s, tt, band, 2)
	opts := Options{PlanID: "retained-under-fire", CollectPairs: true, ChunkSize: 64}
	cold, err := coord.RunPlan(context.Background(), plan, ctx, s, tt, band, opts)
	if err != nil {
		t.Fatalf("cold retained RunPlan: %v", err)
	}
	retainedBefore := good.Retained() + flaky.Worker.Retained()
	if retainedBefore == 0 {
		t.Fatal("no retained state resident after the cold run")
	}

	// Inject: a transient query now dies mid-shuffle; its deferred Reset
	// fires on both workers.
	flaky.fail.Store(true)
	if _, err := coord.RunPlan(context.Background(), plan, ctx, s, tt, band, Options{ChunkSize: 64}); err == nil {
		t.Fatal("transient run with a failing worker unexpectedly succeeded")
	}
	flaky.fail.Store(false)

	if got := good.Retained() + flaky.Worker.Retained(); got != retainedBefore {
		t.Fatalf("failed transient query changed the retained registry: %d plans resident, want %d", got, retainedBefore)
	}
	for _, w := range []*Worker{good, flaky.Worker} {
		var pong PingReply
		if err := w.Ping(&PingArgs{}, &pong); err != nil {
			t.Fatalf("Ping: %v", err)
		}
		if pong.Jobs != 0 {
			t.Errorf("worker %s retains %d transient jobs after failed run", w.name, pong.Jobs)
		}
	}

	warm, err := coord.RunPlan(context.Background(), plan, ctx, s, tt, band, opts)
	if err != nil {
		t.Fatalf("warm RunPlan after failed transient query: %v", err)
	}
	if warm.ShuffleBytes != 0 || warm.ShuffleRPCs != 0 {
		t.Errorf("warm run after failure shuffled: bytes=%d rpcs=%d, want 0/0", warm.ShuffleBytes, warm.ShuffleRPCs)
	}
	samePairs(t, "cold vs post-failure warm", cold.Pairs, warm.Pairs)
}

// TestRetainedEvictionFallsBackToCold: when a worker loses a retained plan
// (restart or retention-cap eviction) behind the coordinator's back, the next
// warm query must detect it via ErrUnknownRetainedPlan, reship cold, and
// still return the right answer; the query after that is warm again.
func TestRetainedEvictionFallsBackToCold(t *testing.T) {
	lc, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	s, tt := data.ParetoPair(2, 1.5, 350, 19)
	band := data.Symmetric(0.4, 0.4)
	plan, ctx := retainPlanFor(t, core.NewRecPartS(), s, tt, band, 2)
	opts := Options{PlanID: "evicted-behind-back", CollectPairs: true, ChunkSize: 64}

	cold, err := coord.RunPlan(context.Background(), plan, ctx, s, tt, band, opts)
	if err != nil {
		t.Fatalf("cold RunPlan: %v", err)
	}
	// Simulate worker-side loss without telling the coordinator.
	for _, w := range lc.Handles() {
		var er EvictReply
		if err := w.Evict(&EvictArgs{PlanID: opts.PlanID}, &er); err != nil {
			t.Fatalf("Evict: %v", err)
		}
	}

	reshipped, err := coord.RunPlan(context.Background(), plan, ctx, s, tt, band, opts)
	if err != nil {
		t.Fatalf("RunPlan after worker-side eviction: %v", err)
	}
	if reshipped.ShuffleBytes == 0 {
		t.Error("fallback run reports zero shuffle bytes; expected a cold reshipment")
	}
	samePairs(t, "cold vs fallback", cold.Pairs, reshipped.Pairs)

	warm, err := coord.RunPlan(context.Background(), plan, ctx, s, tt, band, opts)
	if err != nil {
		t.Fatalf("warm RunPlan after fallback: %v", err)
	}
	if warm.ShuffleBytes != 0 {
		t.Errorf("run after fallback shuffled %d bytes, want 0", warm.ShuffleBytes)
	}
	samePairs(t, "cold vs re-warm", cold.Pairs, warm.Pairs)
}

// TestWorkerMaxRetainedCap: the retention cap evicts the least-recently-sealed
// plan, and a retained join of an evicted plan fails with the
// ErrUnknownRetainedPlan marker coordinators key their fallback on.
func TestWorkerMaxRetainedCap(t *testing.T) {
	w := NewWorker("capped")
	w.SetMaxRetained(1)
	chunk := data.NewRelation("c", 1)
	ids := []int64{0, 1}
	chunk.Append(0.1)
	chunk.Append(0.2)

	for _, plan := range []string{"plan-a", "plan-b"} {
		var lr LoadReply
		if err := w.Load(&LoadArgs{JobID: plan, Partition: 0, Side: "S", Chunk: chunk, IDs: ids, Retain: true}, &lr); err != nil {
			t.Fatalf("Load(%s): %v", plan, err)
		}
		var sr SealReply
		if err := w.Seal(&SealArgs{PlanID: plan}, &sr); err != nil {
			t.Fatalf("Seal(%s): %v", plan, err)
		}
	}
	if got := w.Retained(); got != 1 {
		t.Fatalf("%d plans resident under cap 1", got)
	}
	var jr JoinReply
	err := w.Join(&JoinArgs{JobID: "plan-a", Band: data.Symmetric(1), Retained: true}, &jr)
	if err == nil || !strings.Contains(err.Error(), ErrUnknownRetainedPlan) {
		t.Fatalf("join of evicted plan: err = %v, want %q marker", err, ErrUnknownRetainedPlan)
	}
	if err := w.Join(&JoinArgs{JobID: "plan-b", Band: data.Symmetric(1), Retained: true}, &jr); err != nil {
		t.Fatalf("join of resident plan: %v", err)
	}
}
