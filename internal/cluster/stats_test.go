package cluster

import (
	"context"
	"strings"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
)

// TestClusterStatsAfterRetainedRuns drives a cold + warm retained query and
// checks the cluster-wide Stats view: data-plane totals on the workers, the
// retained-tier hit accounting, coordinator aggregates, and the Prometheus
// exposition of both registries.
func TestClusterStatsAfterRetainedRuns(t *testing.T) {
	lc, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	s, tt := data.ParetoPair(2, 1.4, 400, 13)
	band := data.Symmetric(0.3, 0.3)
	plan, pctx := retainPlanFor(t, core.NewRecPartS(), s, tt, band, 2)
	opts := Options{PlanID: "stats-plan", ChunkSize: 128}

	cold, err := coord.RunPlan(context.Background(), plan, pctx, s, tt, band, opts)
	if err != nil {
		t.Fatalf("cold RunPlan: %v", err)
	}
	if cold.WarmPartitions {
		t.Error("cold run reports WarmPartitions")
	}
	warm, err := coord.RunPlan(context.Background(), plan, pctx, s, tt, band, opts)
	if err != nil {
		t.Fatalf("warm RunPlan: %v", err)
	}
	if !warm.WarmPartitions {
		t.Error("warm run does not report WarmPartitions")
	}

	cs := coord.Stats(context.Background())
	if len(cs.Workers) != 2 || cs.Live != 2 {
		t.Fatalf("stats reports %d workers, %d live; want 2/2", len(cs.Workers), cs.Live)
	}
	if cs.RetainedPlans != 1 {
		t.Errorf("coordinator retained plans = %d, want 1", cs.RetainedPlans)
	}
	if cs.WireBytes == 0 {
		t.Error("wire bytes = 0 after a cold shuffle")
	}
	var loadRPCs, loadTuples, loadBytes, joined, pairs, retainedHits, seals, retainedBytes int64
	for _, ws := range cs.Workers {
		if ws.Err != "" {
			t.Fatalf("worker %d unreachable: %s", ws.Slot, ws.Err)
		}
		if ws.Stats.Draining {
			t.Errorf("worker %d reports draining", ws.Slot)
		}
		loadRPCs += ws.Stats.LoadRPCs
		loadTuples += ws.Stats.LoadTuples
		loadBytes += ws.Stats.LoadBytes
		joined += ws.Stats.PartitionsJoined
		pairs += ws.Stats.PairsEmitted
		retainedHits += ws.Stats.RetainedHits
		seals += ws.Stats.Seals
		retainedBytes += ws.Stats.RetainedBytes
	}
	if loadRPCs == 0 || loadTuples == 0 || loadBytes == 0 {
		t.Errorf("load totals zero: rpcs=%d tuples=%d bytes=%d", loadRPCs, loadTuples, loadBytes)
	}
	if loadTuples != cold.TotalInput {
		t.Errorf("loaded tuples = %d, want total input %d", loadTuples, cold.TotalInput)
	}
	// Both the cold run (post-seal) and the warm run join retained state.
	if retainedHits < 2 {
		t.Errorf("retained hits = %d, want >= 2", retainedHits)
	}
	if joined == 0 || pairs != cold.Output+warm.Output {
		t.Errorf("join totals: partitions=%d pairs=%d, want pairs %d", joined, pairs, cold.Output+warm.Output)
	}
	if seals != 2 {
		t.Errorf("seals = %d, want one per worker", seals)
	}
	if retainedBytes == 0 {
		t.Error("retained bytes = 0 with a sealed plan resident")
	}

	rendered := cs.String()
	if !strings.Contains(rendered, "2/2 workers live") || !strings.Contains(rendered, "local-0") {
		t.Errorf("ClusterStats rendering missing expected content:\n%s", rendered)
	}

	var workerProm strings.Builder
	lc.Handles()[0].Metrics().WritePrometheus(&workerProm)
	for _, series := range []string{
		"bandjoin_worker_load_rpcs_total",
		"bandjoin_worker_retained_join_total{outcome=\"hit\"}",
		"bandjoin_worker_partition_join_seconds_bucket",
		"bandjoin_worker_retained_bytes",
	} {
		if !strings.Contains(workerProm.String(), series) {
			t.Errorf("worker /metrics missing %s", series)
		}
	}

	var coordProm strings.Builder
	coord.Metrics().WritePrometheus(&coordProm)
	if !strings.Contains(coordProm.String(), "bandjoin_coord_runs_total 2") {
		t.Errorf("coordinator /metrics missing runs_total 2:\n%s", coordProm.String())
	}
	if !strings.Contains(coordProm.String(), "bandjoin_coord_retained_plans 1") {
		t.Errorf("coordinator /metrics missing retained_plans gauge:\n%s", coordProm.String())
	}
}

// TestStatsWhileDraining pins the drain-visibility contract: Stats answers on
// a draining worker, reports the flag, and counts the rejected data-plane
// work; the draining gauge flips in the Prometheus exposition.
func TestStatsWhileDraining(t *testing.T) {
	w := NewWorker("drainer")
	if !w.Drain(0) {
		t.Fatal("Drain with no inflight work did not complete")
	}

	chunk := data.NewRelation("c", 1)
	chunk.Append(1)
	err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "S", Chunk: chunk, IDs: []int64{0}}, &LoadReply{})
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("Load on draining worker: err = %v, want draining rejection", err)
	}

	var sr StatsReply
	if err := w.Stats(&StatsArgs{}, &sr); err != nil {
		t.Fatalf("Stats on draining worker: %v", err)
	}
	if !sr.Draining {
		t.Error("StatsReply.Draining = false on a draining worker")
	}
	if sr.LoadRejected != 1 {
		t.Errorf("LoadRejected = %d, want 1", sr.LoadRejected)
	}
	var pong PingReply
	if err := w.Ping(&PingArgs{}, &pong); err != nil {
		t.Fatalf("Ping on draining worker: %v", err)
	}
	if !pong.Draining {
		t.Error("PingReply.Draining = false on a draining worker")
	}

	var prom strings.Builder
	w.Metrics().WritePrometheus(&prom)
	if !strings.Contains(prom.String(), "bandjoin_worker_draining 1") {
		t.Errorf("draining gauge not 1:\n%s", prom.String())
	}
}
