// Package cluster provides a genuinely distributed execution path for
// band-joins: a coordinator ships partitioned input to worker processes over
// net/rpc (gob encoding) and collects the local-join results. It plays the
// role of the paper's Hadoop/MapReduce cluster in a minimal, dependency-free
// form: the partitioning plans are exactly the same as in the in-process
// simulator (internal/exec); only the transport differs. Workers can run in
// separate processes (cmd/recpartd) or in-process for tests.
package cluster

import (
	"fmt"

	"bandjoin/internal/data"
)

// ServiceName is the name the worker RPC service is registered under.
const ServiceName = "BandJoinWorker"

// LoadArgs ships one batch of partition input to a worker. Batches for the
// same partition accumulate on the worker. Exactly one of Chunk and Packed
// must be set: Chunk is the reference (serial) plane's representation — a
// Relation gob-encoded value by value — while the streaming plane ships
// Packed, whose raw byte payload gob moves with single copies.
type LoadArgs struct {
	JobID     string
	Partition int
	// Side is "S" or "T".
	Side  string
	Chunk *data.Relation
	// IDs are the original tuple indices of the chunk, used to report result
	// pairs for verification. Set together with Chunk.
	IDs []int64
	// Packed is the streaming plane's v1 compact chunk representation.
	Packed *PackedChunk
	// Columnar is the streaming plane's v2 chunk representation: a
	// self-describing columnar compressed chunk encoded by internal/wire
	// (per-dimension column slabs, delta+varint and optional LZ4-style block
	// compression). Senders use it when the worker's Ping advertised
	// WireVersion >= wire.Version and compression is not off; exactly one of
	// Chunk, Packed, and Columnar must be set on a data-bearing Load.
	Columnar []byte
	// SideTotal, when positive, is the total number of tuples this
	// (partition, side) will receive over the whole shuffle — the columnar
	// path's counterpart of PackedChunk.SideTotal, used by the worker to
	// reserve storage once.
	SideTotal int
	// Complete marks this Load as a per-partition end-of-shipment marker (it
	// carries no data): every chunk of the partition has been issued on this
	// connection. Once the resident tuple counts reach ExpectS/ExpectT the
	// worker may start presorting and preparing the partition's join structure
	// in the background, overlapping with later partitions still in flight —
	// the streaming plane's pipelined-join path.
	Complete bool
	// ExpectS/ExpectT are the partition's total tuple counts per side,
	// guarding the marker against net/rpc's out-of-order request dispatch.
	ExpectS int
	ExpectT int
	// Band and Algorithm describe the upcoming Join call so the background
	// preparation builds the right structure. Set only on marker Loads.
	Band      data.Band
	Algorithm string
	// Retain stores the partition data in the worker's retained-plan registry
	// under JobID (a plan fingerprint) instead of the transient job table:
	// the data survives job completion, failure, and Reset, and serves later
	// joins of the same plan with zero shuffle. The shipment must be completed
	// with a Seal call before the plan becomes joinable.
	Retain bool
	// Delta marks a retained load as an incremental append into an already
	// sealed plan (Engine.Append's delta shuffle): the worker accepts it
	// without unsealing, appends the rows to the resident partition (creating
	// it if the delta opens a new partition), and marks the partition's
	// presort order and prepared join structure stale — they are rebuilt
	// lazily on the next probe, not eagerly at append time. Requires Retain.
	Delta bool
}

// PackedChunk is the streaming shuffle's wire representation of one chunk:
// keys and original tuple IDs packed as raw little-endian bytes
// (data.Relation.PackKeysLE and data.PackInt64sLE). gob copies a []byte wholesale,
// so encoding and decoding cost a memcpy per chunk instead of a reflective
// per-value walk — the difference is most of the serial plane's wire CPU.
type PackedChunk struct {
	Dims int
	// Keys holds n*Dims float64 values, row-major, 8 bytes each.
	Keys []byte
	// IDs holds n int64 values, 8 bytes each.
	IDs []byte
	// SideTotal, when positive, is the total number of tuples this
	// (partition, side) will receive over the whole shuffle. The streaming
	// sender knows it up front (partitions are routed before shipping), and
	// the worker uses it to reserve storage once instead of growing
	// repeatedly under append.
	SideTotal int
}

// Tuples returns the number of tuples in the chunk, or an error if the
// payload is misaligned.
func (pc *PackedChunk) Tuples() (int, error) {
	if pc.Dims < 1 {
		return 0, fmt.Errorf("cluster: packed chunk has invalid dimensionality %d", pc.Dims)
	}
	if len(pc.Keys)%(8*pc.Dims) != 0 {
		return 0, fmt.Errorf("cluster: packed chunk has %d key bytes, not a multiple of %d", len(pc.Keys), 8*pc.Dims)
	}
	n := len(pc.Keys) / (8 * pc.Dims)
	if len(pc.IDs) != n*8 {
		return 0, fmt.Errorf("cluster: packed chunk has %d id bytes for %d tuples", len(pc.IDs), n)
	}
	return n, nil
}

// LoadReply acknowledges a batch.
type LoadReply struct {
	Received int
}

// JoinArgs starts the local joins of one job on a worker.
type JoinArgs struct {
	JobID string
	Band  data.Band
	// Algorithm is the local join algorithm name (see localjoin.ByName);
	// empty selects the default.
	Algorithm string
	// CollectPairs requests the result pairs (original tuple index pairs) in
	// the reply; otherwise only counts are returned.
	CollectPairs bool
	// Parallelism bounds the number of partition joins the worker runs
	// concurrently; zero means the worker's GOMAXPROCS, and the worker may cap
	// it further (Worker.SetMaxParallelism).
	Parallelism int
	// Retained joins the sealed retained plan named by JobID (a plan
	// fingerprint) instead of a transient job. The call fails with
	// ErrUnknownRetainedPlan if the worker does not hold a sealed plan under
	// that fingerprint (never shipped, evicted, or restarted), signalling the
	// coordinator to fall back to a cold shuffle.
	Retained bool
	// MorselRows selects the worker's join execution grain: 0 (also what gob
	// zero-fills for coordinators that predate the field) runs the
	// morsel-driven scheduler with an automatic probe-side morsel size, > 0
	// fixes the morsel row count, and < 0 selects the retained
	// one-goroutine-per-partition path (the correctness oracle and skew
	// baseline). All settings produce bit-identical replies.
	MorselRows int
}

// ErrUnknownRetainedPlan is the error-text marker a worker includes when a
// retained join names a plan fingerprint it does not hold. net/rpc flattens
// errors to strings, so coordinators detect the condition by substring.
const ErrUnknownRetainedPlan = "unknown retained plan"

// PartitionStats reports one partition's local-join outcome.
type PartitionStats struct {
	Partition int
	InputS    int
	InputT    int
	Output    int64
	// JoinNanos is the local join's measured duration.
	JoinNanos int64
	// RebuildNanos is the time this probe spent re-sorting and re-building the
	// partition's prepared join structure after delta appends invalidated it
	// (zero when the sealed structure was still fresh).
	RebuildNanos int64
	// PairS/PairT are parallel slices of result pairs when requested.
	PairS []int64
	PairT []int64
}

// JoinReply aggregates a worker's local joins for one job.
type JoinReply struct {
	Worker     string
	Partitions []PartitionStats
}

// ResetArgs clears a transient job's state on a worker. Reset is scoped to
// the transient job table only: retained plans (see LoadArgs.Retain) are
// never touched by Reset, so a failed or completed query cannot evict the
// registry — eviction is a separate, explicit Evict call.
type ResetArgs struct {
	JobID string
}

// ResetReply acknowledges a reset.
type ResetReply struct{}

// SealArgs completes the shipment of a retained plan: it marks the plan
// joinable on the worker (creating an empty entry on workers that received no
// partitions, so "sealed with zero partitions" is distinguishable from
// "evicted"). Sealing presorts the partitions and prebuilds each partition's
// reusable local-join structure for the plan's band and algorithm — paid once
// at retention time, so warm queries go straight to probing. Sealing may
// evict the oldest retained plan if the worker's retention cap is exceeded.
type SealArgs struct {
	PlanID string
	// Band is the plan's band condition; a retained plan's fingerprint pins
	// the band, so the join structure prebuilt for it serves every later
	// query of the plan.
	Band data.Band
	// Algorithm is the local join algorithm name the structure is built for
	// (empty selects the default).
	Algorithm string
}

// SealReply reports the sealed plan's resident partition count.
type SealReply struct {
	Partitions int
}

// EvictArgs discards one retained plan, or every retained plan when PlanID is
// empty. It is the invalidation path an engine uses when a dataset is
// unregistered or replaced.
type EvictArgs struct {
	PlanID string
}

// EvictReply reports whether the plan was resident.
type EvictReply struct {
	Existed bool
}

// StatsArgs requests a worker's observability counters.
type StatsArgs struct{}

// StatsReply is one worker's cumulative observability snapshot: occupancy
// (jobs, retained plans/bytes), data-plane totals (Load/Join RPCs, tuples,
// bytes, pairs), retained-tier outcomes, and pool state. Like Ping, Stats
// answers while draining — an operator watching a drain needs the numbers
// most right then.
type StatsReply struct {
	Worker   string
	Draining bool

	// Occupancy.
	Jobs           int
	RetainedPlans  int
	RetainedBytes  int64
	TransientBytes int64
	JoinInflight   int64

	// Load path. LoadBytes counts payload bytes as shipped (wire form);
	// LoadRawBytes counts what the same tuples would occupy row-major and
	// uncompressed (8 bytes per key value and per ID), so raw/wire is the
	// worker-observed compression ratio. DecodeNanos is total time spent
	// decoding columnar chunks into partition arenas.
	LoadRPCs     int64
	LoadTuples   int64
	LoadBytes    int64
	LoadRawBytes int64
	DecodeNanos  int64
	LoadRejected int64
	// Delta path: incremental appends into sealed retained plans
	// (LoadArgs.Delta) and the lazy rebuilds of prepared join structures they
	// invalidated.
	DeltaLoads        int64
	DeltaTuples       int64
	StaleRebuilds     int64
	StaleRebuildNanos int64

	// Join path. Morsels/MorselSteals/StragglerRatio are the morsel
	// scheduler's skew accounting: probe-side morsels executed, morsels run
	// by a pool worker other than their partition's first claimer, and the
	// last join's max/mean partition probe-row ratio (1.0 = balanced).
	JoinRPCs         int64
	PartitionsJoined int64
	PairsEmitted     int64
	JoinNanos        int64
	RetainedHits     int64
	RetainedMisses   int64
	Morsels          int64
	MorselSteals     int64
	StragglerRatio   float64

	// Retention lifecycle.
	Seals     int64
	Evictions int64
}

// PingArgs checks worker liveness.
type PingArgs struct{}

// PingReply reports worker identity, currently loaded transient jobs, and
// resident retained plans.
type PingReply struct {
	Worker   string
	Jobs     int
	Retained int
	// Draining reports that the worker is shutting down gracefully: it still
	// answers Ping but rejects new Load/Join/Seal work.
	Draining bool
	// WireVersion is the newest chunk format the worker accepts (see
	// internal/wire.Version). Coordinators fall back to the v1 row-major
	// PackedChunk when a worker reports an older version — gob zero-fills the
	// field for peers that predate it, so the fallback is automatic.
	WireVersion int
}
