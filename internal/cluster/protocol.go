// Package cluster provides a genuinely distributed execution path for
// band-joins: a coordinator ships partitioned input to worker processes over
// net/rpc (gob encoding) and collects the local-join results. It plays the
// role of the paper's Hadoop/MapReduce cluster in a minimal, dependency-free
// form: the partitioning plans are exactly the same as in the in-process
// simulator (internal/exec); only the transport differs. Workers can run in
// separate processes (cmd/recpartd) or in-process for tests.
package cluster

import (
	"bandjoin/internal/data"
)

// ServiceName is the name the worker RPC service is registered under.
const ServiceName = "BandJoinWorker"

// LoadArgs ships one batch of partition input to a worker. Batches for the
// same partition accumulate on the worker.
type LoadArgs struct {
	JobID     string
	Partition int
	// Side is "S" or "T".
	Side  string
	Chunk *data.Relation
	// IDs are the original tuple indices of the chunk, used to report result
	// pairs for verification.
	IDs []int64
}

// LoadReply acknowledges a batch.
type LoadReply struct {
	Received int
}

// JoinArgs starts the local joins of one job on a worker.
type JoinArgs struct {
	JobID string
	Band  data.Band
	// Algorithm is the local join algorithm name (see localjoin.ByName);
	// empty selects the default.
	Algorithm string
	// CollectPairs requests the result pairs (original tuple index pairs) in
	// the reply; otherwise only counts are returned.
	CollectPairs bool
}

// PartitionStats reports one partition's local-join outcome.
type PartitionStats struct {
	Partition int
	InputS    int
	InputT    int
	Output    int64
	// JoinNanos is the local join's measured duration.
	JoinNanos int64
	// PairS/PairT are parallel slices of result pairs when requested.
	PairS []int64
	PairT []int64
}

// JoinReply aggregates a worker's local joins for one job.
type JoinReply struct {
	Worker     string
	Partitions []PartitionStats
}

// ResetArgs clears a job's state on a worker.
type ResetArgs struct {
	JobID string
}

// ResetReply acknowledges a reset.
type ResetReply struct{}

// PingArgs checks worker liveness.
type PingArgs struct{}

// PingReply reports worker identity and currently loaded jobs.
type PingReply struct {
	Worker string
	Jobs   int
}
