// Package cluster provides a genuinely distributed execution path for
// band-joins: a coordinator ships partitioned input to worker processes over
// net/rpc (gob encoding) and collects the local-join results. It plays the
// role of the paper's Hadoop/MapReduce cluster in a minimal, dependency-free
// form: the partitioning plans are exactly the same as in the in-process
// simulator (internal/exec); only the transport differs. Workers can run in
// separate processes (cmd/recpartd) or in-process for tests.
package cluster

import (
	"fmt"

	"bandjoin/internal/data"
)

// ServiceName is the name the worker RPC service is registered under.
const ServiceName = "BandJoinWorker"

// LoadArgs ships one batch of partition input to a worker. Batches for the
// same partition accumulate on the worker. Exactly one of Chunk and Packed
// must be set: Chunk is the reference (serial) plane's representation — a
// Relation gob-encoded value by value — while the streaming plane ships
// Packed, whose raw byte payload gob moves with single copies.
type LoadArgs struct {
	JobID     string
	Partition int
	// Side is "S" or "T".
	Side  string
	Chunk *data.Relation
	// IDs are the original tuple indices of the chunk, used to report result
	// pairs for verification. Set together with Chunk.
	IDs []int64
	// Packed is the streaming plane's compact chunk representation.
	Packed *PackedChunk
}

// PackedChunk is the streaming shuffle's wire representation of one chunk:
// keys and original tuple IDs packed as raw little-endian bytes
// (data.Relation.PackKeysLE and data.PackInt64sLE). gob copies a []byte wholesale,
// so encoding and decoding cost a memcpy per chunk instead of a reflective
// per-value walk — the difference is most of the serial plane's wire CPU.
type PackedChunk struct {
	Dims int
	// Keys holds n*Dims float64 values, row-major, 8 bytes each.
	Keys []byte
	// IDs holds n int64 values, 8 bytes each.
	IDs []byte
	// SideTotal, when positive, is the total number of tuples this
	// (partition, side) will receive over the whole shuffle. The streaming
	// sender knows it up front (partitions are routed before shipping), and
	// the worker uses it to reserve storage once instead of growing
	// repeatedly under append.
	SideTotal int
}

// Tuples returns the number of tuples in the chunk, or an error if the
// payload is misaligned.
func (pc *PackedChunk) Tuples() (int, error) {
	if pc.Dims < 1 {
		return 0, fmt.Errorf("cluster: packed chunk has invalid dimensionality %d", pc.Dims)
	}
	if len(pc.Keys)%(8*pc.Dims) != 0 {
		return 0, fmt.Errorf("cluster: packed chunk has %d key bytes, not a multiple of %d", len(pc.Keys), 8*pc.Dims)
	}
	n := len(pc.Keys) / (8 * pc.Dims)
	if len(pc.IDs) != n*8 {
		return 0, fmt.Errorf("cluster: packed chunk has %d id bytes for %d tuples", len(pc.IDs), n)
	}
	return n, nil
}


// LoadReply acknowledges a batch.
type LoadReply struct {
	Received int
}

// JoinArgs starts the local joins of one job on a worker.
type JoinArgs struct {
	JobID string
	Band  data.Band
	// Algorithm is the local join algorithm name (see localjoin.ByName);
	// empty selects the default.
	Algorithm string
	// CollectPairs requests the result pairs (original tuple index pairs) in
	// the reply; otherwise only counts are returned.
	CollectPairs bool
	// Parallelism bounds the number of partition joins the worker runs
	// concurrently; zero means the worker's GOMAXPROCS, and the worker may cap
	// it further (Worker.SetMaxParallelism).
	Parallelism int
}

// PartitionStats reports one partition's local-join outcome.
type PartitionStats struct {
	Partition int
	InputS    int
	InputT    int
	Output    int64
	// JoinNanos is the local join's measured duration.
	JoinNanos int64
	// PairS/PairT are parallel slices of result pairs when requested.
	PairS []int64
	PairT []int64
}

// JoinReply aggregates a worker's local joins for one job.
type JoinReply struct {
	Worker     string
	Partitions []PartitionStats
}

// ResetArgs clears a job's state on a worker.
type ResetArgs struct {
	JobID string
}

// ResetReply acknowledges a reset.
type ResetReply struct{}

// PingArgs checks worker liveness.
type PingArgs struct{}

// PingReply reports worker identity and currently loaded jobs.
type PingReply struct {
	Worker string
	Jobs   int
}
