package cluster

import (
	"context"
	"fmt"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
)

// extendPair returns base prefixes of s and t plus the full relations, for
// append tests: retained state is shipped from the prefixes and must end up
// serving the full relations.
func extendPair(s, t *data.Relation, sBase, tBase int) (baseS, baseT *data.Relation) {
	return s.Slice(s.Name(), 0, sBase), t.Slice(t.Name(), 0, tBase)
}

// TestAbsorbPlanDeltaOnlyShuffle: after a retained plan is shipped from base
// prefixes, AbsorbPlan of the extended relations must move only the delta
// (strictly less traffic than the cold ship), and the next warm run serves the
// full relations with zero shuffle bytes and pairs bit-identical to a
// transient run of the same plan over the same data. Exercised on both data
// planes, and checked for idempotence (a second absorb of the same state is
// free).
func TestAbsorbPlanDeltaOnlyShuffle(t *testing.T) {
	fullS, fullT := data.ParetoPair(2, 1.4, 600, 17)
	band := data.Symmetric(0.3, 0.3)
	baseS, baseT := extendPair(fullS, fullT, 400, 450)

	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	plan, pctx := retainPlanFor(t, core.NewRecPartS(), baseS, baseT, band, 3)
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			opts := Options{PlanID: fmt.Sprintf("absorb-delta-serial=%v", serial), CollectPairs: true, ChunkSize: 128, Serial: serial}
			cold, err := coord.RunPlan(context.Background(), plan, pctx, baseS, baseT, band, opts)
			if err != nil {
				t.Fatalf("cold RunPlan: %v", err)
			}

			if err := coord.AbsorbPlan(context.Background(), plan, pctx, fullS, fullT, opts); err != nil {
				t.Fatalf("AbsorbPlan: %v", err)
			}
			if err := coord.AbsorbPlan(context.Background(), plan, pctx, fullS, fullT, opts); err != nil {
				t.Fatalf("repeated AbsorbPlan: %v", err)
			}

			warm, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band, opts)
			if err != nil {
				t.Fatalf("warm RunPlan after absorb: %v", err)
			}
			if warm.ShuffleBytes != 0 || warm.ShuffleRPCs != 0 {
				t.Errorf("warm run after absorb shuffled: bytes=%d rpcs=%d, want 0/0 (delta moved during AbsorbPlan)",
					warm.ShuffleBytes, warm.ShuffleRPCs)
			}
			if warm.InputS != fullS.Len() || warm.InputT != fullT.Len() {
				t.Errorf("warm run saw |S|=%d |T|=%d, want %d/%d", warm.InputS, warm.InputT, fullS.Len(), fullT.Len())
			}
			if warm.StaleRebuildTime <= 0 {
				t.Errorf("warm run after absorb reports StaleRebuildTime = %v, want > 0 (lazy prepared rebuild ran)", warm.StaleRebuildTime)
			}
			if warm.Output <= cold.Output {
				t.Errorf("extended output %d not larger than base output %d", warm.Output, cold.Output)
			}

			oracle, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band,
				Options{CollectPairs: true, ChunkSize: 128, Serial: serial})
			if err != nil {
				t.Fatalf("transient oracle RunPlan: %v", err)
			}
			samePairs(t, "absorbed vs transient", warm.Pairs, oracle.Pairs)
		})
	}
}

// TestRetainedLazyDeltaAbsorb: a warm retained run handed relations the record
// has not covered yet (no prior AbsorbPlan) must absorb the suffix itself —
// shuffling only the delta, reporting its cost in DeltaAbsorbTime — and serve
// the extended relations correctly.
func TestRetainedLazyDeltaAbsorb(t *testing.T) {
	fullS, fullT := data.ParetoPair(2, 1.5, 500, 29)
	band := data.Symmetric(0.35, 0.35)
	baseS, baseT := extendPair(fullS, fullT, 350, 350)

	lc, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	plan, pctx := retainPlanFor(t, core.NewRecPartS(), baseS, baseT, band, 2)
	opts := Options{PlanID: "lazy-absorb", CollectPairs: true, ChunkSize: 64}
	cold, err := coord.RunPlan(context.Background(), plan, pctx, baseS, baseT, band, opts)
	if err != nil {
		t.Fatalf("cold RunPlan: %v", err)
	}

	warm, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band, opts)
	if err != nil {
		t.Fatalf("warm RunPlan with uncovered suffix: %v", err)
	}
	if warm.ShuffleBytes == 0 || warm.ShuffleBytes >= cold.ShuffleBytes {
		t.Errorf("lazy absorb moved %d bytes, want (0, %d): only the delta reshuffles", warm.ShuffleBytes, cold.ShuffleBytes)
	}
	if warm.DeltaAbsorbTime <= 0 {
		t.Errorf("lazy absorb reports DeltaAbsorbTime = %v, want > 0", warm.DeltaAbsorbTime)
	}
	oracle, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band,
		Options{CollectPairs: true, ChunkSize: 64})
	if err != nil {
		t.Fatalf("transient oracle RunPlan: %v", err)
	}
	samePairs(t, "lazy absorb vs transient", warm.Pairs, oracle.Pairs)

	rewarm, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band, opts)
	if err != nil {
		t.Fatalf("re-warm RunPlan: %v", err)
	}
	if rewarm.ShuffleBytes != 0 {
		t.Errorf("run after lazy absorb shuffled %d bytes, want 0", rewarm.ShuffleBytes)
	}
	samePairs(t, "lazy absorb vs re-warm", warm.Pairs, rewarm.Pairs)
}

// TestAbsorbAfterWorkerLossFallsBackToCold: an append delta that cannot reach
// a worker holding retained partitions must fail AbsorbPlan (the engine then
// evicts the fingerprint), and after eviction the next retained run reships
// the full extended relations cold and still answers correctly — the
// append-after-failover path of the incremental ingestion design.
func TestAbsorbAfterWorkerLossFallsBackToCold(t *testing.T) {
	fullS, fullT := data.ParetoPair(2, 1.4, 450, 31)
	band := data.Symmetric(0.3, 0.3)
	baseS, baseT := extendPair(fullS, fullT, 300, 300)

	good := NewWorker("good")
	goodAddr, stopGood := serveService(t, good)
	defer stopGood()
	flaky := &toggleFailLoadWorker{Worker: NewWorker("flaky")}
	flakyAddr, stopFlaky := serveService(t, flaky)
	defer stopFlaky()

	coord, err := Dial([]string{goodAddr, flakyAddr})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	plan, pctx := retainPlanFor(t, core.NewRecPartS(), baseS, baseT, band, 2)
	opts := Options{PlanID: "absorb-under-failover", CollectPairs: true, ChunkSize: 64}
	if _, err := coord.RunPlan(context.Background(), plan, pctx, baseS, baseT, band, opts); err != nil {
		t.Fatalf("cold RunPlan: %v", err)
	}

	// The delta Loads die at one worker: the absorb must surface the failure
	// rather than leave half-applied retained state serving queries.
	flaky.fail.Store(true)
	if err := coord.AbsorbPlan(context.Background(), plan, pctx, fullS, fullT, opts); err == nil {
		t.Fatal("AbsorbPlan with a failing worker unexpectedly succeeded")
	}
	flaky.fail.Store(false)

	// The engine's Append reacts by evicting the fingerprint; the next
	// retained run reships everything cold from the extended relations.
	coord.EvictPlan(opts.PlanID)
	reshipped, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band, opts)
	if err != nil {
		t.Fatalf("RunPlan after eviction: %v", err)
	}
	if reshipped.ShuffleBytes == 0 {
		t.Error("post-eviction run reports zero shuffle bytes; expected a cold reshipment")
	}
	oracle, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band,
		Options{CollectPairs: true, ChunkSize: 64})
	if err != nil {
		t.Fatalf("transient oracle RunPlan: %v", err)
	}
	samePairs(t, "post-failover reship vs transient", reshipped.Pairs, oracle.Pairs)

	warm, err := coord.RunPlan(context.Background(), plan, pctx, fullS, fullT, band, opts)
	if err != nil {
		t.Fatalf("warm RunPlan after reship: %v", err)
	}
	if warm.ShuffleBytes != 0 {
		t.Errorf("warm run after reship shuffled %d bytes, want 0", warm.ShuffleBytes)
	}
	samePairs(t, "post-failover warm", reshipped.Pairs, warm.Pairs)

	// And absorbing further growth into the reshipped plan works again.
	grownS := fullS.Clone(fullS.Name())
	extra := data.NewRelation("extra", 2)
	for i := 0; i < 50; i++ {
		extra.AppendKey(fullT.Key(i))
	}
	grownS = grownS.Extend(extra)
	if err := coord.AbsorbPlan(context.Background(), plan, pctx, grownS, fullT, opts); err != nil {
		t.Fatalf("AbsorbPlan after recovery: %v", err)
	}
	regrown, err := coord.RunPlan(context.Background(), plan, pctx, grownS, fullT, band, opts)
	if err != nil {
		t.Fatalf("RunPlan after recovered absorb: %v", err)
	}
	if regrown.ShuffleBytes != 0 {
		t.Errorf("run after recovered absorb shuffled %d bytes, want 0", regrown.ShuffleBytes)
	}
	oracle2, err := coord.RunPlan(context.Background(), plan, pctx, grownS, fullT, band,
		Options{CollectPairs: true, ChunkSize: 64})
	if err != nil {
		t.Fatalf("transient oracle 2: %v", err)
	}
	samePairs(t, "recovered absorb vs transient", regrown.Pairs, oracle2.Pairs)
}

// TestAbsorbPlanRequiresPlanID and unknown-fingerprint behavior: absorbing
// into nothing is a no-op (the engine has nothing retained to keep fresh), but
// an absent PlanID is a caller bug.
func TestAbsorbPlanEdgeCases(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.5, 200, 7)
	band := data.Symmetric(0.4, 0.4)
	lc, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	plan, pctx := retainPlanFor(t, core.NewRecPartS(), s, tt, band, 2)
	if err := coord.AbsorbPlan(context.Background(), plan, pctx, s, tt, Options{}); err == nil {
		t.Error("AbsorbPlan without a PlanID accepted")
	}
	if err := coord.AbsorbPlan(context.Background(), plan, pctx, s, tt, Options{PlanID: "never-shipped"}); err != nil {
		t.Errorf("AbsorbPlan of an unshipped fingerprint: %v, want nil no-op", err)
	}
}
