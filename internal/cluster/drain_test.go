package cluster

import (
	"testing"
	"time"

	"bandjoin/internal/data"
)

// TestDrainGatesDataPlane pins the graceful-shutdown contract of cmd/recpartd:
// after Drain, new Load/Join/Seal work is rejected with a clean error, Ping
// still answers (advertising Draining), and cleanup RPCs (Reset, Evict) keep
// working so coordinators can release state while the worker goes down.
func TestDrainGatesDataPlane(t *testing.T) {
	w := NewWorker("drainer")

	chunk := data.NewRelation("c", 1)
	chunk.Append(1.0)
	load := &LoadArgs{JobID: "job", Partition: 0, Side: "S", Chunk: chunk, IDs: []int64{0}}
	if err := w.Load(load, &LoadReply{}); err != nil {
		t.Fatalf("Load before drain: %v", err)
	}

	if !w.Drain(time.Second) {
		t.Fatal("Drain of an idle worker should succeed immediately")
	}

	if err := w.Load(load, &LoadReply{}); err == nil {
		t.Error("Load accepted while draining")
	}
	if err := w.Join(&JoinArgs{JobID: "job", Band: data.Symmetric(1)}, &JoinReply{}); err == nil {
		t.Error("Join accepted while draining")
	}
	if err := w.Seal(&SealArgs{PlanID: "p", Band: data.Symmetric(1)}, &SealReply{}); err == nil {
		t.Error("Seal accepted while draining")
	}

	var pong PingReply
	if err := w.Ping(&PingArgs{}, &pong); err != nil {
		t.Fatalf("Ping while draining: %v", err)
	}
	if !pong.Draining {
		t.Error("Ping while draining should report Draining=true")
	}
	if pong.Jobs != 1 {
		t.Fatalf("worker should still hold the pre-drain job, got %d", pong.Jobs)
	}

	if err := w.Reset(&ResetArgs{JobID: "job"}, &ResetReply{}); err != nil {
		t.Fatalf("Reset while draining: %v", err)
	}
	if err := w.Ping(&PingArgs{}, &pong); err != nil || pong.Jobs != 0 {
		t.Fatalf("Reset while draining should clear the job (err=%v, jobs=%d)", err, pong.Jobs)
	}
	if err := w.Evict(&EvictArgs{PlanID: "p"}, &EvictReply{}); err != nil {
		t.Fatalf("Evict while draining: %v", err)
	}
}
