package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// WorkerStatus is one worker slot's view in a cluster-wide stats collection:
// the coordinator-side health state plus the worker's own counters (when
// reachable).
type WorkerStatus struct {
	Slot  int
	Addr  string
	State WorkerState
	// Err is the collection failure, if the worker could not be reached; Stats
	// is zero then.
	Err   string
	Stats StatsReply
}

// ClusterStats is the coordinator's cluster-wide observability snapshot:
// per-worker statuses plus the coordinator-side aggregates (wire bytes,
// retained-plan records).

type ClusterStats struct {
	Workers       []WorkerStatus
	Live          int
	RetainedPlans int
	WireBytes     int64
}

// Stats collects every worker's Stats reply (down workers are reported with
// their dial error rather than skipped) and the coordinator-side aggregates.
func (c *Coordinator) Stats(ctx context.Context) *ClusterStats {
	cs := &ClusterStats{
		Workers:       make([]WorkerStatus, len(c.workers)),
		Live:          c.LiveWorkers(),
		RetainedPlans: c.RetainedPlans(),
		WireBytes:     c.wireBytes(),
	}
	for slot, wc := range c.workers {
		ws := WorkerStatus{Slot: slot, Addr: wc.addr, State: wc.State()}
		err := wc.call(ctx, ServiceName+".Stats", &StatsArgs{}, &ws.Stats, c.opts.callDeadline(), 1, nil)
		if err != nil {
			ws.Err = err.Error()
		}
		cs.Workers[slot] = ws
	}
	return cs
}

// String renders the snapshot as the aligned table cmd/bandjoin -stats prints.
func (cs *ClusterStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d/%d workers live, %d retained plans, %d wire bytes\n",
		cs.Live, len(cs.Workers), cs.RetainedPlans, cs.WireBytes)
	fmt.Fprintf(&b, "%-4s %-12s %-8s %6s %6s %10s %12s %10s %12s %12s %8s %7s %10s %9s %9s %8s %7s %9s %6s %6s %7s %9s %7s %10s\n",
		"slot", "worker", "state", "jobs", "plans", "ret.bytes", "load.rpcs", "load.tup", "load.bytes", "raw.bytes", "raw/wire", "dec.ms", "joins", "pairs", "join.ms", "morsels", "steals", "straggler", "hits", "miss", "deltas", "delta.tup", "rebuild", "rebuild.ms")
	for _, ws := range cs.Workers {
		if ws.Err != "" {
			fmt.Fprintf(&b, "%-4d %-12s %-8s unreachable: %s\n", ws.Slot, ws.Addr, ws.State, ws.Err)
			continue
		}
		name := ws.Stats.Worker
		if name == "" {
			name = ws.Addr
		}
		state := ws.State.String()
		if ws.Stats.Draining {
			state += "*" // draining
		}
		ratio := 0.0
		if ws.Stats.LoadBytes > 0 {
			ratio = float64(ws.Stats.LoadRawBytes) / float64(ws.Stats.LoadBytes)
		}
		fmt.Fprintf(&b, "%-4d %-12s %-8s %6d %6d %10d %12d %10d %12d %12d %8.2f %7.1f %10d %9d %9.1f %8d %7d %9.2f %6d %6d %7d %9d %7d %10.1f\n",
			ws.Slot, name, state,
			ws.Stats.Jobs, ws.Stats.RetainedPlans, ws.Stats.RetainedBytes,
			ws.Stats.LoadRPCs, ws.Stats.LoadTuples, ws.Stats.LoadBytes,
			ws.Stats.LoadRawBytes, ratio,
			float64(ws.Stats.DecodeNanos)/float64(time.Millisecond),
			ws.Stats.PartitionsJoined, ws.Stats.PairsEmitted,
			float64(ws.Stats.JoinNanos)/float64(time.Millisecond),
			ws.Stats.Morsels, ws.Stats.MorselSteals, ws.Stats.StragglerRatio,
			ws.Stats.RetainedHits, ws.Stats.RetainedMisses,
			ws.Stats.DeltaLoads, ws.Stats.DeltaTuples,
			ws.Stats.StaleRebuilds,
			float64(ws.Stats.StaleRebuildNanos)/float64(time.Millisecond))
	}
	return b.String()
}
