package cluster

import (
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/onebucket"
	"bandjoin/internal/partition"
)

func bruteForce(s, t *data.Relation, band data.Band) map[exec.Pair]bool {
	out := make(map[exec.Pair]bool)
	for i := 0; i < s.Len(); i++ {
		for j := 0; j < t.Len(); j++ {
			if band.Matches(s.Key(i), t.Key(j)) {
				out[exec.Pair{S: int64(i), T: int64(j)}] = true
			}
		}
	}
	return out
}

func TestDistributedJoinMatchesBruteForce(t *testing.T) {
	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()
	if coord.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", coord.Workers())
	}

	s, tt := data.ParetoPair(2, 1.2, 400, 17)
	band := data.Symmetric(0.5, 0.5)
	want := bruteForce(s, tt, band)
	if len(want) == 0 {
		t.Fatal("test workload produced no results")
	}

	for _, pt := range []partition.Partitioner{core.NewDefault(), onebucket.New()} {
		res, err := coord.Run(pt, s, tt, band, Options{CollectPairs: true, ChunkSize: 64})
		if err != nil {
			t.Fatalf("Run(%s): %v", pt.Name(), err)
		}
		if int(res.Output) != len(want) {
			t.Fatalf("%s: output = %d, want %d", pt.Name(), res.Output, len(want))
		}
		seen := make(map[exec.Pair]int)
		for _, p := range res.Pairs {
			seen[p]++
			if seen[p] > 1 {
				t.Fatalf("%s: pair %v produced more than once", pt.Name(), p)
			}
			if !want[p] {
				t.Fatalf("%s: pair %v is not a real result", pt.Name(), p)
			}
		}
		if len(seen) != len(want) {
			t.Fatalf("%s: produced %d distinct pairs, want %d", pt.Name(), len(seen), len(want))
		}
		if res.TotalInput < int64(s.Len()+tt.Len()) {
			t.Errorf("%s: total input %d below |S|+|T| = %d", pt.Name(), res.TotalInput, s.Len()+tt.Len())
		}
	}
}

func TestDistributedAgreesWithSimulator(t *testing.T) {
	lc, err := StartLocal(4)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	s, tt := data.ParetoPair(3, 1.5, 1500, 99)
	band := data.Symmetric(0.3, 0.3, 0.3)

	simOpts := exec.DefaultOptions(4)
	simOpts.Seed = 5
	sim, err := exec.Run(core.NewRecPartS(), s, tt, band, simOpts)
	if err != nil {
		t.Fatalf("simulator run: %v", err)
	}
	dist, err := coord.Run(core.NewRecPartS(), s, tt, band, Options{Seed: 5})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if sim.Output != dist.Output {
		t.Errorf("output differs: simulator %d, distributed %d", sim.Output, dist.Output)
	}
	if sim.TotalInput != dist.TotalInput {
		t.Errorf("total input differs: simulator %d, distributed %d", sim.TotalInput, dist.TotalInput)
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	w := NewWorker("w0")
	var lr LoadReply
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "S", Chunk: nil}, &lr); err == nil {
		t.Error("Load accepted a nil chunk")
	}
	chunk := data.NewRelation("c", 1)
	chunk.Append(1)
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "X", Chunk: chunk, IDs: []int64{0}}, &lr); err == nil {
		t.Error("Load accepted an unknown relation side")
	}
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "S", Chunk: chunk, IDs: nil}, &lr); err == nil {
		t.Error("Load accepted mismatched id count")
	}
	var jr JoinReply
	if err := w.Join(&JoinArgs{JobID: "j", Band: data.Symmetric(1), Algorithm: "nope"}, &jr); err == nil {
		t.Error("Join accepted an unknown algorithm")
	}
}
