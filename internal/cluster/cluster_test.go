package cluster

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"testing"

	"bandjoin/internal/core"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/grid"
	"bandjoin/internal/onebucket"
	"bandjoin/internal/partition"
)

func bruteForce(s, t *data.Relation, band data.Band) map[exec.Pair]bool {
	out := make(map[exec.Pair]bool)
	for i := 0; i < s.Len(); i++ {
		for j := 0; j < t.Len(); j++ {
			if band.Matches(s.Key(i), t.Key(j)) {
				out[exec.Pair{S: int64(i), T: int64(j)}] = true
			}
		}
	}
	return out
}

func TestDistributedJoinMatchesBruteForce(t *testing.T) {
	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()
	if coord.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", coord.Workers())
	}

	s, tt := data.ParetoPair(2, 1.2, 400, 17)
	band := data.Symmetric(0.5, 0.5)
	want := bruteForce(s, tt, band)
	if len(want) == 0 {
		t.Fatal("test workload produced no results")
	}

	for _, pt := range []partition.Partitioner{core.NewDefault(), onebucket.New()} {
		res, err := coord.Run(context.Background(), pt, s, tt, band, Options{CollectPairs: true, ChunkSize: 64})
		if err != nil {
			t.Fatalf("Run(%s): %v", pt.Name(), err)
		}
		if int(res.Output) != len(want) {
			t.Fatalf("%s: output = %d, want %d", pt.Name(), res.Output, len(want))
		}
		seen := make(map[exec.Pair]int)
		for _, p := range res.Pairs {
			seen[p]++
			if seen[p] > 1 {
				t.Fatalf("%s: pair %v produced more than once", pt.Name(), p)
			}
			if !want[p] {
				t.Fatalf("%s: pair %v is not a real result", pt.Name(), p)
			}
		}
		if len(seen) != len(want) {
			t.Fatalf("%s: produced %d distinct pairs, want %d", pt.Name(), len(seen), len(want))
		}
		if res.TotalInput < int64(s.Len()+tt.Len()) {
			t.Errorf("%s: total input %d below |S|+|T| = %d", pt.Name(), res.TotalInput, s.Len()+tt.Len())
		}
	}
}

func TestDistributedAgreesWithSimulator(t *testing.T) {
	lc, err := StartLocal(4)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	s, tt := data.ParetoPair(3, 1.5, 1500, 99)
	band := data.Symmetric(0.3, 0.3, 0.3)

	simOpts := exec.DefaultOptions(4)
	simOpts.Seed = 5
	sim, err := exec.Run(core.NewRecPartS(), s, tt, band, simOpts)
	if err != nil {
		t.Fatalf("simulator run: %v", err)
	}
	dist, err := coord.Run(context.Background(), core.NewRecPartS(), s, tt, band, Options{Seed: 5})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if sim.Output != dist.Output {
		t.Errorf("output differs: simulator %d, distributed %d", sim.Output, dist.Output)
	}
	if sim.TotalInput != dist.TotalInput {
		t.Errorf("total input differs: simulator %d, distributed %d", sim.TotalInput, dist.TotalInput)
	}
}

// TestClusterMatchesInProcessExact checks pair-level equivalence between the
// in-process executor and the RPC cluster, for both the streaming and the
// serial data plane, across every partitioner family: identical plans must
// produce bit-identical (sorted) result pair sets. It also verifies that
// completed runs retain no job state on the workers.
func TestClusterMatchesInProcessExact(t *testing.T) {
	lc, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer lc.Stop()
	coord, err := Dial(lc.Addrs())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer coord.Close()

	s, tt := data.ParetoPair(2, 1.4, 600, 23)
	band := data.Symmetric(0.3, 0.3)

	for _, pt := range []partition.Partitioner{core.NewDefault(), core.NewRecPartS(), onebucket.New(), grid.New()} {
		simOpts := exec.DefaultOptions(3)
		simOpts.CollectPairs = true
		simOpts.Seed = 11
		sim, err := exec.Run(pt, s, tt, band, simOpts)
		if err != nil {
			t.Fatalf("simulator run (%s): %v", pt.Name(), err)
		}
		if len(sim.Pairs) == 0 {
			t.Fatalf("%s: simulator produced no pairs", pt.Name())
		}
		modes := []struct {
			name string
			opts Options
		}{
			{"streaming", Options{CollectPairs: true, Seed: 11, ChunkSize: 128, Window: 3}},
			{"serial", Options{CollectPairs: true, Seed: 11, ChunkSize: 128, Serial: true}},
		}
		for _, mode := range modes {
			t.Run(pt.Name()+"/"+mode.name, func(t *testing.T) {
				dist, err := coord.Run(context.Background(), pt, s, tt, band, mode.opts)
				if err != nil {
					t.Fatalf("distributed run: %v", err)
				}
				if dist.Output != sim.Output {
					t.Errorf("output: distributed %d, simulator %d", dist.Output, sim.Output)
				}
				if dist.TotalInput != sim.TotalInput {
					t.Errorf("total input: distributed %d, simulator %d", dist.TotalInput, sim.TotalInput)
				}
				if len(dist.Pairs) != len(sim.Pairs) {
					t.Fatalf("pair count: distributed %d, simulator %d", len(dist.Pairs), len(sim.Pairs))
				}
				for i := range sim.Pairs {
					if dist.Pairs[i] != sim.Pairs[i] {
						t.Fatalf("pair %d: distributed %v, simulator %v", i, dist.Pairs[i], sim.Pairs[i])
					}
				}
				if !mode.opts.Serial && dist.ShuffleRPCs == 0 {
					t.Error("streaming run reported zero shuffle RPCs")
				}
				if !mode.opts.Serial && dist.ShuffleBytes == 0 {
					t.Error("streaming run reported zero shuffle bytes")
				}
			})
		}
	}

	for i, w := range lc.Handles() {
		var pong PingReply
		if err := w.Ping(&PingArgs{}, &pong); err != nil {
			t.Fatalf("Ping worker %d: %v", i, err)
		}
		if pong.Jobs != 0 {
			t.Errorf("worker %d retains %d jobs after completed runs", i, pong.Jobs)
		}
	}
}

// serveService runs an arbitrary RPC service under the worker service name on
// an ephemeral loopback port, for fault-injection tests.
func serveService(t *testing.T, svc any) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, svc); err != nil {
		ln.Close()
		t.Fatalf("register: %v", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// failLoadWorker is a worker whose Load always fails, simulating a node that
// dies mid-shuffle.
type failLoadWorker struct{ *Worker }

func (w *failLoadWorker) Load(_ *LoadArgs, _ *LoadReply) error {
	return fmt.Errorf("synthetic mid-shuffle failure")
}

// failJoinWorker is a worker that accepts partition data but fails every
// join, simulating a node that dies mid-reduce.
type failJoinWorker struct{ *Worker }

func (w *failJoinWorker) Join(_ *JoinArgs, _ *JoinReply) error {
	return fmt.Errorf("synthetic mid-join failure")
}

// TestFailedRunLeavesNoJobState is the leak regression test: a run that
// errors mid-shuffle or mid-join must leave zero retained job state on every
// worker, streaming and serial plane alike.
func TestFailedRunLeavesNoJobState(t *testing.T) {
	s, tt := data.ParetoPair(2, 1.2, 400, 31)
	band := data.Symmetric(0.4, 0.4)

	cases := []struct {
		name  string
		inner *Worker
		make  func(*Worker) any
	}{
		{"load-failure", NewWorker("bad-load"), func(w *Worker) any { return &failLoadWorker{Worker: w} }},
		{"join-failure", NewWorker("bad-join"), func(w *Worker) any { return &failJoinWorker{Worker: w} }},
	}
	for _, tc := range cases {
		for _, serial := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/serial=%v", tc.name, serial), func(t *testing.T) {
				good := NewWorker("good")
				goodAddr, stopGood := serveService(t, good)
				defer stopGood()
				badAddr, stopBad := serveService(t, tc.make(tc.inner))
				defer stopBad()

				coord, err := Dial([]string{goodAddr, badAddr})
				if err != nil {
					t.Fatalf("Dial: %v", err)
				}
				defer coord.Close()

				// 1-Bucket duplicates T to every partition, so with LPT
				// placement over two partitions both workers are guaranteed
				// to receive data before the injected fault fires.
				_, err = coord.Run(context.Background(), onebucket.New(), s, tt, band, Options{ChunkSize: 64, Serial: serial})
				if err == nil {
					t.Fatal("run with a failing worker unexpectedly succeeded")
				}

				for _, w := range []*Worker{good, tc.inner} {
					var pong PingReply
					if err := w.Ping(&PingArgs{}, &pong); err != nil {
						t.Fatalf("Ping %s: %v", w.name, err)
					}
					if pong.Jobs != 0 {
						t.Errorf("worker %s retains %d jobs after failed run", w.name, pong.Jobs)
					}
				}
			})
		}
	}
}

// TestWorkerLoadJoinRaceSafety hammers one worker with concurrent Load
// batches and Join requests for the same job; run under -race (as CI does) it
// verifies the per-job and per-partition locking that lets the pipelined
// shuffle overlap late batches with running joins.
func TestWorkerLoadJoinRaceSafety(t *testing.T) {
	w := NewWorker("race")
	band := data.Symmetric(0.5)
	chunk := data.NewRelation("c", 1)
	ids := make([]int64, 64)
	for i := 0; i < 64; i++ {
		chunk.Append(float64(i) / 64)
		ids[i] = int64(i)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 40; round++ {
				side := "S"
				if (g+round)%2 == 1 {
					side = "T"
				}
				var lr LoadReply
				if err := w.Load(&LoadArgs{JobID: "job", Partition: round % 5, Side: side, Chunk: chunk, IDs: ids}, &lr); err != nil {
					t.Errorf("Load: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 15; round++ {
				var jr JoinReply
				if err := w.Join(&JoinArgs{JobID: "job", Band: band, Parallelism: 3}, &jr); err != nil {
					t.Errorf("Join: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	var rr ResetReply
	if err := w.Reset(&ResetArgs{JobID: "job"}, &rr); err != nil {
		t.Fatalf("Reset: %v", err)
	}
}

// TestJoinReplyDeterministicOrder checks that Join replies list partitions in
// ascending partition-id order regardless of load order, and that repeated
// joins of the same state produce identical replies.
func TestJoinReplyDeterministicOrder(t *testing.T) {
	w := NewWorker("det")
	band := data.Symmetric(0.2)
	for _, pid := range []int{7, 2, 9, 0, 5} {
		chunk := data.NewRelation("c", 1)
		ids := make([]int64, 8)
		for i := 0; i < 8; i++ {
			chunk.Append(float64(pid) + float64(i)*0.05)
			ids[i] = int64(pid*100 + i)
		}
		for _, side := range []string{"S", "T"} {
			var lr LoadReply
			if err := w.Load(&LoadArgs{JobID: "j", Partition: pid, Side: side, Chunk: chunk, IDs: ids}, &lr); err != nil {
				t.Fatalf("Load partition %d side %s: %v", pid, side, err)
			}
		}
	}

	var first, second JoinReply
	if err := w.Join(&JoinArgs{JobID: "j", Band: band, Parallelism: 4}, &first); err != nil {
		t.Fatalf("first Join: %v", err)
	}
	if err := w.Join(&JoinArgs{JobID: "j", Band: band, Parallelism: 2}, &second); err != nil {
		t.Fatalf("second Join: %v", err)
	}
	if len(first.Partitions) != 5 {
		t.Fatalf("got %d partitions, want 5", len(first.Partitions))
	}
	for i, ps := range first.Partitions {
		if i > 0 && first.Partitions[i-1].Partition >= ps.Partition {
			t.Fatalf("partitions not in ascending order: %d before %d", first.Partitions[i-1].Partition, ps.Partition)
		}
	}
	if len(second.Partitions) != len(first.Partitions) {
		t.Fatalf("reply sizes differ across runs: %d vs %d", len(first.Partitions), len(second.Partitions))
	}
	for i := range first.Partitions {
		a, b := first.Partitions[i], second.Partitions[i]
		if a.Partition != b.Partition || a.InputS != b.InputS || a.InputT != b.InputT || a.Output != b.Output {
			t.Fatalf("partition %d differs across runs: %+v vs %+v", i, a, b)
		}
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	w := NewWorker("w0")
	var lr LoadReply
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "S", Chunk: nil}, &lr); err == nil {
		t.Error("Load accepted a nil chunk")
	}
	chunk := data.NewRelation("c", 1)
	chunk.Append(1)
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "X", Chunk: chunk, IDs: []int64{0}}, &lr); err == nil {
		t.Error("Load accepted an unknown relation side")
	}
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "S", Chunk: chunk, IDs: nil}, &lr); err == nil {
		t.Error("Load accepted mismatched id count")
	}
	var jr JoinReply
	if err := w.Join(&JoinArgs{JobID: "j", Band: data.Symmetric(1), Algorithm: "nope"}, &jr); err == nil {
		t.Error("Join accepted an unknown algorithm")
	}
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "S", Chunk: chunk, IDs: []int64{0},
		Packed: &PackedChunk{Dims: 1, Keys: make([]byte, 8), IDs: make([]byte, 8)}}, &lr); err == nil {
		t.Error("Load accepted both a chunk and a packed chunk")
	}
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 0, Side: "S",
		Packed: &PackedChunk{Dims: 1, Keys: make([]byte, 12), IDs: make([]byte, 8)}}, &lr); err == nil {
		t.Error("Load accepted a misaligned packed chunk")
	}
	// Establish a 1D partition, then try to append a 2D chunk to it: the
	// mismatch must fail the Load instead of desyncing keys from IDs.
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 3, Side: "S",
		Packed: &PackedChunk{Dims: 1, Keys: make([]byte, 8), IDs: make([]byte, 8)}}, &lr); err != nil {
		t.Fatalf("Load of a valid packed chunk failed: %v", err)
	}
	if err := w.Load(&LoadArgs{JobID: "j", Partition: 3, Side: "S",
		Packed: &PackedChunk{Dims: 2, Keys: make([]byte, 32), IDs: make([]byte, 16)}}, &lr); err == nil {
		t.Error("Load accepted a packed chunk whose dims differ from the partition's")
	}
}
