package cluster

import (
	"fmt"
	"log"
	"net"
	"net/rpc"
	"sync"
	"time"

	"bandjoin/internal/data"
	"bandjoin/internal/localjoin"
)

// Worker is the RPC service a worker machine runs. It accumulates partition
// input shipped by the coordinator and executes local band-joins on request.
// A single worker can hold several jobs concurrently (keyed by job ID), like
// a node-manager running several reduce tasks.
type Worker struct {
	name string

	mu   sync.Mutex
	jobs map[string]*jobState
}

type jobState struct {
	partitions map[int]*partitionData
}

type partitionData struct {
	s    *data.Relation
	sIDs []int64
	t    *data.Relation
	tIDs []int64
}

// NewWorker returns a worker service with the given display name.
func NewWorker(name string) *Worker {
	return &Worker{name: name, jobs: make(map[string]*jobState)}
}

// Load implements the RPC method receiving partition input.
func (w *Worker) Load(args *LoadArgs, reply *LoadReply) error {
	if args.Chunk == nil {
		return fmt.Errorf("cluster: worker %s received nil chunk", w.name)
	}
	if len(args.IDs) != args.Chunk.Len() {
		return fmt.Errorf("cluster: worker %s received %d ids for %d tuples", w.name, len(args.IDs), args.Chunk.Len())
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	job, ok := w.jobs[args.JobID]
	if !ok {
		job = &jobState{partitions: make(map[int]*partitionData)}
		w.jobs[args.JobID] = job
	}
	p, ok := job.partitions[args.Partition]
	if !ok {
		p = &partitionData{
			s: data.NewRelation("S-part", args.Chunk.Dims()),
			t: data.NewRelation("T-part", args.Chunk.Dims()),
		}
		job.partitions[args.Partition] = p
	}
	switch args.Side {
	case "S":
		for i := 0; i < args.Chunk.Len(); i++ {
			p.s.AppendKey(args.Chunk.Key(i))
		}
		p.sIDs = append(p.sIDs, args.IDs...)
	case "T":
		for i := 0; i < args.Chunk.Len(); i++ {
			p.t.AppendKey(args.Chunk.Key(i))
		}
		p.tIDs = append(p.tIDs, args.IDs...)
	default:
		return fmt.Errorf("cluster: unknown relation side %q", args.Side)
	}
	reply.Received = args.Chunk.Len()
	return nil
}

// Join implements the RPC method running all local joins of a job.
func (w *Worker) Join(args *JoinArgs, reply *JoinReply) error {
	alg := localjoin.Default()
	if args.Algorithm != "" {
		a, ok := localjoin.ByName(args.Algorithm)
		if !ok {
			return fmt.Errorf("cluster: unknown local join algorithm %q", args.Algorithm)
		}
		alg = a
	}
	if err := args.Band.Validate(); err != nil {
		return fmt.Errorf("cluster: invalid band condition: %w", err)
	}

	w.mu.Lock()
	job := w.jobs[args.JobID]
	w.mu.Unlock()
	reply.Worker = w.name
	if job == nil {
		return nil // no partitions were shipped here
	}

	for pid, p := range job.partitions {
		start := time.Now()
		stats := PartitionStats{Partition: pid, InputS: p.s.Len(), InputT: p.t.Len()}
		var emit localjoin.Emit
		if args.CollectPairs {
			emit = func(si, ti int, _, _ []float64) {
				stats.PairS = append(stats.PairS, p.sIDs[si])
				stats.PairT = append(stats.PairT, p.tIDs[ti])
			}
		}
		stats.Output = alg.Join(p.s, p.t, args.Band, emit)
		stats.JoinNanos = time.Since(start).Nanoseconds()
		reply.Partitions = append(reply.Partitions, stats)
	}
	return nil
}

// Reset implements the RPC method discarding a job's state.
func (w *Worker) Reset(args *ResetArgs, _ *ResetReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.jobs, args.JobID)
	return nil
}

// Ping implements the liveness RPC.
func (w *Worker) Ping(_ *PingArgs, reply *PingReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	reply.Worker = w.name
	reply.Jobs = len(w.jobs)
	return nil
}

// Serve registers the worker on a fresh RPC server and serves connections on
// the listener until it is closed. It is intended to be run in a goroutine or
// as the body of cmd/recpartd.
func Serve(w *Worker, ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, w); err != nil {
		return fmt.Errorf("cluster: registering worker service: %w", err)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed: normal shutdown.
			return nil
		}
		go srv.ServeConn(conn)
	}
}

// ListenAndServe starts a worker on the given TCP address and blocks.
func ListenAndServe(name, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listening on %s: %w", addr, err)
	}
	log.Printf("band-join worker %s listening on %s", name, ln.Addr())
	return Serve(NewWorker(name), ln)
}
