package cluster

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/rpc"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/localjoin"
	"bandjoin/internal/obs"
	"bandjoin/internal/wire"
)

// Worker is the RPC service a worker machine runs. It accumulates partition
// input shipped by the coordinator and executes local band-joins on request.
// A single worker can hold several jobs concurrently (keyed by job ID), like
// a node-manager running several reduce tasks. Loads for different partitions
// append concurrently, and a job's joins run on a bounded goroutine pool.
//
// Besides the transient job table (cleared by Reset after every query), the
// worker keeps a retained-plan registry: partition data shipped with
// LoadArgs.Retain and completed with Seal stays resident under its plan
// fingerprint, so repeated queries over the same plan run their local joins
// with zero shuffle. Sealed plans change only through delta appends
// (LoadArgs.Delta), which hold the target partition's write lock; joins take
// read locks and therefore run concurrently with each other.
type Worker struct {
	name string

	// maxParallelism caps the per-job join parallelism a coordinator may
	// request via JoinArgs.Parallelism; zero means GOMAXPROCS. Set it before
	// serving (see SetMaxParallelism).
	maxParallelism int

	// maxRetained caps the number of sealed retained plans; zero means
	// unlimited. When Seal pushes the registry past the cap, the
	// least-recently-sealed plan is evicted (coordinators detect that via
	// ErrUnknownRetainedPlan and fall back to a cold shuffle).
	maxRetained int

	mu       sync.Mutex // guards jobs, retained, sealSeq, draining
	jobs     map[string]*jobState
	retained map[string]*retainedState
	sealSeq  uint64

	// draining rejects new data-plane work (Load, Join, Seal) while inflight
	// tracks the calls already running, so a graceful shutdown can stop taking
	// queries yet let the ones in progress finish (see Drain).
	draining bool
	inflight sync.WaitGroup

	// wireVersion is the chunk format version advertised in Ping replies
	// (wire.Version by default). Tests force an older value via
	// SetWireVersion to exercise the coordinator's v1 fallback; Load accepts
	// every format regardless, so the knob only affects negotiation.
	wireVersion int

	// prepSem bounds the background pipelined-join preparations (partitions
	// whose shipment completed while later partitions are still in flight)
	// to the same width as the join pool.
	prepSem chan struct{}

	// decPool holds per-RPC columnar decode scratch (a wire.Decoder plus a
	// column buffer), so concurrent Loads decode without per-chunk allocation.
	decPool sync.Pool

	m *workerMetrics
}

// decodeScratch is the pooled per-Load columnar decoding state.
type decodeScratch struct {
	dec wire.Decoder
	col []float64
}

// workerMetrics is the worker's observability surface: data-plane counters
// (Load/Join RPCs, tuples, bytes, pairs), retained-tier outcomes, the join
// pool's occupancy, per-partition join latency, and scrape-time occupancy
// gauges, all in the worker's own registry (see Worker.Metrics). Counter
// updates on the Load/Join paths are single atomics.
type workerMetrics struct {
	reg *obs.Registry

	loadRPCs     *obs.Counter
	loadTuples   *obs.Counter
	loadBytes    *obs.Counter
	loadRawBytes *obs.Counter
	loadRejected *obs.Counter

	pipelinedPreps *obs.Counter

	deltaLoads    *obs.Counter
	deltaTuples   *obs.Counter
	staleRebuilds *obs.Counter

	joinRPCs         *obs.Counter
	partitionsJoined *obs.Counter
	pairsEmitted     *obs.Counter
	retainedHits     *obs.Counter
	retainedMisses   *obs.Counter
	joinInflight     *obs.Gauge
	morsels          *obs.Counter
	morselSteals     *obs.Counter
	stragglerRatio   *obs.Gauge

	seals     *obs.Counter
	evictions *obs.Counter

	partitionJoinSeconds *obs.Histogram
	loadChunkBytes       *obs.Histogram
	staleRebuildSeconds  *obs.Histogram
	decodeSeconds        *obs.Histogram
}

func newWorkerMetrics(w *Worker) *workerMetrics {
	reg := obs.NewRegistry()
	m := &workerMetrics{
		reg:              reg,
		loadRPCs:         reg.Counter("bandjoin_worker_load_rpcs_total", "Load RPCs accepted."),
		loadTuples:       reg.Counter("bandjoin_worker_load_tuples_total", "Tuples received via Load."),
		loadBytes:        reg.Counter("bandjoin_worker_load_bytes_total", "Payload bytes (keys+IDs) received via Load, as shipped on the wire."),
		loadRawBytes:     reg.Counter("bandjoin_worker_load_raw_bytes_total", "Bytes the received tuples would occupy row-major and uncompressed (raw/wire = compression ratio)."),
		loadRejected:     reg.Counter("bandjoin_worker_load_rejected_total", "Data-plane RPCs rejected while draining."),
		pipelinedPreps:   reg.Counter("bandjoin_worker_pipelined_preps_total", "Partitions presorted and prepared in the background while the shuffle was still in flight."),
		deltaLoads:       reg.Counter("bandjoin_worker_delta_loads_total", "Delta Load RPCs appended into sealed retained plans."),
		deltaTuples:      reg.Counter("bandjoin_worker_delta_tuples_total", "Tuples appended into sealed retained plans via delta Loads."),
		staleRebuilds:    reg.Counter("bandjoin_worker_stale_rebuilds_total", "Prepared join structures rebuilt lazily after delta invalidation."),
		joinRPCs:         reg.Counter("bandjoin_worker_join_rpcs_total", "Join RPCs served."),
		partitionsJoined: reg.Counter("bandjoin_worker_partitions_joined_total", "Partition-level local joins executed."),
		pairsEmitted:     reg.Counter("bandjoin_worker_pairs_emitted_total", "Result pairs produced by local joins."),
		retainedHits:     reg.Counter("bandjoin_worker_retained_join_total", "Retained-plan join outcomes.", "outcome", "hit"),
		retainedMisses:   reg.Counter("bandjoin_worker_retained_join_total", "Retained-plan join outcomes.", "outcome", "miss"),
		joinInflight:     reg.Gauge("bandjoin_worker_join_pool_inflight", "Partition joins currently running."),
		morsels:          reg.Counter("bandjoin_worker_morsels_total", "Probe-side morsels executed by the join pool's morsel scheduler."),
		morselSteals:     reg.Counter("bandjoin_worker_morsel_steals_total", "Morsels executed by a pool worker other than their partition's first claimer."),
		stragglerRatio:   reg.Gauge("bandjoin_worker_straggler_ratio_millis", "Max-partition / mean-partition probe rows of the last morsel join, in thousandths."),
		seals:            reg.Counter("bandjoin_worker_seals_total", "Retained plans sealed."),
		evictions:        reg.Counter("bandjoin_worker_evictions_total", "Retained plans evicted (explicit or cap)."),
		partitionJoinSeconds: reg.Histogram("bandjoin_worker_partition_join_seconds",
			"Per-partition local-join latency.", obs.LatencyBuckets()),
		loadChunkBytes: reg.Histogram("bandjoin_worker_load_chunk_bytes",
			"Per-Load payload size (keys+IDs).", obs.ByteBuckets()),
		staleRebuildSeconds: reg.Histogram("bandjoin_worker_stale_rebuild_seconds",
			"Per-partition lazy prepared-structure rebuild latency.", obs.LatencyBuckets()),
		decodeSeconds: reg.Histogram("bandjoin_worker_decode_seconds",
			"Per-Load columnar chunk decode latency (wire bytes to partition arenas).", obs.LatencyBuckets()),
	}
	reg.GaugeFunc("bandjoin_worker_jobs", "Resident transient jobs.", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		return float64(len(w.jobs))
	})
	reg.GaugeFunc("bandjoin_worker_retained_plans", "Resident retained plans.", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		return float64(len(w.retained))
	})
	reg.GaugeFunc("bandjoin_worker_retained_bytes", "Approximate key/ID bytes held by retained plans.", func() float64 {
		return float64(w.retainedBytes())
	})
	reg.GaugeFunc("bandjoin_worker_transient_bytes", "Approximate key/ID bytes held by transient jobs.", func() float64 {
		return float64(w.transientBytes())
	})
	reg.GaugeFunc("bandjoin_worker_draining", "1 while the worker is draining.", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.draining {
			return 1
		}
		return 0
	})
	return m
}

// Metrics returns the worker's metrics registry (what recpartd serves behind
// -metrics-addr).
func (w *Worker) Metrics() *obs.Registry { return w.m.reg }

// beginWork admits one data-plane RPC, or rejects it if the worker is
// draining. The WaitGroup Add happens under the same lock as the draining
// check, so Drain can never observe the flag set yet miss an admitted call.
func (w *Worker) beginWork() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		w.m.loadRejected.Inc()
		return fmt.Errorf("cluster: worker %s is draining", w.name)
	}
	w.inflight.Add(1)
	return nil
}

func (w *Worker) endWork() { w.inflight.Done() }

// Drain puts the worker into draining mode — new Load/Join/Seal calls are
// rejected while Ping, Reset, and Evict keep working — and waits up to
// timeout for the in-flight data-plane calls to finish. It reports whether
// everything drained in time; timeout <= 0 waits indefinitely. Drain is the
// graceful-shutdown half of cmd/recpartd's signal handling (the other half is
// closing the listener).
func (w *Worker) Drain(timeout time.Duration) bool {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
	done := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return true
	case <-timer.C:
		return false
	}
}

// jobState holds one job's partitions. Its mutex guards only the partitions
// map; every partition carries its own lock so that concurrent Load batches
// for different partitions append in parallel, and a late Load batch for a
// partition whose join is already running waits for that join instead of
// racing it.
type jobState struct {
	mu         sync.Mutex
	partitions map[int]*partitionData
}

// retainedState is one retained plan: a jobState plus the seal bit that makes
// it joinable, and its position in the seal order (for cap eviction).
type retainedState struct {
	jobState
	sealed bool
	seq    uint64
}

type partitionData struct {
	// mu is a read-write lock: Load appends under the write lock, while joins
	// hold the read lock, so any number of concurrent queries can join the
	// same (immutable once sealed) retained partition in parallel, and a late
	// Load batch for a partition whose join is already running waits for that
	// join instead of racing it.
	mu   sync.RWMutex
	s    *data.Relation
	sIDs []int64
	t    *data.Relation
	tIDs []int64

	// prepared caches the local join's reusable T-side structure (ε-grid
	// buckets or sorted rows), keyed by algorithm name and band. For retained
	// partitions it is prebuilt at Seal time for the plan's band and rebuilt
	// lazily if a query asks for a different algorithm; for transient
	// partitions the pipelined-join path builds it in the background as soon
	// as the partition's shipment completes.
	prepKey  string
	prepared localjoin.PreparedT

	// Pipelined-join marker state (transient jobs only). expectS/expectT are
	// the partition's final per-side tuple counts from the coordinator's
	// Complete marker, or -1 while no marker has arrived. Because net/rpc
	// dispatches requests out of order, readiness is "marker seen AND counts
	// reached", checked after every Load. preparing claims the background
	// build so it is spawned at most once.
	expectS, expectT int
	markerBand       data.Band
	markerAlg        string
	preparing        bool

	// colMin/colMax are per-dimension value ranges observed while decoding
	// columnar chunks into this partition's arenas (both sides folded
	// together) — decode-time sanity stats that come for free from the
	// column codecs.
	colMin, colMax []float64
}

// newPartitionData returns an empty partition for the given dimensionality.
func newPartitionData(dims int) *partitionData {
	return &partitionData{
		s:       data.NewRelation("S-part", dims),
		t:       data.NewRelation("T-part", dims),
		expectS: -1,
		expectT: -1,
	}
}

// readyLocked reports (under p.mu) that the partition's shipment is complete
// and no prepared structure exists or is being built yet.
func (p *partitionData) readyLocked() bool {
	return p.expectS >= 0 && !p.preparing && p.prepKey == "" &&
		p.s.Len() == p.expectS && p.t.Len() == p.expectT
}

// prepCanceled marks a transient partition whose join started before the
// queued background preparation did: spawnPrepare backs off (prepKey is no
// longer empty) and the join runs its plain sort inline exactly once. It can
// never collide with a real prep key (those are "name|band" strings).
const prepCanceled = "\x00canceled"

// prepKeyFor names one (algorithm, band) combination a prepared structure is
// valid for.
func prepKeyFor(alg localjoin.Algorithm, band data.Band) string {
	return fmt.Sprintf("%s|%v|%v", alg.Name(), band.Low, band.High)
}

// preparedFor returns the cached prepared join for (alg, band), building and
// caching it on miss, and reports the nanoseconds the rebuild took (zero on a
// cache hit). A miss happens when a query asks for a different algorithm than
// the plan was sealed with, or when a delta append invalidated the sealed
// structure (Load clears prepKey); either way localjoin.Prepare sorts its
// inputs internally, so rebuilding over unsorted appended tails is correct. A
// nil prepared return means the algorithm has no prepared form; callers run
// the plain per-query join.
func (p *partitionData) preparedFor(alg localjoin.Algorithm, band data.Band) (localjoin.PreparedT, int64) {
	key := prepKeyFor(alg, band)
	p.mu.RLock()
	if p.prepKey == key {
		prep := p.prepared
		p.mu.RUnlock()
		return prep, 0
	}
	p.mu.RUnlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	var rebuildNanos int64
	if p.prepKey != key {
		start := time.Now()
		p.prepared = localjoin.Prepare(alg, p.s, p.t, band)
		p.prepKey = key
		rebuildNanos = time.Since(start).Nanoseconds()
	}
	return p.prepared, rebuildNanos
}

// NewWorker returns a worker service with the given display name.
func NewWorker(name string) *Worker {
	w := &Worker{
		name:        name,
		jobs:        make(map[string]*jobState),
		retained:    make(map[string]*retainedState),
		wireVersion: wire.Version,
		prepSem:     make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
	w.decPool.New = func() any { return &decodeScratch{} }
	w.m = newWorkerMetrics(w)
	return w
}

// SetWireVersion overrides the chunk format version the worker advertises in
// Ping replies (tests use it to force coordinators onto the v1 row-major
// fallback). It must be called before the worker starts serving. Load accepts
// every format regardless of the advertised version.
func (w *Worker) SetWireVersion(v int) {
	if v < 0 {
		v = 0
	}
	w.wireVersion = v
}

// payloadBytes approximates one partition's resident key/ID footprint under
// its read lock.
func (p *partitionData) payloadBytes() int64 {
	return int64(p.s.Len()+p.t.Len())*int64(p.s.Dims())*8 +
		int64(len(p.sIDs)+len(p.tIDs))*8
}

// sumJobBytes walks one job's partitions and sums their footprints. It takes
// job.mu only to copy the partition pointers and each p.mu read lock only to
// sum, so a scrape never holds two locks at once and cannot deadlock against
// the Load path (which locks job.mu then p.mu).
func sumJobBytes(job *jobState) int64 {
	job.mu.Lock()
	parts := make([]*partitionData, 0, len(job.partitions))
	for _, p := range job.partitions {
		parts = append(parts, p)
	}
	job.mu.Unlock()
	var total int64
	for _, p := range parts {
		p.mu.RLock()
		total += p.payloadBytes()
		p.mu.RUnlock()
	}
	return total
}

// retainedBytes approximates the key/ID bytes held by the retained-plan
// registry. w.mu is released before any per-job lock is taken.
func (w *Worker) retainedBytes() int64 {
	w.mu.Lock()
	jobs := make([]*jobState, 0, len(w.retained))
	for _, rs := range w.retained {
		jobs = append(jobs, &rs.jobState)
	}
	w.mu.Unlock()
	var total int64
	for _, job := range jobs {
		total += sumJobBytes(job)
	}
	return total
}

// transientBytes approximates the key/ID bytes held by the transient job
// table.
func (w *Worker) transientBytes() int64 {
	w.mu.Lock()
	jobs := make([]*jobState, 0, len(w.jobs))
	for _, job := range w.jobs {
		jobs = append(jobs, job)
	}
	w.mu.Unlock()
	var total int64
	for _, job := range jobs {
		total += sumJobBytes(job)
	}
	return total
}

// SetMaxParallelism caps the join parallelism coordinators may request; n < 1
// restores the default (GOMAXPROCS). It must be called before the worker
// starts serving.
func (w *Worker) SetMaxParallelism(n int) {
	if n < 1 {
		n = 0
	}
	w.maxParallelism = n
}

// SetMaxRetained caps the number of sealed retained plans kept resident; n < 1
// removes the cap. It must be called before the worker starts serving.
func (w *Worker) SetMaxRetained(n int) {
	if n < 1 {
		n = 0
	}
	w.maxRetained = n
}

// Retained reports the number of resident retained plans (sealed or still
// shipping); tests use it to pin the Reset-scoping regression.
func (w *Worker) Retained() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.retained)
}

// Load implements the RPC method receiving partition input, in the reference
// representation (Chunk + IDs), the streaming plane's v1 packed form, or the
// v2 columnar compressed form — or a per-partition Complete marker carrying
// no data (the pipelined-join path).
func (w *Worker) Load(args *LoadArgs, reply *LoadReply) error {
	if err := w.beginWork(); err != nil {
		return err
	}
	defer w.endWork()
	if args.Complete {
		return w.completeMarker(args)
	}
	payloads := 0
	for _, set := range []bool{args.Packed != nil, args.Chunk != nil, len(args.Columnar) > 0} {
		if set {
			payloads++
		}
	}
	if payloads != 1 {
		return fmt.Errorf("cluster: worker %s: Load needs exactly one of chunk, packed, columnar; got %d", w.name, payloads)
	}
	var n, dims int
	switch {
	case args.Packed != nil:
		var err error
		if n, err = args.Packed.Tuples(); err != nil {
			return fmt.Errorf("cluster: worker %s: %w", w.name, err)
		}
		dims = args.Packed.Dims
	case args.Chunk != nil:
		if len(args.IDs) != args.Chunk.Len() {
			return fmt.Errorf("cluster: worker %s received %d ids for %d tuples", w.name, len(args.IDs), args.Chunk.Len())
		}
		n = args.Chunk.Len()
		dims = args.Chunk.Dims()
	default:
		// Parse only the header here; the column payloads are decoded
		// straight into the partition's arenas once it is resolved.
		var hdr wire.Decoder
		var err error
		if n, dims, err = hdr.Begin(args.Columnar); err != nil {
			return fmt.Errorf("cluster: worker %s: %w", w.name, err)
		}
	}
	if args.Side != "S" && args.Side != "T" {
		return fmt.Errorf("cluster: unknown relation side %q", args.Side)
	}
	if args.Delta && !args.Retain {
		return fmt.Errorf("cluster: worker %s: delta load requires retain", w.name)
	}

	job, err := w.jobFor(args)
	if err != nil {
		return err
	}

	job.mu.Lock()
	p, ok := job.partitions[args.Partition]
	if !ok {
		p = newPartitionData(dims)
		job.partitions[args.Partition] = p
	}
	job.mu.Unlock()

	p.mu.Lock()
	// Chunks of one partition must agree on dimensionality; without this
	// check a mismatched packed chunk could append more keys than IDs and
	// blow up a later join instead of failing the offending Load.
	if dims != p.s.Dims() {
		p.mu.Unlock()
		return fmt.Errorf("cluster: worker %s: partition %d chunk has %d dims, want %d",
			w.name, args.Partition, dims, p.s.Dims())
	}
	rel, ids := p.s, &p.sIDs
	if args.Side == "T" {
		rel, ids = p.t, &p.tIDs
	}
	var payload int64
	var decodeNanos int64
	switch {
	case args.Packed != nil:
		if total := args.Packed.SideTotal; total > rel.Len() {
			rel.Reserve(total - rel.Len())
			*ids = slices.Grow(*ids, total-len(*ids))
		}
		if err := rel.AppendKeysLE(args.Packed.Keys); err != nil {
			p.mu.Unlock()
			return fmt.Errorf("cluster: worker %s: %w", w.name, err)
		}
		*ids = data.AppendInt64sLE(*ids, args.Packed.IDs)
		payload = int64(len(args.Packed.Keys) + len(args.Packed.IDs))
	case args.Chunk != nil:
		rel.AppendRows(args.Chunk, 0, args.Chunk.Len())
		*ids = append(*ids, args.IDs...)
		payload = int64(n) * int64(dims+1) * 8
	default:
		start := time.Now()
		if err := w.decodeColumnar(args, p, rel, ids, n, dims); err != nil {
			p.mu.Unlock()
			return fmt.Errorf("cluster: worker %s: %w", w.name, err)
		}
		decodeNanos = time.Since(start).Nanoseconds()
		payload = int64(len(args.Columnar))
	}
	if args.Delta {
		// The appended tail breaks the sealed presort order and any prebuilt
		// join structure over the old rows. Invalidate under the write lock
		// already held; the next probe's preparedFor rebuilds lazily.
		p.prepKey = ""
		p.prepared = nil
		w.m.deltaLoads.Inc()
		w.m.deltaTuples.Add(int64(n))
	}
	spawn := false
	if !args.Retain && p.readyLocked() {
		p.preparing = true
		spawn = true
	}
	p.mu.Unlock()
	if spawn {
		w.spawnPrepare(p)
	}

	reply.Received = n
	w.m.loadRPCs.Inc()
	w.m.loadTuples.Add(int64(n))
	w.m.loadBytes.Add(payload)
	w.m.loadRawBytes.Add(wire.RawBytes(n, dims))
	w.m.loadChunkBytes.Observe(float64(payload))
	if decodeNanos > 0 {
		w.m.decodeSeconds.Observe(float64(decodeNanos) / 1e9)
	}
	return nil
}

// jobFor resolves (creating if appropriate) the job or retained-plan entry a
// Load targets.
func (w *Worker) jobFor(args *LoadArgs) (*jobState, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if args.Retain {
		rs, ok := w.retained[args.JobID]
		if !ok {
			if args.Delta {
				// A delta targets a plan the coordinator believes this worker
				// holds; if the plan is gone (evicted, restarted), surface the
				// retained-miss marker so the caller falls back to a cold
				// shuffle instead of building a partial plan from the delta.
				return nil, fmt.Errorf("cluster: worker %s: %s %q", w.name, ErrUnknownRetainedPlan, args.JobID)
			}
			rs = &retainedState{jobState: jobState{partitions: make(map[int]*partitionData)}}
			w.retained[args.JobID] = rs
		} else if rs.sealed && !args.Delta {
			return nil, fmt.Errorf("cluster: worker %s: retained plan %q is sealed", w.name, args.JobID)
		}
		return &rs.jobState, nil
	}
	job, ok := w.jobs[args.JobID]
	if !ok {
		job = &jobState{partitions: make(map[int]*partitionData)}
		w.jobs[args.JobID] = job
	}
	return job, nil
}

// decodeColumnar decodes a v2 chunk straight into the partition's arenas: a
// block of rows is reserved once, then each key column is decoded and
// scattered with one strided pass (no row-major intermediate), and the ID
// column is decoded directly into the grown ID slice. Per-column min/max from
// the decoder are folded into the partition's decode-time stats. Caller holds
// p.mu.
func (w *Worker) decodeColumnar(args *LoadArgs, p *partitionData, rel *data.Relation, ids *[]int64, n, dims int) error {
	if total := args.SideTotal; total > rel.Len() {
		rel.Reserve(total - rel.Len())
		*ids = slices.Grow(*ids, total-len(*ids))
	}
	sc := w.decPool.Get().(*decodeScratch)
	defer w.decPool.Put(sc)
	if _, _, err := sc.dec.Begin(args.Columnar); err != nil {
		return err
	}
	if cap(sc.col) < n {
		sc.col = make([]float64, n)
	}
	col := sc.col[:n]
	if p.colMin == nil {
		p.colMin = make([]float64, dims)
		p.colMax = make([]float64, dims)
		for d := range p.colMin {
			p.colMin[d] = math.Inf(1)
			p.colMax[d] = math.Inf(-1)
		}
	}
	base := rel.GrowRows(n)
	for d := 0; d < dims; d++ {
		min, max, err := sc.dec.KeyColumn(col)
		if err != nil {
			return err
		}
		rel.SetColumn(base, d, col)
		if n > 0 {
			if min < p.colMin[d] {
				p.colMin[d] = min
			}
			if max > p.colMax[d] {
				p.colMax[d] = max
			}
		}
	}
	idBase := len(*ids)
	*ids = append(*ids, make([]int64, n)...)
	return sc.dec.IDs((*ids)[idBase:])
}

// completeMarker handles a per-partition end-of-shipment marker: it records
// the expected per-side tuple counts and, if the partition is already fully
// resident (markers and data race through net/rpc's per-request goroutines),
// kicks off the background preparation.
func (w *Worker) completeMarker(args *LoadArgs) error {
	if args.Retain || args.Delta {
		return fmt.Errorf("cluster: worker %s: Complete markers apply to transient jobs only", w.name)
	}
	if args.ExpectS < 0 || args.ExpectT < 0 || args.Band.Validate() != nil {
		return fmt.Errorf("cluster: worker %s: malformed Complete marker for partition %d", w.name, args.Partition)
	}
	job, err := w.jobFor(args)
	if err != nil {
		return err
	}
	job.mu.Lock()
	p, ok := job.partitions[args.Partition]
	if !ok {
		p = newPartitionData(args.Band.Dims())
		job.partitions[args.Partition] = p
	}
	job.mu.Unlock()

	p.mu.Lock()
	p.expectS, p.expectT = args.ExpectS, args.ExpectT
	p.markerBand, p.markerAlg = args.Band, args.Algorithm
	spawn := false
	if p.readyLocked() {
		p.preparing = true
		spawn = true
	}
	p.mu.Unlock()
	if spawn {
		w.spawnPrepare(p)
	}
	return nil
}

// spawnPrepare launches the background prepare for a partition whose shipment
// is complete. Unlike Seal it does not presort: localjoin.Prepare is
// self-contained over unsorted inputs (preparedFor relies on the same
// property), and keeping arrival order means the probe emits pairs in the
// exact order a plain per-query join would. The goroutine joins the worker's
// inflight group so Drain waits for it; p.preparing was claimed by the caller
// under p.mu.
func (w *Worker) spawnPrepare(p *partitionData) {
	w.inflight.Add(1)
	go func() {
		defer w.inflight.Done()
		w.prepSem <- struct{}{}
		defer func() { <-w.prepSem }()
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.prepKey != "" {
			return // a join raced ahead and built it already
		}
		band := p.markerBand
		if band.Validate() != nil || p.s.Dims() != band.Dims() {
			return
		}
		alg := localjoin.Default()
		if p.markerAlg != "" {
			if a, ok := localjoin.ByName(p.markerAlg); ok {
				alg = a
			}
		}
		p.prepared = localjoin.Prepare(alg, p.s, p.t, band)
		p.prepKey = prepKeyFor(alg, band)
		w.m.pipelinedPreps.Inc()
	}()
}

// Join implements the RPC method running all local joins of a job. Partitions
// run on a bounded goroutine pool (JoinArgs.Parallelism, default GOMAXPROCS),
// and the reply lists partitions in ascending partition-id order so result
// aggregation and logs are deterministic across runs.
func (w *Worker) Join(args *JoinArgs, reply *JoinReply) error {
	if err := w.beginWork(); err != nil {
		return err
	}
	defer w.endWork()
	alg := localjoin.Default()
	if args.Algorithm != "" {
		a, ok := localjoin.ByName(args.Algorithm)
		if !ok {
			return fmt.Errorf("cluster: unknown local join algorithm %q", args.Algorithm)
		}
		alg = a
	}
	if err := args.Band.Validate(); err != nil {
		return fmt.Errorf("cluster: invalid band condition: %w", err)
	}

	w.m.joinRPCs.Inc()
	var job *jobState
	w.mu.Lock()
	if args.Retained {
		rs := w.retained[args.JobID]
		if rs == nil || !rs.sealed {
			w.mu.Unlock()
			w.m.retainedMisses.Inc()
			return fmt.Errorf("cluster: worker %s: %s %q", w.name, ErrUnknownRetainedPlan, args.JobID)
		}
		job = &rs.jobState
		w.m.retainedHits.Inc()
	} else {
		job = w.jobs[args.JobID]
	}
	w.mu.Unlock()
	reply.Worker = w.name
	if job == nil {
		return nil // no partitions were shipped here
	}

	job.mu.Lock()
	tasks := make([]joinTask, 0, len(job.partitions))
	for pid, p := range job.partitions {
		tasks = append(tasks, joinTask{pid: pid, p: p})
	}
	job.mu.Unlock()
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].pid < tasks[b].pid })

	parallelism := args.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if w.maxParallelism > 0 && parallelism > w.maxParallelism {
		parallelism = w.maxParallelism
	}
	if parallelism < 1 {
		parallelism = 1
	}

	// Morsel-driven by default: one shared pool drains probe-row ranges of
	// all partitions, so one fat partition cannot bound the join phase.
	// MorselRows < 0 selects the retained one-goroutine-per-partition path,
	// the correctness oracle the morsel reply must stay bit-identical to.
	if args.MorselRows >= 0 {
		reply.Partitions = w.joinTasksMorsels(alg, tasks, args, parallelism)
		return nil
	}

	if parallelism > len(tasks) {
		parallelism = len(tasks)
	}
	if parallelism < 1 {
		parallelism = 1
	}
	stats := make([]PartitionStats, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			stats[i] = w.joinPartition(alg, tasks[i].pid, tasks[i].p, args, args.Retained)
		}(i)
	}
	wg.Wait()
	reply.Partitions = stats
	return nil
}

// joinPartition runs one partition's local join under the partition's read
// lock: joins never mutate the inputs, so concurrent queries over the same
// retained partitions proceed in parallel, while a late Load batch (write
// lock) waits for running joins instead of racing them. Retained partitions
// probe the cached prepared structure (built at Seal) instead of rebuilding
// the join's index per query.
func (w *Worker) joinPartition(alg localjoin.Algorithm, pid int, p *partitionData, args *JoinArgs, retained bool) PartitionStats {
	w.m.joinInflight.Add(1)
	defer w.m.joinInflight.Add(-1)
	var prep localjoin.PreparedT
	var rebuildNanos int64
	if retained {
		prep, rebuildNanos = p.preparedFor(alg, args.Band)
		if rebuildNanos > 0 {
			w.m.staleRebuilds.Inc()
			w.m.staleRebuildSeconds.Observe(float64(rebuildNanos) / 1e9)
		}
	}
	if !retained {
		// Pipelined-join handoff. If the background build finished (or is
		// mid-build — the write lock waits for it), adopt its structure and
		// probe instead of sorting. If the build is still queued behind the
		// prep semaphore, cancel it: the join phase has started, so a late
		// prepare could only duplicate the sort this join is about to run
		// inline, stealing cores from the remaining joins (spawnPrepare sees
		// prepKey set and backs off).
		key := prepKeyFor(alg, args.Band)
		p.mu.Lock()
		switch p.prepKey {
		case key:
			prep = p.prepared
		case "":
			p.prepKey = prepCanceled
		}
		p.mu.Unlock()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	start := time.Now()
	stats := PartitionStats{Partition: pid, InputS: p.s.Len(), InputT: p.t.Len(), RebuildNanos: rebuildNanos}
	var emit localjoin.Emit
	if args.CollectPairs {
		emit = func(si, ti int, _, _ []float64) {
			stats.PairS = append(stats.PairS, p.sIDs[si])
			stats.PairT = append(stats.PairT, p.tIDs[ti])
		}
	}
	if prep != nil {
		stats.Output = prep.Probe(p.s, emit)
	} else {
		stats.Output = alg.Join(p.s, p.t, args.Band, emit)
	}
	stats.JoinNanos = time.Since(start).Nanoseconds()
	w.m.partitionsJoined.Inc()
	w.m.pairsEmitted.Add(stats.Output)
	w.m.partitionJoinSeconds.Observe(float64(stats.JoinNanos) / 1e9)
	return stats
}

// joinTask is one partition of a Join call, in pid order.
type joinTask struct {
	pid int
	p   *partitionData
}

// morselTaskState is one partition's resolved probe setup for the morsel join.
type morselTaskState struct {
	prep         localjoin.PreparedT
	rebuildNanos int64
	buildNanos   int64
}

// joinTasksMorsels is the worker-side morsel join: the same per-partition
// structure resolution as joinPartition (retained prepared structures with
// lazy rebuild, the pipelined-join handoff for transient jobs), followed by
// one shared exec.RunMorsels pool draining probe-row ranges of all partitions
// largest-first. Partition read locks are held across the whole morsel phase
// — the same exclusion against late Loads the per-partition path has, just
// wider — and each partition's pairs are concatenated in morsel order, so the
// reply is bit-identical to the per-partition oracle path.
func (w *Worker) joinTasksMorsels(alg localjoin.Algorithm, tasks []joinTask, args *JoinArgs, parallelism int) []PartitionStats {
	n := len(tasks)
	if n == 0 {
		return []PartitionStats{}
	}
	w.m.joinInflight.Add(int64(n))
	defer w.m.joinInflight.Add(int64(-n))

	states := make([]morselTaskState, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, min(parallelism, n))
	for i := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			st := &states[i]
			p := tasks[i].p
			if args.Retained {
				st.prep, st.rebuildNanos = p.preparedFor(alg, args.Band)
				if st.rebuildNanos > 0 {
					w.m.staleRebuilds.Inc()
					w.m.staleRebuildSeconds.Observe(float64(st.rebuildNanos) / 1e9)
				}
			} else {
				// Pipelined-join handoff, as in joinPartition: adopt a finished
				// background build, cancel a queued one.
				key := prepKeyFor(alg, args.Band)
				p.mu.Lock()
				switch p.prepKey {
				case key:
					st.prep = p.prepared
				case "":
					p.prepKey = prepCanceled
				}
				p.mu.Unlock()
			}
			// Held until the morsel phase completes (released by the caller's
			// defer below); RUnlock from another goroutine is fine.
			p.mu.RLock()
		}(i)
	}
	wg.Wait()
	defer func() {
		for i := range tasks {
			tasks[i].p.mu.RUnlock()
		}
	}()

	maxRows := 0
	for i := range tasks {
		if l := tasks[i].p.s.Len(); l > maxRows {
			maxRows = l
		}
	}
	rows := exec.ResolveMorselRows(args.MorselRows, parallelism, maxRows)

	// Build a shared range-probe structure for each unprepared partition big
	// enough to split — the sort/grid work its plain join would have spent
	// inline, paid once here and then probed by every morsel.
	for i := range tasks {
		if states[i].prep != nil || tasks[i].p.s.Len() <= rows {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			p := tasks[i].p
			start := time.Now()
			states[i].prep = localjoin.Prepare(alg, p.s, p.t, args.Band)
			states[i].buildNanos = time.Since(start).Nanoseconds()
		}(i)
	}
	wg.Wait()

	jobs := make([]exec.MorselJob, n)
	for i := range tasks {
		p := tasks[i].p
		switch {
		case states[i].prep != nil:
			if rp, ok := states[i].prep.(localjoin.RangeProber); ok {
				jobs[i] = exec.MorselJob{Rows: p.s.Len(), Run: func(lo, hi int, emit localjoin.Emit) int64 {
					return rp.ProbeRange(p.s, lo, hi, emit)
				}}
			} else {
				prep := states[i].prep
				jobs[i] = exec.MorselJob{Rows: p.s.Len(), Single: true, Run: func(_, _ int, emit localjoin.Emit) int64 {
					return prep.Probe(p.s, emit)
				}}
			}
		case localjoin.RangeNeedsNoPrepare(alg):
			rj := alg.(localjoin.RangeJoiner)
			jobs[i] = exec.MorselJob{Rows: p.s.Len(), Run: func(lo, hi int, emit localjoin.Emit) int64 {
				return rj.JoinRange(p.s, p.t, args.Band, lo, hi, emit)
			}}
		default:
			jobs[i] = exec.MorselJob{Rows: p.s.Len(), Single: true, Run: func(_, _ int, emit localjoin.Emit) int64 {
				return alg.Join(p.s, p.t, args.Band, emit)
			}}
		}
	}
	// The context never cancels (worker RPCs run to completion), so the only
	// error path of RunMorsels is unreachable here.
	jres, mstats, _ := exec.RunMorsels(context.Background(), jobs, rows, parallelism, args.CollectPairs)

	stats := make([]PartitionStats, n)
	for i := range tasks {
		p := tasks[i].p
		st := PartitionStats{
			Partition:    tasks[i].pid,
			InputS:       p.s.Len(),
			InputT:       p.t.Len(),
			Output:       jres[i].Count,
			JoinNanos:    jres[i].Nanos + states[i].buildNanos,
			RebuildNanos: states[i].rebuildNanos,
		}
		if args.CollectPairs {
			st.PairS = make([]int64, len(jres[i].SIdx))
			st.PairT = make([]int64, len(jres[i].SIdx))
			for k, si := range jres[i].SIdx {
				st.PairS[k] = p.sIDs[si]
				st.PairT[k] = p.tIDs[jres[i].TIdx[k]]
			}
		}
		stats[i] = st
		w.m.partitionsJoined.Inc()
		w.m.pairsEmitted.Add(st.Output)
		w.m.partitionJoinSeconds.Observe(float64(st.JoinNanos) / 1e9)
	}
	w.m.morsels.Add(mstats.Morsels)
	w.m.morselSteals.Add(mstats.Steals)
	w.m.stragglerRatio.Set(int64(math.Round(mstats.StragglerRatio * 1000)))
	return stats
}

// Reset implements the RPC method discarding a transient job's state. It is
// deliberately scoped to the transient job table: a plan fingerprint passed as
// the job ID of a Reset must NOT evict the retained registry, so a failed or
// aborted query (whose coordinator fires a best-effort Reset on every exit
// path) can never take warm partitions down with it. Eviction of retained
// plans is only ever explicit, via Evict.
func (w *Worker) Reset(args *ResetArgs, _ *ResetReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.jobs, args.JobID)
	return nil
}

// Seal implements the RPC method completing a retained plan's shipment: it
// marks the plan joinable, creating an empty entry on workers that received no
// partitions so a later retained Join can distinguish "sealed, zero
// partitions" from "evicted". Sealing presorts every partition's rows on the
// first join attribute — paid once, off every later query's critical path —
// so warm joins' internal sorts find presorted input and run linearly. If the
// retention cap is exceeded, the least-recently-sealed other plan is evicted.
func (w *Worker) Seal(args *SealArgs, reply *SealReply) error {
	if err := w.beginWork(); err != nil {
		return err
	}
	defer w.endWork()
	if args.PlanID == "" {
		return fmt.Errorf("cluster: worker %s: Seal requires a plan id", w.name)
	}
	w.mu.Lock()
	rs, ok := w.retained[args.PlanID]
	if !ok {
		rs = &retainedState{jobState: jobState{partitions: make(map[int]*partitionData)}}
		w.retained[args.PlanID] = rs
	}
	parts := make([]*partitionData, 0, len(rs.partitions))
	if !rs.sealed {
		for _, p := range rs.partitions {
			parts = append(parts, p)
		}
	}
	w.mu.Unlock()

	// Presort and prebuild outside the registry lock; each partition is
	// permuted under its own write lock so a straggler Load cannot race the
	// reorder. When the seal names a valid band, the local join's reusable
	// structure is built here too — once, off every query's critical path.
	var prebuildAlg localjoin.Algorithm
	if args.Band.Validate() == nil {
		prebuildAlg = localjoin.Default()
		if args.Algorithm != "" {
			if a, ok := localjoin.ByName(args.Algorithm); ok {
				prebuildAlg = a
			}
		}
	}
	parallelism := runtime.GOMAXPROCS(0)
	if w.maxParallelism > 0 && parallelism > w.maxParallelism {
		parallelism = w.maxParallelism
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for _, p := range parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(p *partitionData) {
			defer wg.Done()
			defer func() { <-sem }()
			p.mu.Lock()
			sorted := (&exec.PartitionInput{S: p.s, SIDs: p.sIDs, T: p.t, TIDs: p.tIDs}).Presort()
			p.s, p.sIDs, p.t, p.tIDs = sorted.S, sorted.SIDs, sorted.T, sorted.TIDs
			if prebuildAlg != nil && p.s.Dims() == args.Band.Dims() {
				p.prepared = localjoin.Prepare(prebuildAlg, p.s, p.t, args.Band)
				p.prepKey = prepKeyFor(prebuildAlg, args.Band)
			}
			p.mu.Unlock()
		}(p)
	}
	wg.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	rs.sealed = true
	w.sealSeq++
	rs.seq = w.sealSeq
	reply.Partitions = len(rs.partitions)
	if w.maxRetained > 0 {
		for len(w.retained) > w.maxRetained {
			// Only sealed plans are eviction candidates: an unsealed entry is
			// a shipment in progress (its zero seq would otherwise always sort
			// oldest), and evicting it mid-load would silently truncate the
			// data its Seal later marks joinable.
			oldest, oldestSeq := "", uint64(0)
			for id, r := range w.retained {
				if id == args.PlanID || !r.sealed {
					continue
				}
				if oldest == "" || r.seq < oldestSeq {
					oldest, oldestSeq = id, r.seq
				}
			}
			if oldest == "" {
				break
			}
			delete(w.retained, oldest)
			w.m.evictions.Inc()
		}
	}
	w.m.seals.Inc()
	return nil
}

// Evict implements the RPC method discarding retained plans: one plan when
// PlanID is set, the whole registry when it is empty.
func (w *Worker) Evict(args *EvictArgs, reply *EvictReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if args.PlanID == "" {
		reply.Existed = len(w.retained) > 0
		w.m.evictions.Add(int64(len(w.retained)))
		w.retained = make(map[string]*retainedState)
		return nil
	}
	_, reply.Existed = w.retained[args.PlanID]
	if reply.Existed {
		w.m.evictions.Inc()
	}
	delete(w.retained, args.PlanID)
	return nil
}

// Ping implements the liveness RPC.
func (w *Worker) Ping(_ *PingArgs, reply *PingReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	reply.Worker = w.name
	reply.Jobs = len(w.jobs)
	reply.Retained = len(w.retained)
	reply.Draining = w.draining
	reply.WireVersion = w.wireVersion
	return nil
}

// Stats implements the observability RPC: a cumulative snapshot of the
// worker's counters and occupancy. Like Ping it answers while draining, so a
// coordinator can still collect a cluster-wide view during a graceful
// shutdown.
func (w *Worker) Stats(_ *StatsArgs, reply *StatsReply) error {
	w.mu.Lock()
	reply.Worker = w.name
	reply.Draining = w.draining
	reply.Jobs = len(w.jobs)
	reply.RetainedPlans = len(w.retained)
	w.mu.Unlock()

	// Byte sums take per-job/per-partition locks; w.mu is already released.
	reply.RetainedBytes = w.retainedBytes()
	reply.TransientBytes = w.transientBytes()

	m := w.m
	reply.JoinInflight = m.joinInflight.Value()
	reply.LoadRPCs = m.loadRPCs.Value()
	reply.LoadTuples = m.loadTuples.Value()
	reply.LoadBytes = m.loadBytes.Value()
	reply.LoadRawBytes = m.loadRawBytes.Value()
	reply.DecodeNanos = int64(m.decodeSeconds.Sum() * 1e9)
	reply.LoadRejected = m.loadRejected.Value()
	reply.DeltaLoads = m.deltaLoads.Value()
	reply.DeltaTuples = m.deltaTuples.Value()
	reply.StaleRebuilds = m.staleRebuilds.Value()
	reply.StaleRebuildNanos = int64(m.staleRebuildSeconds.Sum() * 1e9)
	reply.JoinRPCs = m.joinRPCs.Value()
	reply.PartitionsJoined = m.partitionsJoined.Value()
	reply.PairsEmitted = m.pairsEmitted.Value()
	reply.JoinNanos = int64(m.partitionJoinSeconds.Sum() * 1e9)
	reply.RetainedHits = m.retainedHits.Value()
	reply.RetainedMisses = m.retainedMisses.Value()
	reply.Morsels = m.morsels.Value()
	reply.MorselSteals = m.morselSteals.Value()
	reply.StragglerRatio = float64(m.stragglerRatio.Value()) / 1000
	reply.Seals = m.seals.Value()
	reply.Evictions = m.evictions.Value()
	return nil
}

// Serve registers the worker on a fresh RPC server and serves connections on
// the listener until it is closed. It is intended to be run in a goroutine or
// as the body of cmd/recpartd.
func Serve(w *Worker, ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, w); err != nil {
		return fmt.Errorf("cluster: registering worker service: %w", err)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed: normal shutdown.
			return nil
		}
		go srv.ServeConn(conn)
	}
}

// ListenAndServe starts the given worker on a TCP address and blocks. The
// worker is passed in (rather than constructed here) so callers can configure
// it first (e.g. SetMaxParallelism).
func ListenAndServe(w *Worker, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listening on %s: %w", addr, err)
	}
	log.Printf("band-join worker %s listening on %s", w.name, ln.Addr())
	return Serve(w, ln)
}
