package cluster

import (
	"fmt"
	"log"
	"net"
	"net/rpc"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"bandjoin/internal/data"
	"bandjoin/internal/localjoin"
)

// Worker is the RPC service a worker machine runs. It accumulates partition
// input shipped by the coordinator and executes local band-joins on request.
// A single worker can hold several jobs concurrently (keyed by job ID), like
// a node-manager running several reduce tasks. Loads for different partitions
// append concurrently, and a job's joins run on a bounded goroutine pool.
type Worker struct {
	name string

	// maxParallelism caps the per-job join parallelism a coordinator may
	// request via JoinArgs.Parallelism; zero means GOMAXPROCS. Set it before
	// serving (see SetMaxParallelism).
	maxParallelism int

	mu   sync.Mutex // guards jobs
	jobs map[string]*jobState
}

// jobState holds one job's partitions. Its mutex guards only the partitions
// map; every partition carries its own lock so that concurrent Load batches
// for different partitions append in parallel, and a late Load batch for a
// partition whose join is already running waits for that join instead of
// racing it.
type jobState struct {
	mu         sync.Mutex
	partitions map[int]*partitionData
}

type partitionData struct {
	mu   sync.Mutex
	s    *data.Relation
	sIDs []int64
	t    *data.Relation
	tIDs []int64
}

// NewWorker returns a worker service with the given display name.
func NewWorker(name string) *Worker {
	return &Worker{name: name, jobs: make(map[string]*jobState)}
}

// SetMaxParallelism caps the join parallelism coordinators may request; n < 1
// restores the default (GOMAXPROCS). It must be called before the worker
// starts serving.
func (w *Worker) SetMaxParallelism(n int) {
	if n < 1 {
		n = 0
	}
	w.maxParallelism = n
}

// Load implements the RPC method receiving partition input, in either the
// reference representation (Chunk + IDs) or the streaming plane's packed one.
func (w *Worker) Load(args *LoadArgs, reply *LoadReply) error {
	var n, dims int
	switch {
	case args.Packed != nil && args.Chunk != nil:
		return fmt.Errorf("cluster: worker %s received both a chunk and a packed chunk", w.name)
	case args.Packed != nil:
		var err error
		if n, err = args.Packed.Tuples(); err != nil {
			return fmt.Errorf("cluster: worker %s: %w", w.name, err)
		}
		dims = args.Packed.Dims
	case args.Chunk != nil:
		if len(args.IDs) != args.Chunk.Len() {
			return fmt.Errorf("cluster: worker %s received %d ids for %d tuples", w.name, len(args.IDs), args.Chunk.Len())
		}
		n = args.Chunk.Len()
		dims = args.Chunk.Dims()
	default:
		return fmt.Errorf("cluster: worker %s received nil chunk", w.name)
	}
	if args.Side != "S" && args.Side != "T" {
		return fmt.Errorf("cluster: unknown relation side %q", args.Side)
	}

	w.mu.Lock()
	job, ok := w.jobs[args.JobID]
	if !ok {
		job = &jobState{partitions: make(map[int]*partitionData)}
		w.jobs[args.JobID] = job
	}
	w.mu.Unlock()

	job.mu.Lock()
	p, ok := job.partitions[args.Partition]
	if !ok {
		p = &partitionData{
			s: data.NewRelation("S-part", dims),
			t: data.NewRelation("T-part", dims),
		}
		job.partitions[args.Partition] = p
	}
	job.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	// Chunks of one partition must agree on dimensionality; without this
	// check a mismatched packed chunk could append more keys than IDs and
	// blow up a later join instead of failing the offending Load.
	if dims != p.s.Dims() {
		return fmt.Errorf("cluster: worker %s: partition %d chunk has %d dims, want %d",
			w.name, args.Partition, dims, p.s.Dims())
	}
	rel, ids := p.s, &p.sIDs
	if args.Side == "T" {
		rel, ids = p.t, &p.tIDs
	}
	if args.Packed != nil {
		if total := args.Packed.SideTotal; total > rel.Len() {
			rel.Reserve(total - rel.Len())
			*ids = slices.Grow(*ids, total-len(*ids))
		}
		if err := rel.AppendKeysLE(args.Packed.Keys); err != nil {
			return fmt.Errorf("cluster: worker %s: %w", w.name, err)
		}
		*ids = data.AppendInt64sLE(*ids, args.Packed.IDs)
	} else {
		rel.AppendRows(args.Chunk, 0, args.Chunk.Len())
		*ids = append(*ids, args.IDs...)
	}
	reply.Received = n
	return nil
}

// Join implements the RPC method running all local joins of a job. Partitions
// run on a bounded goroutine pool (JoinArgs.Parallelism, default GOMAXPROCS),
// and the reply lists partitions in ascending partition-id order so result
// aggregation and logs are deterministic across runs.
func (w *Worker) Join(args *JoinArgs, reply *JoinReply) error {
	alg := localjoin.Default()
	if args.Algorithm != "" {
		a, ok := localjoin.ByName(args.Algorithm)
		if !ok {
			return fmt.Errorf("cluster: unknown local join algorithm %q", args.Algorithm)
		}
		alg = a
	}
	if err := args.Band.Validate(); err != nil {
		return fmt.Errorf("cluster: invalid band condition: %w", err)
	}

	w.mu.Lock()
	job := w.jobs[args.JobID]
	w.mu.Unlock()
	reply.Worker = w.name
	if job == nil {
		return nil // no partitions were shipped here
	}

	type task struct {
		pid int
		p   *partitionData
	}
	job.mu.Lock()
	tasks := make([]task, 0, len(job.partitions))
	for pid, p := range job.partitions {
		tasks = append(tasks, task{pid: pid, p: p})
	}
	job.mu.Unlock()
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].pid < tasks[b].pid })

	parallelism := args.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if w.maxParallelism > 0 && parallelism > w.maxParallelism {
		parallelism = w.maxParallelism
	}
	if parallelism > len(tasks) {
		parallelism = len(tasks)
	}
	if parallelism < 1 {
		parallelism = 1
	}

	stats := make([]PartitionStats, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			stats[i] = joinPartition(alg, tasks[i].pid, tasks[i].p, args)
		}(i)
	}
	wg.Wait()
	reply.Partitions = stats
	return nil
}

// joinPartition runs one partition's local join under its lock, so a late
// Load batch arriving mid-join waits instead of mutating the inputs.
func joinPartition(alg localjoin.Algorithm, pid int, p *partitionData, args *JoinArgs) PartitionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	stats := PartitionStats{Partition: pid, InputS: p.s.Len(), InputT: p.t.Len()}
	var emit localjoin.Emit
	if args.CollectPairs {
		emit = func(si, ti int, _, _ []float64) {
			stats.PairS = append(stats.PairS, p.sIDs[si])
			stats.PairT = append(stats.PairT, p.tIDs[ti])
		}
	}
	stats.Output = alg.Join(p.s, p.t, args.Band, emit)
	stats.JoinNanos = time.Since(start).Nanoseconds()
	return stats
}

// Reset implements the RPC method discarding a job's state.
func (w *Worker) Reset(args *ResetArgs, _ *ResetReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.jobs, args.JobID)
	return nil
}

// Ping implements the liveness RPC.
func (w *Worker) Ping(_ *PingArgs, reply *PingReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	reply.Worker = w.name
	reply.Jobs = len(w.jobs)
	return nil
}

// Serve registers the worker on a fresh RPC server and serves connections on
// the listener until it is closed. It is intended to be run in a goroutine or
// as the body of cmd/recpartd.
func Serve(w *Worker, ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName(ServiceName, w); err != nil {
		return fmt.Errorf("cluster: registering worker service: %w", err)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed: normal shutdown.
			return nil
		}
		go srv.ServeConn(conn)
	}
}

// ListenAndServe starts the given worker on a TCP address and blocks. The
// worker is passed in (rather than constructed here) so callers can configure
// it first (e.g. SetMaxParallelism).
func ListenAndServe(w *Worker, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listening on %s: %w", addr, err)
	}
	log.Printf("band-join worker %s listening on %s", w.name, ln.Addr())
	return Serve(w, ln)
}
