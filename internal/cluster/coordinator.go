package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/obs"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
	"bandjoin/internal/wire"
)

// Coordinator drives a distributed band-join over a set of RPC workers: it
// runs the optimization phase locally (on samples), shuffles the inputs to
// the workers according to the plan, triggers the local joins, and aggregates
// the results into the same Result structure the in-process simulator
// produces.
//
// The default data plane is a pipelined streaming shuffle: inputs are routed
// through the same sharded two-pass assignment machinery as the in-process
// executor (exec.Shuffle), and each worker has a dedicated sender goroutine
// shipping fixed-size chunks with a bounded window of asynchronous Load RPCs
// in flight, so routing, gob encoding, network transfer, and the workers'
// decode+append overlap instead of serializing on every chunk round trip. The
// pre-rewrite serial plane (tuple-at-a-time routing, one blocking Load per
// chunk, sequential per-worker joins) is retained behind Options.Serial as
// the correctness oracle and benchmark baseline.
//
// The coordinator is fault tolerant (see DESIGN.md, "Failure model"): every
// RPC carries a deadline and honors the query's context, idempotent calls are
// retried with capped deterministic backoff, and a worker that dies
// mid-query has its partitions re-placed over the survivors and reshipped
// from the coordinator's held PartitionInputs — the query completes degraded
// (Result.Degraded/LostWorkers/Retries) instead of failing. Application
// errors returned by a worker's method are never retried or failed over:
// they indicate a semantic problem that reshipping cannot fix, and the query
// fails cleanly.
type Coordinator struct {
	workers []*workerClient
	opts    DialOptions

	hbStop    chan struct{}
	hbWG      sync.WaitGroup
	closeOnce sync.Once

	// mu guards retainedPlans, the coordinator-side record of which plan
	// fingerprints have been fully shipped and sealed on the workers.
	mu            sync.Mutex
	retainedPlans map[string]*retainedPlanRec

	m *coordMetrics
}

// coordMetrics is the coordinator's observability surface: per-run data-plane
// totals, fault-path counters (retries, failover rounds, lost workers), and
// worker health transitions, plus occupancy gauges. Counters are folded in
// once per query at aggregation time; transitions are recorded by the worker
// clients as they happen.
type coordMetrics struct {
	reg *obs.Registry

	runs            *obs.Counter
	shuffleBytes    *obs.Counter
	shuffleRawBytes *obs.Counter
	shuffleWire     *obs.Counter
	shuffleRPCs     *obs.Counter
	retries         *obs.Counter
	failoverRounds  *obs.Counter
	workersLost     *obs.Counter
	transUp         *obs.Counter
	transSuspect    *obs.Counter
	transDown       *obs.Counter
}

func newCoordMetrics(c *Coordinator) *coordMetrics {
	reg := obs.NewRegistry()
	m := &coordMetrics{
		reg:          reg,
		runs:         reg.Counter("bandjoin_coord_runs_total", "Distributed queries executed."),
		shuffleBytes: reg.Counter("bandjoin_coord_shuffle_bytes_total", "Wire bytes moved by shuffles, including failover reshipments."),
		shuffleRawBytes: reg.Counter("bandjoin_coord_shuffle_raw_bytes_total",
			"Row-major uncompressed bytes of the tuples shipped by shuffles (8 bytes per key value and per tuple ID)."),
		shuffleWire: reg.Counter("bandjoin_coord_shuffle_wire_bytes_total",
			"Wire bytes moved by shuffles; pairs with the raw counter so raw/wire is the shuffle compression ratio."),
		shuffleRPCs:    reg.Counter("bandjoin_coord_shuffle_rpcs_total", "Load RPCs issued by shuffles."),
		retries:        reg.Counter("bandjoin_coord_retries_total", "RPC retries and recovery escalations."),
		failoverRounds: reg.Counter("bandjoin_coord_failover_rounds_total", "Failover rounds (shuffle, join, or retained reshipment)."),
		workersLost:    reg.Counter("bandjoin_coord_workers_lost_total", "Workers declared dead mid-query."),
		transUp:        reg.Counter("bandjoin_coord_worker_transitions_total", "Worker health transitions by destination state.", "to", "up"),
		transSuspect:   reg.Counter("bandjoin_coord_worker_transitions_total", "Worker health transitions by destination state.", "to", "suspect"),
		transDown:      reg.Counter("bandjoin_coord_worker_transitions_total", "Worker health transitions by destination state.", "to", "down"),
	}
	reg.GaugeFunc("bandjoin_coord_workers", "Configured worker slots.", func() float64 {
		return float64(len(c.workers))
	})
	reg.GaugeFunc("bandjoin_coord_live_workers", "Workers not currently marked down.", func() float64 {
		return float64(c.LiveWorkers())
	})
	reg.GaugeFunc("bandjoin_coord_retained_plans", "Plan fingerprints with a sealed shipment record.", func() float64 {
		return float64(c.RetainedPlans())
	})
	reg.GaugeFunc("bandjoin_coord_shuffle_compression_ratio",
		"Cumulative raw/wire byte ratio of all shuffles (0 until bytes move).", func() float64 {
			w := m.shuffleWire.Value()
			if w == 0 {
				return 0
			}
			return float64(m.shuffleRawBytes.Value()) / float64(w)
		})
	return m
}

// transition is the worker clients' health-transition hook.
func (m *coordMetrics) transition(_, to WorkerState) {
	switch to {
	case StateUp:
		m.transUp.Inc()
	case StateSuspect:
		m.transSuspect.Inc()
	case StateDown:
		m.transDown.Inc()
	}
}

// Metrics returns the coordinator's metrics registry.
func (c *Coordinator) Metrics() *obs.Registry { return c.m.reg }

// RetainedPlans returns the number of plan fingerprints the coordinator
// currently records as shipped (warm) on the workers.
func (c *Coordinator) RetainedPlans() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.retainedPlans)
}

// retainedPlanRec tracks one retained plan's shipment. Its RWMutex serializes
// shipping against itself (exactly one shuffle per fingerprint, concurrent
// first queries wait and then join warm) while letting any number of warm
// queries proceed concurrently under read locks.
type retainedPlanRec struct {
	mu         sync.RWMutex
	shipped    bool
	totalInput int64
	// slots are the worker slots holding the sealed shipment. Warm joins
	// target exactly this set — not the current live set — so a worker that
	// went down since shipping is detected (and the plan reshipped) rather
	// than its partitions being silently skipped.
	slots []int
	// coveredS/coveredT record how many base-relation rows (prefix lengths)
	// the sealed shipment covers. Relations only grow by appending, so any
	// later query or AbsorbPlan catches the shipment up idempotently by
	// shuffling just the suffix [covered, Len) as a delta (see ensureFresh).
	coveredS int
	coveredT int
	// pidSlot maps each shipped partition id to the slot holding it, so delta
	// rows for an existing partition land exactly where its base rows live;
	// partitions a delta opens for the first time are placed over slots and
	// recorded here.
	pidSlot map[int]int
}

// Close stops the heartbeat and closes all worker connections.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		if c.hbStop != nil {
			close(c.hbStop)
		}
	})
	c.hbWG.Wait()
	for _, wc := range c.workers {
		wc.close()
	}
}

// Workers returns the number of configured worker slots (live or not).
func (c *Coordinator) Workers() int { return len(c.workers) }

// LiveWorkers returns the number of workers not currently marked down.
func (c *Coordinator) LiveWorkers() int {
	n := 0
	for _, wc := range c.workers {
		if wc.State() != StateDown {
			n++
		}
	}
	return n
}

// WorkerStates returns every worker slot's current health state.
func (c *Coordinator) WorkerStates() []WorkerState {
	states := make([]WorkerState, len(c.workers))
	for i, wc := range c.workers {
		states[i] = wc.State()
	}
	return states
}

// wireBytes returns the total bytes moved over all worker connections in both
// directions so far (counters survive redials).
func (c *Coordinator) wireBytes() int64 {
	var total int64
	for _, wc := range c.workers {
		total += wc.read.Load() + wc.written.Load()
	}
	return total
}

// Options configures a distributed run.
type Options struct {
	// JobID names the job on the workers; empty generates one from the clock.
	JobID string
	// Algorithm is the local join algorithm name (localjoin.ByName).
	Algorithm string
	// Model supplies β coefficients for planning and load accounting.
	Model costmodel.Model
	// Sampling configures the optimization-phase samples.
	Sampling sample.Options
	// CollectPairs returns the result pairs for verification (small inputs
	// only).
	CollectPairs bool
	// ChunkSize is the number of tuples per Load RPC; zero means 4096.
	ChunkSize int
	// Window is the maximum number of Load RPCs in flight per worker on the
	// streaming shuffle; zero means 4. Ignored when Serial is set.
	Window int
	// JoinParallelism bounds the number of partition joins each worker runs
	// concurrently; zero lets every worker use its GOMAXPROCS. Forced to 1
	// when Serial is set.
	JoinParallelism int
	// MorselRows sets the workers' join execution grain (JoinArgs.MorselRows):
	// 0 runs the morsel-driven scheduler with an automatic probe-side morsel
	// size, > 0 fixes the morsel row count, and < 0 selects the retained
	// one-goroutine-per-partition path (the correctness oracle and skew
	// baseline). Forced to the per-partition path when Serial is set — the
	// serial plane stays the strictly sequential reference. All settings
	// produce bit-identical results.
	MorselRows int
	// Serial selects the retained reference data plane: tuple-at-a-time
	// routing into per-(partition, side) buffers, one blocking Load call per
	// chunk, and strictly sequential partition joins on every worker. It is
	// the correctness oracle and the baseline the cluster benchmark measures
	// the streaming plane against. The serial plane has deadlines but no
	// failover: a worker failure is a clean error, never a wrong answer.
	Serial bool
	// Compression selects the streaming shuffle's wire encoding
	// (wire.ParseMode): "auto" (default; delta+varint columns, LZ4-style block
	// compression where an entropy probe predicts a win), "delta" (varint
	// columns only), "lz4" (always attempt block compression), or "off" (the
	// v1 row-major PackedChunk plane, retained as the equivalence oracle).
	// Anything but "off" requires the worker to have advertised
	// wire.Version in its Ping reply; older workers fall back to v1 per
	// connection. Ignored when Serial is set.
	Compression string
	// PlanID, when non-empty, is the plan's fingerprint and enables partition
	// retention: the first run ships the shuffled partitions to the workers'
	// retained registry (surviving job Reset), and every later run with the
	// same fingerprint skips the shuffle entirely — zero Load RPCs, zero wire
	// bytes — and goes straight to the local joins.
	PlanID string
	// Seed drives randomized plan decisions.
	Seed int64

	// retain marks the shuffle's Load RPCs as registry loads. It is set
	// internally on the shipping path of a retained run.
	retain bool
	// delta marks the shuffle's Load RPCs as incremental appends into an
	// already sealed plan (see LoadArgs.Delta). It is set internally on the
	// catch-up path of a retained run and by AbsorbPlan.
	delta bool
	// mode is Compression parsed (withWireMode); zero value is wire.ModeAuto.
	mode wire.Mode
	// band, when non-empty, lets the streaming sender issue per-partition
	// Complete markers (pipelined worker-side joins). It is set internally on
	// the transient streaming path, where the upcoming Join's band is known at
	// shuffle time.
	band data.Band
}

// withWireMode parses Compression into the internal mode field; it is called
// once at every coordinator entry point that can reach the streaming sender.
func (o Options) withWireMode() (Options, error) {
	mode, err := wire.ParseMode(o.Compression)
	if err != nil {
		return o, fmt.Errorf("cluster: %w", err)
	}
	o.mode = mode
	return o, nil
}

// jobCounter disambiguates generated job IDs: two queries starting in the
// same nanosecond (easy under concurrent serving) must not share worker-side
// job state.
var jobCounter atomic.Int64

// withDefaults fills unset options. It is idempotent.
func (o Options) withDefaults() Options {
	if (o.Model == costmodel.Model{}) {
		o.Model = costmodel.Default()
	}
	if o.Sampling.InputSampleSize == 0 {
		o.Sampling = sample.DefaultOptions()
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 4096
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.JobID == "" {
		o.JobID = fmt.Sprintf("job-%d-%d", time.Now().UnixNano(), jobCounter.Add(1))
	}
	return o
}

// Sentinel errors of the failover machinery.
var (
	// errWorkerLost reports that a worker died (failed its liveness probe)
	// while it held query state that could not be recovered in place. The
	// retained path reacts by invalidating the shipment and reshipping over
	// the survivors.
	errWorkerLost = errors.New("cluster: worker lost mid-query")
	// errNoLiveWorkers reports that no worker is left to fail over to.
	errNoLiveWorkers = errors.New("cluster: no live workers")
)

// runState is the per-query fault accounting: which workers were declared
// dead, which are excluded as failover targets, how many retries and
// recovery reshipments happened, and which job IDs need cleanup.
type runState struct {
	liveAtStart int
	wasLive     map[int]bool

	retries    atomic.Int64
	failovers  atomic.Int64
	extraRPCs  atomic.Int64
	extraBytes atomic.Int64
	// rawBytes accumulates the row-major uncompressed size of every chunk the
	// query shipped (including failover reshipments), mirroring how wire bytes
	// are counted; it becomes Result.ShuffleRawBytes.
	rawBytes atomic.Int64

	mu       sync.Mutex
	lost     map[int]bool
	excluded map[int]bool
	jobs     []string
	// events is the query's fault timeline (worker losses, failover rounds),
	// surfaced on the Result so the engine can fold it into the QueryTrace.
	events []exec.TraceEvent
}

func (c *Coordinator) newRunState() *runState {
	rs := &runState{
		wasLive:  make(map[int]bool),
		lost:     make(map[int]bool),
		excluded: make(map[int]bool),
	}
	for slot, wc := range c.workers {
		if wc.State() != StateDown {
			rs.wasLive[slot] = true
			rs.liveAtStart++
		}
	}
	return rs
}

func (rs *runState) retry() { rs.retries.Add(1) }

// noteLost records a worker declared dead during this query and excludes it
// as a failover target.
func (rs *runState) noteLost(slot int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.lost[slot] {
		rs.lost[slot] = true
		rs.events = append(rs.events, exec.TraceEvent{
			At: time.Now(), Name: "worker_lost", Detail: fmt.Sprintf("slot=%d", slot),
		})
	}
	rs.excluded[slot] = true
}

// failover records one recovery round: partitions were re-placed and
// reshipped (or a retained plan invalidated) after a failure.
func (rs *runState) failover(name, detail string) {
	rs.failovers.Add(1)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.events = append(rs.events, exec.TraceEvent{At: time.Now(), Name: name, Detail: detail})
}

func (rs *runState) eventList() []exec.TraceEvent {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]exec.TraceEvent(nil), rs.events...)
}

// exclude removes a worker from this query's failover targets (dead, or alive
// but persistently failing) without declaring it dead.
func (rs *runState) exclude(slot int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.excluded[slot] = true
}

func (rs *runState) isExcluded(slot int) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.excluded[slot]
}

func (rs *runState) lostCount() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.lost)
}

func (rs *runState) addJob(id string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.jobs = append(rs.jobs, id)
}

func (rs *runState) jobList() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]string(nil), rs.jobs...)
}

// liveSlots returns the worker slots a query may currently use: not down and
// not excluded by this query's run state (rs may be nil).
func (c *Coordinator) liveSlots(rs *runState) []int {
	var slots []int
	for slot, wc := range c.workers {
		if wc.State() == StateDown {
			continue
		}
		if rs != nil && rs.isExcluded(slot) {
			continue
		}
		slots = append(slots, slot)
	}
	return slots
}

// Run executes the band-join of s and t with the given partitioner across the
// connected workers. The context bounds the whole query: cancellation aborts
// in-flight shuffle windows and join pools and returns ctx.Err().
func (c *Coordinator) Run(ctx context.Context, pt partition.Partitioner, s, t *data.Relation, band data.Band, opts Options) (*exec.Result, error) {
	if len(c.workers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator has no workers")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	live := len(c.liveSlots(nil))
	if live == 0 {
		return nil, errNoLiveWorkers
	}
	smp, err := sample.Draw(s, t, band, opts.Sampling)
	if err != nil {
		return nil, fmt.Errorf("cluster: sampling: %w", err)
	}
	pctx := &partition.Context{Band: band, Workers: live, Sample: smp, Model: opts.Model, Seed: opts.Seed}

	optStart := time.Now()
	plan, err := pt.Plan(pctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s optimization failed: %w", pt.Name(), err)
	}
	optTime := time.Since(optStart)

	res, err := c.RunPlan(ctx, plan, pctx, s, t, band, opts)
	if err != nil {
		return nil, err
	}
	res.Partitioner = pt.Name()
	res.OptimizationTime = optTime
	return res, nil
}

// placementOver returns the partition→index mapping for placing partitions on
// n workers. Plans that place their own partitions (Grid-ε) are honored;
// otherwise partition loads are estimated from the samples and placed with
// greedy LPT — the stand-in for the load-aware scheduling a cluster scheduler
// performs. The returned index is in [0, n); callers map it through their
// slot list.
func placementOver(plan partition.Plan, pctx *partition.Context, n int) func(pid int) int {
	var lptSched partition.Schedule
	if _, ok := plan.(partition.WorkerPlacer); !ok {
		lptSched = partition.LPT(exec.EstimatePartitionLoads(plan, pctx), n)
	}
	return func(pid int) int {
		if placer, ok := plan.(partition.WorkerPlacer); ok {
			w := placer.PlaceWorker(pid, n)
			if w >= 0 && w < n {
				return w
			}
		}
		if pid < len(lptSched) {
			return lptSched[pid]
		}
		return int(partition.HashID(int64(pid), 0xc0ffee) % uint64(n))
	}
}

// redistributor returns the function that assigns a pid set to a target slot
// list: the placement is recomputed over exactly len(targets) workers, so
// failing over to survivors re-balances the lost partitions the same way the
// original placement balanced all of them.
func redistributor(plan partition.Plan, pctx *partition.Context) func(pids, targets []int) map[int][]int {
	return func(pids, targets []int) map[int][]int {
		place := placementOver(plan, pctx, len(targets))
		out := make(map[int][]int)
		for _, pid := range pids {
			slot := targets[place(pid)]
			out[slot] = append(out[slot], pid)
		}
		for _, l := range out {
			sort.Ints(l)
		}
		return out
	}
}

// nonEmptyPids lists the non-nil partition ids in ascending order.
func nonEmptyPids(parts []*exec.PartitionInput) []int {
	pids := make([]int, 0, len(parts))
	for pid, p := range parts {
		if p != nil {
			pids = append(pids, pid)
		}
	}
	return pids
}

func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// shuffleStats is the shuffle-phase accounting of one run. A warm retained
// run reports the recorded total input with zero duration, bytes, and RPCs —
// nothing moved.
type shuffleStats struct {
	totalInput int64
	rpcs       int64
	bytes      int64
	duration   time.Duration
	// absorbed is the time spent catching the retained shipment up to
	// appended rows (delta shuffle + ship) before the warm join ran; zero
	// when the shipment was already fresh.
	absorbed time.Duration
}

// slotJoin is one worker's (partial) join contribution: recovery rounds can
// produce several entries per slot, each covering a disjoint pid set.
type slotJoin struct {
	slot  int
	stats []PartitionStats
}

// RunPlan shuffles the inputs to the workers per an already-computed plan,
// runs the local joins, and aggregates the result. It is the execution half
// of Run, exported so benchmarks can compare data planes on one shared plan.
// With Options.PlanID set, the shuffled partitions are retained on the
// workers under that fingerprint and reused — with zero shuffle — by every
// later RunPlan naming the same fingerprint.
func (c *Coordinator) RunPlan(ctx context.Context, plan partition.Plan, pctx *partition.Context, s, t *data.Relation, band data.Band, opts Options) (*exec.Result, error) {
	if len(c.workers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator has no workers")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	opts, err := opts.withWireMode()
	if err != nil {
		return nil, err
	}
	rs := c.newRunState()
	if rs.liveAtStart == 0 {
		return nil, errNoLiveWorkers
	}
	if opts.PlanID != "" {
		return c.runRetained(ctx, plan, pctx, s, t, band, opts, rs)
	}
	return c.runTransient(ctx, plan, pctx, s, t, band, opts, rs)
}

// runTransient is the one-shot path: ship, join, aggregate, and always clear
// the job state afterwards.
func (c *Coordinator) runTransient(ctx context.Context, plan partition.Plan, pctx *partition.Context, s, t *data.Relation, band data.Band, opts Options, rs *runState) (*exec.Result, error) {
	// Partition data may already sit on workers when any later step fails;
	// always clear every job this query used (primary and recovery rounds,
	// best effort) so an aborted run cannot leak worker memory in a
	// long-lived recpartd. Reset is scoped to transient job state, so
	// retained plans of other queries are untouched.
	rs.addJob(opts.JobID)
	defer func() { c.resetJobs(rs.jobList()) }()

	if opts.Serial {
		return c.runTransientSerial(ctx, plan, pctx, s, t, band, opts, rs)
	}

	// The transient path knows the upcoming join at shuffle time, so the
	// sender can issue per-partition Complete markers and v2 workers overlap
	// presort/prepare with chunks still in flight.
	opts.band = band

	redistribute := redistributor(plan, pctx)
	wireStart := c.wireBytes()
	shuffleStart := time.Now()
	parts, totalInput, err := exec.Shuffle(ctx, plan, s, t, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, err
	}
	targets := c.liveSlots(rs)
	if len(targets) == 0 {
		return nil, errNoLiveWorkers
	}
	assignment := redistribute(nonEmptyPids(parts), targets)
	owned, rpcs, err := c.shipPartitions(ctx, assignment, parts, opts, c.clearTransient(opts.JobID), redistribute, rs)
	if err != nil {
		return nil, err
	}
	st := shuffleStats{
		totalInput: totalInput,
		rpcs:       rpcs,
		duration:   time.Since(shuffleStart),
		bytes:      c.wireBytes() - wireStart,
	}

	joined, joinWall, err := c.runJoinsTransient(ctx, opts.JobID, owned, parts, redistribute, band, opts, rs)
	if err != nil {
		return nil, err
	}
	return c.aggregate(joined, opts, s, t, st, joinWall, rs), nil
}

// runTransientSerial is the reference data plane with deadlines but no
// failover: any worker failure is a clean error. Join replies are still
// validated against the shipped pid set, so a worker restarting between Load
// and Join surfaces as an error, never as silently missing results.
func (c *Coordinator) runTransientSerial(ctx context.Context, plan partition.Plan, pctx *partition.Context, s, t *data.Relation, band data.Band, opts Options, rs *runState) (*exec.Result, error) {
	targets := c.liveSlots(rs)
	if len(targets) == 0 {
		return nil, errNoLiveWorkers
	}
	place := placementOver(plan, pctx, len(targets))
	slotOf := func(pid int) int { return targets[place(pid)] }

	wireStart := c.wireBytes()
	shuffleStart := time.Now()
	var st shuffleStats
	var owned map[int][]int
	var err error
	st.totalInput, st.rpcs, owned, err = c.shuffleSerial(ctx, plan, slotOf, s, t, opts)
	if err != nil {
		return nil, err
	}
	st.duration = time.Since(shuffleStart)
	st.bytes = c.wireBytes() - wireStart
	rs.rawBytes.Add(st.totalInput * int64(8*(s.Dims()+1)))

	joined, joinWall, err := c.runJoinsSimple(ctx, opts.JobID, false, targets, owned, band, opts, rs)
	if err != nil {
		return nil, err
	}
	return c.aggregate(joined, opts, s, t, st, joinWall, rs), nil
}

// clearTransient returns the recovery hook that clears one job's partial
// state on a single worker before reshipping to it.
func (c *Coordinator) clearTransient(jobID string) func(context.Context, *workerClient) error {
	return func(ctx context.Context, wc *workerClient) error {
		var rr ResetReply
		return wc.call(ctx, ServiceName+".Reset", &ResetArgs{JobID: jobID}, &rr, c.opts.callDeadline(), 1, nil)
	}
}

// clearRetained returns the recovery hook that clears one plan's partial
// shipment on a single worker before reshipping to it.
func (c *Coordinator) clearRetained(planID string) func(context.Context, *workerClient) error {
	return func(ctx context.Context, wc *workerClient) error {
		var er EvictReply
		return wc.call(ctx, ServiceName+".Evict", &EvictArgs{PlanID: planID}, &er, c.opts.callDeadline(), 1, nil)
	}
}

// maxShipAttemptsPerWorker bounds how many times a shipment to one worker is
// cleared and restarted before the worker is abandoned for the query.
const maxShipAttemptsPerWorker = 2

// shipPartitions ships an assignment (slot → partition ids) with mid-shuffle
// failover. Each round ships every slot's pids in parallel; a slot whose
// shipment fails with a transport error is probed:
//
//   - alive → its partial job state is cleared and everything it was given
//     (including pids shipped in earlier rounds — clearing dropped them) is
//     reshipped to it, up to maxShipAttemptsPerWorker times, after which the
//     worker is abandoned for this query and its pids redistributed;
//   - dead → marked down; everything it ever owned is re-placed over the
//     surviving workers and reshipped from the coordinator-held parts.
//
// Application errors are not failed over: Load is not idempotent, and a
// worker that rejects a chunk will reject it again; the shipment fails
// cleanly. The returned map is the final ownership (slot → pids resident
// there) the join phase must target.
func (c *Coordinator) shipPartitions(ctx context.Context, assignment map[int][]int, parts []*exec.PartitionInput, opts Options, clear func(context.Context, *workerClient) error, redistribute func(pids, targets []int) map[int][]int, rs *runState) (map[int][]int, int64, error) {
	owned := make(map[int][]int)
	attempts := make(map[int]int)
	var rpcs int64
	for round := 0; len(assignment) > 0; round++ {
		if round > 2*len(c.workers)+4 {
			return nil, rpcs, fmt.Errorf("cluster: shuffle failover did not converge after %d rounds", round)
		}
		if err := ctx.Err(); err != nil {
			return nil, rpcs, err
		}
		slots := sortedKeys(assignment)
		type outcome struct {
			sent int64
			err  error
		}
		outs := make([]outcome, len(slots))
		var wg sync.WaitGroup
		for i, slot := range slots {
			wg.Add(1)
			go func(i, slot int) {
				defer wg.Done()
				outs[i].sent, outs[i].err = c.sendPartitions(ctx, c.workers[slot], assignment[slot], parts, opts, rs)
			}(i, slot)
		}
		wg.Wait()

		next := make(map[int][]int)
		var orphaned []int // pids whose worker was abandoned this round
		for i, slot := range slots {
			rpcs += outs[i].sent
			pids := assignment[slot]
			err := outs[i].err
			if err == nil {
				owned[slot] = append(owned[slot], pids...)
				continue
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, rpcs, cerr
			}
			wc := c.workers[slot]
			if !isTransportErr(err) {
				return nil, rpcs, fmt.Errorf("cluster: shipping to worker %d (%s): %w", slot, wc.name(), err)
			}
			rs.retry()
			attempts[slot]++
			abandon := false
			if !wc.probe(ctx) {
				rs.noteLost(slot)
				abandon = true
			} else if attempts[slot] > maxShipAttemptsPerWorker {
				// Alive but the shipment keeps dying on the wire: stop using
				// this worker for the query.
				rs.exclude(slot)
				abandon = true
			} else if cerr := clear(ctx, wc); cerr != nil {
				if isTransportErr(cerr) && !wc.probe(ctx) {
					rs.noteLost(slot)
				} else {
					rs.exclude(slot)
				}
				abandon = true
			}
			all := append(append([]int(nil), owned[slot]...), pids...)
			delete(owned, slot)
			if abandon {
				orphaned = append(orphaned, all...)
			} else {
				next[slot] = all
			}
		}
		if len(orphaned) > 0 {
			sort.Ints(orphaned)
			rs.failover("shuffle_failover", fmt.Sprintf("pids=%d", len(orphaned)))
			targets := c.liveSlots(rs)
			if len(targets) == 0 {
				return nil, rpcs, errNoLiveWorkers
			}
			for slot, pids := range redistribute(orphaned, targets) {
				// A redistribution target may already hold (or be retrying)
				// pids; the orphans are new to it, so they simply extend its
				// shipment.
				next[slot] = append(next[slot], pids...)
				sort.Ints(next[slot])
			}
		}
		assignment = next
	}
	for _, pids := range owned {
		sort.Ints(pids)
	}
	return owned, rpcs, nil
}

// maxRecoveryRounds bounds how many reship-and-rejoin rounds the join phase
// attempts when workers keep dying.
const maxRecoveryRounds = 4

// runJoinsTransient triggers the local joins over the shipped ownership with
// mid-join failover: a worker that dies during its join — or silently comes
// back empty after a restart — has its pids reshipped to the survivors under
// a recovery job ID and just those joins rerun. Every reply is validated
// against the pid set the worker owns, and each pid's stats are merged
// exactly once, so recovered queries return the same pairs as undisturbed
// ones.
func (c *Coordinator) runJoinsTransient(ctx context.Context, baseJob string, owned map[int][]int, parts []*exec.PartitionInput, redistribute func(pids, targets []int) map[int][]int, band data.Band, opts Options, rs *runState) ([]slotJoin, time.Duration, error) {
	joinParallelism := opts.JoinParallelism
	joinStart := time.Now()
	var collected []slotJoin
	pending := owned
	curJob := baseJob
	for round := 0; len(pending) > 0; round++ {
		if round > maxRecoveryRounds {
			return nil, 0, fmt.Errorf("cluster: join failover did not converge after %d recovery rounds", round)
		}
		slots := sortedKeys(pending)
		type outcome struct {
			reply JoinReply
			err   error
		}
		outs := make([]outcome, len(slots))
		var wg sync.WaitGroup
		for i, slot := range slots {
			wg.Add(1)
			go func(i, slot int) {
				defer wg.Done()
				args := &JoinArgs{
					JobID:        curJob,
					Band:         band,
					Algorithm:    opts.Algorithm,
					CollectPairs: opts.CollectPairs,
					Parallelism:  joinParallelism,
					MorselRows:   opts.MorselRows,
				}
				outs[i].err = c.workers[slot].call(ctx, ServiceName+".Join", args, &outs[i].reply,
					c.opts.joinDeadline(), c.opts.MaxRetries, rs.retry)
			}(i, slot)
		}
		wg.Wait()

		var lostPids []int
		for i, slot := range slots {
			wc := c.workers[slot]
			if err := outs[i].err; err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, 0, cerr
				}
				if !isTransportErr(err) {
					return nil, 0, fmt.Errorf("cluster: local joins on worker %d (%s) failed: %w", slot, wc.name(), err)
				}
				rs.retry()
				if !wc.probe(ctx) {
					rs.noteLost(slot)
				}
				// Alive or not, the join would not complete within its
				// retries; move this round's pids elsewhere. Results merged
				// from the worker's earlier rounds stay valid — they were
				// computed and returned before the failure.
				rs.exclude(slot)
				lostPids = append(lostPids, pending[slot]...)
				continue
			}
			expected := make(map[int]bool, len(pending[slot]))
			for _, pid := range pending[slot] {
				expected[pid] = true
			}
			returned := make(map[int]bool, len(outs[i].reply.Partitions))
			kept := make([]PartitionStats, 0, len(outs[i].reply.Partitions))
			for _, ps := range outs[i].reply.Partitions {
				returned[ps.Partition] = true
				if expected[ps.Partition] {
					kept = append(kept, ps)
				}
			}
			for _, pid := range pending[slot] {
				if !returned[pid] {
					// The worker answered but no longer holds the pid — it
					// restarted between Load and Join. Its memory of the job
					// is gone; reship those pids (possibly back to it).
					lostPids = append(lostPids, pid)
				}
			}
			if len(kept) > 0 {
				collected = append(collected, slotJoin{slot: slot, stats: kept})
			}
		}
		if len(lostPids) == 0 {
			break
		}
		sort.Ints(lostPids)
		rs.retry()
		curJob = fmt.Sprintf("%s#r%d", baseJob, round+1)
		rs.failover("join_failover", fmt.Sprintf("pids=%d job=%s", len(lostPids), curJob))
		rs.addJob(curJob)
		targets := c.liveSlots(rs)
		if len(targets) == 0 {
			return nil, 0, errNoLiveWorkers
		}
		ropts := opts
		ropts.JobID = curJob
		ropts.retain = false
		wireStart := c.wireBytes()
		newOwned, rpcs, err := c.shipPartitions(ctx, redistribute(lostPids, targets), parts, ropts, c.clearTransient(curJob), redistribute, rs)
		rs.extraRPCs.Add(rpcs)
		rs.extraBytes.Add(c.wireBytes() - wireStart)
		if err != nil {
			return nil, 0, err
		}
		pending = newOwned
	}
	return collected, time.Since(joinStart), nil
}

// runJoinsSimple triggers the local joins of one job (or retained plan) on
// the given slots in parallel, with retries but no failover. expected, when
// non-nil, is the pid set each slot must report (slots absent from it are
// queried but expected to hold nothing); a shortfall means the worker lost
// state mid-query and is an error. A worker that fails its liveness probe
// yields errWorkerLost, which the retained path turns into an invalidate-and-
// reship.
func (c *Coordinator) runJoinsSimple(ctx context.Context, jobID string, retained bool, slots []int, expected map[int][]int, band data.Band, opts Options, rs *runState) ([]slotJoin, time.Duration, error) {
	joinParallelism := opts.JoinParallelism
	morselRows := opts.MorselRows
	if opts.Serial {
		joinParallelism = 1
		morselRows = -1 // the serial plane stays the per-partition reference
	}
	joinStart := time.Now()
	outs := make([]JoinReply, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for i, slot := range slots {
		wg.Add(1)
		go func(i, slot int) {
			defer wg.Done()
			args := &JoinArgs{
				JobID:        jobID,
				Band:         band,
				Algorithm:    opts.Algorithm,
				CollectPairs: opts.CollectPairs,
				Parallelism:  joinParallelism,
				Retained:     retained,
				MorselRows:   morselRows,
			}
			errs[i] = c.workers[slot].call(ctx, ServiceName+".Join", args, &outs[i],
				c.opts.joinDeadline(), c.opts.MaxRetries, rs.retry)
		}(i, slot)
	}
	wg.Wait()
	joinWall := time.Since(joinStart)

	joined := make([]slotJoin, 0, len(slots))
	for i, slot := range slots {
		wc := c.workers[slot]
		if err := errs[i]; err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, 0, cerr
			}
			if isTransportErr(err) {
				if !wc.probe(ctx) {
					rs.noteLost(slot)
				}
				return nil, 0, fmt.Errorf("cluster: local joins on worker %d (%s): %w (%v)", slot, wc.name(), errWorkerLost, err)
			}
			return nil, 0, fmt.Errorf("cluster: local joins on worker %d (%s) failed: %w", slot, wc.name(), err)
		}
		if expected != nil {
			returned := make(map[int]bool, len(outs[i].Partitions))
			for _, ps := range outs[i].Partitions {
				returned[ps.Partition] = true
			}
			for _, pid := range expected[slot] {
				if !returned[pid] {
					return nil, 0, fmt.Errorf("cluster: worker %d (%s) lost partition %d between Load and Join: %w",
						slot, wc.name(), pid, errWorkerLost)
				}
			}
		}
		joined = append(joined, slotJoin{slot: slot, stats: outs[i].Partitions})
	}
	return joined, joinWall, nil
}

// errStalePlanRec signals that a shipment record was superseded (evicted and
// re-created) while a query held it; the caller re-fetches and retries.
var errStalePlanRec = fmt.Errorf("cluster: retained-plan record superseded")

// maxRetainedAttempts bounds how often a retained query reships a plan that
// keeps disappearing (evictions, worker deaths) before giving up.
const maxRetainedAttempts = 6

// runRetained serves a query whose plan fingerprint is retained on the
// workers: the first run ships and seals the partitions, later runs join the
// resident data directly. If a worker lost the plan (retention-cap eviction,
// restart, or death), the shipment record is invalidated and the coordinator
// falls back to a cold reshipment over the currently live workers. The record
// is re-fetched every attempt so a concurrent EvictPlan can never leave two
// goroutines shipping the same fingerprint through different records.
func (c *Coordinator) runRetained(ctx context.Context, plan partition.Plan, pctx *partition.Context, s, t *data.Relation, band data.Band, opts Options, rs *runState) (*exec.Result, error) {
	var lastErr error
	for attempt := 0; attempt < maxRetainedAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec := c.retainedRec(opts.PlanID)
		st, slots, warm, err := c.ensureShipped(ctx, rec, plan, pctx, s, t, band, opts, rs)
		if err == errStalePlanRec {
			lastErr = err
			continue
		}
		if errors.Is(err, errWorkerLost) {
			lastErr = err
			rs.failover("retained_failover", "worker lost during shipment")
			c.EvictPlan(opts.PlanID)
			continue
		}
		if err != nil {
			return nil, err
		}
		// A worker holding part of the shipment went down since it was
		// sealed: its partitions are unreachable, so invalidate and reship
		// over the survivors rather than silently returning partial results.
		stale := false
		for _, slot := range slots {
			if c.workers[slot].State() == StateDown {
				if rs.wasLive[slot] {
					rs.noteLost(slot)
				}
				stale = true
			}
		}
		if stale {
			lastErr = errWorkerLost
			rs.failover("retained_failover", "shipment holder went down since sealing")
			c.EvictPlan(opts.PlanID)
			continue
		}
		// The shipment is resident, but rows may have been appended to the
		// relations since it was sealed (Engine.Append without an eager
		// absorb): shuffle just the appended suffix into the sealed plan
		// before joining, so warm queries never rescan or reship the base.
		if warm {
			if err := c.ensureFresh(ctx, rec, plan, pctx, s, t, opts, rs, &st); err != nil {
				if err == errStalePlanRec {
					lastErr = err
					continue
				}
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				lastErr = err
				rs.failover("retained_failover", "delta absorb failed; reshipping")
				c.EvictPlan(opts.PlanID)
				continue
			}
		}
		joined, joinWall, err := c.runJoinsSimple(ctx, opts.PlanID, true, slots, nil, band, opts, rs)
		if err == nil {
			res := c.aggregate(joined, opts, s, t, st, joinWall, rs)
			res.WarmPartitions = warm
			return res, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if !errors.Is(err, errWorkerLost) && !strings.Contains(err.Error(), ErrUnknownRetainedPlan) {
			return nil, err
		}
		// A worker no longer holds the plan (retention-cap eviction, restart,
		// or death): drop the stale record and reship.
		lastErr = err
		rs.failover("retained_failover", "plan lost at join time; reshipping")
		c.EvictPlan(opts.PlanID)
	}
	return nil, fmt.Errorf("cluster: retained plan %q kept disappearing: %w", opts.PlanID, lastErr)
}

// retainedRec returns (creating if needed) the shipment record of a plan
// fingerprint.
func (c *Coordinator) retainedRec(planID string) *retainedPlanRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.retainedPlans == nil {
		c.retainedPlans = make(map[string]*retainedPlanRec)
	}
	rec, ok := c.retainedPlans[planID]
	if !ok {
		rec = &retainedPlanRec{}
		c.retainedPlans[planID] = rec
	}
	return rec
}

// ensureShipped makes the plan's partitions resident and sealed on the
// workers, shipping them if this is the first query (or the previous shipment
// failed). Exactly one shuffle runs per fingerprint; concurrent first queries
// block on the record's write lock and then proceed warm. It returns the slot
// set holding the sealed shipment, which the warm join must target, and
// whether the shipment was already resident (warm) — the retained-tier
// outcome the trace reports.
func (c *Coordinator) ensureShipped(ctx context.Context, rec *retainedPlanRec, plan partition.Plan, pctx *partition.Context, s, t *data.Relation, band data.Band, opts Options, rs *runState) (shuffleStats, []int, bool, error) {
	rec.mu.RLock()
	if rec.shipped {
		st := shuffleStats{totalInput: rec.totalInput}
		slots := append([]int(nil), rec.slots...)
		rec.mu.RUnlock()
		return st, slots, true, nil
	}
	rec.mu.RUnlock()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.shipped {
		return shuffleStats{totalInput: rec.totalInput}, append([]int(nil), rec.slots...), true, nil
	}
	// A concurrent EvictPlan may have removed this record from the map while
	// we waited for the lock; shipping through a superseded record could
	// interleave with the current record's shipment, so bail out and let the
	// caller re-fetch.
	c.mu.Lock()
	stale := c.retainedPlans[opts.PlanID] != rec
	c.mu.Unlock()
	if stale {
		return shuffleStats{}, nil, false, errStalePlanRec
	}
	// Clear any half-shipped remnants of a previously failed shipment before
	// loading: the registry accumulates across Load calls.
	c.evictWorkers(opts.PlanID)

	opts.JobID = opts.PlanID
	opts.retain = true

	redistribute := redistributor(plan, pctx)
	wireStart := c.wireBytes()
	start := time.Now()
	var st shuffleStats
	var owned map[int][]int
	targets := c.liveSlots(rs)
	if len(targets) == 0 {
		return shuffleStats{}, nil, false, errNoLiveWorkers
	}
	if opts.Serial {
		place := placementOver(plan, pctx, len(targets))
		slotOf := func(pid int) int { return targets[place(pid)] }
		var err error
		st.totalInput, st.rpcs, owned, err = c.shuffleSerial(ctx, plan, slotOf, s, t, opts)
		if err != nil {
			c.evictWorkers(opts.PlanID)
			return shuffleStats{}, nil, false, err
		}
		rs.rawBytes.Add(st.totalInput * int64(8*(s.Dims()+1)))
	} else {
		parts, totalInput, err := exec.Shuffle(ctx, plan, s, t, runtime.GOMAXPROCS(0))
		if err != nil {
			return shuffleStats{}, nil, false, err
		}
		st.totalInput = totalInput
		assignment := redistribute(nonEmptyPids(parts), targets)
		owned, st.rpcs, err = c.shipPartitions(ctx, assignment, parts, opts, c.clearRetained(opts.PlanID), redistribute, rs)
		if err != nil {
			c.evictWorkers(opts.PlanID)
			return shuffleStats{}, nil, false, err
		}
	}

	// Seal on every slot that may serve this plan — both the owners and the
	// empty live workers, so "sealed with zero partitions" stays
	// distinguishable from "evicted" at join time.
	sealSet := make(map[int]bool)
	for slot := range owned {
		sealSet[slot] = true
	}
	for _, slot := range c.liveSlots(rs) {
		sealSet[slot] = true
	}
	sealed := make([]int, 0, len(sealSet))
	for slot := range sealSet {
		sealed = append(sealed, slot)
	}
	sort.Ints(sealed)
	final := sealed[:0]
	for _, slot := range sealed {
		wc := c.workers[slot]
		var sr SealReply
		sealArgs := &SealArgs{PlanID: opts.PlanID, Band: band, Algorithm: opts.Algorithm}
		err := wc.call(ctx, ServiceName+".Seal", sealArgs, &sr, c.opts.callDeadline(), c.opts.MaxRetries, rs.retry)
		if err == nil {
			final = append(final, slot)
			continue
		}
		if isTransportErr(err) && len(owned[slot]) == 0 && !wc.probe(ctx) {
			// An empty worker died before sealing: it holds nothing of this
			// plan, so the shipment is complete without it.
			rs.noteLost(slot)
			continue
		}
		c.evictWorkers(opts.PlanID)
		if isTransportErr(err) {
			if !wc.probe(ctx) {
				rs.noteLost(slot)
			}
			return shuffleStats{}, nil, false, fmt.Errorf("cluster: sealing plan on worker %d (%s): %w (%v)", slot, wc.name(), errWorkerLost, err)
		}
		return shuffleStats{}, nil, false, fmt.Errorf("cluster: sealing plan on worker %d (%s): %w", slot, wc.name(), err)
	}
	st.duration = time.Since(start)
	st.bytes = c.wireBytes() - wireStart
	rec.shipped = true
	rec.totalInput = st.totalInput
	rec.slots = append([]int(nil), final...)
	rec.coveredS = s.Len()
	rec.coveredT = t.Len()
	rec.pidSlot = make(map[int]int)
	for slot, pids := range owned {
		for _, pid := range pids {
			rec.pidSlot[pid] = slot
		}
	}
	return st, append([]int(nil), final...), false, nil
}

// ensureFresh catches a sealed shipment up to rows appended to s and t since
// it was shipped: the suffixes past the record's covered prefixes are shuffled
// through the same plan (with tuple IDs offset to stay globally consistent)
// and shipped as delta Loads into the sealed plan — existing partitions
// receive their delta exactly where their base rows live, new partitions are
// placed over the sealed slot set. Freshness is checked under a read lock so
// the common already-fresh case costs no delta work and warm queries proceed
// concurrently; catch-up itself runs under the record's write lock, so exactly
// one delta shuffle happens per appended suffix and is idempotent (covered
// advances only on success). On failure the shipment may be torn mid-delta;
// callers must evict the plan and fall back to a cold reshipment.
func (c *Coordinator) ensureFresh(ctx context.Context, rec *retainedPlanRec, plan partition.Plan, pctx *partition.Context, s, t *data.Relation, opts Options, rs *runState, st *shuffleStats) error {
	rec.mu.RLock()
	fresh := !rec.shipped || (rec.coveredS >= s.Len() && rec.coveredT >= t.Len())
	rec.mu.RUnlock()
	if fresh {
		return nil
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if !rec.shipped || (rec.coveredS >= s.Len() && rec.coveredT >= t.Len()) {
		return nil
	}
	// A concurrent EvictPlan may have superseded this record; shipping deltas
	// through it would interleave with the fresh record's cold shipment.
	c.mu.Lock()
	stale := c.retainedPlans[opts.PlanID] != rec
	c.mu.Unlock()
	if stale {
		return errStalePlanRec
	}

	wireStart := c.wireBytes()
	start := time.Now()
	deltaS := s.Slice(s.Name(), rec.coveredS, s.Len())
	deltaT := t.Slice(t.Name(), rec.coveredT, t.Len())
	parts, deltaInput, err := exec.ShuffleDelta(ctx, plan, deltaS, deltaT, rec.coveredS, rec.coveredT, runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	opts.JobID = opts.PlanID
	opts.retain = true
	opts.delta = true
	place := placementOver(plan, pctx, len(rec.slots))
	assignment := make(map[int][]int)
	for _, pid := range nonEmptyPids(parts) {
		slot, ok := rec.pidSlot[pid]
		if !ok {
			slot = rec.slots[place(pid)]
		}
		assignment[slot] = append(assignment[slot], pid)
	}
	var rpcs int64
	for _, slot := range sortedKeys(assignment) {
		pids := assignment[slot]
		sort.Ints(pids)
		wc := c.workers[slot]
		sent, err := c.sendPartitions(ctx, wc, pids, parts, opts, rs)
		rpcs += sent
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			if isTransportErr(err) && !wc.probe(ctx) {
				rs.noteLost(slot)
			}
			st.rpcs += rpcs
			st.bytes += c.wireBytes() - wireStart
			return fmt.Errorf("cluster: delta to worker %d (%s): %w (%v)", slot, wc.name(), errWorkerLost, err)
		}
		if rec.pidSlot == nil {
			rec.pidSlot = make(map[int]int)
		}
		for _, pid := range pids {
			if _, ok := rec.pidSlot[pid]; !ok {
				rec.pidSlot[pid] = slot
			}
		}
	}
	rec.totalInput += deltaInput
	rec.coveredS = s.Len()
	rec.coveredT = t.Len()
	st.totalInput = rec.totalInput
	st.rpcs += rpcs
	st.bytes += c.wireBytes() - wireStart
	st.absorbed += time.Since(start)
	return nil
}

// AbsorbPlan eagerly catches a retained plan up to rows appended to s and t
// since it was shipped, so the next warm query of the plan finds the shipment
// fresh and moves zero bytes. It is the engine's Append hook. A plan with no
// shipment record (never shipped, or evicted) is a no-op: the next query ships
// cold from the full relations and needs no delta. On error the shipment may
// be torn; the caller must evict the plan (the next query then reships cold).
func (c *Coordinator) AbsorbPlan(ctx context.Context, plan partition.Plan, pctx *partition.Context, s, t *data.Relation, opts Options) error {
	opts = opts.withDefaults()
	opts, err := opts.withWireMode()
	if err != nil {
		return err
	}
	if opts.PlanID == "" {
		return fmt.Errorf("cluster: AbsorbPlan requires a plan id")
	}
	c.mu.Lock()
	rec := c.retainedPlans[opts.PlanID]
	c.mu.Unlock()
	if rec == nil {
		return nil
	}
	var st shuffleStats
	err = c.ensureFresh(ctx, rec, plan, pctx, s, t, opts, c.newRunState(), &st)
	if err == errStalePlanRec {
		return nil // superseded; the fresh record ships cold with everything
	}
	return err
}

// ShipPlan shuffles, ships, and seals a plan's partitions on the workers
// without running a join — the priming half of a retained query, exported so
// an engine can build a replacement plan in the background (drift-triggered
// re-partitioning) while the old plan keeps serving, then swap atomically.
func (c *Coordinator) ShipPlan(ctx context.Context, plan partition.Plan, pctx *partition.Context, s, t *data.Relation, band data.Band, opts Options) error {
	opts = opts.withDefaults()
	opts, err := opts.withWireMode()
	if err != nil {
		return err
	}
	if opts.PlanID == "" {
		return fmt.Errorf("cluster: ShipPlan requires a plan id")
	}
	var lastErr error
	for attempt := 0; attempt < maxRetainedAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rs := c.newRunState()
		if rs.liveAtStart == 0 {
			return errNoLiveWorkers
		}
		rec := c.retainedRec(opts.PlanID)
		_, _, _, err := c.ensureShipped(ctx, rec, plan, pctx, s, t, band, opts, rs)
		if err == errStalePlanRec {
			lastErr = err
			continue
		}
		return err
	}
	return fmt.Errorf("cluster: priming plan %q: %w", opts.PlanID, lastErr)
}

// EvictPlan discards one retained plan from every worker and removes the
// coordinator's shipment record (so the record map cannot grow without bound
// in a long-lived coordinator); the next query naming the fingerprint ships
// cold through a fresh record. It is the invalidation hook engines call when
// a dataset is replaced, and the failover path's invalidation when a worker
// holding part of a shipment dies.
func (c *Coordinator) EvictPlan(planID string) {
	c.mu.Lock()
	rec := c.retainedPlans[planID]
	c.mu.Unlock()
	if rec == nil {
		c.evictWorkers(planID)
		return
	}
	// Take the record's write lock so an in-flight shipment completes before
	// its plan is evicted from the workers.
	rec.mu.Lock()
	rec.shipped = false
	rec.slots = nil
	c.mu.Lock()
	if c.retainedPlans[planID] == rec {
		delete(c.retainedPlans, planID)
	}
	c.mu.Unlock()
	c.evictWorkers(planID)
	rec.mu.Unlock()
}

// evictWorkers drops the plan from every worker's registry, best effort.
// Cleanup runs on a background context: it must proceed even when the query's
// context is already cancelled.
func (c *Coordinator) evictWorkers(planID string) {
	for _, wc := range c.workers {
		var er EvictReply
		_ = wc.call(context.Background(), ServiceName+".Evict", &EvictArgs{PlanID: planID}, &er, c.opts.callDeadline(), 1, nil)
	}
}

// aggregate folds the workers' join replies into the Result. Workers reply
// with partitions sorted by id, and slots are visited in collection order
// (deterministic), so the aggregation is deterministic across runs; pairs are
// sorted at the end either way.
func (c *Coordinator) aggregate(joined []slotJoin, opts Options, s, t *data.Relation, st shuffleStats, joinWall time.Duration, rs *runState) *exec.Result {
	workers := len(c.workers)
	res := &exec.Result{
		Workers:         workers,
		ShuffleTime:     st.duration,
		DeltaAbsorbTime: st.absorbed,
		JoinWallTime:    joinWall,
		InputS:          s.Len(),
		InputT:          t.Len(),
		TotalInput:      st.totalInput,
		ShuffleBytes:    st.bytes + rs.extraBytes.Load(),
		ShuffleRawBytes: rs.rawBytes.Load(),
		ShuffleRPCs:     st.rpcs + rs.extraRPCs.Load(),
		Retries:         int(rs.retries.Load()),
		LostWorkers:     rs.lostCount(),
		WorkerInput:     make([]int64, workers),
		WorkerOutput:    make([]int64, workers),
	}
	res.Degraded = res.LostWorkers > 0 || rs.liveAtStart < workers
	res.FailoverRounds = int(rs.failovers.Load())
	res.FaultEvents = rs.eventList()
	c.m.runs.Inc()
	c.m.shuffleBytes.Add(res.ShuffleBytes)
	c.m.shuffleRawBytes.Add(res.ShuffleRawBytes)
	c.m.shuffleWire.Add(res.ShuffleBytes)
	c.m.shuffleRPCs.Add(res.ShuffleRPCs)
	c.m.retries.Add(int64(res.Retries))
	c.m.failoverRounds.Add(int64(res.FailoverRounds))
	c.m.workersLost.Add(int64(res.LostWorkers))
	workerBusy := make([]time.Duration, workers)
	for _, sj := range joined {
		for _, ps := range sj.stats {
			res.Partitions++
			res.WorkerInput[sj.slot] += int64(ps.InputS + ps.InputT)
			res.WorkerOutput[sj.slot] += ps.Output
			res.Output += ps.Output
			res.StaleRebuildTime += time.Duration(ps.RebuildNanos)
			workerBusy[sj.slot] += time.Duration(ps.JoinNanos)
			if opts.CollectPairs {
				for i := range ps.PairS {
					res.Pairs = append(res.Pairs, exec.Pair{S: ps.PairS[i], T: ps.PairT[i]})
				}
			}
		}
	}
	maxW := 0
	for w := 1; w < workers; w++ {
		lw := opts.Model.Load(float64(res.WorkerInput[w]), float64(res.WorkerOutput[w]))
		lm := opts.Model.Load(float64(res.WorkerInput[maxW]), float64(res.WorkerOutput[maxW]))
		if lw > lm {
			maxW = w
		}
	}
	res.Im = res.WorkerInput[maxW]
	res.Om = res.WorkerOutput[maxW]
	res.MaxLoad = opts.Model.Load(float64(res.Im), float64(res.Om))
	res.LowerBoundLoad = opts.Model.LowerBoundLoad(float64(res.InputS+res.InputT), float64(res.Output), workers)
	if res.InputS+res.InputT > 0 {
		res.DupOverhead = float64(res.TotalInput)/float64(res.InputS+res.InputT) - 1
	}
	if res.LowerBoundLoad > 0 {
		res.LoadOverhead = res.MaxLoad/res.LowerBoundLoad - 1
	}
	res.PredictedTime = opts.Model.Predict(float64(res.TotalInput), float64(res.Im), float64(res.Om))
	for _, busy := range workerBusy {
		if busy > res.Makespan {
			res.Makespan = busy
		}
	}
	if opts.CollectPairs {
		sort.Slice(res.Pairs, func(a, b int) bool {
			if res.Pairs[a].S != res.Pairs[b].S {
				return res.Pairs[a].S < res.Pairs[b].S
			}
			return res.Pairs[a].T < res.Pairs[b].T
		})
	}
	return res
}

// sendPartitions streams one worker's partitions in fixed-size chunks, keeping
// at most opts.Window Load RPCs in flight. When the worker's Ping negotiated
// wire.Version (and compression is not off), chunks travel as v2 columnar
// compressed payloads encoded straight out of the shuffle arenas; otherwise
// they fall back to the v1 packed representation (raw key and ID bytes, a
// memcpy-grade pack on each end). On transient streaming runs the sender also
// issues a Complete marker after each partition's last chunk, letting the
// worker begin presorting and preparing that partition's join structure while
// later partitions are still in flight. Each wait for a window slot is bounded
// by the call deadline and the query context; either firing drops the
// connection, aborting the whole in-flight window at once.
func (c *Coordinator) sendPartitions(ctx context.Context, wc *workerClient, pids []int, parts []*exec.PartitionInput, opts Options, rs *runState) (int64, error) {
	cl, err := wc.conn()
	if err != nil {
		wc.markSuspect()
		return 0, err
	}
	v2 := wc.wireVersion() >= wire.Version
	var enc *wire.Encoder
	if v2 && opts.mode != wire.ModeOff {
		// Client.Go gob-encodes the args before returning, so one encoder's
		// buffer can back every chunk of the stream without copies.
		enc = wire.NewEncoder(opts.mode)
	}
	// Markers only apply to transient streaming runs (retained plans prepare
	// at Seal time, deltas invalidate instead) and require a v2 worker, which
	// knows Complete.
	markers := v2 && !opts.retain && !opts.delta && opts.band.Dims() > 0
	deadline := c.opts.callDeadline()
	done := make(chan *rpc.Call, opts.Window+1)
	inFlight := 0
	var sent int64
	var firstErr error
	collect := func() {
		var timerC <-chan time.Time
		if deadline > 0 {
			timer := time.NewTimer(deadline)
			defer timer.Stop()
			timerC = timer.C
		}
		select {
		case <-ctx.Done():
			firstErr = ctx.Err()
			wc.dropConn(cl)
		case <-timerC:
			firstErr = fmt.Errorf("%w: Load to worker %d (%s) after %v", errCallTimeout, wc.idx, wc.name(), deadline)
			wc.dropConn(cl)
			wc.markSuspect()
		case call := <-done:
			inFlight--
			if call.Error != nil && firstErr == nil {
				firstErr = call.Error
				if isTransportErr(call.Error) {
					wc.dropConn(cl)
					wc.markSuspect()
				}
			}
		}
	}
	dispatch := func(args *LoadArgs) {
		for inFlight >= opts.Window {
			collect()
			if firstErr != nil {
				return
			}
		}
		cl.Go(ServiceName+".Load", args, &LoadReply{}, done)
		inFlight++
		sent++
	}
	send := func(pid int, side string, rel *data.Relation, ids []int64, lo, hi int) {
		dims := rel.Dims()
		rs.rawBytes.Add(wire.RawBytes(hi-lo, dims))
		args := &LoadArgs{
			JobID:     opts.JobID,
			Partition: pid,
			Side:      side,
			SideTotal: rel.Len(),
			Retain:    opts.retain,
			Delta:     opts.delta,
		}
		if enc != nil {
			args.Columnar = enc.EncodeChunk(rel.KeysRange(lo, hi), dims, ids[lo:hi])
		} else {
			args.Packed = &PackedChunk{Dims: dims, Keys: rel.PackKeysLE(lo, hi), IDs: data.PackInt64sLE(ids[lo:hi]), SideTotal: rel.Len()}
		}
		dispatch(args)
	}
	for _, pid := range pids {
		p := parts[pid]
		for lo := 0; lo < p.S.Len() && firstErr == nil; lo += opts.ChunkSize {
			send(pid, "S", p.S, p.SIDs, lo, min(lo+opts.ChunkSize, p.S.Len()))
		}
		for lo := 0; lo < p.T.Len() && firstErr == nil; lo += opts.ChunkSize {
			send(pid, "T", p.T, p.TIDs, lo, min(lo+opts.ChunkSize, p.T.Len()))
		}
		if markers && firstErr == nil {
			dispatch(&LoadArgs{
				JobID:     opts.JobID,
				Partition: pid,
				Complete:  true,
				ExpectS:   p.S.Len(),
				ExpectT:   p.T.Len(),
				Band:      opts.band,
				Algorithm: opts.Algorithm,
			})
		}
	}
	for inFlight > 0 && firstErr == nil {
		collect()
	}
	if firstErr != nil {
		return sent, firstErr
	}
	wc.markUp()
	return sent, nil
}

// shuffleBuffer accumulates tuples of one (partition, side) destined for a
// worker and flushes them in chunks.
type shuffleBuffer struct {
	chunk *data.Relation
	ids   []int64
}

// shuffleSerial is the retained reference data plane: every tuple is routed
// individually into growable per-(partition, side) buffers, and each full
// chunk is shipped with a blocking (deadline-guarded) Load call before
// routing continues. Load is not idempotent, so it is never retried here; any
// failure is a clean error. The returned ownership map (slot → pids) lets the
// join phase validate that no worker silently lost state.
func (c *Coordinator) shuffleSerial(ctx context.Context, plan partition.Plan, slotOf func(int) int, s, t *data.Relation, opts Options) (int64, int64, map[int][]int, error) {
	type bufKey struct {
		pid  int
		side string
	}
	buffers := make(map[bufKey]*shuffleBuffer)
	owned := make(map[int][]int)
	ownedSeen := make(map[int]map[int]bool)
	var totalInput, rpcs int64

	flush := func(pid int, side string, buf *shuffleBuffer) error {
		if buf.chunk.Len() == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		slot := slotOf(pid)
		wc := c.workers[slot]
		args := &LoadArgs{JobID: opts.JobID, Partition: pid, Side: side, Chunk: buf.chunk, IDs: buf.ids, Retain: opts.retain, Delta: opts.delta}
		var reply LoadReply
		rpcs++
		if err := wc.call(ctx, ServiceName+".Load", args, &reply, c.opts.callDeadline(), 0, nil); err != nil {
			return fmt.Errorf("cluster: shipping partition %d to worker %d: %w", pid, slot, err)
		}
		if ownedSeen[slot] == nil {
			ownedSeen[slot] = make(map[int]bool)
		}
		if !ownedSeen[slot][pid] {
			ownedSeen[slot][pid] = true
			owned[slot] = append(owned[slot], pid)
		}
		dims := buf.chunk.Dims()
		buf.chunk = data.NewRelation(side+"-chunk", dims)
		buf.ids = buf.ids[:0]
		return nil
	}
	add := func(pid int, side string, key []float64, id int64, dims int) error {
		k := bufKey{pid: pid, side: side}
		buf, ok := buffers[k]
		if !ok {
			buf = &shuffleBuffer{chunk: data.NewRelation(side+"-chunk", dims)}
			buffers[k] = buf
		}
		buf.chunk.AppendKey(key)
		buf.ids = append(buf.ids, id)
		if buf.chunk.Len() >= opts.ChunkSize {
			return flush(pid, side, buf)
		}
		return nil
	}

	var dst []int
	for i := 0; i < s.Len(); i++ {
		key := s.Key(i)
		dst = plan.AssignS(int64(i), key, dst[:0])
		totalInput += int64(len(dst))
		for _, pid := range dst {
			if err := add(pid, "S", key, int64(i), s.Dims()); err != nil {
				return 0, 0, nil, err
			}
		}
	}
	for i := 0; i < t.Len(); i++ {
		key := t.Key(i)
		dst = plan.AssignT(int64(i), key, dst[:0])
		totalInput += int64(len(dst))
		for _, pid := range dst {
			if err := add(pid, "T", key, int64(i), t.Dims()); err != nil {
				return 0, 0, nil, err
			}
		}
	}
	for k, buf := range buffers {
		if err := flush(k.pid, k.side, buf); err != nil {
			return 0, 0, nil, err
		}
	}
	for _, pids := range owned {
		sort.Ints(pids)
	}
	return totalInput, rpcs, owned, nil
}

// resetJobs discards the jobs' partition state on every worker, best effort.
// It runs deferred on success and on every error path, so a run that fails
// mid-shuffle or mid-join retains nothing on the workers. Cleanup uses a
// background context (the query's may already be cancelled) and retries once:
// a Reset lost to a transient blip must not leak a job in a long-lived
// recpartd.
func (c *Coordinator) resetJobs(jobIDs []string) {
	for _, jobID := range jobIDs {
		for _, wc := range c.workers {
			var rr ResetReply
			_ = wc.call(context.Background(), ServiceName+".Reset", &ResetArgs{JobID: jobID}, &rr, c.opts.callDeadline(), 1, nil)
		}
	}
}
