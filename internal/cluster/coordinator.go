package cluster

import (
	"fmt"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// Coordinator drives a distributed band-join over a set of RPC workers: it
// runs the optimization phase locally (on samples), shuffles the inputs to
// the workers according to the plan, triggers the local joins, and aggregates
// the results into the same Result structure the in-process simulator
// produces.
type Coordinator struct {
	clients []*rpc.Client
	names   []string
}

// Dial connects to the given worker addresses.
func Dial(addrs []string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	c := &Coordinator{}
	for _, addr := range addrs {
		client, err := rpc.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: dialing worker %s: %w", addr, err)
		}
		var pong PingReply
		if err := client.Call(ServiceName+".Ping", &PingArgs{}, &pong); err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: pinging worker %s: %w", addr, err)
		}
		c.clients = append(c.clients, client)
		c.names = append(c.names, pong.Worker)
	}
	return c, nil
}

// Close closes all worker connections.
func (c *Coordinator) Close() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

// Workers returns the number of connected workers.
func (c *Coordinator) Workers() int { return len(c.clients) }

// Options configures a distributed run.
type Options struct {
	// JobID names the job on the workers; empty generates one from the clock.
	JobID string
	// Algorithm is the local join algorithm name (localjoin.ByName).
	Algorithm string
	// Model supplies β coefficients for planning and load accounting.
	Model costmodel.Model
	// Sampling configures the optimization-phase samples.
	Sampling sample.Options
	// CollectPairs returns the result pairs for verification (small inputs
	// only).
	CollectPairs bool
	// ChunkSize is the number of tuples per Load RPC; zero means 4096.
	ChunkSize int
	// Seed drives randomized plan decisions.
	Seed int64
}

// Run executes the band-join of s and t with the given partitioner across the
// connected workers.
func (c *Coordinator) Run(pt partition.Partitioner, s, t *data.Relation, band data.Band, opts Options) (*exec.Result, error) {
	if len(c.clients) == 0 {
		return nil, fmt.Errorf("cluster: coordinator has no workers")
	}
	if (opts.Model == costmodel.Model{}) {
		opts.Model = costmodel.Default()
	}
	if opts.Sampling.InputSampleSize == 0 {
		opts.Sampling = sample.DefaultOptions()
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = 4096
	}
	if opts.JobID == "" {
		opts.JobID = fmt.Sprintf("job-%d", time.Now().UnixNano())
	}

	smp, err := sample.Draw(s, t, band, opts.Sampling)
	if err != nil {
		return nil, fmt.Errorf("cluster: sampling: %w", err)
	}
	ctx := &partition.Context{Band: band, Workers: len(c.clients), Sample: smp, Model: opts.Model, Seed: opts.Seed}

	optStart := time.Now()
	plan, err := pt.Plan(ctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s optimization failed: %w", pt.Name(), err)
	}
	optTime := time.Since(optStart)

	res, err := c.execute(plan, ctx, s, t, band, opts)
	if err != nil {
		return nil, err
	}
	res.Partitioner = pt.Name()
	res.OptimizationTime = optTime
	return res, nil
}

// shuffleBuffer accumulates tuples of one (partition, side) destined for a
// worker and flushes them in chunks.
type shuffleBuffer struct {
	chunk *data.Relation
	ids   []int64
}

// execute shuffles the inputs to workers per the plan and runs the joins.
func (c *Coordinator) execute(plan partition.Plan, ctx *partition.Context, s, t *data.Relation, band data.Band, opts Options) (*exec.Result, error) {
	workers := len(c.clients)

	// The shuffle requires a partition→worker placement up front. Plans that
	// place their own partitions (Grid-ε) are honored; otherwise partition
	// loads are estimated from the samples and placed with greedy LPT — the
	// stand-in for the load-aware scheduling a cluster scheduler performs.
	var lptSched partition.Schedule
	if _, ok := plan.(partition.WorkerPlacer); !ok {
		lptSched = partition.LPT(exec.EstimatePartitionLoads(plan, ctx), workers)
	}
	place := func(pid int) int {
		if placer, ok := plan.(partition.WorkerPlacer); ok {
			w := placer.PlaceWorker(pid, workers)
			if w >= 0 && w < workers {
				return w
			}
		}
		if pid < len(lptSched) {
			return lptSched[pid]
		}
		return int(partition.HashID(int64(pid), 0xc0ffee) % uint64(workers))
	}

	type bufKey struct {
		pid  int
		side string
	}
	shuffleStart := time.Now()
	buffers := make(map[bufKey]*shuffleBuffer)
	var totalInput int64

	flush := func(pid int, side string, buf *shuffleBuffer) error {
		if buf.chunk.Len() == 0 {
			return nil
		}
		w := place(pid)
		args := &LoadArgs{JobID: opts.JobID, Partition: pid, Side: side, Chunk: buf.chunk, IDs: buf.ids}
		var reply LoadReply
		if err := c.clients[w].Call(ServiceName+".Load", args, &reply); err != nil {
			return fmt.Errorf("cluster: shipping partition %d to worker %d: %w", pid, w, err)
		}
		dims := buf.chunk.Dims()
		buf.chunk = data.NewRelation(side+"-chunk", dims)
		buf.ids = buf.ids[:0]
		return nil
	}
	add := func(pid int, side string, key []float64, id int64, dims int) error {
		k := bufKey{pid: pid, side: side}
		buf, ok := buffers[k]
		if !ok {
			buf = &shuffleBuffer{chunk: data.NewRelation(side+"-chunk", dims)}
			buffers[k] = buf
		}
		buf.chunk.AppendKey(key)
		buf.ids = append(buf.ids, id)
		if buf.chunk.Len() >= opts.ChunkSize {
			return flush(pid, side, buf)
		}
		return nil
	}

	var dst []int
	for i := 0; i < s.Len(); i++ {
		key := s.Key(i)
		dst = plan.AssignS(int64(i), key, dst[:0])
		totalInput += int64(len(dst))
		for _, pid := range dst {
			if err := add(pid, "S", key, int64(i), s.Dims()); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < t.Len(); i++ {
		key := t.Key(i)
		dst = plan.AssignT(int64(i), key, dst[:0])
		totalInput += int64(len(dst))
		for _, pid := range dst {
			if err := add(pid, "T", key, int64(i), t.Dims()); err != nil {
				return nil, err
			}
		}
	}
	for k, buf := range buffers {
		if err := flush(k.pid, k.side, buf); err != nil {
			return nil, err
		}
	}
	shuffleTime := time.Since(shuffleStart)

	// Run local joins on all workers in parallel.
	joinStart := time.Now()
	replies := make([]JoinReply, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range c.clients {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			args := &JoinArgs{JobID: opts.JobID, Band: band, Algorithm: opts.Algorithm, CollectPairs: opts.CollectPairs}
			errs[w] = c.clients[w].Call(ServiceName+".Join", args, &replies[w])
		}(w)
	}
	wg.Wait()
	joinWall := time.Since(joinStart)
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: local joins on worker %d failed: %w", w, err)
		}
	}

	// Aggregate.
	res := &exec.Result{
		Workers:      workers,
		ShuffleTime:  shuffleTime,
		JoinWallTime: joinWall,
		InputS:       s.Len(),
		InputT:       t.Len(),
		TotalInput:   totalInput,
		WorkerInput:  make([]int64, workers),
		WorkerOutput: make([]int64, workers),
	}
	workerBusy := make([]time.Duration, workers)
	for w, reply := range replies {
		for _, ps := range reply.Partitions {
			res.Partitions++
			res.WorkerInput[w] += int64(ps.InputS + ps.InputT)
			res.WorkerOutput[w] += ps.Output
			res.Output += ps.Output
			workerBusy[w] += time.Duration(ps.JoinNanos)
			if opts.CollectPairs {
				for i := range ps.PairS {
					res.Pairs = append(res.Pairs, exec.Pair{S: ps.PairS[i], T: ps.PairT[i]})
				}
			}
		}
	}
	maxW := 0
	for w := 1; w < workers; w++ {
		lw := opts.Model.Load(float64(res.WorkerInput[w]), float64(res.WorkerOutput[w]))
		lm := opts.Model.Load(float64(res.WorkerInput[maxW]), float64(res.WorkerOutput[maxW]))
		if lw > lm {
			maxW = w
		}
	}
	res.Im = res.WorkerInput[maxW]
	res.Om = res.WorkerOutput[maxW]
	res.MaxLoad = opts.Model.Load(float64(res.Im), float64(res.Om))
	res.LowerBoundLoad = opts.Model.LowerBoundLoad(float64(res.InputS+res.InputT), float64(res.Output), workers)
	if res.InputS+res.InputT > 0 {
		res.DupOverhead = float64(res.TotalInput)/float64(res.InputS+res.InputT) - 1
	}
	if res.LowerBoundLoad > 0 {
		res.LoadOverhead = res.MaxLoad/res.LowerBoundLoad - 1
	}
	res.PredictedTime = opts.Model.Predict(float64(res.TotalInput), float64(res.Im), float64(res.Om))
	for _, busy := range workerBusy {
		if busy > res.Makespan {
			res.Makespan = busy
		}
	}
	if opts.CollectPairs {
		sort.Slice(res.Pairs, func(a, b int) bool {
			if res.Pairs[a].S != res.Pairs[b].S {
				return res.Pairs[a].S < res.Pairs[b].S
			}
			return res.Pairs[a].T < res.Pairs[b].T
		})
	}

	// Best-effort cleanup of the job state on the workers.
	for _, cl := range c.clients {
		var rr ResetReply
		_ = cl.Call(ServiceName+".Reset", &ResetArgs{JobID: opts.JobID}, &rr)
	}
	return res, nil
}
