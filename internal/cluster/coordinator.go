package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bandjoin/internal/costmodel"
	"bandjoin/internal/data"
	"bandjoin/internal/exec"
	"bandjoin/internal/partition"
	"bandjoin/internal/sample"
)

// Coordinator drives a distributed band-join over a set of RPC workers: it
// runs the optimization phase locally (on samples), shuffles the inputs to
// the workers according to the plan, triggers the local joins, and aggregates
// the results into the same Result structure the in-process simulator
// produces.
//
// The default data plane is a pipelined streaming shuffle: inputs are routed
// through the same sharded two-pass assignment machinery as the in-process
// executor (exec.Shuffle), and each worker has a dedicated sender goroutine
// shipping fixed-size chunks with a bounded window of asynchronous Load RPCs
// in flight, so routing, gob encoding, network transfer, and the workers'
// decode+append overlap instead of serializing on every chunk round trip. The
// pre-rewrite serial plane (tuple-at-a-time routing, one blocking Load per
// chunk, sequential per-worker joins) is retained behind Options.Serial as
// the correctness oracle and benchmark baseline.
type Coordinator struct {
	clients []*rpc.Client
	conns   []*countingConn
	names   []string

	// mu guards retainedPlans, the coordinator-side record of which plan
	// fingerprints have been fully shipped and sealed on the workers.
	mu            sync.Mutex
	retainedPlans map[string]*retainedPlanRec
}

// retainedPlanRec tracks one retained plan's shipment. Its RWMutex serializes
// shipping against itself (exactly one shuffle per fingerprint, concurrent
// first queries wait and then join warm) while letting any number of warm
// queries proceed concurrently under read locks.
type retainedPlanRec struct {
	mu         sync.RWMutex
	shipped    bool
	totalInput int64
}

// countingConn wraps a worker connection and counts wire bytes in both
// directions, so the result's shuffle-byte accounting reports real post-gob
// sizes instead of estimates.
type countingConn struct {
	net.Conn
	read    atomic.Int64
	written atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// Dial connects to the given worker addresses.
func Dial(addrs []string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	c := &Coordinator{}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: dialing worker %s: %w", addr, err)
		}
		cc := &countingConn{Conn: conn}
		client := rpc.NewClient(cc)
		var pong PingReply
		if err := client.Call(ServiceName+".Ping", &PingArgs{}, &pong); err != nil {
			client.Close()
			c.Close()
			return nil, fmt.Errorf("cluster: pinging worker %s: %w", addr, err)
		}
		c.clients = append(c.clients, client)
		c.conns = append(c.conns, cc)
		c.names = append(c.names, pong.Worker)
	}
	return c, nil
}

// Close closes all worker connections.
func (c *Coordinator) Close() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

// Workers returns the number of connected workers.
func (c *Coordinator) Workers() int { return len(c.clients) }

// wireBytes returns the total bytes moved over all worker connections in both
// directions so far.
func (c *Coordinator) wireBytes() int64 {
	var total int64
	for _, cc := range c.conns {
		total += cc.read.Load() + cc.written.Load()
	}
	return total
}

// Options configures a distributed run.
type Options struct {
	// JobID names the job on the workers; empty generates one from the clock.
	JobID string
	// Algorithm is the local join algorithm name (localjoin.ByName).
	Algorithm string
	// Model supplies β coefficients for planning and load accounting.
	Model costmodel.Model
	// Sampling configures the optimization-phase samples.
	Sampling sample.Options
	// CollectPairs returns the result pairs for verification (small inputs
	// only).
	CollectPairs bool
	// ChunkSize is the number of tuples per Load RPC; zero means 4096.
	ChunkSize int
	// Window is the maximum number of Load RPCs in flight per worker on the
	// streaming shuffle; zero means 4. Ignored when Serial is set.
	Window int
	// JoinParallelism bounds the number of partition joins each worker runs
	// concurrently; zero lets every worker use its GOMAXPROCS. Forced to 1
	// when Serial is set.
	JoinParallelism int
	// Serial selects the retained reference data plane: tuple-at-a-time
	// routing into per-(partition, side) buffers, one blocking Load call per
	// chunk, and strictly sequential partition joins on every worker. It is
	// the correctness oracle and the baseline the cluster benchmark measures
	// the streaming plane against.
	Serial bool
	// PlanID, when non-empty, is the plan's fingerprint and enables partition
	// retention: the first run ships the shuffled partitions to the workers'
	// retained registry (surviving job Reset), and every later run with the
	// same fingerprint skips the shuffle entirely — zero Load RPCs, zero wire
	// bytes — and goes straight to the local joins.
	PlanID string
	// Seed drives randomized plan decisions.
	Seed int64

	// retain marks the shuffle's Load RPCs as registry loads. It is set
	// internally on the shipping path of a retained run.
	retain bool
}

// jobCounter disambiguates generated job IDs: two queries starting in the
// same nanosecond (easy under concurrent serving) must not share worker-side
// job state.
var jobCounter atomic.Int64

// withDefaults fills unset options. It is idempotent.
func (o Options) withDefaults() Options {
	if (o.Model == costmodel.Model{}) {
		o.Model = costmodel.Default()
	}
	if o.Sampling.InputSampleSize == 0 {
		o.Sampling = sample.DefaultOptions()
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 4096
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.JobID == "" {
		o.JobID = fmt.Sprintf("job-%d-%d", time.Now().UnixNano(), jobCounter.Add(1))
	}
	return o
}

// Run executes the band-join of s and t with the given partitioner across the
// connected workers.
func (c *Coordinator) Run(pt partition.Partitioner, s, t *data.Relation, band data.Band, opts Options) (*exec.Result, error) {
	if len(c.clients) == 0 {
		return nil, fmt.Errorf("cluster: coordinator has no workers")
	}
	opts = opts.withDefaults()

	smp, err := sample.Draw(s, t, band, opts.Sampling)
	if err != nil {
		return nil, fmt.Errorf("cluster: sampling: %w", err)
	}
	ctx := &partition.Context{Band: band, Workers: len(c.clients), Sample: smp, Model: opts.Model, Seed: opts.Seed}

	optStart := time.Now()
	plan, err := pt.Plan(ctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s optimization failed: %w", pt.Name(), err)
	}
	optTime := time.Since(optStart)

	res, err := c.RunPlan(plan, ctx, s, t, band, opts)
	if err != nil {
		return nil, err
	}
	res.Partitioner = pt.Name()
	res.OptimizationTime = optTime
	return res, nil
}

// placement returns the partition→worker mapping used by the shuffle. Plans
// that place their own partitions (Grid-ε) are honored; otherwise partition
// loads are estimated from the samples and placed with greedy LPT — the
// stand-in for the load-aware scheduling a cluster scheduler performs.
func (c *Coordinator) placement(plan partition.Plan, ctx *partition.Context) func(pid int) int {
	workers := len(c.clients)
	var lptSched partition.Schedule
	if _, ok := plan.(partition.WorkerPlacer); !ok {
		lptSched = partition.LPT(exec.EstimatePartitionLoads(plan, ctx), workers)
	}
	return func(pid int) int {
		if placer, ok := plan.(partition.WorkerPlacer); ok {
			w := placer.PlaceWorker(pid, workers)
			if w >= 0 && w < workers {
				return w
			}
		}
		if pid < len(lptSched) {
			return lptSched[pid]
		}
		return int(partition.HashID(int64(pid), 0xc0ffee) % uint64(workers))
	}
}

// shuffleStats is the shuffle-phase accounting of one run. A warm retained
// run reports the recorded total input with zero duration, bytes, and RPCs —
// nothing moved.
type shuffleStats struct {
	totalInput int64
	rpcs       int64
	bytes      int64
	duration   time.Duration
}

// RunPlan shuffles the inputs to the workers per an already-computed plan,
// runs the local joins, and aggregates the result. It is the execution half
// of Run, exported so benchmarks can compare data planes on one shared plan.
// With Options.PlanID set, the shuffled partitions are retained on the
// workers under that fingerprint and reused — with zero shuffle — by every
// later RunPlan naming the same fingerprint.
func (c *Coordinator) RunPlan(plan partition.Plan, ctx *partition.Context, s, t *data.Relation, band data.Band, opts Options) (*exec.Result, error) {
	if len(c.clients) == 0 {
		return nil, fmt.Errorf("cluster: coordinator has no workers")
	}
	opts = opts.withDefaults()
	if opts.PlanID != "" {
		return c.runRetained(plan, ctx, s, t, band, opts)
	}
	return c.runTransient(plan, ctx, s, t, band, opts)
}

// runTransient is the one-shot path: ship, join, aggregate, and always clear
// the job state afterwards.
func (c *Coordinator) runTransient(plan partition.Plan, ctx *partition.Context, s, t *data.Relation, band data.Band, opts Options) (*exec.Result, error) {
	// Partition data may already sit on workers when any later step fails;
	// always clear the job (best effort) so an aborted run cannot leak worker
	// memory in a long-lived recpartd. Reset is scoped to transient job state,
	// so retained plans of other queries are untouched.
	defer c.resetJob(opts.JobID)

	place := c.placement(plan, ctx)

	wireStart := c.wireBytes()
	shuffleStart := time.Now()
	var st shuffleStats
	var err error
	if opts.Serial {
		st.totalInput, st.rpcs, err = c.shuffleSerial(plan, place, s, t, opts)
	} else {
		st.totalInput, st.rpcs, err = c.shuffleStreaming(plan, place, s, t, opts)
	}
	if err != nil {
		return nil, err
	}
	st.duration = time.Since(shuffleStart)
	st.bytes = c.wireBytes() - wireStart

	replies, joinWall, err := c.runJoins(opts.JobID, false, band, opts)
	if err != nil {
		return nil, err
	}
	return c.aggregate(replies, opts, s, t, st, joinWall), nil
}

// errStalePlanRec signals that a shipment record was superseded (evicted and
// re-created) while a query held it; the caller re-fetches and retries.
var errStalePlanRec = fmt.Errorf("cluster: retained-plan record superseded")

// runRetained serves a query whose plan fingerprint is retained on the
// workers: the first run ships and seals the partitions, later runs join the
// resident data directly. If a worker lost the plan (retention-cap eviction
// or restart), the join fails with ErrUnknownRetainedPlan and the coordinator
// falls back to a cold reshipment. The record is re-fetched every attempt so
// a concurrent EvictPlan can never leave two goroutines shipping the same
// fingerprint through different records.
func (c *Coordinator) runRetained(plan partition.Plan, ctx *partition.Context, s, t *data.Relation, band data.Band, opts Options) (*exec.Result, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		rec := c.retainedRec(opts.PlanID)
		st, err := c.ensureShipped(rec, plan, ctx, s, t, band, opts)
		if err == errStalePlanRec {
			lastErr = err
			continue
		}
		if err != nil {
			return nil, err
		}
		replies, joinWall, err := c.runJoins(opts.PlanID, true, band, opts)
		if err == nil {
			return c.aggregate(replies, opts, s, t, st, joinWall), nil
		}
		if !strings.Contains(err.Error(), ErrUnknownRetainedPlan) {
			return nil, err
		}
		// A worker no longer holds the plan (retention-cap eviction or
		// restart): drop the stale record and reship.
		lastErr = err
		c.EvictPlan(opts.PlanID)
	}
	return nil, fmt.Errorf("cluster: retained plan %q kept disappearing: %w", opts.PlanID, lastErr)
}

// retainedRec returns (creating if needed) the shipment record of a plan
// fingerprint.
func (c *Coordinator) retainedRec(planID string) *retainedPlanRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.retainedPlans == nil {
		c.retainedPlans = make(map[string]*retainedPlanRec)
	}
	rec, ok := c.retainedPlans[planID]
	if !ok {
		rec = &retainedPlanRec{}
		c.retainedPlans[planID] = rec
	}
	return rec
}

// ensureShipped makes the plan's partitions resident and sealed on the
// workers, shipping them if this is the first query (or the previous shipment
// failed). Exactly one shuffle runs per fingerprint; concurrent first queries
// block on the record's write lock and then proceed warm.
func (c *Coordinator) ensureShipped(rec *retainedPlanRec, plan partition.Plan, ctx *partition.Context, s, t *data.Relation, band data.Band, opts Options) (shuffleStats, error) {
	rec.mu.RLock()
	if rec.shipped {
		st := shuffleStats{totalInput: rec.totalInput}
		rec.mu.RUnlock()
		return st, nil
	}
	rec.mu.RUnlock()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.shipped {
		return shuffleStats{totalInput: rec.totalInput}, nil
	}
	// A concurrent EvictPlan may have removed this record from the map while
	// we waited for the lock; shipping through a superseded record could
	// interleave with the current record's shipment, so bail out and let the
	// caller re-fetch.
	c.mu.Lock()
	stale := c.retainedPlans[opts.PlanID] != rec
	c.mu.Unlock()
	if stale {
		return shuffleStats{}, errStalePlanRec
	}
	// Clear any half-shipped remnants of a previously failed shipment before
	// loading: the registry accumulates across Load calls.
	c.evictWorkers(opts.PlanID)

	opts.JobID = opts.PlanID
	opts.retain = true
	place := c.placement(plan, ctx)

	wireStart := c.wireBytes()
	start := time.Now()
	var st shuffleStats
	var err error
	if opts.Serial {
		st.totalInput, st.rpcs, err = c.shuffleSerial(plan, place, s, t, opts)
	} else {
		st.totalInput, st.rpcs, err = c.shuffleStreaming(plan, place, s, t, opts)
	}
	if err != nil {
		c.evictWorkers(opts.PlanID)
		return shuffleStats{}, err
	}
	for w, cl := range c.clients {
		var sr SealReply
		sealArgs := &SealArgs{PlanID: opts.PlanID, Band: band, Algorithm: opts.Algorithm}
		if err := cl.Call(ServiceName+".Seal", sealArgs, &sr); err != nil {
			c.evictWorkers(opts.PlanID)
			return shuffleStats{}, fmt.Errorf("cluster: sealing plan on worker %d (%s): %w", w, c.names[w], err)
		}
	}
	st.duration = time.Since(start)
	st.bytes = c.wireBytes() - wireStart
	rec.shipped = true
	rec.totalInput = st.totalInput
	return st, nil
}

// EvictPlan discards one retained plan from every worker and removes the
// coordinator's shipment record (so the record map cannot grow without bound
// in a long-lived coordinator); the next query naming the fingerprint ships
// cold through a fresh record. It is the invalidation hook engines call when
// a dataset is replaced.
func (c *Coordinator) EvictPlan(planID string) {
	c.mu.Lock()
	rec := c.retainedPlans[planID]
	c.mu.Unlock()
	if rec == nil {
		c.evictWorkers(planID)
		return
	}
	// Take the record's write lock so an in-flight shipment completes before
	// its plan is evicted from the workers.
	rec.mu.Lock()
	rec.shipped = false
	c.mu.Lock()
	if c.retainedPlans[planID] == rec {
		delete(c.retainedPlans, planID)
	}
	c.mu.Unlock()
	c.evictWorkers(planID)
	rec.mu.Unlock()
}

// evictWorkers drops the plan from every worker's registry, best effort.
func (c *Coordinator) evictWorkers(planID string) {
	for _, cl := range c.clients {
		var er EvictReply
		_ = cl.Call(ServiceName+".Evict", &EvictArgs{PlanID: planID}, &er)
	}
}

// runJoins triggers the local joins of one job (or retained plan) on all
// workers in parallel and collects the replies.
func (c *Coordinator) runJoins(jobID string, retained bool, band data.Band, opts Options) ([]JoinReply, time.Duration, error) {
	workers := len(c.clients)
	joinParallelism := opts.JoinParallelism
	if opts.Serial {
		joinParallelism = 1
	}
	joinStart := time.Now()
	replies := make([]JoinReply, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range c.clients {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			args := &JoinArgs{
				JobID:        jobID,
				Band:         band,
				Algorithm:    opts.Algorithm,
				CollectPairs: opts.CollectPairs,
				Parallelism:  joinParallelism,
				Retained:     retained,
			}
			errs[w] = c.clients[w].Call(ServiceName+".Join", args, &replies[w])
		}(w)
	}
	wg.Wait()
	joinWall := time.Since(joinStart)
	for w, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: local joins on worker %d failed: %w", w, err)
		}
	}
	return replies, joinWall, nil
}

// aggregate folds the workers' join replies into the Result. Workers reply
// with partitions sorted by id, so iterating workers in order makes the
// aggregation deterministic across runs.
func (c *Coordinator) aggregate(replies []JoinReply, opts Options, s, t *data.Relation, st shuffleStats, joinWall time.Duration) *exec.Result {
	workers := len(c.clients)
	res := &exec.Result{
		Workers:      workers,
		ShuffleTime:  st.duration,
		JoinWallTime: joinWall,
		InputS:       s.Len(),
		InputT:       t.Len(),
		TotalInput:   st.totalInput,
		ShuffleBytes: st.bytes,
		ShuffleRPCs:  st.rpcs,
		WorkerInput:  make([]int64, workers),
		WorkerOutput: make([]int64, workers),
	}
	workerBusy := make([]time.Duration, workers)
	for w, reply := range replies {
		for _, ps := range reply.Partitions {
			res.Partitions++
			res.WorkerInput[w] += int64(ps.InputS + ps.InputT)
			res.WorkerOutput[w] += ps.Output
			res.Output += ps.Output
			workerBusy[w] += time.Duration(ps.JoinNanos)
			if opts.CollectPairs {
				for i := range ps.PairS {
					res.Pairs = append(res.Pairs, exec.Pair{S: ps.PairS[i], T: ps.PairT[i]})
				}
			}
		}
	}
	maxW := 0
	for w := 1; w < workers; w++ {
		lw := opts.Model.Load(float64(res.WorkerInput[w]), float64(res.WorkerOutput[w]))
		lm := opts.Model.Load(float64(res.WorkerInput[maxW]), float64(res.WorkerOutput[maxW]))
		if lw > lm {
			maxW = w
		}
	}
	res.Im = res.WorkerInput[maxW]
	res.Om = res.WorkerOutput[maxW]
	res.MaxLoad = opts.Model.Load(float64(res.Im), float64(res.Om))
	res.LowerBoundLoad = opts.Model.LowerBoundLoad(float64(res.InputS+res.InputT), float64(res.Output), workers)
	if res.InputS+res.InputT > 0 {
		res.DupOverhead = float64(res.TotalInput)/float64(res.InputS+res.InputT) - 1
	}
	if res.LowerBoundLoad > 0 {
		res.LoadOverhead = res.MaxLoad/res.LowerBoundLoad - 1
	}
	res.PredictedTime = opts.Model.Predict(float64(res.TotalInput), float64(res.Im), float64(res.Om))
	for _, busy := range workerBusy {
		if busy > res.Makespan {
			res.Makespan = busy
		}
	}
	if opts.CollectPairs {
		sort.Slice(res.Pairs, func(a, b int) bool {
			if res.Pairs[a].S != res.Pairs[b].S {
				return res.Pairs[a].S < res.Pairs[b].S
			}
			return res.Pairs[a].T < res.Pairs[b].T
		})
	}
	return res
}

// shuffleStreaming is the pipelined data plane: the inputs are routed with the
// shared parallel two-pass shuffle, then every worker's partitions are
// streamed by a dedicated sender goroutine with a bounded window of
// asynchronous Load RPCs in flight.
func (c *Coordinator) shuffleStreaming(plan partition.Plan, place func(int) int, s, t *data.Relation, opts Options) (int64, int64, error) {
	workers := len(c.clients)
	parts, totalInput := exec.Shuffle(plan, s, t, runtime.GOMAXPROCS(0))

	// Per-worker partition lists come out in ascending partition order, so
	// every run ships an identical chunk stream.
	perWorker := make([][]int, workers)
	for pid, p := range parts {
		if p == nil {
			continue
		}
		w := place(pid)
		perWorker[w] = append(perWorker[w], pid)
	}

	errs := make([]error, workers)
	rpcs := make([]int64, workers)
	var wg sync.WaitGroup
	for w := range c.clients {
		if len(perWorker[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rpcs[w], errs[w] = c.sendPartitions(w, perWorker[w], parts, opts)
		}(w)
	}
	wg.Wait()
	var sent int64
	for _, n := range rpcs {
		sent += n
	}
	for w, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("cluster: shipping to worker %d (%s): %w", w, c.names[w], err)
		}
	}
	return totalInput, sent, nil
}

// sendPartitions streams one worker's partitions in fixed-size chunks, keeping
// at most opts.Window Load RPCs in flight. Chunks travel in the packed wire
// representation (raw key and ID bytes straight out of the shuffle arenas),
// so the per-chunk costs are a memcpy-grade pack on each end plus the wire.
func (c *Coordinator) sendPartitions(w int, pids []int, parts []*exec.PartitionInput, opts Options) (int64, error) {
	client := c.clients[w]
	done := make(chan *rpc.Call, opts.Window)
	inFlight := 0
	var sent int64
	var firstErr error
	collect := func(call *rpc.Call) {
		inFlight--
		if call.Error != nil && firstErr == nil {
			firstErr = call.Error
		}
	}
	send := func(pid int, side string, dims int, keys, ids []byte, total int) {
		for inFlight >= opts.Window {
			collect(<-done)
			if firstErr != nil {
				return
			}
		}
		args := &LoadArgs{
			JobID:     opts.JobID,
			Partition: pid,
			Side:      side,
			Packed:    &PackedChunk{Dims: dims, Keys: keys, IDs: ids, SideTotal: total},
			Retain:    opts.retain,
		}
		client.Go(ServiceName+".Load", args, &LoadReply{}, done)
		inFlight++
		sent++
	}
	for _, pid := range pids {
		p := parts[pid]
		for lo := 0; lo < p.S.Len() && firstErr == nil; lo += opts.ChunkSize {
			hi := min(lo+opts.ChunkSize, p.S.Len())
			send(pid, "S", p.S.Dims(), p.S.PackKeysLE(lo, hi), data.PackInt64sLE(p.SIDs[lo:hi]), p.S.Len())
		}
		for lo := 0; lo < p.T.Len() && firstErr == nil; lo += opts.ChunkSize {
			hi := min(lo+opts.ChunkSize, p.T.Len())
			send(pid, "T", p.T.Dims(), p.T.PackKeysLE(lo, hi), data.PackInt64sLE(p.TIDs[lo:hi]), p.T.Len())
		}
	}
	for inFlight > 0 {
		collect(<-done)
	}
	if firstErr != nil {
		return sent, firstErr
	}
	return sent, nil
}

// shuffleBuffer accumulates tuples of one (partition, side) destined for a
// worker and flushes them in chunks.
type shuffleBuffer struct {
	chunk *data.Relation
	ids   []int64
}

// shuffleSerial is the retained reference data plane: every tuple is routed
// individually into growable per-(partition, side) buffers, and each full
// chunk is shipped with a blocking Load call before routing continues.
func (c *Coordinator) shuffleSerial(plan partition.Plan, place func(int) int, s, t *data.Relation, opts Options) (int64, int64, error) {
	type bufKey struct {
		pid  int
		side string
	}
	buffers := make(map[bufKey]*shuffleBuffer)
	var totalInput, rpcs int64

	flush := func(pid int, side string, buf *shuffleBuffer) error {
		if buf.chunk.Len() == 0 {
			return nil
		}
		w := place(pid)
		args := &LoadArgs{JobID: opts.JobID, Partition: pid, Side: side, Chunk: buf.chunk, IDs: buf.ids, Retain: opts.retain}
		var reply LoadReply
		rpcs++
		if err := c.clients[w].Call(ServiceName+".Load", args, &reply); err != nil {
			return fmt.Errorf("cluster: shipping partition %d to worker %d: %w", pid, w, err)
		}
		dims := buf.chunk.Dims()
		buf.chunk = data.NewRelation(side+"-chunk", dims)
		buf.ids = buf.ids[:0]
		return nil
	}
	add := func(pid int, side string, key []float64, id int64, dims int) error {
		k := bufKey{pid: pid, side: side}
		buf, ok := buffers[k]
		if !ok {
			buf = &shuffleBuffer{chunk: data.NewRelation(side+"-chunk", dims)}
			buffers[k] = buf
		}
		buf.chunk.AppendKey(key)
		buf.ids = append(buf.ids, id)
		if buf.chunk.Len() >= opts.ChunkSize {
			return flush(pid, side, buf)
		}
		return nil
	}

	var dst []int
	for i := 0; i < s.Len(); i++ {
		key := s.Key(i)
		dst = plan.AssignS(int64(i), key, dst[:0])
		totalInput += int64(len(dst))
		for _, pid := range dst {
			if err := add(pid, "S", key, int64(i), s.Dims()); err != nil {
				return 0, 0, err
			}
		}
	}
	for i := 0; i < t.Len(); i++ {
		key := t.Key(i)
		dst = plan.AssignT(int64(i), key, dst[:0])
		totalInput += int64(len(dst))
		for _, pid := range dst {
			if err := add(pid, "T", key, int64(i), t.Dims()); err != nil {
				return 0, 0, err
			}
		}
	}
	for k, buf := range buffers {
		if err := flush(k.pid, k.side, buf); err != nil {
			return 0, 0, err
		}
	}
	return totalInput, rpcs, nil
}

// resetJob discards the job's partition state on every worker, best effort.
// It runs deferred on success and on every error path, so a run that fails
// mid-shuffle or mid-join retains nothing on the workers.
func (c *Coordinator) resetJob(jobID string) {
	for _, cl := range c.clients {
		var rr ResetReply
		_ = cl.Call(ServiceName+".Reset", &ResetArgs{JobID: jobID}, &rr)
	}
}
